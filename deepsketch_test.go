package deepsketch_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"deepsketch"
)

// Shared tiny fixture: building a sketch is the expensive part, do it once.
var (
	fixtureOnce   sync.Once
	fixtureDB     *deepsketch.DB
	fixtureSketch *deepsketch.Sketch
	fixtureErr    error
)

func fixture(t *testing.T) (*deepsketch.DB, *deepsketch.Sketch) {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureDB = deepsketch.NewIMDb(deepsketch.IMDbConfig{
			Seed: 11, Titles: 1200, Keywords: 60, Companies: 30, Persons: 200,
		})
		fixtureSketch, fixtureErr = deepsketch.Build(fixtureDB, deepsketch.Config{
			Name: "api-test", SampleSize: 64, TrainQueries: 500, MaxJoins: 2, MaxPreds: 2, Seed: 4,
			Model: deepsketch.ModelConfig{HiddenUnits: 24, Epochs: 8, BatchSize: 32, Seed: 4},
		}, nil)
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureDB, fixtureSketch
}

func TestPublicAPIQuickstartFlow(t *testing.T) {
	d, s := fixture(t)

	est, err := s.EstimateSQL("SELECT COUNT(*) FROM title t, movie_keyword mk WHERE mk.movie_id=t.id AND t.production_year>2000")
	if err != nil {
		t.Fatal(err)
	}
	q, err := deepsketch.ParseSQL(d, "SELECT COUNT(*) FROM title t, movie_keyword mk WHERE mk.movie_id=t.id AND t.production_year>2000")
	if err != nil {
		t.Fatal(err)
	}
	truth, err := deepsketch.TrueCardinality(d, q)
	if err != nil {
		t.Fatal(err)
	}
	if truth <= 0 {
		t.Fatal("expected non-empty result")
	}
	if qe := deepsketch.QError(est, float64(truth)); qe > 50 {
		t.Errorf("quickstart estimate off by %v (est %v, truth %d)", qe, est, truth)
	}
}

func TestPublicAPISaveLoadFile(t *testing.T) {
	_, s := fixture(t)
	path := filepath.Join(t.TempDir(), "sketch.dsk")
	if err := deepsketch.SaveFile(s, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := deepsketch.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.EstimateSQL("SELECT COUNT(*) FROM title t WHERE t.kind_id=1")
	b, _ := loaded.EstimateSQL("SELECT COUNT(*) FROM title t WHERE t.kind_id=1")
	if a != b {
		t.Errorf("estimates differ after file round trip: %v vs %v", a, b)
	}
	fi, _ := os.Stat(path)
	fb, err := s.Footprint()
	if err != nil {
		t.Fatal(err)
	}
	if fb.Total != fi.Size() {
		t.Errorf("footprint %d != file size %d", fb.Total, fi.Size())
	}
}

func TestPublicAPICompare(t *testing.T) {
	d, s := fixture(t)
	qs, err := deepsketch.GenerateWorkload(d, deepsketch.GenConfig{Seed: 101, Count: 40, MaxJoins: 2, MaxPreds: 2})
	if err != nil {
		t.Fatal(err)
	}
	labeled, err := deepsketch.LabelWorkload(d, qs, 2)
	if err != nil {
		t.Fatal(err)
	}
	hyper, err := deepsketch.HyperSystem(d, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := deepsketch.Compare(labeled, []deepsketch.System{
		deepsketch.SketchSystem(s),
		hyper,
		deepsketch.PostgresSystem(d),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	report := deepsketch.FormatReport(rows)
	for _, name := range []string{"Deep Sketch", "HyPer", "PostgreSQL", "median"} {
		if !strings.Contains(report, name) {
			t.Errorf("report missing %q:\n%s", name, report)
		}
	}
}

func TestPublicAPIJOBLight(t *testing.T) {
	d, _ := fixture(t)
	qs, err := deepsketch.JOBLight(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 70 {
		t.Errorf("JOB-light = %d queries", len(qs))
	}
}

func TestPublicAPITemplate(t *testing.T) {
	d, s := fixture(t)
	tpl, err := deepsketch.YearTemplate(d, "love")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.EstimateTemplate(tpl, deepsketch.GroupDistinct, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) < 5 {
		t.Errorf("instances = %d", len(res))
	}
	// Template SQL round trip through ParseTemplateSQL.
	tpl2, err := deepsketch.ParseTemplateSQL(d,
		"SELECT COUNT(*) FROM title t WHERE t.production_year=?")
	if err != nil {
		t.Fatal(err)
	}
	if tpl2.Col != "production_year" {
		t.Errorf("template col = %s", tpl2.Col)
	}
}

func TestPublicAPISketchRoundTripBuffer(t *testing.T) {
	_, s := fixture(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := deepsketch.Load(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIParseErrors(t *testing.T) {
	d, _ := fixture(t)
	if _, err := deepsketch.ParseSQL(d, "SELECT COUNT(*) FROM title t WHERE t.production_year=?"); err == nil {
		t.Error("ParseSQL should reject placeholders")
	}
	if _, err := deepsketch.ParseTemplateSQL(d, "SELECT COUNT(*) FROM title t"); err == nil {
		t.Error("ParseTemplateSQL should require a placeholder")
	}
}
