package deepsketch_test

import (
	"bytes"
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"deepsketch"
)

// Shared tiny fixture: building a sketch is the expensive part, do it once.
var (
	fixtureOnce   sync.Once
	fixtureDB     *deepsketch.DB
	fixtureSketch *deepsketch.Sketch
	fixtureErr    error
)

func fixture(t *testing.T) (*deepsketch.DB, *deepsketch.Sketch) {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureDB = deepsketch.NewIMDb(deepsketch.IMDbConfig{
			Seed: 11, Titles: 1200, Keywords: 60, Companies: 30, Persons: 200,
		})
		fixtureSketch, fixtureErr = deepsketch.Build(fixtureDB, deepsketch.Config{
			Name: "api-test", SampleSize: 64, TrainQueries: 500, MaxJoins: 2, MaxPreds: 2, Seed: 4,
			Model: deepsketch.ModelConfig{HiddenUnits: 24, Epochs: 8, BatchSize: 32, Seed: 4},
		}, nil)
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureDB, fixtureSketch
}

func TestPublicAPIQuickstartFlow(t *testing.T) {
	d, s := fixture(t)

	est, err := s.EstimateSQL(context.Background(), "SELECT COUNT(*) FROM title t, movie_keyword mk WHERE mk.movie_id=t.id AND t.production_year>2000")
	if err != nil {
		t.Fatal(err)
	}
	if est.Source != "api-test" {
		t.Errorf("estimate source = %q, want the sketch name", est.Source)
	}
	q, err := deepsketch.ParseSQL(d, "SELECT COUNT(*) FROM title t, movie_keyword mk WHERE mk.movie_id=t.id AND t.production_year>2000")
	if err != nil {
		t.Fatal(err)
	}
	truth, err := deepsketch.TrueCardinality(d, q)
	if err != nil {
		t.Fatal(err)
	}
	if truth <= 0 {
		t.Fatal("expected non-empty result")
	}
	if qe := deepsketch.QError(est.Cardinality, float64(truth)); qe > 50 {
		t.Errorf("quickstart estimate off by %v (est %v, truth %d)", qe, est.Cardinality, truth)
	}
}

func TestPublicAPISaveLoadFile(t *testing.T) {
	_, s := fixture(t)
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "sketch.dsk")
	if err := deepsketch.SaveFile(s, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := deepsketch.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.EstimateSQL(ctx, "SELECT COUNT(*) FROM title t WHERE t.kind_id=1")
	b, _ := loaded.EstimateSQL(ctx, "SELECT COUNT(*) FROM title t WHERE t.kind_id=1")
	if a.Cardinality != b.Cardinality {
		t.Errorf("estimates differ after file round trip: %v vs %v", a.Cardinality, b.Cardinality)
	}
	fi, _ := os.Stat(path)
	fb, err := s.Footprint()
	if err != nil {
		t.Fatal(err)
	}
	if fb.Total != fi.Size() {
		t.Errorf("footprint %d != file size %d", fb.Total, fi.Size())
	}
}

func TestPublicAPICompare(t *testing.T) {
	d, s := fixture(t)
	qs, err := deepsketch.GenerateWorkload(d, deepsketch.GenConfig{Seed: 101, Count: 40, MaxJoins: 2, MaxPreds: 2})
	if err != nil {
		t.Fatal(err)
	}
	labeled, err := deepsketch.LabelWorkload(d, qs, 2)
	if err != nil {
		t.Fatal(err)
	}
	hyper, err := deepsketch.HyperEstimator(d, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := deepsketch.Compare(context.Background(), labeled, []deepsketch.Estimator{
		s,
		hyper,
		deepsketch.PostgresEstimator(d),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	report := deepsketch.FormatReport(rows)
	for _, name := range []string{"api-test", "HyPer", "PostgreSQL", "median"} {
		if !strings.Contains(report, name) {
			t.Errorf("report missing %q:\n%s", name, report)
		}
	}
}

// TestPublicAPIServeStack drives the full serving stack — fallback(clamp(
// coalesce(sketch)), postgres) behind a cache — against a real sketch and
// checks coalesced serving returns the sequential path's estimates.
func TestPublicAPIServeStack(t *testing.T) {
	d, s := fixture(t)
	ctx := context.Background()

	co := deepsketch.NewCoalescer(s, deepsketch.CoalesceOptions{})
	defer co.Close()
	serving := deepsketch.WithCache(
		deepsketch.Fallback(
			deepsketch.Clamp(co, deepsketch.MaxCardinality(d)),
			deepsketch.PostgresEstimator(d)),
		128)

	qs, err := deepsketch.GenerateWorkload(d, deepsketch.GenConfig{Seed: 303, Count: 24, MaxJoins: 2, MaxPreds: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent clients through the stack: results must match the
	// sequential bare-sketch path.
	var wg sync.WaitGroup
	got := make([]deepsketch.Estimate, len(qs))
	errs := make([]error, len(qs))
	for i := range qs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = serving.Estimate(ctx, qs[i])
		}(i)
	}
	wg.Wait()
	for i, q := range qs {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		want, err := s.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		if want < 1 {
			want = 1 // the stack clamps
		}
		if math.Abs(got[i].Cardinality-want)/want > 1e-9 {
			t.Errorf("query %d: served %v, sequential %v", i, got[i].Cardinality, want)
		}
	}

	// The fixture sketch covers every table, so nothing should have fallen
	// through to PostgreSQL.
	for i := range got {
		if got[i].Source != "api-test" {
			t.Errorf("query %d answered by %q, want api-test", i, got[i].Source)
		}
	}

	// Cache: repeating a query must hit.
	again, err := serving.Estimate(ctx, qs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Error("repeated query should be a cache hit")
	}

	// A query outside any sketch's coverage cannot exist here (full cover),
	// but an invalid one still errors cleanly through the whole stack.
	bad := deepsketch.Query{Tables: []deepsketch.TableRef{{Table: "nope", Alias: "n"}}}
	if _, err := serving.Estimate(ctx, bad); err == nil {
		t.Error("invalid query should error through the stack")
	}
}

// TestPublicAPIFallbackToPostgres: a router with a partial sketch falls
// through to PostgreSQL for uncovered queries instead of erroring.
func TestPublicAPIFallbackToPostgres(t *testing.T) {
	d, _ := fixture(t)
	sub, err := deepsketch.Build(d, deepsketch.Config{
		Name: "titles-only", Tables: []string{"title"}, SampleSize: 32,
		TrainQueries: 60, MaxJoins: 1, MaxPreds: 1, Seed: 9,
		Model: deepsketch.ModelConfig{HiddenUnits: 8, Epochs: 1, BatchSize: 16, Seed: 9},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := deepsketch.NewRouter()
	r.Register(sub)
	chain := deepsketch.Fallback(r, deepsketch.PostgresEstimator(d))
	ctx := context.Background()

	covered, err := deepsketch.ParseSQL(d, "SELECT COUNT(*) FROM title t WHERE t.kind_id=1")
	if err != nil {
		t.Fatal(err)
	}
	est, err := chain.Estimate(ctx, covered)
	if err != nil {
		t.Fatal(err)
	}
	if est.Source != "titles-only" {
		t.Errorf("covered query answered by %q, want titles-only", est.Source)
	}

	uncovered, err := deepsketch.ParseSQL(d, "SELECT COUNT(*) FROM cast_info ci WHERE ci.role_id=1")
	if err != nil {
		t.Fatal(err)
	}
	est, err = chain.Estimate(ctx, uncovered)
	if err != nil {
		t.Fatalf("uncovered query must fall through, got error: %v", err)
	}
	if est.Source != "PostgreSQL" {
		t.Errorf("uncovered query answered by %q, want PostgreSQL", est.Source)
	}
}

func TestPublicAPIJOBLight(t *testing.T) {
	d, _ := fixture(t)
	qs, err := deepsketch.JOBLight(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 70 {
		t.Errorf("JOB-light = %d queries", len(qs))
	}
}

func TestPublicAPITemplate(t *testing.T) {
	d, s := fixture(t)
	tpl, err := deepsketch.YearTemplate(d, "love")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.EstimateTemplate(context.Background(), tpl, deepsketch.GroupDistinct, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) < 5 {
		t.Errorf("instances = %d", len(res))
	}
	// Template SQL round trip through ParseTemplateSQL.
	tpl2, err := deepsketch.ParseTemplateSQL(d,
		"SELECT COUNT(*) FROM title t WHERE t.production_year=?")
	if err != nil {
		t.Fatal(err)
	}
	if tpl2.Col != "production_year" {
		t.Errorf("template col = %s", tpl2.Col)
	}
}

func TestPublicAPISketchRoundTripBuffer(t *testing.T) {
	_, s := fixture(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := deepsketch.Load(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIParseErrors(t *testing.T) {
	d, _ := fixture(t)
	if _, err := deepsketch.ParseSQL(d, "SELECT COUNT(*) FROM title t WHERE t.production_year=?"); err == nil {
		t.Error("ParseSQL should reject placeholders")
	}
	if _, err := deepsketch.ParseTemplateSQL(d, "SELECT COUNT(*) FROM title t"); err == nil {
		t.Error("ParseTemplateSQL should require a placeholder")
	}
}
