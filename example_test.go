package deepsketch_test

import (
	"bytes"
	"context"
	"fmt"

	"deepsketch"
)

// Example demonstrates the minimal end-to-end flow: generate a dataset,
// build a sketch, estimate a query. Outputs are structural (not raw
// estimates) so the example is stable across architectures.
func Example() {
	d := deepsketch.NewIMDb(deepsketch.IMDbConfig{Seed: 1, Titles: 600, Keywords: 40, Companies: 20, Persons: 100})
	sketch, err := deepsketch.Build(d, deepsketch.Config{
		SampleSize:   32,
		TrainQueries: 100,
		MaxJoins:     2,
		Seed:         1,
		Model:        deepsketch.ModelConfig{HiddenUnits: 8, Epochs: 2, Seed: 1},
	}, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	est, err := sketch.EstimateSQL(context.Background(), "SELECT COUNT(*) FROM title t WHERE t.production_year>2000")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("got an estimate:", est.Cardinality >= 1)
	// Output: got an estimate: true
}

// ExampleParseSQL shows the supported SQL dialect, including the demo's
// auto-generated join predicates and dictionary-encoded string literals.
func ExampleParseSQL() {
	d := deepsketch.NewIMDb(deepsketch.IMDbConfig{Seed: 1, Titles: 600, Keywords: 40, Companies: 20, Persons: 100})
	q, err := deepsketch.ParseSQL(d,
		"SELECT COUNT(*) FROM title t, movie_keyword mk, keyword k "+
			"WHERE mk.movie_id=t.id AND mk.keyword_id=k.id AND k.keyword='love' AND t.production_year>=1990")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("tables:", len(q.Tables))
	fmt.Println("joins:", len(q.Joins))
	fmt.Println("predicates:", len(q.Preds))
	// Output:
	// tables: 3
	// joins: 2
	// predicates: 2
}

// ExampleSketch_Save shows that sketches are self-contained artifacts:
// serialize, load, and estimate without the database.
func ExampleSketch_Save() {
	d := deepsketch.NewIMDb(deepsketch.IMDbConfig{Seed: 2, Titles: 500, Keywords: 30, Companies: 15, Persons: 80})
	sketch, err := deepsketch.Build(d, deepsketch.Config{
		SampleSize: 16, TrainQueries: 80, MaxJoins: 1, MaxPreds: 1, Seed: 2,
		Model: deepsketch.ModelConfig{HiddenUnits: 8, Epochs: 1, Seed: 2},
	}, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var buf bytes.Buffer
	if err := sketch.Save(&buf); err != nil {
		fmt.Println("error:", err)
		return
	}
	loaded, err := deepsketch.Load(&buf)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	a, _ := sketch.EstimateSQL(context.Background(), "SELECT COUNT(*) FROM title t WHERE t.kind_id=1")
	b, _ := loaded.EstimateSQL(context.Background(), "SELECT COUNT(*) FROM title t WHERE t.kind_id=1")
	fmt.Println("loaded sketch matches:", a.Cardinality == b.Cardinality)
	// Output: loaded sketch matches: true
}

// ExampleCompare runs the Table-1-style comparison harness.
func ExampleCompare() {
	d := deepsketch.NewIMDb(deepsketch.IMDbConfig{Seed: 3, Titles: 500, Keywords: 30, Companies: 15, Persons: 80})
	qs, _ := deepsketch.GenerateWorkload(d, deepsketch.GenConfig{Seed: 4, Count: 10, MaxJoins: 1, MaxPreds: 1})
	labeled, _ := deepsketch.LabelWorkload(d, qs, 1)
	rows, err := deepsketch.Compare(context.Background(), labeled, []deepsketch.Estimator{deepsketch.PostgresEstimator(d)})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("systems compared:", len(rows))
	fmt.Println("queries evaluated:", rows[0].Summary.Count)
	// Output:
	// systems compared: 1
	// queries evaluated: 10
}
