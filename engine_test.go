package deepsketch_test

import (
	"context"
	"math"
	"testing"

	"deepsketch"
	"deepsketch/internal/metrics"
	"deepsketch/internal/workload"
)

// TestEngineF32QErrorGate is the reduced-precision equivalence gate on the
// JOB-light workload: for every query, the q-error of the f32 engine must
// deviate from the f64 reference q-error by less than 1%. This is the
// accuracy contract that lets deployments flip -engine=f32 for the latency
// win without re-validating model quality.
func TestEngineF32QErrorGate(t *testing.T) {
	d, s := fixture(t)
	qs, err := workload.JOBLight(d, 11)
	if err != nil {
		t.Fatal(err)
	}
	s32 := s.Clone()
	s32.SetEnginePrecision(deepsketch.EngineF32)
	if s.EnginePrecision() != deepsketch.EngineF64 {
		t.Fatal("Clone+SetEnginePrecision mutated the original sketch")
	}
	for i, q := range qs {
		truth, err := deepsketch.TrueCardinality(d, q)
		if err != nil {
			t.Fatal(err)
		}
		e64, err := s.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		e32, err := s32.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		q64 := metrics.QError(e64, float64(truth))
		q32 := metrics.QError(e32, float64(truth))
		if dev := math.Abs(q32-q64) / q64; dev >= 0.01 {
			t.Errorf("query %d (%s): f32 q-error %.6g deviates %.3g%% from f64 q-error %.6g",
				i, q.SQL(d), q32, dev*100, q64)
		}
	}
}

// TestEngineTagPublicAPI checks the estimate envelope reports the precision
// that computed it, across the single and batched paths.
func TestEngineTagPublicAPI(t *testing.T) {
	d, s := fixture(t)
	q, err := deepsketch.ParseSQL(d, "SELECT COUNT(*) FROM title t WHERE t.production_year>2000")
	if err != nil {
		t.Fatal(err)
	}
	s32 := s.Clone()
	s32.SetEnginePrecision(deepsketch.EngineF32)
	for _, tc := range []struct {
		sk   *deepsketch.Sketch
		want string
	}{{s, "f64"}, {s32, "f32"}} {
		est, err := tc.sk.Estimate(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if est.Engine != tc.want {
			t.Errorf("Estimate engine tag = %q, want %q", est.Engine, tc.want)
		}
		batch, err := tc.sk.EstimateBatch(context.Background(), []deepsketch.Query{q})
		if err != nil {
			t.Fatal(err)
		}
		if batch[0].Engine != tc.want {
			t.Errorf("EstimateBatch engine tag = %q, want %q", batch[0].Engine, tc.want)
		}
	}
}
