package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCLIEndToEnd drives the real subcommand implementations with tiny
// scales: build a sketch to a temp file, then inspect, query, template, and
// evaluate it against the same (regenerated) dataset.
func TestCLIEndToEnd(t *testing.T) {
	dir := t.TempDir()
	sketchPath := filepath.Join(dir, "t.dsk")
	dbArgs := []string{"-db", "imdb", "-dbseed", "1", "-titles", "1000"}

	build := append([]string{
		"-out", sketchPath, "-samples", "48", "-queries", "150",
		"-epochs", "2", "-hidden", "12", "-batch", "32", "-seed", "3", "-q",
	}, dbArgs...)
	if err := cmdBuild(build); err != nil {
		t.Fatalf("build: %v", err)
	}
	if fi, err := os.Stat(sketchPath); err != nil || fi.Size() == 0 {
		t.Fatalf("sketch file missing: %v", err)
	}

	if err := cmdInfo([]string{"-sketch", sketchPath}); err != nil {
		t.Fatalf("info: %v", err)
	}

	query := append([]string{
		"-sketch", sketchPath, "-truth",
		"-sql", "SELECT COUNT(*) FROM title t WHERE t.production_year>2000",
	}, dbArgs...)
	if err := cmdQuery(query); err != nil {
		t.Fatalf("query: %v", err)
	}

	tpl := append([]string{
		"-sketch", sketchPath, "-group", "buckets", "-buckets", "5",
		"-sql", "SELECT COUNT(*) FROM title t WHERE t.production_year=?",
	}, dbArgs...)
	if err := cmdTemplate(tpl); err != nil {
		t.Fatalf("template: %v", err)
	}

	eval := append([]string{
		"-sketch", sketchPath, "-workload", "uniform", "-count", "25", "-seed", "9",
	}, dbArgs...)
	if err := cmdEval(eval); err != nil {
		t.Fatalf("eval: %v", err)
	}

	// Refresh: warm-start fine-tune on a generated delta workload, written
	// to a second file; both the original and the refreshed sketch must
	// remain loadable and queryable.
	refreshedPath := filepath.Join(dir, "t2.dsk")
	refresh := append([]string{
		"-sketch", sketchPath, "-out", refreshedPath,
		"-queries", "80", "-epochs", "1", "-seed", "11", "-workers", "2", "-q",
	}, dbArgs...)
	if err := cmdRefresh(refresh); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	if fi, err := os.Stat(refreshedPath); err != nil || fi.Size() == 0 {
		t.Fatalf("refreshed sketch file missing: %v", err)
	}
	query2 := append([]string{
		"-sketch", refreshedPath,
		"-sql", "SELECT COUNT(*) FROM title t WHERE t.production_year>2000",
	}, dbArgs...)
	if err := cmdQuery(query2); err != nil {
		t.Fatalf("query refreshed sketch: %v", err)
	}
}

func TestCLIErrors(t *testing.T) {
	if err := cmdQuery([]string{"-sketch", "/nonexistent.dsk", "-sql", "SELECT COUNT(*) FROM title"}); err == nil {
		t.Error("missing sketch file should error")
	}
	if err := cmdQuery([]string{"-sql", ""}); err == nil {
		t.Error("empty SQL should error")
	}
	if err := cmdBuild([]string{"-db", "nope", "-q"}); err == nil {
		t.Error("unknown dataset should error")
	}
	if err := cmdBuild([]string{"-loss", "nope", "-q"}); err == nil {
		t.Error("unknown loss should error")
	}
	if err := cmdTemplate([]string{"-sql", ""}); err == nil {
		t.Error("template without SQL should error")
	}
	if err := cmdRefresh([]string{"-sketch", "/nonexistent.dsk"}); err == nil {
		t.Error("refreshing a missing sketch file should error")
	}
}

func TestDBFlagsMake(t *testing.T) {
	// Redirect stdout noise is unnecessary; just exercise both datasets.
	for _, kind := range []string{"imdb", "tpch"} {
		k, s, ti, o := kind, int64(1), 500, 300
		f := dbFlags{kind: &k, seed: &s, titles: &ti, orders: &o}
		d, err := f.make()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if d.TotalRows() == 0 {
			t.Errorf("%s: empty dataset", kind)
		}
	}
	bad := "x"
	s, ti, o := int64(1), 10, 10
	f := dbFlags{kind: &bad, seed: &s, titles: &ti, orders: &o}
	if _, err := f.make(); err == nil {
		t.Error("unknown kind should error")
	}
}
