package main

import (
	"path/filepath"
	"testing"
)

// TestCLICanaryGate builds a tiny sketch, refreshes it into a candidate,
// and runs the offline canary gate both ways: the refreshed candidate
// passes a lax gate, and an impossibly strict ratio flips the verdict to
// ABORT (non-zero exit with -gate).
func TestCLICanaryGate(t *testing.T) {
	dir := t.TempDir()
	livePath := filepath.Join(dir, "live.dsk")
	candPath := filepath.Join(dir, "cand.dsk")
	dbArgs := []string{"-db", "imdb", "-dbseed", "1", "-titles", "1000"}

	build := append([]string{
		"-out", livePath, "-samples", "48", "-queries", "150",
		"-epochs", "2", "-hidden", "12", "-batch", "32", "-seed", "3", "-q",
	}, dbArgs...)
	if err := cmdBuild(build); err != nil {
		t.Fatalf("build: %v", err)
	}
	refresh := append([]string{
		"-sketch", livePath, "-out", candPath, "-queries", "150", "-seed", "7", "-epochs", "2", "-q",
	}, dbArgs...)
	if err := cmdRefresh(refresh); err != nil {
		t.Fatalf("refresh: %v", err)
	}

	// A generous ratio promotes the warm-refreshed candidate.
	pass := append([]string{
		"-sketch", livePath, "-candidate", candPath,
		"-fraction", "0.5", "-ratio", "100", "-queries", "200", "-seed", "9", "-gate",
	}, dbArgs...)
	if err := cmdCanary(pass); err != nil {
		t.Fatalf("canary gate should promote at ratio 100: %v", err)
	}

	// ratio 0 makes the limit 0 — impossible — so -gate must fail.
	abort := append([]string{
		"-sketch", livePath, "-candidate", candPath,
		"-fraction", "0.5", "-ratio", "0.0001", "-queries", "200", "-seed", "9", "-gate",
	}, dbArgs...)
	if err := cmdCanary(abort); err == nil {
		t.Fatal("canary -gate should fail on an ABORT verdict")
	}

	// Error surface: missing candidate, bad fraction, dataset mismatch.
	if err := cmdCanary([]string{"-sketch", livePath}); err == nil {
		t.Error("missing -candidate should fail")
	}
	if err := cmdCanary(append([]string{"-sketch", livePath, "-candidate", candPath, "-fraction", "1.5"}, dbArgs...)); err == nil {
		t.Error("fraction 1.5 should fail")
	}
	if err := cmdCanary([]string{"-sketch", livePath, "-candidate", candPath, "-db", "tpch"}); err == nil {
		t.Error("dataset mismatch should fail")
	}
}
