package main

import (
	"path/filepath"
	"strings"
	"testing"

	"deepsketch"
)

// TestCLICanaryGate builds a tiny sketch, refreshes it into a candidate,
// and runs the offline canary gate both ways: the refreshed candidate
// passes a lax gate, and an impossibly strict ratio flips the verdict to
// ABORT (non-zero exit with -gate).
func TestCLICanaryGate(t *testing.T) {
	dir := t.TempDir()
	livePath := filepath.Join(dir, "live.dsk")
	candPath := filepath.Join(dir, "cand.dsk")
	dbArgs := []string{"-db", "imdb", "-dbseed", "1", "-titles", "1000"}

	build := append([]string{
		"-out", livePath, "-samples", "48", "-queries", "150",
		"-epochs", "2", "-hidden", "12", "-batch", "32", "-seed", "3", "-q",
	}, dbArgs...)
	if err := cmdBuild(build); err != nil {
		t.Fatalf("build: %v", err)
	}
	refresh := append([]string{
		"-sketch", livePath, "-out", candPath, "-queries", "150", "-seed", "7", "-epochs", "2", "-q",
	}, dbArgs...)
	if err := cmdRefresh(refresh); err != nil {
		t.Fatalf("refresh: %v", err)
	}

	// A generous ratio promotes the warm-refreshed candidate.
	pass := append([]string{
		"-sketch", livePath, "-candidate", candPath,
		"-fraction", "0.5", "-ratio", "100", "-queries", "200", "-seed", "9", "-gate",
	}, dbArgs...)
	if err := cmdCanary(pass); err != nil {
		t.Fatalf("canary gate should promote at ratio 100: %v", err)
	}

	// ratio 0 makes the limit 0 — impossible — so -gate must fail.
	abort := append([]string{
		"-sketch", livePath, "-candidate", candPath,
		"-fraction", "0.5", "-ratio", "0.0001", "-queries", "200", "-seed", "9", "-gate",
	}, dbArgs...)
	if err := cmdCanary(abort); err == nil {
		t.Fatal("canary -gate should fail on an ABORT verdict")
	}

	// Error surface: missing candidate, bad fraction, dataset mismatch.
	if err := cmdCanary([]string{"-sketch", livePath}); err == nil {
		t.Error("missing -candidate should fail")
	}
	if err := cmdCanary(append([]string{"-sketch", livePath, "-candidate", candPath, "-fraction", "1.5"}, dbArgs...)); err == nil {
		t.Error("fraction 1.5 should fail")
	}
	if err := cmdCanary([]string{"-sketch", livePath, "-candidate", candPath, "-db", "tpch"}); err == nil {
		t.Error("dataset mismatch should fail")
	}
}

// TestCLICanaryPinnedRail exercises the offline promotion rail: with a
// frozen benchmark supplied, a candidate the split gate would promote is
// still vetoed when it regresses beyond -pinned-max-regress on the pinned
// set.
func TestCLICanaryPinnedRail(t *testing.T) {
	dir := t.TempDir()
	livePath := filepath.Join(dir, "live.dsk")
	candPath := filepath.Join(dir, "cand.dsk")
	pinnedPath := filepath.Join(dir, "pinned.workload")
	dbArgs := []string{"-db", "imdb", "-dbseed", "1", "-titles", "1000"}

	build := append([]string{
		"-out", livePath, "-samples", "48", "-queries", "150",
		"-epochs", "2", "-hidden", "12", "-batch", "32", "-seed", "3", "-q",
	}, dbArgs...)
	if err := cmdBuild(build); err != nil {
		t.Fatalf("build: %v", err)
	}
	refresh := append([]string{
		"-sketch", livePath, "-out", candPath, "-queries", "150", "-seed", "7", "-epochs", "2", "-q",
	}, dbArgs...)
	if err := cmdRefresh(refresh); err != nil {
		t.Fatalf("refresh: %v", err)
	}

	// The same dataset the -db flags denote, used to label the pinned set.
	d := deepsketch.NewIMDb(deepsketch.IMDbConfig{Seed: 1, Titles: 1000})
	qs, err := deepsketch.GenerateWorkload(d, deepsketch.GenConfig{
		Seed: 23, Count: 60, MaxJoins: 2, MaxPreds: 2, Dedup: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	labeled, err := deepsketch.LabelWorkload(d, qs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := deepsketch.WritePinnedBenchmarkFile(pinnedPath, labeled); err != nil {
		t.Fatal(err)
	}

	base := append([]string{
		"-sketch", livePath, "-candidate", candPath,
		"-fraction", "0.5", "-ratio", "100", "-queries", "200", "-seed", "9", "-gate",
		"-pinned", pinnedPath,
	}, dbArgs...)

	// A generous tolerance lets both the split gate and the rail pass.
	if err := cmdCanary(append([]string{"-pinned-max-regress", "1000"}, base...)); err != nil {
		t.Fatalf("rail at tolerance 1000x should promote: %v", err)
	}

	// An impossible tolerance fails the rail even though the split gate
	// (ratio 100) promotes: the rail's veto must win, and the -gate error
	// must name the rail, not the gate.
	err = cmdCanary(append([]string{"-pinned-max-regress", "0.000001"}, base...))
	if err == nil {
		t.Fatal("rail at tolerance 1e-6 should veto the promote")
	}
	if !strings.Contains(err.Error(), "pinned rail") {
		t.Errorf("veto error = %q, want the pinned rail named", err)
	}

	// A missing benchmark file is an error, not a silently skipped rail.
	missing := append([]string{"-pinned", filepath.Join(dir, "nope.workload")}, []string{
		"-sketch", livePath, "-candidate", candPath, "-fraction", "0.5", "-ratio", "100",
		"-queries", "200", "-seed", "9",
	}...)
	if err := cmdCanary(append(missing, dbArgs...)); err == nil {
		t.Error("missing pinned benchmark file should fail")
	}
}
