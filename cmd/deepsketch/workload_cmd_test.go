package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWorkloadFileRoundTripThroughCLI: generate a workload file, then build
// a sketch from it — the decoupled pipeline the original artifact uses.
func TestWorkloadFileRoundTripThroughCLI(t *testing.T) {
	dir := t.TempDir()
	wl := filepath.Join(dir, "train.csv")
	dbArgs := []string{"-db", "imdb", "-dbseed", "2", "-titles", "800"}

	gen := append([]string{
		"-out", wl, "-count", "120", "-maxjoins", "2", "-maxpreds", "2", "-seed", "4",
	}, dbArgs...)
	if err := cmdWorkload(gen); err != nil {
		t.Fatalf("workload: %v", err)
	}
	blob, err := os.ReadFile(wl)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(blob), "\n")
	if lines < 100 {
		t.Fatalf("workload file has %d lines", lines)
	}

	sketchPath := filepath.Join(dir, "s.dsk")
	build := append([]string{
		"-out", sketchPath, "-fromworkload", wl, "-samples", "32",
		"-epochs", "2", "-hidden", "8", "-batch", "32", "-seed", "4", "-q",
	}, dbArgs...)
	if err := cmdBuild(build); err != nil {
		t.Fatalf("build from workload: %v", err)
	}
	if fi, err := os.Stat(sketchPath); err != nil || fi.Size() == 0 {
		t.Fatalf("sketch missing: %v", err)
	}
}

func TestWorkloadJOBLightKind(t *testing.T) {
	dir := t.TempDir()
	wl := filepath.Join(dir, "joblight.csv")
	args := []string{"-db", "imdb", "-dbseed", "2", "-titles", "800", "-kind", "joblight", "-out", wl}
	if err := cmdWorkload(args); err != nil {
		t.Fatal(err)
	}
	blob, _ := os.ReadFile(wl)
	if n := strings.Count(string(blob), "\n"); n != 70 {
		t.Errorf("JOB-light file has %d lines, want 70", n)
	}
}

func TestWorkloadUnknownKind(t *testing.T) {
	if err := cmdWorkload([]string{"-kind", "nope"}); err == nil {
		t.Error("unknown kind should error")
	}
}
