package main

import (
	"context"
	"flag"
	"fmt"

	"deepsketch"
	"deepsketch/internal/metrics"
)

// cmdCanary is the offline canary gate: it simulates the daemon's hash-
// split rollout between a live sketch and a refreshed candidate on a
// labeled workload, reports the comparative windowed q-error per split,
// and prints the PROMOTE/ABORT verdict the serving gate would reach —
// before any traffic touches the candidate.
func cmdCanary(args []string) error {
	fs := flag.NewFlagSet("canary", flag.ExitOnError)
	dbf := addDBFlags(fs)
	livePath := fs.String("sketch", "sketch.dsk", "live sketch file")
	candPath := fs.String("candidate", "", "candidate sketch file (e.g. the output of deepsketch refresh)")
	fraction := fs.Float64("fraction", 0.1, "canary traffic fraction to simulate, in (0, 1)")
	ratio := fs.Float64("ratio", 1.1, "promote iff canary median q-error ≤ ratio × live median (on their splits)")
	fromWorkload := fs.String("workload", "", "labeled workload file (artifact CSV); default: generate+label")
	queries := fs.Int("queries", 1000, "generated workload size (when no -workload file)")
	seed := fs.Int64("seed", 17, "generated workload seed")
	workers := fs.Int("workers", 0, "labeling workers (0 = GOMAXPROCS)")
	pinnedPath := fs.String("pinned", "", "pinned benchmark file (labeled workload CSV); candidates must also pass this frozen rail")
	pinnedRegress := fs.Float64("pinned-max-regress", deepsketch.DefaultPinnedMaxRegress, "rail tolerance: candidate median and p95 on the pinned set may be at most this × live's")
	gate := fs.Bool("gate", false, "exit non-zero on an ABORT verdict (for scripting)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *candPath == "" {
		return fmt.Errorf("canary needs -candidate (the refreshed sketch to judge)")
	}
	// The gate needs both splits populated, so 1 (every query on the
	// canary, no comparison base) is as unusable as 0.
	if *fraction <= 0 || *fraction >= 1 {
		return fmt.Errorf("-fraction %v outside (0, 1)", *fraction)
	}
	live, err := deepsketch.LoadFile(*livePath)
	if err != nil {
		return err
	}
	cand, err := deepsketch.LoadFile(*candPath)
	if err != nil {
		return err
	}
	if live.DBName != cand.DBName {
		return fmt.Errorf("live sketch is for dataset %q, candidate for %q", live.DBName, cand.DBName)
	}
	d, err := dbf.make()
	if err != nil {
		return err
	}
	if d.Name != live.DBName {
		return fmt.Errorf("sketches were built on dataset %q, -db is %q", live.DBName, *dbf.kind)
	}
	var labeled []deepsketch.LabeledQuery
	if *fromWorkload != "" {
		labeled, err = deepsketch.ReadWorkloadFile(d, *fromWorkload)
	} else {
		var qs []deepsketch.Query
		qs, err = deepsketch.GenerateWorkload(d, deepsketch.GenConfig{
			Seed: *seed, Count: *queries, Tables: live.Cfg.Tables,
			MaxJoins: live.Cfg.MaxJoins, MaxPreds: live.Cfg.MaxPreds, Dedup: true,
		})
		if err == nil {
			labeled, err = deepsketch.LabelWorkload(d, qs, *workers)
		}
	}
	if err != nil {
		return err
	}

	// The same deterministic signature split the router uses: each query is
	// answered by exactly one side, like live traffic under the canary.
	var liveQ, candQ []float64
	for _, lq := range labeled {
		if deepsketch.CanarySplit(lq.Query.Signature(), *fraction) {
			est, err := cand.Cardinality(lq.Query)
			if err != nil {
				return err
			}
			candQ = append(candQ, deepsketch.QError(est, float64(lq.Card)))
		} else {
			est, err := live.Cardinality(lq.Query)
			if err != nil {
				return err
			}
			liveQ = append(liveQ, deepsketch.QError(est, float64(lq.Card)))
		}
	}
	if len(candQ) == 0 {
		return fmt.Errorf("no queries landed in the %.0f%% canary split of %d — raise -fraction or -queries", *fraction*100, len(labeled))
	}
	if len(liveQ) == 0 {
		return fmt.Errorf("every query landed in the canary split — lower -fraction to leave a comparison base")
	}
	liveSum := metrics.Summarize(liveQ)
	candSum := metrics.Summarize(candQ)
	fmt.Printf("canary gate: %q vs candidate %q at %.0f%% traffic (%d queries: %d canary, %d live)\n\n",
		live.Name(), cand.Name(), *fraction*100, len(labeled), len(candQ), len(liveQ))
	fmt.Print(metrics.FormatTable([]metrics.Row{
		{Name: "live split", Summary: liveSum},
		{Name: "canary split", Summary: candSum},
	}))
	limit := liveSum.Median * *ratio
	promote := candSum.Median <= limit
	fmt.Printf("\ngate: canary median %s vs limit %s (live median %s × ratio %g)\n",
		metrics.Sig3(candSum.Median), metrics.Sig3(limit), metrics.Sig3(liveSum.Median), *ratio)

	// The pinned-benchmark rail: the split gate above judges the candidate
	// on the supplied workload, which — like the daemon's live windows — an
	// adaptive adversary can steer. A frozen held-out set cannot be steered,
	// so a rail failure vetoes promotion even when the split gate passes.
	railPass := true
	if *pinnedPath != "" {
		pb, err := deepsketch.LoadPinnedBenchmarkFile(d, *pinnedPath)
		if err != nil {
			return err
		}
		res, err := pb.Judge(context.Background(), live, cand, *pinnedRegress)
		if err != nil {
			return err
		}
		fmt.Printf("\npinned rail: %d frozen queries, tolerance %gx\n\n", res.Size, res.MaxRegress)
		fmt.Print(metrics.FormatTable([]metrics.Row{
			{Name: "pinned live", Summary: res.Live},
			{Name: "pinned candidate", Summary: res.Candidate},
		}))
		fmt.Printf("\nrail: candidate median %s vs limit %s, p95 %s vs limit %s\n",
			metrics.Sig3(res.Candidate.Median), metrics.Sig3(res.Live.Median*res.MaxRegress),
			metrics.Sig3(res.Candidate.P95), metrics.Sig3(res.Live.P95*res.MaxRegress))
		railPass = res.Pass
		if !res.Pass && promote {
			fmt.Println("rail: FAIL — candidate regresses on the pinned benchmark; vetoing the split gate's promote")
		} else if !res.Pass {
			fmt.Println("rail: FAIL")
		} else {
			fmt.Println("rail: pass")
		}
	}

	if promote && railPass {
		fmt.Println("verdict: PROMOTE")
		return nil
	}
	fmt.Println("verdict: ABORT")
	if *gate {
		if !railPass {
			return fmt.Errorf("pinned rail failed: candidate regresses beyond %gx on the frozen benchmark", *pinnedRegress)
		}
		return fmt.Errorf("canary gate failed: median %s > limit %s", metrics.Sig3(candSum.Median), metrics.Sig3(limit))
	}
	return nil
}
