// Command deepsketch is the CLI for building, inspecting, and querying Deep
// Sketches on the synthetic IMDb and TPC-H datasets.
//
//	deepsketch build    -db imdb -out imdb.dsk -queries 10000 -epochs 25
//	deepsketch info     -sketch imdb.dsk
//	deepsketch query    -sketch imdb.dsk -sql "SELECT COUNT(*) FROM title t WHERE t.production_year>2010" -truth
//	deepsketch template -sketch imdb.dsk -sql "... AND t.production_year=?" -group distinct
//	deepsketch eval     -sketch imdb.dsk -workload joblight
//	deepsketch refresh  -sketch imdb.dsk -out imdb-v2.dsk -queries 2000 -epochs 5
//	deepsketch canary   -sketch imdb.dsk -candidate imdb-v2.dsk -fraction 0.1 -gate
//
// Datasets are generated deterministically from -seed, so "the database"
// referenced by -truth/-eval is reproducible without storing it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"deepsketch"
	"deepsketch/internal/trainmon"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = cmdBuild(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "template":
		err = cmdTemplate(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "refresh":
		err = cmdRefresh(os.Args[2:])
	case "canary":
		err = cmdCanary(os.Args[2:])
	case "workload":
		err = cmdWorkload(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "deepsketch: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "deepsketch:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: deepsketch <command> [flags]

commands:
  build     create a Deep Sketch over a generated dataset
  info      show a sketch's metadata, footprint and training record
  query     estimate a SQL query with a sketch (optionally vs. baselines)
  template  estimate a template query (SQL with one ? placeholder)
  eval      evaluate a sketch against baselines on a workload
  refresh   warm-start retrain a sketch on a drift-delta workload
  canary    judge a candidate sketch against the live one on a hash-split workload
  workload  generate + execute a labeled workload file (artifact CSV format)

run "deepsketch <command> -h" for command flags`)
}

// dbFlags declares the shared dataset flags on a FlagSet.
type dbFlags struct {
	kind   *string
	seed   *int64
	titles *int
	orders *int
}

func addDBFlags(fs *flag.FlagSet) dbFlags {
	return dbFlags{
		kind:   fs.String("db", "imdb", "dataset: imdb or tpch"),
		seed:   fs.Int64("dbseed", 1, "dataset generation seed"),
		titles: fs.Int("titles", 20000, "imdb: number of titles"),
		orders: fs.Int("orders", 15000, "tpch: number of orders"),
	}
}

func (f dbFlags) make() (*deepsketch.DB, error) {
	switch *f.kind {
	case "imdb":
		return deepsketch.NewIMDb(deepsketch.IMDbConfig{Seed: *f.seed, Titles: *f.titles}), nil
	case "tpch":
		return deepsketch.NewTPCH(deepsketch.TPCHConfig{Seed: *f.seed, Orders: *f.orders}), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (want imdb or tpch)", *f.kind)
	}
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	dbf := addDBFlags(fs)
	out := fs.String("out", "sketch.dsk", "output sketch file")
	name := fs.String("name", "", "sketch name (default: dataset name)")
	tables := fs.String("tables", "", "comma-separated table subset (default: all)")
	samples := fs.Int("samples", 1000, "materialized sample tuples per table")
	queries := fs.Int("queries", 10000, "number of training queries")
	maxJoins := fs.Int("maxjoins", 0, "max joins per training query (0 = auto)")
	epochs := fs.Int("epochs", 25, "training epochs")
	hidden := fs.Int("hidden", 64, "MSCN hidden units")
	batch := fs.Int("batch", 64, "mini-batch size")
	lr := fs.Float64("lr", 1e-3, "learning rate")
	loss := fs.String("loss", "qerror", "training loss: qerror or l1log")
	workers := fs.Int("workers", 0, "parallel query execution workers (0 = GOMAXPROCS)")
	seed := fs.Int64("seed", 1, "sketch seed (query gen, sampling, training)")
	fromWorkload := fs.String("fromworkload", "", "train from a labeled workload file instead of generating queries")
	quiet := fs.Bool("q", false, "suppress progress output")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := dbf.make()
	if err != nil {
		return err
	}
	mcfg := deepsketch.DefaultModelConfig()
	mcfg.HiddenUnits = *hidden
	mcfg.Epochs = *epochs
	mcfg.BatchSize = *batch
	mcfg.LearningRate = *lr
	mcfg.Seed = *seed
	switch *loss {
	case "qerror":
		mcfg.Loss = deepsketch.LossQError
	case "l1log":
		mcfg.Loss = deepsketch.LossL1Log
	default:
		return fmt.Errorf("unknown loss %q", *loss)
	}
	cfg := deepsketch.Config{
		Name: *name, SampleSize: *samples, TrainQueries: *queries,
		MaxJoins: *maxJoins, Workers: *workers, Seed: *seed, Model: mcfg,
	}
	if *tables != "" {
		cfg.Tables = strings.Split(*tables, ",")
	}
	mon := deepsketch.NewMonitor()
	if !*quiet {
		mon.AddSink(func(e trainmon.Event) {
			switch e.Kind {
			case trainmon.KindStageStart:
				fmt.Printf("stage %-10s %s\n", e.Stage, e.Msg)
			case trainmon.KindStageEnd:
				fmt.Printf("stage %-10s done in %v\n", e.Stage, e.Elapsed)
			case trainmon.KindEpoch:
				fmt.Printf("  epoch %3d  train-loss %10.3f  val mean-q %8.2f  median-q %6.2f\n",
					e.Epoch, e.TrainLoss, e.ValMeanQ, e.ValMedQ)
			}
		})
	}
	var s *deepsketch.Sketch
	if *fromWorkload != "" {
		labeled, err := deepsketch.ReadWorkloadFile(d, *fromWorkload)
		if err != nil {
			return err
		}
		s, err = deepsketch.BuildWithWorkload(d, cfg, labeled, mon)
		if err != nil {
			return err
		}
	} else {
		s, err = deepsketch.Build(d, cfg, mon)
		if err != nil {
			return err
		}
	}
	if err := deepsketch.SaveFile(s, *out); err != nil {
		return err
	}
	fb, err := s.Footprint()
	if err != nil {
		return err
	}
	fmt.Printf("sketch %q written to %s (%.2f MiB: weights %.2f, samples %.2f)\n",
		s.Name(), *out, mib(fb.Total), mib(fb.Weights), mib(fb.Samples))
	return nil
}

func mib(b int64) float64 { return float64(b) / (1 << 20) }

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	path := fs.String("sketch", "sketch.dsk", "sketch file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := deepsketch.LoadFile(*path)
	if err != nil {
		return err
	}
	fb, err := s.Footprint()
	if err != nil {
		return err
	}
	fmt.Printf("name:          %s\n", s.Name())
	fmt.Printf("database:      %s\n", s.DBName)
	fmt.Printf("tables:        %s\n", strings.Join(s.Cfg.Tables, ", "))
	fmt.Printf("samples/table: %d\n", s.Cfg.SampleSize)
	fmt.Printf("train queries: %d\n", s.Cfg.TrainQueries)
	fmt.Printf("model:         %d hidden units, %d params, loss=%s\n",
		s.Model.Cfg.HiddenUnits, s.Model.NumParams(), s.Model.Cfg.Loss)
	fmt.Printf("footprint:     %.2f MiB (header %.2f, weights %.2f, samples %.2f)\n",
		mib(fb.Total), mib(fb.Header), mib(fb.Weights), mib(fb.Samples))
	if len(s.StageMillis) > 0 {
		fmt.Printf("creation:      %s\n", trainmon.FormatStageTimes(s.StageMillis))
	}
	if len(s.Epochs) > 0 {
		vals := make([]float64, len(s.Epochs))
		for i, e := range s.Epochs {
			vals[i] = e.ValMeanQ
		}
		last := s.Epochs[len(s.Epochs)-1]
		fmt.Printf("training:      %d epochs, final val mean-q %.2f median-q %.2f\n",
			len(s.Epochs), last.ValMeanQ, last.ValMedQ)
		fmt.Printf("val mean-q:    %s\n", trainmon.Sparkline(vals))
	}
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	dbf := addDBFlags(fs)
	path := fs.String("sketch", "sketch.dsk", "sketch file")
	sql := fs.String("sql", "", "SQL query (COUNT(*), joins + predicates)")
	truth := fs.Bool("truth", false, "also compute true cardinality and baselines (regenerates the dataset)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sql == "" {
		return fmt.Errorf("-sql is required")
	}
	s, err := deepsketch.LoadFile(*path)
	if err != nil {
		return err
	}
	ctx := context.Background()
	est, err := s.EstimateSQL(ctx, *sql)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %14.1f   (%v)\n", "Deep Sketch", est.Cardinality, est.Latency.Round(time.Microsecond))
	if !*truth {
		return nil
	}
	d, err := dbf.make()
	if err != nil {
		return err
	}
	q, err := deepsketch.ParseSQL(d, *sql)
	if err != nil {
		return err
	}
	tc, err := deepsketch.TrueCardinality(d, q)
	if err != nil {
		return err
	}
	hyper, err := deepsketch.HyperEstimator(d, s.Cfg.SampleSize, s.Cfg.Seed)
	if err != nil {
		return err
	}
	pg := deepsketch.PostgresEstimator(d)
	he, err := hyper.Estimate(ctx, q)
	if err != nil {
		return err
	}
	pe, err := pg.Estimate(ctx, q)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %14.1f   (q-error %.2f)\n", "HyPer", he.Cardinality, deepsketch.QError(he.Cardinality, float64(tc)))
	fmt.Printf("%-16s %14.1f   (q-error %.2f)\n", "PostgreSQL", pe.Cardinality, deepsketch.QError(pe.Cardinality, float64(tc)))
	fmt.Printf("%-16s %14d\n", "True", tc)
	fmt.Printf("%-16s %14s   (q-error %.2f)\n", "", "", deepsketch.QError(est.Cardinality, float64(tc)))
	return nil
}

func cmdTemplate(args []string) error {
	fs := flag.NewFlagSet("template", flag.ExitOnError)
	dbf := addDBFlags(fs)
	path := fs.String("sketch", "sketch.dsk", "sketch file")
	sql := fs.String("sql", "", "SQL with one ? placeholder")
	group := fs.String("group", "distinct", "grouping: distinct or buckets")
	buckets := fs.Int("buckets", 20, "bucket count for -group buckets")
	truth := fs.Bool("truth", false, "overlay true cardinalities (regenerates the dataset)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sql == "" {
		return fmt.Errorf("-sql is required")
	}
	s, err := deepsketch.LoadFile(*path)
	if err != nil {
		return err
	}
	var g deepsketch.Grouping
	switch *group {
	case "distinct":
		g = deepsketch.GroupDistinct
	case "buckets":
		g = deepsketch.GroupBuckets
	default:
		return fmt.Errorf("unknown grouping %q", *group)
	}
	res, err := s.EstimateTemplateSQL(context.Background(), *sql, g, *buckets)
	if err != nil {
		return err
	}
	var truths map[string]int64
	if *truth {
		d, err := dbf.make()
		if err != nil {
			return err
		}
		truths = make(map[string]int64, len(res))
		for _, r := range res {
			tc, err := deepsketch.TrueCardinality(d, r.Query)
			if err != nil {
				return err
			}
			truths[r.Label] = tc
		}
	}
	maxEst := 1.0
	for _, r := range res {
		if r.Estimate > maxEst {
			maxEst = r.Estimate
		}
	}
	fmt.Printf("%-12s %12s", "value", "estimate")
	if truths != nil {
		fmt.Printf(" %12s %8s", "true", "q-err")
	}
	fmt.Println("  chart (estimate)")
	for _, r := range res {
		bar := strings.Repeat("█", int(r.Estimate/maxEst*40))
		fmt.Printf("%-12s %12.1f", r.Label, r.Estimate)
		if truths != nil {
			tc := truths[r.Label]
			fmt.Printf(" %12d %8.2f", tc, deepsketch.QError(r.Estimate, float64(tc)))
		}
		fmt.Printf("  %s\n", bar)
	}
	return nil
}

// cmdRefresh is the offline half of the sketch lifecycle: load a sketch,
// fine-tune it on a drift-delta workload with a warm-started optimizer
// (the Adam state persisted in v2 sketch files), and write the refreshed
// sketch — ready to upload-and-swap into a running deepsketchd.
func cmdRefresh(args []string) error {
	fs := flag.NewFlagSet("refresh", flag.ExitOnError)
	dbf := addDBFlags(fs)
	path := fs.String("sketch", "sketch.dsk", "sketch file to refresh")
	out := fs.String("out", "", "output file (default: overwrite -sketch)")
	queries := fs.Int("queries", 2000, "delta workload size (generated fresh)")
	seed := fs.Int64("seed", 99, "delta workload generation seed")
	epochs := fs.Int("epochs", 0, "fine-tune epoch cap (0 = the sketch's build epochs)")
	stopq := fs.Float64("stopq", 0, "stop early at this validation mean q-error (0 = off)")
	workers := fs.Int("workers", 0, "labeling/training workers (0 = GOMAXPROCS)")
	fromWorkload := fs.String("fromworkload", "", "labeled delta workload file instead of generating one")
	quiet := fs.Bool("q", false, "suppress progress output")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		*out = *path
	}
	s, err := deepsketch.LoadFile(*path)
	if err != nil {
		return err
	}
	d, err := dbf.make()
	if err != nil {
		return err
	}
	if d.Name != s.DBName {
		return fmt.Errorf("sketch was built on dataset %q, -db is %q", s.DBName, *dbf.kind)
	}
	var labeled []deepsketch.LabeledQuery
	if *fromWorkload != "" {
		labeled, err = deepsketch.ReadWorkloadFile(d, *fromWorkload)
		if err != nil {
			return err
		}
	} else {
		qs, err := deepsketch.GenerateWorkload(d, deepsketch.GenConfig{
			Seed: *seed, Count: *queries, Tables: s.Cfg.Tables,
			MaxJoins: s.Cfg.MaxJoins, MaxPreds: s.Cfg.MaxPreds, Dedup: true,
		})
		if err != nil {
			return err
		}
		labeled, err = deepsketch.LabelWorkload(d, qs, *workers)
		if err != nil {
			return err
		}
	}
	mon := deepsketch.NewMonitor()
	if !*quiet {
		mon.AddSink(func(e trainmon.Event) {
			switch e.Kind {
			case trainmon.KindStageStart:
				fmt.Printf("stage %-10s %s\n", e.Stage, e.Msg)
			case trainmon.KindStageEnd:
				fmt.Printf("stage %-10s done in %v\n", e.Stage, e.Elapsed)
			case trainmon.KindEpoch:
				fmt.Printf("  epoch %3d  train-loss %10.3f  val mean-q %8.2f  median-q %6.2f\n",
					e.Epoch, e.TrainLoss, e.ValMeanQ, e.ValMedQ)
			}
		})
	}
	baseEpochs := len(s.Epochs)
	ns, err := deepsketch.Refresh(context.Background(), s, labeled, deepsketch.RefreshOptions{
		Epochs: *epochs, StopAtValQ: *stopq, Workers: *workers,
	}, mon)
	if err != nil {
		return err
	}
	// Write-temp-then-rename: the default -out overwrites the input sketch,
	// and a crash mid-save must not destroy the only copy.
	tmp := *out + ".tmp"
	if err := deepsketch.SaveFile(ns, tmp); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, *out); err != nil {
		os.Remove(tmp)
		return err
	}
	tuned := len(ns.Epochs) - baseEpochs
	last := ns.Epochs[len(ns.Epochs)-1]
	fmt.Printf("sketch %q refreshed on %d delta queries in %d epochs (val mean-q %.2f), written to %s\n",
		ns.Name(), len(labeled), tuned, last.ValMeanQ, *out)
	return nil
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	dbf := addDBFlags(fs)
	path := fs.String("sketch", "sketch.dsk", "sketch file")
	wl := fs.String("workload", "joblight", "workload: joblight or uniform")
	count := fs.Int("count", 200, "uniform workload size")
	seed := fs.Int64("seed", 42, "workload seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := deepsketch.LoadFile(*path)
	if err != nil {
		return err
	}
	d, err := dbf.make()
	if err != nil {
		return err
	}
	var qs []deepsketch.Query
	switch *wl {
	case "joblight":
		qs, err = deepsketch.JOBLight(d, *seed)
	case "uniform":
		qs, err = deepsketch.GenerateWorkload(d, deepsketch.GenConfig{
			Seed: *seed, Count: *count, Tables: s.Cfg.Tables,
			MaxJoins: s.Cfg.MaxJoins, MaxPreds: s.Cfg.MaxPreds, Dedup: true,
		})
	default:
		err = fmt.Errorf("unknown workload %q", *wl)
	}
	if err != nil {
		return err
	}
	labeled, err := deepsketch.LabelWorkload(d, qs, 0)
	if err != nil {
		return err
	}
	hyper, err := deepsketch.HyperEstimator(d, s.Cfg.SampleSize, s.Cfg.Seed)
	if err != nil {
		return err
	}
	rows, err := deepsketch.Compare(context.Background(), labeled, []deepsketch.Estimator{
		s, hyper, deepsketch.PostgresEstimator(d),
	})
	if err != nil {
		return err
	}
	fmt.Printf("Estimation errors (q-errors) on %s (%d queries):\n\n", *wl, len(labeled))
	fmt.Print(deepsketch.FormatReport(rows))
	// Also list the worst sketch queries to aid debugging.
	type bad struct {
		q  deepsketch.Query
		qe float64
	}
	var worst []bad
	for _, lq := range labeled {
		est, err := s.Cardinality(lq.Query)
		if err != nil {
			return err
		}
		worst = append(worst, bad{lq.Query, deepsketch.QError(est, float64(lq.Card))})
	}
	sort.Slice(worst, func(i, j int) bool { return worst[i].qe > worst[j].qe })
	fmt.Println("\nworst Deep Sketch queries:")
	for i := 0; i < 3 && i < len(worst); i++ {
		fmt.Printf("  q-err %8.1f  %s\n", worst[i].qe, worst[i].q.SQL(d))
	}
	return nil
}
