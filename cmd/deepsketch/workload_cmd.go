package main

import (
	"flag"
	"fmt"
	"os"

	"deepsketch"
	"deepsketch/internal/workload"
)

// cmdWorkload generates a labeled training workload and writes it in the
// original learnedcardinalities artifact format (tables#joins#predicates#
// cardinality), decoupling the expensive execution step from training runs:
//
//	deepsketch workload -db imdb -count 10000 -out train.csv
//	deepsketch build -db imdb -fromworkload train.csv -out imdb.dsk
func cmdWorkload(args []string) error {
	fs := flag.NewFlagSet("workload", flag.ExitOnError)
	dbf := addDBFlags(fs)
	out := fs.String("out", "workload.csv", "output file")
	count := fs.Int("count", 10000, "number of queries")
	maxJoins := fs.Int("maxjoins", 4, "max joins per query")
	maxPreds := fs.Int("maxpreds", 3, "max predicates per query")
	seed := fs.Int64("seed", 1, "generation seed")
	kind := fs.String("kind", "uniform", "workload kind: uniform or joblight")
	workers := fs.Int("workers", 0, "parallel execution workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := dbf.make()
	if err != nil {
		return err
	}
	var qs []deepsketch.Query
	switch *kind {
	case "uniform":
		qs, err = deepsketch.GenerateWorkload(d, deepsketch.GenConfig{
			Seed: *seed, Count: *count, MaxJoins: *maxJoins, MaxPreds: *maxPreds, Dedup: true,
		})
	case "joblight":
		qs, err = deepsketch.JOBLight(d, *seed)
	default:
		err = fmt.Errorf("unknown workload kind %q", *kind)
	}
	if err != nil {
		return err
	}
	fmt.Printf("executing %d queries for true cardinalities...\n", len(qs))
	labeled, err := deepsketch.LabelWorkload(d, qs, *workers)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := workload.WriteCSV(f, labeled); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d labeled queries to %s\n", len(labeled), *out)
	return nil
}
