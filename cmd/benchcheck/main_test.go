package main

import (
	"strings"
	"testing"
)

func TestCompare(t *testing.T) {
	base := map[string]float64{"estimate_latency_us": 20, "estimate_latency_f32_us": 10}
	keys := []string{"estimate_latency_us", "estimate_latency_f32_us"}

	// Within threshold either way: no findings.
	regs, imps := compare(base, map[string]float64{"estimate_latency_us": 24, "estimate_latency_f32_us": 8}, keys, 0.25)
	if len(regs) != 0 || len(imps) != 0 {
		t.Errorf("within threshold: regs=%v imps=%v", regs, imps)
	}

	// >25% slower on one metric: exactly that metric regresses.
	regs, _ = compare(base, map[string]float64{"estimate_latency_us": 26, "estimate_latency_f32_us": 10}, keys, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "estimate_latency_us") {
		t.Errorf("regression not flagged: %v", regs)
	}

	// >25% faster: reported as an improvement, not a regression.
	regs, imps = compare(base, map[string]float64{"estimate_latency_us": 20, "estimate_latency_f32_us": 7}, keys, 0.25)
	if len(regs) != 0 || len(imps) != 1 || !strings.Contains(imps[0], "f32") {
		t.Errorf("improvement not flagged: regs=%v imps=%v", regs, imps)
	}

	// Metric absent from either side is a finding, not a silent pass.
	regs, _ = compare(base, map[string]float64{"estimate_latency_us": 20}, keys, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "missing") {
		t.Errorf("missing metric not flagged: %v", regs)
	}
	regs, _ = compare(map[string]float64{}, map[string]float64{"estimate_latency_us": 20}, keys[:1], 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "baseline") {
		t.Errorf("missing baseline not flagged: %v", regs)
	}

	// A zero baseline cannot be ratioed against.
	regs, _ = compare(map[string]float64{"estimate_latency_us": 0}, map[string]float64{"estimate_latency_us": 20}, keys[:1], 0.25)
	if len(regs) != 1 {
		t.Errorf("zero baseline not flagged: %v", regs)
	}
}
