// Command benchcheck compares a freshly emitted perf-trajectory artifact
// (the BENCH_deepsketch.json written by TestPerfTrajectory) against a
// checked-in baseline and flags estimate-latency regressions.
//
//	go run ./cmd/benchcheck -baseline BENCH_baseline.json -current BENCH_deepsketch.json
//
// A metric regresses when the current value exceeds the baseline by more
// than -max-regress (default 0.25, i.e. 25%). By default regressions are
// reported as warnings and the exit code stays 0 — wall-clock latency is
// only comparable between runs on the same runner class, and CI's hosted
// runners are not the class the baseline was recorded on. Pass -strict to
// exit non-zero on regression (the mode for a dedicated, stable perf
// runner). Improvements beyond the threshold are reported too, as a nudge
// to refresh the baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
)

// artifact mirrors the perf-trajectory schema (deepsketch-perf-v1).
type artifact struct {
	Schema  string             `json:"schema"`
	Go      string             `json:"go"`
	Metrics map[string]float64 `json:"metrics"`
}

func loadArtifact(path string) (artifact, error) {
	var a artifact
	blob, err := os.ReadFile(path)
	if err != nil {
		return a, err
	}
	if err := json.Unmarshal(blob, &a); err != nil {
		return a, fmt.Errorf("%s: %w", path, err)
	}
	if len(a.Metrics) == 0 {
		return a, fmt.Errorf("%s: no metrics", path)
	}
	return a, nil
}

// compare checks each named lower-is-better metric and returns regression
// messages (current worse than baseline by more than maxRegress) and
// improvement notes (current better by more than maxRegress).
func compare(base, cur map[string]float64, keys []string, maxRegress float64) (regressions, improvements []string) {
	for _, k := range keys {
		b, okB := base[k]
		c, okC := cur[k]
		if !okB {
			regressions = append(regressions, fmt.Sprintf("%s: missing from baseline", k))
			continue
		}
		if !okC {
			regressions = append(regressions, fmt.Sprintf("%s: missing from current artifact", k))
			continue
		}
		if b <= 0 {
			regressions = append(regressions, fmt.Sprintf("%s: non-positive baseline %g", k, b))
			continue
		}
		switch ratio := c / b; {
		case ratio > 1+maxRegress:
			regressions = append(regressions, fmt.Sprintf("%s: %.2f vs baseline %.2f (+%.0f%%, threshold +%.0f%%)",
				k, c, b, (ratio-1)*100, maxRegress*100))
		case ratio < 1-maxRegress:
			improvements = append(improvements, fmt.Sprintf("%s: %.2f vs baseline %.2f (%.0f%% faster — consider refreshing the baseline)",
				k, c, b, (1-ratio)*100))
		}
	}
	return regressions, improvements
}

func main() {
	log.SetFlags(0)
	baseline := flag.String("baseline", "BENCH_baseline.json", "checked-in baseline artifact")
	current := flag.String("current", "BENCH_deepsketch.json", "freshly emitted artifact")
	maxRegress := flag.Float64("max-regress", 0.25, "tolerated fractional latency increase before a metric counts as regressed")
	metrics := flag.String("metrics", "estimate_latency_us,estimate_latency_f32_us", "comma-separated lower-is-better metrics to compare")
	strict := flag.Bool("strict", false, "exit non-zero on regression (for same-runner-class comparisons)")
	flag.Parse()

	base, err := loadArtifact(*baseline)
	if err != nil {
		log.Fatalf("benchcheck: %v", err)
	}
	cur, err := loadArtifact(*current)
	if err != nil {
		log.Fatalf("benchcheck: %v", err)
	}
	keys := strings.Split(*metrics, ",")
	for _, k := range keys {
		if b, ok := base.Metrics[k]; ok {
			if c, ok := cur.Metrics[k]; ok {
				log.Printf("benchcheck: %s: current %.2f, baseline %.2f (%+.1f%%)", k, c, b, (c/b-1)*100)
			}
		}
	}
	regs, imps := compare(base.Metrics, cur.Metrics, keys, *maxRegress)
	for _, msg := range imps {
		log.Printf("benchcheck: improvement: %s", msg)
	}
	if len(regs) == 0 {
		log.Printf("benchcheck: no estimate-latency regression beyond %.0f%%", *maxRegress*100)
		return
	}
	for _, msg := range regs {
		// ::warning:: renders as an annotation on GitHub-hosted runners and
		// is plain text everywhere else.
		fmt.Printf("::warning::benchcheck regression: %s\n", msg)
	}
	if *strict {
		os.Exit(1)
	}
	log.Printf("benchcheck: %d regression(s) — advisory only (baseline runner class differs; pass -strict on a dedicated perf runner)", len(regs))
}
