package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"deepsketch"
	"deepsketch/internal/fsx"
)

// The persistent store keeps each sketch's FULL version history, live
// pointer and canary state, so a daemon restarted mid-incident — or
// mid-canary — resumes exactly where it left off:
//
//	<store>/<name>/v1.dsk        version files, one per history entry
//	<store>/<name>/v2.dsk
//	<store>/<name>/state.json    {dataset, live, canary{version, fraction}}
//
// Version files are written once (a version's weights never change after
// it is published); state.json is rewritten atomically (temp + rename) on
// every live-pointer or canary transition, so a crash between the two
// leaves a consistent store. Flat legacy <name>.dsk files from the
// previous single-version layout still load (as a one-version history)
// and migrate to the directory layout on their next persisted change.

// storeState is the per-sketch state.json payload.
type storeState struct {
	Name    string       `json:"name"`
	Dataset string       `json:"dataset"`
	Live    int          `json:"live"`
	Canary  *storeCanary `json:"canary,omitempty"`
}

type storeCanary struct {
	Version  int     `json:"version"`
	Fraction float64 `json:"fraction"`
}

// persistVersion writes one sketch version file plus the current state
// (best effort; the in-memory registry stays authoritative).
func (s *server) persistVersion(e *sketchEntry, sk *deepsketch.Sketch, ver int) {
	if s.store == "" {
		return
	}
	dir := filepath.Join(s.store, sanitizeName(e.Name))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Printf("deepsketchd: store: %v", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("v%d.dsk", ver))
	if err := deepsketch.SaveFile(sk, path); err != nil {
		log.Printf("deepsketchd: persist %s v%d: %v", e.Name, ver, err)
		return
	}
	s.persistState(e)
	log.Printf("deepsketchd: persisted sketch %q v%d to %s", e.Name, ver, path)
}

// persistState snapshots the registry's live pointer and canary state for
// the entry into state.json, atomically.
func (s *server) persistState(e *sketchEntry) {
	if s.store == "" {
		return
	}
	reg := s.registries[e.Dataset]
	live, ok := reg.LiveVersion(e.Name)
	if !ok {
		return
	}
	st := storeState{Name: e.Name, Dataset: e.Dataset, Live: live}
	if ci, ok := reg.Canary(e.Name); ok {
		st.Canary = &storeCanary{Version: ci.Version, Fraction: ci.Fraction}
	}
	dir := filepath.Join(s.store, sanitizeName(e.Name))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Printf("deepsketchd: store: %v", err)
		return
	}
	blob, err := json.Marshal(st)
	if err != nil {
		log.Printf("deepsketchd: store state for %s: %v", e.Name, err)
		return
	}
	if err := fsx.AtomicWriteFile(filepath.Join(dir, "state.json"), append(blob, '\n'), 0o644); err != nil {
		log.Printf("deepsketchd: store state for %s: %v", e.Name, err)
	}
}

// loadStore restores every persisted sketch: directory layouts first
// (full version history + live pointer + canary), then flat legacy .dsk
// files (single version), skipping anything that fails to load.
func (s *server) loadStore() (int, error) {
	entries, err := os.ReadDir(s.store)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	var dirs, flats []string
	for _, ent := range entries {
		switch {
		case ent.IsDir():
			dirs = append(dirs, ent.Name())
		case strings.HasSuffix(ent.Name(), ".dsk"):
			flats = append(flats, ent.Name())
		}
	}
	sort.Strings(dirs)
	sort.Strings(flats)
	loaded := 0
	for _, name := range dirs {
		if err := s.loadVersionedDir(filepath.Join(s.store, name)); err != nil {
			log.Printf("deepsketchd: skipping %s: %v", name, err)
			continue
		}
		loaded++
	}
	for _, name := range flats {
		path := filepath.Join(s.store, name)
		sk, err := deepsketch.LoadFile(path)
		if err != nil {
			log.Printf("deepsketchd: skipping %s: %v", path, err)
			continue
		}
		if _, ok := s.datasets[sk.DBName]; !ok {
			log.Printf("deepsketchd: skipping %s: unknown dataset %q", path, sk.DBName)
			continue
		}
		e, err := s.register(sk.Name(), sk.DBName)
		if err != nil {
			// Typically: the directory layout already restored this name —
			// the flat file is a leftover from the pre-versioned store.
			log.Printf("deepsketchd: skipping %s: %v", path, err)
			continue
		}
		s.markReady(e, sk)
		s.mu.Lock()
		e.Created = time.Now()
		s.mu.Unlock()
		loaded++
	}
	return loaded, nil
}

// loadVersionedDir restores one sketch's full history from a store
// directory: all version files, the live pointer, and — when the daemon
// went down mid-canary — the canary split, re-armed at the same version
// and fraction.
func (s *server) loadVersionedDir(dir string) error {
	blob, err := os.ReadFile(filepath.Join(dir, "state.json"))
	if err != nil {
		return fmt.Errorf("state.json: %w", err)
	}
	var st storeState
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("state.json: %w", err)
	}
	if _, ok := s.datasets[st.Dataset]; !ok {
		return fmt.Errorf("unknown dataset %q", st.Dataset)
	}
	// A version file is written for every publish/refresh/canary, but
	// retention (-retain-versions) may have pruned old ones: scan whatever
	// v*.dsk files survive and restore the history with nil gaps for the
	// pruned versions. Version numbers are preserved — they key estimate
	// caches and WAL records — so a gap must not renumber later versions.
	found := map[int]*deepsketch.Sketch{}
	maxVer := 0
	files, err := filepath.Glob(filepath.Join(dir, "v*.dsk"))
	if err != nil {
		return err
	}
	for _, path := range files {
		var ver int
		if _, err := fmt.Sscanf(filepath.Base(path), "v%d.dsk", &ver); err != nil || ver < 1 {
			continue
		}
		sk, err := deepsketch.LoadFile(path)
		if err != nil {
			return fmt.Errorf("v%d.dsk: %w", ver, err)
		}
		if sk.Name() != st.Name {
			return fmt.Errorf("v%d.dsk is named %q, state says %q", ver, sk.Name(), st.Name)
		}
		// The live version passes through installVersion below, but a resumed
		// canary serves traffic straight from the registry — set the daemon's
		// engine precision on every restored version.
		sk.SetEnginePrecision(s.engine)
		found[ver] = sk
		if ver > maxVer {
			maxVer = ver
		}
	}
	if maxVer == 0 {
		return fmt.Errorf("no version files")
	}
	versions := make([]*deepsketch.Sketch, maxVer)
	for ver, sk := range found {
		versions[ver-1] = sk
	}
	if st.Live < 1 || st.Live > maxVer {
		return fmt.Errorf("live version %d outside stored history 1..%d", st.Live, maxVer)
	}
	if versions[st.Live-1] == nil {
		return fmt.Errorf("live version file v%d.dsk missing", st.Live)
	}
	reg := s.registries[st.Dataset]
	if err := reg.Restore(st.Name, versions, st.Live); err != nil {
		return err
	}
	status := "ready"
	if c := st.Canary; c != nil {
		if err := reg.ResumeCanary(st.Name, c.Version, c.Fraction); err != nil {
			log.Printf("deepsketchd: %s: canary not resumed: %v", st.Name, err)
		} else {
			status = "canarying"
			// Hand the resumed canary to the drift controller so the
			// comparative q-error gate finishes the rollout (when the
			// automatic loop is running; otherwise the operator promotes or
			// aborts via the API, as before the restart).
			s.controllers[st.Dataset].AdoptCanary(st.Name)
			log.Printf("deepsketchd: resumed canary v%d of %q at %g%%", c.Version, st.Name, c.Fraction*100)
		}
	}
	e, err := s.register(st.Name, st.Dataset)
	if err != nil {
		return err
	}
	s.installVersion(e, versions[st.Live-1], st.Live, status, "")
	s.mu.Lock()
	e.Created = time.Now()
	s.mu.Unlock()
	return nil
}

// pruneVersionFiles applies -retain-versions to one sketch's store
// directory after a promote: the live version's file plus the newest
// retainVersions other version files are kept, older ones are deleted.
// The in-memory registry keeps the full history (pruning only reclaims
// disk); after a restart the pruned versions restore as nil gaps that
// rollback refuses to land on. Caller holds e.adminMu.
func (s *server) pruneVersionFiles(e *sketchEntry) {
	if s.store == "" {
		return
	}
	live, ok := s.registries[e.Dataset].LiveVersion(e.Name)
	if !ok {
		return
	}
	dir := filepath.Join(s.store, sanitizeName(e.Name))
	files, err := filepath.Glob(filepath.Join(dir, "v*.dsk"))
	if err != nil {
		return
	}
	var vers []int
	for _, path := range files {
		var ver int
		if _, err := fmt.Sscanf(filepath.Base(path), "v%d.dsk", &ver); err == nil && ver >= 1 && ver != live {
			vers = append(vers, ver)
		}
	}
	if len(vers) <= s.retainVersions {
		return
	}
	sort.Sort(sort.Reverse(sort.IntSlice(vers)))
	for _, ver := range vers[s.retainVersions:] {
		path := filepath.Join(dir, fmt.Sprintf("v%d.dsk", ver))
		if err := os.Remove(path); err != nil {
			log.Printf("deepsketchd: prune %s: %v", path, err)
			continue
		}
		log.Printf("deepsketchd: pruned sketch %q v%d (retain-versions %d)", e.Name, ver, s.retainVersions)
	}
}

// sanitizeName makes a sketch name safe as a file name.
func sanitizeName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "sketch"
	}
	return b.String()
}
