package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"deepsketch"
)

// persist writes a ready sketch to the store directory (best effort; the
// in-memory entry stays authoritative).
func (s *server) persist(e *sketchEntry, sk *deepsketch.Sketch) {
	if s.store == "" {
		return
	}
	if err := os.MkdirAll(s.store, 0o755); err != nil {
		log.Printf("deepsketchd: store: %v", err)
		return
	}
	path := filepath.Join(s.store, fmt.Sprintf("%s.dsk", sanitizeName(e.Name)))
	if err := deepsketch.SaveFile(sk, path); err != nil {
		log.Printf("deepsketchd: persist %s: %v", e.Name, err)
		return
	}
	log.Printf("deepsketchd: persisted sketch %q to %s", e.Name, path)
}

// loadStore restores every *.dsk file in the store directory as a ready
// sketch, provided its dataset is one the server hosts.
func (s *server) loadStore() (int, error) {
	entries, err := os.ReadDir(s.store)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	names := make([]string, 0, len(entries))
	for _, ent := range entries {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".dsk") {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names)
	loaded := 0
	for _, name := range names {
		path := filepath.Join(s.store, name)
		sk, err := deepsketch.LoadFile(path)
		if err != nil {
			log.Printf("deepsketchd: skipping %s: %v", path, err)
			continue
		}
		if _, ok := s.datasets[sk.DBName]; !ok {
			log.Printf("deepsketchd: skipping %s: unknown dataset %q", path, sk.DBName)
			continue
		}
		e, err := s.register(sk.Name(), sk.DBName)
		if err != nil {
			log.Printf("deepsketchd: skipping %s: %v", path, err)
			continue
		}
		s.markReady(e, sk)
		s.mu.Lock()
		e.Created = time.Now()
		s.mu.Unlock()
		loaded++
	}
	return loaded, nil
}

// sanitizeName makes a sketch name safe as a file name.
func sanitizeName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "sketch"
	}
	return b.String()
}
