package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"deepsketch"
)

// TestAutoDriftLoopDaemon exercises the daemon's automatic loop glue: live
// estimate traffic feeds the per-dataset monitor, a trigger starts a
// controller cycle that refreshes into a canary over a daemon-generated
// delta workload, the gate promotes, and the entry mirrors every
// transition. The monitor queue and gate are driven explicitly (Drain and
// Tick) instead of background loops, keeping the test deterministic.
func TestAutoDriftLoopDaemon(t *testing.T) {
	srv := newServerWithDrift(800, 400, 3,
		deepsketch.DriftConfig{
			// Sample everything, judge after 6 samples, and treat any median
			// q-error above 1.01 as drift — a deliberately hair-trigger
			// config so the tiny fixture sketch provably trips it.
			SampleEvery: 1, Window: 64, MinSamples: 6,
			MaxMedianQ: 1.01, Cooldown: time.Hour, QueueSize: 4096,
		},
		deepsketch.DriftControllerConfig{
			// The gate is intentionally lax (ratio 100): this test is about
			// the daemon wiring, not the gate's judgement — the drift
			// package's e2e test covers that.
			CanaryFraction: 0.5, PromoteAfter: 3, MaxQRatio: 100,
			Epochs: 1, Workers: 2,
		})
	h := srv.routes()
	id := buildReadySketch(t, h, "auto drift")
	ctx := context.Background()

	sqls := make([]string, 0, 12)
	for year := 1960; year < 2020; year += 5 {
		sqls = append(sqls, fmt.Sprintf("SELECT COUNT(*) FROM title t WHERE t.production_year>%d", year))
	}
	traffic := func() {
		t.Helper()
		for _, sql := range sqls {
			rec := post(t, h, "/api/estimate", estimateReq{SketchID: id, SQL: sql})
			if rec.Code != http.StatusOK {
				t.Fatalf("estimate: %d %s", rec.Code, rec.Body)
			}
		}
	}

	// Phase 1: traffic + drain until the trigger fires and the controller's
	// background cycle lands the canary.
	traffic()
	srv.monitors["imdb"].Drain(ctx)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, ok := srv.registries["imdb"].Canary("auto drift"); ok {
			break
		}
		if cy := srv.controllers["imdb"].Cycle("auto drift"); cy.State == "idle" && cy.LastError != "" {
			t.Fatalf("drift cycle failed: %s", cy.LastError)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no canary appeared; cycle=%+v monitor=%+v",
				srv.controllers["imdb"].Cycle("auto drift"), srv.monitors["imdb"].Status("auto drift"))
		}
		time.Sleep(20 * time.Millisecond)
	}
	awaitStatus(t, h, id, "canarying")

	// Phase 2: more traffic so canary-split samples accumulate, then let
	// the gate judge. The lax ratio guarantees promotion.
	deadline = time.Now().Add(60 * time.Second)
	for {
		traffic()
		srv.monitors["imdb"].Drain(ctx)
		srv.controllers["imdb"].Tick()
		status, version, canary := entryState(t, h, id)
		if status == "ready" && version == 2 && canary == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canary never promoted; status=%s version=%d canary=%+v cycle=%+v",
				status, version, canary, srv.controllers["imdb"].Cycle("auto drift"))
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The drift endpoint reflects the completed loop: a trigger on record,
	// windows for both versions, cycle back to idle.
	rec := get(t, h, fmt.Sprintf("/api/sketches/%d/drift", id))
	if rec.Code != http.StatusOK {
		t.Fatalf("drift endpoint: %d %s", rec.Code, rec.Body)
	}
	var out struct {
		Monitor deepsketch.DriftStatus      `json:"monitor"`
		Cycle   deepsketch.DriftCycleStatus `json:"cycle"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Monitor.LastTrigger == nil || out.Monitor.LastTrigger.Kind != "median" {
		t.Errorf("last trigger = %+v, want a median trigger", out.Monitor.LastTrigger)
	}
	if len(out.Monitor.Versions) < 2 {
		t.Errorf("monitor windows = %+v, want both versions observed", out.Monitor.Versions)
	}
	if out.Cycle.State != "idle" {
		t.Errorf("cycle state %q after promotion, want idle", out.Cycle.State)
	}
}
