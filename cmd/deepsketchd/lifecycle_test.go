package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// put sends a raw-body PUT (the upload-and-swap endpoint takes a sketch
// file, not JSON).
func put(t *testing.T, h http.Handler, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("PUT", path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// awaitStatus polls a sketch until it reaches want (failing fast on
// "failed") and returns the final entry JSON.
func awaitStatus(t *testing.T, h http.Handler, id int, want string) []byte {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		rec := get(t, h, fmt.Sprintf("/api/sketches/%d", id))
		if rec.Code != 200 {
			t.Fatalf("get status %d", rec.Code)
		}
		var st struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == "failed" || st.Error != "" {
			t.Fatalf("sketch %d failed: %s", id, st.Error)
		}
		if st.Status == want {
			return rec.Body.Bytes()
		}
		if time.Now().After(deadline) {
			t.Fatalf("sketch %d stuck in %q waiting for %q", id, st.Status, want)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func buildReadySketch(t *testing.T, h http.Handler, name string) int {
	t.Helper()
	rec := post(t, h, "/api/sketches", createReq{
		Name: name, Dataset: "imdb", SampleSize: 24, TrainQueries: 100, Epochs: 2, HiddenUnits: 8, Seed: 1,
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("create status %d: %s", rec.Code, rec.Body)
	}
	var entry sketchEntry
	if err := json.Unmarshal(rec.Body.Bytes(), &entry); err != nil {
		t.Fatal(err)
	}
	awaitStatus(t, h, entry.ID, "ready")
	return entry.ID
}

func TestDuplicateSketchNameConflicts(t *testing.T) {
	srv := testServer(t)
	h := srv.routes()
	id := buildReadySketch(t, h, "dup")
	rec := post(t, h, "/api/sketches", createReq{
		Name: "dup", Dataset: "imdb", SampleSize: 24, TrainQueries: 100, Epochs: 1, HiddenUnits: 8, Seed: 2,
	})
	if rec.Code != http.StatusConflict {
		t.Fatalf("duplicate name status = %d, want 409 (%s)", rec.Code, rec.Body)
	}
	// Same name on the other dataset is a different fleet — allowed.
	rec = post(t, h, "/api/sketches", createReq{
		Name: "dup", Dataset: "tpch", SampleSize: 24, TrainQueries: 100, Epochs: 1, HiddenUnits: 8, Seed: 2,
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("same name on other dataset status = %d", rec.Code)
	}
	_ = id
}

func TestUploadSwapRollbackVersions(t *testing.T) {
	srv := testServer(t)
	h := srv.routes()
	id := buildReadySketch(t, h, "lifecycle")

	// Version 1 after the initial build, visible in GET and estimates.
	body := awaitStatus(t, h, id, "ready")
	var info struct {
		Version  int `json:"version"`
		Versions []struct {
			Version int  `json:"version"`
			Live    bool `json:"live"`
		} `json:"versions"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || len(info.Versions) != 1 || !info.Versions[0].Live {
		t.Fatalf("fresh sketch version info: %s", body)
	}

	estimate := func() (float64, int, string) {
		rec := post(t, h, "/api/estimate", estimateReq{
			SketchID: id, SQL: "SELECT COUNT(*) FROM title t WHERE t.production_year>2000",
		})
		if rec.Code != 200 {
			t.Fatalf("estimate status %d: %s", rec.Code, rec.Body)
		}
		var out struct {
			DeepSketch float64 `json:"deep_sketch"`
			Version    int     `json:"version"`
			Source     string  `json:"source"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out.DeepSketch, out.Version, out.Source
	}
	v1Answer, ver, _ := estimate()
	if ver != 1 {
		t.Errorf("estimate version = %d, want 1", ver)
	}

	// Upload-and-swap: download the current file, build a differently
	// trained sketch? Simplest distinguishable upload: another entry's
	// file. Build one with a different seed and upload its bytes.
	otherID := buildReadySketch(t, h, "donor")
	recDl := get(t, h, fmt.Sprintf("/api/sketches/%d/download", otherID))
	if recDl.Code != 200 {
		t.Fatalf("download status %d", recDl.Code)
	}
	recUp := put(t, h, fmt.Sprintf("/api/sketches/%d", id), recDl.Body.Bytes())
	if recUp.Code != 200 {
		t.Fatalf("upload status %d: %s", recUp.Code, recUp.Body)
	}
	var upEntry sketchEntry
	if err := json.Unmarshal(recUp.Body.Bytes(), &upEntry); err != nil {
		t.Fatal(err)
	}
	if upEntry.Version != 2 {
		t.Errorf("after upload version = %d, want 2", upEntry.Version)
	}
	v2Answer, ver, src := estimate()
	if ver != 2 {
		t.Errorf("post-upload estimate version = %d, want 2", ver)
	}
	if src != "lifecycle" {
		t.Errorf("post-upload estimate source = %q, want the entry's name", src)
	}

	// Rollback restores version 1's answers.
	recRb := post(t, h, fmt.Sprintf("/api/sketches/%d/rollback", id), nil)
	if recRb.Code != 200 {
		t.Fatalf("rollback status %d: %s", recRb.Code, recRb.Body)
	}
	back, ver, _ := estimate()
	if ver != 1 {
		t.Errorf("post-rollback estimate version = %d, want 1", ver)
	}
	if back != v1Answer {
		t.Errorf("post-rollback answer %v, want version 1's %v (v2 was %v)", back, v1Answer, v2Answer)
	}
	// Rolling back past version 1 conflicts.
	if rec := post(t, h, fmt.Sprintf("/api/sketches/%d/rollback", id), nil); rec.Code != http.StatusConflict {
		t.Errorf("rollback past v1 status = %d, want 409", rec.Code)
	}

	// Bad uploads: garbage body, wrong dataset.
	if rec := put(t, h, fmt.Sprintf("/api/sketches/%d", id), []byte("junk")); rec.Code != http.StatusBadRequest {
		t.Errorf("garbage upload status = %d, want 400", rec.Code)
	}
	tpchID := buildReadySketch(t, h, "wrong-ds")
	_ = tpchID
	recDl = get(t, h, fmt.Sprintf("/api/sketches/%d/download", id))
	rec := post(t, h, "/api/sketches", createReq{
		Name: "tpch-target", Dataset: "tpch", SampleSize: 24, TrainQueries: 100, Epochs: 1, HiddenUnits: 8, Seed: 3,
	})
	var tpchEntry sketchEntry
	if err := json.Unmarshal(rec.Body.Bytes(), &tpchEntry); err != nil {
		t.Fatal(err)
	}
	awaitStatus(t, h, tpchEntry.ID, "ready")
	if rec := put(t, h, fmt.Sprintf("/api/sketches/%d", tpchEntry.ID), recDl.Body.Bytes()); rec.Code != http.StatusBadRequest {
		t.Errorf("cross-dataset upload status = %d, want 400", rec.Code)
	}
}

func TestRefreshEndpoint(t *testing.T) {
	srv := testServer(t)
	h := srv.routes()
	id := buildReadySketch(t, h, "refresh-me")

	rec := post(t, h, fmt.Sprintf("/api/sketches/%d/refresh", id), refreshReq{
		Queries: 80, Epochs: 1, Workers: 2, Seed: 99,
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("refresh status %d: %s", rec.Code, rec.Body)
	}
	body := awaitStatus(t, h, id, "ready")
	var info struct {
		Version  int `json:"version"`
		Versions []struct {
			Version int  `json:"version"`
			Live    bool `json:"live"`
			Epochs  int  `json:"epochs"`
		} `json:"versions"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 {
		t.Fatalf("after refresh version = %d, want 2 (%s)", info.Version, body)
	}
	if len(info.Versions) != 2 || !info.Versions[1].Live || info.Versions[0].Live {
		t.Fatalf("version history after refresh: %s", body)
	}
	if info.Versions[1].Epochs <= info.Versions[0].Epochs {
		t.Errorf("refreshed version should accumulate epochs: %+v", info.Versions)
	}
	// Refresh of a missing sketch 404s.
	if rec := post(t, h, "/api/sketches/999/refresh", refreshReq{}); rec.Code != http.StatusNotFound {
		t.Errorf("missing sketch refresh status = %d", rec.Code)
	}
}
