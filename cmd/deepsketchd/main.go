// Command deepsketchd is the demonstration server: the reproduction of the
// paper's web demo (Figure 2). It serves the synthetic IMDb and TPC-H
// datasets and lets clients define Deep Sketches, monitor their training,
// and run ad-hoc and template queries against trained sketches — with
// overlays from the HyPer-style and PostgreSQL-style estimators and the
// true cardinality, like the demo UI's chart. New sketches train in the
// background while existing ones keep serving queries ("we allow users to
// train new models while querying existing ones").
//
//	deepsketchd -addr :8080 -titles 20000 -orders 15000 -prebuilt
//
// JSON API:
//
//	GET  /api/datasets                 schemas of the available datasets
//	GET  /api/sketches                 sketch list with build status
//	POST /api/sketches                 define a sketch (async build)
//	GET  /api/sketches/{id}            status, progress snapshot, epochs
//	GET  /api/sketches/{id}/download   serialized sketch file
//	POST /api/estimate                 {sketch_id, sql} -> all overlays
//	POST /api/template                 {sketch_id, sql, group, buckets}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"deepsketch"
	"deepsketch/internal/trainmon"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	titles := flag.Int("titles", 20000, "imdb scale (titles)")
	orders := flag.Int("orders", 15000, "tpch scale (orders)")
	seed := flag.Int64("seed", 1, "dataset seed")
	prebuilt := flag.Bool("prebuilt", false, "build a small ready-to-query sketch per dataset at startup")
	store := flag.String("store", "", "directory to persist sketches across restarts (empty = in-memory only)")
	flag.Parse()

	srv := newServer(*titles, *orders, *seed)
	srv.store = *store
	if srv.store != "" {
		if n, err := srv.loadStore(); err != nil {
			log.Printf("deepsketchd: loading store: %v", err)
		} else if n > 0 {
			log.Printf("deepsketchd: restored %d sketches from %s", n, srv.store)
		}
	}
	if *prebuilt {
		srv.startPrebuilt()
	}
	log.Printf("deepsketchd listening on %s (imdb: %d total rows, tpch: %d total rows)",
		*addr, srv.datasets["imdb"].TotalRows(), srv.datasets["tpch"].TotalRows())
	log.Fatal(http.ListenAndServe(*addr, srv.routes()))
}

// sketchEntry tracks one sketch through its lifecycle.
type sketchEntry struct {
	ID      int       `json:"id"`
	Name    string    `json:"name"`
	Dataset string    `json:"dataset"`
	Status  string    `json:"status"` // building | ready | failed
	Error   string    `json:"error,omitempty"`
	Created time.Time `json:"created"`
	sketch  *deepsketch.Sketch
	// serving is the sketch behind its serving stack: an LRU estimate
	// cache over a clamped micro-batching coalescer. All request traffic
	// to this sketch goes through it.
	serving deepsketch.Estimator
	mon     *deepsketch.Monitor
}

type baseline struct {
	hyper deepsketch.Estimator
	pg    deepsketch.Estimator
}

type server struct {
	datasets map[string]*deepsketch.DB
	baseline map[string]baseline
	// routers dispatch auto-routed queries to the most specific ready
	// sketch of each dataset; auto wraps them in the serving chain
	// Router → PostgreSQL, so a query no sketch covers still gets an
	// answer instead of an error.
	routers map[string]*deepsketch.Router
	auto    map[string]*deepsketch.EstimateCache

	// store, when non-empty, is a directory where ready sketches are
	// persisted and from which they are restored at startup.
	store string

	mu       sync.RWMutex
	sketches map[int]*sketchEntry
	nextID   int
}

func newServer(titles, orders int, seed int64) *server {
	s := &server{
		datasets: map[string]*deepsketch.DB{
			"imdb": deepsketch.NewIMDb(deepsketch.IMDbConfig{Seed: seed, Titles: titles}),
			"tpch": deepsketch.NewTPCH(deepsketch.TPCHConfig{Seed: seed, Orders: orders}),
		},
		baseline: map[string]baseline{},
		routers:  map[string]*deepsketch.Router{},
		auto:     map[string]*deepsketch.EstimateCache{},
		sketches: map[int]*sketchEntry{},
		nextID:   1,
	}
	for name, d := range s.datasets {
		hyper, err := deepsketch.HyperEstimator(d, 1000, seed)
		if err != nil {
			log.Fatalf("baseline for %s: %v", name, err)
		}
		pg := deepsketch.PostgresEstimator(d)
		s.baseline[name] = baseline{hyper: hyper, pg: pg}
		r := deepsketch.NewRouter()
		s.routers[name] = r
		// Auto-routed traffic gets the same serving treatment as explicit
		// sketch requests: coalesced batched inference behind the router,
		// clamped, PostgreSQL fallback for uncovered queries, all cached.
		// The fallback sits inside the coalescer so a coalesced batch that
		// contains uncovered queries bisects into batched router calls plus
		// per-query PostgreSQL answers, instead of failing wholesale and
		// serializing the whole flush.
		s.auto[name] = deepsketch.WithCache(
			deepsketch.NewCoalescer(
				deepsketch.Fallback(
					deepsketch.Clamp(r, deepsketch.MaxCardinality(d)),
					pg),
				deepsketch.CoalesceOptions{}),
			1024)
	}
	return s
}

// markReady publishes a built sketch: serving stack, router registration,
// entry status. The coalescer lives as long as the entry (sketches are
// never deleted), so it is not closed.
func (s *server) markReady(e *sketchEntry, sk *deepsketch.Sketch) {
	d := s.datasets[e.Dataset]
	serving := deepsketch.WithCache(
		deepsketch.Clamp(
			deepsketch.NewCoalescer(sk, deepsketch.CoalesceOptions{}),
			deepsketch.MaxCardinality(d)),
		1024)
	s.mu.Lock()
	e.sketch = sk
	e.serving = serving
	e.Status = "ready"
	s.mu.Unlock()
	s.routers[e.Dataset].Register(sk)
	// Registration changes which backend covers which queries; cached
	// auto-routed answers (e.g. PostgreSQL fallbacks) may now be stale.
	s.auto[e.Dataset].Reset()
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.handleIndex)
	mux.HandleFunc("GET /api/datasets", s.handleDatasets)
	mux.HandleFunc("GET /api/sketches", s.handleSketchList)
	mux.HandleFunc("POST /api/sketches", s.handleSketchCreate)
	mux.HandleFunc("GET /api/sketches/{id}", s.handleSketchGet)
	mux.HandleFunc("GET /api/sketches/{id}/download", s.handleSketchDownload)
	mux.HandleFunc("POST /api/estimate", s.handleEstimate)
	mux.HandleFunc("POST /api/template", s.handleTemplate)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("deepsketchd: encode response: %v", err)
	}
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	type colInfo struct {
		Name string `json:"name"`
		Type string `json:"type"`
	}
	type tblInfo struct {
		Name string    `json:"name"`
		Rows int       `json:"rows"`
		Cols []colInfo `json:"columns"`
	}
	out := map[string][]tblInfo{}
	for name, d := range s.datasets {
		var tbls []tblInfo
		for _, tn := range d.TableNames() {
			t := d.Table(tn)
			ti := tblInfo{Name: tn, Rows: t.NumRows()}
			for _, c := range t.Cols {
				ti.Cols = append(ti.Cols, colInfo{Name: c.Name, Type: c.Type.String()})
			}
			tbls = append(tbls, ti)
		}
		out[name] = tbls
	}
	writeJSON(w, http.StatusOK, out)
}

type createReq struct {
	Name         string   `json:"name"`
	Dataset      string   `json:"dataset"`
	Tables       []string `json:"tables"`
	SampleSize   int      `json:"sample_size"`
	TrainQueries int      `json:"train_queries"`
	Epochs       int      `json:"epochs"`
	HiddenUnits  int      `json:"hidden_units"`
	Seed         int64    `json:"seed"`
}

func (s *server) handleSketchCreate(w http.ResponseWriter, r *http.Request) {
	var req createReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Dataset == "" {
		req.Dataset = "imdb"
	}
	d, ok := s.datasets[req.Dataset]
	if !ok {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown dataset %q", req.Dataset))
		return
	}
	entry := s.register(req.Name, req.Dataset)
	go s.build(entry, d, req)
	writeJSON(w, http.StatusAccepted, entry)
}

func (s *server) register(name, dataset string) *sketchEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	if name == "" {
		name = fmt.Sprintf("%s-sketch-%d", dataset, id)
	}
	e := &sketchEntry{
		ID: id, Name: name, Dataset: dataset, Status: "building",
		Created: time.Now(), mon: deepsketch.NewMonitor(),
	}
	s.sketches[id] = e
	return e
}

// build runs the creation pipeline in the background.
func (s *server) build(e *sketchEntry, d *deepsketch.DB, req createReq) {
	mcfg := deepsketch.DefaultModelConfig()
	if req.Epochs > 0 {
		mcfg.Epochs = req.Epochs
	}
	if req.HiddenUnits > 0 {
		mcfg.HiddenUnits = req.HiddenUnits
	}
	mcfg.Seed = req.Seed
	cfg := deepsketch.Config{
		Name: e.Name, Tables: req.Tables, SampleSize: req.SampleSize,
		TrainQueries: req.TrainQueries, Seed: req.Seed, Model: mcfg,
	}
	sk, err := deepsketch.Build(d, cfg, e.mon)
	if err != nil {
		s.mu.Lock()
		e.Status = "failed"
		e.Error = err.Error()
		s.mu.Unlock()
		return
	}
	s.markReady(e, sk)
	s.persist(e, sk)
}

// startPrebuilt creates one small high-quality sketch per dataset so users
// can query immediately ("we offer pre-built (high quality) models that can
// be queried right away").
func (s *server) startPrebuilt() {
	for name, d := range s.datasets {
		e := s.register("prebuilt-"+name, name)
		go s.build(e, d, createReq{
			Dataset: name, SampleSize: 500, TrainQueries: 3000, Epochs: 20, HiddenUnits: 32, Seed: 7,
		})
	}
}

func (s *server) handleSketchList(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*sketchEntry, 0, len(s.sketches))
	for id := 1; id < s.nextID; id++ {
		if e, ok := s.sketches[id]; ok {
			out = append(out, e)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) entryByID(r *http.Request) (*sketchEntry, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return nil, fmt.Errorf("bad sketch id")
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.sketches[id]
	if !ok {
		return nil, fmt.Errorf("no sketch %d", id)
	}
	return e, nil
}

func (s *server) handleSketchGet(w http.ResponseWriter, r *http.Request) {
	e, err := s.entryByID(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	type resp struct {
		*sketchEntry
		Progress trainmon.Snapshot `json:"progress"`
		Epochs   []trainmon.Event  `json:"epoch_events"`
	}
	var epochs []trainmon.Event
	for _, ev := range e.mon.Events() {
		if ev.Kind == trainmon.KindEpoch {
			epochs = append(epochs, ev)
		}
	}
	writeJSON(w, http.StatusOK, resp{sketchEntry: e, Progress: e.mon.Snapshot(), Epochs: epochs})
}

func (s *server) handleSketchDownload(w http.ResponseWriter, r *http.Request) {
	e, err := s.entryByID(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.mu.RLock()
	sk := e.sketch
	s.mu.RUnlock()
	if sk == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("sketch %d not ready", e.ID))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", e.Name+".dsk"))
	if err := sk.Save(w); err != nil {
		log.Printf("deepsketchd: download: %v", err)
	}
}

func (s *server) readySketch(id int) (*sketchEntry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.sketches[id]
	if !ok {
		return nil, fmt.Errorf("no sketch %d", id)
	}
	if e.sketch == nil {
		return nil, fmt.Errorf("sketch %d is %s", id, e.Status)
	}
	return e, nil
}

type estimateReq struct {
	// SketchID selects a sketch explicitly; 0 routes automatically through
	// the dataset's sketch router, falling back to the PostgreSQL-style
	// estimator when no ready sketch covers the query's tables.
	SketchID int    `json:"sketch_id"`
	Dataset  string `json:"dataset,omitempty"`
	SQL      string `json:"sql"`
}

// handleEstimate computes all the demo's overlays for one ad-hoc query:
// Deep Sketch (through the serving stack), HyPer, PostgreSQL, and the true
// cardinality. The client disconnecting cancels the work via the request
// context.
func (s *server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req estimateReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	dataset := req.Dataset
	var serving deepsketch.Estimator
	if req.SketchID == 0 {
		if dataset == "" {
			dataset = "imdb"
		}
		est, ok := s.auto[dataset]
		if !ok {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown dataset %q", dataset))
			return
		}
		serving = est
	} else {
		e, err := s.readySketch(req.SketchID)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		serving = e.serving
		dataset = e.Dataset
	}
	d := s.datasets[dataset]
	q, err := deepsketch.ParseSQL(d, req.SQL)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	est, err := serving.Estimate(ctx, q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	truth, err := deepsketch.TrueCardinality(d, q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	bl := s.baseline[dataset]
	hyperEst, err := bl.hyper.Estimate(ctx, q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	pgEst, err := bl.pg.Estimate(ctx, q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sql":         q.SQL(d),
		"deep_sketch": est.Cardinality,
		"source":      est.Source,
		"latency_ms":  float64(est.Latency.Microseconds()) / 1000.0,
		"cache_hit":   est.CacheHit,
		"hyper":       hyperEst.Cardinality,
		"postgresql":  pgEst.Cardinality,
		"true":        truth,
		"q_errors": map[string]float64{
			"deep_sketch": deepsketch.QError(est.Cardinality, float64(truth)),
			"hyper":       deepsketch.QError(hyperEst.Cardinality, float64(truth)),
			"postgresql":  deepsketch.QError(pgEst.Cardinality, float64(truth)),
		},
	})
}

type templateReq struct {
	SketchID int    `json:"sketch_id"`
	SQL      string `json:"sql"`
	Group    string `json:"group"`   // distinct | buckets
	Buckets  int    `json:"buckets"` // for group=buckets
	Truth    bool   `json:"truth"`   // include true cardinalities
}

// handleTemplate serves the demo's placeholder queries: one series point per
// template instance, with optional overlays.
func (s *server) handleTemplate(w http.ResponseWriter, r *http.Request) {
	var req templateReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	e, err := s.readySketch(req.SketchID)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	g := deepsketch.GroupDistinct
	if req.Group == "buckets" {
		g = deepsketch.GroupBuckets
		if req.Buckets <= 0 {
			req.Buckets = 20
		}
	}
	res, err := e.sketch.EstimateTemplateSQL(r.Context(), req.SQL, g, req.Buckets)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	d := s.datasets[e.Dataset]
	bl := s.baseline[e.Dataset]
	type point struct {
		Label      string  `json:"label"`
		Estimate   float64 `json:"deep_sketch"`
		Hyper      float64 `json:"hyper,omitempty"`
		PostgreSQL float64 `json:"postgresql,omitempty"`
		True       *int64  `json:"true,omitempty"`
	}
	points := make([]point, 0, len(res))
	for _, inst := range res {
		p := point{Label: inst.Label, Estimate: inst.Estimate}
		if req.Truth {
			tc, err := deepsketch.TrueCardinality(d, inst.Query)
			if err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			p.True = &tc
			he, err := bl.hyper.Estimate(r.Context(), inst.Query)
			if err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			p.Hyper = he.Cardinality
			pe, err := bl.pg.Estimate(r.Context(), inst.Query)
			if err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			p.PostgreSQL = pe.Cardinality
		}
		points = append(points, p)
	}
	writeJSON(w, http.StatusOK, map[string]any{"points": points})
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}
