// Command deepsketchd is the demonstration server: the reproduction of the
// paper's web demo (Figure 2). It serves the synthetic IMDb and TPC-H
// datasets and lets clients define Deep Sketches, monitor their training,
// and run ad-hoc and template queries against trained sketches — with
// overlays from the HyPer-style and PostgreSQL-style estimators and the
// true cardinality, like the demo UI's chart. New sketches train in the
// background while existing ones keep serving queries ("we allow users to
// train new models while querying existing ones").
//
//	deepsketchd -addr :8080 -titles 20000 -orders 15000 -prebuilt
//
// JSON API:
//
//	GET  /api/datasets                 schemas of the available datasets
//	GET  /api/sketches                 sketch list with build status
//	POST /api/sketches                 define a sketch (async build; 409 on duplicate name)
//	GET  /api/sketches/{id}            status, progress, epochs, version history, canary
//	PUT  /api/sketches/{id}            upload a sketch file and swap it in as a new version
//	GET  /api/sketches/{id}/download   serialized sketch file
//	POST /api/sketches/{id}/refresh    warm-start retrain on a delta workload, swap in
//	POST /api/sketches/{id}/rollback   revert to the previous version
//	GET  /api/sketches/{id}/drift      live q-error windows, trigger state, canary cycle
//	POST /api/sketches/{id}/canary     refresh into a canary at a traffic fraction (or re-fraction)
//	POST /api/sketches/{id}/promote    make the canary live for 100% of traffic
//	DELETE /api/sketches/{id}/canary   abort the canary; the live version resumes all traffic
//	POST /api/estimate                 {sketch_id, sql} -> all overlays (+ serving version)
//	POST /api/template                 {sketch_id, sql, group, buckets}
//
// # Refreshing a live sketch
//
// Sketches are versioned, long-lived serving artifacts managed by a
// per-dataset lifecycle registry: the initial build is version 1, and
// every refresh, upload or rollback changes which version serves — under
// traffic, atomically, with the estimate caches invalidated on the next
// request (they watch the registry generation). To refresh a sketch after
// the data has drifted:
//
//	POST /api/sketches/1/refresh
//	{"queries": 2000, "epochs": 5, "workers": 4}
//
// The daemon generates and labels a fresh delta workload over the sketch's
// tables, fine-tunes a clone of the serving model — resuming the Adam
// moments persisted in the sketch file, so a handful of epochs reaches
// full-build quality — and swaps the result in as the next version. The
// old version keeps serving until the swap; a failed refresh never
// replaces it. Poll GET /api/sketches/1 for status ("refreshing" → "ready",
// the version field bumps) and the full version history. If the refreshed
// model misbehaves, POST /api/sketches/1/rollback restores the previous
// version immediately; estimate responses carry the serving version so
// clients can tell which model answered. Retrained offline instead? Upload
// the .dsk file with PUT /api/sketches/1 to swap it in the same way.
//
// # Canary rollouts
//
// A refresh does not have to take 100% of traffic at once. POST
// /api/sketches/1/canary {"fraction": 0.1, "queries": 2000} fine-tunes
// like refresh but installs the result as a canary: 10% of the sketch's
// traffic (hash-split by query signature, so a given query is answered
// consistently) goes to the candidate while the live version keeps the
// rest. Estimate caches are keyed by serving version, so both splits stay
// coherent. Watch GET /api/sketches/1/drift for the per-version windowed
// q-error comparison, then POST /api/sketches/1/promote to make the
// candidate live — or DELETE /api/sketches/1/canary to withdraw it.
//
// # Automatic drift repair
//
// With -drift, the daemon closes the loop itself: a monitor samples live
// estimates (every -drift-sample'th per sketch), obtains the true
// cardinality asynchronously, and keeps a windowed q-error distribution
// per sketch version. When the windowed median or p95 exceeds its
// threshold — or the -drift-staleness clock expires — the daemon
// warm-refreshes the sketch on a fresh delta workload, canaries it at
// -canary-fraction, and promotes or aborts on the comparative windowed
// q-error once -canary-promote-after ground-truthed canary samples are in.
// All of it is persisted to -store, so a restart mid-canary resumes the
// rollout where it left off.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"deepsketch"
	"deepsketch/internal/trainmon"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	titles := flag.Int("titles", 20000, "imdb scale (titles)")
	orders := flag.Int("orders", 15000, "tpch scale (orders)")
	seed := flag.Int64("seed", 1, "dataset seed")
	prebuilt := flag.Bool("prebuilt", false, "build a small ready-to-query sketch per dataset at startup")
	store := flag.String("store", "", "directory to persist sketches across restarts (empty = in-memory only)")
	driftAuto := flag.Bool("drift", false, "automatically refresh+canary sketches when live q-error drifts")
	driftSample := flag.Int("drift-sample", 10, "ground-truth every Nth estimate per sketch (0 disables sampling)")
	driftWindow := flag.Int("drift-window", 256, "rolling q-error window per sketch version")
	driftMedian := flag.Float64("drift-median", 0, "trigger when the windowed median q-error exceeds this (0 = off)")
	driftP95 := flag.Float64("drift-p95", 0, "trigger when the windowed p95 q-error exceeds this (0 = off)")
	driftStale := flag.Duration("drift-staleness", 0, "trigger when a sketch has not refreshed for this long (0 = off)")
	driftCooldown := flag.Duration("drift-cooldown", time.Minute, "minimum gap between drift triggers per sketch")
	driftInterval := flag.Duration("drift-interval", 5*time.Second, "canary gate / staleness evaluation interval")
	canaryFraction := flag.Float64("canary-fraction", 0.1, "traffic fraction automatic refreshes canary at")
	canaryPromote := flag.Int("canary-promote-after", 20, "ground-truthed canary samples before the gate judges")
	canaryRatio := flag.Float64("canary-max-ratio", 1.1, "promote iff canary median q-error ≤ ratio × live median")
	walDir := flag.String("wal", "", "directory for the observation WAL (empty = no durable feedback log)")
	driftTruth := flag.Bool("drift-truth", true, "ground-truth sampled estimates with the in-process exact executor; false relies on actuals POSTed to /api/sketches/{id}/actuals")
	actualsPerMin := flag.Int("actuals-per-min", 600, "per-client admission cap on POSTed actuals per minute (0 = unlimited)")
	actualsSample := flag.Int("actuals-sample", 0, "admit every Nth POSTed actual per client (<= 1 admits all)")
	walDelta := flag.Int("wal-delta", 512, "max WAL-logged actuals drawn into a refresh delta workload")
	pinnedDir := flag.String("pinned-benchmark", "", "directory of frozen per-dataset labeled workloads (<dataset>.workload) the drift controller judges every refresh candidate against before its canary starts; missing files are generated and persisted at boot (empty = rail off)")
	pinnedRegress := flag.Float64("pinned-max-regress", deepsketch.DefaultPinnedMaxRegress, "pinned-benchmark rail tolerance: a refresh candidate's median and p95 q-error on the pinned set may each be at most this ratio × the live version's")
	retainVersions := flag.Int("retain-versions", 0, "persisted non-live version files kept per sketch after a promote (0 = keep all)")
	retainWALBytes := flag.Int64("retain-wal-bytes", 0, "WAL size budget; checkpointed segments are pruned down to it after a promote (0 = keep all)")
	engineFlag := flag.String("engine", "f64", "inference precision for installed sketches: f64 (reference), f32 (reduced precision), int8 (experimental)")
	flag.Parse()

	engine, err := deepsketch.ParseEnginePrecision(*engineFlag)
	if err != nil {
		log.Fatalf("deepsketchd: %v", err)
	}

	driftCfg := deepsketch.DriftConfig{
		SampleEvery: *driftSample, Window: *driftWindow,
		MaxMedianQ: *driftMedian, MaxP95Q: *driftP95,
		MaxStaleness: *driftStale, Cooldown: *driftCooldown,
	}
	if *driftSample == 0 {
		// The monitor treats 0 as "default"; the flag documents 0 as
		// "sampling off" (no ground-truth executions at all).
		driftCfg.SampleEvery = -1
	}
	if !*driftAuto {
		// Without -drift nothing runs the canary gate (Controller.Run), so
		// a fired trigger would strand its sketch in a never-judged canary.
		// The monitor still observes — GET .../drift reports the windows —
		// but the thresholds are disarmed.
		if *driftMedian > 0 || *driftP95 > 0 || *driftStale > 0 {
			log.Printf("deepsketchd: drift thresholds set without -drift — monitoring only, no automatic refresh")
		}
		driftCfg.MaxMedianQ, driftCfg.MaxP95Q, driftCfg.MaxStaleness = 0, 0, 0
	}
	srv := newServerOpts(serverOptions{
		titles: *titles, orders: *orders, seed: *seed,
		driftCfg: driftCfg,
		ctrlCfg: deepsketch.DriftControllerConfig{
			CanaryFraction: *canaryFraction, PromoteAfter: *canaryPromote, MaxQRatio: *canaryRatio,
		},
		walDir:           *walDir,
		driftTruth:       *driftTruth,
		admitCfg:         deepsketch.AdmitConfig{PerClientPerMin: *actualsPerMin, SampleEvery: *actualsSample},
		walDelta:         *walDelta,
		pinnedDir:        *pinnedDir,
		pinnedMaxRegress: *pinnedRegress,
		retainVersions:   *retainVersions,
		retainWALBytes:   *retainWALBytes,
		engine:           engine,
	})
	if engine != deepsketch.EngineF64 {
		log.Printf("deepsketchd: serving sketches on the %s inference engine", engine)
	}
	if !*driftTruth {
		log.Printf("deepsketchd: exact executor off the serving path — ground truth via POST /api/sketches/{id}/actuals only")
	}
	if *pinnedDir != "" {
		log.Printf("deepsketchd: pinned-benchmark rail on (%s, tolerance %.2fx)", *pinnedDir, *pinnedRegress)
	}
	srv.store = *store
	if srv.store != "" {
		if n, err := srv.loadStore(); err != nil {
			log.Printf("deepsketchd: loading store: %v", err)
		} else if n > 0 {
			log.Printf("deepsketchd: restored %d sketches from %s", n, srv.store)
		}
	}
	// WAL replay must follow the store load: it rebuilds the drift monitors'
	// q-error windows and pending observations for the restored sketches.
	srv.replayWAL()
	if *prebuilt {
		srv.startPrebuilt()
	}
	// Every background loop hangs off a signal-cancellable context: on
	// SIGINT/SIGTERM the monitors and controllers wind down, the HTTP
	// server drains, and Close joins the in-flight build/refresh goroutines
	// before the process exits — so a shutdown can never truncate a store
	// write or a WAL append mid-record.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	for _, mon := range srv.monitors {
		go mon.Run(ctx)
	}
	if *driftAuto {
		for _, ctrl := range srv.controllers {
			go ctrl.Run(ctx, *driftInterval)
		}
		log.Printf("deepsketchd: automatic drift repair on (median>%v p95>%v staleness>%v, canary %g%%)",
			*driftMedian, *driftP95, *driftStale, *canaryFraction*100)
	}
	log.Printf("deepsketchd listening on %s (imdb: %d total rows, tpch: %d total rows)",
		*addr, srv.datasets["imdb"].TotalRows(), srv.datasets["tpch"].TotalRows())
	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes()}
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Printf("deepsketchd: http shutdown: %v", err)
		}
	}()
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		log.Printf("deepsketchd: shutdown: %v", err)
	}
	log.Printf("deepsketchd: shut down cleanly")
}

// sketchEntry tracks one sketch through its lifecycle.
type sketchEntry struct {
	ID      int    `json:"id"`
	Name    string `json:"name"`
	Dataset string `json:"dataset"`
	Status  string `json:"status"` // building | ready | refreshing | failed
	Error   string `json:"error,omitempty"`
	// Version is the serving sketch version in the dataset's lifecycle
	// registry: 1 after the initial build, bumped by every upload-and-swap
	// or refresh, moved back by rollback.
	Version int       `json:"version,omitempty"`
	Created time.Time `json:"created"`
	sketch  *deepsketch.Sketch
	// serving is the entry's serving stack: an LRU estimate cache over a
	// clamped, drift-observed, micro-batching coalescer over the registry's
	// per-name view. All request traffic to this sketch goes through it.
	// The stack is built once and survives every version change: the
	// registry view routes each query to whichever version (live or canary
	// split) should answer it, and cache keys embed that serving version —
	// so a swap, canary or rollback can never surface a previous version's
	// cached answer, and only the remapped queries' entries go cold.
	serving deepsketch.Estimator
	mon     *deepsketch.Monitor
	// adminMu serializes version-changing admin operations on this entry
	// (upload-and-swap, refresh start/completion, rollback): each is a
	// check-then-act sequence across the registry, the entry fields and the
	// store file, and interleaving two of them could leave the entry's
	// serving stack and persisted file pointing at a different version than
	// the registry serves. Held around whole operations; s.mu (which only
	// guards field access) nests inside it.
	adminMu sync.Mutex
}

type baseline struct {
	hyper deepsketch.Estimator
	pg    deepsketch.Estimator
}

type server struct {
	datasets map[string]*deepsketch.DB
	baseline map[string]baseline
	// registries hold each dataset's versioned sketch fleet: auto-routed
	// queries dispatch through the registry's router to the most specific
	// ready sketch, and the admin endpoints publish, swap, refresh, canary
	// and roll back versions through the registry. auto wraps each router
	// in the serving chain Router → PostgreSQL, so a query no sketch covers
	// still gets an answer instead of an error.
	registries map[string]*deepsketch.SketchRegistry
	auto       map[string]*deepsketch.EstimateCache
	// monitors watch each dataset's live estimate quality (drift windows);
	// controllers close the loop (trigger → refresh → canary → gate). The
	// monitor queues are only drained once main starts their Run loops, or
	// when a drift cycle drains them explicitly.
	monitors    map[string]*deepsketch.DriftMonitor
	controllers map[string]*deepsketch.DriftController

	// wals hold each dataset's observation WAL (nil entries when -wal is
	// unset): the durable log of served estimates and observed actuals the
	// drift monitors journal to and are rebuilt from at startup.
	wals map[string]*deepsketch.ObservationLog
	// pinned holds each dataset's frozen pinned benchmark (empty map when
	// -pinned-benchmark is unset); pinnedMaxRegress is the rail tolerance.
	pinned           map[string]*deepsketch.PinnedBenchmark
	pinnedMaxRegress float64
	// admit rate-limits the logged-actuals ingest path per client.
	admit *deepsketch.ActualsAdmitter
	// walDelta caps how many WAL-logged actuals a refresh delta workload
	// draws; retainVersions / retainWALBytes are the retention knobs applied
	// after a promote.
	walDelta       int
	retainVersions int
	retainWALBytes int64
	// walWorkloads counts refreshes whose delta workload came from the WAL
	// (vs synthetic generation) — observability for the feedback loop.
	walWorkloads atomic.Uint64

	// store, when non-empty, is a directory where ready sketches are
	// persisted and from which they are restored at startup.
	store string

	// engine is the inference precision applied to every sketch version the
	// daemon installs (builds, uploads, refreshes, rollbacks, restores).
	engine deepsketch.EnginePrecision

	mu       sync.RWMutex
	sketches map[int]*sketchEntry
	nextID   int

	// bg tracks every background build/refresh goroutine the server
	// launches. Close joins it before releasing the WALs: without the
	// join, Close could return — and a test or the process could tear the
	// store directory down — while a build is still writing sketch files.
	bg sync.WaitGroup
}

// Close joins the in-flight background build/refresh goroutines and then
// closes the observation WALs. After it returns no goroutine owned by
// this server is touching the store directory or the WAL files.
func (s *server) Close() error {
	s.bg.Wait()
	var firstErr error
	for name, l := range s.wals {
		if l == nil {
			continue
		}
		if err := l.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("closing %s wal: %w", name, err)
		}
	}
	return firstErr
}

// serverOptions parameterizes newServerOpts.
type serverOptions struct {
	titles, orders int
	seed           int64
	driftCfg       deepsketch.DriftConfig
	ctrlCfg        deepsketch.DriftControllerConfig
	// walDir, when non-empty, roots per-dataset observation WALs at
	// walDir/<dataset>.
	walDir string
	// driftTruth keeps the exact executor as the monitors' in-process
	// ground-truth source; false drops it from the serving path entirely —
	// actuals arrive only via POST /api/sketches/{id}/actuals.
	driftTruth     bool
	admitCfg       deepsketch.AdmitConfig
	walDelta       int
	retainVersions int
	retainWALBytes int64
	// pinnedDir, when non-empty, roots per-dataset pinned benchmarks at
	// pinnedDir/<dataset>.workload — the frozen held-out sets the drift
	// controllers judge refresh candidates against before any canary.
	// Missing files are generated from the dataset and persisted at boot.
	pinnedDir        string
	pinnedMaxRegress float64
	// engine is the inference precision every installed sketch is switched
	// to (zero value = EngineF64, the full-precision reference).
	engine deepsketch.EnginePrecision
}

func newServer(titles, orders int, seed int64) *server {
	return newServerWithDrift(titles, orders, seed, deepsketch.DriftConfig{}, deepsketch.DriftControllerConfig{})
}

func newServerWithDrift(titles, orders int, seed int64, driftCfg deepsketch.DriftConfig, ctrlCfg deepsketch.DriftControllerConfig) *server {
	return newServerOpts(serverOptions{
		titles: titles, orders: orders, seed: seed,
		driftCfg: driftCfg, ctrlCfg: ctrlCfg, driftTruth: true,
	})
}

func newServerOpts(opts serverOptions) *server {
	s := &server{
		datasets: map[string]*deepsketch.DB{
			"imdb": deepsketch.NewIMDb(deepsketch.IMDbConfig{Seed: opts.seed, Titles: opts.titles}),
			"tpch": deepsketch.NewTPCH(deepsketch.TPCHConfig{Seed: opts.seed, Orders: opts.orders}),
		},
		baseline:         map[string]baseline{},
		registries:       map[string]*deepsketch.SketchRegistry{},
		auto:             map[string]*deepsketch.EstimateCache{},
		monitors:         map[string]*deepsketch.DriftMonitor{},
		controllers:      map[string]*deepsketch.DriftController{},
		wals:             map[string]*deepsketch.ObservationLog{},
		pinned:           map[string]*deepsketch.PinnedBenchmark{},
		pinnedMaxRegress: opts.pinnedMaxRegress,
		admit:            deepsketch.NewActualsAdmitter(opts.admitCfg),
		walDelta:         opts.walDelta,
		retainVersions:   opts.retainVersions,
		retainWALBytes:   opts.retainWALBytes,
		engine:           opts.engine,
		sketches:         map[int]*sketchEntry{},
		nextID:           1,
	}
	if s.walDelta <= 0 {
		s.walDelta = 512
	}
	seed, driftCfg, ctrlCfg := opts.seed, opts.driftCfg, opts.ctrlCfg
	for name, d := range s.datasets {
		hyper, err := deepsketch.HyperEstimator(d, 1000, seed)
		if err != nil {
			log.Fatalf("baseline for %s: %v", name, err)
		}
		pg := deepsketch.PostgresEstimator(d)
		s.baseline[name] = baseline{hyper: hyper, pg: pg}
		reg := deepsketch.NewSketchRegistry()
		s.registries[name] = reg
		// The observation WAL journals every pending/resolved monitor
		// transition for this dataset; replayWAL rebuilds monitor state from
		// it after a restart.
		if opts.walDir != "" {
			l, err := deepsketch.OpenObservationLog(filepath.Join(opts.walDir, name), deepsketch.WALOptions{})
			if err != nil {
				log.Fatalf("wal for %s: %v", name, err)
			}
			s.wals[name] = l
			driftCfg.Journal = &walJournal{d: d, log: l}
		} else {
			driftCfg.Journal = nil
		}
		// The drift monitor windows q-errors per sketch version; with
		// -drift-truth it ground-truths sampled estimates against the exact
		// executor (the demo's HyPer role), without it every sampled estimate
		// parks pending until a logged actual arrives. The controller turns
		// monitor triggers into automatic refresh+canary cycles.
		var truth deepsketch.Estimator
		if opts.driftTruth {
			truth = deepsketch.TruthEstimator(d)
		}
		mon := deepsketch.NewDriftMonitor(driftCfg, truth)
		s.monitors[name] = mon
		dcc := ctrlCfg
		dataset := name
		// The pinned-benchmark rail: a frozen clean labeled set per dataset,
		// loaded (or generated once and persisted) at boot, that every
		// refresh candidate must not regress on before its canary starts.
		// Unlike the live windows and the WAL-derived delta workload — both
		// functions of observed traffic, which an adaptive feedback source
		// controls — the pinned set predates any attack traffic.
		if opts.pinnedDir != "" {
			pb, err := loadOrCreatePinned(d, filepath.Join(opts.pinnedDir, name+".workload"), opts.seed)
			if err != nil {
				log.Fatalf("pinned benchmark for %s: %v", name, err)
			}
			s.pinned[name] = pb
			dcc.Pinned = pb
			dcc.PinnedMaxRegress = opts.pinnedMaxRegress
		}
		dcc.Workload = func(ctx context.Context, sketchName string) ([]deepsketch.LabeledQuery, error) {
			return s.deltaWorkload(ctx, dataset, sketchName)
		}
		dcc.OnEvent = func(ev deepsketch.DriftEvent) { s.onDriftEvent(dataset, ev) }
		// A trigger that fires while an operator's refresh/canary fine-tune
		// is still training (entry "refreshing", no canary installed yet)
		// must not start a second concurrent retrain of the same sketch.
		dcc.SkipTrigger = func(sketchName string) bool {
			e := s.entryByName(dataset, sketchName)
			if e == nil {
				return false
			}
			s.mu.RLock()
			defer s.mu.RUnlock()
			return e.Status != "ready"
		}
		s.controllers[name] = deepsketch.NewDriftController(reg, mon, dcc)
		// Auto-routed traffic gets the same serving treatment as explicit
		// sketch requests: coalesced batched inference behind the router,
		// clamped, PostgreSQL fallback for uncovered queries, all cached.
		// The fallback sits inside the coalescer so a coalesced batch that
		// contains uncovered queries bisects into batched router calls plus
		// per-query PostgreSQL answers, instead of failing wholesale and
		// serializing the whole flush. The drift monitor taps the router
		// path below the cache (hits repeat known answers). The cache is
		// keyed by the router's CacheKey — the query signature qualified by
		// the answering sketch version — which keeps it coherent across
		// every registry mutation with no wholesale invalidation: a swap,
		// canary start, re-fraction, promote or rollback changes the key of
		// exactly the queries whose answering version changed, so their old
		// entries are simply never looked up again while the rest of the
		// cache stays warm.
		s.auto[name] = deepsketch.WithCache(
			deepsketch.NewCoalescer(
				deepsketch.Fallback(
					deepsketch.ObserveEstimates(
						deepsketch.Clamp(reg.Router(), deepsketch.MaxCardinality(d)), mon),
					pg),
				deepsketch.CoalesceOptions{}),
			1024).KeyFunc(reg.Router().CacheKey)
	}
	return s
}

// walDeltaMin is the fewest distinct logged actuals worth fine-tuning on;
// below it the synthetic generator produces a better-covered workload.
const walDeltaMin = 32

// deltaWorkload assembles the controller's fine-tune input for automatic
// refreshes. When the observation WAL holds enough logged actuals for the
// sketch, the delta workload IS the observed traffic — the most recent
// distinct query signatures with their actual cardinalities, no synthetic
// generation and no exact executor in the loop. Otherwise it falls back to
// generating and labeling a fresh synthetic workload over the sketch's
// tables, seeded by the history length so consecutive cycles see fresh
// queries.
func (s *server) deltaWorkload(_ context.Context, dataset, sketchName string) ([]deepsketch.LabeledQuery, error) {
	d := s.datasets[dataset]
	reg := s.registries[dataset]
	live, _, err := reg.Live(sketchName)
	if err != nil {
		return nil, err
	}
	if lw := s.walWorkload(dataset, sketchName); len(lw) >= walDeltaMin {
		s.walWorkloads.Add(1)
		log.Printf("deepsketchd: refresh of %q fine-tuning on %d WAL-logged actuals", sketchName, len(lw))
		return lw, nil
	}
	histLen := 0
	if vs, err := reg.Versions(sketchName); err == nil {
		histLen = len(vs)
	}
	qs, err := deepsketch.GenerateWorkload(d, deepsketch.GenConfig{
		Seed: int64(histLen + 1), Count: 1000, Tables: live.Cfg.Tables,
		MaxJoins: live.Cfg.MaxJoins, MaxPreds: live.Cfg.MaxPreds, Dedup: true,
	})
	if err != nil {
		return nil, err
	}
	return deepsketch.LabelWorkload(d, qs, 0)
}

// onDriftEvent mirrors automatic drift-cycle transitions onto the sketch
// entry and the persistent store, so the admin API and a restarted daemon
// both see what the controller did.
func (s *server) onDriftEvent(dataset string, ev deepsketch.DriftEvent) {
	e := s.entryByName(dataset, ev.Name)
	if e == nil {
		return
	}
	reg := s.registries[dataset]
	switch ev.Kind {
	case "refresh_started":
		log.Printf("deepsketchd: drift trigger on %q (%s): refreshing", ev.Name, ev.Reason)
		s.mu.Lock()
		if e.Status == "ready" {
			e.Status = "refreshing"
		}
		s.mu.Unlock()
	case "canary_started":
		log.Printf("deepsketchd: drift refresh of %q canarying as v%d", ev.Name, ev.Version)
		e.adminMu.Lock()
		if sk, err := reg.Sketch(ev.Name, ev.Version); err == nil {
			s.mu.Lock()
			e.Status = "canarying"
			s.mu.Unlock()
			s.persistVersion(e, sk, ev.Version)
		}
		e.adminMu.Unlock()
	case "promoted":
		log.Printf("deepsketchd: canary v%d of %q promoted", ev.Version, ev.Name)
		e.adminMu.Lock()
		if sk, err := reg.Sketch(ev.Name, ev.Version); err == nil {
			s.installVersion(e, sk, ev.Version, "ready", "")
			s.persistState(e)
			s.applyRetention(dataset, e)
		}
		e.adminMu.Unlock()
	case "aborted":
		log.Printf("deepsketchd: canary v%d of %q aborted (comparative q-error gate)", ev.Version, ev.Name)
		e.adminMu.Lock()
		if live, lv, err := reg.Live(ev.Name); err == nil {
			s.installVersion(e, live, lv, "ready", fmt.Sprintf("canary v%d aborted by the q-error gate", ev.Version))
			s.persistState(e)
		}
		e.adminMu.Unlock()
	case "pinned_rejected":
		if ev.Pinned != nil {
			log.Printf("deepsketchd: drift refresh of %q rejected by the pinned benchmark: candidate median %.3g vs live %.3g (tolerance %.2fx), p95 %.3g vs %.3g",
				ev.Name, ev.Pinned.Candidate.Median, ev.Pinned.Live.Median, ev.Pinned.MaxRegress,
				ev.Pinned.Candidate.P95, ev.Pinned.Live.P95)
		} else {
			log.Printf("deepsketchd: drift refresh of %q rejected by the pinned benchmark", ev.Name)
		}
		s.mu.Lock()
		if e.Status == "refreshing" {
			e.Status = "ready"
			e.Error = "drift refresh rejected: candidate regressed on the pinned benchmark"
		}
		s.mu.Unlock()
	case "error":
		log.Printf("deepsketchd: drift cycle for %q failed: %v", ev.Name, ev.Err)
		s.mu.Lock()
		if e.Status == "refreshing" {
			e.Status = "ready"
			e.Error = "drift refresh failed: " + ev.Err.Error()
		}
		s.mu.Unlock()
	}
}

// entryByName finds the entry serving (dataset, name), or nil.
func (s *server) entryByName(dataset, name string) *sketchEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.sketches {
		if e.Dataset == dataset && e.Name == name {
			return e
		}
	}
	return nil
}

// markReady publishes a built sketch into the dataset's registry as a new
// name (version 1), installs its serving stack and persists it.
func (s *server) markReady(e *sketchEntry, sk *deepsketch.Sketch) {
	ver, err := s.registries[e.Dataset].Publish(e.Name, sk)
	if err != nil {
		s.mu.Lock()
		e.Status = "failed"
		e.Error = err.Error()
		s.mu.Unlock()
		return
	}
	s.installVersion(e, sk, ver, "ready", "")
	s.persistVersion(e, sk, ver)
}

// installVersion points the entry at a (new or rolled-back) sketch version.
// The serving stack is built once, on the first install, and shared across
// versions: it serves through the registry's per-name view, whose answers
// and cache keys are version-aware, so a version change needs no stack
// rebuild — the old version's cache lines simply stop being looked up.
func (s *server) installVersion(e *sketchEntry, sk *deepsketch.Sketch, ver int, status, errMsg string) {
	// Every install path funnels through here (build, upload, refresh,
	// rollback, canary accept, store restore), so this is the one place the
	// daemon's -engine precision is applied.
	sk.SetEnginePrecision(s.engine)
	s.mu.Lock()
	if e.serving == nil {
		d := s.datasets[e.Dataset]
		reg := s.registries[e.Dataset]
		e.serving = deepsketch.WithCache(
			deepsketch.ObserveEstimates(
				deepsketch.Clamp(
					deepsketch.NewCoalescer(reg.Serving(e.Name), deepsketch.CoalesceOptions{}),
					deepsketch.MaxCardinality(d)),
				s.monitors[e.Dataset]),
			1024).KeyFunc(reg.CacheKey(e.Name))
	}
	e.sketch = sk
	e.Version = ver
	e.Status = status
	e.Error = errMsg
	s.mu.Unlock()
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.handleIndex)
	mux.HandleFunc("GET /api/datasets", s.handleDatasets)
	mux.HandleFunc("GET /api/sketches", s.handleSketchList)
	mux.HandleFunc("POST /api/sketches", s.handleSketchCreate)
	mux.HandleFunc("GET /api/sketches/{id}", s.handleSketchGet)
	mux.HandleFunc("PUT /api/sketches/{id}", s.handleSketchUpload)
	mux.HandleFunc("GET /api/sketches/{id}/download", s.handleSketchDownload)
	mux.HandleFunc("POST /api/sketches/{id}/refresh", s.handleSketchRefresh)
	mux.HandleFunc("POST /api/sketches/{id}/rollback", s.handleSketchRollback)
	mux.HandleFunc("GET /api/sketches/{id}/drift", s.handleSketchDrift)
	mux.HandleFunc("POST /api/sketches/{id}/actuals", s.handleSketchActuals)
	mux.HandleFunc("POST /api/sketches/{id}/canary", s.handleSketchCanary)
	mux.HandleFunc("POST /api/sketches/{id}/promote", s.handleSketchPromote)
	mux.HandleFunc("DELETE /api/sketches/{id}/canary", s.handleSketchCanaryAbort)
	mux.HandleFunc("POST /api/estimate", s.handleEstimate)
	mux.HandleFunc("POST /api/template", s.handleTemplate)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("deepsketchd: encode response: %v", err)
	}
}

// snapshotJSON marshals v while holding the server read lock — entry fields
// are mutex-guarded, but the lock must never be held across the network
// write (a client that stops reading would otherwise block every other
// request behind the next writer). Pair with writeRawJSON.
func (s *server) snapshotJSON(v any) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return json.Marshal(v)
}

func writeRawJSON(w http.ResponseWriter, status int, blob []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(append(blob, '\n')); err != nil {
		log.Printf("deepsketchd: write response: %v", err)
	}
}

// writeEntry responds with an entry snapshot taken under the lock.
func (s *server) writeEntry(w http.ResponseWriter, status int, e *sketchEntry) {
	blob, err := s.snapshotJSON(e)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeRawJSON(w, status, blob)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	type colInfo struct {
		Name string `json:"name"`
		Type string `json:"type"`
	}
	type tblInfo struct {
		Name string    `json:"name"`
		Rows int       `json:"rows"`
		Cols []colInfo `json:"columns"`
	}
	out := map[string][]tblInfo{}
	for name, d := range s.datasets {
		var tbls []tblInfo
		for _, tn := range d.TableNames() {
			t := d.Table(tn)
			ti := tblInfo{Name: tn, Rows: t.NumRows()}
			for _, c := range t.Cols {
				ti.Cols = append(ti.Cols, colInfo{Name: c.Name, Type: c.Type.String()})
			}
			tbls = append(tbls, ti)
		}
		out[name] = tbls
	}
	writeJSON(w, http.StatusOK, out)
}

type createReq struct {
	Name         string   `json:"name"`
	Dataset      string   `json:"dataset"`
	Tables       []string `json:"tables"`
	SampleSize   int      `json:"sample_size"`
	TrainQueries int      `json:"train_queries"`
	Epochs       int      `json:"epochs"`
	HiddenUnits  int      `json:"hidden_units"`
	Seed         int64    `json:"seed"`
}

func (s *server) handleSketchCreate(w http.ResponseWriter, r *http.Request) {
	var req createReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Dataset == "" {
		req.Dataset = "imdb"
	}
	d, ok := s.datasets[req.Dataset]
	if !ok {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown dataset %q", req.Dataset))
		return
	}
	entry, err := s.register(req.Name, req.Dataset)
	if err != nil {
		// Duplicate names conflict with the lifecycle registry's version
		// keying: 409, not a silent second fleet member.
		writeErr(w, http.StatusConflict, err)
		return
	}
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		s.build(entry, d, req)
	}()
	writeJSON(w, http.StatusAccepted, entry)
}

func (s *server) register(name, dataset string) (*sketchEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if name != "" {
		for _, e := range s.sketches {
			if e.Name == name && e.Dataset == dataset && e.Status != "failed" {
				return nil, fmt.Errorf("sketch %q already exists on %s (id %d); upload to PUT /api/sketches/%d to replace it", name, dataset, e.ID, e.ID)
			}
		}
	}
	id := s.nextID
	s.nextID++
	if name == "" {
		name = fmt.Sprintf("%s-sketch-%d", dataset, id)
	}
	e := &sketchEntry{
		ID: id, Name: name, Dataset: dataset, Status: "building",
		Created: time.Now(), mon: deepsketch.NewMonitor(),
	}
	s.sketches[id] = e
	return e, nil
}

// build runs the creation pipeline in the background.
func (s *server) build(e *sketchEntry, d *deepsketch.DB, req createReq) {
	mcfg := deepsketch.DefaultModelConfig()
	if req.Epochs > 0 {
		mcfg.Epochs = req.Epochs
	}
	if req.HiddenUnits > 0 {
		mcfg.HiddenUnits = req.HiddenUnits
	}
	mcfg.Seed = req.Seed
	cfg := deepsketch.Config{
		Name: e.Name, Tables: req.Tables, SampleSize: req.SampleSize,
		TrainQueries: req.TrainQueries, Seed: req.Seed, Model: mcfg,
	}
	sk, err := deepsketch.Build(d, cfg, e.mon)
	if err != nil {
		s.mu.Lock()
		e.Status = "failed"
		e.Error = err.Error()
		s.mu.Unlock()
		return
	}
	s.markReady(e, sk)
}

// startPrebuilt creates one small high-quality sketch per dataset so users
// can query immediately ("we offer pre-built (high quality) models that can
// be queried right away").
func (s *server) startPrebuilt() {
	for name, d := range s.datasets {
		e, err := s.register("prebuilt-"+name, name)
		if err != nil {
			log.Printf("deepsketchd: prebuilt %s: %v", name, err)
			continue
		}
		s.bg.Add(1)
		go func(e *sketchEntry, d *deepsketch.DB, name string) {
			defer s.bg.Done()
			s.build(e, d, createReq{
				Dataset: name, SampleSize: 500, TrainQueries: 3000, Epochs: 20, HiddenUnits: 32, Seed: 7,
			})
		}(e, d, name)
	}
}

func (s *server) handleSketchList(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	out := make([]*sketchEntry, 0, len(s.sketches))
	for id := 1; id < s.nextID; id++ {
		if e, ok := s.sketches[id]; ok {
			out = append(out, e)
		}
	}
	blob, err := json.Marshal(out)
	s.mu.RUnlock()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeRawJSON(w, http.StatusOK, blob)
}

func (s *server) entryByID(r *http.Request) (*sketchEntry, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return nil, fmt.Errorf("bad sketch id")
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.sketches[id]
	if !ok {
		return nil, fmt.Errorf("no sketch %d", id)
	}
	return e, nil
}

func (s *server) handleSketchGet(w http.ResponseWriter, r *http.Request) {
	e, err := s.entryByID(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	type resp struct {
		*sketchEntry
		Progress trainmon.Snapshot          `json:"progress"`
		Epochs   []trainmon.Event           `json:"epoch_events"`
		Versions []deepsketch.SketchVersion `json:"versions,omitempty"`
		Canary   *deepsketch.SketchCanary   `json:"canary,omitempty"`
	}
	var epochs []trainmon.Event
	for _, ev := range e.mon.Events() {
		if ev.Kind == trainmon.KindEpoch {
			epochs = append(epochs, ev)
		}
	}
	// A sketch that never reached the registry (still building, or failed)
	// has no version history; any other error would also mean "nothing to
	// show", so the list stays empty rather than failing the GET.
	var versions []deepsketch.SketchVersion
	if vs, err := s.registries[e.Dataset].Versions(e.Name); err == nil {
		versions = vs
	}
	var canary *deepsketch.SketchCanary
	if ci, ok := s.registries[e.Dataset].Canary(e.Name); ok {
		canary = &ci
	}
	blob, err := s.snapshotJSON(resp{sketchEntry: e, Progress: e.mon.Snapshot(), Epochs: epochs, Versions: versions, Canary: canary})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeRawJSON(w, http.StatusOK, blob)
}

func (s *server) handleSketchDownload(w http.ResponseWriter, r *http.Request) {
	e, err := s.entryByID(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.mu.RLock()
	sk := e.sketch
	s.mu.RUnlock()
	if sk == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("sketch %d not ready", e.ID))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", e.Name+".dsk"))
	if err := sk.Save(w); err != nil {
		log.Printf("deepsketchd: download: %v", err)
	}
}

// handleSketchUpload is upload-and-swap: the request body is a serialized
// sketch file (as produced by download or `deepsketch build/refresh`),
// which atomically replaces the entry's serving sketch as a new version.
// The uploaded sketch must belong to the entry's dataset; its name is
// overridden to the entry's name, since the version chain is keyed by it.
func (s *server) handleSketchUpload(w http.ResponseWriter, r *http.Request) {
	e, err := s.entryByID(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	// Cap the upload: sketches are a few MiB; a stream claiming more is
	// not a sketch file.
	sk, err := deepsketch.Load(http.MaxBytesReader(w, r.Body, 1<<28))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("not a sketch file: %w", err))
		return
	}
	e.adminMu.Lock()
	defer e.adminMu.Unlock()
	s.mu.RLock()
	status, dataset := e.Status, e.Dataset
	s.mu.RUnlock()
	if status != "ready" {
		writeErr(w, http.StatusConflict, fmt.Errorf("sketch %d is %s", e.ID, status))
		return
	}
	if sk.DBName != dataset {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("uploaded sketch is for dataset %q, entry %d serves %q", sk.DBName, e.ID, dataset))
		return
	}
	sk.Cfg.Name = e.Name
	ver, err := s.registries[dataset].Swap(e.Name, sk)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	s.installVersion(e, sk, ver, "ready", "")
	s.persistVersion(e, sk, ver)
	s.writeEntry(w, http.StatusOK, e)
}

type refreshReq struct {
	// Queries sizes the generated drift-delta workload (default 1000).
	Queries int `json:"queries"`
	// Seed drives delta workload generation; vary it across refreshes so
	// each one sees fresh queries (default: current version number).
	Seed int64 `json:"seed"`
	// Epochs caps the fine-tune budget (default: the sketch's build epochs).
	Epochs int `json:"epochs"`
	// StopAtValQ stops early at this validation mean q-error (0 disables).
	StopAtValQ float64 `json:"stop_at_val_q"`
	// Workers bounds labeling and training parallelism (0 = GOMAXPROCS).
	Workers int `json:"workers"`
}

// handleSketchRefresh warm-start retrains the serving sketch on a freshly
// generated delta workload in the background and swaps the result in as a
// new version. The current version keeps serving until the swap; a failed
// refresh leaves it serving and records the error on the entry.
func (s *server) handleSketchRefresh(w http.ResponseWriter, r *http.Request) {
	e, err := s.entryByID(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var req refreshReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	e.adminMu.Lock()
	defer e.adminMu.Unlock()
	// Default seed: derived from the monotone history length, not the live
	// version number — after a rollback the live version repeats, and the
	// seed must not, or the refresh would regenerate the exact delta
	// workload that produced the rolled-back model. adminMu is held, so the
	// history cannot change underneath.
	histLen := 0
	if vs, err := s.registries[e.Dataset].Versions(e.Name); err == nil {
		histLen = len(vs)
	}
	s.mu.Lock()
	if e.Status != "ready" {
		status := e.Status
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, fmt.Errorf("sketch %d is %s", e.ID, status))
		return
	}
	e.Status = "refreshing"
	e.Error = ""
	if req.Queries <= 0 {
		req.Queries = 1000
	}
	if req.Seed == 0 {
		req.Seed = int64(histLen + 1)
	}
	sk := e.sketch
	s.mu.Unlock()

	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		s.refresh(e, sk, req, 0)
	}()
	s.writeEntry(w, http.StatusAccepted, e)
}

// refresh runs the delta-workload fine-tune in the background and lands
// the result as a direct swap (fraction 0) or as a canary at the given
// traffic fraction. Entry status is "refreshing" for the whole run, which
// 409s any concurrent upload/rollback/refresh; completion takes adminMu so
// the install+persist pair cannot interleave with an admin operation
// racing the final status flip.
func (s *server) refresh(e *sketchEntry, sk *deepsketch.Sketch, req refreshReq, fraction float64) {
	fail := func(err error) {
		// The old version never stopped serving; keep it and record why
		// the refresh did not land.
		e.adminMu.Lock()
		defer e.adminMu.Unlock()
		s.mu.Lock()
		e.Status = "ready"
		e.Error = "refresh failed: " + err.Error()
		s.mu.Unlock()
	}
	d := s.datasets[e.Dataset]
	qs, err := deepsketch.GenerateWorkload(d, deepsketch.GenConfig{
		Seed: req.Seed, Count: req.Queries, Tables: sk.Cfg.Tables,
		MaxJoins: sk.Cfg.MaxJoins, MaxPreds: sk.Cfg.MaxPreds, Dedup: true,
	})
	if err != nil {
		fail(err)
		return
	}
	labeled, err := deepsketch.LabelWorkload(d, qs, req.Workers)
	if err != nil {
		fail(err)
		return
	}
	ver, ns, err := s.registries[e.Dataset].Refresh(context.Background(), deepsketch.RegistryRefreshOptions{
		Name: e.Name, Workload: labeled,
		Epochs: req.Epochs, StopAtValQ: req.StopAtValQ, Workers: req.Workers,
		Monitor: e.mon, Canary: fraction,
	})
	if err != nil {
		fail(err)
		return
	}
	s.monitors[e.Dataset].MarkRefreshed(e.Name)
	e.adminMu.Lock()
	if fraction > 0 {
		// The canary is in the registry history but not live: the entry
		// keeps reporting the live version; only the status changes.
		s.mu.Lock()
		e.Status = "canarying"
		e.Error = ""
		s.mu.Unlock()
		s.persistVersion(e, ns, ver)
		log.Printf("deepsketchd: refreshed sketch %q into canary v%d at %g%% (%d delta queries)",
			e.Name, ver, fraction*100, len(labeled))
	} else {
		s.installVersion(e, ns, ver, "ready", "")
		s.persistVersion(e, ns, ver)
		log.Printf("deepsketchd: refreshed sketch %q to version %d (%d delta queries)", e.Name, ver, len(labeled))
	}
	e.adminMu.Unlock()
}

// canaryReq parameterizes POST /api/sketches/{id}/canary: the refresh
// fields plus the traffic fraction to canary at. On a sketch with an
// active canary, only Fraction is honoured (the split is re-fractioned).
type canaryReq struct {
	refreshReq
	// Fraction is the share of traffic the canary answers (default 0.1).
	Fraction float64 `json:"fraction"`
}

// handleSketchCanary refreshes the sketch into a canary at the requested
// traffic fraction — or, when a canary is already active, widens or
// narrows its split.
func (s *server) handleSketchCanary(w http.ResponseWriter, r *http.Request) {
	e, err := s.entryByID(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var req canaryReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Fraction == 0 {
		req.Fraction = 0.1
	}
	if req.Fraction < 0 || req.Fraction > 1 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("fraction %v outside (0, 1]", req.Fraction))
		return
	}
	e.adminMu.Lock()
	defer e.adminMu.Unlock()
	reg := s.registries[e.Dataset]
	if _, ok := reg.Canary(e.Name); ok {
		// Active canary: adjust the traffic split.
		if err := reg.SetCanaryFraction(e.Name, req.Fraction); err != nil {
			writeErr(w, http.StatusConflict, err)
			return
		}
		s.persistState(e)
		s.writeEntry(w, http.StatusOK, e)
		return
	}
	histLen := 0
	if vs, err := reg.Versions(e.Name); err == nil {
		histLen = len(vs)
	}
	s.mu.Lock()
	if e.Status != "ready" {
		status := e.Status
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, fmt.Errorf("sketch %d is %s", e.ID, status))
		return
	}
	e.Status = "refreshing"
	e.Error = ""
	if req.Queries <= 0 {
		req.Queries = 1000
	}
	if req.Seed == 0 {
		req.Seed = int64(histLen + 1)
	}
	sk := e.sketch
	s.mu.Unlock()

	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		s.refresh(e, sk, req.refreshReq, req.Fraction)
	}()
	s.writeEntry(w, http.StatusAccepted, e)
}

// handleSketchPromote makes the active canary the live version for all
// traffic.
func (s *server) handleSketchPromote(w http.ResponseWriter, r *http.Request) {
	e, err := s.entryByID(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	e.adminMu.Lock()
	defer e.adminMu.Unlock()
	reg := s.registries[e.Dataset]
	ver, err := reg.PromoteCanary(e.Name)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	sk, err := reg.Sketch(e.Name, ver)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.installVersion(e, sk, ver, "ready", "")
	s.persistState(e)
	s.applyRetention(e.Dataset, e)
	log.Printf("deepsketchd: canary v%d of %q promoted by operator", ver, e.Name)
	s.writeEntry(w, http.StatusOK, e)
}

// handleSketchCanaryAbort withdraws the active canary; the live version
// resumes answering all traffic. The aborted version stays in the history.
func (s *server) handleSketchCanaryAbort(w http.ResponseWriter, r *http.Request) {
	e, err := s.entryByID(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	e.adminMu.Lock()
	defer e.adminMu.Unlock()
	reg := s.registries[e.Dataset]
	ci, ok := reg.Canary(e.Name)
	if !ok {
		writeErr(w, http.StatusConflict, fmt.Errorf("sketch %d has no active canary", e.ID))
		return
	}
	if err := reg.AbortCanary(e.Name); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	live, lv, err := reg.Live(e.Name)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.installVersion(e, live, lv, "ready", "")
	s.persistState(e)
	log.Printf("deepsketchd: canary v%d of %q aborted by operator", ci.Version, e.Name)
	s.writeEntry(w, http.StatusOK, e)
}

// handleSketchDrift reports the sketch's live-quality picture: the drift
// monitor's windowed q-error per version, the controller's cycle state,
// and the active canary, if any.
func (s *server) handleSketchDrift(w http.ResponseWriter, r *http.Request) {
	e, err := s.entryByID(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	resp := map[string]any{
		"monitor": s.monitors[e.Dataset].Status(e.Name),
		"cycle":   s.controllers[e.Dataset].Cycle(e.Name),
	}
	if ci, ok := s.registries[e.Dataset].Canary(e.Name); ok {
		resp["canary"] = ci
	}
	if l := s.wals[e.Dataset]; l != nil {
		resp["wal"] = l.Stats()
		resp["wal_actuals"] = l.ActualCount(e.Name)
		resp["wal_workloads"] = s.walWorkloads.Load()
	}
	// The rail's last judgment travels inside "cycle" (CycleStatus.Pinned);
	// these describe the rail configuration itself.
	if pb := s.pinned[e.Dataset]; pb != nil {
		resp["pinned_size"] = pb.Len()
		resp["pinned_max_regress"] = s.pinnedMaxRegress
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSketchRollback reverts the entry to the version before the live
// one; the rolled-back-to version serves immediately.
func (s *server) handleSketchRollback(w http.ResponseWriter, r *http.Request) {
	e, err := s.entryByID(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	e.adminMu.Lock()
	defer e.adminMu.Unlock()
	s.mu.RLock()
	status := e.Status
	s.mu.RUnlock()
	if status != "ready" {
		writeErr(w, http.StatusConflict, fmt.Errorf("sketch %d is %s", e.ID, status))
		return
	}
	ver, sk, err := s.registries[e.Dataset].Rollback(e.Name)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	s.installVersion(e, sk, ver, "ready", "")
	s.persistState(e)
	s.writeEntry(w, http.StatusOK, e)
}

func (s *server) readySketch(id int) (*sketchEntry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.sketches[id]
	if !ok {
		return nil, fmt.Errorf("no sketch %d", id)
	}
	if e.sketch == nil {
		return nil, fmt.Errorf("sketch %d is %s", id, e.Status)
	}
	return e, nil
}

type estimateReq struct {
	// SketchID selects a sketch explicitly; 0 routes automatically through
	// the dataset's sketch router, falling back to the PostgreSQL-style
	// estimator when no ready sketch covers the query's tables.
	SketchID int    `json:"sketch_id"`
	Dataset  string `json:"dataset,omitempty"`
	SQL      string `json:"sql"`
}

// handleEstimate computes all the demo's overlays for one ad-hoc query:
// Deep Sketch (through the serving stack), HyPer, PostgreSQL, and the true
// cardinality. The client disconnecting cancels the work via the request
// context.
func (s *server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req estimateReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	dataset := req.Dataset
	var serving deepsketch.Estimator
	if req.SketchID == 0 {
		if dataset == "" {
			dataset = "imdb"
		}
		est, ok := s.auto[dataset]
		if !ok {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown dataset %q", dataset))
			return
		}
		serving = est
	} else {
		e, err := s.readySketch(req.SketchID)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		s.mu.RLock()
		serving = e.serving
		dataset = e.Dataset
		s.mu.RUnlock()
	}
	d := s.datasets[dataset]
	q, err := deepsketch.ParseSQL(d, req.SQL)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	est, err := serving.Estimate(ctx, q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	truth, err := deepsketch.TrueCardinality(d, q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	bl := s.baseline[dataset]
	hyperEst, err := bl.hyper.Estimate(ctx, q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	pgEst, err := bl.pg.Estimate(ctx, q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	resp := map[string]any{
		"sql":         q.SQL(d),
		"deep_sketch": est.Cardinality,
		"source":      est.Source,
		"latency_ms":  float64(est.Latency.Microseconds()) / 1000.0,
		"cache_hit":   est.CacheHit,
		"hyper":       hyperEst.Cardinality,
		"postgresql":  pgEst.Cardinality,
		"true":        truth,
		"q_errors": map[string]float64{
			"deep_sketch": deepsketch.QError(est.Cardinality, float64(truth)),
			"hyper":       deepsketch.QError(hyperEst.Cardinality, float64(truth)),
			"postgresql":  deepsketch.QError(pgEst.Cardinality, float64(truth)),
		},
	}
	// Tag which version of the answering sketch served the estimate (absent
	// when a baseline fallback answered). The version is stamped on the
	// estimate by the registry's routing layer itself — exact even when a
	// swap, canary split or rollback races the request.
	if est.Version > 0 {
		resp["version"] = est.Version
	}
	// Tag the inference precision that computed the answer ("f64", "f32",
	// "int8"); cache hits keep the original computation's tag, non-model
	// fallbacks have none.
	if est.Engine != "" {
		resp["engine"] = est.Engine
	}
	writeJSON(w, http.StatusOK, resp)
}

type templateReq struct {
	SketchID int    `json:"sketch_id"`
	SQL      string `json:"sql"`
	Group    string `json:"group"`   // distinct | buckets
	Buckets  int    `json:"buckets"` // for group=buckets
	Truth    bool   `json:"truth"`   // include true cardinalities
}

// handleTemplate serves the demo's placeholder queries: one series point per
// template instance, with optional overlays.
func (s *server) handleTemplate(w http.ResponseWriter, r *http.Request) {
	var req templateReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	e, err := s.readySketch(req.SketchID)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	g := deepsketch.GroupDistinct
	if req.Group == "buckets" {
		g = deepsketch.GroupBuckets
		if req.Buckets <= 0 {
			req.Buckets = 20
		}
	}
	res, err := e.sketch.EstimateTemplateSQL(r.Context(), req.SQL, g, req.Buckets)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	d := s.datasets[e.Dataset]
	bl := s.baseline[e.Dataset]
	type point struct {
		Label      string  `json:"label"`
		Estimate   float64 `json:"deep_sketch"`
		Hyper      float64 `json:"hyper,omitempty"`
		PostgreSQL float64 `json:"postgresql,omitempty"`
		True       *int64  `json:"true,omitempty"`
	}
	points := make([]point, 0, len(res))
	for _, inst := range res {
		p := point{Label: inst.Label, Estimate: inst.Estimate}
		if req.Truth {
			tc, err := deepsketch.TrueCardinality(d, inst.Query)
			if err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			p.True = &tc
			he, err := bl.hyper.Estimate(r.Context(), inst.Query)
			if err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			p.Hyper = he.Cardinality
			pe, err := bl.pg.Estimate(r.Context(), inst.Query)
			if err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			p.PostgreSQL = pe.Cardinality
		}
		points = append(points, p)
	}
	writeJSON(w, http.StatusOK, map[string]any{"points": points})
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}
