// Command deepsketchd is the demonstration server: the reproduction of the
// paper's web demo (Figure 2). It serves the synthetic IMDb and TPC-H
// datasets and lets clients define Deep Sketches, monitor their training,
// and run ad-hoc and template queries against trained sketches — with
// overlays from the HyPer-style and PostgreSQL-style estimators and the
// true cardinality, like the demo UI's chart. New sketches train in the
// background while existing ones keep serving queries ("we allow users to
// train new models while querying existing ones").
//
//	deepsketchd -addr :8080 -titles 20000 -orders 15000 -prebuilt
//
// JSON API:
//
//	GET  /api/datasets                 schemas of the available datasets
//	GET  /api/sketches                 sketch list with build status
//	POST /api/sketches                 define a sketch (async build; 409 on duplicate name)
//	GET  /api/sketches/{id}            status, progress, epochs, version history
//	PUT  /api/sketches/{id}            upload a sketch file and swap it in as a new version
//	GET  /api/sketches/{id}/download   serialized sketch file
//	POST /api/sketches/{id}/refresh    warm-start retrain on a delta workload, swap in
//	POST /api/sketches/{id}/rollback   revert to the previous version
//	POST /api/estimate                 {sketch_id, sql} -> all overlays (+ serving version)
//	POST /api/template                 {sketch_id, sql, group, buckets}
//
// # Refreshing a live sketch
//
// Sketches are versioned, long-lived serving artifacts managed by a
// per-dataset lifecycle registry: the initial build is version 1, and
// every refresh, upload or rollback changes which version serves — under
// traffic, atomically, with the estimate caches invalidated on the next
// request (they watch the registry generation). To refresh a sketch after
// the data has drifted:
//
//	POST /api/sketches/1/refresh
//	{"queries": 2000, "epochs": 5, "workers": 4}
//
// The daemon generates and labels a fresh delta workload over the sketch's
// tables, fine-tunes a clone of the serving model — resuming the Adam
// moments persisted in the sketch file, so a handful of epochs reaches
// full-build quality — and swaps the result in as the next version. The
// old version keeps serving until the swap; a failed refresh never
// replaces it. Poll GET /api/sketches/1 for status ("refreshing" → "ready",
// the version field bumps) and the full version history. If the refreshed
// model misbehaves, POST /api/sketches/1/rollback restores the previous
// version immediately; estimate responses carry the serving version so
// clients can tell which model answered. Retrained offline instead? Upload
// the .dsk file with PUT /api/sketches/1 to swap it in the same way.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"deepsketch"
	"deepsketch/internal/trainmon"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	titles := flag.Int("titles", 20000, "imdb scale (titles)")
	orders := flag.Int("orders", 15000, "tpch scale (orders)")
	seed := flag.Int64("seed", 1, "dataset seed")
	prebuilt := flag.Bool("prebuilt", false, "build a small ready-to-query sketch per dataset at startup")
	store := flag.String("store", "", "directory to persist sketches across restarts (empty = in-memory only)")
	flag.Parse()

	srv := newServer(*titles, *orders, *seed)
	srv.store = *store
	if srv.store != "" {
		if n, err := srv.loadStore(); err != nil {
			log.Printf("deepsketchd: loading store: %v", err)
		} else if n > 0 {
			log.Printf("deepsketchd: restored %d sketches from %s", n, srv.store)
		}
	}
	if *prebuilt {
		srv.startPrebuilt()
	}
	log.Printf("deepsketchd listening on %s (imdb: %d total rows, tpch: %d total rows)",
		*addr, srv.datasets["imdb"].TotalRows(), srv.datasets["tpch"].TotalRows())
	log.Fatal(http.ListenAndServe(*addr, srv.routes()))
}

// sketchEntry tracks one sketch through its lifecycle.
type sketchEntry struct {
	ID      int    `json:"id"`
	Name    string `json:"name"`
	Dataset string `json:"dataset"`
	Status  string `json:"status"` // building | ready | refreshing | failed
	Error   string `json:"error,omitempty"`
	// Version is the serving sketch version in the dataset's lifecycle
	// registry: 1 after the initial build, bumped by every upload-and-swap
	// or refresh, moved back by rollback.
	Version int       `json:"version,omitempty"`
	Created time.Time `json:"created"`
	sketch  *deepsketch.Sketch
	// serving is the sketch behind its serving stack: an LRU estimate
	// cache over a clamped micro-batching coalescer. All request traffic
	// to this sketch goes through it. Rebuilt on every swap, so the cache
	// can never serve a previous version's answers; in-flight requests
	// finish on the stack (and sketch version) they started with.
	serving deepsketch.Estimator
	mon     *deepsketch.Monitor
	// adminMu serializes version-changing admin operations on this entry
	// (upload-and-swap, refresh start/completion, rollback): each is a
	// check-then-act sequence across the registry, the entry fields and the
	// store file, and interleaving two of them could leave the entry's
	// serving stack and persisted file pointing at a different version than
	// the registry serves. Held around whole operations; s.mu (which only
	// guards field access) nests inside it.
	adminMu sync.Mutex
}

type baseline struct {
	hyper deepsketch.Estimator
	pg    deepsketch.Estimator
}

type server struct {
	datasets map[string]*deepsketch.DB
	baseline map[string]baseline
	// registries hold each dataset's versioned sketch fleet: auto-routed
	// queries dispatch through the registry's router to the most specific
	// ready sketch, and the admin endpoints publish, swap, refresh and
	// roll back versions through the registry. auto wraps each router in
	// the serving chain Router → PostgreSQL, so a query no sketch covers
	// still gets an answer instead of an error.
	registries map[string]*deepsketch.SketchRegistry
	auto       map[string]*deepsketch.EstimateCache

	// store, when non-empty, is a directory where ready sketches are
	// persisted and from which they are restored at startup.
	store string

	mu       sync.RWMutex
	sketches map[int]*sketchEntry
	nextID   int
}

func newServer(titles, orders int, seed int64) *server {
	s := &server{
		datasets: map[string]*deepsketch.DB{
			"imdb": deepsketch.NewIMDb(deepsketch.IMDbConfig{Seed: seed, Titles: titles}),
			"tpch": deepsketch.NewTPCH(deepsketch.TPCHConfig{Seed: seed, Orders: orders}),
		},
		baseline:   map[string]baseline{},
		registries: map[string]*deepsketch.SketchRegistry{},
		auto:       map[string]*deepsketch.EstimateCache{},
		sketches:   map[int]*sketchEntry{},
		nextID:     1,
	}
	for name, d := range s.datasets {
		hyper, err := deepsketch.HyperEstimator(d, 1000, seed)
		if err != nil {
			log.Fatalf("baseline for %s: %v", name, err)
		}
		pg := deepsketch.PostgresEstimator(d)
		s.baseline[name] = baseline{hyper: hyper, pg: pg}
		reg := deepsketch.NewSketchRegistry()
		s.registries[name] = reg
		// Auto-routed traffic gets the same serving treatment as explicit
		// sketch requests: coalesced batched inference behind the router,
		// clamped, PostgreSQL fallback for uncovered queries, all cached.
		// The fallback sits inside the coalescer so a coalesced batch that
		// contains uncovered queries bisects into batched router calls plus
		// per-query PostgreSQL answers, instead of failing wholesale and
		// serializing the whole flush. The cache watches the registry
		// generation: a publish, swap or rollback invalidates it on the
		// next request — no stale estimates after a version change.
		s.auto[name] = deepsketch.WithCache(
			deepsketch.NewCoalescer(
				deepsketch.Fallback(
					deepsketch.Clamp(reg.Router(), deepsketch.MaxCardinality(d)),
					pg),
				deepsketch.CoalesceOptions{}),
			1024).WatchGeneration(reg.Generation)
	}
	return s
}

// markReady publishes a built sketch into the dataset's registry as a new
// name (version 1) and installs its serving stack.
func (s *server) markReady(e *sketchEntry, sk *deepsketch.Sketch) {
	ver, err := s.registries[e.Dataset].Publish(e.Name, sk)
	if err != nil {
		s.mu.Lock()
		e.Status = "failed"
		e.Error = err.Error()
		s.mu.Unlock()
		return
	}
	s.installVersion(e, sk, ver, "ready", "")
}

// installVersion points the entry at a (new or rolled-back) sketch version:
// fresh serving stack, updated status. The previous stack's coalescer lives
// as long as in-flight requests may reference it (entries are never
// deleted), so it is not closed; its cache is abandoned wholesale, which is
// what guarantees no post-swap request can hit a previous version's cached
// answer.
func (s *server) installVersion(e *sketchEntry, sk *deepsketch.Sketch, ver int, status, errMsg string) {
	d := s.datasets[e.Dataset]
	serving := deepsketch.WithCache(
		deepsketch.Clamp(
			deepsketch.NewCoalescer(sk, deepsketch.CoalesceOptions{}),
			deepsketch.MaxCardinality(d)),
		1024)
	s.mu.Lock()
	e.sketch = sk
	e.serving = serving
	e.Version = ver
	e.Status = status
	e.Error = errMsg
	s.mu.Unlock()
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.handleIndex)
	mux.HandleFunc("GET /api/datasets", s.handleDatasets)
	mux.HandleFunc("GET /api/sketches", s.handleSketchList)
	mux.HandleFunc("POST /api/sketches", s.handleSketchCreate)
	mux.HandleFunc("GET /api/sketches/{id}", s.handleSketchGet)
	mux.HandleFunc("PUT /api/sketches/{id}", s.handleSketchUpload)
	mux.HandleFunc("GET /api/sketches/{id}/download", s.handleSketchDownload)
	mux.HandleFunc("POST /api/sketches/{id}/refresh", s.handleSketchRefresh)
	mux.HandleFunc("POST /api/sketches/{id}/rollback", s.handleSketchRollback)
	mux.HandleFunc("POST /api/estimate", s.handleEstimate)
	mux.HandleFunc("POST /api/template", s.handleTemplate)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("deepsketchd: encode response: %v", err)
	}
}

// snapshotJSON marshals v while holding the server read lock — entry fields
// are mutex-guarded, but the lock must never be held across the network
// write (a client that stops reading would otherwise block every other
// request behind the next writer). Pair with writeRawJSON.
func (s *server) snapshotJSON(v any) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return json.Marshal(v)
}

func writeRawJSON(w http.ResponseWriter, status int, blob []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(append(blob, '\n')); err != nil {
		log.Printf("deepsketchd: write response: %v", err)
	}
}

// writeEntry responds with an entry snapshot taken under the lock.
func (s *server) writeEntry(w http.ResponseWriter, status int, e *sketchEntry) {
	blob, err := s.snapshotJSON(e)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeRawJSON(w, status, blob)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	type colInfo struct {
		Name string `json:"name"`
		Type string `json:"type"`
	}
	type tblInfo struct {
		Name string    `json:"name"`
		Rows int       `json:"rows"`
		Cols []colInfo `json:"columns"`
	}
	out := map[string][]tblInfo{}
	for name, d := range s.datasets {
		var tbls []tblInfo
		for _, tn := range d.TableNames() {
			t := d.Table(tn)
			ti := tblInfo{Name: tn, Rows: t.NumRows()}
			for _, c := range t.Cols {
				ti.Cols = append(ti.Cols, colInfo{Name: c.Name, Type: c.Type.String()})
			}
			tbls = append(tbls, ti)
		}
		out[name] = tbls
	}
	writeJSON(w, http.StatusOK, out)
}

type createReq struct {
	Name         string   `json:"name"`
	Dataset      string   `json:"dataset"`
	Tables       []string `json:"tables"`
	SampleSize   int      `json:"sample_size"`
	TrainQueries int      `json:"train_queries"`
	Epochs       int      `json:"epochs"`
	HiddenUnits  int      `json:"hidden_units"`
	Seed         int64    `json:"seed"`
}

func (s *server) handleSketchCreate(w http.ResponseWriter, r *http.Request) {
	var req createReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Dataset == "" {
		req.Dataset = "imdb"
	}
	d, ok := s.datasets[req.Dataset]
	if !ok {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown dataset %q", req.Dataset))
		return
	}
	entry, err := s.register(req.Name, req.Dataset)
	if err != nil {
		// Duplicate names conflict with the lifecycle registry's version
		// keying: 409, not a silent second fleet member.
		writeErr(w, http.StatusConflict, err)
		return
	}
	go s.build(entry, d, req)
	writeJSON(w, http.StatusAccepted, entry)
}

func (s *server) register(name, dataset string) (*sketchEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if name != "" {
		for _, e := range s.sketches {
			if e.Name == name && e.Dataset == dataset && e.Status != "failed" {
				return nil, fmt.Errorf("sketch %q already exists on %s (id %d); upload to PUT /api/sketches/%d to replace it", name, dataset, e.ID, e.ID)
			}
		}
	}
	id := s.nextID
	s.nextID++
	if name == "" {
		name = fmt.Sprintf("%s-sketch-%d", dataset, id)
	}
	e := &sketchEntry{
		ID: id, Name: name, Dataset: dataset, Status: "building",
		Created: time.Now(), mon: deepsketch.NewMonitor(),
	}
	s.sketches[id] = e
	return e, nil
}

// build runs the creation pipeline in the background.
func (s *server) build(e *sketchEntry, d *deepsketch.DB, req createReq) {
	mcfg := deepsketch.DefaultModelConfig()
	if req.Epochs > 0 {
		mcfg.Epochs = req.Epochs
	}
	if req.HiddenUnits > 0 {
		mcfg.HiddenUnits = req.HiddenUnits
	}
	mcfg.Seed = req.Seed
	cfg := deepsketch.Config{
		Name: e.Name, Tables: req.Tables, SampleSize: req.SampleSize,
		TrainQueries: req.TrainQueries, Seed: req.Seed, Model: mcfg,
	}
	sk, err := deepsketch.Build(d, cfg, e.mon)
	if err != nil {
		s.mu.Lock()
		e.Status = "failed"
		e.Error = err.Error()
		s.mu.Unlock()
		return
	}
	s.markReady(e, sk)
	s.persist(e, sk)
}

// startPrebuilt creates one small high-quality sketch per dataset so users
// can query immediately ("we offer pre-built (high quality) models that can
// be queried right away").
func (s *server) startPrebuilt() {
	for name, d := range s.datasets {
		e, err := s.register("prebuilt-"+name, name)
		if err != nil {
			log.Printf("deepsketchd: prebuilt %s: %v", name, err)
			continue
		}
		go s.build(e, d, createReq{
			Dataset: name, SampleSize: 500, TrainQueries: 3000, Epochs: 20, HiddenUnits: 32, Seed: 7,
		})
	}
}

func (s *server) handleSketchList(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	out := make([]*sketchEntry, 0, len(s.sketches))
	for id := 1; id < s.nextID; id++ {
		if e, ok := s.sketches[id]; ok {
			out = append(out, e)
		}
	}
	blob, err := json.Marshal(out)
	s.mu.RUnlock()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeRawJSON(w, http.StatusOK, blob)
}

func (s *server) entryByID(r *http.Request) (*sketchEntry, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return nil, fmt.Errorf("bad sketch id")
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.sketches[id]
	if !ok {
		return nil, fmt.Errorf("no sketch %d", id)
	}
	return e, nil
}

func (s *server) handleSketchGet(w http.ResponseWriter, r *http.Request) {
	e, err := s.entryByID(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	type resp struct {
		*sketchEntry
		Progress trainmon.Snapshot          `json:"progress"`
		Epochs   []trainmon.Event           `json:"epoch_events"`
		Versions []deepsketch.SketchVersion `json:"versions,omitempty"`
	}
	var epochs []trainmon.Event
	for _, ev := range e.mon.Events() {
		if ev.Kind == trainmon.KindEpoch {
			epochs = append(epochs, ev)
		}
	}
	versions, _ := s.registries[e.Dataset].Versions(e.Name)
	blob, err := s.snapshotJSON(resp{sketchEntry: e, Progress: e.mon.Snapshot(), Epochs: epochs, Versions: versions})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeRawJSON(w, http.StatusOK, blob)
}

func (s *server) handleSketchDownload(w http.ResponseWriter, r *http.Request) {
	e, err := s.entryByID(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.mu.RLock()
	sk := e.sketch
	s.mu.RUnlock()
	if sk == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("sketch %d not ready", e.ID))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", e.Name+".dsk"))
	if err := sk.Save(w); err != nil {
		log.Printf("deepsketchd: download: %v", err)
	}
}

// handleSketchUpload is upload-and-swap: the request body is a serialized
// sketch file (as produced by download or `deepsketch build/refresh`),
// which atomically replaces the entry's serving sketch as a new version.
// The uploaded sketch must belong to the entry's dataset; its name is
// overridden to the entry's name, since the version chain is keyed by it.
func (s *server) handleSketchUpload(w http.ResponseWriter, r *http.Request) {
	e, err := s.entryByID(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	// Cap the upload: sketches are a few MiB; a stream claiming more is
	// not a sketch file.
	sk, err := deepsketch.Load(http.MaxBytesReader(w, r.Body, 1<<28))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("not a sketch file: %w", err))
		return
	}
	e.adminMu.Lock()
	defer e.adminMu.Unlock()
	s.mu.RLock()
	status, dataset := e.Status, e.Dataset
	s.mu.RUnlock()
	if status != "ready" {
		writeErr(w, http.StatusConflict, fmt.Errorf("sketch %d is %s", e.ID, status))
		return
	}
	if sk.DBName != dataset {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("uploaded sketch is for dataset %q, entry %d serves %q", sk.DBName, e.ID, dataset))
		return
	}
	sk.Cfg.Name = e.Name
	ver, err := s.registries[dataset].Swap(e.Name, sk)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	s.installVersion(e, sk, ver, "ready", "")
	s.persist(e, sk)
	s.writeEntry(w, http.StatusOK, e)
}

type refreshReq struct {
	// Queries sizes the generated drift-delta workload (default 1000).
	Queries int `json:"queries"`
	// Seed drives delta workload generation; vary it across refreshes so
	// each one sees fresh queries (default: current version number).
	Seed int64 `json:"seed"`
	// Epochs caps the fine-tune budget (default: the sketch's build epochs).
	Epochs int `json:"epochs"`
	// StopAtValQ stops early at this validation mean q-error (0 disables).
	StopAtValQ float64 `json:"stop_at_val_q"`
	// Workers bounds labeling and training parallelism (0 = GOMAXPROCS).
	Workers int `json:"workers"`
}

// handleSketchRefresh warm-start retrains the serving sketch on a freshly
// generated delta workload in the background and swaps the result in as a
// new version. The current version keeps serving until the swap; a failed
// refresh leaves it serving and records the error on the entry.
func (s *server) handleSketchRefresh(w http.ResponseWriter, r *http.Request) {
	e, err := s.entryByID(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var req refreshReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	e.adminMu.Lock()
	defer e.adminMu.Unlock()
	// Default seed: derived from the monotone history length, not the live
	// version number — after a rollback the live version repeats, and the
	// seed must not, or the refresh would regenerate the exact delta
	// workload that produced the rolled-back model. adminMu is held, so the
	// history cannot change underneath.
	histLen := 0
	if vs, err := s.registries[e.Dataset].Versions(e.Name); err == nil {
		histLen = len(vs)
	}
	s.mu.Lock()
	if e.Status != "ready" {
		status := e.Status
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, fmt.Errorf("sketch %d is %s", e.ID, status))
		return
	}
	e.Status = "refreshing"
	e.Error = ""
	if req.Queries <= 0 {
		req.Queries = 1000
	}
	if req.Seed == 0 {
		req.Seed = int64(histLen + 1)
	}
	sk := e.sketch
	s.mu.Unlock()

	go s.refresh(e, sk, req)
	s.writeEntry(w, http.StatusAccepted, e)
}

// refresh runs the delta-workload fine-tune in the background. Entry
// status is "refreshing" for the whole run, which 409s any concurrent
// upload/rollback/refresh; completion takes adminMu so the install+persist
// pair cannot interleave with an admin operation racing the final status
// flip.
func (s *server) refresh(e *sketchEntry, sk *deepsketch.Sketch, req refreshReq) {
	fail := func(err error) {
		// The old version never stopped serving; keep it and record why
		// the refresh did not land.
		e.adminMu.Lock()
		defer e.adminMu.Unlock()
		s.mu.Lock()
		e.Status = "ready"
		e.Error = "refresh failed: " + err.Error()
		s.mu.Unlock()
	}
	d := s.datasets[e.Dataset]
	qs, err := deepsketch.GenerateWorkload(d, deepsketch.GenConfig{
		Seed: req.Seed, Count: req.Queries, Tables: sk.Cfg.Tables,
		MaxJoins: sk.Cfg.MaxJoins, MaxPreds: sk.Cfg.MaxPreds, Dedup: true,
	})
	if err != nil {
		fail(err)
		return
	}
	labeled, err := deepsketch.LabelWorkload(d, qs, req.Workers)
	if err != nil {
		fail(err)
		return
	}
	ver, ns, err := s.registries[e.Dataset].Refresh(context.Background(), deepsketch.RegistryRefreshOptions{
		Name: e.Name, Workload: labeled,
		Epochs: req.Epochs, StopAtValQ: req.StopAtValQ, Workers: req.Workers,
		Monitor: e.mon,
	})
	if err != nil {
		fail(err)
		return
	}
	e.adminMu.Lock()
	s.installVersion(e, ns, ver, "ready", "")
	s.persist(e, ns)
	e.adminMu.Unlock()
	log.Printf("deepsketchd: refreshed sketch %q to version %d (%d delta queries)", e.Name, ver, len(labeled))
}

// handleSketchRollback reverts the entry to the version before the live
// one; the rolled-back-to version serves immediately.
func (s *server) handleSketchRollback(w http.ResponseWriter, r *http.Request) {
	e, err := s.entryByID(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	e.adminMu.Lock()
	defer e.adminMu.Unlock()
	s.mu.RLock()
	status := e.Status
	s.mu.RUnlock()
	if status != "ready" {
		writeErr(w, http.StatusConflict, fmt.Errorf("sketch %d is %s", e.ID, status))
		return
	}
	ver, sk, err := s.registries[e.Dataset].Rollback(e.Name)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	s.installVersion(e, sk, ver, "ready", "")
	s.persist(e, sk)
	s.writeEntry(w, http.StatusOK, e)
}

func (s *server) readySketch(id int) (*sketchEntry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.sketches[id]
	if !ok {
		return nil, fmt.Errorf("no sketch %d", id)
	}
	if e.sketch == nil {
		return nil, fmt.Errorf("sketch %d is %s", id, e.Status)
	}
	return e, nil
}

type estimateReq struct {
	// SketchID selects a sketch explicitly; 0 routes automatically through
	// the dataset's sketch router, falling back to the PostgreSQL-style
	// estimator when no ready sketch covers the query's tables.
	SketchID int    `json:"sketch_id"`
	Dataset  string `json:"dataset,omitempty"`
	SQL      string `json:"sql"`
}

// handleEstimate computes all the demo's overlays for one ad-hoc query:
// Deep Sketch (through the serving stack), HyPer, PostgreSQL, and the true
// cardinality. The client disconnecting cancels the work via the request
// context.
func (s *server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req estimateReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	dataset := req.Dataset
	var serving deepsketch.Estimator
	// pinnedVer is the serving version captured together with the serving
	// stack for explicit sketch requests — reading the live version after
	// the estimate would mislabel answers that race a swap or rollback.
	var pinnedVer int
	if req.SketchID == 0 {
		if dataset == "" {
			dataset = "imdb"
		}
		est, ok := s.auto[dataset]
		if !ok {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown dataset %q", dataset))
			return
		}
		serving = est
	} else {
		e, err := s.readySketch(req.SketchID)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		s.mu.RLock()
		serving = e.serving
		dataset = e.Dataset
		pinnedVer = e.Version
		s.mu.RUnlock()
	}
	d := s.datasets[dataset]
	q, err := deepsketch.ParseSQL(d, req.SQL)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	est, err := serving.Estimate(ctx, q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	truth, err := deepsketch.TrueCardinality(d, q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	bl := s.baseline[dataset]
	hyperEst, err := bl.hyper.Estimate(ctx, q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	pgEst, err := bl.pg.Estimate(ctx, q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	resp := map[string]any{
		"sql":         q.SQL(d),
		"deep_sketch": est.Cardinality,
		"source":      est.Source,
		"latency_ms":  float64(est.Latency.Microseconds()) / 1000.0,
		"cache_hit":   est.CacheHit,
		"hyper":       hyperEst.Cardinality,
		"postgresql":  pgEst.Cardinality,
		"true":        truth,
		"q_errors": map[string]float64{
			"deep_sketch": deepsketch.QError(est.Cardinality, float64(truth)),
			"hyper":       deepsketch.QError(hyperEst.Cardinality, float64(truth)),
			"postgresql":  deepsketch.QError(pgEst.Cardinality, float64(truth)),
		},
	}
	// Tag which version of the answering sketch served the estimate (absent
	// when a baseline fallback answered). Explicit requests report the
	// version pinned to the serving stack that answered; auto-routed
	// requests report the answering sketch's live version (best effort — a
	// swap can race the lookup).
	if pinnedVer > 0 {
		resp["version"] = pinnedVer
	} else if ver, ok := s.registries[dataset].LiveVersion(est.Source); ok {
		resp["version"] = ver
	}
	writeJSON(w, http.StatusOK, resp)
}

type templateReq struct {
	SketchID int    `json:"sketch_id"`
	SQL      string `json:"sql"`
	Group    string `json:"group"`   // distinct | buckets
	Buckets  int    `json:"buckets"` // for group=buckets
	Truth    bool   `json:"truth"`   // include true cardinalities
}

// handleTemplate serves the demo's placeholder queries: one series point per
// template instance, with optional overlays.
func (s *server) handleTemplate(w http.ResponseWriter, r *http.Request) {
	var req templateReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	e, err := s.readySketch(req.SketchID)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	g := deepsketch.GroupDistinct
	if req.Group == "buckets" {
		g = deepsketch.GroupBuckets
		if req.Buckets <= 0 {
			req.Buckets = 20
		}
	}
	res, err := e.sketch.EstimateTemplateSQL(r.Context(), req.SQL, g, req.Buckets)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	d := s.datasets[e.Dataset]
	bl := s.baseline[e.Dataset]
	type point struct {
		Label      string  `json:"label"`
		Estimate   float64 `json:"deep_sketch"`
		Hyper      float64 `json:"hyper,omitempty"`
		PostgreSQL float64 `json:"postgresql,omitempty"`
		True       *int64  `json:"true,omitempty"`
	}
	points := make([]point, 0, len(res))
	for _, inst := range res {
		p := point{Label: inst.Label, Estimate: inst.Estimate}
		if req.Truth {
			tc, err := deepsketch.TrueCardinality(d, inst.Query)
			if err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			p.True = &tc
			he, err := bl.hyper.Estimate(r.Context(), inst.Query)
			if err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			p.Hyper = he.Cardinality
			pe, err := bl.pg.Estimate(r.Context(), inst.Query)
			if err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			p.PostgreSQL = pe.Cardinality
		}
		points = append(points, p)
	}
	writeJSON(w, http.StatusOK, map[string]any{"points": points})
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}
