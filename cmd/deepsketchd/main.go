// Command deepsketchd is the demonstration server: the reproduction of the
// paper's web demo (Figure 2). It serves the synthetic IMDb and TPC-H
// datasets and lets clients define Deep Sketches, monitor their training,
// and run ad-hoc and template queries against trained sketches — with
// overlays from the HyPer-style and PostgreSQL-style estimators and the
// true cardinality, like the demo UI's chart. New sketches train in the
// background while existing ones keep serving queries ("we allow users to
// train new models while querying existing ones").
//
//	deepsketchd -addr :8080 -titles 20000 -orders 15000 -prebuilt
//
// JSON API:
//
//	GET  /api/datasets                 schemas of the available datasets
//	GET  /api/sketches                 sketch list with build status
//	POST /api/sketches                 define a sketch (async build)
//	GET  /api/sketches/{id}            status, progress snapshot, epochs
//	GET  /api/sketches/{id}/download   serialized sketch file
//	POST /api/estimate                 {sketch_id, sql} -> all overlays
//	POST /api/template                 {sketch_id, sql, group, buckets}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"deepsketch"
	"deepsketch/internal/trainmon"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	titles := flag.Int("titles", 20000, "imdb scale (titles)")
	orders := flag.Int("orders", 15000, "tpch scale (orders)")
	seed := flag.Int64("seed", 1, "dataset seed")
	prebuilt := flag.Bool("prebuilt", false, "build a small ready-to-query sketch per dataset at startup")
	store := flag.String("store", "", "directory to persist sketches across restarts (empty = in-memory only)")
	flag.Parse()

	srv := newServer(*titles, *orders, *seed)
	srv.store = *store
	if srv.store != "" {
		if n, err := srv.loadStore(); err != nil {
			log.Printf("deepsketchd: loading store: %v", err)
		} else if n > 0 {
			log.Printf("deepsketchd: restored %d sketches from %s", n, srv.store)
		}
	}
	if *prebuilt {
		srv.startPrebuilt()
	}
	log.Printf("deepsketchd listening on %s (imdb: %d total rows, tpch: %d total rows)",
		*addr, srv.datasets["imdb"].TotalRows(), srv.datasets["tpch"].TotalRows())
	log.Fatal(http.ListenAndServe(*addr, srv.routes()))
}

// sketchEntry tracks one sketch through its lifecycle.
type sketchEntry struct {
	ID      int       `json:"id"`
	Name    string    `json:"name"`
	Dataset string    `json:"dataset"`
	Status  string    `json:"status"` // building | ready | failed
	Error   string    `json:"error,omitempty"`
	Created time.Time `json:"created"`
	sketch  *deepsketch.Sketch
	mon     *deepsketch.Monitor
}

type server struct {
	datasets map[string]*deepsketch.DB
	baseline map[string]struct {
		hyper deepsketch.System
		pg    deepsketch.System
	}

	// store, when non-empty, is a directory where ready sketches are
	// persisted and from which they are restored at startup.
	store string

	mu       sync.RWMutex
	sketches map[int]*sketchEntry
	nextID   int
}

func newServer(titles, orders int, seed int64) *server {
	s := &server{
		datasets: map[string]*deepsketch.DB{
			"imdb": deepsketch.NewIMDb(deepsketch.IMDbConfig{Seed: seed, Titles: titles}),
			"tpch": deepsketch.NewTPCH(deepsketch.TPCHConfig{Seed: seed, Orders: orders}),
		},
		sketches: map[int]*sketchEntry{},
		nextID:   1,
	}
	s.baseline = map[string]struct {
		hyper deepsketch.System
		pg    deepsketch.System
	}{}
	for name, d := range s.datasets {
		hyper, err := deepsketch.HyperSystem(d, 1000, seed)
		if err != nil {
			log.Fatalf("baseline for %s: %v", name, err)
		}
		s.baseline[name] = struct {
			hyper deepsketch.System
			pg    deepsketch.System
		}{hyper: hyper, pg: deepsketch.PostgresSystem(d)}
	}
	return s
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.handleIndex)
	mux.HandleFunc("GET /api/datasets", s.handleDatasets)
	mux.HandleFunc("GET /api/sketches", s.handleSketchList)
	mux.HandleFunc("POST /api/sketches", s.handleSketchCreate)
	mux.HandleFunc("GET /api/sketches/{id}", s.handleSketchGet)
	mux.HandleFunc("GET /api/sketches/{id}/download", s.handleSketchDownload)
	mux.HandleFunc("POST /api/estimate", s.handleEstimate)
	mux.HandleFunc("POST /api/template", s.handleTemplate)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("deepsketchd: encode response: %v", err)
	}
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	type colInfo struct {
		Name string `json:"name"`
		Type string `json:"type"`
	}
	type tblInfo struct {
		Name string    `json:"name"`
		Rows int       `json:"rows"`
		Cols []colInfo `json:"columns"`
	}
	out := map[string][]tblInfo{}
	for name, d := range s.datasets {
		var tbls []tblInfo
		for _, tn := range d.TableNames() {
			t := d.Table(tn)
			ti := tblInfo{Name: tn, Rows: t.NumRows()}
			for _, c := range t.Cols {
				ti.Cols = append(ti.Cols, colInfo{Name: c.Name, Type: c.Type.String()})
			}
			tbls = append(tbls, ti)
		}
		out[name] = tbls
	}
	writeJSON(w, http.StatusOK, out)
}

type createReq struct {
	Name         string   `json:"name"`
	Dataset      string   `json:"dataset"`
	Tables       []string `json:"tables"`
	SampleSize   int      `json:"sample_size"`
	TrainQueries int      `json:"train_queries"`
	Epochs       int      `json:"epochs"`
	HiddenUnits  int      `json:"hidden_units"`
	Seed         int64    `json:"seed"`
}

func (s *server) handleSketchCreate(w http.ResponseWriter, r *http.Request) {
	var req createReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Dataset == "" {
		req.Dataset = "imdb"
	}
	d, ok := s.datasets[req.Dataset]
	if !ok {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown dataset %q", req.Dataset))
		return
	}
	entry := s.register(req.Name, req.Dataset)
	go s.build(entry, d, req)
	writeJSON(w, http.StatusAccepted, entry)
}

func (s *server) register(name, dataset string) *sketchEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	if name == "" {
		name = fmt.Sprintf("%s-sketch-%d", dataset, id)
	}
	e := &sketchEntry{
		ID: id, Name: name, Dataset: dataset, Status: "building",
		Created: time.Now(), mon: deepsketch.NewMonitor(),
	}
	s.sketches[id] = e
	return e
}

// build runs the creation pipeline in the background.
func (s *server) build(e *sketchEntry, d *deepsketch.DB, req createReq) {
	mcfg := deepsketch.DefaultModelConfig()
	if req.Epochs > 0 {
		mcfg.Epochs = req.Epochs
	}
	if req.HiddenUnits > 0 {
		mcfg.HiddenUnits = req.HiddenUnits
	}
	mcfg.Seed = req.Seed
	cfg := deepsketch.Config{
		Name: e.Name, Tables: req.Tables, SampleSize: req.SampleSize,
		TrainQueries: req.TrainQueries, Seed: req.Seed, Model: mcfg,
	}
	sk, err := deepsketch.Build(d, cfg, e.mon)
	s.mu.Lock()
	if err != nil {
		e.Status = "failed"
		e.Error = err.Error()
		s.mu.Unlock()
		return
	}
	e.sketch = sk
	e.Status = "ready"
	s.mu.Unlock()
	s.persist(e, sk)
}

// startPrebuilt creates one small high-quality sketch per dataset so users
// can query immediately ("we offer pre-built (high quality) models that can
// be queried right away").
func (s *server) startPrebuilt() {
	for name, d := range s.datasets {
		e := s.register("prebuilt-"+name, name)
		go s.build(e, d, createReq{
			Dataset: name, SampleSize: 500, TrainQueries: 3000, Epochs: 20, HiddenUnits: 32, Seed: 7,
		})
	}
}

func (s *server) handleSketchList(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*sketchEntry, 0, len(s.sketches))
	for id := 1; id < s.nextID; id++ {
		if e, ok := s.sketches[id]; ok {
			out = append(out, e)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) entryByID(r *http.Request) (*sketchEntry, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return nil, fmt.Errorf("bad sketch id")
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.sketches[id]
	if !ok {
		return nil, fmt.Errorf("no sketch %d", id)
	}
	return e, nil
}

func (s *server) handleSketchGet(w http.ResponseWriter, r *http.Request) {
	e, err := s.entryByID(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	type resp struct {
		*sketchEntry
		Progress trainmon.Snapshot `json:"progress"`
		Epochs   []trainmon.Event  `json:"epoch_events"`
	}
	var epochs []trainmon.Event
	for _, ev := range e.mon.Events() {
		if ev.Kind == trainmon.KindEpoch {
			epochs = append(epochs, ev)
		}
	}
	writeJSON(w, http.StatusOK, resp{sketchEntry: e, Progress: e.mon.Snapshot(), Epochs: epochs})
}

func (s *server) handleSketchDownload(w http.ResponseWriter, r *http.Request) {
	e, err := s.entryByID(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.mu.RLock()
	sk := e.sketch
	s.mu.RUnlock()
	if sk == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("sketch %d not ready", e.ID))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", e.Name+".dsk"))
	if err := sk.Save(w); err != nil {
		log.Printf("deepsketchd: download: %v", err)
	}
}

func (s *server) readySketch(id int) (*sketchEntry, *deepsketch.Sketch, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.sketches[id]
	if !ok {
		return nil, nil, fmt.Errorf("no sketch %d", id)
	}
	if e.sketch == nil {
		return nil, nil, fmt.Errorf("sketch %d is %s", id, e.Status)
	}
	return e, e.sketch, nil
}

// routeSketch picks the most specific ready sketch of the dataset that
// covers the query's tables (smallest table set; ties by id). The SQL is
// parsed against the dataset schema just to learn the referenced tables.
func (s *server) routeSketch(dataset, sql string) (*sketchEntry, *deepsketch.Sketch, error) {
	if dataset == "" {
		dataset = "imdb"
	}
	d, ok := s.datasets[dataset]
	if !ok {
		return nil, nil, fmt.Errorf("unknown dataset %q", dataset)
	}
	q, err := deepsketch.ParseSQL(d, sql)
	if err != nil {
		return nil, nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var best *sketchEntry
	for id := 1; id < s.nextID; id++ {
		e, ok := s.sketches[id]
		if !ok || e.sketch == nil || e.Dataset != dataset {
			continue
		}
		if !coversTables(e.sketch, q) {
			continue
		}
		if best == nil || len(e.sketch.Cfg.Tables) < len(best.sketch.Cfg.Tables) {
			best = e
		}
	}
	if best == nil {
		return nil, nil, fmt.Errorf("no ready sketch covers the query's tables")
	}
	return best, best.sketch, nil
}

func coversTables(sk *deepsketch.Sketch, q deepsketch.Query) bool {
	set := make(map[string]bool, len(sk.Cfg.Tables))
	for _, t := range sk.Cfg.Tables {
		set[t] = true
	}
	for _, tr := range q.Tables {
		if !set[tr.Table] {
			return false
		}
	}
	return true
}

type estimateReq struct {
	// SketchID selects a sketch explicitly; 0 routes automatically to the
	// most specific ready sketch of Dataset that covers the query's tables.
	SketchID int    `json:"sketch_id"`
	Dataset  string `json:"dataset,omitempty"`
	SQL      string `json:"sql"`
}

// handleEstimate computes all the demo's overlays for one ad-hoc query:
// Deep Sketch, HyPer, PostgreSQL, and the true cardinality.
func (s *server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req estimateReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var e *sketchEntry
	var sk *deepsketch.Sketch
	var err error
	if req.SketchID == 0 {
		e, sk, err = s.routeSketch(req.Dataset, req.SQL)
	} else {
		e, sk, err = s.readySketch(req.SketchID)
	}
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	d := s.datasets[e.Dataset]
	q, err := deepsketch.ParseSQL(d, req.SQL)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	est, err := sk.Estimate(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	truth, err := deepsketch.TrueCardinality(d, q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	bl := s.baseline[e.Dataset]
	hyperEst, err := bl.hyper.Estimate(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	pgEst, err := bl.pg.Estimate(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sql":         q.SQL(d),
		"deep_sketch": est,
		"hyper":       hyperEst,
		"postgresql":  pgEst,
		"true":        truth,
		"q_errors": map[string]float64{
			"deep_sketch": deepsketch.QError(est, float64(truth)),
			"hyper":       deepsketch.QError(hyperEst, float64(truth)),
			"postgresql":  deepsketch.QError(pgEst, float64(truth)),
		},
	})
}

type templateReq struct {
	SketchID int    `json:"sketch_id"`
	SQL      string `json:"sql"`
	Group    string `json:"group"`   // distinct | buckets
	Buckets  int    `json:"buckets"` // for group=buckets
	Truth    bool   `json:"truth"`   // include true cardinalities
}

// handleTemplate serves the demo's placeholder queries: one series point per
// template instance, with optional overlays.
func (s *server) handleTemplate(w http.ResponseWriter, r *http.Request) {
	var req templateReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	e, sk, err := s.readySketch(req.SketchID)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	g := deepsketch.GroupDistinct
	if req.Group == "buckets" {
		g = deepsketch.GroupBuckets
		if req.Buckets <= 0 {
			req.Buckets = 20
		}
	}
	res, err := sk.EstimateTemplateSQL(req.SQL, g, req.Buckets)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	d := s.datasets[e.Dataset]
	bl := s.baseline[e.Dataset]
	type point struct {
		Label      string  `json:"label"`
		Estimate   float64 `json:"deep_sketch"`
		Hyper      float64 `json:"hyper,omitempty"`
		PostgreSQL float64 `json:"postgresql,omitempty"`
		True       *int64  `json:"true,omitempty"`
	}
	points := make([]point, 0, len(res))
	for _, inst := range res {
		p := point{Label: inst.Label, Estimate: inst.Estimate}
		if req.Truth {
			tc, err := deepsketch.TrueCardinality(d, inst.Query)
			if err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			p.True = &tc
			if p.Hyper, err = bl.hyper.Estimate(inst.Query); err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			if p.PostgreSQL, err = bl.pg.Estimate(inst.Query); err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
		}
		points = append(points, p)
	}
	writeJSON(w, http.StatusOK, map[string]any{"points": points})
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}
