package main

// indexHTML is the minimal web UI: define sketches, watch training, run
// ad-hoc and template queries with overlays — a text-mode rendition of the
// paper's Figure 2 interface.
const indexHTML = `<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>Deep Sketches</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 60rem; }
textarea, input, select, button { font: inherit; margin: 0.15rem 0; }
textarea { width: 100%; height: 5rem; }
pre { background: #f4f4f4; padding: 0.8rem; overflow-x: auto; }
section { margin-bottom: 2rem; }
.bar { background: #4a7; height: 0.9rem; display: inline-block; }
.bar.true { background: #333; }
.bar.pg { background: #c66; }
.bar.hy { background: #66c; }
td { padding: 0 0.6rem 0 0; font-size: 0.85rem; white-space: nowrap; }
</style>
</head>
<body>
<h1>Deep Sketches</h1>
<p>Compact learned models of a database that estimate SQL result sizes.
Define a sketch, watch it train, then run ad-hoc COUNT(*) queries and
templates with a <code>?</code> placeholder.</p>

<section>
<h2>Sketches</h2>
<button onclick="refresh()">refresh</button>
<pre id="sketches">loading...</pre>
<h3>Create</h3>
dataset <select id="c_ds"><option>imdb</option><option>tpch</option></select>
queries <input id="c_q" value="3000" size="6">
epochs <input id="c_e" value="20" size="4">
samples <input id="c_s" value="500" size="5">
<button onclick="createSketch()">create sketch</button>
</section>

<section>
<h2>Ad-hoc query</h2>
sketch id <input id="q_id" value="1" size="3">
<textarea id="q_sql">SELECT COUNT(*) FROM title t, movie_keyword mk WHERE mk.movie_id=t.id AND t.production_year>2010</textarea>
<button onclick="estimate()">EXECUTE</button>
<pre id="q_out"></pre>
</section>

<section>
<h2>Template query</h2>
sketch id <input id="t_id" value="1" size="3">
group <select id="t_group"><option>distinct</option><option>buckets</option></select>
buckets <input id="t_buckets" value="20" size="4">
<textarea id="t_sql">SELECT COUNT(*) FROM title t, movie_keyword mk, keyword k WHERE mk.movie_id=t.id AND mk.keyword_id=k.id AND k.keyword='artificial-intelligence' AND t.production_year=?</textarea>
<button onclick="template()">EXECUTE</button>
<div id="t_out"></div>
</section>

<script>
async function jsonFetch(url, opts) {
  const r = await fetch(url, opts);
  const body = await r.json();
  if (!r.ok) throw new Error(body.error || r.statusText);
  return body;
}
async function refresh() {
  const s = await jsonFetch('/api/sketches');
  const lines = await Promise.all(s.map(async e => {
    const d = await jsonFetch('/api/sketches/' + e.id);
    const p = d.progress;
    let st = e.status;
    if (st === 'building') st += ' (' + p.stage + ' ' + (p.epoch ? 'epoch ' + p.epoch : p.done + '/' + p.total) + ')';
    if (st === 'ready' && p.val_mean_q) st += '  val mean-q ' + p.val_mean_q.toFixed(1);
    return '#' + e.id + '  ' + e.name + '  [' + e.dataset + ']  ' + st;
  }));
  document.getElementById('sketches').textContent = lines.join('\n') || '(none — create one below)';
}
async function createSketch() {
  await jsonFetch('/api/sketches', {method: 'POST', body: JSON.stringify({
    dataset: document.getElementById('c_ds').value,
    train_queries: +document.getElementById('c_q').value,
    epochs: +document.getElementById('c_e').value,
    sample_size: +document.getElementById('c_s').value,
  })});
  refresh();
}
async function estimate() {
  const out = document.getElementById('q_out');
  out.textContent = '...';
  try {
    const r = await jsonFetch('/api/estimate', {method: 'POST', body: JSON.stringify({
      sketch_id: +document.getElementById('q_id').value,
      sql: document.getElementById('q_sql').value,
    })});
    out.textContent =
      'Deep Sketch  ' + r.deep_sketch.toFixed(1) + '   (q-error ' + r.q_errors.deep_sketch.toFixed(2) + ')\n' +
      'HyPer        ' + r.hyper.toFixed(1) + '   (q-error ' + r.q_errors.hyper.toFixed(2) + ')\n' +
      'PostgreSQL   ' + r.postgresql.toFixed(1) + '   (q-error ' + r.q_errors.postgresql.toFixed(2) + ')\n' +
      'True         ' + r.true;
  } catch (e) { out.textContent = 'error: ' + e.message; }
}
async function template() {
  const out = document.getElementById('t_out');
  out.textContent = '...';
  try {
    const r = await jsonFetch('/api/template', {method: 'POST', body: JSON.stringify({
      sketch_id: +document.getElementById('t_id').value,
      sql: document.getElementById('t_sql').value,
      group: document.getElementById('t_group').value,
      buckets: +document.getElementById('t_buckets').value,
      truth: true,
    })});
    const max = Math.max(1, ...r.points.map(p => Math.max(p.deep_sketch, p.true || 0)));
    out.innerHTML = '<table>' + r.points.map(p =>
      '<tr><td>' + p.label + '</td>' +
      '<td><span class="bar" style="width:' + (260 * p.deep_sketch / max) + 'px"></span> ' + p.deep_sketch.toFixed(1) + '</td>' +
      '<td><span class="bar true" style="width:' + (260 * (p.true || 0) / max) + 'px"></span> ' + (p.true ?? '') + '</td></tr>'
    ).join('') + '</table><p>green = Deep Sketch estimate, black = true cardinality</p>';
  } catch (e) { out.textContent = 'error: ' + e.message; }
}
refresh();
</script>
</body>
</html>
`
