package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"time"

	"deepsketch"
)

// The logged-actuals feedback loop. With -wal set, every sampled estimate
// the drift monitor parks (and every one it resolves in-process) is
// journaled to the dataset's observation WAL; clients that execute queries
// for real report the observed row counts to POST
// /api/sketches/{id}/actuals, which resolves the pending observation,
// lands its q-error in the drift windows, and appends the actual to the
// WAL. At startup replayWAL rebuilds the monitors' windows and pending
// queues from the surviving segments — a kill -9 mid-episode costs at most
// the unsynced tail, not the episode. With -drift-truth=false this is the
// ONLY ground-truth path: the exact executor is off the serving path
// entirely, and refresh delta workloads come from the WAL's recent actuals
// instead of synthetic generation.

// walJournal adapts one dataset's observation WAL to the drift monitor's
// journal seam.
type walJournal struct {
	d   *deepsketch.DB
	log *deepsketch.ObservationLog
}

func (j *walJournal) Pending(name string, version int, q deepsketch.Query, estimate float64) {
	j.append(deepsketch.WALRecord{
		Kind: deepsketch.WALObservation, Name: name, Version: version,
		Signature: q.Signature(), SQL: q.SQL(j.d), Estimate: estimate,
	})
}

func (j *walJournal) Resolved(name string, version int, q deepsketch.Query, estimate, actual float64) {
	j.append(deepsketch.WALRecord{
		Kind: deepsketch.WALActual, Name: name, Version: version,
		Signature: q.Signature(), SQL: q.SQL(j.d), Estimate: estimate, Actual: actual,
	})
}

func (j *walJournal) append(r deepsketch.WALRecord) {
	if err := j.log.Append(r); err != nil {
		log.Printf("deepsketchd: wal append: %v", err)
	}
}

// actualsReq is the POST /api/sketches/{id}/actuals payload: the query a
// client executed for real and the row count it observed.
type actualsReq struct {
	SQL    string  `json:"sql"`
	Actual float64 `json:"actual"`
	// Client identifies the reporting client for per-client admission
	// control ("" shares one unattributed budget).
	Client string `json:"client,omitempty"`
}

const (
	// maxActualsBody bounds the POST .../actuals request body — the ingest
	// path is client-facing and must not buffer arbitrarily large payloads.
	maxActualsBody = 1 << 20
	// maxClientIDBytes bounds the self-reported client ID: it keys the
	// admission table and is stored verbatim in every WAL record.
	maxClientIDBytes = 256
)

// handleSketchActuals ingests one observed actual: admission control
// first (per-client sampling, then the rate cap), then the monitor
// matches it against the pending observation for the query's signature,
// and the pair — or the unmatched actual, which is still training data —
// is appended to the observation WAL.
func (s *server) handleSketchActuals(w http.ResponseWriter, r *http.Request) {
	e, err := s.entryByID(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxActualsBody)
	var req actualsReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Actual < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("actual cardinality %g is negative", req.Actual))
		return
	}
	if len(req.Client) > maxClientIDBytes {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("client ID is %d bytes, limit %d", len(req.Client), maxClientIDBytes))
		return
	}
	d := s.datasets[e.Dataset]
	q, err := deepsketch.ParseSQL(d, req.SQL)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	switch s.admit.Admit(req.Client, time.Now()) {
	case deepsketch.AdmitCapped:
		// The client exhausted its per-minute budget; the record is NOT
		// logged (an adaptive client must not steer the training
		// distribution by volume).
		w.Header().Set("Retry-After", "60")
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"admitted": false, "decision": "capped",
			"error": "per-client actuals admission cap exceeded",
		})
		return
	case deepsketch.AdmitSampled:
		// Thinned by per-client sampling — not an error, just not recorded.
		writeJSON(w, http.StatusOK, map[string]any{"admitted": false, "decision": "sampled"})
		return
	}
	sig := q.Signature()
	ver, est, qerr, matched := s.monitors[e.Dataset].ResolveActual(e.Name, sig, req.Actual)
	if l := s.wals[e.Dataset]; l != nil {
		rec := deepsketch.WALRecord{
			Kind: deepsketch.WALActual, Name: e.Name, Version: ver,
			Signature: sig, SQL: q.SQL(d),
			Estimate: est, Actual: req.Actual, Client: req.Client,
		}
		if err := l.Append(rec); err != nil {
			log.Printf("deepsketchd: wal append: %v", err)
		}
	}
	resp := map[string]any{"admitted": true, "matched": matched}
	if matched {
		resp["version"] = ver
		resp["q_error"] = qerr
	}
	writeJSON(w, http.StatusOK, resp)
}

// replayWAL rebuilds each dataset's drift-monitor state from its
// observation WAL: parked observations are re-parked, actuals re-resolve
// against them (or land directly when the record captured both halves).
// Replay never evaluates drift triggers — thresholds re-arm on live
// traffic — and never fails startup: corrupt tails are skipped by the WAL
// layer, unparseable SQL (e.g. from a schema change) is counted and
// dropped.
func (s *server) replayWAL() {
	for dataset, l := range s.wals {
		mon := s.monitors[dataset]
		d := s.datasets[dataset]
		var pending, resolved, skipped int
		err := l.Replay(func(r deepsketch.WALRecord) {
			switch r.Kind {
			case deepsketch.WALObservation:
				q, err := deepsketch.ParseSQL(d, r.SQL)
				if err != nil {
					skipped++
					return
				}
				mon.RestorePending(r.Name, r.Version, q, r.Estimate)
				pending++
			case deepsketch.WALActual:
				if mon.RestoreActual(r.Name, r.Signature, r.Actual) {
					resolved++
					return
				}
				// Version > 0 marks a record that captured both halves of
				// the pair (Version 0 is the unmatched-actual marker); an
				// Estimate of exactly 0 is a valid served estimate.
				if r.Version > 0 {
					mon.RecordResolved(r.Name, r.Version, r.Estimate, r.Actual)
					resolved++
					return
				}
				skipped++ // unmatched actual with no estimate to grade
			}
		})
		if err != nil {
			log.Printf("deepsketchd: wal replay for %s: %v", dataset, err)
			continue
		}
		if st := l.Stats(); st.Replayed > 0 || st.Truncated > 0 {
			log.Printf("deepsketchd: wal replay for %s: %d records (%d re-parked, %d resolved, %d skipped, %d torn segments)",
				dataset, st.Replayed, pending, resolved, skipped, st.Truncated)
		}
	}
}

// walWorkload converts the WAL's recent actuals for a sketch into a
// labeled fine-tune workload (newest-first distinct signatures, capped at
// -wal-delta). Records that no longer parse against the schema are
// dropped.
func (s *server) walWorkload(dataset, sketchName string) []deepsketch.LabeledQuery {
	l := s.wals[dataset]
	if l == nil {
		return nil
	}
	d := s.datasets[dataset]
	recs := l.RecentActuals(sketchName, s.walDelta)
	out := make([]deepsketch.LabeledQuery, 0, len(recs))
	for _, r := range recs {
		q, err := deepsketch.ParseSQL(d, r.SQL)
		if err != nil {
			continue
		}
		out = append(out, deepsketch.LabeledQuery{Query: q, Card: int64(r.Actual)})
	}
	return out
}

// applyRetention runs the retention policy after a promote: the WAL is
// checkpointed (everything logged so far is folded into the promoted
// version) and pruned to -retain-wal-bytes, and the store's version files
// are pruned to -retain-versions non-live versions. One policy spans both
// — the feedback that produced a version and the version artifact itself
// age out together.
func (s *server) applyRetention(dataset string, e *sketchEntry) {
	if l := s.wals[dataset]; l != nil {
		if err := l.Checkpoint(); err != nil {
			log.Printf("deepsketchd: wal checkpoint for %s: %v", dataset, err)
		} else if s.retainWALBytes > 0 {
			if n, err := l.Prune(s.retainWALBytes); err != nil {
				log.Printf("deepsketchd: wal prune for %s: %v", dataset, err)
			} else if n > 0 {
				log.Printf("deepsketchd: wal for %s pruned %d checkpointed segments (budget %d bytes)", dataset, n, s.retainWALBytes)
			}
		}
	}
	if s.retainVersions > 0 {
		s.pruneVersionFiles(e)
	}
}
