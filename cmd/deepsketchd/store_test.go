package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"
)

func TestStorePersistAndRestore(t *testing.T) {
	dir := t.TempDir()

	// First server: build a sketch; it should land in the store.
	srv1 := newServer(600, 300, 2)
	srv1.store = dir
	h1 := srv1.routes()
	rec := post(t, h1, "/api/sketches", createReq{
		Name: "persisted one", Dataset: "imdb",
		SampleSize: 24, TrainQueries: 80, Epochs: 1, HiddenUnits: 8, Seed: 2,
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("create status %d", rec.Code)
	}
	var entry sketchEntry
	if err := json.Unmarshal(rec.Body.Bytes(), &entry); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		rec := get(t, h1, fmt.Sprintf("/api/sketches/%d", entry.ID))
		var status struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &status); err != nil {
			t.Fatal(err)
		}
		if status.Status == "failed" {
			t.Fatalf("build failed: %s", status.Error)
		}
		if status.Status == "ready" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for build")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Second server: must restore the sketch from disk and serve estimates.
	srv2 := newServer(600, 300, 2)
	srv2.store = dir
	n, err := srv2.loadStore()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d sketches, want 1", n)
	}
	h2 := srv2.routes()
	rec = post(t, h2, "/api/estimate", estimateReq{
		SketchID: 1, SQL: "SELECT COUNT(*) FROM title t WHERE t.production_year>2000",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("estimate from restored sketch: %d %s", rec.Code, rec.Body)
	}
}

func TestLoadStoreMissingDir(t *testing.T) {
	srv := newServer(400, 200, 1)
	srv.store = t.TempDir() + "/does-not-exist"
	n, err := srv.loadStore()
	if err != nil || n != 0 {
		t.Errorf("missing dir should be a clean no-op, got n=%d err=%v", n, err)
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"hello-world_1": "hello-world_1",
		"a b/c":         "a_b_c",
		"":              "sketch",
		"ü":             "_",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
