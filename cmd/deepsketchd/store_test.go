package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"deepsketch"
)

func TestStorePersistAndRestore(t *testing.T) {
	dir := t.TempDir()

	// First server: build a sketch; it should land in the store.
	srv1 := newServer(600, 300, 2)
	srv1.store = dir
	h1 := srv1.routes()
	rec := post(t, h1, "/api/sketches", createReq{
		Name: "persisted one", Dataset: "imdb",
		SampleSize: 24, TrainQueries: 80, Epochs: 1, HiddenUnits: 8, Seed: 2,
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("create status %d", rec.Code)
	}
	var entry sketchEntry
	if err := json.Unmarshal(rec.Body.Bytes(), &entry); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		rec := get(t, h1, fmt.Sprintf("/api/sketches/%d", entry.ID))
		var status struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &status); err != nil {
			t.Fatal(err)
		}
		if status.Status == "failed" {
			t.Fatalf("build failed: %s", status.Error)
		}
		if status.Status == "ready" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for build")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Second server: must restore the sketch from disk and serve estimates.
	srv2 := newServer(600, 300, 2)
	srv2.store = dir
	n, err := srv2.loadStore()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d sketches, want 1", n)
	}
	h2 := srv2.routes()
	rec = post(t, h2, "/api/estimate", estimateReq{
		SketchID: 1, SQL: "SELECT COUNT(*) FROM title t WHERE t.production_year>2000",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("estimate from restored sketch: %d %s", rec.Code, rec.Body)
	}
}

// TestStoreRestartMidCanaryResumes is the restart half of the canary
// acceptance criterion: a daemon that goes down mid-canary comes back with
// the full version history, the same live pointer, and the canary re-armed
// at the same version and fraction — and the rollout can be finished on
// the restarted process.
func TestStoreRestartMidCanaryResumes(t *testing.T) {
	dir := t.TempDir()

	srv1 := newServer(600, 300, 2)
	srv1.store = dir
	h1 := srv1.routes()
	rec := post(t, h1, "/api/sketches", createReq{
		Name: "mid canary", Dataset: "imdb",
		SampleSize: 24, TrainQueries: 100, Epochs: 1, HiddenUnits: 8, Seed: 2,
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	awaitStatus(t, h1, 1, "ready")
	rec = post(t, h1, "/api/sketches/1/canary", map[string]any{
		"fraction": 0.25, "queries": 120, "epochs": 1, "workers": 2,
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("canary: %d %s", rec.Code, rec.Body)
	}
	awaitStatus(t, h1, 1, "canarying")

	// "Restart": a fresh server over the same store directory.
	srv2 := newServer(600, 300, 2)
	srv2.store = dir
	n, err := srv2.loadStore()
	if err != nil || n != 1 {
		t.Fatalf("restore: n=%d err=%v", n, err)
	}
	h2 := srv2.routes()
	status, version, canary := entryState(t, h2, 1)
	if status != "canarying" || version != 1 {
		t.Fatalf("restored entry: status=%s version=%d, want canarying v1", status, version)
	}
	if canary == nil || canary.Version != 2 || canary.BaseVersion != 1 || canary.Fraction != 0.25 {
		t.Fatalf("restored canary: %+v, want v2 at 25%% over v1", canary)
	}
	if vs, err := srv2.registries["imdb"].Versions("mid canary"); err != nil || len(vs) != 2 || !vs[0].Live || !vs[1].Canary {
		t.Fatalf("restored history: %+v, %v", vs, err)
	}
	// The drift controller adopted the resumed canary: were the automatic
	// loop running, its gate would finish the rollout.
	if cy := srv2.controllers["imdb"].Cycle("mid canary"); cy.State != "canarying" {
		t.Fatalf("controller did not adopt the resumed canary: %+v", cy)
	}

	// The resumed rollout finishes on the restarted daemon.
	if rec := post(t, h2, "/api/sketches/1/promote", nil); rec.Code != http.StatusOK {
		t.Fatalf("promote on restarted daemon: %d %s", rec.Code, rec.Body)
	}
	status, version, canary = entryState(t, h2, 1)
	if status != "ready" || version != 2 || canary != nil {
		t.Fatalf("post-promote: status=%s version=%d canary=%+v", status, version, canary)
	}
	rec = post(t, h2, "/api/estimate", estimateReq{
		SketchID: 1, SQL: "SELECT COUNT(*) FROM title t WHERE t.production_year>2000",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("estimate after resumed promote: %d %s", rec.Code, rec.Body)
	}

	// Third start: the promoted state persisted — live v2, no canary.
	srv3 := newServer(600, 300, 2)
	srv3.store = dir
	if n, err := srv3.loadStore(); err != nil || n != 1 {
		t.Fatalf("second restore: n=%d err=%v", n, err)
	}
	h3 := srv3.routes()
	status, version, canary = entryState(t, h3, 1)
	if status != "ready" || version != 2 || canary != nil {
		t.Fatalf("after promote restart: status=%s version=%d canary=%+v", status, version, canary)
	}
}

// TestLegacyFlatStoreMigration: a flat pre-versioned <name>.dsk migrates
// to the directory layout the moment it is loaded (not on its first
// change), so a later refresh + restart restores the refreshed version —
// the flat leftover can never shadow it.
func TestLegacyFlatStoreMigration(t *testing.T) {
	dir := t.TempDir()
	d := deepsketch.NewIMDb(deepsketch.IMDbConfig{Seed: 2, Titles: 600})
	sk, err := deepsketch.Build(d, deepsketch.Config{
		Name: "legacy", SampleSize: 24, TrainQueries: 80, Seed: 2, Workers: 2,
		Model: deepsketch.ModelConfig{HiddenUnits: 8, Epochs: 1, BatchSize: 32, Seed: 2},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := deepsketch.SaveFile(sk, filepath.Join(dir, "legacy.dsk")); err != nil {
		t.Fatal(err)
	}

	srv1 := newServer(600, 300, 2)
	srv1.store = dir
	if n, err := srv1.loadStore(); err != nil || n != 1 {
		t.Fatalf("flat restore: n=%d err=%v", n, err)
	}
	// Loading migrated the flat file to the directory layout.
	if _, err := os.Stat(filepath.Join(dir, "legacy", "v1.dsk")); err != nil {
		t.Fatalf("flat file was not migrated to the versioned layout: %v", err)
	}
	h1 := srv1.routes()
	if rec := post(t, h1, "/api/sketches/1/refresh", map[string]any{"queries": 80, "epochs": 1, "workers": 2}); rec.Code != http.StatusAccepted {
		t.Fatalf("refresh: %d %s", rec.Code, rec.Body)
	}
	awaitStatus(t, h1, 1, "ready")
	if _, ver, _ := entryState(t, h1, 1); ver != 2 {
		t.Fatalf("refresh did not land v2")
	}

	// Restart: the refreshed v2 must survive; the flat leftover is skipped.
	srv2 := newServer(600, 300, 2)
	srv2.store = dir
	if n, err := srv2.loadStore(); err != nil || n != 1 {
		t.Fatalf("second restore: n=%d err=%v", n, err)
	}
	h2 := srv2.routes()
	if _, ver, _ := entryState(t, h2, 1); ver != 2 {
		t.Fatalf("restored serving version %d, want the refreshed 2", ver)
	}
	if vs, err := srv2.registries["imdb"].Versions("legacy"); err != nil || len(vs) != 2 || !vs[1].Live {
		t.Fatalf("restored history: %+v, %v", vs, err)
	}
}

func TestLoadStoreMissingDir(t *testing.T) {
	srv := newServer(400, 200, 1)
	srv.store = t.TempDir() + "/does-not-exist"
	n, err := srv.loadStore()
	if err != nil || n != 0 {
		t.Errorf("missing dir should be a clean no-op, got n=%d err=%v", n, err)
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"hello-world_1": "hello-world_1",
		"a b/c":         "a_b_c",
		"":              "sketch",
		"ü":             "_",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPersistStateCrashConsistent is the regression test for the
// missing-fsync-before-rename bug in persistState: a daemon killed
// mid-persist used to be able to leave a torn state.json.tmp (and, on a
// journaling filesystem replaying the rename without the data blocks, a
// torn state.json). The store must ignore the crash artifact on restore,
// and a fresh persist must replace state.json atomically and leave no
// temp file behind.
func TestPersistStateCrashConsistent(t *testing.T) {
	dir := t.TempDir()

	// Hand-write the layout a crashed daemon leaves: a valid version file
	// and state.json, plus a torn state.json.tmp cut down mid-write.
	db := deepsketch.NewIMDb(deepsketch.IMDbConfig{Seed: 7, Titles: 400, Keywords: 20, Companies: 10, Persons: 60})
	sk, err := deepsketch.Build(db, deepsketch.Config{
		Name: "crashy", SampleSize: 16, TrainQueries: 60, MaxJoins: 1, MaxPreds: 1, Seed: 3,
		Model: deepsketch.ModelConfig{HiddenUnits: 8, Epochs: 1, BatchSize: 16, Seed: 3},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	skDir := filepath.Join(dir, "crashy")
	if err := os.MkdirAll(skDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := deepsketch.SaveFile(sk, filepath.Join(skDir, "v1.dsk")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(skDir, "state.json"), []byte(`{"name":"crashy","dataset":"imdb","live":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(skDir, "state.json.tmp")
	if err := os.WriteFile(tmp, []byte(`{"name":"crashy","data`), 0o644); err != nil {
		t.Fatal(err)
	}

	srv := newServer(400, 200, 1)
	srv.store = dir
	n, err := srv.loadStore()
	if err != nil || n != 1 {
		t.Fatalf("loadStore: n=%d err=%v, want 1 restored despite torn tmp", n, err)
	}
	var entry *sketchEntry
	for _, e := range srv.sketches {
		if e.Name == "crashy" {
			entry = e
		}
	}
	if entry == nil {
		t.Fatal("restored sketch not registered")
	}

	// A fresh persist must atomically replace state.json and consume the
	// temp path (fsx.AtomicWriteFile syncs then renames it).
	srv.persistState(entry)
	blob, err := os.ReadFile(filepath.Join(skDir, "state.json"))
	if err != nil {
		t.Fatal(err)
	}
	var st storeState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatalf("state.json torn after persist: %v\n%s", err, blob)
	}
	if st.Name != "crashy" || st.Live != 1 {
		t.Fatalf("persisted state %+v, want live v1 of crashy", st)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("state.json.tmp still present after persist (err=%v); atomic write must consume it", err)
	}
}
