package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// TestCloseJoinsInFlightRefresh is the regression test for the shutdown
// race this PR closes: the daemon used to fire build/refresh goroutines
// with no join, so a shutdown could return — and tear down the store
// directory — while a refresh was still writing sketch files. Close must
// block until the in-flight refresh has fully landed or failed, and the
// store it leaves behind must restore cleanly on a fresh server.
func TestCloseJoinsInFlightRefresh(t *testing.T) {
	dir := t.TempDir()
	srv := newServer(600, 300, 2)
	srv.store = dir
	h := srv.routes()
	id := buildReadySketch(t, h, "joined")

	rec := post(t, h, fmt.Sprintf("/api/sketches/%d/refresh", id), refreshReq{Queries: 120, Epochs: 1})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("refresh status %d: %s", rec.Code, rec.Body)
	}

	// Close while the refresh goroutine is in flight. It must not return
	// until the goroutine is done — and must not hang either.
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(90 * time.Second):
		t.Fatal("Close did not return while a refresh was in flight")
	}

	// The join guarantees the refresh reached a terminal state before
	// Close returned: "refreshing" after Close would mean the goroutine
	// outlived the shutdown.
	rec = get(t, h, fmt.Sprintf("/api/sketches/%d", id))
	var st struct {
		Status  string `json:"status"`
		Error   string `json:"error"`
		Version int    `json:"version"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Status == "refreshing" {
		t.Fatalf("entry still refreshing after Close (error %q)", st.Error)
	}
	if st.Status != "ready" {
		t.Fatalf("entry is %q after Close: %s", st.Status, st.Error)
	}
	if st.Version != 2 {
		t.Fatalf("serving version %d after joined refresh, want 2", st.Version)
	}

	// The store the shutdown left behind is complete and consistent: a
	// fresh daemon restores the sketch and its refreshed version.
	srv2 := newServer(600, 300, 2)
	srv2.store = dir
	n, err := srv2.loadStore()
	if err != nil {
		t.Fatalf("restoring store written under shutdown: %v", err)
	}
	if n != 1 {
		t.Fatalf("restored %d sketches, want 1", n)
	}
	rec = get(t, srv2.routes(), fmt.Sprintf("/api/sketches/%d", id))
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "ready" || st.Version != 2 {
		t.Fatalf("restored entry status %q version %d, want ready v2", st.Status, st.Version)
	}
}
