package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"deepsketch"
)

// Tests for the pinned-benchmark rail's daemon threading: boot-time
// generate/persist/reload of the frozen per-dataset workloads, the drift
// endpoint's rail fields, and the full daemon-level rejection of a
// refresh candidate trained on poisoned logged actuals.

func pinnedServer(pinnedDir string, maxRegress float64, driftCfg deepsketch.DriftConfig, ctrlCfg deepsketch.DriftControllerConfig, walDir string) *server {
	return newServerOpts(serverOptions{
		titles: 600, orders: 300, seed: 2,
		driftCfg: driftCfg, ctrlCfg: ctrlCfg,
		walDir: walDir, driftTruth: false,
		pinnedDir: pinnedDir, pinnedMaxRegress: maxRegress,
	})
}

func TestPinnedBenchmarkBootPersistence(t *testing.T) {
	dir := t.TempDir()

	// First boot generates, labels and atomically persists one benchmark
	// per dataset.
	srv := pinnedServer(dir, 1.25, deepsketch.DriftConfig{}, deepsketch.DriftControllerConfig{}, "")
	blobs := map[string][]byte{}
	for _, dataset := range []string{"imdb", "tpch"} {
		pb := srv.pinned[dataset]
		if pb == nil || pb.Len() == 0 {
			t.Fatalf("no pinned benchmark for %s after boot", dataset)
		}
		path := filepath.Join(dir, dataset+".workload")
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("pinned benchmark for %s was not persisted: %v", dataset, err)
		}
		blobs[dataset] = blob
		if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
			t.Errorf("temp file left behind for %s", dataset)
		}
	}

	// Second boot loads the files instead of regenerating: same contents on
	// disk, same benchmark in memory — the judgment set is frozen.
	srv2 := pinnedServer(dir, 1.25, deepsketch.DriftConfig{}, deepsketch.DriftControllerConfig{}, "")
	for _, dataset := range []string{"imdb", "tpch"} {
		if got, want := srv2.pinned[dataset].Len(), srv.pinned[dataset].Len(); got != want {
			t.Errorf("%s benchmark reloaded with %d queries, want %d", dataset, got, want)
		}
		blob, err := os.ReadFile(filepath.Join(dir, dataset+".workload"))
		if err != nil {
			t.Fatal(err)
		}
		if string(blob) != string(blobs[dataset]) {
			t.Errorf("%s benchmark file changed across a reboot — it must stay frozen", dataset)
		}
	}

	// The drift endpoint reports the rail configuration.
	h := srv.routes()
	id := buildReadySketch(t, h, "pinned boot")
	rec := get(t, h, fmt.Sprintf("/api/sketches/%d/drift", id))
	if rec.Code != http.StatusOK {
		t.Fatalf("drift endpoint: %d %s", rec.Code, rec.Body)
	}
	var resp struct {
		PinnedSize       int     `json:"pinned_size"`
		PinnedMaxRegress float64 `json:"pinned_max_regress"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.PinnedSize != srv.pinned["imdb"].Len() || resp.PinnedMaxRegress != 1.25 {
		t.Errorf("drift endpoint rail fields = %+v, want size %d tolerance 1.25", resp, srv.pinned["imdb"].Len())
	}
}

// TestPinnedRailRejectsPoisonedRefresh is the daemon-level counterpart of
// the attack package's headline E2E: clients POST actuals inflated 1000×
// over truth, the drift trigger fires, the refresh trains on the poisoned
// WAL-derived workload — and the rail rejects the candidate before any
// canary, leaving v1 serving with the rejection surfaced on the entry and
// the drift endpoint.
func TestPinnedRailRejectsPoisonedRefresh(t *testing.T) {
	dir := t.TempDir()
	pinnedDir, walDir := filepath.Join(dir, "pinned"), filepath.Join(dir, "wal")
	driftCfg := deepsketch.DriftConfig{
		SampleEvery: 1, Window: 64, MinSamples: 6,
		MaxMedianQ: 1.5, Cooldown: time.Hour, QueueSize: 4096,
	}
	ctrlCfg := deepsketch.DriftControllerConfig{
		CanaryFraction: 0.5, PromoteAfter: 3, MaxQRatio: 100,
		Epochs: 40, Workers: 2,
	}
	srv := pinnedServer(pinnedDir, 1.25, driftCfg, ctrlCfg, walDir)
	h := srv.routes()
	id := buildReadySketch(t, h, "poison target")
	ctx := context.Background()
	d := srv.datasets["imdb"]

	sqls := make([]string, 0, 40)
	for i := 0; i < 40; i++ {
		sqls = append(sqls, fmt.Sprintf("SELECT COUNT(*) FROM title t WHERE t.production_year>%d", 1900+3*i))
	}
	for _, sql := range sqls {
		if rec := post(t, h, "/api/estimate", estimateReq{SketchID: id, SQL: sql}); rec.Code != http.StatusOK {
			t.Fatalf("estimate: %d %s", rec.Code, rec.Body)
		}
	}
	srv.monitors["imdb"].Drain(ctx)
	for _, sql := range sqls {
		q, err := deepsketch.ParseSQL(d, sql)
		if err != nil {
			t.Fatal(err)
		}
		tc, err := deepsketch.TrueCardinality(d, q)
		if err != nil {
			t.Fatal(err)
		}
		// The poison: every reported actual is 1000× the truth, dragging the
		// windows over the trigger AND corrupting the WAL-derived labels.
		if rec := postActual(t, h, id, sql, float64(tc)*1000, "mallory"); rec.Code != http.StatusOK {
			t.Fatalf("actual: %d %s", rec.Code, rec.Body)
		}
	}

	// The trigger fired; the asynchronous refresh must end in a pinned
	// rejection, never a canary.
	deadline := time.Now().Add(60 * time.Second)
	for {
		cy := srv.controllers["imdb"].Cycle("poison target")
		if cy.Pinned != nil && cy.State == "idle" {
			if cy.Pinned.Pass {
				t.Fatalf("rail passed a candidate trained on 1000×-poisoned labels: %+v", cy.Pinned)
			}
			break
		}
		if cy.State == "idle" && cy.LastError != "" {
			t.Fatalf("drift cycle failed instead of judging: %s", cy.LastError)
		}
		if _, ok := srv.registries["imdb"].Canary("poison target"); ok {
			t.Fatal("a canary started for the poisoned candidate — the rail must judge first")
		}
		if time.Now().After(deadline) {
			t.Fatalf("rail never judged; cycle=%+v monitor=%+v", cy, srv.monitors["imdb"].Status("poison target"))
		}
		time.Sleep(20 * time.Millisecond)
	}

	// v1 serves untouched and the rejection is surfaced.
	status, version, canary := entryState(t, h, id)
	if version != 1 || canary != nil || status != "ready" {
		t.Fatalf("entry after rejection: status=%s version=%d canary=%+v, want ready v1 no canary", status, version, canary)
	}
	rec := get(t, h, fmt.Sprintf("/api/sketches/%d", id))
	var entry struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &entry); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(entry.Error, "pinned") {
		t.Errorf("entry error = %q, want the pinned rejection surfaced", entry.Error)
	}
	rec = get(t, h, fmt.Sprintf("/api/sketches/%d/drift", id))
	var driftResp struct {
		Cycle struct {
			Pinned *deepsketch.PinnedResult `json:"pinned"`
		} `json:"cycle"`
		PinnedSize int `json:"pinned_size"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &driftResp); err != nil {
		t.Fatal(err)
	}
	if driftResp.Cycle.Pinned == nil || driftResp.Cycle.Pinned.Pass || driftResp.PinnedSize == 0 {
		t.Errorf("drift endpoint after rejection = %s", rec.Body.Bytes())
	}
}
