package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"deepsketch"
)

// Tests for the logged-actuals feedback loop: the POST .../actuals ingest
// endpoint, WAL-backed drift-state recovery across restarts, the full
// no-exact-executor drift cycle, and the joint retention policy.

// noTruthServer builds a daemon whose drift monitors have NO in-process
// ground truth: every sampled estimate parks pending until a client POSTs
// the observed actual.
func noTruthServer(driftCfg deepsketch.DriftConfig, ctrlCfg deepsketch.DriftControllerConfig, walDir string) *server {
	return newServerOpts(serverOptions{
		titles: 600, orders: 300, seed: 2,
		driftCfg: driftCfg, ctrlCfg: ctrlCfg,
		walDir: walDir, driftTruth: false,
	})
}

// postActual reports one observed actual for sketch id.
func postActual(t *testing.T, h http.Handler, id int, sql string, actual float64, client string) *httptest.ResponseRecorder {
	t.Helper()
	return post(t, h, fmt.Sprintf("/api/sketches/%d/actuals", id), actualsReq{SQL: sql, Actual: actual, Client: client})
}

func TestActualsEndpointSemantics(t *testing.T) {
	srv := noTruthServer(deepsketch.DriftConfig{SampleEvery: 1, Window: 64, QueueSize: 4096}, deepsketch.DriftControllerConfig{}, "")
	srv.admit = deepsketch.NewActualsAdmitter(deepsketch.AdmitConfig{PerClientPerMin: 2})
	h := srv.routes()
	id := buildReadySketch(t, h, "actuals api")

	// Unknown sketch.
	if rec := postActual(t, h, 99, "SELECT COUNT(*) FROM title", 1, ""); rec.Code != http.StatusNotFound {
		t.Errorf("unknown sketch: %d, want 404", rec.Code)
	}
	// Malformed body.
	req := httptest.NewRequest("POST", fmt.Sprintf("/api/sketches/%d/actuals", id), strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad json: %d, want 400", rec.Code)
	}
	// Unparseable SQL and negative actuals.
	if rec := postActual(t, h, id, "SELECT nope", 1, ""); rec.Code != http.StatusBadRequest {
		t.Errorf("bad sql: %d, want 400", rec.Code)
	}
	if rec := postActual(t, h, id, "SELECT COUNT(*) FROM title", -5, ""); rec.Code != http.StatusBadRequest {
		t.Errorf("negative actual: %d, want 400", rec.Code)
	}
	// Oversized payloads: the body is capped at maxActualsBody and the
	// self-reported client ID at maxClientIDBytes — neither may reach the
	// admission table or the WAL.
	req = httptest.NewRequest("POST", fmt.Sprintf("/api/sketches/%d/actuals", id),
		strings.NewReader(`{"sql":"`+strings.Repeat("x", maxActualsBody+1)+`"}`))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: %d, want 413", rec.Code)
	}
	if rec := postActual(t, h, id, "SELECT COUNT(*) FROM title", 1, strings.Repeat("c", maxClientIDBytes+1)); rec.Code != http.StatusBadRequest {
		t.Errorf("oversized client ID: %d, want 400", rec.Code)
	}

	// Serve one estimate so its observation parks pending, then resolve it.
	sql := "SELECT COUNT(*) FROM title t WHERE t.production_year>2000"
	if rec := post(t, h, "/api/estimate", estimateReq{SketchID: id, SQL: sql}); rec.Code != http.StatusOK {
		t.Fatalf("estimate: %d %s", rec.Code, rec.Body)
	}
	srv.monitors["imdb"].Drain(context.Background())
	if st := srv.monitors["imdb"].Status("actuals api"); st.Pending != 1 {
		t.Fatalf("pending = %d before the actual, want 1", st.Pending)
	}
	var resp struct {
		Admitted bool    `json:"admitted"`
		Matched  bool    `json:"matched"`
		Decision string  `json:"decision"`
		Version  int     `json:"version"`
		QError   float64 `json:"q_error"`
	}
	rec = postActual(t, h, id, sql, 100, "c1")
	if rec.Code != http.StatusOK {
		t.Fatalf("actual: %d %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Admitted || !resp.Matched || resp.Version != 1 || resp.QError < 1 {
		t.Fatalf("matched resolve = %+v", resp)
	}
	st := srv.monitors["imdb"].Status("actuals api")
	if st.Pending != 0 || len(st.Versions) != 1 || st.Versions[0].Samples != 1 {
		t.Fatalf("post-resolve monitor state: %+v", st)
	}

	// An actual nobody asked about is admitted but unmatched.
	rec = postActual(t, h, id, "SELECT COUNT(*) FROM title t WHERE t.production_year>1950", 7, "c1")
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Admitted || resp.Matched {
		t.Fatalf("unmatched actual = %+v", resp)
	}

	// Third admitted record this minute for c1 exceeds PerClientPerMin 2.
	rec = postActual(t, h, id, sql, 100, "c1")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("capped: %d %s, want 429", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") != "60" {
		t.Errorf("capped response missing Retry-After: %v", rec.Header())
	}
	// A capped record must not reach the monitor as training signal.
	if st := srv.monitors["imdb"].Status("actuals api"); st.Unmatched != 1 {
		t.Errorf("capped actual leaked into the monitor: %+v", st)
	}
	// Another client has its own budget.
	if rec := postActual(t, h, id, sql, 100, "c2"); rec.Code != http.StatusOK {
		t.Errorf("second client capped by the first's budget: %d %s", rec.Code, rec.Body)
	}

	// Per-client sampling: with SampleEvery 2 the odd attempts are thinned.
	srv.admit = deepsketch.NewActualsAdmitter(deepsketch.AdmitConfig{SampleEvery: 2})
	rec = postActual(t, h, id, sql, 100, "c3")
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusOK || resp.Admitted || resp.Decision != "sampled" {
		t.Fatalf("sampled attempt = %d %+v, want 200 {admitted:false, decision:sampled}", rec.Code, resp)
	}
	rec = postActual(t, h, id, sql, 100, "c3")
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Admitted {
		t.Fatalf("second attempt after sampling = %+v, want admitted", resp)
	}
}

// TestDriftStateSurvivesRestart is the regression test for the silent-reset
// bug: before the WAL, a restart zeroed every q-error window and dropped
// all pending observations. Now both halves replay from the observation
// log — the window median survives a kill -9 mid-episode and the estimates
// keep flowing.
func TestDriftStateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	store, walDir := filepath.Join(dir, "store"), filepath.Join(dir, "wal")
	driftCfg := deepsketch.DriftConfig{SampleEvery: 1, Window: 64, MinSamples: 1000, QueueSize: 4096}

	srv1 := noTruthServer(driftCfg, deepsketch.DriftControllerConfig{}, walDir)
	srv1.store = store
	h1 := srv1.routes()
	id := buildReadySketch(t, h1, "episode")

	sqls := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		sqls = append(sqls, fmt.Sprintf("SELECT COUNT(*) FROM title t WHERE t.production_year>%d", 1960+5*i))
	}
	for _, sql := range sqls {
		if rec := post(t, h1, "/api/estimate", estimateReq{SketchID: id, SQL: sql}); rec.Code != http.StatusOK {
			t.Fatalf("estimate: %d %s", rec.Code, rec.Body)
		}
	}
	srv1.monitors["imdb"].Drain(context.Background())
	// Resolve five of the eight; three stay pending — mid-episode.
	d := srv1.datasets["imdb"]
	for _, sql := range sqls[:5] {
		q, err := deepsketch.ParseSQL(d, sql)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := deepsketch.TrueCardinality(d, q)
		if err != nil {
			t.Fatal(err)
		}
		if rec := postActual(t, h1, id, sql, float64(truth), "app"); rec.Code != http.StatusOK {
			t.Fatalf("actual: %d %s", rec.Code, rec.Body)
		}
	}
	before := srv1.monitors["imdb"].Status("episode")
	if before.Pending != 3 || len(before.Versions) != 1 || before.Versions[0].Samples != 5 {
		t.Fatalf("pre-restart state: %+v", before)
	}

	// "kill -9": no Close, no checkpoint — a fresh process over the same
	// store and WAL directories must reconstruct the episode.
	srv2 := noTruthServer(driftCfg, deepsketch.DriftControllerConfig{}, walDir)
	srv2.store = store
	if n, err := srv2.loadStore(); err != nil || n != 1 {
		t.Fatalf("restore: n=%d err=%v", n, err)
	}
	srv2.replayWAL()
	after := srv2.monitors["imdb"].Status("episode")
	if after.Pending != 3 {
		t.Errorf("pending after restart = %d, want 3", after.Pending)
	}
	if len(after.Versions) != 1 || after.Versions[0].Samples != 5 {
		t.Fatalf("window after restart = %+v, want 5 samples", after.Versions)
	}
	if after.Versions[0].Window.Median != before.Versions[0].Window.Median {
		t.Errorf("window median %g after restart, want %g — the episode reset",
			after.Versions[0].Window.Median, before.Versions[0].Window.Median)
	}
	// The three still-pending observations resolve on the restarted daemon.
	h2 := srv2.routes()
	var resp struct {
		Matched bool `json:"matched"`
	}
	for _, sql := range sqls[5:] {
		rec := postActual(t, h2, id, sql, 50, "app")
		if rec.Code != http.StatusOK {
			t.Fatalf("post-restart actual: %d %s", rec.Code, rec.Body)
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.Matched {
			t.Errorf("observation for %q lost across restart", sql)
		}
	}
	// Zero failed estimates across the restart.
	for _, sql := range sqls {
		if rec := post(t, h2, "/api/estimate", estimateReq{SketchID: id, SQL: sql}); rec.Code != http.StatusOK {
			t.Fatalf("estimate after restart: %d %s", rec.Code, rec.Body)
		}
	}
}

// TestReplayResolvedZeroEstimate: an in-process-resolved pair whose served
// estimate was exactly 0 is still a graded observation — replay must land
// its q-error in the rebuilt window (Version 0, not Estimate 0, is the
// unmatched-actual marker).
func TestReplayResolvedZeroEstimate(t *testing.T) {
	srv := noTruthServer(deepsketch.DriftConfig{SampleEvery: 1, Window: 64, QueueSize: 4096}, deepsketch.DriftControllerConfig{}, t.TempDir())
	err := srv.wals["imdb"].Append(deepsketch.WALRecord{
		Kind: deepsketch.WALActual, Name: "zero-est", Version: 1,
		Signature: "sig-0", SQL: "SELECT COUNT(*) FROM title", Estimate: 0, Actual: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.replayWAL()
	st := srv.monitors["imdb"].Status("zero-est")
	if len(st.Versions) != 1 || st.Versions[0].Samples != 1 {
		t.Fatalf("zero-estimate resolved record dropped at replay: %+v", st.Versions)
	}
}

// TestNoTruthAutoLoopEndToEnd is the acceptance scenario: a daemon with
// -drift and NO exact executor anywhere near the serving path. Actuals
// arrive only via POST, drift is detected from them, the warm refresh
// fine-tunes on a WAL-derived delta workload (observed traffic, not
// synthetic generation), the canary gate promotes — and a kill -9 restart
// afterwards comes back with windows intact and zero failed estimates.
func TestNoTruthAutoLoopEndToEnd(t *testing.T) {
	dir := t.TempDir()
	store, walDir := filepath.Join(dir, "store"), filepath.Join(dir, "wal")
	driftCfg := deepsketch.DriftConfig{
		SampleEvery: 1, Window: 64, MinSamples: 6,
		MaxMedianQ: 1.01, Cooldown: time.Hour, QueueSize: 4096,
	}
	ctrlCfg := deepsketch.DriftControllerConfig{
		CanaryFraction: 0.5, PromoteAfter: 3, MaxQRatio: 100,
		Epochs: 1, Workers: 2,
	}
	srv := noTruthServer(driftCfg, ctrlCfg, walDir)
	srv.store = store
	h := srv.routes()
	id := buildReadySketch(t, h, "no truth")
	ctx := context.Background()
	d := srv.datasets["imdb"]

	// Enough distinct queries that the WAL accumulates >= walDeltaMin
	// distinct logged actuals — the refresh must come from observed traffic.
	sqls := make([]string, 0, 40)
	for i := 0; i < 40; i++ {
		sqls = append(sqls, fmt.Sprintf("SELECT COUNT(*) FROM title t WHERE t.production_year>%d", 1900+3*i))
	}
	truths := make(map[string]float64, len(sqls))
	for _, sql := range sqls {
		q, err := deepsketch.ParseSQL(d, sql)
		if err != nil {
			t.Fatal(err)
		}
		tc, err := deepsketch.TrueCardinality(d, q)
		if err != nil {
			t.Fatal(err)
		}
		truths[sql] = float64(tc)
	}
	feed := func(h http.Handler) {
		t.Helper()
		for _, sql := range sqls {
			if rec := post(t, h, "/api/estimate", estimateReq{SketchID: id, SQL: sql}); rec.Code != http.StatusOK {
				t.Fatalf("estimate: %d %s", rec.Code, rec.Body)
			}
		}
		srv.monitors["imdb"].Drain(ctx)
		for _, sql := range sqls {
			if rec := postActual(t, h, id, sql, truths[sql], "app"); rec.Code != http.StatusOK {
				t.Fatalf("actual: %d %s", rec.Code, rec.Body)
			}
		}
	}

	// Phase 1: traffic + POSTed actuals until the trigger fires and the
	// controller's cycle lands a canary.
	feed(h)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, ok := srv.registries["imdb"].Canary("no truth"); ok {
			break
		}
		if cy := srv.controllers["imdb"].Cycle("no truth"); cy.State == "idle" && cy.LastError != "" {
			t.Fatalf("drift cycle failed: %s", cy.LastError)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no canary; cycle=%+v monitor=%+v",
				srv.controllers["imdb"].Cycle("no truth"), srv.monitors["imdb"].Status("no truth"))
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The refresh drew its delta workload from the WAL, not the generator.
	if got := srv.walWorkloads.Load(); got < 1 {
		t.Fatalf("refresh did not use the WAL-derived workload (walWorkloads=%d)", got)
	}

	// Phase 2: keep feeding; the gate judges on POST-resolved canary
	// samples and promotes.
	deadline = time.Now().Add(60 * time.Second)
	for {
		feed(h)
		srv.controllers["imdb"].Tick()
		status, version, canary := entryState(t, h, id)
		if status == "ready" && version == 2 && canary == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never promoted; status=%s version=%d cycle=%+v",
				status, version, srv.controllers["imdb"].Cycle("no truth"))
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Not one exact execution happened inside the daemon.
	if st := srv.monitors["imdb"].Status("no truth"); st.TruthErrors != 0 {
		t.Errorf("truth errors = %d on a truthless monitor", st.TruthErrors)
	}
	// The promote checkpointed the WAL (retention's replay bound).
	if st := srv.wals["imdb"].Stats(); st.CheckpointSeq == 0 {
		t.Errorf("no WAL checkpoint after promote: %+v", st)
	}
	// The drift endpoint surfaces the feedback loop's observability.
	rec := get(t, h, fmt.Sprintf("/api/sketches/%d/drift", id))
	var driftResp struct {
		WAL        *deepsketch.WALStats `json:"wal"`
		WALActuals int                  `json:"wal_actuals"`
		WALRefresh uint64               `json:"wal_workloads"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &driftResp); err != nil {
		t.Fatal(err)
	}
	if driftResp.WAL == nil || driftResp.WALActuals < walDeltaMin || driftResp.WALRefresh < 1 {
		t.Errorf("drift endpoint wal fields: %+v", driftResp)
	}

	// kill -9 + restart: the promoted version serves, the windows replay,
	// and every estimate answers.
	srv2 := noTruthServer(driftCfg, ctrlCfg, walDir)
	srv2.store = store
	if n, err := srv2.loadStore(); err != nil || n != 1 {
		t.Fatalf("restore: n=%d err=%v", n, err)
	}
	srv2.replayWAL()
	h2 := srv2.routes()
	status, version, canary := entryState(t, h2, 1)
	if status != "ready" || version != 2 || canary != nil {
		t.Fatalf("restarted entry: status=%s version=%d canary=%+v", status, version, canary)
	}
	st := srv2.monitors["imdb"].Status("no truth")
	if len(st.Versions) == 0 {
		t.Fatalf("windows empty after restart: %+v", st)
	}
	var samples uint64
	for _, v := range st.Versions {
		samples += v.Samples
	}
	if samples == 0 {
		t.Fatalf("no replayed q-error samples after restart: %+v", st.Versions)
	}
	for _, sql := range sqls {
		if rec := post(t, h2, "/api/estimate", estimateReq{SketchID: 1, SQL: sql}); rec.Code != http.StatusOK {
			t.Fatalf("estimate after restart failed: %d %s", rec.Code, rec.Body)
		}
	}
}

// TestRetentionPrunesStoreAndWAL: one policy spans both artifacts — old
// version files and checkpointed WAL segments age out together, and a
// restart over the pruned store restores the history with gaps the
// lifecycle refuses to roll back onto.
func TestRetentionPrunesStoreAndWAL(t *testing.T) {
	dir := t.TempDir()
	store, walDir := filepath.Join(dir, "store"), filepath.Join(dir, "wal")
	srv := newServerOpts(serverOptions{
		titles: 600, orders: 300, seed: 2,
		driftCfg: deepsketch.DriftConfig{SampleEvery: 1, Window: 64, QueueSize: 4096},
		walDir:   walDir, driftTruth: false,
		walDelta: 512, retainVersions: 1, retainWALBytes: 1,
	})
	srv.store = store
	h := srv.routes()
	id := buildReadySketch(t, h, "retained")

	// Grow the history to v4 (live), with traffic journaling WAL records
	// along the way.
	for ver := 2; ver <= 4; ver++ {
		sql := fmt.Sprintf("SELECT COUNT(*) FROM title t WHERE t.production_year>%d", 1940+ver*10)
		if rec := post(t, h, "/api/estimate", estimateReq{SketchID: id, SQL: sql}); rec.Code != http.StatusOK {
			t.Fatalf("estimate: %d %s", rec.Code, rec.Body)
		}
		srv.monitors["imdb"].Drain(context.Background())
		if rec := post(t, h, fmt.Sprintf("/api/sketches/%d/refresh", id), map[string]any{"queries": 80, "epochs": 1, "workers": 2}); rec.Code != http.StatusAccepted {
			t.Fatalf("refresh: %d %s", rec.Code, rec.Body)
		}
		awaitStatus(t, h, id, "ready")
	}
	if _, ver, _ := entryState(t, h, id); ver != 4 {
		t.Fatalf("history did not reach v4")
	}

	e := srv.entryByName("imdb", "retained")
	e.adminMu.Lock()
	srv.applyRetention("imdb", e)
	e.adminMu.Unlock()

	// retain-versions 1: live v4 + newest non-live v3 survive on disk.
	sketchDir := filepath.Join(store, "retained")
	for ver := 1; ver <= 4; ver++ {
		_, err := os.Stat(filepath.Join(sketchDir, fmt.Sprintf("v%d.dsk", ver)))
		if wantGone := ver <= 2; (err != nil) != wantGone {
			t.Errorf("v%d.dsk: err=%v, want gone=%v", ver, err, wantGone)
		}
	}
	// retain-wal-bytes 1: every checkpointed segment is pruned; only the
	// fresh active segment remains.
	if st := srv.wals["imdb"].Stats(); st.CheckpointSeq == 0 || st.Segments != 1 {
		t.Errorf("wal after retention: %+v, want checkpointed and pruned to the active segment", st)
	}

	// Restart over the pruned store: v3/v4 restore, v1/v2 are pruned gaps.
	srv2 := newServer(600, 300, 2)
	srv2.store = store
	if n, err := srv2.loadStore(); err != nil || n != 1 {
		t.Fatalf("restore over pruned store: n=%d err=%v", n, err)
	}
	h2 := srv2.routes()
	if _, ver, _ := entryState(t, h2, 1); ver != 4 {
		t.Fatalf("restored live version %d, want 4", ver)
	}
	vs, err := srv2.registries["imdb"].Versions("retained")
	if err != nil || len(vs) != 4 {
		t.Fatalf("restored history: %+v, %v", vs, err)
	}
	if !vs[0].Pruned || !vs[1].Pruned || vs[2].Pruned || vs[3].Pruned {
		t.Fatalf("pruned flags: %+v", vs)
	}
	// Rollback lands on the surviving v3, then refuses the pruned v2.
	if rec := post(t, h2, "/api/sketches/1/rollback", nil); rec.Code != http.StatusOK {
		t.Fatalf("rollback to surviving v3: %d %s", rec.Code, rec.Body)
	}
	rec := post(t, h2, "/api/sketches/1/rollback", nil)
	if rec.Code != http.StatusConflict || !strings.Contains(rec.Body.String(), "pruned") {
		t.Fatalf("rollback onto pruned v2: %d %s, want 409 mentioning pruned", rec.Code, rec.Body)
	}
	if rec := post(t, h2, "/api/estimate", estimateReq{SketchID: 1, SQL: "SELECT COUNT(*) FROM title t WHERE t.production_year>2000"}); rec.Code != http.StatusOK {
		t.Fatalf("estimate after pruned restore: %d %s", rec.Code, rec.Body)
	}
}
