package main

import (
	"fmt"
	"os"
	"path/filepath"

	"deepsketch"
)

// pinnedCount is the size of a generated pinned benchmark: large enough
// for stable median/p95 judgments, small enough that evaluating two models
// on it adds negligible time to a refresh cycle.
const pinnedCount = 128

// loadOrCreatePinned loads the pinned benchmark at path, or — on first
// boot — generates a labeled workload from the dataset, persists it
// atomically, and returns it. The file, not the generator, is the source
// of truth from then on: the benchmark must stay frozen across restarts
// (and across dataset drift), or an adversary who can influence a restart
// could refresh the judgment set along with the model.
func loadOrCreatePinned(d *deepsketch.DB, path string, seed int64) (*deepsketch.PinnedBenchmark, error) {
	if _, err := os.Stat(path); err == nil {
		return deepsketch.LoadPinnedBenchmarkFile(d, path)
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("pinned benchmark %s: %w", path, err)
	}
	qs, err := deepsketch.GenerateWorkload(d, deepsketch.GenConfig{
		Seed: seed + 7001, Count: pinnedCount, MaxJoins: 2, MaxPreds: 2, Dedup: true,
	})
	if err != nil {
		return nil, err
	}
	labeled, err := deepsketch.LabelWorkload(d, qs, 2)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	if err := deepsketch.WritePinnedBenchmarkFile(path, labeled); err != nil {
		return nil, err
	}
	return deepsketch.NewPinnedBenchmark(labeled), nil
}
