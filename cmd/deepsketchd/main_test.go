package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"deepsketch"
)

func testServer(t *testing.T) *server {
	t.Helper()
	return newServer(800, 400, 3)
}

func post(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	blob, _ := json.Marshal(body)
	req := httptest.NewRequest("POST", path, bytes.NewReader(blob))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestDatasetsEndpoint(t *testing.T) {
	srv := testServer(t)
	h := srv.routes()
	rec := get(t, h, "/api/datasets")
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var out map[string][]struct {
		Name string `json:"name"`
		Rows int    `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out["imdb"]) != 8 || len(out["tpch"]) != 6 {
		t.Errorf("dataset table counts: imdb=%d tpch=%d", len(out["imdb"]), len(out["tpch"]))
	}
}

func TestSketchLifecycleAndEstimate(t *testing.T) {
	srv := testServer(t)
	h := srv.routes()

	rec := post(t, h, "/api/sketches", createReq{
		Dataset: "imdb", SampleSize: 32, TrainQueries: 120, Epochs: 2, HiddenUnits: 8, Seed: 1,
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("create status %d: %s", rec.Code, rec.Body)
	}
	var entry sketchEntry
	if err := json.Unmarshal(rec.Body.Bytes(), &entry); err != nil {
		t.Fatal(err)
	}

	// Estimating against a building sketch must 404/409 cleanly, not crash.
	recEarly := post(t, h, "/api/estimate", estimateReq{SketchID: entry.ID, SQL: "SELECT COUNT(*) FROM title"})
	if recEarly.Code == http.StatusOK {
		// Tiny build may already be done; that's fine too.
		t.Log("sketch finished before polling — fast machine")
	}

	// Poll until ready.
	deadline := time.Now().Add(60 * time.Second)
	for {
		rec := get(t, h, fmt.Sprintf("/api/sketches/%d", entry.ID))
		if rec.Code != 200 {
			t.Fatalf("get status %d", rec.Code)
		}
		var status struct {
			Status   string `json:"status"`
			Error    string `json:"error"`
			Progress struct {
				Finished bool `json:"finished"`
			} `json:"progress"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &status); err != nil {
			t.Fatal(err)
		}
		if status.Status == "failed" {
			t.Fatalf("build failed: %s", status.Error)
		}
		if status.Status == "ready" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sketch did not become ready in time")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Ad-hoc estimate with overlays.
	rec = post(t, h, "/api/estimate", estimateReq{
		SketchID: entry.ID,
		SQL:      "SELECT COUNT(*) FROM title t, movie_keyword mk WHERE mk.movie_id=t.id AND t.production_year>2000",
	})
	if rec.Code != 200 {
		t.Fatalf("estimate status %d: %s", rec.Code, rec.Body)
	}
	var est struct {
		DeepSketch float64            `json:"deep_sketch"`
		Hyper      float64            `json:"hyper"`
		PostgreSQL float64            `json:"postgresql"`
		True       int64              `json:"true"`
		QErrors    map[string]float64 `json:"q_errors"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &est); err != nil {
		t.Fatal(err)
	}
	if est.DeepSketch < 1 || est.True < 1 || len(est.QErrors) != 3 {
		t.Errorf("estimate payload wrong: %+v", est)
	}

	// Template query with truth overlays.
	rec = post(t, h, "/api/template", templateReq{
		SketchID: entry.ID,
		SQL:      "SELECT COUNT(*) FROM title t WHERE t.production_year=?",
		Group:    "buckets", Buckets: 6, Truth: true,
	})
	if rec.Code != 200 {
		t.Fatalf("template status %d: %s", rec.Code, rec.Body)
	}
	var tpl struct {
		Points []struct {
			Label string  `json:"label"`
			Est   float64 `json:"deep_sketch"`
			True  *int64  `json:"true"`
		} `json:"points"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tpl); err != nil {
		t.Fatal(err)
	}
	if len(tpl.Points) != 6 {
		t.Fatalf("points = %d", len(tpl.Points))
	}
	for _, p := range tpl.Points {
		if p.True == nil {
			t.Error("missing truth overlay")
		}
	}

	// Download round trip.
	rec = get(t, h, fmt.Sprintf("/api/sketches/%d/download", entry.ID))
	if rec.Code != 200 {
		t.Fatalf("download status %d", rec.Code)
	}
	if !bytes.HasPrefix(rec.Body.Bytes(), []byte("DSKB")) {
		t.Error("download is not a sketch file")
	}

	// List contains the sketch.
	rec = get(t, h, "/api/sketches")
	if !strings.Contains(rec.Body.String(), `"ready"`) {
		t.Errorf("list missing ready sketch: %s", rec.Body)
	}
}

func TestEstimateAutoRouting(t *testing.T) {
	srv := testServer(t)
	h := srv.routes()
	rec := post(t, h, "/api/sketches", createReq{
		Dataset: "imdb", Tables: []string{"title", "movie_keyword", "keyword"},
		SampleSize: 16, TrainQueries: 60, Epochs: 1, HiddenUnits: 8, Seed: 1,
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("create status %d", rec.Code)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		rec := get(t, h, "/api/sketches/1")
		var st struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == "failed" {
			t.Fatal(st.Error)
		}
		if st.Status == "ready" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timeout")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// No sketch_id: auto-route to the covering sketch, which reports
	// itself as the estimate's source.
	rec = post(t, h, "/api/estimate", estimateReq{
		Dataset: "imdb", SQL: "SELECT COUNT(*) FROM title t WHERE t.kind_id=1",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("routed estimate: %d %s", rec.Code, rec.Body)
	}
	var resp struct {
		Source string `json:"source"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Source != "imdb-sketch-1" {
		t.Errorf("covered query source = %q, want the sketch", resp.Source)
	}
	// A query outside every sketch's tables falls through the serving chain
	// to the PostgreSQL-style estimator instead of erroring.
	rec = post(t, h, "/api/estimate", estimateReq{
		Dataset: "imdb", SQL: "SELECT COUNT(*) FROM cast_info ci",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("uncovered query status = %d %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Source != "PostgreSQL" {
		t.Errorf("uncovered query source = %q, want PostgreSQL fallback", resp.Source)
	}
}

// TestEngineFlagInstall builds a sketch on a server configured with the f32
// inference engine (the -engine flag) and checks the precision is applied at
// install time and surfaced in the estimate response.
func TestEngineFlagInstall(t *testing.T) {
	srv := newServerOpts(serverOptions{
		titles: 800, orders: 400, seed: 3, driftTruth: true,
		engine: deepsketch.EngineF32,
	})
	h := srv.routes()
	rec := post(t, h, "/api/sketches", createReq{
		Dataset: "imdb", Tables: []string{"title", "movie_keyword"},
		SampleSize: 16, TrainQueries: 60, Epochs: 1, HiddenUnits: 8, Seed: 1,
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("create status %d: %s", rec.Code, rec.Body)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		rec := get(t, h, "/api/sketches/1")
		var st struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == "failed" {
			t.Fatal(st.Error)
		}
		if st.Status == "ready" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timeout")
		}
		time.Sleep(50 * time.Millisecond)
	}
	srv.mu.RLock()
	sk := srv.sketches[1].sketch
	srv.mu.RUnlock()
	if got := sk.EnginePrecision(); got != deepsketch.EngineF32 {
		t.Fatalf("installed precision = %v, want f32", got)
	}
	rec = post(t, h, "/api/estimate", estimateReq{
		SketchID: 1, SQL: "SELECT COUNT(*) FROM title t WHERE t.kind_id=1",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("estimate status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Engine string `json:"engine"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Engine != "f32" {
		t.Errorf("estimate engine tag = %q, want f32", resp.Engine)
	}
}

func TestEstimateErrors(t *testing.T) {
	srv := testServer(t)
	h := srv.routes()
	rec := post(t, h, "/api/estimate", estimateReq{SketchID: 99, SQL: "SELECT COUNT(*) FROM title"})
	if rec.Code != http.StatusNotFound {
		t.Errorf("missing sketch status = %d", rec.Code)
	}
	rec = post(t, h, "/api/sketches", createReq{Dataset: "nope"})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad dataset status = %d", rec.Code)
	}
}

func TestIndexServed(t *testing.T) {
	srv := testServer(t)
	h := srv.routes()
	rec := get(t, h, "/")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "Deep Sketches") {
		t.Errorf("index: %d", rec.Code)
	}
	if rec := get(t, h, "/nope"); rec.Code != 404 {
		t.Errorf("unknown path status = %d", rec.Code)
	}
}
