package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"deepsketch"
)

func del(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("DELETE", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// entryState fetches the entry JSON fields the canary tests assert on.
func entryState(t *testing.T, h http.Handler, id int) (status string, version int, canary *deepsketch.SketchCanary) {
	t.Helper()
	rec := get(t, h, fmt.Sprintf("/api/sketches/%d", id))
	if rec.Code != 200 {
		t.Fatalf("get status %d: %s", rec.Code, rec.Body)
	}
	var st struct {
		Status  string                     `json:"status"`
		Version int                        `json:"version"`
		Canary  *deepsketch.SketchCanary   `json:"canary"`
		Vers    []deepsketch.SketchVersion `json:"versions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st.Status, st.Version, st.Canary
}

// TestCanaryEndpointsFlow drives the manual canary lifecycle over HTTP:
// refresh-into-canary at 50% → estimates split by version → re-fraction →
// promote → the canary serves 100% as the new live version. Then a second
// canary is aborted and the live version is untouched.
func TestCanaryEndpointsFlow(t *testing.T) {
	srv := testServer(t)
	h := srv.routes()
	id := buildReadySketch(t, h, "canary flow")

	// No canary yet: promote and abort conflict.
	if rec := post(t, h, fmt.Sprintf("/api/sketches/%d/promote", id), nil); rec.Code != http.StatusConflict {
		t.Fatalf("promote without canary: %d", rec.Code)
	}
	if rec := del(t, h, fmt.Sprintf("/api/sketches/%d/canary", id)); rec.Code != http.StatusConflict {
		t.Fatalf("abort without canary: %d", rec.Code)
	}

	// Refresh into a canary at 50%.
	rec := post(t, h, fmt.Sprintf("/api/sketches/%d/canary", id), map[string]any{
		"fraction": 0.5, "queries": 150, "epochs": 1, "workers": 2,
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("canary start: %d %s", rec.Code, rec.Body)
	}
	awaitStatus(t, h, id, "canarying")
	status, version, canary := entryState(t, h, id)
	if status != "canarying" || version != 1 {
		t.Fatalf("mid-canary entry: status=%s version=%d", status, version)
	}
	if canary == nil || canary.Version != 2 || canary.BaseVersion != 1 || canary.Fraction != 0.5 {
		t.Fatalf("mid-canary info: %+v", canary)
	}

	// A second canary while one is active conflicts (not a fraction-only
	// adjust — it carries build params but the active canary absorbs it as
	// a re-fraction, which is the documented behaviour).
	rec = post(t, h, fmt.Sprintf("/api/sketches/%d/canary", id), map[string]any{"fraction": 0.8})
	if rec.Code != http.StatusOK {
		t.Fatalf("re-fraction: %d %s", rec.Code, rec.Body)
	}
	if _, _, canary = entryState(t, h, id); canary == nil || canary.Fraction != 0.8 {
		t.Fatalf("after re-fraction: %+v", canary)
	}

	// Estimates during the canary carry the version the split selects.
	sawV1, sawV2 := false, false
	sqls := []string{
		"SELECT COUNT(*) FROM title t WHERE t.production_year>1990",
		"SELECT COUNT(*) FROM title t WHERE t.production_year>2000",
		"SELECT COUNT(*) FROM title t WHERE t.production_year>2005",
		"SELECT COUNT(*) FROM title t WHERE t.production_year<1990",
		"SELECT COUNT(*) FROM title t WHERE t.kind_id=1",
		"SELECT COUNT(*) FROM title t WHERE t.kind_id=2",
	}
	for _, sql := range sqls {
		rec := post(t, h, "/api/estimate", estimateReq{SketchID: id, SQL: sql})
		if rec.Code != 200 {
			t.Fatalf("estimate: %d %s", rec.Code, rec.Body)
		}
		var out struct {
			Version int `json:"version"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		switch out.Version {
		case 1:
			sawV1 = true
		case 2:
			sawV2 = true
		default:
			t.Fatalf("estimate version %d", out.Version)
		}
	}
	if !sawV1 || !sawV2 {
		t.Errorf("80%% canary over %d queries hit v1=%v v2=%v — want both splits exercised", len(sqls), sawV1, sawV2)
	}

	// Promote: v2 serves everything.
	rec = post(t, h, fmt.Sprintf("/api/sketches/%d/promote", id), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("promote: %d %s", rec.Code, rec.Body)
	}
	status, version, canary = entryState(t, h, id)
	if status != "ready" || version != 2 || canary != nil {
		t.Fatalf("post-promote: status=%s version=%d canary=%+v", status, version, canary)
	}
	for _, sql := range sqls {
		rec := post(t, h, "/api/estimate", estimateReq{SketchID: id, SQL: sql})
		var out struct {
			Version int `json:"version"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		if out.Version != 2 {
			t.Errorf("post-promote estimate answered by v%d, want 2", out.Version)
		}
	}

	// Second canary: aborted; live stays at v2, history keeps v3.
	rec = post(t, h, fmt.Sprintf("/api/sketches/%d/canary", id), map[string]any{
		"fraction": 0.3, "queries": 120, "epochs": 1, "workers": 2,
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("second canary: %d %s", rec.Code, rec.Body)
	}
	awaitStatus(t, h, id, "canarying")
	rec = del(t, h, fmt.Sprintf("/api/sketches/%d/canary", id))
	if rec.Code != http.StatusOK {
		t.Fatalf("abort: %d %s", rec.Code, rec.Body)
	}
	status, version, canary = entryState(t, h, id)
	if status != "ready" || version != 2 || canary != nil {
		t.Fatalf("post-abort: status=%s version=%d canary=%+v", status, version, canary)
	}
	vs, err := srv.registries["imdb"].Versions("canary flow")
	if err != nil || len(vs) != 3 || !vs[1].Live {
		t.Fatalf("history after abort: %+v, %v", vs, err)
	}

	// Drift endpoint responds with monitor + cycle state.
	rec = get(t, h, fmt.Sprintf("/api/sketches/%d/drift", id))
	if rec.Code != 200 {
		t.Fatalf("drift endpoint: %d %s", rec.Code, rec.Body)
	}
	var drift struct {
		Monitor deepsketch.DriftStatus      `json:"monitor"`
		Cycle   deepsketch.DriftCycleStatus `json:"cycle"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &drift); err != nil {
		t.Fatal(err)
	}
	if drift.Cycle.State != "idle" {
		t.Errorf("drift cycle state %q, want idle (manual canaries are not controller cycles)", drift.Cycle.State)
	}
	if drift.Monitor.Observed == 0 {
		t.Errorf("monitor observed no estimates despite the estimate traffic above")
	}
}

// TestCanaryEndpointNotFoundAndBadFraction covers the error surface.
func TestCanaryEndpointNotFoundAndBadFraction(t *testing.T) {
	srv := testServer(t)
	h := srv.routes()
	if rec := post(t, h, "/api/sketches/99/canary", map[string]any{"fraction": 0.5}); rec.Code != http.StatusNotFound {
		t.Errorf("canary on unknown id: %d", rec.Code)
	}
	if rec := get(t, h, "/api/sketches/99/drift"); rec.Code != http.StatusNotFound {
		t.Errorf("drift on unknown id: %d", rec.Code)
	}
	id := buildReadySketch(t, h, "fraction checks")
	if rec := post(t, h, fmt.Sprintf("/api/sketches/%d/canary", id), map[string]any{"fraction": 1.5}); rec.Code != http.StatusBadRequest {
		t.Errorf("fraction 1.5: %d", rec.Code)
	}
	if rec := post(t, h, fmt.Sprintf("/api/sketches/%d/canary", id), map[string]any{"fraction": -0.1}); rec.Code != http.StatusBadRequest {
		t.Errorf("fraction -0.1: %d", rec.Code)
	}
}
