// Command deepsketch-lint runs the project's static-analysis suite
// (internal/analysis) over the requested packages and reports every
// violated invariant: zero-allocation packed kernels, fsync-before-rename
// persistence, bitwise-deterministic training, caller-owned contexts, and
// mutex-guarded field access. It exits non-zero if any diagnostic fires,
// so CI can gate on it. Run it locally with:
//
//	go run ./cmd/deepsketch-lint ./...
//
// See docs/static-analysis.md for each analyzer's invariant and the
// annotation grammar.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"deepsketch/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	all := analysis.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "deepsketch-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deepsketch-lint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deepsketch-lint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "deepsketch-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
