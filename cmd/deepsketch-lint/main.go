// Command deepsketch-lint runs the project's static-analysis suite
// (internal/analysis) over the requested packages and reports every
// violated invariant: zero-allocation packed kernels, fsync-before-rename
// persistence, bitwise-deterministic training, caller-owned contexts,
// mutex-guarded field access, joined goroutines, an acyclic module-wide
// lock order, handled durability errors, and compiler escape/inline facts
// pinned to a golden. It exits non-zero if any diagnostic fires, so CI
// can gate on it. Run it locally with:
//
//	go run ./cmd/deepsketch-lint ./...
//
// The escape budget has its own mode: `-escape` diffs the compiler's
// current decisions against the checked-in golden, and `-escape -update`
// re-records the golden after an intentional kernel change.
//
// See docs/static-analysis.md for each analyzer's invariant and the
// annotation grammar.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"deepsketch/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	escape := flag.Bool("escape", false, "escape-budget mode: run only the escapebudget analyzer")
	update := flag.Bool("update", false, "with -escape: re-record the escape-budget golden instead of diffing")
	flag.Parse()

	all := analysis.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *update && !*escape {
		fmt.Fprintln(os.Stderr, "deepsketch-lint: -update requires -escape")
		os.Exit(2)
	}

	analyzers := all
	if *escape {
		analyzers = []*analysis.Analyzer{analysis.EscapeBudget}
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "deepsketch-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deepsketch-lint: %v\n", err)
		os.Exit(2)
	}
	if *update {
		path, err := analysis.WriteEscapeGolden(prog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deepsketch-lint: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("deepsketch-lint: escape-budget golden updated: %s\n", path)
		return
	}
	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deepsketch-lint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "deepsketch-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
