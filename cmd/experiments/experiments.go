package main

import (
	"context"
	"fmt"
	"time"

	"deepsketch/internal/core"
	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
	"deepsketch/internal/estimator"
	"deepsketch/internal/featurize"
	"deepsketch/internal/metrics"
	"deepsketch/internal/mscn"
	"deepsketch/internal/trainmon"
	"deepsketch/internal/workload"
)

// runTable1 reproduces Table 1: estimation errors (q-errors) on the
// JOB-light workload for Deep Sketch, HyPer, and PostgreSQL.
func runTable1(c *ctx) error {
	s, err := c.mainSketch()
	if err != nil {
		return err
	}
	labeled, err := c.jobLightLabeled()
	if err != nil {
		return err
	}
	hyper, pg, err := c.baselines()
	if err != nil {
		return err
	}
	rows := []metrics.Row{}
	sketchQ, err := qerrsOf(labeled, s.Cardinality)
	if err != nil {
		return err
	}
	hyperQ, err := qerrsOf(labeled, hyper.Cardinality)
	if err != nil {
		return err
	}
	pgQ, err := qerrsOf(labeled, pg.Cardinality)
	if err != nil {
		return err
	}
	rows = append(rows,
		metrics.Row{Name: "Deep Sketch", Summary: metrics.Summarize(sketchQ)},
		metrics.Row{Name: "HyPer", Summary: metrics.Summarize(hyperQ)},
		metrics.Row{Name: "PostgreSQL", Summary: metrics.Summarize(pgQ)},
	)
	fmt.Printf("\nTable 1: estimation errors on the JOB-light workload (%d queries)\n\n", len(labeled))
	fmt.Print(metrics.FormatTable(rows))
	fmt.Println("\npaper's Table 1 (real IMDb, PyTorch MSCN, HyPer, PostgreSQL 10.3):")
	fmt.Print(metrics.FormatTable([]metrics.Row{
		{Name: "Deep Sketch", Summary: metrics.Summary{Median: 3.82, P90: 78.4, P95: 362, P99: 927, Max: 1110, Mean: 57.9}},
		{Name: "HyPer", Summary: metrics.Summary{Median: 14.6, P90: 454, P95: 1208, P99: 2764, Max: 4228, Mean: 224}},
		{Name: "PostgreSQL", Summary: metrics.Summary{Median: 7.93, P90: 164, P95: 1104, P99: 2912, Max: 3477, Mean: 174}},
	}))
	fmt.Println("\nshape check: Deep Sketch should lead every statistic, with the gap widening in the tail.")

	// Breakdown by join count (the underlying MSCN paper reports this):
	// deeper joins compound correlation errors for the baselines.
	fmt.Println("\nq-error by number of joins (median | mean), plus under-estimation fraction:")
	fmt.Printf("  %-14s", "joins (n)")
	systems := []struct {
		name string
		est  func(db.Query) (float64, error)
	}{
		{"Deep Sketch", s.Cardinality},
		{"HyPer", hyper.Cardinality},
		{"PostgreSQL", pg.Cardinality},
	}
	for _, sys := range systems {
		fmt.Printf(" %22s", sys.name)
	}
	fmt.Println()
	byJoins := map[int][]workload.LabeledQuery{}
	for _, lq := range labeled {
		byJoins[len(lq.Query.Joins)] = append(byJoins[len(lq.Query.Joins)], lq)
	}
	for joins := 1; joins <= 4; joins++ {
		group := byJoins[joins]
		if len(group) == 0 {
			continue
		}
		fmt.Printf("  %-2d (%2d)       ", joins, len(group))
		for _, sys := range systems {
			qs := make([]float64, 0, len(group))
			ests := make([]float64, 0, len(group))
			truths := make([]float64, 0, len(group))
			for _, lq := range group {
				v, err := sys.est(lq.Query)
				if err != nil {
					return err
				}
				qs = append(qs, metrics.QError(v, float64(lq.Card)))
				ests = append(ests, v)
				truths = append(truths, float64(lq.Card))
			}
			sum := metrics.Summarize(qs)
			fmt.Printf(" %7s |%7s u=%.2f", metrics.Sig3(sum.Median), metrics.Sig3(sum.Mean),
				metrics.UnderFrac(ests, truths))
		}
		fmt.Println()
	}
	return nil
}

// runFig1a reproduces Figure 1a's pipeline view plus §3's training-cost
// observations: stage timings, and the (linear) scaling of training time
// with the number of epochs and training queries.
func runFig1a(c *ctx) error {
	s, err := c.mainSketch()
	if err != nil {
		return err
	}
	fmt.Println("\nsketch creation pipeline (Figure 1a stages):")
	order := []trainmon.Stage{trainmon.StageDefine, trainmon.StageGenerate,
		trainmon.StageExecute, trainmon.StageFeaturize, trainmon.StageTrain}
	for _, st := range order {
		if ms, ok := s.StageMillis[st]; ok {
			fmt.Printf("  %-10s %8d ms\n", st, ms)
		}
	}

	td, err := c.trainingData()
	if err != nil {
		return err
	}

	fmt.Println("\ntraining time vs epochs (same data; paper: \"training time decreases linearly with fewer epochs\"):")
	epochSteps := []int{c.sc.epochs / 5, c.sc.epochs / 2, c.sc.epochs}
	fmt.Printf("  %8s %12s %14s\n", "epochs", "train time", "ms per epoch")
	for _, ep := range epochSteps {
		if ep < 1 {
			ep = 1
		}
		cfg := td.Cfg
		cfg.Model.Epochs = ep
		t0 := time.Now()
		td2 := *td
		td2.Cfg = cfg
		if _, err := core.BuildFromData(&td2, nil); err != nil {
			return err
		}
		el := time.Since(t0)
		fmt.Printf("  %8d %12v %14.1f\n", ep, el.Round(time.Millisecond), float64(el.Milliseconds())/float64(ep))
	}

	fmt.Println("\ntraining time vs training-set size (epochs fixed):")
	fmt.Printf("  %8s %12s %16s\n", "queries", "train time", "µs per query-epoch")
	fixedEp := c.sc.epochs / 2
	if fixedEp < 1 {
		fixedEp = 1
	}
	for _, n := range c.sc.sweepQ {
		if n > len(td.Examples) {
			n = len(td.Examples)
		}
		cfg := td.Cfg
		cfg.Model.Epochs = fixedEp
		td2 := *td
		td2.Cfg = cfg
		td2.Examples = td.Examples[:n]
		t0 := time.Now()
		if _, err := core.BuildFromData(&td2, nil); err != nil {
			return err
		}
		el := time.Since(t0)
		fmt.Printf("  %8d %12v %16.1f\n", n, el.Round(time.Millisecond),
			float64(el.Microseconds())/float64(n*fixedEp))
	}
	fmt.Println("\nshape check: both sweeps should be close to linear (constant per-epoch / per-query cost).")
	return nil
}

// runFig1b reproduces Figure 1b's usage-side claims: estimation within
// milliseconds from a sketch of a few MiBs.
func runFig1b(c *ctx) error {
	s, err := c.mainSketch()
	if err != nil {
		return err
	}
	queries, err := c.jobLightLabeled()
	if err != nil {
		return err
	}
	t0 := time.Now()
	for _, lq := range queries {
		if _, err := s.Cardinality(lq.Query); err != nil {
			return err
		}
	}
	el := time.Since(t0)
	per := el / time.Duration(len(queries))

	fb, err := s.Footprint()
	if err != nil {
		return err
	}
	fmt.Printf("\nestimation latency: %v per query (%d JOB-light queries in %v)\n",
		per.Round(time.Microsecond), len(queries), el.Round(time.Millisecond))
	fmt.Printf("sketch footprint:   %.2f MiB total\n", float64(fb.Total)/(1<<20))
	fmt.Printf("  header   %8.2f KiB (config, vocabulary, normalizers)\n", float64(fb.Header)/1024)
	fmt.Printf("  weights  %8.2f KiB (%d MSCN parameters)\n", float64(fb.Weights)/1024, s.Model.NumParams())
	fmt.Printf("  samples  %8.2f KiB (%d tuples x %d tables)\n", float64(fb.Samples)/1024,
		s.Cfg.SampleSize, len(s.Cfg.Tables))
	fmt.Println("\nshape check: latency within milliseconds, footprint within a few MiBs (paper §1).")
	return nil
}

// runFig2 reproduces the demo's Figure 2 flow: the keyword-over-years
// template with Deep Sketch / HyPer / PostgreSQL / truth overlays.
func runFig2(c *ctx) error {
	s, err := c.mainSketch()
	if err != nil {
		return err
	}
	hyper, pg, err := c.baselines()
	if err != nil {
		return err
	}
	tpl, err := workload.YearTemplate(c.db(), "artificial-intelligence")
	if err != nil {
		return err
	}
	res, err := s.EstimateTemplate(context.Background(), tpl, workload.GroupBuckets, 14)
	if err != nil {
		return err
	}
	fmt.Println("\npopularity of keyword 'artificial-intelligence' over production years")
	fmt.Printf("%-11s %10s %10s %10s %10s\n", "years", "sketch", "hyper", "postgres", "true")
	var qSketch, qHyper, qPG []float64
	for _, r := range res {
		truth, err := c.db().Count(r.Query)
		if err != nil {
			return err
		}
		he, err := hyper.Cardinality(r.Query)
		if err != nil {
			return err
		}
		pe, err := pg.Cardinality(r.Query)
		if err != nil {
			return err
		}
		fmt.Printf("%-11s %10.1f %10.1f %10.1f %10d\n", r.Label, r.Estimate, he, pe, truth)
		qSketch = append(qSketch, metrics.QError(r.Estimate, float64(truth)))
		qHyper = append(qHyper, metrics.QError(he, float64(truth)))
		qPG = append(qPG, metrics.QError(pe, float64(truth)))
	}
	fmt.Printf("\nmean q-error over the series: Deep Sketch %.2f, HyPer %.2f, PostgreSQL %.2f\n",
		metrics.Summarize(qSketch).Mean, metrics.Summarize(qHyper).Mean, metrics.Summarize(qPG).Mean)
	fmt.Println("shape check: the sketch's series should rise with the true era trend; the baselines track only the year marginal.")
	return nil
}

// runZeroTuple reproduces §2's robustness claim: on queries where no
// sampled tuple qualifies, the sampling estimator must guess while the
// sketch still uses the query's static features.
//
// The experiment uses a dedicated sketch with deliberately small samples.
// The paper's samples cover ~0.003% of the 36M-row cast_info table, so
// 0-tuple situations there span selectivities over four orders of
// magnitude; at this reproduction's table sizes, the main sketch's samples
// cover >1% and a 0-tuple situation pins the selectivity into a narrow
// band where any guess is adequate. Shrinking the samples restores the
// paper's coverage regime (see EXPERIMENTS.md).
func runZeroTuple(c *ctx) error {
	ssize := c.sc.samples / 8
	if ssize < 48 {
		ssize = 48
	}
	fmt.Printf("building dedicated small-sample sketch (%d tuples/table) for the 0-tuple regime...\n", ssize)
	cfg := c.sketchCfg()
	cfg.Name = "zero-tuple"
	cfg.SampleSize = ssize
	cfg.MaxJoins = 2
	s, err := core.Build(c.db(), cfg, nil)
	if err != nil {
		return err
	}
	// Share the sketch's samples so both see identical 0-tuple situations.
	hyper, err := estimator.NewHyperWithSamples(c.db(), s.Samples)
	if err != nil {
		return err
	}
	pg := estimator.NewPostgres(c.db(), estimator.PostgresOptions{})

	gen, err := workload.NewGenerator(c.db(), workload.GenConfig{
		Seed: c.seed + 1000, Count: c.sc.queries, MaxJoins: 2, MaxPreds: 3, Dedup: true,
	})
	if err != nil {
		return err
	}
	// Mine all 0-tuple situations regardless of the true result size, like
	// the underlying MSCN evaluation: the sample carries no signal, so the
	// spread of true cardinalities (from empty to hundreds) is what the
	// estimators must cope with.
	var mined []workload.LabeledQuery
	for _, q := range gen.Generate() {
		zt, err := hyper.ZeroTuple(q)
		if err != nil {
			return err
		}
		if !zt {
			continue
		}
		card, err := c.db().Count(q)
		if err != nil {
			return err
		}
		mined = append(mined, workload.LabeledQuery{Query: q, Card: card})
		if len(mined) >= 400 {
			break
		}
	}
	if len(mined) == 0 {
		fmt.Println("\nno 0-tuple situations found (samples too large relative to data); rerun with -samples lowered")
		return nil
	}
	sketchQ, err := qerrsOf(mined, s.Cardinality)
	if err != nil {
		return err
	}
	hyperQ, err := qerrsOf(mined, hyper.Cardinality)
	if err != nil {
		return err
	}
	pgQ, err := qerrsOf(mined, pg.Cardinality)
	if err != nil {
		return err
	}
	fmt.Printf("\nq-errors on %d 0-tuple queries (no qualifying sample tuples on some table):\n\n", len(mined))
	fmt.Print(metrics.FormatTable([]metrics.Row{
		{Name: "Deep Sketch", Summary: metrics.Summarize(sketchQ)},
		{Name: "HyPer (sampling)", Summary: metrics.Summarize(hyperQ)},
		{Name: "PostgreSQL", Summary: metrics.Summarize(pgQ)},
	}))
	fmt.Println("\nshape check: the sketch should dominate the sampling estimator, whose educated guess produces heavy tails.")
	return nil
}

// runTrainSize reproduces §3's "for a small number of tables, 10,000
// queries will already be sufficient": JOB-light q-error vs training-set
// size, with diminishing returns.
func runTrainSize(c *ctx) error {
	td, err := c.trainingData()
	if err != nil {
		return err
	}
	labeled, err := c.jobLightLabeled()
	if err != nil {
		return err
	}
	fmt.Println("\nJOB-light q-error vs number of training queries:")
	fmt.Printf("  %8s %10s %10s %10s\n", "queries", "median", "mean", "95th")
	for _, n := range c.sc.sweepQ {
		if n > len(td.Examples) {
			n = len(td.Examples)
		}
		cfg := td.Cfg
		cfg.Model.Epochs = c.sc.epochs
		td2 := *td
		td2.Cfg = cfg
		td2.Examples = td.Examples[:n]
		sk, err := core.BuildFromData(&td2, nil)
		if err != nil {
			return err
		}
		qs, err := qerrsOf(labeled, sk.Cardinality)
		if err != nil {
			return err
		}
		sum := metrics.Summarize(qs)
		fmt.Printf("  %8d %10s %10s %10s\n", n, metrics.Sig3(sum.Median), metrics.Sig3(sum.Mean), metrics.Sig3(sum.P95))
	}
	fmt.Println("\nshape check: errors fall with more training queries and flatten toward the full set.")
	return nil
}

// runEpochs reproduces §3's "25 epochs are usually enough to achieve a
// reasonable mean q-error on a separate validation set".
func runEpochs(c *ctx) error {
	td, err := c.trainingData()
	if err != nil {
		return err
	}
	cfg := td.Cfg
	cfg.Model.Epochs = c.sc.sweepEp
	td2 := *td
	td2.Cfg = cfg
	mon := trainmon.New()
	mon.AddSink(func(e trainmon.Event) {
		if e.Kind == trainmon.KindTrainStart {
			fmt.Printf("  %s\n", e.Msg)
		}
	})
	sk, err := core.BuildFromData(&td2, mon)
	if err != nil {
		return err
	}
	fmt.Printf("\nvalidation q-error per epoch (1..%d):\n", c.sc.sweepEp)
	fmt.Printf("  %6s %12s %12s\n", "epoch", "val mean-q", "val median-q")
	means := make([]float64, 0, len(sk.Epochs))
	for _, e := range sk.Epochs {
		means = append(means, e.ValMeanQ)
		if e.Epoch == 1 || e.Epoch%5 == 0 {
			fmt.Printf("  %6d %12.2f %12.2f\n", e.Epoch, e.ValMeanQ, e.ValMedQ)
		}
	}
	fmt.Printf("\n  trajectory: %s\n", trainmon.Sparkline(means))
	// Where does the curve flatten? Report the first epoch within 20% of
	// the final value.
	final := means[len(means)-1]
	plateau := len(means)
	for i, m := range means {
		if m <= final*1.2 {
			plateau = i + 1
			break
		}
	}
	fmt.Printf("  plateau (within 20%% of final): epoch %d of %d\n", plateau, len(means))
	fmt.Println("\nshape check: the curve should flatten well before the horizon (paper: ~25 epochs).")
	return nil
}

// runAblation isolates the paper's differentiating design choice: feeding
// qualifying-sample bitmaps into the model ("besides this integration of
// (runtime) sampling...").
func runAblation(c *ctx) error {
	td, err := c.trainingData()
	if err != nil {
		return err
	}
	labeled, err := c.jobLightLabeled()
	if err != nil {
		return err
	}

	// With bitmaps: the main sketch.
	withSketch, err := c.mainSketch()
	if err != nil {
		return err
	}
	withQ, err := qerrsOf(labeled, withSketch.Cardinality)
	if err != nil {
		return err
	}

	// Without bitmaps: re-encode with a bitmap-free encoder (SampleSize 0),
	// same training labels, same hyperparameters.
	fmt.Println("\ntraining bitmap-free MSCN (static query features only)...")
	encNo, err := featurize.NewEncoder(c.db(), td.Cfg.Tables, 0)
	if err != nil {
		return err
	}
	cards := make([]int64, len(td.Labeled))
	for i, lq := range td.Labeled {
		cards[i] = lq.Card
	}
	encNo.FitLabels(cards)
	examples := make([]mscn.Example, len(td.Labeled))
	for i, lq := range td.Labeled {
		e, err := encNo.EncodeQuery(lq.Query, nil)
		if err != nil {
			return err
		}
		examples[i] = mscn.Example{Enc: e, Card: lq.Card}
	}
	cfg := td.Cfg.Model
	cfg.Epochs = c.sc.epochs
	if cfg.Seed == 0 {
		cfg.Seed = c.seed
	}
	model := mscn.New(cfg, encNo.TableDim(), encNo.JoinDim(), encNo.PredDim())
	if _, err := model.Train(examples, encNo.Norm, nil); err != nil {
		return err
	}
	noQ := make([]float64, 0, len(labeled))
	for _, lq := range labeled {
		e, err := encNo.EncodeQuery(lq.Query, nil)
		if err != nil {
			return err
		}
		y, err := model.Predict(e)
		if err != nil {
			return err
		}
		noQ = append(noQ, metrics.QError(encNo.Norm.Denormalize(y), float64(lq.Card)))
	}

	fmt.Println("\nJOB-light q-errors, MSCN with vs without sample bitmaps:")
	fmt.Print(metrics.FormatTable([]metrics.Row{
		{Name: "MSCN + bitmaps", Summary: metrics.Summarize(withQ)},
		{Name: "MSCN static only", Summary: metrics.Summarize(noQ)},
	}))
	fmt.Println("\nshape check: bitmaps should strictly help — they carry the per-table sample selectivities.")
	return nil
}

// runTPCH exercises the demo's second dataset: a sketch over the synthetic
// TPC-H schema evaluated on a held-out uniform workload.
func runTPCH(c *ctx) error {
	fmt.Printf("generating synthetic TPC-H (%d orders)...\n", c.sc.tpchOrder)
	d := datagen.TPCH(datagen.TPCHConfig{Seed: c.seed, Orders: c.sc.tpchOrder})
	cfg := c.sketchCfg()
	cfg.Name = "tpch"
	cfg.MaxJoins = 3
	fmt.Println("building TPC-H sketch...")
	sk, err := core.Build(d, cfg, nil)
	if err != nil {
		return err
	}
	gen, err := workload.NewGenerator(d, workload.GenConfig{
		Seed: c.seed + 500, Count: 300, MaxJoins: 3, MaxPreds: 3, Dedup: true,
	})
	if err != nil {
		return err
	}
	labeled, err := workload.Label(d, gen.Generate(), 0, nil)
	if err != nil {
		return err
	}
	hyper, err := estimator.NewHyper(d, c.sc.samples, c.seed)
	if err != nil {
		return err
	}
	pg := estimator.NewPostgres(d, estimator.PostgresOptions{})
	sketchQ, err := qerrsOf(labeled, sk.Cardinality)
	if err != nil {
		return err
	}
	hyperQ, err := qerrsOf(labeled, hyper.Cardinality)
	if err != nil {
		return err
	}
	pgQ, err := qerrsOf(labeled, pg.Cardinality)
	if err != nil {
		return err
	}
	fmt.Printf("\nq-errors on a held-out uniform TPC-H workload (%d queries):\n\n", len(labeled))
	fmt.Print(metrics.FormatTable([]metrics.Row{
		{Name: "Deep Sketch", Summary: metrics.Summarize(sketchQ)},
		{Name: "HyPer", Summary: metrics.Summarize(hyperQ)},
		{Name: "PostgreSQL", Summary: metrics.Summarize(pgQ)},
	}))
	fmt.Println("\nshape check: TPC-H is more uniform than IMDb, so all systems do better; the sketch still leads the tail.")
	return nil
}
