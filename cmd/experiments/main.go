// Command experiments regenerates every table and figure of the paper's
// evaluation, mapped to this reproduction's synthetic substrate (see
// DESIGN.md §4 for the experiment index and EXPERIMENTS.md for recorded
// results):
//
//	table1     Table 1    — q-errors on JOB-light: Deep Sketch vs HyPer vs PostgreSQL
//	fig1a      Figure 1a  — creation pipeline stage costs; training time scaling
//	fig1b      Figure 1b  — estimation latency and sketch footprint
//	fig2       Figure 2   — keyword-over-years template with overlays
//	zerotuple  §2 claim   — 0-tuple robustness vs sampling's educated guess
//	trainsize  §3 claim   — q-error vs number of training queries
//	epochs     §3 claim   — validation q-error vs training epochs
//	ablation   §2 design  — MSCN with vs without sample bitmaps
//	tpch       demo scope — sketch quality on the TPC-H-like dataset
//	samplesize extension  — q-error vs sample size (bitmap width) curve
//	optimizer  extension  — plan quality when estimates drive a DP join enumerator
//	loss       extension  — mean q-error vs L1-log training objective
//
// Usage:
//
//	experiments -run all            # everything, paper-scale defaults
//	experiments -run table1,fig2    # a subset
//	experiments -fast               # reduced scale (CI-sized)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"deepsketch/internal/core"
	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
	"deepsketch/internal/estimator"
	"deepsketch/internal/metrics"
	"deepsketch/internal/mscn"
	"deepsketch/internal/trainmon"
	"deepsketch/internal/workload"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment list or 'all'")
	fast := flag.Bool("fast", false, "reduced scale (smaller data, fewer queries/epochs)")
	titles := flag.Int("titles", 0, "override imdb scale (titles)")
	queries := flag.Int("queries", 0, "override training query count")
	epochs := flag.Int("epochs", 0, "override training epochs")
	hidden := flag.Int("hidden", 0, "override MSCN hidden units")
	samples := flag.Int("samples", 0, "override sample tuples per table")
	workers := flag.Int("workers", 0, "parallel workers for labeling and data-parallel training (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "experiment seed")
	flag.Parse()

	c := newCtx(*fast, *titles, *queries, *epochs, *hidden, *samples, *workers, *seed)

	all := []struct {
		name string
		fn   func(*ctx) error
	}{
		{"table1", runTable1},
		{"fig1a", runFig1a},
		{"fig1b", runFig1b},
		{"fig2", runFig2},
		{"zerotuple", runZeroTuple},
		{"trainsize", runTrainSize},
		{"epochs", runEpochs},
		{"ablation", runAblation},
		{"tpch", runTPCH},
		{"samplesize", runSampleSize},
		{"optimizer", runOptimizer},
		{"loss", runLossAblation},
	}
	want := map[string]bool{}
	if *run == "all" {
		for _, e := range all {
			want[e.name] = true
		}
	} else {
		for _, n := range strings.Split(*run, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}
	known := map[string]bool{}
	for _, e := range all {
		known[e.name] = true
	}
	for n := range want {
		if !known[n] {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", n)
			os.Exit(2)
		}
	}
	start := time.Now()
	for _, e := range all {
		if !want[e.name] {
			continue
		}
		fmt.Printf("\n══ %s ═══════════════════════════════════════════════\n", e.name)
		t0 := time.Now()
		if err := e.fn(c); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("── %s done in %v\n", e.name, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("\nall requested experiments finished in %v\n", time.Since(start).Round(time.Second))
}

// scale holds the experiment sizing knobs.
type scale struct {
	titles    int
	queries   int
	epochs    int
	hidden    int
	samples   int
	tpchOrder int
	sweepQ    []int // trainsize sweep
	sweepEp   int   // epochs experiment horizon
}

func defaultScale(fast bool) scale {
	if fast {
		return scale{
			titles: 4000, queries: 2000, epochs: 10, hidden: 32, samples: 256,
			tpchOrder: 2500, sweepQ: []int{250, 500, 1000, 2000}, sweepEp: 20,
		}
	}
	return scale{
		titles: 20000, queries: 10000, epochs: 25, hidden: 64, samples: 1000,
		tpchOrder: 15000, sweepQ: []int{500, 1000, 2000, 5000, 10000}, sweepEp: 50,
	}
}

// ctx lazily builds and caches the shared heavyweight fixtures: the IMDb
// database, the main sketch, its training data, and the labeled JOB-light
// workload.
type ctx struct {
	sc      scale
	seed    int64
	workers int

	imdb     *db.DB
	td       *core.TrainingData
	tdStages map[trainmon.Stage]int
	sketch   *core.Sketch
	joblight []workload.LabeledQuery
}

func newCtx(fast bool, titles, queries, epochs, hidden, samples, workers int, seed int64) *ctx {
	sc := defaultScale(fast)
	if titles > 0 {
		sc.titles = titles
	}
	if queries > 0 {
		sc.queries = queries
	}
	if epochs > 0 {
		sc.epochs = epochs
	}
	if hidden > 0 {
		sc.hidden = hidden
	}
	if samples > 0 {
		sc.samples = samples
	}
	return &ctx{sc: sc, seed: seed, workers: workers}
}

func (c *ctx) db() *db.DB {
	if c.imdb == nil {
		fmt.Printf("generating synthetic IMDb (%d titles)... ", c.sc.titles)
		t0 := time.Now()
		c.imdb = datagen.IMDb(datagen.IMDbConfig{Seed: c.seed, Titles: c.sc.titles})
		fmt.Printf("%d total rows in %v\n", c.imdb.TotalRows(), time.Since(t0).Round(time.Millisecond))
	}
	return c.imdb
}

func (c *ctx) sketchCfg() core.Config {
	return core.Config{
		Name:         "experiments",
		SampleSize:   c.sc.samples,
		TrainQueries: c.sc.queries,
		MaxJoins:     4, // JOB-light's query class
		Workers:      c.workers,
		Seed:         c.seed,
		Model: mscn.Config{
			HiddenUnits: c.sc.hidden,
			Epochs:      c.sc.epochs,
			BatchSize:   128,
			Seed:        c.seed,
		},
	}
}

// trainingData prepares (once) the shared training data.
func (c *ctx) trainingData() (*core.TrainingData, error) {
	if c.td != nil {
		return c.td, nil
	}
	fmt.Printf("preparing training data (%d queries, %d samples/table)...\n", c.sc.queries, c.sc.samples)
	mon := trainmon.New()
	td, err := core.PrepareTrainingData(c.db(), c.sketchCfg(), mon)
	if err != nil {
		return nil, err
	}
	c.tdStages = mon.Snapshot().StageTimes
	fmt.Printf("  %s\n", trainmon.FormatStageTimes(c.tdStages))
	c.td = td
	return td, nil
}

// mainSketch trains (once) the main sketch used by table1/fig1b/fig2/....
func (c *ctx) mainSketch() (*core.Sketch, error) {
	if c.sketch != nil {
		return c.sketch, nil
	}
	td, err := c.trainingData()
	if err != nil {
		return nil, err
	}
	fmt.Printf("training main sketch (%d epochs, hidden %d)...\n", c.sc.epochs, c.sc.hidden)
	mon := trainmon.New()
	mon.AddSink(func(e trainmon.Event) {
		switch {
		case e.Kind == trainmon.KindTrainStart:
			fmt.Printf("  %s\n", e.Msg)
		case e.Kind == trainmon.KindEpoch && (e.Epoch%5 == 0 || e.Epoch == 1):
			fmt.Printf("  epoch %3d: val mean-q %8.2f median-q %6.2f\n", e.Epoch, e.ValMeanQ, e.ValMedQ)
		}
	})
	s, err := core.BuildFromData(td, mon)
	if err != nil {
		return nil, err
	}
	// Merge the data-preparation stage times into the sketch record so
	// fig1a can show the whole pipeline.
	for st, ms := range c.tdStages {
		if _, ok := s.StageMillis[st]; !ok {
			s.StageMillis[st] = ms
		}
	}
	c.sketch = s
	return s, nil
}

// jobLightLabeled builds (once) the labeled JOB-light workload.
func (c *ctx) jobLightLabeled() ([]workload.LabeledQuery, error) {
	if c.joblight != nil {
		return c.joblight, nil
	}
	qs, err := workload.JOBLight(c.db(), c.seed)
	if err != nil {
		return nil, err
	}
	labeled, err := workload.Label(c.db(), qs, 0, nil)
	if err != nil {
		return nil, err
	}
	c.joblight = labeled
	return labeled, nil
}

// qerrsOf evaluates an estimate function over a labeled workload.
func qerrsOf(labeled []workload.LabeledQuery, est func(db.Query) (float64, error)) ([]float64, error) {
	out := make([]float64, 0, len(labeled))
	for _, lq := range labeled {
		v, err := est(lq.Query)
		if err != nil {
			return nil, err
		}
		out = append(out, metrics.QError(v, float64(lq.Card)))
	}
	return out, nil
}

// baselines constructs the two traditional estimators with the sketch's
// sample size.
func (c *ctx) baselines() (*estimator.Hyper, *estimator.Postgres, error) {
	h, err := estimator.NewHyper(c.db(), c.sc.samples, c.seed)
	if err != nil {
		return nil, nil, err
	}
	return h, estimator.NewPostgres(c.db(), estimator.PostgresOptions{}), nil
}
