package main

import (
	"fmt"

	"deepsketch/internal/core"
	"deepsketch/internal/db"
	"deepsketch/internal/featurize"
	"deepsketch/internal/metrics"
	"deepsketch/internal/mscn"
	"deepsketch/internal/nn"
	"deepsketch/internal/optimizer"
	"deepsketch/internal/sample"
)

// runSampleSize sweeps the number of materialized sample tuples per table —
// the "e.g., 1000 tuples per base table" knob of §2 and a creation-time
// parameter of step 1. The bitmap width is the model's main input, so this
// extends the bitmap ablation (E8) into a full curve: 0 (static features
// only) up to the paper's 1000.
func runSampleSize(c *ctx) error {
	td, err := c.trainingData()
	if err != nil {
		return err
	}
	labeled, err := c.jobLightLabeled()
	if err != nil {
		return err
	}
	epochs := c.sc.epochs * 3 / 5
	if epochs < 2 {
		epochs = 2
	}
	sizes := []int{0, c.sc.samples / 16, c.sc.samples / 4, c.sc.samples}
	fmt.Printf("\nJOB-light q-error vs sample size (bitmap width; %d epochs each):\n", epochs)
	fmt.Printf("  %8s %10s %10s %10s %10s\n", "samples", "median", "mean", "95th", "max")
	for _, size := range sizes {
		if size < 0 {
			size = 0
		}
		// Re-sample, re-encode, re-train; queries and labels are reused.
		var samples *sample.Set
		if size > 0 {
			samples, err = sample.New(c.db(), td.Cfg.Tables, size, c.seed)
			if err != nil {
				return err
			}
		}
		enc, err := featurize.NewEncoder(c.db(), td.Cfg.Tables, size)
		if err != nil {
			return err
		}
		cards := make([]int64, len(td.Labeled))
		for i, lq := range td.Labeled {
			cards[i] = lq.Card
		}
		enc.FitLabels(cards)
		examples := make([]mscn.Example, len(td.Labeled))
		for i, lq := range td.Labeled {
			var bms map[string]sample.Bitmap
			if samples != nil {
				bms, err = samples.Bitmaps(lq.Query)
				if err != nil {
					return err
				}
			}
			e, err := enc.EncodeQuery(lq.Query, bms)
			if err != nil {
				return err
			}
			examples[i] = mscn.Example{Enc: e, Card: lq.Card}
		}
		mcfg := td.Cfg.Model
		mcfg.Epochs = epochs
		if mcfg.Seed == 0 {
			mcfg.Seed = c.seed
		}
		model := mscn.New(mcfg, enc.TableDim(), enc.JoinDim(), enc.PredDim())
		if _, err := model.Train(examples, enc.Norm, nil); err != nil {
			return err
		}
		qs := make([]float64, 0, len(labeled))
		for _, lq := range labeled {
			var bms map[string]sample.Bitmap
			if samples != nil {
				bms, err = samples.Bitmaps(lq.Query)
				if err != nil {
					return err
				}
			}
			e, err := enc.EncodeQuery(lq.Query, bms)
			if err != nil {
				return err
			}
			y, err := model.Predict(e)
			if err != nil {
				return err
			}
			qs = append(qs, metrics.QError(enc.Norm.Denormalize(y), float64(lq.Card)))
		}
		sum := metrics.Summarize(qs)
		fmt.Printf("  %8d %10s %10s %10s %10s\n", size,
			metrics.Sig3(sum.Median), metrics.Sig3(sum.Mean), metrics.Sig3(sum.P95), metrics.Sig3(sum.Max))
	}
	fmt.Println("\nshape check: errors fall monotonically-ish as samples grow, with diminishing returns.")
	return nil
}

// runOptimizer demonstrates the paper's motivating use case end to end:
// feed each estimator's cardinalities into the same DP join enumerator
// (C_out cost model) and compare the true cost of the chosen plans against
// the optimal plan — the methodology of the JOB papers the demo cites.
// This goes beyond the demo's own evaluation (which shows estimates only)
// and is marked as an extension in DESIGN.md.
func runOptimizer(c *ctx) error {
	s, err := c.mainSketch()
	if err != nil {
		return err
	}
	labeled, err := c.jobLightLabeled()
	if err != nil {
		return err
	}
	hyper, pg, err := c.baselines()
	if err != nil {
		return err
	}
	truth := func(q db.Query) (float64, error) {
		card, err := c.db().Count(q)
		return float64(card), err
	}
	systems := []struct {
		name string
		est  optimizer.CardinalityEstimator
	}{
		{"Deep Sketch", s.Cardinality},
		{"HyPer", hyper.Cardinality},
		{"PostgreSQL", pg.Cardinality},
	}
	names := make([]string, len(systems))
	ratios := make([][]float64, len(systems))
	var optimalAll int
	for i, sys := range systems {
		names[i] = sys.name
		for _, lq := range labeled {
			if len(lq.Query.Tables) < 2 {
				continue
			}
			ratio, _, _, err := optimizer.PlanQuality(lq.Query, sys.est, truth)
			if err != nil {
				return fmt.Errorf("%s on %s: %w", sys.name, lq.Query.SQL(nil), err)
			}
			ratios[i] = append(ratios[i], ratio)
			if i == 0 && ratio <= 1+1e-9 {
				optimalAll++
			}
		}
	}
	fmt.Printf("\nplan quality on JOB-light (true C_out cost of chosen plan / optimal plan):\n\n")
	fmt.Print(optimizer.FormatComparison(names, ratios))
	fmt.Printf("\nDeep Sketch found the optimal join order for %d/%d queries\n", optimalAll, len(ratios[0]))
	fmt.Println("shape check: better estimates -> plans closer to optimal; the sketch should lead mean and tail.")
	return nil
}

// runLossAblation compares the paper's mean q-error objective against L1 in
// log space on identical data — a design-choice ablation for the loss
// function called out in DESIGN.md.
func runLossAblation(c *ctx) error {
	td, err := c.trainingData()
	if err != nil {
		return err
	}
	labeled, err := c.jobLightLabeled()
	if err != nil {
		return err
	}
	fmt.Println("\nJOB-light q-errors by training objective (identical data and budget):")
	rows := []metrics.Row{}
	for _, loss := range []struct {
		name string
		kind nn.LossKind
	}{
		{"mean q-error (paper)", nn.LossQError},
		{"L1 in log space", nn.LossL1Log},
	} {
		cfg := td.Cfg
		cfg.Model.Epochs = c.sc.epochs
		cfg.Model.Loss = loss.kind
		td2 := *td
		td2.Cfg = cfg
		sk, err := core.BuildFromData(&td2, nil)
		if err != nil {
			return err
		}
		qs, err := qerrsOf(labeled, sk.Cardinality)
		if err != nil {
			return err
		}
		rows = append(rows, metrics.Row{Name: loss.name, Summary: metrics.Summarize(qs)})
	}
	fmt.Print(metrics.FormatTable(rows))
	fmt.Println("\nshape check: both objectives train; the q-error loss targets the evaluation metric directly.")
	return nil
}
