// Benchmarks regenerating every table and figure of the paper at bench
// scale (see DESIGN.md §4 for the experiment index; cmd/experiments runs the
// full-scale versions). Accuracy numbers are attached to benchmark results
// via ReportMetric (q-error statistics), so `go test -bench=.` doubles as a
// shape check:
//
//	BenchmarkTable1JOBLight        Table 1  — sketch vs baselines on JOB-light
//	BenchmarkSketchCreationStages  Fig. 1a  — the four-step creation pipeline
//	BenchmarkTrainingEpochScaling  Fig. 1a/§3 — linear epoch scaling
//	BenchmarkTrainingQueryScaling  Fig. 1a/§3 — linear training-set scaling
//	BenchmarkEstimateLatency       Fig. 1b  — milliseconds per estimate
//	BenchmarkSketchFootprint       Fig. 1b/§1 — serialized size
//	BenchmarkTemplateQuery         Fig. 2   — template instantiation + estimation
//	BenchmarkZeroTuple             §2 claim — 0-tuple robustness
//	BenchmarkAblationBitmaps       §2 design — bitmaps on/off
//	BenchmarkTPCHSketch            demo scope — TPC-H estimates
package deepsketch_test

import (
	"context"
	"io"
	"sync"
	"testing"

	"deepsketch"
	"deepsketch/internal/core"
	"deepsketch/internal/estimator"
	"deepsketch/internal/featurize"
	"deepsketch/internal/metrics"
	"deepsketch/internal/mscn"
	"deepsketch/internal/optimizer"
	"deepsketch/internal/trainmon"
	"deepsketch/internal/workload"
)

// Bench fixture: one shared small-scale database, training data, sketch and
// labeled JOB-light workload. Built once; benchmarks time the operations on
// top of it.
type benchFixture struct {
	d        *deepsketch.DB
	td       *core.TrainingData
	sketch   *core.Sketch
	joblight []workload.LabeledQuery
	hyper    *estimator.Hyper
	pg       *estimator.Postgres
}

var (
	benchOnce sync.Once
	bf        *benchFixture
	benchErr  error
)

func fixtureB(b testing.TB) *benchFixture {
	b.Helper()
	benchOnce.Do(func() {
		d := deepsketch.NewIMDb(deepsketch.IMDbConfig{Seed: 17, Titles: 4000})
		cfg := core.Config{
			Name: "bench", SampleSize: 256, TrainQueries: 2500, MaxJoins: 4, Seed: 17,
			Model: mscn.Config{HiddenUnits: 32, Epochs: 10, BatchSize: 128, Seed: 17},
		}
		mon := trainmon.New()
		td, err := core.PrepareTrainingData(d, cfg, mon)
		if err != nil {
			benchErr = err
			return
		}
		sk, err := core.BuildFromData(td, mon)
		if err != nil {
			benchErr = err
			return
		}
		qs, err := workload.JOBLight(d, 17)
		if err != nil {
			benchErr = err
			return
		}
		labeled, err := workload.Label(d, qs, 0, nil)
		if err != nil {
			benchErr = err
			return
		}
		hyper, err := estimator.NewHyperWithSamples(d, sk.Samples)
		if err != nil {
			benchErr = err
			return
		}
		bf = &benchFixture{
			d: d, td: td, sketch: sk, joblight: labeled,
			hyper: hyper, pg: estimator.NewPostgres(d, estimator.PostgresOptions{}),
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return bf
}

func reportSummary(b *testing.B, prefix string, s metrics.Summary) {
	b.Helper()
	b.ReportMetric(s.Median, prefix+"_median_q")
	b.ReportMetric(s.Mean, prefix+"_mean_q")
	b.ReportMetric(s.P95, prefix+"_p95_q")
	b.ReportMetric(s.Max, prefix+"_max_q")
}

// BenchmarkTable1JOBLight regenerates Table 1 at bench scale: the timed
// operation is the full 70-query JOB-light evaluation of the sketch, and
// the reported metrics are the q-error statistics for all three systems.
func BenchmarkTable1JOBLight(b *testing.B) {
	f := fixtureB(b)
	var sketchQ, hyperQ, pgQ []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sketchQ = sketchQ[:0]
		for _, lq := range f.joblight {
			est, err := f.sketch.Cardinality(lq.Query)
			if err != nil {
				b.Fatal(err)
			}
			sketchQ = append(sketchQ, metrics.QError(est, float64(lq.Card)))
		}
	}
	b.StopTimer()
	for _, lq := range f.joblight {
		he, err := f.hyper.Cardinality(lq.Query)
		if err != nil {
			b.Fatal(err)
		}
		pe, err := f.pg.Cardinality(lq.Query)
		if err != nil {
			b.Fatal(err)
		}
		hyperQ = append(hyperQ, metrics.QError(he, float64(lq.Card)))
		pgQ = append(pgQ, metrics.QError(pe, float64(lq.Card)))
	}
	reportSummary(b, "sketch", metrics.Summarize(sketchQ))
	reportSummary(b, "hyper", metrics.Summarize(hyperQ))
	reportSummary(b, "pg", metrics.Summarize(pgQ))
}

// BenchmarkSketchCreationStages times the end-to-end four-step pipeline of
// Figure 1a on a small configuration.
func BenchmarkSketchCreationStages(b *testing.B) {
	d := deepsketch.NewIMDb(deepsketch.IMDbConfig{Seed: 3, Titles: 1500})
	cfg := core.Config{
		Name: "pipeline", SampleSize: 64, TrainQueries: 300, MaxJoins: 2, Seed: 3,
		Model: mscn.Config{HiddenUnits: 16, Epochs: 2, BatchSize: 64, Seed: 3},
	}
	b.ResetTimer()
	var last *core.Sketch
	for i := 0; i < b.N; i++ {
		s, err := core.Build(d, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	b.StopTimer()
	for stage, ms := range last.StageMillis {
		b.ReportMetric(float64(ms), string(stage)+"_ms")
	}
}

// BenchmarkTrainingEpochScaling shows training cost is linear in epochs
// (paper §3: "the training time decreases linearly with fewer epochs").
func BenchmarkTrainingEpochScaling(b *testing.B) {
	f := fixtureB(b)
	for _, epochs := range []int{2, 4, 8} {
		b.Run(benchName("epochs", epochs), func(b *testing.B) {
			cfg := f.td.Cfg
			cfg.Model.Epochs = epochs
			for i := 0; i < b.N; i++ {
				td := *f.td
				td.Cfg = cfg
				if _, err := core.BuildFromData(&td, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrainingQueryScaling shows training cost is linear in the
// training-set size.
func BenchmarkTrainingQueryScaling(b *testing.B) {
	f := fixtureB(b)
	for _, n := range []int{500, 1000, 2000} {
		b.Run(benchName("queries", n), func(b *testing.B) {
			if n > len(f.td.Examples) {
				b.Skipf("fixture has only %d examples", len(f.td.Examples))
			}
			cfg := f.td.Cfg
			cfg.Model.Epochs = 3
			for i := 0; i < b.N; i++ {
				td := *f.td
				td.Cfg = cfg
				td.Examples = f.td.Examples[:n]
				if _, err := core.BuildFromData(&td, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrainEpoch measures one epoch of packed data-parallel MSCN
// training on the fixture's prepared training data (the JOB-light-class
// workload the sketch trains on), serial vs sharded across 4 workers —
// step 4b of Figure 1a, the stage the paper's minutes-scale creation claim
// hinges on. On a single-core box p=4 measures sharding overhead only; the
// cross-core speedup needs GOMAXPROCS ≥ 4.
func BenchmarkTrainEpoch(b *testing.B) {
	f := fixtureB(b)
	enc := f.td.Encoder
	cfg := f.td.Cfg.Model
	cfg.Epochs = 1
	for _, p := range []int{1, 4} {
		b.Run(benchName("p", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := mscn.New(cfg, enc.TableDim(), enc.JoinDim(), enc.PredDim())
				if _, err := m.TrainWithOptions(f.td.Examples, enc.Norm, nil,
					mscn.TrainOptions{Parallelism: p}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEstimateLatency measures a single ad-hoc estimate (Figure 1b:
// "fast to query (within milliseconds)"). The loop cycles through JOB-light
// so caching cannot flatter the number. One sub-benchmark per inference
// engine precision, on a clone so the shared fixture stays f64.
func BenchmarkEstimateLatency(b *testing.B) {
	f := fixtureB(b)
	for _, eng := range []deepsketch.EnginePrecision{deepsketch.EngineF64, deepsketch.EngineF32} {
		sk := f.sketch.Clone()
		sk.SetEnginePrecision(eng)
		b.Run("engine="+eng.String(), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lq := f.joblight[i%len(f.joblight)]
				if _, err := sk.Cardinality(lq.Query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEstimateSQL includes SQL parsing against the embedded schema.
func BenchmarkEstimateSQL(b *testing.B) {
	f := fixtureB(b)
	sql := "SELECT COUNT(*) FROM title t, movie_keyword mk WHERE mk.movie_id=t.id AND t.production_year>2000"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.sketch.EstimateSQL(context.Background(), sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSketchFootprint serializes the sketch and reports its size
// (Figure 1b / §1: "small footprint size (a few MiBs)").
func BenchmarkSketchFootprint(b *testing.B) {
	f := fixtureB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.sketch.Save(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fb, err := f.sketch.Footprint()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(fb.Total), "bytes_total")
	b.ReportMetric(float64(fb.Weights), "bytes_weights")
	b.ReportMetric(float64(fb.Samples), "bytes_samples")
}

// BenchmarkTemplateQuery times the demo's template flow (Figure 2): expand
// the placeholder from the column sample and estimate every instance.
func BenchmarkTemplateQuery(b *testing.B) {
	f := fixtureB(b)
	tpl, err := workload.YearTemplate(f.d, "artificial-intelligence")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var res []core.TemplateResult
	for i := 0; i < b.N; i++ {
		res, err = f.sketch.EstimateTemplate(context.Background(), tpl, workload.GroupBuckets, 14)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var qs []float64
	for _, r := range res {
		truth, err := f.d.Count(r.Query)
		if err != nil {
			b.Fatal(err)
		}
		qs = append(qs, metrics.QError(r.Estimate, float64(truth)))
	}
	reportSummary(b, "series", metrics.Summarize(qs))
	b.ReportMetric(float64(len(res)), "instances")
}

// BenchmarkZeroTuple evaluates the §2 claim at bench scale: q-errors on
// mined 0-tuple queries for the sketch vs the sampling estimator's educated
// guess.
func BenchmarkZeroTuple(b *testing.B) {
	f := fixtureB(b)
	gen, err := workload.NewGenerator(f.d, workload.GenConfig{
		Seed: 99, Count: 1500, MaxJoins: 2, MaxPreds: 3, Dedup: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	var mined []workload.LabeledQuery
	for _, q := range gen.Generate() {
		zt, err := f.hyper.ZeroTuple(q)
		if err != nil {
			b.Fatal(err)
		}
		if !zt {
			continue
		}
		card, err := f.d.Count(q)
		if err != nil {
			b.Fatal(err)
		}
		mined = append(mined, workload.LabeledQuery{Query: q, Card: card})
		if len(mined) >= 50 {
			break
		}
	}
	if len(mined) == 0 {
		b.Skip("no 0-tuple queries at bench scale")
	}
	var sketchQ, hyperQ []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sketchQ = sketchQ[:0]
		for _, lq := range mined {
			est, err := f.sketch.Cardinality(lq.Query)
			if err != nil {
				b.Fatal(err)
			}
			sketchQ = append(sketchQ, metrics.QError(est, float64(lq.Card)))
		}
	}
	b.StopTimer()
	for _, lq := range mined {
		he, err := f.hyper.Cardinality(lq.Query)
		if err != nil {
			b.Fatal(err)
		}
		hyperQ = append(hyperQ, metrics.QError(he, float64(lq.Card)))
	}
	b.ReportMetric(float64(len(mined)), "queries")
	reportSummary(b, "sketch", metrics.Summarize(sketchQ))
	reportSummary(b, "hyper", metrics.Summarize(hyperQ))
}

// BenchmarkAblationBitmaps trains the MSCN with and without sample bitmaps
// on the fixture's training data and reports JOB-light accuracy for both —
// the design-choice ablation of DESIGN.md/E8.
func BenchmarkAblationBitmaps(b *testing.B) {
	f := fixtureB(b)
	b.Run("with-bitmaps", func(b *testing.B) {
		var qerrs []float64
		for i := 0; i < b.N; i++ {
			cfg := f.td.Cfg
			cfg.Model.Epochs = 6
			td := *f.td
			td.Cfg = cfg
			sk, err := core.BuildFromData(&td, nil)
			if err != nil {
				b.Fatal(err)
			}
			qerrs, err = qerrsJOBLight(f, sk.Cardinality)
			if err != nil {
				b.Fatal(err)
			}
		}
		reportSummary(b, "with", metrics.Summarize(qerrs))
	})
	b.Run("without-bitmaps", func(b *testing.B) {
		var qerrs []float64
		for i := 0; i < b.N; i++ {
			var err error
			qerrs, err = trainAndEvalNoBitmaps(f)
			if err != nil {
				b.Fatal(err)
			}
		}
		reportSummary(b, "without", metrics.Summarize(qerrs))
	})
}

// BenchmarkTPCHSketch measures estimation over a TPC-H sketch (the demo's
// second dataset).
func BenchmarkTPCHSketch(b *testing.B) {
	d := deepsketch.NewTPCH(deepsketch.TPCHConfig{Seed: 5, Orders: 3000})
	cfg := core.Config{
		Name: "tpch-bench", SampleSize: 128, TrainQueries: 1200, MaxJoins: 3, Seed: 5,
		Model: mscn.Config{HiddenUnits: 24, Epochs: 8, BatchSize: 128, Seed: 5},
	}
	sk, err := core.Build(d, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewGenerator(d, workload.GenConfig{Seed: 55, Count: 100, MaxJoins: 3, MaxPreds: 3})
	if err != nil {
		b.Fatal(err)
	}
	labeled, err := workload.Label(d, gen.Generate(), 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	var qs []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qs = qs[:0]
		for _, lq := range labeled {
			est, err := sk.Cardinality(lq.Query)
			if err != nil {
				b.Fatal(err)
			}
			qs = append(qs, metrics.QError(est, float64(lq.Card)))
		}
	}
	b.StopTimer()
	reportSummary(b, "tpch", metrics.Summarize(qs))
}

// BenchmarkPlanQuality drives the DP join enumerator with each estimator's
// cardinalities on the multi-join JOB-light queries and reports how far the
// chosen plans are from optimal under true costs (extension experiment E11).
func BenchmarkPlanQuality(b *testing.B) {
	f := fixtureB(b)
	truth := func(q deepsketch.Query) (float64, error) {
		c, err := f.d.Count(q)
		return float64(c), err
	}
	var queries []workload.LabeledQuery
	for _, lq := range f.joblight {
		if len(lq.Query.Tables) >= 3 {
			queries = append(queries, lq)
		}
	}
	if len(queries) > 20 {
		queries = queries[:20]
	}
	var sketchRatios, pgRatios []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sketchRatios = sketchRatios[:0]
		for _, lq := range queries {
			ratio, _, _, err := optimizer.PlanQuality(lq.Query, f.sketch.Cardinality, truth)
			if err != nil {
				b.Fatal(err)
			}
			sketchRatios = append(sketchRatios, ratio)
		}
	}
	b.StopTimer()
	for _, lq := range queries {
		ratio, _, _, err := optimizer.PlanQuality(lq.Query, f.pg.Cardinality, truth)
		if err != nil {
			b.Fatal(err)
		}
		pgRatios = append(pgRatios, ratio)
	}
	b.ReportMetric(metrics.Summarize(sketchRatios).Mean, "sketch_mean_ratio")
	b.ReportMetric(metrics.Summarize(sketchRatios).Max, "sketch_max_ratio")
	b.ReportMetric(metrics.Summarize(pgRatios).Mean, "pg_mean_ratio")
	b.ReportMetric(metrics.Summarize(pgRatios).Max, "pg_max_ratio")
}

func qerrsJOBLight(f *benchFixture, est func(deepsketch.Query) (float64, error)) ([]float64, error) {
	out := make([]float64, 0, len(f.joblight))
	for _, lq := range f.joblight {
		v, err := est(lq.Query)
		if err != nil {
			return nil, err
		}
		out = append(out, metrics.QError(v, float64(lq.Card)))
	}
	return out, nil
}

func trainAndEvalNoBitmaps(f *benchFixture) ([]float64, error) {
	enc, err := featurize.NewEncoder(f.d, f.td.Cfg.Tables, 0)
	if err != nil {
		return nil, err
	}
	cards := make([]int64, len(f.td.Labeled))
	for i, lq := range f.td.Labeled {
		cards[i] = lq.Card
	}
	enc.FitLabels(cards)
	cfg := f.td.Cfg.Model
	cfg.Epochs = 6
	if cfg.Seed == 0 {
		cfg.Seed = 17
	}
	model := mscn.New(cfg, enc.TableDim(), enc.JoinDim(), enc.PredDim())
	examples := make([]mscn.Example, len(f.td.Labeled))
	for i, lq := range f.td.Labeled {
		e, err := enc.EncodeQuery(lq.Query, nil)
		if err != nil {
			return nil, err
		}
		examples[i] = mscn.Example{Enc: e, Card: lq.Card}
	}
	if _, err := model.Train(examples, enc.Norm, nil); err != nil {
		return nil, err
	}
	out := make([]float64, 0, len(f.joblight))
	for _, lq := range f.joblight {
		e, err := enc.EncodeQuery(lq.Query, nil)
		if err != nil {
			return nil, err
		}
		y, err := model.Predict(e)
		if err != nil {
			return nil, err
		}
		out = append(out, metrics.QError(enc.Norm.Denormalize(y), float64(lq.Card)))
	}
	return out, nil
}

func benchName(key string, v int) string {
	return key + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkServeConcurrent measures serving throughput at 64 concurrent
// clients cycling the JOB-light workload. Three modes: naive per-request
// Estimate (one MSCN forward pass per request), the bare coalescer
// (concurrent requests of any shapes merged into one packed ragged-batch
// forward pass on the inference engine — no shape grouping, no padding, so
// batching wins even on a single core), and the serve stack as deepsketchd
// deploys it (LRU cache over the coalescer), where the cache absorbs the
// hot-query repeats that dominate serving traffic. One benchmark iteration
// = one served request; compare ns/op (≈ inverse throughput).
func BenchmarkServeConcurrent(b *testing.B) {
	f := fixtureB(b)
	const clients = 64
	queries := make([]deepsketch.Query, len(f.joblight))
	for i, lq := range f.joblight {
		queries[i] = lq.Query
	}
	bench := func(est deepsketch.Estimator) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			var wg sync.WaitGroup
			reqs := make(chan int)
			failed := make(chan error, 1)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range reqs {
						if _, err := est.Estimate(context.Background(), queries[i%len(queries)]); err != nil {
							select {
							case failed <- err:
							default:
							}
							return
						}
					}
				}()
			}
			b.ResetTimer()
		feed:
			for i := 0; i < b.N; i++ {
				select {
				case reqs <- i:
				case err := <-failed:
					// A dead worker must not leave the feeder blocked on an
					// unbuffered send with no receivers.
					close(reqs)
					wg.Wait()
					b.Fatal(err)
					break feed
				}
			}
			close(reqs)
			wg.Wait()
			b.StopTimer()
			select {
			case err := <-failed:
				b.Fatal(err)
			default:
			}
		}
	}
	b.Run("naive-per-request", bench(f.sketch))
	co := deepsketch.NewCoalescer(f.sketch, deepsketch.CoalesceOptions{})
	defer co.Close()
	b.Run("coalesced", bench(co))
	co2 := deepsketch.NewCoalescer(f.sketch, deepsketch.CoalesceOptions{})
	defer co2.Close()
	b.Run("serve-stack", bench(deepsketch.WithCache(co2, 1024)))
}
