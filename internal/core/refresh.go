package core

import (
	"context"
	"fmt"

	"deepsketch/internal/mscn"
	"deepsketch/internal/trainmon"
	"deepsketch/internal/workload"
)

// Clone returns a deep copy of the sketch suitable for offline fine-tuning
// while the original keeps serving: the model (weights + optimizer state)
// is copied, the encoder and samples are shared — both are immutable after
// creation — and the training record is duplicated. The clone builds its
// own inference engine on first use.
func (s *Sketch) Clone() *Sketch {
	return &Sketch{
		Cfg:         s.Cfg,
		Encoder:     s.Encoder,
		Model:       s.Model.Clone(),
		Samples:     s.Samples,
		Epochs:      append([]mscn.EpochStats(nil), s.Epochs...),
		StageMillis: s.StageMillis,
		DBName:      s.DBName,
	}
}

// RefreshOptions tunes a warm-start refresh (see Refresh).
type RefreshOptions struct {
	// Epochs caps the fine-tune epoch budget; 0 uses the sketch's
	// configured (full-build) epoch count.
	Epochs int
	// StopAtValQ stops the fine-tune early once the validation mean
	// q-error reaches this value or better (0 disables) — "train until as
	// good as before" instead of a fixed budget.
	StopAtValQ float64
	// Workers bounds the data-parallel training shards; 0 uses the
	// sketch's configured worker count (which itself defaults to
	// GOMAXPROCS).
	Workers int
}

// Refresh warm-start retrains a sketch on a drift-delta workload and
// returns the refreshed sketch, leaving the receiver untouched — the caller
// (typically a lifecycle.Registry) swaps the result in under traffic.
//
// The delta workload is featurized with the sketch's existing encoder and
// embedded samples: vocabulary, feature widths and label normalization stay
// fixed, so the fine-tuned model remains drop-in compatible with the
// serving path. Training resumes from the sketch's captured Adam state
// (moments + step count); a sketch loaded from a v1 file has none, and
// fine-tunes from warm weights with a cold optimizer instead. Either way a
// delta workload reaches the old validation quality in a fraction of a
// full build's epochs.
//
// ctx is checked between the featurize and train stages; the fine-tune
// itself runs to completion once started.
func Refresh(ctx context.Context, s *Sketch, labeled []workload.LabeledQuery, opts RefreshOptions, mon *trainmon.Monitor) (*Sketch, error) {
	if len(labeled) == 0 {
		return nil, fmt.Errorf("core: refresh needs a non-empty delta workload")
	}
	if mon == nil {
		mon = trainmon.New()
	}
	schema := s.SchemaDB()
	for i, lq := range labeled {
		if err := schema.ValidateQuery(lq.Query); err != nil {
			return nil, fmt.Errorf("core: delta workload query %d: %w", i, err)
		}
	}

	mon.StartStage(trainmon.StageFeaturize, fmt.Sprintf("featurizing %d delta queries", len(labeled)))
	examples := make([]mscn.Example, len(labeled))
	for i, lq := range labeled {
		bms, err := s.Samples.Bitmaps(lq.Query)
		if err != nil {
			return nil, err
		}
		enc, err := s.Encoder.EncodeQuery(lq.Query, bms)
		if err != nil {
			return nil, err
		}
		examples[i] = mscn.Example{Enc: enc, Card: lq.Card}
	}
	mon.EndStage(trainmon.StageFeaturize)

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	workers := opts.Workers
	if workers == 0 {
		workers = s.Cfg.Workers
	}
	ns := s.Clone()
	mon.StartStage(trainmon.StageTrain, "fine-tuning MSCN (warm start)")
	stats, err := ns.Model.TrainWithOptions(examples, ns.Encoder.Norm, mon, mscn.TrainOptions{
		Parallelism: workers,
		Resume:      ns.Model.OptState(),
		Epochs:      opts.Epochs,
		StopAtValQ:  opts.StopAtValQ,
		// Overlap each epoch's validation with the next epoch's training —
		// StopAtValQ refreshes validate every epoch, and the pipelined
		// schedule is bitwise-identical to the serial one.
		PipelineVal: true,
	})
	if err != nil {
		return nil, err
	}
	mon.EndStage(trainmon.StageTrain)
	ns.Epochs = append(ns.Epochs, stats...)
	return ns, nil
}
