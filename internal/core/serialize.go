package core

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"deepsketch/internal/db"
	"deepsketch/internal/featurize"
	"deepsketch/internal/mscn"
	"deepsketch/internal/nn"
	"deepsketch/internal/sample"
	"deepsketch/internal/trainmon"
)

// Serialized sketch format (all integers little-endian):
//
//	magic   "DSKB"
//	version uint32 (currently 2)
//	header  uint32 length + JSON (name, config, encoder, training record)
//	weights nn parameter blocks (see nn.WriteParams)
//	samples per-table columnar dumps, dictionaries included
//	opt     v2 only: uint8 flag, then Adam moments + step count when 1
//	        (see nn.WriteOptState) — what warm-start Refresh resumes from
//
// Version 1 files (no optimizer trailer) still Load; their sketches refresh
// with warm weights but a cold optimizer. The footprint of the whole file
// is the paper's "small footprint size (a few MiBs)" figure, dominated by
// the model weights and the samples.
const (
	sketchMagic   = "DSKB"
	sketchVersion = 2
)

type header struct {
	Name        string                 `json:"name"`
	DBName      string                 `json:"db_name"`
	Cfg         Config                 `json:"config"`
	Encoder     *featurize.Encoder     `json:"encoder"`
	Epochs      []mscn.EpochStats      `json:"epochs"`
	StageMillis map[trainmon.Stage]int `json:"stage_ms"`
	SampleSize  int                    `json:"sample_set_size"`
}

// Save writes the sketch in the serialized format.
func (s *Sketch) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(sketchMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(sketchVersion)); err != nil {
		return err
	}
	hdr := header{
		Name: s.Name(), DBName: s.DBName, Cfg: s.Cfg, Encoder: s.Encoder,
		Epochs: s.Epochs, StageMillis: s.StageMillis, SampleSize: s.Samples.Size,
	}
	blob, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("core: marshal header: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(blob))); err != nil {
		return err
	}
	if _, err := bw.Write(blob); err != nil {
		return err
	}
	if err := s.Model.WriteWeights(bw); err != nil {
		return err
	}
	if err := writeSamples(bw, s.Samples, s.Cfg.Tables); err != nil {
		return err
	}
	if err := writeOptTrailer(bw, s.Model); err != nil {
		return err
	}
	return bw.Flush()
}

// writeOptTrailer writes the v2 optimizer-state section: a presence flag,
// then the serialized Adam state for models that have been trained in (or
// restored into) this process.
func writeOptTrailer(w io.Writer, m *mscn.Model) error {
	st := m.OptState()
	if st == nil {
		_, err := w.Write([]byte{0})
		return err
	}
	if _, err := w.Write([]byte{1}); err != nil {
		return err
	}
	return nn.WriteOptState(w, st)
}

// Load reads a sketch written by Save and reconstructs the model.
func Load(r io.Reader) (*Sketch, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: read magic: %w", err)
	}
	if string(magic) != sketchMagic {
		return nil, fmt.Errorf("core: not a sketch file (magic %q)", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version < 1 || version > sketchVersion {
		return nil, fmt.Errorf("core: unsupported sketch version %d", version)
	}
	var hdrLen uint32
	if err := binary.Read(br, binary.LittleEndian, &hdrLen); err != nil {
		return nil, err
	}
	blob := make([]byte, hdrLen)
	if _, err := io.ReadFull(br, blob); err != nil {
		return nil, err
	}
	var hdr header
	if err := json.Unmarshal(blob, &hdr); err != nil {
		return nil, fmt.Errorf("core: unmarshal header: %w", err)
	}
	if hdr.Encoder == nil {
		return nil, fmt.Errorf("core: header missing encoder")
	}
	modelCfg := hdr.Cfg.Model
	if modelCfg.Seed == 0 {
		modelCfg.Seed = hdr.Cfg.Seed
	}
	model := mscn.New(modelCfg, hdr.Encoder.TableDim(), hdr.Encoder.JoinDim(), hdr.Encoder.PredDim())
	if err := model.ReadWeights(br); err != nil {
		return nil, err
	}
	samples, err := readSamples(br, hdr.SampleSize)
	if err != nil {
		return nil, err
	}
	if version >= 2 {
		var flag [1]byte
		if _, err := io.ReadFull(br, flag[:]); err != nil {
			return nil, fmt.Errorf("core: read opt-state flag: %w", err)
		}
		if flag[0] == 1 {
			st, err := nn.ReadOptState(br, model.Params())
			if err != nil {
				return nil, err
			}
			model.SetOptState(st)
		}
	}
	cfg := hdr.Cfg
	if cfg.Name == "" {
		cfg.Name = hdr.Name
	}
	return &Sketch{
		Cfg: cfg, Encoder: hdr.Encoder, Model: model,
		Samples: samples, Epochs: hdr.Epochs, StageMillis: hdr.StageMillis,
		DBName: hdr.DBName,
	}, nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("core: string length %d too large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeSamples(w io.Writer, set *sample.Set, order []string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(order))); err != nil {
		return err
	}
	for _, name := range order {
		ts := set.For(name)
		if ts == nil {
			return fmt.Errorf("core: missing sample for %s", name)
		}
		if err := writeString(w, ts.Table); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint64(ts.SourceRows)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(ts.Rows)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(ts.Data.Cols))); err != nil {
			return err
		}
		for _, c := range ts.Data.Cols {
			if err := writeString(w, c.Name); err != nil {
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, uint8(c.Type)); err != nil {
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, uint32(len(c.Dict))); err != nil {
				return err
			}
			for _, s := range c.Dict {
				if err := writeString(w, s); err != nil {
					return err
				}
			}
			if err := binary.Write(w, binary.LittleEndian, c.Vals); err != nil {
				return err
			}
		}
	}
	return nil
}

func readSamples(r io.Reader, size int) (*sample.Set, error) {
	var nTables uint32
	if err := binary.Read(r, binary.LittleEndian, &nTables); err != nil {
		return nil, err
	}
	set := &sample.Set{Size: size, Samples: make(map[string]*sample.TableSample, nTables)}
	for ti := uint32(0); ti < nTables; ti++ {
		name, err := readString(r)
		if err != nil {
			return nil, err
		}
		var sourceRows uint64
		if err := binary.Read(r, binary.LittleEndian, &sourceRows); err != nil {
			return nil, err
		}
		var rows, nCols uint32
		if err := binary.Read(r, binary.LittleEndian, &rows); err != nil {
			return nil, err
		}
		if err := binary.Read(r, binary.LittleEndian, &nCols); err != nil {
			return nil, err
		}
		cols := make([]*db.Column, nCols)
		for ci := uint32(0); ci < nCols; ci++ {
			colName, err := readString(r)
			if err != nil {
				return nil, err
			}
			var typ uint8
			if err := binary.Read(r, binary.LittleEndian, &typ); err != nil {
				return nil, err
			}
			var dictLen uint32
			if err := binary.Read(r, binary.LittleEndian, &dictLen); err != nil {
				return nil, err
			}
			dict := make([]string, dictLen)
			for di := range dict {
				if dict[di], err = readString(r); err != nil {
					return nil, err
				}
			}
			vals := make([]int64, rows)
			if err := binary.Read(r, binary.LittleEndian, vals); err != nil {
				return nil, err
			}
			if db.ColType(typ) == db.ColString {
				cols[ci] = db.NewStringColumn(colName, vals, dict)
			} else {
				cols[ci] = db.NewIntColumn(colName, vals)
			}
		}
		data, err := db.NewTable(name, cols...)
		if err != nil {
			return nil, err
		}
		set.Samples[name] = &sample.TableSample{
			Table: name, Rows: int(rows), Data: data, SourceRows: int(sourceRows),
		}
	}
	return set, nil
}

// FootprintBreakdown reports the serialized size of each sketch component.
type FootprintBreakdown struct {
	Total   int64
	Header  int64
	Weights int64
	Samples int64
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// Footprint measures the serialized sketch size without materializing it —
// the "few MiBs" figure from the paper's introduction.
func (s *Sketch) Footprint() (FootprintBreakdown, error) {
	var fb FootprintBreakdown

	var hdrC countWriter
	hdr := header{
		Name: s.Name(), DBName: s.DBName, Cfg: s.Cfg, Encoder: s.Encoder,
		Epochs: s.Epochs, StageMillis: s.StageMillis, SampleSize: s.Samples.Size,
	}
	blob, err := json.Marshal(hdr)
	if err != nil {
		return fb, err
	}
	hdrC.n = int64(len(blob)) + 12 // magic + version + length prefix

	var wC countWriter
	if err := s.Model.WriteWeights(&wC); err != nil {
		return fb, err
	}
	// The optimizer trailer is model state; count it with the weights.
	if err := writeOptTrailer(&wC, s.Model); err != nil {
		return fb, err
	}
	var sC countWriter
	if err := writeSamples(&sC, s.Samples, s.Cfg.Tables); err != nil {
		return fb, err
	}
	fb.Header = hdrC.n
	fb.Weights = wC.n
	fb.Samples = sC.n
	fb.Total = fb.Header + fb.Weights + fb.Samples
	return fb, nil
}
