package core

import (
	"fmt"

	"deepsketch/internal/db"
	"deepsketch/internal/featurize"
	"deepsketch/internal/mscn"
	"deepsketch/internal/sample"
	"deepsketch/internal/trainmon"
	"deepsketch/internal/workload"
)

// TrainingData is the output of the data half of the creation pipeline
// (steps 1–4a of Figure 1a): materialized samples, the fitted encoder, and
// featurized, labeled training examples. Sweep experiments (training-set
// size, epoch counts, ablations) prepare data once and train many models on
// it.
type TrainingData struct {
	Cfg      Config
	Encoder  *featurize.Encoder
	Samples  *sample.Set
	Examples []mscn.Example
	Labeled  []workload.LabeledQuery
	DBName   string
}

// PrepareTrainingData runs steps 1–4a: validate, generate uniform training
// queries, execute them against the database (true cardinalities, in
// parallel) and against fresh materialized samples (bitmaps), then
// featurize.
func PrepareTrainingData(d *db.DB, cfg Config, mon *trainmon.Monitor) (*TrainingData, error) {
	// Step 1: define — validate the table set and parameters.
	mon.StartStage(trainmon.StageDefine, "validating configuration")
	cfg = cfg.withDefaults(d)
	if err := validateConfig(d, cfg); err != nil {
		return nil, err
	}
	mon.EndStage(trainmon.StageDefine)

	// Step 2: generate uniformly distributed training queries.
	mon.StartStage(trainmon.StageGenerate, fmt.Sprintf("generating %d training queries", cfg.TrainQueries))
	gen, err := workload.NewGenerator(d, workload.GenConfig{
		Seed: cfg.Seed, Count: cfg.TrainQueries, Tables: cfg.Tables,
		MaxJoins: cfg.MaxJoins, MaxPreds: cfg.MaxPreds, Dedup: true,
	})
	if err != nil {
		return nil, err
	}
	queries := gen.Generate()
	if len(queries) < 10 {
		return nil, fmt.Errorf("core: generated only %d distinct queries", len(queries))
	}
	mon.Progress(trainmon.StageGenerate, len(queries), len(queries))
	mon.EndStage(trainmon.StageGenerate)

	// Step 3: execute — obtain true cardinalities in parallel (the demo's
	// "multiple HyPer instances").
	mon.StartStage(trainmon.StageExecute, "executing training queries")
	total := len(queries)
	labeled, err := workload.Label(d, queries, cfg.Workers, func(done int) {
		if done%256 == 0 || done == total {
			mon.Progress(trainmon.StageExecute, done, total)
		}
	})
	if err != nil {
		return nil, err
	}
	return prepareFromLabeled(d, cfg, labeled, mon)
}

// PrepareTrainingDataFromWorkload runs the pipeline with a pre-labeled
// workload (e.g. loaded from an artifact-format file), skipping query
// generation and execution — the demo's separation between the expensive
// label collection and (repeatable) training.
func PrepareTrainingDataFromWorkload(d *db.DB, cfg Config, labeled []workload.LabeledQuery, mon *trainmon.Monitor) (*TrainingData, error) {
	if mon == nil {
		mon = trainmon.New()
	}
	mon.StartStage(trainmon.StageDefine, "validating configuration")
	cfg = cfg.withDefaults(d)
	cfg.TrainQueries = len(labeled)
	if err := validateConfig(d, cfg); err != nil {
		return nil, err
	}
	for i, lq := range labeled {
		if err := d.ValidateQuery(lq.Query); err != nil {
			return nil, fmt.Errorf("core: workload query %d: %w", i, err)
		}
	}
	mon.EndStage(trainmon.StageDefine)
	mon.StartStage(trainmon.StageExecute, "evaluating workload against samples")
	return prepareFromLabeled(d, cfg, labeled, mon)
}

func validateConfig(d *db.DB, cfg Config) error {
	for _, t := range cfg.Tables {
		if d.Table(t) == nil {
			return fmt.Errorf("core: unknown table %s", t)
		}
	}
	if cfg.SampleSize < 1 {
		return fmt.Errorf("core: sample size must be >= 1, got %d", cfg.SampleSize)
	}
	if cfg.TrainQueries < 10 {
		return fmt.Errorf("core: need at least 10 training queries, got %d", cfg.TrainQueries)
	}
	return nil
}

// prepareFromLabeled finishes step 3 (samples + bitmaps) and runs step 4a
// (featurization) for an already-labeled workload. The execute stage must
// already be started on mon.
func prepareFromLabeled(d *db.DB, cfg Config, labeled []workload.LabeledQuery, mon *trainmon.Monitor) (*TrainingData, error) {
	samples, err := sample.New(d, cfg.Tables, cfg.SampleSize, cfg.Seed)
	if err != nil {
		return nil, err
	}
	bitmaps := make([]map[string]sample.Bitmap, len(labeled))
	for i, lq := range labeled {
		bm, err := samples.Bitmaps(lq.Query)
		if err != nil {
			return nil, err
		}
		bitmaps[i] = bm
	}
	mon.EndStage(trainmon.StageExecute)

	// Step 4a: featurize queries and bitmaps, fit label normalization.
	mon.StartStage(trainmon.StageFeaturize, "featurizing queries and bitmaps")
	enc, err := featurize.NewEncoder(d, cfg.Tables, cfg.SampleSize)
	if err != nil {
		return nil, err
	}
	cards := make([]int64, len(labeled))
	for i, lq := range labeled {
		cards[i] = lq.Card
	}
	enc.FitLabels(cards)
	examples := make([]mscn.Example, len(labeled))
	for i, lq := range labeled {
		e, err := enc.EncodeQuery(lq.Query, bitmaps[i])
		if err != nil {
			return nil, err
		}
		examples[i] = mscn.Example{Enc: e, Card: lq.Card}
	}
	mon.EndStage(trainmon.StageFeaturize)

	return &TrainingData{
		Cfg: cfg, Encoder: enc, Samples: samples,
		Examples: examples, Labeled: labeled, DBName: d.Name,
	}, nil
}

// BuildFromData runs step 4b (training) on prepared data and assembles the
// sketch.
func BuildFromData(td *TrainingData, mon *trainmon.Monitor) (*Sketch, error) {
	if mon == nil {
		mon = trainmon.New()
	}
	mon.StartStage(trainmon.StageTrain, "training MSCN")
	cfg := td.Cfg
	modelCfg := cfg.Model
	if modelCfg.Seed == 0 {
		modelCfg.Seed = cfg.Seed
	}
	enc := td.Encoder
	model := mscn.New(modelCfg, enc.TableDim(), enc.JoinDim(), enc.PredDim())
	// Cfg.Workers bounds every parallel stage of sketch creation: query
	// labeling earlier, data-parallel training here (0 = GOMAXPROCS).
	stats, err := model.TrainWithOptions(td.Examples, enc.Norm, mon,
		mscn.TrainOptions{Parallelism: cfg.Workers, PipelineVal: true})
	if err != nil {
		return nil, err
	}
	mon.EndStage(trainmon.StageTrain)

	return &Sketch{
		Cfg:         cfg,
		Encoder:     enc,
		Model:       model,
		Samples:     td.Samples,
		Epochs:      stats,
		StageMillis: mon.Snapshot().StageTimes,
		DBName:      td.DBName,
	}, nil
}

// Build creates a Deep Sketch from a database, executing the four-step
// pipeline of Figure 1a. mon (optional) receives stage, progress, and
// per-epoch events, which is what the demo UI renders while users "monitor
// the training progress".
func Build(d *db.DB, cfg Config, mon *trainmon.Monitor) (*Sketch, error) {
	if mon == nil {
		mon = trainmon.New()
	}
	td, err := PrepareTrainingData(d, cfg, mon)
	if err != nil {
		return nil, err
	}
	return BuildFromData(td, mon)
}

// BuildWithWorkload creates a sketch from a pre-labeled workload instead of
// generating and executing queries.
func BuildWithWorkload(d *db.DB, cfg Config, labeled []workload.LabeledQuery, mon *trainmon.Monitor) (*Sketch, error) {
	if mon == nil {
		mon = trainmon.New()
	}
	td, err := PrepareTrainingDataFromWorkload(d, cfg, labeled, mon)
	if err != nil {
		return nil, err
	}
	return BuildFromData(td, mon)
}
