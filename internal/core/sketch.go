// Package core implements Deep Sketches, the paper's contribution: "compact
// model-based representations of databases that allow us to estimate the
// result sizes of SQL queries. A Deep Sketch is essentially a wrapper for a
// (serialized) neural network and a set of materialized samples."
//
// A sketch is created from a database in the four steps of Figure 1a
// (define, generate training queries, execute them, featurize + train) and
// afterwards answers cardinality estimates for ad-hoc queries without
// touching the database again (Figure 1b): base-table selections run
// against the embedded samples to produce bitmaps, the query is featurized,
// and one MSCN forward pass yields the estimate.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"deepsketch/internal/db"
	"deepsketch/internal/estimator"
	"deepsketch/internal/featurize"
	"deepsketch/internal/mscn"
	"deepsketch/internal/sample"
	"deepsketch/internal/sqlparse"
	"deepsketch/internal/trainmon"
	"deepsketch/internal/workload"
)

// Config is what a user chooses in step 1 of sketch creation: "select a
// subset of tables and define a few parameters such as the number of
// training queries".
type Config struct {
	// Name labels the sketch (shown by the demo UI / CLI).
	Name string `json:"name"`
	// Tables is the table subset the sketch covers; nil means every table.
	Tables []string `json:"tables"`
	// SampleSize is the number of materialized sample tuples per base table
	// (the paper's example: 1000).
	SampleSize int `json:"sample_size"`
	// TrainQueries is the number of generated training queries; "for a
	// small number of tables, 10,000 queries will already be sufficient".
	TrainQueries int `json:"train_queries"`
	// MaxJoins caps join depth of generated training queries. 0 defaults to
	// min(4, #tables−1), covering the JOB-light query class.
	MaxJoins int `json:"max_joins"`
	// MaxPreds caps selections per training query (default 3).
	MaxPreds int `json:"max_preds"`
	// Workers bounds the parallel stages of sketch creation: training-query
	// execution (the paper's "multiple HyPer instances") and the
	// data-parallel minibatch sharding of MSCN training
	// (mscn.TrainOptions.Parallelism); 0 uses GOMAXPROCS.
	Workers int `json:"workers"`
	// Seed drives query generation, sampling and training determinism.
	Seed int64 `json:"seed"`
	// Model holds the MSCN hyperparameters (epochs are step 1's "number of
	// training epochs").
	Model mscn.Config `json:"model"`
}

func (c Config) withDefaults(d *db.DB) Config {
	if c.Name == "" {
		c.Name = d.Name
	}
	if c.Tables == nil {
		c.Tables = d.TableNames()
	}
	if c.SampleSize == 0 {
		c.SampleSize = 1000
	}
	if c.TrainQueries == 0 {
		c.TrainQueries = 10000
	}
	if c.MaxJoins == 0 {
		c.MaxJoins = len(c.Tables) - 1
		if c.MaxJoins > 4 {
			c.MaxJoins = 4
		}
		if c.MaxJoins < 1 {
			c.MaxJoins = 1
		}
	}
	if c.MaxPreds == 0 {
		c.MaxPreds = 3
	}
	return c
}

// Sketch is a trained Deep Sketch. It is self-contained: estimation needs no
// access to the original database. "The interface of a sketch is very
// simple, it consumes a SQL query and returns a cardinality estimate" —
// concretely, Sketch implements estimator.Estimator, so it drops into
// routers, serving stacks and evaluation harnesses next to every other
// backend.
type Sketch struct {
	// Cfg records the creation parameters (including the sketch name).
	Cfg Config
	// Encoder holds the featurization vocabulary and normalizers.
	Encoder *featurize.Encoder
	// Model is the trained MSCN.
	Model *mscn.Model
	// Samples are the embedded materialized samples.
	Samples *sample.Set
	// Epochs records per-epoch training metrics.
	Epochs []mscn.EpochStats
	// StageMillis records the Figure 1a stage durations.
	StageMillis map[trainmon.Stage]int
	// DBName is the source database name (imdb, tpch, ...).
	DBName string

	schemaOnce sync.Once
	schema     *db.DB // lazily built from samples, for SQL parsing
}

var _ estimator.Estimator = (*Sketch)(nil)

// Name implements estimator.Estimator with the sketch's configured name.
func (s *Sketch) Name() string { return s.Cfg.Name }

// SetEnginePrecision selects the numeric format of the sketch's MSCN
// inference engine (f64 reference, f32, or the experimental int8). Safe to
// call on a serving sketch; in-flight estimates finish on the precision
// they started with. Estimates are tagged with the precision that computed
// them (Estimate.Engine).
func (s *Sketch) SetEnginePrecision(p mscn.Precision) { s.Model.SetPrecision(p) }

// EnginePrecision reports the current inference precision.
func (s *Sketch) EnginePrecision() mscn.Precision { return s.Model.Precision() }

// Estimate implements the sketch interface of Figure 1b for an already-
// parsed query: evaluate base-table selections on the embedded samples,
// featurize, one MSCN forward pass, denormalize. It implements
// estimator.Estimator.
func (s *Sketch) Estimate(ctx context.Context, q db.Query) (estimator.Estimate, error) {
	est, err := estimator.Run(ctx, s.Name(), q, s.Cardinality)
	if err != nil {
		return est, err
	}
	est.Engine = s.Model.Precision().String()
	return est, nil
}

// Cardinality is the bare estimation path of Figure 1b, without the result
// envelope: bitmaps, featurize, one packed MSCN forward pass on the
// inference engine (pooled workspace, no padding, no steady-state
// allocations in the forward), denormalize.
func (s *Sketch) Cardinality(q db.Query) (float64, error) {
	bms, err := s.Samples.Bitmaps(q)
	if err != nil {
		return 0, err
	}
	enc, err := s.Encoder.EncodeQuery(q, bms)
	if err != nil {
		return 0, err
	}
	y, err := s.Model.Engine().Predict(enc)
	if err != nil {
		return 0, err
	}
	return s.Encoder.Norm.Denormalize(y), nil
}

// EstimateBatch implements estimator.Estimator with batched MSCN inference:
// queries featurize directly into packed inference batches and predict in
// chunked forward passes. Results match Estimate query-by-query; ctx is
// checked before each chunk, so a cancellation mid-batch aborts within one
// chunk's featurize+forward work. Per-query Latency is the amortized batch
// time.
func (s *Sketch) EstimateBatch(ctx context.Context, qs []db.Query) ([]estimator.Estimate, error) {
	start := time.Now()
	cards, err := s.BatchCardinalities(ctx, qs)
	if err != nil {
		return nil, err
	}
	per := time.Duration(0)
	if len(qs) > 0 {
		per = time.Since(start) / time.Duration(len(qs))
	}
	out := make([]estimator.Estimate, len(cards))
	engine := s.Model.Precision().String()
	for i, c := range cards {
		out[i] = estimator.Estimate{Cardinality: c, Source: s.Name(), Latency: per, Engine: engine}
	}
	return out, nil
}

// BatchCardinalities is the bare batched estimation path: it returns one
// cardinality per query, computed in packed MSCN forward passes that
// amortize per-call overhead across the batch. Queries featurize *directly
// into* the engine's pooled packed batches — no intermediate per-query
// feature vectors — and any mix of shapes shares one ragged forward pass
// that costs exactly its valid set elements: no shape grouping, no padding
// waste. Work proceeds in inference-batch chunks that fan out across cores
// (featurization included), with ctx checked between chunks. Results match
// Cardinality query-by-query (the same engine answers both).
func (s *Sketch) BatchCardinalities(ctx context.Context, qs []db.Query) ([]float64, error) {
	out := make([]float64, len(qs))
	src := &querySource{s: s, qs: qs}
	if err := s.Model.Engine().PredictSourceInto(ctx, src, len(qs), out); err != nil {
		return nil, err
	}
	for i, y := range out {
		out[i] = s.Encoder.Norm.Denormalize(y)
	}
	return out, nil
}

// querySource adapts a query slice to the engine's direct featurization
// interface: bitmaps and feature rows are produced on demand, written
// straight into the packed batch.
type querySource struct {
	s  *Sketch
	qs []db.Query
}

func (src *querySource) RowCounts(i int) (t, j, p int) {
	return src.s.Encoder.RowCounts(src.qs[i])
}

func (src *querySource) EncodeTo(i int, nextT, nextJ, nextP func() []float64) error {
	q := src.qs[i]
	bms, err := src.s.Samples.Bitmaps(q)
	if err != nil {
		return fmt.Errorf("core: query %d (%s): %w", i, q.SQL(nil), err)
	}
	if err := src.s.Encoder.EncodeQueryTo(q, bms, nextT, nextJ, nextP); err != nil {
		return fmt.Errorf("core: query %d (%s): %w", i, q.SQL(nil), err)
	}
	return nil
}

// EstimateSQL parses a SQL string against the sketch's embedded schema (the
// sample tables carry column types and dictionaries) and estimates it. SQL
// strings with a placeholder are rejected here; use Template instead.
func (s *Sketch) EstimateSQL(ctx context.Context, sql string) (estimator.Estimate, error) {
	res, err := sqlparse.Parse(s.SchemaDB(), sql)
	if err != nil {
		return estimator.Estimate{}, err
	}
	if res.Placeholder != nil {
		return estimator.Estimate{}, fmt.Errorf("core: query has a placeholder; use Template estimation")
	}
	return s.Estimate(ctx, res.Query)
}

// TemplateResult is one instantiated template estimate (a point of the
// demo's chart: X = placeholder value, Y = estimated cardinality).
type TemplateResult struct {
	Label    string
	Lo, Hi   int64
	Estimate float64
	Query    db.Query
}

// EstimateTemplate expands a template using the sketch's samples ("to create
// such an instance, we draw a value from the column sample that is part of
// the sketch") and estimates every instance in one batched pass.
func (s *Sketch) EstimateTemplate(ctx context.Context, tpl workload.Template, g workload.Grouping, buckets int) ([]TemplateResult, error) {
	insts, err := tpl.Instantiate(s.Samples, g, buckets)
	if err != nil {
		return nil, err
	}
	qs := make([]db.Query, len(insts))
	for i, inst := range insts {
		qs[i] = inst.Query
	}
	ests, err := s.BatchCardinalities(ctx, qs)
	if err != nil {
		return nil, err
	}
	out := make([]TemplateResult, len(insts))
	for i, inst := range insts {
		out[i] = TemplateResult{Label: inst.Label, Lo: inst.Lo, Hi: inst.Hi, Estimate: ests[i], Query: inst.Query}
	}
	return out, nil
}

// EstimateTemplateSQL parses a placeholder SQL statement and estimates its
// instantiations.
func (s *Sketch) EstimateTemplateSQL(ctx context.Context, sql string, g workload.Grouping, buckets int) ([]TemplateResult, error) {
	res, err := sqlparse.Parse(s.SchemaDB(), sql)
	if err != nil {
		return nil, err
	}
	tpl, err := res.Template()
	if err != nil {
		return nil, err
	}
	return s.EstimateTemplate(ctx, tpl, g, buckets)
}

// SchemaDB returns a schema shim built from the embedded samples: same
// tables, columns, types and dictionaries as the source database but with
// only the sampled rows. It powers SQL parsing and validation after the
// sketch has been detached from the database (e.g. deployed "in a web
// browser or within a cell phone").
func (s *Sketch) SchemaDB() *db.DB {
	s.schemaOnce.Do(func() {
		d := db.NewDB(s.DBName)
		for _, name := range s.Cfg.Tables {
			if ts := s.Samples.For(name); ts != nil {
				d.MustAddTable(ts.Data)
			}
		}
		s.schema = d
	})
	return s.schema
}

// Latency measures the average single-query estimation latency over the
// given queries (Figure 1b's "fast to query (within milliseconds)" claim).
func (s *Sketch) Latency(qs []db.Query) (time.Duration, error) {
	if len(qs) == 0 {
		return 0, fmt.Errorf("core: no queries")
	}
	start := time.Now()
	for _, q := range qs {
		if _, err := s.Cardinality(q); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(len(qs)), nil
}
