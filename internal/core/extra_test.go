package core

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
	"deepsketch/internal/mscn"
	"deepsketch/internal/trainmon"
	"deepsketch/internal/workload"
)

func TestPrepareTrainingDataShapes(t *testing.T) {
	d := datagen.IMDb(datagen.IMDbConfig{Seed: 85, Titles: 400, Keywords: 30, Companies: 15, Persons: 80})
	mon := trainmon.New()
	td, err := PrepareTrainingData(d, Config{
		SampleSize: 32, TrainQueries: 120, MaxJoins: 2, MaxPreds: 2, Seed: 3,
		Model: mscn.Config{HiddenUnits: 8, Epochs: 1, Seed: 3},
	}, mon)
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Examples) != len(td.Labeled) {
		t.Errorf("examples %d != labeled %d", len(td.Examples), len(td.Labeled))
	}
	if td.Encoder == nil || td.Samples == nil {
		t.Fatal("missing encoder or samples")
	}
	// Labels in examples match the labeled queries.
	for i := range td.Examples {
		if td.Examples[i].Card != td.Labeled[i].Card {
			t.Fatalf("example %d card mismatch", i)
		}
	}
	// The encoder's label norm must cover the observed cards.
	for _, lq := range td.Labeled {
		y := td.Encoder.Norm.Normalize(lq.Card)
		if y < 0 || y > 1 {
			t.Fatalf("card %d normalizes to %v outside [0,1]", lq.Card, y)
		}
	}
	// BuildFromData twice on the same data: deterministic.
	s1, err := BuildFromData(td, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := BuildFromData(td, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := td.Labeled[0].Query
	a, _ := s1.Cardinality(q)
	b, _ := s2.Cardinality(q)
	if a != b {
		t.Errorf("BuildFromData not deterministic: %v vs %v", a, b)
	}
}

func TestSketchTableSubsetRejectsOutOfScope(t *testing.T) {
	d := datagen.IMDb(datagen.IMDbConfig{Seed: 86, Titles: 400, Keywords: 30, Companies: 15, Persons: 80})
	s, err := Build(d, Config{
		Tables: []string{"title", "movie_keyword", "keyword"}, SampleSize: 24,
		TrainQueries: 80, MaxJoins: 2, MaxPreds: 2, Seed: 2,
		Model: mscn.Config{HiddenUnits: 8, Epochs: 1, Seed: 2},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// cast_info is not part of the sketch.
	q := db.Query{Tables: []db.TableRef{{Table: "cast_info", Alias: "ci"}}}
	if _, err := s.Cardinality(q); err == nil {
		t.Error("out-of-scope table should error")
	}
	if _, err := s.EstimateSQL(context.Background(), "SELECT COUNT(*) FROM cast_info ci"); err == nil {
		t.Error("out-of-scope SQL should error (table absent from embedded schema)")
	}
	// In-scope queries still work.
	if _, err := s.EstimateSQL(context.Background(), "SELECT COUNT(*) FROM title t WHERE t.kind_id=1"); err != nil {
		t.Errorf("in-scope SQL failed: %v", err)
	}
}

func TestSketchEstimateAllPropagatesErrors(t *testing.T) {
	_, s := getSketch(t)
	good := db.Query{Tables: []db.TableRef{{Table: "title", Alias: "t"}}}
	bad := db.Query{Tables: []db.TableRef{{Table: "nope", Alias: "n"}}}
	if _, err := s.BatchCardinalities(context.Background(), []db.Query{good, bad}); err == nil {
		t.Error("BatchCardinalities should propagate errors")
	}
}

func TestSketchSQLRendersInHeader(t *testing.T) {
	// The serialized header is JSON; spot-check it contains the config and
	// encoder vocabulary so external tools can introspect sketches.
	_, s := getSketch(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.String()
	for _, want := range []string{`"tables"`, `"label_norm"`, `"train_queries"`, `"hidden_units"`} {
		if !strings.Contains(blob, want) {
			t.Errorf("serialized header missing %s", want)
		}
	}
}

// TestSketchConcurrentEstimates: a trained sketch is read-only at
// estimation time and must be safe for concurrent use (the demo server
// serves queries while other sketches train). Run with -race.
func TestSketchConcurrentEstimates(t *testing.T) {
	d, s := getSketch(t)
	g, err := workload.NewGenerator(d, workload.GenConfig{Seed: 202, Count: 16, MaxJoins: 2, MaxPreds: 2})
	if err != nil {
		t.Fatal(err)
	}
	qs := g.Generate()
	want := make([]float64, len(qs))
	for i, q := range qs {
		want[i], err = s.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range qs {
				got, err := s.Cardinality(q)
				if err != nil {
					t.Error(err)
					return
				}
				if got != want[i] {
					t.Errorf("concurrent estimate %d: %v != %v", i, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestTemplateResultsConsistentWithDirectEstimates(t *testing.T) {
	d, s := getSketch(t)
	tpl, err := workload.YearTemplate(d, "love")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.EstimateTemplate(context.Background(), tpl, workload.GroupDistinct, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res[:3] {
		direct, err := s.Cardinality(r.Query)
		if err != nil {
			t.Fatal(err)
		}
		if direct != r.Estimate {
			t.Fatalf("template estimate %v != direct %v", r.Estimate, direct)
		}
	}
}
