package core

import (
	"bytes"
	"context"
	"math"
	"testing"

	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
	"deepsketch/internal/metrics"
	"deepsketch/internal/mscn"
	"deepsketch/internal/trainmon"
	"deepsketch/internal/workload"
)

// buildTestSketch trains a small sketch once and shares it across tests.
func buildTestSketch(t *testing.T) (*db.DB, *Sketch) {
	t.Helper()
	d := datagen.IMDb(datagen.IMDbConfig{Seed: 81, Titles: 1200, Keywords: 60, Companies: 30, Persons: 200})
	cfg := Config{
		Name: "test-sketch", SampleSize: 64, TrainQueries: 600, MaxJoins: 2, MaxPreds: 2,
		Seed: 5, Workers: 2,
		Model: mscn.Config{HiddenUnits: 24, Epochs: 10, BatchSize: 32, Seed: 5},
	}
	s, err := Build(d, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d, s
}

var sharedSketch *Sketch
var sharedDB *db.DB

func getSketch(t *testing.T) (*db.DB, *Sketch) {
	t.Helper()
	if sharedSketch == nil {
		sharedDB, sharedSketch = buildTestSketch(t)
	}
	return sharedDB, sharedSketch
}

func TestBuildPipelineStages(t *testing.T) {
	d := datagen.IMDb(datagen.IMDbConfig{Seed: 82, Titles: 400, Keywords: 40, Companies: 20, Persons: 100})
	mon := trainmon.New()
	cfg := Config{
		SampleSize: 32, TrainQueries: 100, MaxJoins: 2, MaxPreds: 2, Seed: 1,
		Model: mscn.Config{HiddenUnits: 8, Epochs: 2, BatchSize: 32, Seed: 1},
	}
	s, err := Build(d, cfg, mon)
	if err != nil {
		t.Fatal(err)
	}
	snap := mon.Snapshot()
	if !snap.Finished {
		t.Error("monitor should report finished")
	}
	for _, stage := range []trainmon.Stage{trainmon.StageDefine, trainmon.StageGenerate,
		trainmon.StageExecute, trainmon.StageFeaturize, trainmon.StageTrain} {
		if _, ok := s.StageMillis[stage]; !ok {
			t.Errorf("missing stage time for %s", stage)
		}
	}
	if len(s.Epochs) != 2 {
		t.Errorf("epochs recorded = %d", len(s.Epochs))
	}
	if s.Name() != "imdb" {
		t.Errorf("default name = %q, want db name", s.Name())
	}
}

func TestBuildValidation(t *testing.T) {
	d := datagen.IMDb(datagen.IMDbConfig{Seed: 83, Titles: 200})
	if _, err := Build(d, Config{Tables: []string{"nope"}, SampleSize: 8, TrainQueries: 50}, nil); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := Build(d, Config{SampleSize: -1, TrainQueries: 50}, nil); err == nil {
		t.Error("negative sample size should fail")
	}
	if _, err := Build(d, Config{SampleSize: 8, TrainQueries: 5}, nil); err == nil {
		t.Error("too few training queries should fail")
	}
}

func TestSketchEstimateSanity(t *testing.T) {
	d, s := getSketch(t)
	// The sketch should beat wild guessing on simple queries: check the
	// median q-error over a held-out uniform workload is modest.
	g, err := workload.NewGenerator(d, workload.GenConfig{Seed: 999, Count: 80, MaxJoins: 2, MaxPreds: 2})
	if err != nil {
		t.Fatal(err)
	}
	qs := g.Generate()
	labeled, err := workload.Label(d, qs, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var qerrs []float64
	for _, lq := range labeled {
		est, err := s.Cardinality(lq.Query)
		if err != nil {
			t.Fatal(err)
		}
		if est < 1 || math.IsNaN(est) || math.IsInf(est, 0) {
			t.Fatalf("estimate %v invalid for %s", est, lq.Query.SQL(nil))
		}
		qerrs = append(qerrs, metrics.QError(est, float64(lq.Card)))
	}
	sum := metrics.Summarize(qerrs)
	if sum.Median > 15 {
		t.Errorf("median q-error %v too high for a trained sketch", sum.Median)
	}
}

func TestSketchEstimateBatchMatchesEstimate(t *testing.T) {
	d, s := getSketch(t)
	g, _ := workload.NewGenerator(d, workload.GenConfig{Seed: 55, Count: 20, MaxJoins: 2, MaxPreds: 2})
	qs := g.Generate()
	batch, err := s.BatchCardinalities(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		single, err := s.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(single-batch[i])/single > 1e-9 {
			t.Fatalf("query %d: batch %v vs single %v", i, batch[i], single)
		}
	}
}

func TestSketchEstimateSQL(t *testing.T) {
	_, s := getSketch(t)
	ctx := context.Background()
	est, err := s.EstimateSQL(ctx, "SELECT COUNT(*) FROM title t WHERE t.production_year>2000")
	if err != nil {
		t.Fatal(err)
	}
	if est.Cardinality < 1 {
		t.Errorf("estimate = %v", est.Cardinality)
	}
	if est.Source != s.Name() {
		t.Errorf("source = %q, want %q", est.Source, s.Name())
	}
	if _, err := s.EstimateSQL(ctx, "SELECT COUNT(*) FROM title t WHERE t.production_year=?"); err == nil {
		t.Error("placeholder query should be rejected by EstimateSQL")
	}
	if _, err := s.EstimateSQL(ctx, "garbage"); err == nil {
		t.Error("garbage SQL should error")
	}
	// String literal via the embedded dictionary (no database needed).
	est2, err := s.EstimateSQL(ctx, "SELECT COUNT(*) FROM title t, movie_keyword mk, keyword k WHERE mk.movie_id=t.id AND mk.keyword_id=k.id AND k.keyword='love'")
	if err != nil {
		t.Fatal(err)
	}
	if est2.Cardinality < 1 {
		t.Errorf("estimate = %v", est2.Cardinality)
	}
}

func TestSketchTemplateSQL(t *testing.T) {
	_, s := getSketch(t)
	res, err := s.EstimateTemplateSQL(context.Background(),
		"SELECT COUNT(*) FROM title t, movie_keyword mk, keyword k WHERE mk.movie_id=t.id AND mk.keyword_id=k.id AND k.keyword='love' AND t.production_year=?",
		workload.GroupDistinct, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) < 5 {
		t.Fatalf("template instances = %d", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Lo <= res[i-1].Lo {
			t.Error("template results not ascending")
		}
	}
	for _, r := range res {
		if r.Estimate < 1 {
			t.Errorf("instance %s estimate %v", r.Label, r.Estimate)
		}
	}
	// Bucketed grouping.
	res2, err := s.EstimateTemplateSQL(context.Background(),
		"SELECT COUNT(*) FROM title t WHERE t.production_year=?",
		workload.GroupBuckets, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2) != 8 {
		t.Errorf("buckets = %d", len(res2))
	}
}

func TestSketchSaveLoadRoundTrip(t *testing.T) {
	d, s := getSketch(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name() != s.Name() || loaded.DBName != s.DBName {
		t.Error("metadata lost")
	}
	if len(loaded.Epochs) != len(s.Epochs) {
		t.Error("epoch stats lost")
	}
	// Identical estimates without the database.
	g, _ := workload.NewGenerator(d, workload.GenConfig{Seed: 77, Count: 25, MaxJoins: 2, MaxPreds: 2})
	for _, q := range g.Generate() {
		a, err := s.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("estimates differ after round trip: %v vs %v", a, b)
		}
	}
	// SQL still parses against the embedded schema.
	if _, err := loaded.EstimateSQL(context.Background(), "SELECT COUNT(*) FROM title t WHERE t.kind_id=1"); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a sketch"))); err == nil {
		t.Error("garbage should be rejected")
	}
	if _, err := Load(bytes.NewReader([]byte("DSKB\xff\xff\xff\xff"))); err == nil {
		t.Error("bad version should be rejected")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should be rejected")
	}
}

func TestFootprint(t *testing.T) {
	_, s := getSketch(t)
	fb, err := s.Footprint()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if fb.Total != int64(buf.Len()) {
		t.Errorf("footprint %d != serialized size %d", fb.Total, buf.Len())
	}
	if fb.Weights <= 0 || fb.Samples <= 0 || fb.Header <= 0 {
		t.Errorf("breakdown has empty component: %+v", fb)
	}
}

func TestSketchLatency(t *testing.T) {
	d, s := getSketch(t)
	g, _ := workload.NewGenerator(d, workload.GenConfig{Seed: 3, Count: 10, MaxJoins: 2, MaxPreds: 2})
	lat, err := s.Latency(g.Generate())
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Errorf("latency = %v", lat)
	}
	if _, err := s.Latency(nil); err == nil {
		t.Error("empty query list should error")
	}
}

func TestSketchDeterministicBuild(t *testing.T) {
	d := datagen.IMDb(datagen.IMDbConfig{Seed: 84, Titles: 400, Keywords: 40, Companies: 20, Persons: 100})
	cfg := Config{
		SampleSize: 32, TrainQueries: 120, MaxJoins: 2, MaxPreds: 2, Seed: 9,
		Model: mscn.Config{HiddenUnits: 8, Epochs: 3, BatchSize: 32, Seed: 9},
	}
	s1, err := Build(d, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Build(d, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := db.Query{
		Tables: []db.TableRef{{Table: "title", Alias: "t"}},
		Preds:  []db.Predicate{{Alias: "t", Col: "production_year", Op: db.OpGt, Val: 1990}},
	}
	a, _ := s1.Cardinality(q)
	b, _ := s2.Cardinality(q)
	if a != b {
		t.Errorf("same seed builds diverged: %v vs %v", a, b)
	}
}
