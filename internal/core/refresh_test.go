package core

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"math"
	"testing"

	"deepsketch/internal/workload"
)

// saveV1 serializes a sketch in the version-1 format (no optimizer
// trailer), replicating the PR-1 writer byte for byte — the compatibility
// corpus for TestLoadV1Sketch.
func saveV1(t *testing.T, s *Sketch) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if _, err := bw.WriteString(sketchMagic); err != nil {
		t.Fatal(err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(1)); err != nil {
		t.Fatal(err)
	}
	hdr := header{
		Name: s.Name(), DBName: s.DBName, Cfg: s.Cfg, Encoder: s.Encoder,
		Epochs: s.Epochs, StageMillis: s.StageMillis, SampleSize: s.Samples.Size,
	}
	blob, err := json.Marshal(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(blob))); err != nil {
		t.Fatal(err)
	}
	if _, err := bw.Write(blob); err != nil {
		t.Fatal(err)
	}
	if err := s.Model.WriteWeights(bw); err != nil {
		t.Fatal(err)
	}
	if err := writeSamples(bw, s.Samples, s.Cfg.Tables); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// deltaWorkload labels a fresh uniform workload disjoint from the build
// seed — the stand-in for post-drift traffic. Requires getSketch to have
// populated the shared database.
func deltaWorkload(t *testing.T, s *Sketch, seed int64, n int) []workload.LabeledQuery {
	t.Helper()
	g, err := workload.NewGenerator(sharedDB, workload.GenConfig{
		Seed: seed, Count: n, Tables: s.Cfg.Tables, MaxJoins: 2, MaxPreds: 2, Dedup: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	labeled, err := workload.Label(sharedDB, g.Generate(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	return labeled
}

// TestLoadV1Sketch: version-1 files (written before the optimizer trailer
// existed) must still load, estimate identically, and simply carry no
// optimizer state.
func TestLoadV1Sketch(t *testing.T) {
	d, s := getSketch(t)
	blob := saveV1(t, s)
	loaded, err := Load(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("v1 sketch no longer loads: %v", err)
	}
	if loaded.Model.OptState() != nil {
		t.Error("v1 sketch should have no optimizer state")
	}
	g, _ := workload.NewGenerator(d, workload.GenConfig{Seed: 77, Count: 10, MaxJoins: 2, MaxPreds: 2})
	for _, q := range g.Generate() {
		want, err := s.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(want-got)/want > 1e-12 {
			t.Fatalf("v1 reload changed estimate: %v vs %v", got, want)
		}
	}
	// And a v1-loaded sketch still refreshes: warm weights, cold optimizer.
	labeled := deltaWorkload(t, s, 401, 120)
	ns, err := Refresh(context.Background(), loaded, labeled, RefreshOptions{Epochs: 1, Workers: 2}, nil)
	if err != nil {
		t.Fatalf("refreshing a v1 sketch: %v", err)
	}
	if ns.Model.OptState() == nil {
		t.Error("refresh should capture optimizer state even from a v1 sketch")
	}
}

// TestSaveLoadOptStateRoundTrip: the v2 trailer round-trips the Adam state
// exactly, so a save → load → refresh resumes the very same optimizer.
func TestSaveLoadOptStateRoundTrip(t *testing.T) {
	_, s := getSketch(t)
	st := s.Model.OptState()
	if st == nil {
		t.Fatal("built sketch has no optimizer state")
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lst := loaded.Model.OptState()
	if lst == nil {
		t.Fatal("optimizer state lost in round trip")
	}
	if lst.Step != st.Step {
		t.Fatalf("step %d != %d", lst.Step, st.Step)
	}
	for i := range st.M {
		for j := range st.M[i] {
			if st.M[i][j] != lst.M[i][j] || st.V[i][j] != lst.V[i][j] {
				t.Fatalf("moments differ at %d[%d]", i, j)
			}
		}
	}
}

// TestRefreshLeavesOriginalServing: Refresh fine-tunes a clone — the
// original sketch's weights, state and estimates stay bit-identical, and
// the refreshed sketch accumulates training history and optimizer steps.
func TestRefreshLeavesOriginalServing(t *testing.T) {
	d, s := getSketch(t)
	g, _ := workload.NewGenerator(d, workload.GenConfig{Seed: 88, Count: 5, MaxJoins: 2, MaxPreds: 2})
	probes := g.Generate()
	before := make([]float64, len(probes))
	for i, q := range probes {
		v, err := s.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		before[i] = v
	}
	baseStep := s.Model.OptState().Step
	baseEpochs := len(s.Epochs)

	labeled := deltaWorkload(t, s, 402, 150)
	ns, err := Refresh(context.Background(), s, labeled, RefreshOptions{Epochs: 2, Workers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range probes {
		v, err := s.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		if v != before[i] {
			t.Fatalf("refresh changed the live sketch's estimate for probe %d", i)
		}
	}
	if s.Model.OptState().Step != baseStep {
		t.Error("refresh mutated the live sketch's optimizer state")
	}
	if got := len(ns.Epochs); got != baseEpochs+2 {
		t.Errorf("refreshed history has %d epochs, want %d", got, baseEpochs+2)
	}
	if ns.Model.OptState().Step <= baseStep {
		t.Errorf("refreshed optimizer step %d did not advance past %d — Adam state not resumed",
			ns.Model.OptState().Step, baseStep)
	}
	// The refreshed sketch still estimates sanely.
	for _, q := range probes {
		v, err := ns.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		if v < 1 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("refreshed estimate %v invalid", v)
		}
	}
}

// TestRefreshWarmBeatsColdRebuild is the paper-motivated acceptance check:
// on a drift-delta workload, the warm start (resumed Adam state + trained
// weights) reaches the cold rebuild's validation q-error in strictly fewer
// epochs than the cold rebuild took.
func TestRefreshWarmBeatsColdRebuild(t *testing.T) {
	_, s := getSketch(t)
	labeled := deltaWorkload(t, s, 403, 300)

	// Cold rebuild: a fresh sketch trained from scratch on the delta
	// workload with the build-time epoch budget.
	coldCfg := s.Cfg
	coldCfg.Name = "cold-rebuild"
	cold, err := BuildWithWorkload(sharedDB, coldCfg, labeled, nil)
	if err != nil {
		t.Fatal(err)
	}
	coldEpochs := len(cold.Epochs)
	targetQ := cold.Epochs[coldEpochs-1].ValMeanQ * 1.05 // small tolerance band

	ns, err := Refresh(context.Background(), s, labeled, RefreshOptions{
		Epochs: coldEpochs, StopAtValQ: targetQ, Workers: 2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	warmEpochs := len(ns.Epochs) - len(s.Epochs)
	t.Logf("cold rebuild: %d epochs to val mean-q %.2f; warm refresh: %d epochs to %.2f (target %.2f)",
		coldEpochs, cold.Epochs[coldEpochs-1].ValMeanQ, warmEpochs,
		ns.Epochs[len(ns.Epochs)-1].ValMeanQ, targetQ)
	if warmEpochs >= coldEpochs {
		t.Errorf("warm refresh took %d epochs, want strictly fewer than the cold rebuild's %d",
			warmEpochs, coldEpochs)
	}
	if got := ns.Epochs[len(ns.Epochs)-1].ValMeanQ; got > targetQ {
		t.Errorf("warm refresh stopped at val mean-q %.2f, above target %.2f", got, targetQ)
	}
}

func TestRefreshValidation(t *testing.T) {
	_, s := getSketch(t)
	if _, err := Refresh(context.Background(), s, nil, RefreshOptions{}, nil); err == nil {
		t.Error("empty delta workload should fail")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	labeled := deltaWorkload(t, s, 404, 20)
	if _, err := Refresh(ctx, s, labeled, RefreshOptions{Epochs: 1}, nil); err == nil {
		t.Error("cancelled context should abort the refresh")
	}
}
