package core

import (
	"bytes"
	"context"
	"testing"

	"deepsketch/internal/datagen"
)

// TestLoadCorruptedSketchNeverPanics: flip/truncate bytes all over a valid
// sketch file and require Load to fail cleanly (or, rarely, succeed when
// the mutation hits don't-care bytes) — never panic, never hang.
func TestLoadCorruptedSketchNeverPanics(t *testing.T) {
	_, s := getSketch(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	load := func(data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Load panicked: %v", r)
			}
		}()
		sk, err := Load(bytes.NewReader(data))
		if err != nil || sk == nil {
			return
		}
		// If it loaded, it must still answer estimates without panicking.
		_, _ = sk.EstimateSQL(context.Background(), "SELECT COUNT(*) FROM title t WHERE t.kind_id=1")
	}

	// Truncations at assorted boundaries.
	cuts := []int{0, 1, 3, 4, 7, 8, 11, 12, 100, len(blob) / 2, len(blob) - 1}
	for _, cut := range cuts {
		if cut > len(blob) {
			continue
		}
		load(blob[:cut])
	}

	// Byte flips spread across the file (header, weights, samples).
	rng := datagen.NewRand(1234)
	for trial := 0; trial < 60; trial++ {
		pos := int(rng.Int63n(int64(len(blob))))
		mut := make([]byte, len(blob))
		copy(mut, blob)
		mut[pos] ^= 0xff
		load(mut)
	}

	// Length-field attacks: huge declared header length.
	mut := make([]byte, len(blob))
	copy(mut, blob)
	mut[8], mut[9], mut[10], mut[11] = 0xff, 0xff, 0xff, 0x7f
	load(mut)
}

// TestLoadWrongMagicVariants: close-but-wrong magics are rejected.
func TestLoadWrongMagicVariants(t *testing.T) {
	_, s := getSketch(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	for _, magic := range []string{"DSKA", "dskb", "BKSD", "\x00\x00\x00\x00"} {
		mut := make([]byte, len(blob))
		copy(mut, blob)
		copy(mut, magic[:4])
		if _, err := Load(bytes.NewReader(mut)); err == nil {
			t.Errorf("magic %q accepted", magic)
		}
	}
}
