package optimizer

import (
	"math"
	"strings"
	"testing"

	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
	"deepsketch/internal/estimator"
	"deepsketch/internal/workload"
)

func optDB(t *testing.T) *db.DB {
	t.Helper()
	return datagen.IMDb(datagen.IMDbConfig{Seed: 91, Titles: 1500, Keywords: 60, Companies: 30, Persons: 200})
}

func truthOf(d *db.DB) CardinalityEstimator {
	return func(q db.Query) (float64, error) {
		c, err := d.Count(q)
		return float64(c), err
	}
}

func starQuery() db.Query {
	return db.Query{
		Tables: []db.TableRef{
			{Table: "title", Alias: "t"},
			{Table: "movie_keyword", Alias: "mk"},
			{Table: "cast_info", Alias: "ci"},
			{Table: "movie_info", Alias: "mi"},
		},
		Joins: []db.JoinPred{
			{LeftAlias: "mk", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"},
			{LeftAlias: "ci", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"},
			{LeftAlias: "mi", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"},
		},
		Preds: []db.Predicate{
			{Alias: "t", Col: "production_year", Op: db.OpGt, Val: 2000},
			{Alias: "mi", Col: "info_type_id", Op: db.OpEq, Val: 3},
		},
	}
}

func TestSubQueryInduced(t *testing.T) {
	d := optDB(t)
	o, err := New(starQuery(), truthOf(d))
	if err != nil {
		t.Fatal(err)
	}
	// Set {t, mi} = indices 0 and 3.
	sub := o.SubQuery(0b1001)
	if len(sub.Tables) != 2 || len(sub.Joins) != 1 || len(sub.Preds) != 2 {
		t.Fatalf("induced sub-query shape %d/%d/%d", len(sub.Tables), len(sub.Joins), len(sub.Preds))
	}
	if err := d.ValidateQuery(sub); err != nil {
		t.Fatal(err)
	}
	// Set {mk, mi} has no join inside (star), so it is disconnected.
	sub2 := o.SubQuery(0b1010)
	if len(sub2.Joins) != 0 {
		t.Error("fact-fact subset should have no induced join")
	}
}

func TestConnected(t *testing.T) {
	d := optDB(t)
	o, err := New(starQuery(), truthOf(d))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		set  uint32
		want bool
	}{
		{0b0001, true},  // {t}
		{0b0011, true},  // {t, mk}
		{0b1010, false}, // {mk, mi} not adjacent
		{0b1111, true},  // all
		{0b1110, false}, // facts without the hub
	}
	for _, c := range cases {
		if got := o.connected(c.set); got != c.want {
			t.Errorf("connected(%04b) = %v, want %v", c.set, got, c.want)
		}
	}
}

func TestBestPlanCoversAllRelationsOnce(t *testing.T) {
	d := optDB(t)
	o, err := New(starQuery(), truthOf(d))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.BestPlan()
	if err != nil {
		t.Fatal(err)
	}
	leaves := plan.Leaves()
	if len(leaves) != 4 {
		t.Fatalf("plan has %d leaves: %s", len(leaves), plan)
	}
	seen := map[string]bool{}
	for _, l := range leaves {
		if seen[l] {
			t.Fatalf("alias %s appears twice in %s", l, plan)
		}
		seen[l] = true
	}
	if plan.Cost <= 0 {
		t.Errorf("plan cost = %v", plan.Cost)
	}
	if !strings.Contains(plan.String(), "⋈") {
		t.Errorf("plan rendering wrong: %s", plan)
	}
}

// TestBestPlanIsOptimalBruteForce compares the DP result against exhaustive
// enumeration of all bushy join trees on a 3-relation query.
func TestBestPlanIsOptimalBruteForce(t *testing.T) {
	d := optDB(t)
	q := db.Query{
		Tables: []db.TableRef{
			{Table: "title", Alias: "t"},
			{Table: "movie_keyword", Alias: "mk"},
			{Table: "keyword", Alias: "k"},
		},
		Joins: []db.JoinPred{
			{LeftAlias: "mk", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"},
			{LeftAlias: "mk", LeftCol: "keyword_id", RightAlias: "k", RightCol: "id"},
		},
		Preds: []db.Predicate{{Alias: "t", Col: "production_year", Op: db.OpLt, Val: 1960}},
	}
	truth := truthOf(d)
	o, err := New(q, truth)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.BestPlan()
	if err != nil {
		t.Fatal(err)
	}
	// Chain t–mk–k admits exactly two cross-product-free trees:
	// ((t mk) k) and ((mk k) t). Compute both costs by hand via cardOf.
	cTMK, err := o.cardOf(0b011)
	if err != nil {
		t.Fatal(err)
	}
	cMKK, err := o.cardOf(0b110)
	if err != nil {
		t.Fatal(err)
	}
	cAll, err := o.cardOf(0b111)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Min(cTMK+cAll, cMKK+cAll)
	if math.Abs(plan.Cost-want) > 1e-9 {
		t.Errorf("DP cost %v, brute force %v (plan %s)", plan.Cost, want, plan)
	}
}

func TestPlanQualityTruthIsOptimal(t *testing.T) {
	d := optDB(t)
	truth := truthOf(d)
	ratio, chosen, optimal, err := PlanQuality(starQuery(), truth, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ratio-1) > 1e-9 {
		t.Errorf("truth-driven plan should be optimal, ratio %v (chosen %s, optimal %s)",
			ratio, chosen, optimal)
	}
}

func TestPlanQualityAtLeastOne(t *testing.T) {
	d := optDB(t)
	truth := truthOf(d)
	pg := estimator.NewPostgres(d, estimator.PostgresOptions{})
	g, err := workload.NewGenerator(d, workload.GenConfig{Seed: 5, Count: 30, MaxJoins: 3, MaxPreds: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range g.Generate() {
		if len(q.Tables) < 2 {
			continue
		}
		ratio, _, _, err := PlanQuality(q, pg.Cardinality, truth)
		if err != nil {
			t.Fatalf("%s: %v", q.SQL(nil), err)
		}
		if ratio < 1-1e-9 {
			t.Fatalf("plan quality ratio %v < 1 for %s", ratio, q.SQL(nil))
		}
	}
}

func TestOptimizerErrors(t *testing.T) {
	d := optDB(t)
	truth := truthOf(d)
	if _, err := New(db.Query{}, truth); err == nil {
		t.Error("empty query should error")
	}
	// Disconnected join graph: BestPlan must fail, not produce a cross
	// product.
	q := db.Query{
		Tables: []db.TableRef{{Table: "title", Alias: "t"}, {Table: "keyword", Alias: "k"}},
	}
	o, err := New(q, truth)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.BestPlan(); err == nil {
		t.Error("disconnected graph should error")
	}
	if _, _, _, err := PlanQuality(db.Query{Tables: []db.TableRef{{Table: "title", Alias: "t"}}}, truth, truth); err == nil {
		t.Error("single-table plan quality should error")
	}
	bad := db.Query{
		Tables: []db.TableRef{{Table: "title", Alias: "t"}},
		Joins:  []db.JoinPred{{LeftAlias: "zz", LeftCol: "id", RightAlias: "t", RightCol: "id"}},
	}
	if _, err := New(bad, truth); err == nil {
		t.Error("unknown join alias should error")
	}
}

func TestSingleTablePlan(t *testing.T) {
	d := optDB(t)
	q := db.Query{Tables: []db.TableRef{{Table: "title", Alias: "t"}}}
	o, err := New(q, truthOf(d))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.BestPlan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Alias != "t" || plan.Cost != 0 {
		t.Errorf("single-table plan wrong: %s cost %v", plan, plan.Cost)
	}
}

func TestTrueCostMatchesOptimalCostForTruthPlan(t *testing.T) {
	d := optDB(t)
	truth := truthOf(d)
	o, err := New(starQuery(), truth)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := o.BestPlan()
	if err != nil {
		t.Fatal(err)
	}
	tc, err := o.TrueCost(plan, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tc-plan.Cost) > 1e-9 {
		t.Errorf("TrueCost %v != plan.Cost %v for truth-driven plan", tc, plan.Cost)
	}
}

func TestFormatComparison(t *testing.T) {
	out := FormatComparison([]string{"A", "B"}, [][]float64{{1, 2, 3}, {1, 1, 1}})
	if !strings.Contains(out, "A") || !strings.Contains(out, "median") {
		t.Errorf("comparison table malformed:\n%s", out)
	}
}
