// Package optimizer implements a System-R-style dynamic-programming join
// enumerator with the C_out cost model. It exists to demonstrate the
// paper's motivating use case end to end: "estimates of intermediate query
// result sizes are the core ingredient to cost-based query optimizers" and
// "the estimates produced by Deep Sketches can directly be leveraged by
// existing, sophisticated join enumeration algorithms and cost models".
//
// The enumerator is estimator-agnostic: any cardinality source (the exact
// executor, the traditional estimators, or a Deep Sketch) can drive plan
// selection, and plans chosen under different estimators can be compared by
// costing them under the true cardinalities — the methodology of Leis et
// al., "How Good Are Query Optimizers, Really?" (PVLDB 2015), which the
// paper builds on.
package optimizer

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"

	"deepsketch/internal/db"
)

// CardinalityEstimator estimates the result size of a (sub-)query. Both the
// baselines and Deep Sketches satisfy this shape; exact execution provides
// the ground truth.
type CardinalityEstimator func(db.Query) (float64, error)

// Plan is a binary join tree.
type Plan struct {
	// Leaf table alias (set iff Left/Right are nil).
	Alias string
	Left  *Plan
	Right *Plan
	// Set is the bitmask of relation indices covered by this subtree.
	Set uint32
	// Card is the estimated cardinality of this subtree under the
	// estimator that produced the plan.
	Card float64
	// Cost is the accumulated C_out cost under that estimator.
	Cost float64
}

// String renders the join tree in the usual parenthesized form, e.g.
// ((t ⋈ mk) ⋈ k).
func (p *Plan) String() string {
	if p == nil {
		return "<nil>"
	}
	if p.Left == nil {
		return p.Alias
	}
	return "(" + p.Left.String() + " ⋈ " + p.Right.String() + ")"
}

// Leaves returns the plan's aliases left-to-right.
func (p *Plan) Leaves() []string {
	if p == nil {
		return nil
	}
	if p.Left == nil {
		return []string{p.Alias}
	}
	return append(p.Left.Leaves(), p.Right.Leaves()...)
}

// Optimizer enumerates join orders for one query.
type Optimizer struct {
	query   db.Query
	aliases []string
	// adjacency[i] is the bitmask of relations joinable with relation i.
	adjacency []uint32
	est       CardinalityEstimator
	// memo of estimated cardinalities per relation subset.
	cards map[uint32]float64
}

// New prepares an optimizer for a query. The query must pass the usual
// validation (connected acyclic join graph); queries with more than 30
// relations are rejected (bitmask representation).
func New(q db.Query, est CardinalityEstimator) (*Optimizer, error) {
	if len(q.Tables) == 0 {
		return nil, fmt.Errorf("optimizer: query has no tables")
	}
	if len(q.Tables) > 30 {
		return nil, fmt.Errorf("optimizer: %d relations exceed the supported maximum", len(q.Tables))
	}
	o := &Optimizer{
		query:     q,
		aliases:   make([]string, len(q.Tables)),
		adjacency: make([]uint32, len(q.Tables)),
		est:       est,
		cards:     make(map[uint32]float64),
	}
	idx := map[string]int{}
	for i, tr := range q.Tables {
		o.aliases[i] = tr.Alias
		idx[tr.Alias] = i
	}
	for _, j := range q.Joins {
		li, ok := idx[j.LeftAlias]
		if !ok {
			return nil, fmt.Errorf("optimizer: join alias %s not in query", j.LeftAlias)
		}
		ri, ok := idx[j.RightAlias]
		if !ok {
			return nil, fmt.Errorf("optimizer: join alias %s not in query", j.RightAlias)
		}
		o.adjacency[li] |= 1 << uint(ri)
		o.adjacency[ri] |= 1 << uint(li)
	}
	return o, nil
}

// SubQuery materializes the sub-query induced by a set of relation indices:
// the tables in the set, the joins with both ends inside, and the
// predicates on member aliases. Exported because estimators and tests need
// the same notion of "intermediate result".
func (o *Optimizer) SubQuery(set uint32) db.Query {
	var q db.Query
	member := map[string]bool{}
	for i, tr := range o.query.Tables {
		if set&(1<<uint(i)) != 0 {
			q.Tables = append(q.Tables, tr)
			member[tr.Alias] = true
		}
	}
	for _, j := range o.query.Joins {
		if member[j.LeftAlias] && member[j.RightAlias] {
			q.Joins = append(q.Joins, j)
		}
	}
	for _, p := range o.query.Preds {
		if member[p.Alias] {
			q.Preds = append(q.Preds, p)
		}
	}
	return q
}

// cardOf returns (memoized) the estimated cardinality of a relation subset.
func (o *Optimizer) cardOf(set uint32) (float64, error) {
	if c, ok := o.cards[set]; ok {
		return c, nil
	}
	est, err := o.est(o.SubQuery(set))
	if err != nil {
		return 0, err
	}
	if est < 1 || math.IsNaN(est) || math.IsInf(est, 0) {
		est = 1
	}
	o.cards[set] = est
	return est, nil
}

// connected reports whether the relations in set form a connected subgraph
// of the join graph.
func (o *Optimizer) connected(set uint32) bool {
	if set == 0 {
		return false
	}
	start := uint32(1) << uint(bits.TrailingZeros32(set))
	frontier := start
	visited := start
	for frontier != 0 {
		next := uint32(0)
		f := frontier
		for f != 0 {
			i := bits.TrailingZeros32(f)
			f &^= 1 << uint(i)
			next |= o.adjacency[i] & set
		}
		next &^= visited
		visited |= next
		frontier = next
	}
	return visited == set
}

// BestPlan runs dynamic programming over connected subsets (DPsub), costing
// with C_out: cost(P) = Σ |intermediate results|, the standard cost model of
// the JOB studies. Bushy plans are allowed; cross products are not.
func (o *Optimizer) BestPlan() (*Plan, error) {
	n := len(o.aliases)
	full := uint32(1<<uint(n)) - 1
	best := make(map[uint32]*Plan, 1<<uint(n))

	for i := 0; i < n; i++ {
		set := uint32(1) << uint(i)
		card, err := o.cardOf(set)
		if err != nil {
			return nil, err
		}
		// Leaf cost: 0 under C_out (base-table scans are not counted; they
		// are identical across plans).
		best[set] = &Plan{Alias: o.aliases[i], Set: set, Card: card}
	}
	if n == 1 {
		return best[1], nil
	}

	// Enumerate subsets in increasing popcount so sub-plans exist.
	subsets := make([]uint32, 0, 1<<uint(n))
	for s := uint32(1); s <= full; s++ {
		if bits.OnesCount32(s) >= 2 && o.connected(s) {
			subsets = append(subsets, s)
		}
	}
	sort.Slice(subsets, func(i, j int) bool {
		ci, cj := bits.OnesCount32(subsets[i]), bits.OnesCount32(subsets[j])
		if ci != cj {
			return ci < cj
		}
		return subsets[i] < subsets[j]
	})

	for _, s := range subsets {
		card, err := o.cardOf(s)
		if err != nil {
			return nil, err
		}
		// Split s into connected left/right halves; iterate proper
		// non-empty subsets of s.
		var bestPlan *Plan
		for l := (s - 1) & s; l != 0; l = (l - 1) & s {
			r := s &^ l
			if l > r {
				continue // each unordered split once
			}
			lp, lok := best[l]
			rp, rok := best[r]
			if !lok || !rok {
				continue
			}
			if !o.joinable(l, r) {
				continue // would be a cross product
			}
			cost := lp.Cost + rp.Cost + card
			if bestPlan == nil || cost < bestPlan.Cost {
				bestPlan = &Plan{Left: lp, Right: rp, Set: s, Card: card, Cost: cost}
			}
		}
		if bestPlan != nil {
			best[s] = bestPlan
		}
	}
	plan, ok := best[full]
	if !ok {
		return nil, fmt.Errorf("optimizer: join graph disconnected")
	}
	return plan, nil
}

func (o *Optimizer) joinable(l, r uint32) bool {
	f := l
	for f != 0 {
		i := bits.TrailingZeros32(f)
		f &^= 1 << uint(i)
		if o.adjacency[i]&r != 0 {
			return true
		}
	}
	return false
}

// TrueCost re-costs an arbitrary plan under a reference cardinality source
// (normally exact execution): C_out with the reference's cardinalities for
// every intermediate. This is how plans picked by different estimators are
// compared fairly.
func (o *Optimizer) TrueCost(p *Plan, truth CardinalityEstimator) (float64, error) {
	ref, err := New(o.query, truth)
	if err != nil {
		return 0, err
	}
	return ref.costOf(p)
}

func (o *Optimizer) costOf(p *Plan) (float64, error) {
	if p.Left == nil {
		return 0, nil
	}
	lc, err := o.costOf(p.Left)
	if err != nil {
		return 0, err
	}
	rc, err := o.costOf(p.Right)
	if err != nil {
		return 0, err
	}
	card, err := o.cardOf(p.Set)
	if err != nil {
		return 0, err
	}
	return lc + rc + card, nil
}

// PlanQuality compares an estimator against the optimal: it picks the best
// plan under est, re-costs it under truth, and divides by the cost of the
// plan picked (and costed) under truth. 1.0 means the estimator led the
// optimizer to an optimal plan; larger is worse.
func PlanQuality(q db.Query, est, truth CardinalityEstimator) (ratio float64, chosen, optimal *Plan, err error) {
	if len(q.Tables) < 2 {
		return 1, nil, nil, fmt.Errorf("optimizer: plan quality needs at least one join")
	}
	oe, err := New(q, est)
	if err != nil {
		return 0, nil, nil, err
	}
	chosen, err = oe.BestPlan()
	if err != nil {
		return 0, nil, nil, err
	}
	ot, err := New(q, truth)
	if err != nil {
		return 0, nil, nil, err
	}
	optimal, err = ot.BestPlan()
	if err != nil {
		return 0, nil, nil, err
	}
	chosenTrue, err := ot.costOf(chosen)
	if err != nil {
		return 0, nil, nil, err
	}
	if optimal.Cost <= 0 {
		return 1, chosen, optimal, nil
	}
	return chosenTrue / optimal.Cost, chosen, optimal, nil
}

// FormatComparison renders per-system plan-quality summaries.
func FormatComparison(names []string, ratios [][]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %10s %10s %10s %10s\n", "system", "median", "90th", "max", "mean")
	for i, name := range names {
		rs := append([]float64(nil), ratios[i]...)
		sort.Float64s(rs)
		var sum float64
		for _, r := range rs {
			sum += r
		}
		med := rs[len(rs)/2]
		p90 := rs[int(float64(len(rs)-1)*0.9)]
		fmt.Fprintf(&b, "%-18s %10.2f %10.2f %10.2f %10.2f\n",
			name, med, p90, rs[len(rs)-1], sum/float64(len(rs)))
	}
	return b.String()
}
