// Package lifecycle manages long-lived serving sketches. The paper's deep
// sketches are built once from a database snapshot, but a production
// deployment must refresh them as the data drifts (Kipf et al. retrain on
// updated workloads; adaptive-input work on cardinality sketches makes the
// same point): a serving sketch is a versioned, replaceable artifact, not
// an immutable one.
//
// The Registry keeps named sketches with full version history on top of a
// router.Router:
//
//   - Publish installs a sketch (first version, or a new version of an
//     existing name) atomically — traffic in flight keeps the snapshot it
//     routed against, every later request sees the new version.
//   - Swap replaces a live sketch under traffic; Rollback reverts to the
//     previous version. Both are one router copy-on-write mutation.
//   - Refresh warm-start retrains the live version on a drift-delta
//     workload (resuming its Adam state via core.Refresh) and swaps the
//     result in — or, with RefreshOptions.Canary set, installs it as a
//     canary instead of swapping.
//
// # Canary state machine
//
// A refreshed version does not have to take 100% of traffic at once. The
// canary state machine de-risks the transition:
//
//	publish/refresh ──StartCanary(f)──▶ canarying ──PromoteCanary──▶ live
//	                                       │
//	                                       └──AbortCanary──▶ previous live keeps serving
//
// StartCanary appends the candidate to the version history (so an aborted
// canary is never lost from the record) and routes fraction f of the name's
// traffic to it via the router's deterministic per-query hash split;
// SetCanaryFraction widens or narrows the split; PromoteCanary makes the
// candidate live for all traffic; AbortCanary withdraws it. At most one
// canary per name is active at a time, and a direct Publish/Swap/Rollback
// aborts an active canary first — the history it was being compared against
// has changed. Restore and ResumeCanary rebuild the same state from a
// persistent store after a restart, so an interrupted canary resumes where
// it left off.
//
// Every mutation bumps the underlying router's generation; serving caches
// wired with serve.Cache.WatchGeneration(reg.Generation) therefore drop
// stale estimates on the first request after a swap — no manual resets.
// Caches additionally keyed with serve.Cache.KeyFunc(router.CacheKey) stay
// correct per canary split without wholesale invalidation.
package lifecycle

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"deepsketch/internal/core"
	"deepsketch/internal/db"
	"deepsketch/internal/estimator"
	"deepsketch/internal/router"
	"deepsketch/internal/trainmon"
	"deepsketch/internal/workload"
)

// Registry is a concurrency-safe versioned sketch registry. The zero value
// is not usable; construct with New.
type Registry struct {
	r *router.Router

	mu      sync.Mutex
	entries map[string]*history
	serial  uint64 // hands out history incarnations; guarded by mu
}

// history is one name's version chain. versions[i] is version i+1; live
// indexes the currently serving version. Rollback moves live backwards;
// Publish always appends, so history is monotone and a rollback is never
// lost from the record. canary, when non-nil, indexes the version serving
// the canary split and records its traffic fraction.
type history struct {
	versions []*core.Sketch
	live     int
	canary   *canaryState
	// inc is the name's registration incarnation (see router.entry.inc):
	// fresh per Unregister+re-Publish, embedded in version-aware cache keys
	// so the restarted version numbering cannot collide with the previous
	// sketch's cached answers.
	inc uint64
}

// canaryState is one active canary: which history entry serves the split
// and how much traffic it takes.
type canaryState struct {
	idx      int
	fraction float64
}

// VersionInfo describes one version of a registered sketch.
type VersionInfo struct {
	Version  int     `json:"version"`
	Live     bool    `json:"live"`
	Canary   bool    `json:"canary,omitempty"`     // serving the canary split
	Pruned   bool    `json:"pruned,omitempty"`     // artifact removed by retention; number kept
	Epochs   int     `json:"epochs"`               // cumulative training epochs recorded
	ValMeanQ float64 `json:"val_mean_q,omitempty"` // last recorded validation mean q-error
}

// CanaryInfo describes a name's active canary.
type CanaryInfo struct {
	// Version is the canary's version number in the name's history.
	Version int `json:"version"`
	// BaseVersion is the live version the canary is being compared against.
	BaseVersion int `json:"base_version"`
	// Fraction is the share of traffic hash-routed to the canary.
	Fraction float64 `json:"fraction"`
}

// New returns an empty registry over its own router.
func New() *Registry {
	return &Registry{r: router.New(), entries: make(map[string]*history)}
}

// Router exposes the underlying router for building serving stacks
// (coalescers, clamps, fallbacks). All sketch mutations must go through
// the Registry, not the router directly, or version history will diverge
// from what routes.
func (g *Registry) Router() *router.Router { return g.r }

// Generation returns the underlying router's mutation counter — the value
// serving caches watch (serve.Cache.WatchGeneration) to invalidate after a
// publish, swap, rollback or unregister.
func (g *Registry) Generation() uint64 { return g.r.Generation() }

// Publish installs s as the newest version of name and makes it live
// atomically: version 1 for a new name, the next version (a swap under
// traffic) for an existing one. The sketch's own name must equal the
// registry name — the router dispatches and reports sources by it.
func (g *Registry) Publish(name string, s *core.Sketch) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.publishLocked(name, s, true)
}

// Swap replaces the live version of an existing name with s. It is Publish
// restricted to already-registered names — the verb for "replace under
// traffic", where Publish also covers first installs.
func (g *Registry) Swap(name string, s *core.Sketch) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.publishLocked(name, s, false)
}

func (g *Registry) publishLocked(name string, s *core.Sketch, install bool) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("lifecycle: empty sketch name")
	}
	if s.Name() != name {
		return 0, fmt.Errorf("lifecycle: sketch is named %q, registry name is %q — set Cfg.Name before publishing", s.Name(), name)
	}
	h, ok := g.entries[name]
	if !ok {
		if !install {
			return 0, fmt.Errorf("lifecycle: no sketch named %q to swap", name)
		}
		g.serial++
		g.entries[name] = &history{versions: []*core.Sketch{s}, inc: g.serial}
		g.r.RegisterVersion(s, 1)
		return 1, nil
	}
	ver := len(h.versions) + 1
	if err := g.r.SwapVersion(name, s, ver); err != nil {
		return 0, err
	}
	// The router's SwapVersion dropped any canary arm; mirror that here — a
	// direct publish replaces whatever the canary was being compared against.
	h.canary = nil
	h.versions = append(h.versions, s)
	h.live = len(h.versions) - 1
	return len(h.versions), nil
}

// Live returns the serving sketch and its version number.
func (g *Registry) Live(name string) (*core.Sketch, int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.entries[name]
	if !ok {
		return nil, 0, fmt.Errorf("lifecycle: no sketch named %q", name)
	}
	return h.versions[h.live], h.live + 1, nil
}

// LiveVersion returns the serving version number of name, or false when
// the name is not registered — the cheap lookup estimate handlers use to
// tag responses.
func (g *Registry) LiveVersion(name string) (int, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.entries[name]
	if !ok {
		return 0, false
	}
	return h.live + 1, true
}

// Versions lists every version of name in version order, flagging the live
// one.
func (g *Registry) Versions(name string) ([]VersionInfo, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.entries[name]
	if !ok {
		return nil, fmt.Errorf("lifecycle: no sketch named %q", name)
	}
	out := make([]VersionInfo, len(h.versions))
	for i, s := range h.versions {
		vi := VersionInfo{Version: i + 1, Live: i == h.live}
		vi.Canary = h.canary != nil && h.canary.idx == i
		if s == nil {
			vi.Pruned = true
		} else {
			vi.Epochs = len(s.Epochs)
			if n := len(s.Epochs); n > 0 {
				vi.ValMeanQ = s.Epochs[n-1].ValMeanQ
			}
		}
		out[i] = vi
	}
	return out, nil
}

// Names lists registered sketch names, sorted.
func (g *Registry) Names() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	names := make([]string, 0, len(g.entries))
	for n := range g.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Rollback reverts name to the version before the live one and makes it
// serve, returning the now-live version number and sketch. History is
// kept: a later Publish appends the next version number, it does not
// overwrite. An active canary is aborted — its comparison base is gone.
// Rolling back past version 1 is an error.
func (g *Registry) Rollback(name string) (int, *core.Sketch, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.entries[name]
	if !ok {
		return 0, nil, fmt.Errorf("lifecycle: no sketch named %q", name)
	}
	if h.live == 0 {
		return 0, nil, fmt.Errorf("lifecycle: %q is at version 1, nothing to roll back to", name)
	}
	target := h.versions[h.live-1]
	if target == nil {
		return 0, nil, fmt.Errorf("lifecycle: version %d of %q was pruned by retention, cannot roll back to it", h.live, name)
	}
	if err := g.r.SwapVersion(name, target, h.live); err != nil {
		return 0, nil, err
	}
	h.canary = nil
	h.live--
	return h.live + 1, target, nil
}

// StartCanary publishes s as the newest version of name WITHOUT making it
// live: the version is appended to the history, and fraction of the name's
// traffic is hash-routed to it while the live version keeps the rest.
// Returns the canary's version number. At most one canary per name may be
// active; promote or abort the current one first.
func (g *Registry) StartCanary(name string, s *core.Sketch, fraction float64) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.entries[name]
	if !ok {
		return 0, fmt.Errorf("lifecycle: no sketch named %q to canary", name)
	}
	if h.canary != nil {
		return 0, fmt.Errorf("lifecycle: %q already has a canary at version %d — promote or abort it first", name, h.canary.idx+1)
	}
	if s.Name() != name {
		return 0, fmt.Errorf("lifecycle: sketch is named %q, registry name is %q — set Cfg.Name before canarying", s.Name(), name)
	}
	ver := len(h.versions) + 1
	if err := g.r.SetCanary(name, s, ver, fraction); err != nil {
		return 0, err
	}
	h.versions = append(h.versions, s)
	h.canary = &canaryState{idx: ver - 1, fraction: fraction}
	return ver, nil
}

// SetCanaryFraction widens or narrows the active canary's traffic split.
// The hash split is monotone in the fraction: widening only moves new query
// signatures onto the canary, it never moves one off.
func (g *Registry) SetCanaryFraction(name string, fraction float64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.entries[name]
	if !ok {
		return fmt.Errorf("lifecycle: no sketch named %q", name)
	}
	if h.canary == nil {
		return fmt.Errorf("lifecycle: %q has no active canary", name)
	}
	if err := g.r.SetCanary(name, h.versions[h.canary.idx], h.canary.idx+1, fraction); err != nil {
		return err
	}
	h.canary.fraction = fraction
	return nil
}

// PromoteCanary makes the active canary the live version for 100% of
// traffic and ends the canary, returning the promoted version number. The
// previous live version stays in the history, one Rollback away.
func (g *Registry) PromoteCanary(name string) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.entries[name]
	if !ok {
		return 0, fmt.Errorf("lifecycle: no sketch named %q", name)
	}
	if h.canary == nil {
		return 0, fmt.Errorf("lifecycle: %q has no active canary to promote", name)
	}
	if err := g.r.PromoteCanary(name); err != nil {
		return 0, err
	}
	h.live = h.canary.idx
	h.canary = nil
	return h.live + 1, nil
}

// AbortCanary withdraws the active canary: the live version resumes
// answering all traffic. The aborted version stays in the history (not
// live) so the record of the failed candidate is kept.
func (g *Registry) AbortCanary(name string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.entries[name]
	if !ok {
		return fmt.Errorf("lifecycle: no sketch named %q", name)
	}
	if h.canary == nil {
		return fmt.Errorf("lifecycle: %q has no active canary to abort", name)
	}
	if err := g.r.ClearCanary(name); err != nil {
		return err
	}
	h.canary = nil
	return nil
}

// Canary reports the name's active canary, with ok=false when none is.
func (g *Registry) Canary(name string) (CanaryInfo, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.entries[name]
	if !ok || h.canary == nil {
		return CanaryInfo{}, false
	}
	return CanaryInfo{
		Version:     h.canary.idx + 1,
		BaseVersion: h.live + 1,
		Fraction:    h.canary.fraction,
	}, true
}

// ServingVersion reports which version of name answers a query with the
// given canonical signature right now: the canary version when a canary is
// active and the signature hashes into its split, the live version
// otherwise. ok=false when the name is unknown.
func (g *Registry) ServingVersion(name, sig string) (int, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.entries[name]
	if !ok {
		return 0, false
	}
	if h.canary != nil && router.CanarySplit(sig, h.canary.fraction) {
		return h.canary.idx + 1, true
	}
	return h.live + 1, true
}

// Sketch returns one version of name from the history (1-based).
func (g *Registry) Sketch(name string, version int) (*core.Sketch, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.entries[name]
	if !ok {
		return nil, fmt.Errorf("lifecycle: no sketch named %q", name)
	}
	if version < 1 || version > len(h.versions) {
		return nil, fmt.Errorf("lifecycle: %q has no version %d (history 1..%d)", name, version, len(h.versions))
	}
	if h.versions[version-1] == nil {
		return nil, fmt.Errorf("lifecycle: version %d of %q was pruned by retention", version, name)
	}
	return h.versions[version-1], nil
}

// servingSketch picks the sketch and version that answer a query with the
// given signature for name: the canary when active and the signature is in
// its split, the live version otherwise.
func (g *Registry) servingSketch(name, sig string) (*core.Sketch, int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.entries[name]
	if !ok {
		return nil, 0, fmt.Errorf("lifecycle: no sketch named %q", name)
	}
	if c := h.canary; c != nil && router.CanarySplit(sig, c.fraction) {
		return h.versions[c.idx], c.idx + 1, nil
	}
	return h.versions[h.live], h.live + 1, nil
}

// Serving returns an estimator view pinned to one registered name that
// honours the canary split: each query is answered by whichever version
// its signature selects right now, and estimates carry that version. It is
// how a serving stack dedicated to one sketch (rather than the coverage-
// routing Router) takes part in canary rollouts. Pair the stack's cache
// with CacheKey(name) so entries are version-coherent.
func (g *Registry) Serving(name string) estimator.Estimator {
	return &namedView{g: g, name: name}
}

// CacheKey returns a cache-key function for a Serving(name) stack: the
// query signature qualified by the version that would answer it (the same
// router.VersionedCacheKey shape the Router's CacheKey produces).
func (g *Registry) CacheKey(name string) func(db.Query) string {
	return func(q db.Query) string {
		sig := q.Signature()
		g.mu.Lock()
		h, ok := g.entries[name]
		if !ok {
			g.mu.Unlock()
			return sig
		}
		inc := h.inc
		ver := h.live + 1
		if c := h.canary; c != nil && router.CanarySplit(sig, c.fraction) {
			ver = c.idx + 1
		}
		g.mu.Unlock()
		return router.VersionedCacheKey(sig, name, inc, ver)
	}
}

// namedView serves one registered name through the registry's canary
// split.
type namedView struct {
	g    *Registry
	name string
}

func (v *namedView) Name() string { return v.name }

func (v *namedView) Estimate(ctx context.Context, q db.Query) (estimator.Estimate, error) {
	s, ver, err := v.g.servingSketch(v.name, q.Signature())
	if err != nil {
		return estimator.Estimate{}, err
	}
	est, err := s.Estimate(ctx, q)
	if err != nil {
		return estimator.Estimate{}, err
	}
	est.Version = ver
	return est, nil
}

// EstimateBatch groups the batch by answering version (at most two groups:
// primary and canary) so each side keeps its packed batched forward pass.
func (v *namedView) EstimateBatch(ctx context.Context, qs []db.Query) ([]estimator.Estimate, error) {
	return router.EstimateGrouped(ctx, qs, func(q db.Query) (*core.Sketch, int, error) {
		return v.g.servingSketch(v.name, q.Signature())
	})
}

// Restore installs a full version history for name in one step — the
// store-loading path after a daemon restart. versions[i] becomes version
// i+1, liveVersion (1-based) serves. A nil entry is a version whose
// artifact was pruned by retention: its number is preserved in the
// history (so later version numbers, cache keys and WAL records stay
// coherent) but it cannot serve, be rolled back to, or canary. The live
// version must be present, and the name must not already be registered.
// Use ResumeCanary afterwards to re-arm an interrupted canary.
func (g *Registry) Restore(name string, versions []*core.Sketch, liveVersion int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if name == "" {
		return fmt.Errorf("lifecycle: empty sketch name")
	}
	if _, ok := g.entries[name]; ok {
		return fmt.Errorf("lifecycle: %q is already registered", name)
	}
	if len(versions) == 0 {
		return fmt.Errorf("lifecycle: restore of %q with no versions", name)
	}
	if liveVersion < 1 || liveVersion > len(versions) {
		return fmt.Errorf("lifecycle: live version %d outside history 1..%d", liveVersion, len(versions))
	}
	if versions[liveVersion-1] == nil {
		return fmt.Errorf("lifecycle: live version %d of %q is missing", liveVersion, name)
	}
	for i, s := range versions {
		// nil entries are versions pruned by retention — the number stays in
		// the history (so new versions never collide with old cache keys or
		// WAL records), the artifact is gone.
		if s != nil && s.Name() != name {
			return fmt.Errorf("lifecycle: restored version %d of %q is misnamed %q", i+1, name, s.Name())
		}
	}
	g.serial++
	g.entries[name] = &history{versions: versions, live: liveVersion - 1, inc: g.serial}
	g.r.RegisterVersion(versions[liveVersion-1], liveVersion)
	return nil
}

// ResumeCanary re-arms a canary from the restored history — the restart
// path that lets a daemon interrupted mid-canary pick the rollout back up.
// version (1-based) must be a non-live history entry.
func (g *Registry) ResumeCanary(name string, version int, fraction float64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.entries[name]
	if !ok {
		return fmt.Errorf("lifecycle: no sketch named %q", name)
	}
	if h.canary != nil {
		return fmt.Errorf("lifecycle: %q already has a canary", name)
	}
	if version < 1 || version > len(h.versions) {
		return fmt.Errorf("lifecycle: canary version %d outside history 1..%d", version, len(h.versions))
	}
	if version-1 == h.live {
		return fmt.Errorf("lifecycle: version %d is live, cannot also be the canary", version)
	}
	if h.versions[version-1] == nil {
		return fmt.Errorf("lifecycle: canary version %d of %q was pruned by retention", version, name)
	}
	if err := g.r.SetCanary(name, h.versions[version-1], version, fraction); err != nil {
		return err
	}
	h.canary = &canaryState{idx: version - 1, fraction: fraction}
	return nil
}

// Unregister removes name and its whole version history; in-flight batches
// holding a pre-removal router snapshot finish against it.
func (g *Registry) Unregister(name string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.entries[name]; !ok {
		return fmt.Errorf("lifecycle: no sketch named %q", name)
	}
	delete(g.entries, name)
	g.r.Unregister(name)
	return nil
}

// RefreshOptions parameterizes Registry.Refresh.
type RefreshOptions struct {
	// Name selects the registered sketch to refresh.
	Name string
	// Workload is the labeled drift-delta workload to fine-tune on.
	Workload []workload.LabeledQuery
	// Epochs caps the fine-tune budget (0: the sketch's configured
	// full-build epoch count).
	Epochs int
	// StopAtValQ ends the fine-tune once the validation mean q-error
	// reaches this value or better (0 disables).
	StopAtValQ float64
	// Workers bounds data-parallel training (0: the sketch's configured
	// worker count).
	Workers int
	// Monitor receives stage/epoch events (nil for none).
	Monitor *trainmon.Monitor
	// Canary, when in (0, 1], installs the refreshed sketch as a canary at
	// that traffic fraction instead of swapping it live — the de-risked
	// rollout path: promote it with PromoteCanary once its comparative
	// q-error holds up, or withdraw it with AbortCanary. 0 swaps directly.
	Canary float64
}

// RefreshCandidate warm-start retrains the live version of o.Name on the
// delta workload and returns the candidate WITHOUT installing it: no swap,
// no canary, no new version number. It is the judgment seam of the refresh
// path — a caller (the drift controller's pinned-benchmark rail, an
// offline gate) evaluates the candidate first and only then installs it
// via StartCanary or Swap. o.Canary is ignored. The live sketch serves
// untouched throughout.
func (g *Registry) RefreshCandidate(ctx context.Context, o RefreshOptions) (*core.Sketch, error) {
	live, _, err := g.Live(o.Name)
	if err != nil {
		return nil, err
	}
	return core.Refresh(ctx, live, o.Workload, core.RefreshOptions{
		Epochs: o.Epochs, StopAtValQ: o.StopAtValQ, Workers: o.Workers,
	}, o.Monitor)
}

// Refresh warm-start retrains the live version of o.Name on the delta
// workload and swaps the result in (or, with o.Canary set, installs it as
// a canary at that traffic fraction), returning the new version number and
// sketch. The live sketch serves untouched for the whole fine-tune; the
// swap at the end is the same atomic copy-on-write mutation as Publish.
// Two concurrent refreshes of one name both fine-tune from the version
// that was live when they started, and the later swap wins.
func (g *Registry) Refresh(ctx context.Context, o RefreshOptions) (int, *core.Sketch, error) {
	ns, err := g.RefreshCandidate(ctx, o)
	if err != nil {
		return 0, nil, err
	}
	var v int
	if o.Canary > 0 {
		v, err = g.StartCanary(o.Name, ns, o.Canary)
	} else {
		v, err = g.Swap(o.Name, ns)
	}
	if err != nil {
		return 0, nil, err
	}
	return v, ns, nil
}
