// Package lifecycle manages long-lived serving sketches. The paper's deep
// sketches are built once from a database snapshot, but a production
// deployment must refresh them as the data drifts (Kipf et al. retrain on
// updated workloads; adaptive-input work on cardinality sketches makes the
// same point): a serving sketch is a versioned, replaceable artifact, not
// an immutable one.
//
// The Registry keeps named sketches with full version history on top of a
// router.Router:
//
//   - Publish installs a sketch (first version, or a new version of an
//     existing name) atomically — traffic in flight keeps the snapshot it
//     routed against, every later request sees the new version.
//   - Swap replaces a live sketch under traffic; Rollback reverts to the
//     previous version. Both are one router copy-on-write mutation.
//   - Refresh warm-start retrains the live version on a drift-delta
//     workload (resuming its Adam state via core.Refresh) and swaps the
//     result in.
//
// Every mutation bumps the underlying router's generation; serving caches
// wired with serve.Cache.WatchGeneration(reg.Generation) therefore drop
// stale estimates on the first request after a swap — no manual resets.
package lifecycle

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"deepsketch/internal/core"
	"deepsketch/internal/router"
	"deepsketch/internal/trainmon"
	"deepsketch/internal/workload"
)

// Registry is a concurrency-safe versioned sketch registry. The zero value
// is not usable; construct with New.
type Registry struct {
	r *router.Router

	mu      sync.Mutex
	entries map[string]*history
}

// history is one name's version chain. versions[i] is version i+1; live
// indexes the currently serving version. Rollback moves live backwards;
// Publish always appends, so history is monotone and a rollback is never
// lost from the record.
type history struct {
	versions []*core.Sketch
	live     int
}

// VersionInfo describes one version of a registered sketch.
type VersionInfo struct {
	Version  int     `json:"version"`
	Live     bool    `json:"live"`
	Epochs   int     `json:"epochs"`               // cumulative training epochs recorded
	ValMeanQ float64 `json:"val_mean_q,omitempty"` // last recorded validation mean q-error
}

// New returns an empty registry over its own router.
func New() *Registry {
	return &Registry{r: router.New(), entries: make(map[string]*history)}
}

// Router exposes the underlying router for building serving stacks
// (coalescers, clamps, fallbacks). All sketch mutations must go through
// the Registry, not the router directly, or version history will diverge
// from what routes.
func (g *Registry) Router() *router.Router { return g.r }

// Generation returns the underlying router's mutation counter — the value
// serving caches watch (serve.Cache.WatchGeneration) to invalidate after a
// publish, swap, rollback or unregister.
func (g *Registry) Generation() uint64 { return g.r.Generation() }

// Publish installs s as the newest version of name and makes it live
// atomically: version 1 for a new name, the next version (a swap under
// traffic) for an existing one. The sketch's own name must equal the
// registry name — the router dispatches and reports sources by it.
func (g *Registry) Publish(name string, s *core.Sketch) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.publishLocked(name, s, true)
}

// Swap replaces the live version of an existing name with s. It is Publish
// restricted to already-registered names — the verb for "replace under
// traffic", where Publish also covers first installs.
func (g *Registry) Swap(name string, s *core.Sketch) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.publishLocked(name, s, false)
}

func (g *Registry) publishLocked(name string, s *core.Sketch, install bool) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("lifecycle: empty sketch name")
	}
	if s.Name() != name {
		return 0, fmt.Errorf("lifecycle: sketch is named %q, registry name is %q — set Cfg.Name before publishing", s.Name(), name)
	}
	h, ok := g.entries[name]
	if !ok {
		if !install {
			return 0, fmt.Errorf("lifecycle: no sketch named %q to swap", name)
		}
		g.entries[name] = &history{versions: []*core.Sketch{s}}
		g.r.Register(s)
		return 1, nil
	}
	if err := g.r.Swap(name, s); err != nil {
		return 0, err
	}
	h.versions = append(h.versions, s)
	h.live = len(h.versions) - 1
	return len(h.versions), nil
}

// Live returns the serving sketch and its version number.
func (g *Registry) Live(name string) (*core.Sketch, int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.entries[name]
	if !ok {
		return nil, 0, fmt.Errorf("lifecycle: no sketch named %q", name)
	}
	return h.versions[h.live], h.live + 1, nil
}

// LiveVersion returns the serving version number of name, or false when
// the name is not registered — the cheap lookup estimate handlers use to
// tag responses.
func (g *Registry) LiveVersion(name string) (int, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.entries[name]
	if !ok {
		return 0, false
	}
	return h.live + 1, true
}

// Versions lists every version of name in version order, flagging the live
// one.
func (g *Registry) Versions(name string) ([]VersionInfo, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.entries[name]
	if !ok {
		return nil, fmt.Errorf("lifecycle: no sketch named %q", name)
	}
	out := make([]VersionInfo, len(h.versions))
	for i, s := range h.versions {
		vi := VersionInfo{Version: i + 1, Live: i == h.live, Epochs: len(s.Epochs)}
		if n := len(s.Epochs); n > 0 {
			vi.ValMeanQ = s.Epochs[n-1].ValMeanQ
		}
		out[i] = vi
	}
	return out, nil
}

// Names lists registered sketch names, sorted.
func (g *Registry) Names() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	names := make([]string, 0, len(g.entries))
	for n := range g.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Rollback reverts name to the version before the live one and makes it
// serve, returning the now-live version number and sketch. History is
// kept: a later Publish appends the next version number, it does not
// overwrite. Rolling back past version 1 is an error.
func (g *Registry) Rollback(name string) (int, *core.Sketch, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.entries[name]
	if !ok {
		return 0, nil, fmt.Errorf("lifecycle: no sketch named %q", name)
	}
	if h.live == 0 {
		return 0, nil, fmt.Errorf("lifecycle: %q is at version 1, nothing to roll back to", name)
	}
	target := h.versions[h.live-1]
	if err := g.r.Swap(name, target); err != nil {
		return 0, nil, err
	}
	h.live--
	return h.live + 1, target, nil
}

// Unregister removes name and its whole version history; in-flight batches
// holding a pre-removal router snapshot finish against it.
func (g *Registry) Unregister(name string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.entries[name]; !ok {
		return fmt.Errorf("lifecycle: no sketch named %q", name)
	}
	delete(g.entries, name)
	g.r.Unregister(name)
	return nil
}

// RefreshOptions parameterizes Registry.Refresh.
type RefreshOptions struct {
	// Name selects the registered sketch to refresh.
	Name string
	// Workload is the labeled drift-delta workload to fine-tune on.
	Workload []workload.LabeledQuery
	// Epochs caps the fine-tune budget (0: the sketch's configured
	// full-build epoch count).
	Epochs int
	// StopAtValQ ends the fine-tune once the validation mean q-error
	// reaches this value or better (0 disables).
	StopAtValQ float64
	// Workers bounds data-parallel training (0: the sketch's configured
	// worker count).
	Workers int
	// Monitor receives stage/epoch events (nil for none).
	Monitor *trainmon.Monitor
}

// Refresh warm-start retrains the live version of o.Name on the delta
// workload and swaps the result in, returning the new version number and
// sketch. The live sketch serves untouched for the whole fine-tune; the
// swap at the end is the same atomic copy-on-write mutation as Publish.
// Two concurrent refreshes of one name both fine-tune from the version
// that was live when they started, and the later swap wins.
func (g *Registry) Refresh(ctx context.Context, o RefreshOptions) (int, *core.Sketch, error) {
	live, _, err := g.Live(o.Name)
	if err != nil {
		return 0, nil, err
	}
	ns, err := core.Refresh(ctx, live, o.Workload, core.RefreshOptions{
		Epochs: o.Epochs, StopAtValQ: o.StopAtValQ, Workers: o.Workers,
	}, o.Monitor)
	if err != nil {
		return 0, nil, err
	}
	v, err := g.Swap(o.Name, ns)
	if err != nil {
		return 0, nil, err
	}
	return v, ns, nil
}
