package lifecycle

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"deepsketch/internal/core"
	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
	"deepsketch/internal/mscn"
	"deepsketch/internal/serve"
	"deepsketch/internal/workload"
)

var (
	fixtureOnce sync.Once
	fixtureDB   *db.DB
)

func fixture(t *testing.T) *db.DB {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureDB = datagen.IMDb(datagen.IMDbConfig{Seed: 91, Titles: 900, Keywords: 50, Companies: 25, Persons: 150})
	})
	return fixtureDB
}

func buildNamed(t *testing.T, d *db.DB, name string, seed int64) *core.Sketch {
	t.Helper()
	s, err := core.Build(d, core.Config{
		Name: name, SampleSize: 48, TrainQueries: 400, MaxJoins: 2, MaxPreds: 2,
		Seed: seed, Workers: 2,
		Model: mscn.Config{HiddenUnits: 16, Epochs: 8, BatchSize: 32, Seed: seed},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func labelDelta(t *testing.T, d *db.DB, seed int64, n int) []workload.LabeledQuery {
	t.Helper()
	g, err := workload.NewGenerator(d, workload.GenConfig{
		Seed: seed, Count: n, MaxJoins: 2, MaxPreds: 2, Dedup: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	labeled, err := workload.Label(d, g.Generate(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	return labeled
}

func TestRegistryPublishSwapVersionsRollback(t *testing.T) {
	d := fixture(t)
	v1 := buildNamed(t, d, "imdb", 11)
	v2 := buildNamed(t, d, "imdb", 12)

	reg := New()
	if _, err := reg.Publish("", v1); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := reg.Publish("other", v1); err == nil {
		t.Error("name mismatch should fail")
	}
	if _, err := reg.Swap("imdb", v1); err == nil {
		t.Error("swap before publish should fail")
	}
	ver, err := reg.Publish("imdb", v1)
	if err != nil || ver != 1 {
		t.Fatalf("first publish = v%d, %v", ver, err)
	}
	gen1 := reg.Generation()
	ver, err = reg.Swap("imdb", v2)
	if err != nil || ver != 2 {
		t.Fatalf("swap = v%d, %v", ver, err)
	}
	if reg.Generation() <= gen1 {
		t.Error("swap did not bump the generation")
	}
	if live, lv, err := reg.Live("imdb"); err != nil || live != v2 || lv != 2 {
		t.Fatalf("live = %v v%d, %v", live, lv, err)
	}
	vs, err := reg.Versions("imdb")
	if err != nil || len(vs) != 2 || !vs[1].Live || vs[0].Live {
		t.Fatalf("versions = %+v, %v", vs, err)
	}
	if vs[0].Epochs != 8 || vs[0].ValMeanQ <= 0 {
		t.Errorf("version info lost training record: %+v", vs[0])
	}

	// Rollback to v1, then publish appends v3 (history monotone).
	ver, back, err := reg.Rollback("imdb")
	if err != nil || ver != 1 || back != v1 {
		t.Fatalf("rollback = v%d %v, %v", ver, back, err)
	}
	if _, _, err := reg.Rollback("imdb"); err == nil {
		t.Error("rollback past version 1 should fail")
	}
	ver, err = reg.Publish("imdb", v2)
	if err != nil || ver != 3 {
		t.Fatalf("publish after rollback = v%d, %v", ver, err)
	}
	if names := reg.Names(); len(names) != 1 || names[0] != "imdb" {
		t.Fatalf("names = %v", names)
	}
	if err := reg.Unregister("imdb"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Unregister("imdb"); err == nil {
		t.Error("double unregister should fail")
	}
	if _, ok := reg.LiveVersion("imdb"); ok {
		t.Error("live version after unregister")
	}
	if reg.Router().Len() != 0 {
		t.Error("router entry left behind after unregister")
	}
}

// TestLifecycleEndToEnd is the acceptance test for the lifecycle redesign:
// build → serve through a generation-watched cache → warm-start Refresh
// with a delta workload (strictly fewer epochs than a cold rebuild to the
// same validation q-error, Adam state resumed) → atomic swap under
// concurrent traffic with zero failed requests and no post-swap cache hits
// from the old version. (v1-file compatibility is covered by
// core.TestLoadV1Sketch on the same format.)
func TestLifecycleEndToEnd(t *testing.T) {
	d := fixture(t)
	base := buildNamed(t, d, "imdb", 21)
	baseStep := base.Model.OptState().Step

	reg := New()
	if _, err := reg.Publish("imdb", base); err != nil {
		t.Fatal(err)
	}
	cache := serve.NewCache(serve.Clamp(reg.Router(), serve.MaxCardinality(d)), 1024).
		WatchGeneration(reg.Generation)

	// Fixed probe queries, all covered by the sketch.
	probeQs := make([]db.Query, 0, 8)
	for _, lq := range labelDelta(t, d, 300, 8) {
		probeQs = append(probeQs, lq.Query)
	}
	ctx := context.Background()

	// Warm the cache and remember the old version's answers.
	oldAnswers := make([]float64, len(probeQs))
	for i, q := range probeQs {
		est, err := cache.Estimate(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		oldAnswers[i] = est.Cardinality
	}

	// Concurrent traffic for the whole refresh+swap window. Zero failures
	// allowed: the swap must be invisible except for the answers changing.
	var failures atomic.Int64
	var requests atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				requests.Add(1)
				if g%2 == 0 {
					if _, err := cache.Estimate(ctx, probeQs[g%len(probeQs)]); err != nil {
						failures.Add(1)
						t.Error(err)
						return
					}
				} else {
					if _, err := cache.EstimateBatch(ctx, probeQs); err != nil {
						failures.Add(1)
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}

	// Cold-rebuild reference on the delta workload (fresh weights, fresh
	// optimizer, full epoch budget) fixes the quality target.
	delta := labelDelta(t, d, 301, 250)
	coldCfg := base.Cfg
	coldCfg.Name = "cold"
	cold, err := core.BuildWithWorkload(d, coldCfg, delta, nil)
	if err != nil {
		t.Fatal(err)
	}
	coldEpochs := len(cold.Epochs)
	targetQ := cold.Epochs[coldEpochs-1].ValMeanQ * 1.05

	// Warm-start refresh under traffic.
	ver, ns, err := reg.Refresh(ctx, RefreshOptions{
		Name: "imdb", Workload: delta, Epochs: coldEpochs, StopAtValQ: targetQ, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ver != 2 {
		t.Errorf("refresh produced v%d, want 2", ver)
	}
	warmEpochs := len(ns.Epochs) - len(base.Epochs)
	if warmEpochs >= coldEpochs {
		t.Errorf("warm refresh took %d epochs, want strictly fewer than cold's %d", warmEpochs, coldEpochs)
	}
	if lastQ := ns.Epochs[len(ns.Epochs)-1].ValMeanQ; lastQ > targetQ {
		t.Errorf("warm refresh stopped at val mean-q %.2f > target %.2f", lastQ, targetQ)
	}
	if ns.Model.OptState().Step <= baseStep {
		t.Errorf("refresh did not resume Adam state: step %d ≤ base %d", ns.Model.OptState().Step, baseStep)
	}

	close(stop)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d of %d requests failed across the swap", failures.Load(), requests.Load())
	}
	t.Logf("traffic: %d requests across refresh+swap, 0 failures; warm %d epochs vs cold %d",
		requests.Load(), warmEpochs, coldEpochs)

	// Post-swap: every probe answer must be the new version's, never a
	// cached answer from the old version.
	changed := 0
	for i, q := range probeQs {
		want, err := ns.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		want = math.Max(1, math.Min(want, serve.MaxCardinality(d))) // the stack clamps
		est, err := cache.Estimate(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if est.Cardinality != want {
			t.Errorf("probe %d: post-swap answer %v, want new version's %v (old was %v)",
				i, est.Cardinality, want, oldAnswers[i])
		}
		if est.Cardinality != oldAnswers[i] {
			changed++
		}
	}
	if changed == 0 {
		t.Error("fine-tuned model answered identically on every probe — stale-cache check has no power")
	}
}

// TestRegistryConcurrentMutations: publishes, swaps, rollbacks and refresh
// lookups racing with traffic (run with -race).
func TestRegistryConcurrentMutations(t *testing.T) {
	d := fixture(t)
	a := buildNamed(t, d, "imdb", 31)
	b := buildNamed(t, d, "imdb", 32)

	reg := New()
	if _, err := reg.Publish("imdb", a); err != nil {
		t.Fatal(err)
	}
	cache := serve.NewCache(reg.Router(), 256).WatchGeneration(reg.Generation)
	q := db.Query{Tables: []db.TableRef{{Table: "title", Alias: "t"}}}
	ctx := context.Background()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := cache.Estimate(ctx, q); err != nil {
					t.Error(err)
					return
				}
				reg.LiveVersion("imdb")
				if _, err := reg.Versions("imdb"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	cur := a
	for i := 0; i < 30; i++ {
		if cur == a {
			cur = b
		} else {
			cur = a
		}
		if _, err := reg.Swap("imdb", cur); err != nil {
			t.Error(err)
		}
		if i%3 == 2 {
			if _, _, err := reg.Rollback("imdb"); err != nil {
				t.Error(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// RefreshCandidate is the judgment seam: it must train without touching
// the registry in any way — no new version, no canary, live unchanged —
// so a caller can reject the candidate at zero rollout cost.
func TestRefreshCandidateTrainsWithoutInstalling(t *testing.T) {
	d := fixture(t)
	reg := New()
	base := buildNamed(t, d, "imdb", 5)
	if _, err := reg.Publish("imdb", base); err != nil {
		t.Fatal(err)
	}
	delta := labelDelta(t, d, 23, 120)

	cand, err := reg.RefreshCandidate(context.Background(), RefreshOptions{
		Name: "imdb", Workload: delta, Epochs: 2, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cand == nil || cand == base {
		t.Fatal("RefreshCandidate must return a new trained sketch, not the live one")
	}
	if len(cand.Epochs) <= len(base.Epochs) {
		t.Errorf("candidate has %d epoch records, want more than base's %d (warm fine-tune)", len(cand.Epochs), len(base.Epochs))
	}

	// Nothing installed: still v1 live, one version in history, no canary.
	if live, lv, err := reg.Live("imdb"); err != nil || lv != 1 || live != base {
		t.Fatalf("after RefreshCandidate: live v%d (%v), want untouched v1", lv, err)
	}
	if vs, err := reg.Versions("imdb"); err != nil || len(vs) != 1 {
		t.Fatalf("version history has %d entries, want 1", len(vs))
	}
	if _, active := reg.Canary("imdb"); active {
		t.Fatal("RefreshCandidate installed a canary")
	}

	// The candidate installs cleanly through the normal seam afterwards.
	ver, err := reg.StartCanary("imdb", cand, 0.25)
	if err != nil || ver != 2 {
		t.Fatalf("StartCanary(candidate) = v%d, %v, want v2", ver, err)
	}
	if err := reg.AbortCanary("imdb"); err != nil {
		t.Fatal(err)
	}

	// Unknown names fail without training.
	if _, err := reg.RefreshCandidate(context.Background(), RefreshOptions{Name: "nope", Workload: delta}); err == nil {
		t.Error("RefreshCandidate of an unknown name succeeded")
	}
}
