package lifecycle

import (
	"context"
	"testing"

	"deepsketch/internal/core"
	"deepsketch/internal/db"
	"deepsketch/internal/router"
	"deepsketch/internal/serve"
)

// TestCanaryStateMachine walks publish → StartCanary → fraction change →
// PromoteCanary, then a second canary aborted, checking version history,
// live pointers and introspection at every transition.
func TestCanaryStateMachine(t *testing.T) {
	d := fixture(t)
	v1 := buildNamed(t, d, "imdb", 41)
	v2 := buildNamed(t, d, "imdb", 42)
	v3 := buildNamed(t, d, "imdb", 43)

	reg := New()
	if _, err := reg.StartCanary("imdb", v2, 0.2); err == nil {
		t.Error("canary before publish should fail")
	}
	if _, err := reg.Publish("imdb", v1); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Canary("imdb"); ok {
		t.Error("fresh name reports a canary")
	}

	ver, err := reg.StartCanary("imdb", v2, 0.2)
	if err != nil || ver != 2 {
		t.Fatalf("StartCanary = v%d, %v", ver, err)
	}
	if _, err := reg.StartCanary("imdb", v3, 0.2); err == nil {
		t.Error("second canary while one is active should fail")
	}
	ci, ok := reg.Canary("imdb")
	if !ok || ci.Version != 2 || ci.BaseVersion != 1 || ci.Fraction != 0.2 {
		t.Fatalf("Canary = %+v ok=%v", ci, ok)
	}
	// Live is still v1; the canary is in the history, flagged, not live.
	if _, lv, err := reg.Live("imdb"); err != nil || lv != 1 {
		t.Fatalf("live version = %d, %v", lv, err)
	}
	vs, err := reg.Versions("imdb")
	if err != nil || len(vs) != 2 {
		t.Fatalf("versions = %+v, %v", vs, err)
	}
	if !vs[0].Live || vs[0].Canary || vs[1].Live || !vs[1].Canary {
		t.Errorf("version flags = %+v", vs)
	}

	if err := reg.SetCanaryFraction("imdb", 0.6); err != nil {
		t.Fatal(err)
	}
	if ci, _ := reg.Canary("imdb"); ci.Fraction != 0.6 {
		t.Errorf("fraction after widen = %v", ci.Fraction)
	}

	// ServingVersion matches the router's hash split.
	sig := "some-query-signature"
	wantVer := 1
	if router.CanarySplit(sig, 0.6) {
		wantVer = 2
	}
	if v, ok := reg.ServingVersion("imdb", sig); !ok || v != wantVer {
		t.Errorf("ServingVersion = %d ok=%v, want %d", v, ok, wantVer)
	}

	ver, err = reg.PromoteCanary("imdb")
	if err != nil || ver != 2 {
		t.Fatalf("PromoteCanary = v%d, %v", ver, err)
	}
	if _, lv, _ := reg.Live("imdb"); lv != 2 {
		t.Errorf("live after promote = v%d", lv)
	}
	if _, ok := reg.Canary("imdb"); ok {
		t.Error("canary survived promotion")
	}
	if _, err := reg.PromoteCanary("imdb"); err == nil {
		t.Error("promote without canary should fail")
	}

	// Abort path: v3 canaries, is withdrawn, stays in history non-live.
	if ver, err = reg.StartCanary("imdb", v3, 0.3); err != nil || ver != 3 {
		t.Fatalf("StartCanary(v3) = v%d, %v", ver, err)
	}
	if err := reg.AbortCanary("imdb"); err != nil {
		t.Fatal(err)
	}
	if err := reg.AbortCanary("imdb"); err == nil {
		t.Error("double abort should fail")
	}
	vs, _ = reg.Versions("imdb")
	if len(vs) != 3 || !vs[1].Live || vs[2].Live || vs[2].Canary {
		t.Errorf("history after abort = %+v", vs)
	}

	// Rollback from the promoted v2 returns to v1; a direct swap mid-canary
	// aborts the canary.
	if ver, _, err := reg.Rollback("imdb"); err != nil || ver != 1 {
		t.Fatalf("rollback = v%d, %v", ver, err)
	}
	if _, err := reg.StartCanary("imdb", v3, 0.3); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Swap("imdb", v2); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Canary("imdb"); ok {
		t.Error("direct swap should abort the active canary")
	}
	if _, _, ok := reg.Router().Canary("imdb"); ok {
		t.Error("router kept a canary arm after the swap")
	}
}

// TestRestoreAndResumeCanary rebuilds registry state the way the daemon's
// store-loading path does after a restart mid-canary.
func TestRestoreAndResumeCanary(t *testing.T) {
	d := fixture(t)
	v1 := buildNamed(t, d, "imdb", 44)
	v2 := buildNamed(t, d, "imdb", 45)

	reg := New()
	if err := reg.Restore("imdb", nil, 1); err == nil {
		t.Error("restore with no versions should fail")
	}
	if err := reg.Restore("imdb", []*core.Sketch{v1, v2}, 3); err == nil {
		t.Error("live version outside history should fail")
	}
	if err := reg.Restore("imdb", []*core.Sketch{v1, v2}, 1); err != nil {
		t.Fatal(err)
	}
	if err := reg.Restore("imdb", []*core.Sketch{v1}, 1); err == nil {
		t.Error("double restore should fail")
	}
	if _, lv, err := reg.Live("imdb"); err != nil || lv != 1 {
		t.Fatalf("restored live = v%d, %v", lv, err)
	}
	if vs, _ := reg.Versions("imdb"); len(vs) != 2 {
		t.Fatalf("restored history = %+v", vs)
	}

	if err := reg.ResumeCanary("imdb", 1, 0.25); err == nil {
		t.Error("resuming the live version as canary should fail")
	}
	if err := reg.ResumeCanary("imdb", 2, 0.25); err != nil {
		t.Fatal(err)
	}
	ci, ok := reg.Canary("imdb")
	if !ok || ci.Version != 2 || ci.Fraction != 0.25 {
		t.Fatalf("resumed canary = %+v ok=%v", ci, ok)
	}
	// The resumed canary actually routes: promoted, it serves everything.
	if ver, err := reg.PromoteCanary("imdb"); err != nil || ver != 2 {
		t.Fatalf("promote resumed canary = v%d, %v", ver, err)
	}
}

// TestCacheVersionAwareKeysUnderCanary is the regression test for the
// serving-cache staleness bug: a cache keyed only on the query signature
// keeps returning the old version's estimate to canary traffic (the warm
// pre-canary entry shadows the canary's answer). Keys derived from
// Router.CacheKey embed the answering version, so the canary split gets
// fresh entries while the primary split keeps its warm ones — no wholesale
// invalidation, no stale answers.
func TestCacheVersionAwareKeysUnderCanary(t *testing.T) {
	d := fixture(t)
	v1 := buildNamed(t, d, "imdb", 46)
	v2 := buildNamed(t, d, "imdb", 47)

	reg := New()
	if _, err := reg.Publish("imdb", v1); err != nil {
		t.Fatal(err)
	}
	// Two caches over the same router: one keyed on the bare signature (the
	// old behaviour), one version-aware. Neither watches the generation —
	// the point is that keys alone must keep canary traffic correct.
	buggy := serve.NewCache(reg.Router(), 256)
	fixed := serve.NewCache(reg.Router(), 256).KeyFunc(reg.Router().CacheKey)

	probes := make([]db.Query, 0, 12)
	for _, lq := range labelDelta(t, d, 500, 12) {
		probes = append(probes, lq.Query)
	}
	ctx := context.Background()

	// Warm both caches with v1 answers.
	v1Answers := make([]float64, len(probes))
	for i, q := range probes {
		est, err := fixed.Estimate(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		v1Answers[i] = est.Cardinality
		if _, err := buggy.Estimate(ctx, q); err != nil {
			t.Fatal(err)
		}
	}

	const fraction = 0.5
	if _, err := reg.StartCanary("imdb", v2, fraction); err != nil {
		t.Fatal(err)
	}

	staleDemonstrated := false
	for i, q := range probes {
		inCanary := router.CanarySplit(q.Signature(), fraction)
		want := v1Answers[i]
		wantVer := 1
		if inCanary {
			c, err := v2.Cardinality(q)
			if err != nil {
				t.Fatal(err)
			}
			want, wantVer = c, 2
		}
		est, err := fixed.Estimate(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if est.Cardinality != want || est.Version != wantVer {
			t.Errorf("probe %d (canary=%v): version-keyed cache answered %v (v%d), want %v (v%d)",
				i, inCanary, est.Cardinality, est.Version, want, wantVer)
		}
		if inCanary {
			// Primary-split entries stay warm; the canary split recomputes.
			if est.CacheHit {
				t.Errorf("probe %d: canary-split answer served from the pre-canary cache", i)
			}
			// The signature-keyed cache exhibits the original bug whenever
			// the two versions disagree on the query.
			bug, err := buggy.Estimate(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if bug.Cardinality == v1Answers[i] && v1Answers[i] != want {
				staleDemonstrated = true
			}
		} else if !est.CacheHit {
			t.Errorf("probe %d: primary-split entry was needlessly dropped", i)
		}
	}
	if !staleDemonstrated {
		t.Error("no probe demonstrated the signature-keyed staleness — fixture sketches answered identically; strengthen the fixture")
	}
}

// TestCacheKeysAcrossUnregisterRepublish: a name unregistered and
// re-published restarts its versions at 1, but its cache keys must not
// collide with the previous incarnation's — the registration incarnation
// in the key guarantees the new sketch's answers are recomputed, not
// served from the old sketch's cache lines.
func TestCacheKeysAcrossUnregisterRepublish(t *testing.T) {
	d := fixture(t)
	first := buildNamed(t, d, "imdb", 48)
	second := buildNamed(t, d, "imdb", 49)

	reg := New()
	if _, err := reg.Publish("imdb", first); err != nil {
		t.Fatal(err)
	}
	cache := serve.NewCache(reg.Router(), 256).KeyFunc(reg.Router().CacheKey)

	probes := make([]db.Query, 0, 8)
	for _, lq := range labelDelta(t, d, 600, 8) {
		probes = append(probes, lq.Query)
	}
	ctx := context.Background()
	firstAnswers := make([]float64, len(probes))
	for i, q := range probes {
		est, err := cache.Estimate(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		firstAnswers[i] = est.Cardinality
	}

	if err := reg.Unregister("imdb"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("imdb", second); err != nil {
		t.Fatal(err)
	}

	changed := 0
	for i, q := range probes {
		want, err := second.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		est, err := cache.Estimate(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if est.Cardinality != want {
			t.Errorf("probe %d: answered %v after re-publish, want new sketch's %v (old cached %v)",
				i, est.Cardinality, want, firstAnswers[i])
		}
		if est.CacheHit {
			t.Errorf("probe %d: re-published name served from the previous incarnation's cache", i)
		}
		if want != firstAnswers[i] {
			changed++
		}
	}
	if changed == 0 {
		t.Error("both sketches answered identically on every probe — the collision check has no power")
	}
}

// TestRestoreWithPrunedVersions is the retention path: old version
// artifacts are deleted from the store, their numbers stay in the
// history, and everything that would need the missing artifact fails
// loudly instead of panicking.
func TestRestoreWithPrunedVersions(t *testing.T) {
	d := fixture(t)
	v3 := buildNamed(t, d, "imdb", 48)
	v4 := buildNamed(t, d, "imdb", 49)

	reg := New()
	if err := reg.Restore("imdb", []*core.Sketch{nil, nil, v3, v4}, 2); err == nil {
		t.Error("restore with a pruned live version should fail")
	}
	if err := reg.Restore("imdb", []*core.Sketch{nil, nil, v3, v4}, 3); err != nil {
		t.Fatal(err)
	}
	if _, lv, err := reg.Live("imdb"); err != nil || lv != 3 {
		t.Fatalf("restored live = v%d, %v", lv, err)
	}
	vs, err := reg.Versions("imdb")
	if err != nil || len(vs) != 4 {
		t.Fatalf("history = %+v, %v", vs, err)
	}
	if !vs[0].Pruned || !vs[1].Pruned || vs[2].Pruned || vs[3].Pruned {
		t.Fatalf("pruned flags = %+v", vs)
	}
	if _, err := reg.Sketch("imdb", 1); err == nil {
		t.Error("fetching a pruned version should fail")
	}
	if _, err := reg.Sketch("imdb", 3); err != nil {
		t.Errorf("fetching a present version failed: %v", err)
	}
	if err := reg.ResumeCanary("imdb", 2, 0.25); err == nil {
		t.Error("resuming a pruned version as canary should fail")
	}
	if err := reg.ResumeCanary("imdb", 4, 0.25); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.PromoteCanary("imdb"); err != nil {
		t.Fatal(err)
	}
	// Live is now v4; rolling back to present v3 works, then the next
	// rollback would target pruned v2 and must refuse.
	if ver, _, err := reg.Rollback("imdb"); err != nil || ver != 3 {
		t.Fatalf("rollback to v3 = v%d, %v", ver, err)
	}
	if _, _, err := reg.Rollback("imdb"); err == nil {
		t.Error("rollback onto a pruned version should fail")
	}
}
