package analysis

import (
	"path/filepath"
	"testing"
)

// fixturePkg gives fixtures an internal/ import path so path-scoped
// analyzers (ctxpolicy) treat them as library code.
const fixturePkg = "deepsketch/internal/fixture"

func fixtureDir(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestZeroAllocFixture(t *testing.T) {
	RunFixture(t, ZeroAlloc, fixturePkg, fixtureDir("zeroalloc"), "fixture.go")
}

func TestDurabilityFixture(t *testing.T) {
	RunFixture(t, Durability, fixturePkg, fixtureDir("durability"), "fixture.go")
}

func TestDeterminismFixture(t *testing.T) {
	RunFixture(t, Determinism, fixturePkg, fixtureDir("determinism"), "fixture.go")
}

func TestCtxPolicyFixture(t *testing.T) {
	RunFixture(t, CtxPolicy, fixturePkg, fixtureDir("ctxpolicy"), "fixture.go")
}

func TestLockGuardFixture(t *testing.T) {
	RunFixture(t, LockGuard, fixturePkg, fixtureDir("lockguard"), "fixture.go")
}

func TestGoroLeakFixture(t *testing.T) {
	RunFixture(t, GoroLeak, fixturePkg, fixtureDir("goroleak"), "fixture.go")
}

func TestLockOrderFixture(t *testing.T) {
	RunFixture(t, LockOrder, fixturePkg, fixtureDir("lockorder"), "fixture.go")
}

// TestErrSinkFixture loads the fixture under a WAL import path so its
// local callees count as protected durability functions.
func TestErrSinkFixture(t *testing.T) {
	RunFixture(t, ErrSink, "deepsketch/internal/wal", fixtureDir("errsink"), "fixture.go")
}

// TestRepoClean is the machine-checked invariant of this PR: the whole
// module passes its own analysis suite. It is the same check CI's lint
// job runs via cmd/deepsketch-lint.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	prog, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := Run(prog, All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestAllAnalyzersRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %+v is missing a name, doc, or run function", a)
		}
		if names[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{
		"zeroalloc", "durability", "determinism", "ctxpolicy", "lockguard",
		"goroleak", "lockorder", "errsink", "escapebudget",
	} {
		if !names[want] {
			t.Errorf("All() is missing analyzer %q", want)
		}
	}
	if got := len(All()); got != 9 {
		t.Errorf("All() returns %d analyzers, want 9", got)
	}
}
