package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// LockGuard checks mutex discipline declared on struct fields: a field
// whose comment ends in "guarded by <mu>" (where <mu> is a sibling
// sync.Mutex or sync.RWMutex field) may only be accessed through the
// receiver in methods of that struct while <mu> is held. Held-ness is
// tracked by a linear source-order scan of each method body — Lock/RLock
// acquires, a non-deferred Unlock/RUnlock releases, a deferred unlock
// holds to function end — which matches the lock-at-top/defer-unlock
// shape this codebase uses everywhere. Methods named *Locked, or
// annotated //deepsketch:locked <mu>, are assumed to be called with the
// lock held (their callers are checked instead). Plain functions (e.g.
// constructors touching a not-yet-shared value) are out of scope, as are
// guards living in a different struct ("guarded by Monitor.mu" is prose,
// not a checkable annotation).
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated 'guarded by <mu>' are only accessed with <mu> held",
	Run:  runLockGuard,
}

// guardedRe matches a comment that ends with the annotation. The capture
// may include dots so cross-struct guards can be recognized and skipped.
var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_][\w.]*)\.?\s*$`)

func runLockGuard(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			checkLockGuardMethod(pass, fd, guards)
		}
	}
	return nil
}

// guardInfo maps a guarded field object to its guard mutex field name.
type guardInfo map[types.Object]string

// collectGuards finds "guarded by <mu>" field annotations whose guard is
// a sibling mutex field of the same struct.
func collectGuards(pass *Pass) guardInfo {
	info := pass.Pkg.Info
	guards := guardInfo{}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			siblings := map[string]bool{}
			for _, f := range st.Fields.List {
				if t := info.Types[f.Type].Type; t != nil && isMutexType(t) {
					for _, name := range f.Names {
						siblings[name.Name] = true
					}
				}
			}
			for _, f := range st.Fields.List {
				guard := guardAnnotation(f)
				if guard == "" || strings.Contains(guard, ".") {
					continue // none, or cross-struct prose
				}
				if !siblings[guard] {
					pass.Reportf(f.Pos(), "field is 'guarded by %s' but %s is not a sibling mutex field", guard, guard)
					continue
				}
				for _, name := range f.Names {
					if obj := info.Defs[name]; obj != nil {
						guards[obj] = guard
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation extracts the guard name from a field's doc or trailing
// comment.
func guardAnnotation(f *ast.Field) string {
	for _, group := range []*ast.CommentGroup{f.Comment, f.Doc} {
		if group == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(group.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// lockEvent is one step of the linear replay: an acquire/release of a
// guard or an access to a guarded field.
type lockEvent struct {
	pos      token.Pos
	guard    string // mutex field name
	kind     int    // 0 access, 1 acquire, 2 release
	field    string
	deferred bool
}

func checkLockGuardMethod(pass *Pass, fd *ast.FuncDecl, guards guardInfo) {
	info := pass.Pkg.Info
	recvIdent := receiverIdent(fd)
	if recvIdent == nil {
		return
	}
	recvObj := info.Defs[recvIdent]
	if recvObj == nil {
		return
	}

	// Methods declared as holding the lock are their callers' problem.
	assumed := map[string]bool{}
	if key := declKey(info, fd); key != "" {
		for _, g := range pass.Prog.Directives.Func(key).Locked {
			assumed[g] = true
		}
	}
	allHeld := strings.HasSuffix(fd.Name.Name, "Locked")

	var events []lockEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if guard, kind := lockCall(info, n.Call, recvObj); kind == 2 {
				events = append(events, lockEvent{pos: n.Pos(), guard: guard, kind: 2, deferred: true})
				return false
			}
		case *ast.CallExpr:
			if guard, kind := lockCall(info, n, recvObj); kind != 0 {
				events = append(events, lockEvent{pos: n.Pos(), guard: guard, kind: kind})
			}
		case *ast.SelectorExpr:
			id, ok := ast.Unparen(n.X).(*ast.Ident)
			if !ok || info.Uses[id] != recvObj {
				return true
			}
			sel := info.Uses[n.Sel]
			if sel == nil {
				sel = info.Defs[n.Sel]
			}
			if guard, ok := guards[sel]; ok {
				events = append(events, lockEvent{pos: n.Pos(), guard: guard, field: n.Sel.Name})
			}
		}
		return true
	})

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	held := map[string]bool{}
	for _, e := range events {
		switch e.kind {
		case 1:
			held[e.guard] = true
		case 2:
			if !e.deferred {
				held[e.guard] = false
			}
		default:
			if !held[e.guard] && !assumed[e.guard] && !allHeld {
				pass.Reportf(e.pos, "%s is accessed without holding %s (annotate //deepsketch:locked %s if the caller holds it)", e.field, e.guard, e.guard)
			}
		}
	}
}

// lockCall classifies recv.<guard>.Lock()/RLock() (acquire, kind 1) and
// Unlock()/RUnlock() (release, kind 2); other calls return kind 0.
func lockCall(info *types.Info, call *ast.CallExpr, recvObj types.Object) (string, int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	base, ok := ast.Unparen(inner.X).(*ast.Ident)
	if !ok || info.Uses[base] != recvObj {
		return "", 0
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return inner.Sel.Name, 1
	case "Unlock", "RUnlock":
		return inner.Sel.Name, 2
	}
	return "", 0
}

func receiverIdent(fd *ast.FuncDecl) *ast.Ident {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	id := fd.Recv.List[0].Names[0]
	if id.Name == "_" {
		return nil
	}
	return id
}
