package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism checks the invariant behind bitwise-reproducible training:
// inside the call graph reachable from functions annotated
// //deepsketch:deterministic (the mscn train path and the nn
// backward/reduce/optimizer kernels), there must be no draw from the
// global math/rand source (rand.New over an explicit seeded source is
// fine), no time.Now/Since/Until, and no iteration over a map (Go
// randomizes map order per run; an accumulator fed from one diverges
// between identical runs).
//
// The call graph is computed statically over the module's own packages:
// direct calls to named functions and methods are followed; calls through
// func values and interfaces are not (the training path takes none on its
// numeric spine). internal/trainmon is excluded — telemetry timestamps
// sit outside the determinism boundary by design and must never feed
// weights.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "the training/gradient-reduction call graph must be bitwise reproducible",
	Run:  runDeterminism,
}

// determinismExcluded packages are telemetry sinks outside the invariant.
var determinismExcluded = map[string]bool{
	"deepsketch/internal/trainmon": true,
}

// randAllowed are math/rand package-level functions that do not touch the
// global source.
var randAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func runDeterminism(pass *Pass) error {
	reach := pass.Prog.deterministicReach()
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := declKey(info, fd)
			if key == "" || !reach[key] {
				continue
			}
			checkDeterminismBody(pass, fd)
		}
	}
	return nil
}

func checkDeterminismBody(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := info.Types[n.X].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map iteration order is randomized per run; feeding it into the deterministic training path breaks bitwise reproducibility (iterate sorted keys or a slice)")
				}
			}
		case *ast.SelectorExpr:
			// Both calls (time.Now()) and value references (now: time.Now)
			// resolve here; a stored func value is just as nondeterministic.
			checkDeterminismUse(pass, info.Uses[n.Sel], n.Sel)
		}
		return true
	})
}

func checkDeterminismUse(pass *Pass, obj types.Object, at ast.Node) {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn) are seeded, not global
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		if !randAllowed[fn.Name()] {
			pass.Reportf(at.Pos(), "%s.%s draws from the global math/rand source; deterministic training must use a seeded *rand.Rand", fn.Pkg().Path(), fn.Name())
		}
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(at.Pos(), "time.%s makes the deterministic training path depend on the wall clock", fn.Name())
		}
	}
}

// deterministicReach computes (once) the set of funcKeys reachable from
// //deepsketch:deterministic roots through static calls within the
// module's source packages.
func (p *Program) deterministicReach() map[string]bool {
	p.detOnce.Do(func() {
		edges := map[string][]string{}
		for _, pkg := range p.Packages {
			if determinismExcluded[pkg.Path] {
				continue
			}
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					caller := declKey(pkg.Info, fd)
					if caller == "" {
						continue
					}
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						fn := calleeFunc(pkg.Info, call)
						if fn == nil || fn.Pkg() == nil {
							return true
						}
						path := fn.Pkg().Path()
						if !p.sourcePkgs[path] || determinismExcluded[path] {
							return true
						}
						edges[caller] = append(edges[caller], funcKey(fn))
						return true
					})
				}
			}
		}
		reach := map[string]bool{}
		var queue []string
		for key, d := range p.Directives.funcs {
			if d.Deterministic {
				reach[key] = true
				queue = append(queue, key)
			}
		}
		for len(queue) > 0 {
			key := queue[0]
			queue = queue[1:]
			for _, callee := range edges[key] {
				if !reach[callee] {
					reach[callee] = true
					queue = append(queue, callee)
				}
			}
		}
		p.detReach = reach
	})
	return p.detReach
}
