package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadSnippet type-checks one in-memory source file and returns its
// directive index plus the on-disk filename (the index keys lines by it).
func loadSnippet(t *testing.T, src string) (*Index, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snippet.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := LoadFiles("deepsketch/internal/snippet", path)
	if err != nil {
		t.Fatalf("loading snippet: %v", err)
	}
	return prog.Directives, path
}

func problemCount(x *Index, substr string) int {
	n := 0
	for _, p := range x.Problems {
		if strings.Contains(p.Message, substr) {
			n++
		}
	}
	return n
}

// TestDirectiveGrammar drives the phase-2 directive verbs (bg, errok,
// lockorder) through well-formed and malformed spellings: each malformed
// form must surface a problem diagnostic AND not register its effect, so
// a typo can never silently disable a check.
func TestDirectiveGrammar(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want func(t *testing.T, x *Index, file string)
	}{
		{
			name: "bg trailing",
			src: "package snippet\n\nfunc f() {\n" +
				"\tgo func() {}() //deepsketch:bg main metrics flusher dies with the process\n" +
				"}\n",
			want: func(t *testing.T, x *Index, file string) {
				if !x.Background(file, 4) {
					t.Error("bg not registered on its own line")
				}
				if !x.Background(file, 5) {
					t.Error("bg not registered on the following line (standalone placement)")
				}
				if len(x.Problems) != 0 {
					t.Errorf("unexpected problems: %v", x.Problems)
				}
			},
		},
		{
			name: "bg standalone above",
			src: "package snippet\n\nfunc f() {\n" +
				"\t//deepsketch:bg main metrics flusher dies with the process\n" +
				"\tgo func() {}()\n" +
				"}\n",
			want: func(t *testing.T, x *Index, file string) {
				if !x.Background(file, 5) {
					t.Error("standalone bg does not cover the go statement below it")
				}
			},
		},
		{
			name: "bg missing reason",
			src: "package snippet\n\nfunc f() {\n" +
				"\tgo func() {}() //deepsketch:bg main\n" +
				"}\n",
			want: func(t *testing.T, x *Index, file string) {
				if x.Background(file, 4) {
					t.Error("malformed bg (owner only) must not register")
				}
				if problemCount(x, "bg directive needs an owner and a reason") != 1 {
					t.Errorf("want one bg problem, got %v", x.Problems)
				}
			},
		},
		{
			name: "errok trailing",
			src: "package snippet\n\nfunc f() error { return nil }\n\nfunc g() {\n" +
				"\t_ = f() //deepsketch:errok best-effort telemetry\n" +
				"}\n",
			want: func(t *testing.T, x *Index, file string) {
				if !x.ignored("errsink", file, 6) {
					t.Error("errok does not suppress errsink on its line")
				}
				if x.ignored("goroleak", file, 6) {
					t.Error("errok must only suppress errsink")
				}
			},
		},
		{
			name: "errok missing reason",
			src: "package snippet\n\nfunc f() error { return nil }\n\nfunc g() {\n" +
				"\t_ = f() //deepsketch:errok\n" +
				"}\n",
			want: func(t *testing.T, x *Index, file string) {
				if x.ignored("errsink", file, 6) {
					t.Error("bare errok must not suppress errsink")
				}
				if problemCount(x, "errok directive needs a reason") != 1 {
					t.Errorf("want one errok problem, got %v", x.Problems)
				}
			},
		},
		{
			name: "lockorder well-formed",
			src:  "package snippet\n\n//deepsketch:lockorder wal.Log.mu<wal.Log.idxMu\n\nfunc f() {}\n",
			want: func(t *testing.T, x *Index, _ string) {
				if len(x.LockOrders) != 1 {
					t.Fatalf("want one lockorder declaration, got %v", x.LockOrders)
				}
				d := x.LockOrders[0]
				if d.Before != "wal.Log.mu" || d.After != "wal.Log.idxMu" {
					t.Errorf("parsed pair = %q<%q", d.Before, d.After)
				}
				if d.Pos.Line != 3 {
					t.Errorf("declaration position line = %d, want 3", d.Pos.Line)
				}
			},
		},
		{
			name: "lockorder spaces around angle",
			src:  "package snippet\n\n//deepsketch:lockorder wal.Log.mu < wal.Log.idxMu\n\nfunc f() {}\n",
			want: func(t *testing.T, x *Index, _ string) {
				if len(x.LockOrders) != 1 || x.LockOrders[0].Before != "wal.Log.mu" || x.LockOrders[0].After != "wal.Log.idxMu" {
					t.Errorf("spaced pair not parsed: %+v (problems %v)", x.LockOrders, x.Problems)
				}
			},
		},
		{
			name: "lockorder missing separator",
			src:  "package snippet\n\n//deepsketch:lockorder wal.Log.mu\n\nfunc f() {}\n",
			want: func(t *testing.T, x *Index, _ string) {
				if len(x.LockOrders) != 0 {
					t.Errorf("malformed lockorder registered: %v", x.LockOrders)
				}
				if problemCount(x, "lockorder directive declares one ordered pair") != 1 {
					t.Errorf("want one lockorder problem, got %v", x.Problems)
				}
			},
		},
		{
			name: "lockorder empty side",
			src:  "package snippet\n\n//deepsketch:lockorder <wal.Log.mu\n\nfunc f() {}\n",
			want: func(t *testing.T, x *Index, _ string) {
				if len(x.LockOrders) != 0 || problemCount(x, "lockorder directive declares one ordered pair") != 1 {
					t.Errorf("empty-side lockorder: decls %v problems %v", x.LockOrders, x.Problems)
				}
			},
		},
		{
			name: "lockorder chained pairs",
			src:  "package snippet\n\n//deepsketch:lockorder a.T.x<a.T.y<a.T.z\n\nfunc f() {}\n",
			want: func(t *testing.T, x *Index, _ string) {
				if len(x.LockOrders) != 0 || problemCount(x, "lockorder directive declares one ordered pair") != 1 {
					t.Errorf("chained lockorder: decls %v problems %v", x.LockOrders, x.Problems)
				}
			},
		},
		{
			name: "unknown verb",
			src:  "package snippet\n\n//deepsketch:nonsense whatever\n\nfunc f() {}\n",
			want: func(t *testing.T, x *Index, _ string) {
				if problemCount(x, "unknown directive //deepsketch:nonsense") != 1 {
					t.Errorf("unknown verb not reported: %v", x.Problems)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x, file := loadSnippet(t, tc.src)
			tc.want(t, x, file)
		})
	}
}
