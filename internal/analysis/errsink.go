package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrSink checks that errors returned on durability, WAL and lifecycle
// call paths are not silently discarded. A dropped error from these
// callees is a durability hole: the WAL append that "succeeded", the
// state file that was "persisted", the version that was "published" may
// not have happened, and nothing downstream can tell. Protected callees
// are functions in internal/wal, internal/fsx and internal/lifecycle,
// functions annotated //deepsketch:durable, and os.Rename/(*os.File).Sync
// themselves. A discard is a plain statement call whose trailing error is
// unused, or an assignment that lands the error in the blank identifier
// (`_ =`, `n, _ :=`). Deferred calls (defer lg.Close()) are out of scope:
// a defer cannot propagate, and the shutdown path's best effort is the
// accepted idiom. A deliberate discard carries //deepsketch:errok
// <reason> on the line.
var ErrSink = &Analyzer{
	Name: "errsink",
	Doc:  "errors on durability/WAL/lifecycle call paths may not be discarded",
	Run:  runErrSink,
}

// errSinkPkgSuffixes are the protected package paths (matched by suffix
// so the module prefix stays out of the analyzer).
var errSinkPkgSuffixes = []string{
	"/internal/wal",
	"/internal/fsx",
	"/internal/lifecycle",
}

func runErrSink(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := protectedCallee(pass, call); fn != "" && lastResultIsError(info, call) {
					pass.Reportf(call.Pos(), "error from %s is discarded (call used as a statement) on a durability/WAL/lifecycle path; handle it or annotate //deepsketch:errok <reason>", fn)
				}
				return true
			case *ast.AssignStmt:
				checkErrSinkAssign(pass, n)
				return true
			}
			return true
		})
	}
	return nil
}

// checkErrSinkAssign flags assignments that land a protected callee's
// error result in the blank identifier.
func checkErrSinkAssign(pass *Pass, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := protectedCallee(pass, call)
	if fn == "" {
		return
	}
	results := callResults(pass.Pkg.Info, call)
	if results == nil || len(assign.Lhs) != results.Len() {
		return
	}
	for i, lhs := range assign.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if isErrorType(results.At(i).Type()) {
			pass.Reportf(lhs.Pos(), "error from %s is assigned to _ on a durability/WAL/lifecycle path; handle it or annotate //deepsketch:errok <reason>", fn)
		}
	}
}

// protectedCallee resolves the call's static callee and reports its
// funcKey when it is on a protected path, "" otherwise.
func protectedCallee(pass *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	key := funcKey(fn)
	pkgPath := fn.Pkg().Path()
	if pkgPath == "os" {
		if fn.Name() == "Rename" {
			return key
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && fn.Name() == "Sync" {
			return key
		}
		return ""
	}
	for _, suffix := range errSinkPkgSuffixes {
		if strings.HasSuffix(pkgPath, suffix) {
			return key
		}
	}
	if pass.Prog.Directives.Func(key).Durable {
		return key
	}
	return ""
}

// callResults returns the call's result tuple (nil for builtins and
// conversions).
func callResults(info *types.Info, call *ast.CallExpr) *types.Tuple {
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Results()
}

// lastResultIsError reports whether the call's final result is an error.
func lastResultIsError(info *types.Info, call *ast.CallExpr) bool {
	results := callResults(info, call)
	return results != nil && results.Len() > 0 && isErrorType(results.At(results.Len()-1).Type())
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }
