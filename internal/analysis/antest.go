package analysis

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// This file is the suite's analysistest equivalent: fixtures live under
// testdata/src/<analyzer>/ and mark every line where a diagnostic is
// expected with a trailing
//
//	// want "regexp"
//
// comment (several "..." patterns on one line expect several
// diagnostics). RunFixture fails the test if an expected diagnostic is
// missing or an unexpected one fires, so each analyzer's fixtures prove
// both that it catches seeded violations and that it stays quiet on the
// compliant code sitting next to them.

var wantRe = regexp.MustCompile(`//\s*want\s+((?:"(?:[^"\\]|\\.)*"\s*)+)`)
var wantPatRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// RunFixture type-checks the fixture files (paths relative to dir) as one
// package named pkgPath and runs the analyzer, matching findings against
// the files' want comments.
func RunFixture(t *testing.T, a *Analyzer, pkgPath, dir string, files ...string) {
	t.Helper()
	var paths []string
	for _, f := range files {
		paths = append(paths, filepath.Join(dir, f))
	}
	prog, err := LoadFiles(pkgPath, paths...)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := Run(prog, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type wantEntry struct {
		file    string
		line    int
		pattern *regexp.Regexp
		matched bool
	}
	var wants []*wantEntry
	for _, path := range paths {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("reparsing fixture: %v", err)
		}
		for _, group := range f.Comments {
			for _, c := range group.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pm := range wantPatRe.FindAllStringSubmatch(m[1], -1) {
					pat, err := regexp.Compile(pm[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pm[1], err)
					}
					wants = append(wants, &wantEntry{file: pos.Filename, line: pos.Line, pattern: pat})
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
	if t.Failed() {
		var b strings.Builder
		for _, d := range diags {
			b.WriteString("  " + d.String() + "\n")
		}
		t.Logf("all diagnostics:\n%s", b.String())
	}
}
