package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ZeroAlloc checks that functions annotated //deepsketch:zeroalloc — the
// packed forward kernels and the engine's steady-state dispatch — contain
// no allocating constructs: no make/new/append, no closures or go
// statements, no slice/map composite literals, no string concatenation or
// string<->[]byte conversions, no interface boxing, and no calls except
// to other annotated functions, an explicit allowlist (math, math/bits,
// sync lock/unlock, sync/atomic), and non-allocating builtins. panic
// calls are exempt: the failure path may allocate. Amortized growth sites
// inside an annotated arena (Workspace.Reserve/Alloc) carry explicit
// //deepsketch:ignore lines so the exception is visible in the source.
var ZeroAlloc = &Analyzer{
	Name: "zeroalloc",
	Doc:  "annotated hot-path kernels must not contain allocating constructs",
	Run:  runZeroAlloc,
}

// zeroAllocPkgAllow lists packages whose functions are allocation-free as
// used on the kernels' hot paths.
var zeroAllocPkgAllow = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

// zeroAllocSyncAllow lists the sync methods that never allocate.
var zeroAllocSyncAllow = map[string]bool{
	"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true, "TryLock": true,
}

// zeroAllocBuiltinAllow lists non-allocating builtins.
var zeroAllocBuiltinAllow = map[string]bool{
	"len": true, "cap": true, "copy": true, "delete": true,
	"min": true, "max": true, "real": true, "imag": true, "complex": true,
	"print": true, "println": true, // debug-only, no heap growth
}

func runZeroAlloc(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := declKey(pass.Pkg.Info, fd)
			if key == "" || !pass.Prog.Directives.Func(key).ZeroAlloc {
				continue
			}
			checkZeroAllocBody(pass, fd)
		}
	}
	return nil
}

func checkZeroAllocBody(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	// Collect expressions used as call targets so method/func values used
	// as calls are not double-counted as value captures.
	inPanic := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && calleeBuiltin(info, call) == "panic" {
			inPanic[call] = true
			return false // the failure path may allocate freely
		}
		return true
	})

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if inPanic[n] {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement spawns a goroutine in a zeroalloc function")
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "function literal allocates (closure) in a zeroalloc function")
			return false
		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Slice, *types.Map, *types.Chan:
				pass.Reportf(n.Pos(), "composite literal allocates in a zeroalloc function")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal escapes to the heap in a zeroalloc function")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; ok && tv.Value == nil && isString(tv.Type) {
					pass.Reportf(n.Pos(), "string concatenation allocates in a zeroalloc function")
				}
			}
		case *ast.AssignStmt:
			checkZeroAllocAssign(pass, n)
		case *ast.ReturnStmt:
			checkZeroAllocReturn(pass, fd, n)
		case *ast.CallExpr:
			checkZeroAllocCall(pass, n)
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
}

func checkZeroAllocCall(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info

	if b := calleeBuiltin(info, call); b != "" {
		switch b {
		case "make":
			pass.Reportf(call.Pos(), "make allocates in a zeroalloc function")
		case "new":
			pass.Reportf(call.Pos(), "new allocates in a zeroalloc function")
		case "append":
			pass.Reportf(call.Pos(), "append may grow its backing array in a zeroalloc function")
		case "clear", "panic":
			// non-allocating / exempt
		default:
			if !zeroAllocBuiltinAllow[b] {
				pass.Reportf(call.Pos(), "builtin %s is not allowlisted in a zeroalloc function", b)
			}
		}
		return
	}

	if isConversion(info, call) {
		checkZeroAllocConversion(pass, call)
		return
	}

	fn := calleeFunc(info, call)
	if fn == nil {
		pass.Reportf(call.Pos(), "dynamic call (func value or interface method) cannot be verified in a zeroalloc function")
		return
	}
	checkZeroAllocArgs(pass, call, fn)

	if sig, ok := fn.Type().(*types.Signature); ok {
		if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
			pass.Reportf(call.Pos(), "interface method call %s cannot be verified in a zeroalloc function", fn.Name())
			return
		}
	}
	if fn.Pkg() == nil || zeroAllocPkgAllow[fn.Pkg().Path()] {
		return
	}
	if fn.Pkg().Path() == "sync" && zeroAllocSyncAllow[fn.Name()] {
		return
	}
	if pass.Prog.Directives.Func(funcKey(fn)).ZeroAlloc {
		return
	}
	pass.Reportf(call.Pos(), "call to %s, which is neither annotated //deepsketch:zeroalloc nor allowlisted", funcKey(fn))
}

// checkZeroAllocConversion flags conversions that allocate: string
// materialization and interface boxing.
func checkZeroAllocConversion(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	if len(call.Args) != 1 {
		return
	}
	dst := info.Types[ast.Unparen(call.Fun)].Type
	src := info.Types[call.Args[0]].Type
	if src == nil || dst == nil {
		return
	}
	if tv := info.Types[call.Args[0]]; tv.Value != nil {
		return // constant conversions fold at compile time
	}
	switch {
	case isString(dst) && !isString(src):
		pass.Reportf(call.Pos(), "conversion to string allocates in a zeroalloc function")
	case isString(src) && isByteOrRuneSlice(dst):
		pass.Reportf(call.Pos(), "string to slice conversion allocates in a zeroalloc function")
	case types.IsInterface(dst) && !types.IsInterface(src):
		pass.Reportf(call.Pos(), "conversion to interface boxes its operand in a zeroalloc function")
	}
}

// checkZeroAllocArgs flags interface boxing at call boundaries and
// variadic argument slices.
func checkZeroAllocArgs(pass *Pass, call *ast.CallExpr, fn *types.Func) {
	info := pass.Pkg.Info
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis == token.NoPos && i == params.Len()-1 {
				pass.Reportf(call.Pos(), "variadic call to %s allocates its argument slice in a zeroalloc function", fn.Name())
			}
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || info.Types[arg].IsNil() {
			continue
		}
		if types.IsInterface(pt) && !types.IsInterface(at) {
			pass.Reportf(arg.Pos(), "passing %s as %s boxes it in a zeroalloc function", at, pt)
		}
	}
}

// checkZeroAllocAssign flags interface boxing and map writes.
func checkZeroAllocAssign(pass *Pass, assign *ast.AssignStmt) {
	info := pass.Pkg.Info
	for i, lhs := range assign.Lhs {
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if t := info.Types[idx.X].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(lhs.Pos(), "map write may allocate in a zeroalloc function")
				}
			}
		}
		if assign.Tok != token.ASSIGN || i >= len(assign.Rhs) {
			continue
		}
		lt := info.Types[lhs].Type
		rhs := assign.Rhs[i]
		rt := info.Types[rhs].Type
		if lt != nil && rt != nil && !info.Types[rhs].IsNil() &&
			types.IsInterface(lt) && !types.IsInterface(rt) {
			pass.Reportf(rhs.Pos(), "assignment boxes %s into %s in a zeroalloc function", rt, lt)
		}
	}
}

// checkZeroAllocReturn flags interface boxing at return statements.
func checkZeroAllocReturn(pass *Pass, fd *ast.FuncDecl, ret *ast.ReturnStmt) {
	info := pass.Pkg.Info
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	results := fn.Type().(*types.Signature).Results()
	if results.Len() != len(ret.Results) {
		return // multi-value forwarding; give up
	}
	for i, res := range ret.Results {
		rt := info.Types[res].Type
		if rt == nil || info.Types[res].IsNil() {
			continue
		}
		if types.IsInterface(results.At(i).Type()) && !types.IsInterface(rt) {
			pass.Reportf(res.Pos(), "return boxes %s into %s in a zeroalloc function", rt, results.At(i).Type())
		}
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
