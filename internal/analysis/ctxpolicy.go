package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxPolicy enforces the caller-owned context discipline inside internal/
// libraries: context.Context must be the first parameter of any function
// that takes one, and context.Background()/context.TODO() may not be
// called — a library that originates its own context silently detaches
// work from the caller's cancellation and deadline, which is exactly what
// broke the coalescer's retry semantics before PR 3 pinned them to the
// caller's context. Only cmd/ binaries and tests originate contexts.
//
// A deliberate detachment (a long-lived background actor, a batch whose
// per-caller retries re-check each caller's own context) is declared with
// //deepsketch:ctxorigin <reason> on the function, which keeps the design
// decision auditable at the call site.
var CtxPolicy = &Analyzer{
	Name: "ctxpolicy",
	Doc:  "internal/ packages take ctx first and never originate contexts",
	Run:  runCtxPolicy,
}

func runCtxPolicy(pass *Pass) error {
	if !strings.Contains(pass.Pkg.Path, "/internal/") {
		return nil
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkCtxParams(pass, fd)
			if fd.Body == nil {
				continue
			}
			exempt := false
			if key := declKey(info, fd); key != "" {
				exempt = pass.Prog.Directives.Func(key).CtxOrigin != ""
			}
			if exempt {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
					return true
				}
				if fn.Name() == "Background" || fn.Name() == "TODO" {
					pass.Reportf(call.Pos(), "context.%s originates a context inside an internal package, detaching work from the caller's cancellation; thread the caller's ctx or declare //deepsketch:ctxorigin <reason>", fn.Name())
				}
				return true
			})
		}
	}
	return nil
}

// checkCtxParams reports context.Context parameters at any position but
// the first. Function literals are not checked: a closure capturing its
// enclosing ctx is the normal idiom.
func checkCtxParams(pass *Pass, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	info := pass.Pkg.Info
	pos := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if t := info.Types[field.Type].Type; t != nil && isContextType(t) && pos != 0 {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter")
		}
		pos += n
	}
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
