// Package fixture seeds goroleak violations next to the compliant
// launch shapes the analyzer must stay quiet on.
package fixture

import (
	"context"
	"sync"
)

type worker struct {
	wg   sync.WaitGroup
	stop chan struct{}
	done chan struct{}
}

// forkJoin is the compliant WaitGroup shard: Add before the go statement,
// deferred Done inside the literal.
func forkJoin(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// fieldWaitGroup joins through a struct-field WaitGroup (s.wg), the
// daemon's background-build shape.
func (w *worker) fieldWaitGroup() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
	}()
	w.wg.Wait()
}

// missingAdd calls Done but nothing ever Adds: the Wait cannot account
// for the goroutine.
func missingAdd() {
	var wg sync.WaitGroup
	go func() { // want "no provable join/shutdown path"
		defer wg.Done()
	}()
	wg.Wait()
}

// resultChannel is the pipelined-validation shape: the launcher receives
// the goroutine's result, so completion is observed.
func resultChannel() int {
	ch := make(chan int, 1)
	go func() {
		ch <- 42
	}()
	return <-ch
}

// fireAndForget sends on a channel nobody in the launcher reads.
func fireAndForget() {
	ch := make(chan int, 1)
	go func() { // want "no provable join/shutdown path"
		ch <- 42
	}()
}

// doneWait blocks on an owner-controlled channel: the owner can always
// release it by closing stop.
func (w *worker) doneWait() {
	go func() {
		<-w.stop
		close(w.done)
	}()
}

// annotated is a deliberate fire-and-forget launch with a named owner.
func annotated() {
	//deepsketch:bg process-lifetime metrics flusher dies with the process
	go func() {
		select {}
	}()
}

// loop is the actor shape: its body waits on the receiver's stop channel.
func (w *worker) loop() {
	for {
		select {
		case <-w.stop:
			return
		}
	}
}

// launchLoop launches an actor whose body provably waits on an
// owner-controlled channel.
func launchLoop(w *worker) {
	go w.loop()
}

// run is ctx-bound: the launcher's context reaches it.
func run(ctx context.Context) {
	<-ctx.Done()
}

// launchCtx passes a cancellable context through to the goroutine.
func launchCtx(ctx context.Context) {
	go run(ctx)
}

// launchBackground hands the goroutine a context nothing can cancel.
func launchBackground() {
	go run(context.Background()) // want "context.Background"
}

// launchBackgroundVar reaches the same uncancellable context through a
// local variable.
func launchBackgroundVar() {
	ctx := context.Background()
	go run(ctx) // want "context.Background"
}

// sink takes no context and waits on nothing.
func sink() {}

// launchSink launches a callee with no join or shutdown path at all.
func launchSink() {
	go sink() // want "no provable join/shutdown path"
}
