// Package fixture seeds errsink violations. The suite loads it under the
// deepsketch/internal/wal import path, so its local callees count as
// WAL-path functions — exactly how a discarded ObservationLog.Append
// error looks from the daemon.
package fixture

import "os"

type log struct{ dirty bool }

// append is a protected callee: it lives (as loaded) in internal/wal and
// returns an error.
func (l *log) append(b []byte) error {
	if len(b) == 0 {
		return os.ErrInvalid
	}
	l.dirty = true
	return nil
}

// checkpoint returns a value and an error.
func (l *log) checkpoint() (int, error) {
	l.dirty = false
	return 1, nil
}

// close mirrors the real WAL's Close: sync then release.
func (l *log) close() error { return nil }

// handled propagates every error: compliant.
func handled(l *log, b []byte) error {
	if err := l.append(b); err != nil {
		return err
	}
	seq, err := l.checkpoint()
	_ = seq
	return err
}

// statementDiscard drops the append error on the floor.
func statementDiscard(l *log, b []byte) {
	l.append(b) // want "discarded \(call used as a statement\)"
}

// blankDiscard launders the error through the blank identifier.
func blankDiscard(l *log, b []byte) {
	_ = l.append(b) // want "assigned to _"
}

// multiValueDiscard keeps the value but drops the paired error.
func multiValueDiscard(l *log) int {
	seq, _ := l.checkpoint() // want "assigned to _"
	return seq
}

// annotatedDiscard is a deliberate best-effort discard with a reason.
func annotatedDiscard(l *log, b []byte) {
	_ = l.append(b) //deepsketch:errok fixture best-effort telemetry append
}

// deferredClose is the accepted shutdown idiom: a defer cannot
// propagate, so it is out of scope.
func deferredClose(l *log, b []byte) error {
	defer l.close()
	return l.append(b)
}

// renameDiscard drops os.Rename's error — the persist may not have
// happened.
func renameDiscard(tmp, final string) {
	os.Rename(tmp, final) // want "discarded \(call used as a statement\)"
}
