// Package fixture seeds determinism violations inside a call graph rooted
// at a //deepsketch:deterministic function: global math/rand draws, wall
// clock reads, and map iteration feeding an accumulator — plus the same
// constructs outside the graph, where they are legal.
package fixture

import (
	"math/rand"
	"time"
)

//deepsketch:deterministic
func trainStep(w []float64, seed int64) {
	rng := rand.New(rand.NewSource(seed)) // explicit seeded source: allowed
	for i := range w {
		w[i] += rng.Float64() // method on *rand.Rand: allowed
	}
	reduce(w)
	jitter(w)
}

// reduce is reachable from trainStep, so it is checked.
func reduce(w []float64) {
	counts := map[string]float64{"a": 1, "b": 2}
	for _, v := range counts { // want "map iteration order is randomized per run"
		w[0] += v
	}
	keys := []string{"a", "b"}
	for _, k := range keys { // slice iteration: allowed
		w[0] += counts[k]
	}
}

// jitter is reachable from trainStep, so it is checked.
func jitter(w []float64) {
	w[0] += rand.Float64() // want "math/rand.Float64 draws from the global math/rand source"
	start := time.Now()    // want "time.Now makes the deterministic training path depend on the wall clock"
	_ = start
}

// telemetry is NOT reachable from a deterministic root: the same
// constructs draw no diagnostics here.
func telemetry() time.Time {
	m := map[string]int{"x": 1}
	for range m {
		_ = rand.Float64()
	}
	return time.Now()
}
