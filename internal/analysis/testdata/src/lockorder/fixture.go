// Package fixture seeds lockorder violations — a re-acquire, an
// inconsistent two-mutex ordering, a call-propagated cycle, and a
// declaration contradiction — next to the consistent nesting the
// analyzer must stay quiet on.
package fixture

import "sync"

//deepsketch:lockorder fixture.declpair.x<fixture.declpair.y

// consistent always nests inner under outer: one order, no cycle.
type consistent struct {
	outer sync.Mutex
	inner sync.Mutex
	n     int
}

func (c *consistent) first() {
	c.outer.Lock()
	defer c.outer.Unlock()
	c.inner.Lock()
	c.n++
	c.inner.Unlock()
}

func (c *consistent) second() {
	c.outer.Lock()
	c.inner.Lock()
	c.n--
	c.inner.Unlock()
	c.outer.Unlock()
}

// handoff releases before taking the other mutex: no ordering edge.
func (c *consistent) handoff() {
	c.inner.Lock()
	c.n++
	c.inner.Unlock()
	c.outer.Lock()
	c.n--
	c.outer.Unlock()
}

// rec re-acquires its own mutex, directly and through a call.
type rec struct {
	mu sync.Mutex
	n  int
}

func (r *rec) direct() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mu.Lock() // want "acquired while already held"
	r.n++
	r.mu.Unlock()
}

func (r *rec) helper() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
}

func (r *rec) viaCall() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.helper() // want "already held at this call"
}

// ab is locked a-then-b in one method and b-then-a in another: the
// classic two-goroutine deadlock signature.
type ab struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *ab) aThenB() {
	p.a.Lock()
	p.b.Lock() // want "potential deadlock: lock-acquisition cycle"
	p.b.Unlock()
	p.a.Unlock()
}

func (p *ab) bThenA() {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}

// cd closes its cycle through a call: cCallsD holds c and calls lockD.
type cd struct {
	c sync.Mutex
	d sync.Mutex
}

func (p *cd) lockD() {
	p.d.Lock()
	p.d.Unlock()
}

func (p *cd) cCallsD() {
	p.c.Lock()
	p.lockD() // want "potential deadlock: lock-acquisition cycle"
	p.c.Unlock()
}

func (p *cd) dThenC() {
	p.d.Lock()
	p.c.Lock()
	p.c.Unlock()
	p.d.Unlock()
}

// declpair's declared order is x<y; wrongWay acquires x while holding y,
// which both contradicts the declaration and closes a cycle with the
// declared edge.
type declpair struct {
	x sync.Mutex
	y sync.Mutex
}

func (p *declpair) wrongWay() {
	p.y.Lock()
	p.x.Lock() // want "contradicting the declared order" "lock-acquisition cycle"
	p.x.Unlock()
	p.y.Unlock()
}
