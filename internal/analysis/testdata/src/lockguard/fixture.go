// Package fixture seeds lockguard violations: guarded fields accessed
// without their mutex, access after an early unlock, and a guard naming a
// non-existent sibling — next to the compliant lock/defer-unlock,
// *Locked-suffix, and //deepsketch:locked shapes.
package fixture

import "sync"

type counter struct {
	mu   sync.Mutex
	n    int // guarded by mu
	name string
}

func (c *counter) incGood() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) incBad() {
	c.n++ // want "n is accessed without holding mu"
}

func (c *counter) readAfterUnlock() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	v += c.n // want "n is accessed without holding mu"
	return v
}

// bumpLocked's suffix marks it as called with mu held.
func (c *counter) bumpLocked() { c.n++ }

// bumpCallerHolds declares the same contract explicitly.
//
//deepsketch:locked mu
func (c *counter) bumpCallerHolds() { c.n++ }

// label is unguarded: free access is fine.
func (c *counter) rename(s string) { c.name = s }

type badGuard struct {
	lock sync.Mutex
	// guarded by missing
	v int // want "field is 'guarded by missing' but missing is not a sibling mutex field"
}

func (b *badGuard) get() int {
	b.lock.Lock()
	defer b.lock.Unlock()
	return b.v
}
