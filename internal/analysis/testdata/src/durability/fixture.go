// Package fixture seeds durability violations: renames that publish a
// temp file whose bytes were never fsynced, next to the compliant
// sync-then-rename and durable-helper shapes.
package fixture

import "os"

// persistBad is the seeded bug: write-temp-then-rename with no fsync, so
// a crash after the rename can publish a torn or empty file.
func persistBad(path string, blob []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path) // want "os.Rename finalizes a persist without a preceding Sync"
}

func persistGood(path string, blob []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// writeDurable fsyncs before returning, so callers may rename its output.
//
//deepsketch:durable
func writeDurable(path string, blob []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func persistViaHelper(path string, blob []byte) error {
	tmp := path + ".tmp"
	if err := writeDurable(tmp, blob); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// syncAfterRename must not count: the evidence has to precede the rename.
func persistLateSync(path string, blob []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil { // want "os.Rename finalizes a persist without a preceding Sync"
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}
