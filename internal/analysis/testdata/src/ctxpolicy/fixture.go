// Package fixture seeds ctxpolicy violations: a context.Context parameter
// out of first position and context origination inside an internal
// package, next to the compliant shapes and a declared exemption.
package fixture

import "context"

func estimateOK(ctx context.Context, q string) error {
	return ctx.Err()
}

func estimateBadOrder(q string, ctx context.Context) error { // want "context.Context must be the first parameter"
	return ctx.Err()
}

func originBad(q string) error {
	ctx := context.Background() // want "context.Background originates a context inside an internal package"
	return todoBad(ctx, q)
}

func todoBad(ctx context.Context, q string) error {
	other := context.TODO() // want "context.TODO originates a context inside an internal package"
	_ = other
	return ctx.Err()
}

// originAllowed declares its detachment, so no diagnostic fires.
//
//deepsketch:ctxorigin long-lived background actor outlives any one caller
func originAllowed() context.Context {
	return context.Background()
}
