// Package fixture seeds zeroalloc violations: an annotated kernel that
// allocates in every way the analyzer must catch, next to compliant
// kernels it must stay quiet on.
package fixture

type scratch struct {
	buf []float64
	idx map[string]int
}

type sink interface{ accept(v float64) }

//deepsketch:zeroalloc
func rowOK(b []float64, i int) []float64 { return b[i*8 : (i+1)*8] }

//deepsketch:zeroalloc
func dotOK(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("fixture: length mismatch") // failure path may allocate
	}
	var acc float64
	for i, v := range x {
		acc += v * y[i]
	}
	return acc
}

//deepsketch:zeroalloc
func (s *scratch) reserveOK(n int) {
	if cap(s.buf) < n {
		//deepsketch:ignore zeroalloc amortized arena growth, mirrors nn.Workspace
		s.buf = make([]float64, n)
	}
	s.buf = s.buf[:n]
}

func helper(x []float64) float64 { return x[0] }

//deepsketch:zeroalloc
func kernelBad(s *scratch, x []float64, name string) interface{} {
	out := make([]float64, len(x)) // want "make allocates in a zeroalloc function"
	out = append(out, 1)           // want "append may grow its backing array"
	p := new(scratch)              // want "new allocates in a zeroalloc function"
	_ = p
	fn := func() {}        // want "function literal allocates \(closure\)"
	fn()                   // want "dynamic call .* cannot be verified"
	tmp := []float64{1, 2} // want "composite literal allocates"
	_ = tmp
	q := &scratch{} // want "&composite literal escapes to the heap"
	_ = q
	lbl := name + "!" // want "string concatenation allocates"
	_ = lbl
	bs := []byte(name) // want "string to slice conversion allocates"
	_ = bs
	s.idx[name] = 1 // want "map write may allocate"
	_ = helper(x)   // want "call to .*helper, which is neither annotated"
	return out      // want "return boxes .* in a zeroalloc function"
}

//deepsketch:zeroalloc
func kernelIface(s sink, v float64) {
	s.accept(v) // want "interface method call accept cannot be verified"
}

//deepsketch:zeroalloc
func kernelBox(x []float64) {
	var box interface{}
	box = x // want "assignment boxes"
	_ = box
}
