package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
)

// EscapeBudget pins the compiler's escape and inline decisions for the
// //deepsketch:zeroalloc kernels. The zeroalloc analyzer proves the
// kernels never *call* an allocator, but a hot loop can still regress
// silently when gc stops inlining a callee or starts moving a local to
// the heap — decisions the source diff does not show. This analyzer runs
// `go build -gcflags=-m=2` over every package containing an annotated
// kernel, keeps the compiler facts that land inside annotated function
// bodies (can/cannot inline, moved to heap, escapes to heap, leaking
// param), and diffs them against the checked-in golden at
// internal/analysis/testdata/escape_budget.json. Intentional changes are
// recorded with `go run ./cmd/deepsketch-lint -escape -update ./...`.
var EscapeBudget = &Analyzer{
	Name: "escapebudget",
	Doc:  "compiler escape/inline facts for zeroalloc kernels must match the checked-in golden",
	Run:  runEscapeBudget,
}

// escapeGoldenRel is the golden's path under the module root.
const escapeGoldenRel = "internal/analysis/testdata/escape_budget.json"

// escapeGolden is the checked-in snapshot: compiler facts per annotated
// function, plus the toolchain that recorded them (escape analysis is a
// compiler implementation detail, so drift across Go releases is
// expected and the message points at the recording version).
type escapeGolden struct {
	Go        string              `json:"go"`
	Functions map[string][]string `json:"functions"`
}

func runEscapeBudget(pass *Pass) error {
	prog := pass.Prog
	prog.escOnce.Do(func() { prog.escDiags, prog.escErr = computeEscapeBudget(prog) })
	if prog.escErr != nil {
		return prog.escErr
	}
	for _, d := range prog.escDiags {
		if pass.Pkg.ContainsFile(prog.Fset, d.Pos.Filename) {
			pass.Reportf(posInPkg(prog.Fset, pass.Pkg, d.Pos), "%s", d.Message)
		}
	}
	return nil
}

// posInPkg maps a resolved token.Position back to a token.Pos inside the
// package so Reportf can re-resolve it (and apply line-level ignores).
func posInPkg(fset *token.FileSet, pkg *Package, pos token.Position) token.Pos {
	for _, f := range pkg.Files {
		tf := fset.File(f.Pos())
		if tf != nil && tf.Name() == pos.Filename && pos.Line <= tf.LineCount() {
			return tf.LineStart(pos.Line)
		}
	}
	return token.NoPos
}

// escapeTarget is one zeroalloc-annotated function declaration: the
// compiler facts whose positions land inside [startLine, endLine] of file
// belong to key.
type escapeTarget struct {
	key                string
	file               string
	startLine, endLine int
	pos                token.Position
	pkgPath            string
}

// escapeTargets collects the annotated declarations, ordered by position.
func escapeTargets(prog *Program) []*escapeTarget {
	var targets []*escapeTarget
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				key := declKey(pkg.Info, fd)
				if key == "" || !prog.Directives.Func(key).ZeroAlloc {
					continue
				}
				start := prog.Fset.Position(fd.Pos())
				end := prog.Fset.Position(fd.End())
				targets = append(targets, &escapeTarget{
					key:       key,
					file:      start.Filename,
					startLine: start.Line,
					endLine:   end.Line,
					pos:       start,
					pkgPath:   pkg.Path,
				})
			}
		}
	}
	sort.Slice(targets, func(i, j int) bool {
		if targets[i].file != targets[j].file {
			return targets[i].file < targets[j].file
		}
		return targets[i].startLine < targets[j].startLine
	})
	return targets
}

// computeEscapeBudget probes the compiler and diffs against the golden.
func computeEscapeBudget(prog *Program) ([]Diagnostic, error) {
	targets := escapeTargets(prog)
	if len(targets) == 0 {
		return nil, nil
	}
	goldenPath := prog.EscapeGolden
	if goldenPath == "" {
		if prog.ModuleDir == "" {
			// Fixture load without a module on disk: nothing to probe.
			return nil, nil
		}
		goldenPath = filepath.Join(prog.ModuleDir, escapeGoldenRel)
	}

	got, err := collectEscapeFacts(prog, targets)
	if err != nil {
		return nil, err
	}

	raw, err := os.ReadFile(goldenPath)
	if os.IsNotExist(err) {
		return []Diagnostic{{
			Analyzer: "escapebudget",
			Pos:      targets[0].pos,
			Message: fmt.Sprintf("no escape-budget golden at %s; record one with: go run ./cmd/deepsketch-lint -escape -update ./...",
				goldenPath),
		}}, nil
	} else if err != nil {
		return nil, fmt.Errorf("escapebudget: %w", err)
	}
	var golden escapeGolden
	if err := json.Unmarshal(raw, &golden); err != nil {
		return nil, fmt.Errorf("escapebudget: %s: %w", goldenPath, err)
	}

	var diags []Diagnostic
	for _, t := range targets {
		want, recorded := golden.Functions[t.key]
		if !recorded {
			diags = append(diags, escapeDrift(t, golden.Go,
				fmt.Sprintf("function is not in the golden (new or renamed kernel); current facts: %s", factList(got[t.key]))))
			continue
		}
		if missing, extra := diffFacts(want, got[t.key]); len(missing) > 0 || len(extra) > 0 {
			var parts []string
			if len(missing) > 0 {
				parts = append(parts, "lost "+factList(missing))
			}
			if len(extra) > 0 {
				parts = append(parts, "gained "+factList(extra))
			}
			diags = append(diags, escapeDrift(t, golden.Go, strings.Join(parts, "; ")))
		}
	}
	return diags, nil
}

func escapeDrift(t *escapeTarget, goldenGo, detail string) Diagnostic {
	return Diagnostic{
		Analyzer: "escapebudget",
		Pos:      t.pos,
		Message: fmt.Sprintf("escape budget drift for %s (golden recorded with %s, running %s): %s; if intended, regenerate with: go run ./cmd/deepsketch-lint -escape -update ./...",
			t.key, goldenGo, runtime.Version(), detail),
	}
}

// diffFacts returns the golden facts the compiler no longer reports and
// the new facts the golden does not record. Both inputs are sorted.
func diffFacts(want, got []string) (missing, extra []string) {
	wantSet := map[string]bool{}
	for _, f := range want {
		wantSet[f] = true
	}
	gotSet := map[string]bool{}
	for _, f := range got {
		gotSet[f] = true
		if !wantSet[f] {
			extra = append(extra, f)
		}
	}
	for _, f := range want {
		if !gotSet[f] {
			missing = append(missing, f)
		}
	}
	return missing, extra
}

func factList(facts []string) string {
	if len(facts) == 0 {
		return "[]"
	}
	return "[" + strings.Join(facts, "; ") + "]"
}

// collectEscapeFacts runs `go build -gcflags=-m=2` over the packages
// containing the targets and returns the per-function compiler facts,
// sorted and deduplicated.
func collectEscapeFacts(prog *Program, targets []*escapeTarget) (map[string][]string, error) {
	byPkg := map[string]bool{}
	for _, t := range targets {
		byPkg[t.pkgPath] = true
	}
	pkgs := make([]string, 0, len(byPkg))
	for p := range byPkg {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)

	// -gcflags without a package pattern applies only to the packages named
	// on the command line, so dependencies are not re-probed. The compiler
	// replays cached diagnostics, so warm-cache runs stay fast.
	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m=2"}, pkgs...)...)
	cmd.Dir = prog.ModuleDir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("escapebudget: go build -gcflags=-m=2: %w\n%s", err, out)
	}

	// Index targets by file for line attribution.
	byFile := map[string][]*escapeTarget{}
	for _, t := range targets {
		byFile[t.file] = append(byFile[t.file], t)
	}

	facts := map[string]map[string]bool{}
	for _, t := range targets {
		facts[t.key] = map[string]bool{}
	}
	for _, line := range strings.Split(string(out), "\n") {
		file, lineNo, msg, ok := splitDiagLine(line)
		if !ok {
			continue
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(prog.ModuleDir, file)
		}
		fact := classifyEscapeFact(msg)
		if fact == "" {
			continue
		}
		for _, t := range byFile[filepath.Clean(file)] {
			if t.startLine <= lineNo && lineNo <= t.endLine {
				facts[t.key][fact] = true
				break
			}
		}
	}

	result := map[string][]string{}
	for key, set := range facts {
		list := make([]string, 0, len(set))
		for f := range set {
			list = append(list, f)
		}
		sort.Strings(list)
		result[key] = list
	}
	return result, nil
}

// splitDiagLine parses one "file.go:line:col: message" compiler line.
func splitDiagLine(line string) (file string, lineNo int, msg string, ok bool) {
	i := strings.Index(line, ".go:")
	if i < 0 {
		return "", 0, "", false
	}
	file = line[:i+3]
	rest := line[i+4:]
	j := strings.Index(rest, ":")
	if j < 0 {
		return "", 0, "", false
	}
	for _, c := range rest[:j] {
		if c < '0' || c > '9' {
			return "", 0, "", false
		}
		lineNo = lineNo*10 + int(c-'0')
	}
	if j == 0 {
		return "", 0, "", false
	}
	rest = rest[j+1:]
	// Skip the column.
	k := strings.Index(rest, ": ")
	if k < 0 {
		return "", 0, "", false
	}
	return file, lineNo, rest[k+2:], true
}

// costRe normalizes inline-cost numbers, which shift with unrelated
// edits; the fact we pin is *that* the compiler refused, not the score.
var costRe = regexp.MustCompile(`\b(cost|budget|size) \d+`)

// classifyEscapeFact maps one compiler message to a stable fact string,
// or "" for messages outside the budget (call-site inlining notes,
// does-not-escape confirmations, -m=2 flow traces).
func classifyEscapeFact(msg string) string {
	if strings.HasPrefix(msg, " ") {
		// -m=2 flow/indent detail lines share the position prefix of the
		// decision they explain; the decision line is the fact.
		return ""
	}
	switch {
	case strings.HasPrefix(msg, "can inline "):
		name := msg[len("can inline "):]
		if i := strings.Index(name, " with cost "); i >= 0 {
			name = name[:i]
		}
		return "can inline " + name
	case strings.HasPrefix(msg, "cannot inline "):
		return costRe.ReplaceAllString(strings.TrimSuffix(msg, ":"), "$1 N")
	case strings.HasPrefix(msg, "moved to heap: "):
		return msg
	case strings.HasPrefix(msg, "leaking param"):
		return strings.TrimSuffix(msg, ":")
	case strings.HasSuffix(strings.TrimSuffix(msg, ":"), "escapes to heap"):
		return strings.TrimSuffix(msg, ":")
	}
	return ""
}

// WriteEscapeGolden probes the compiler for the program's zeroalloc
// kernels and writes the golden snapshot, returning its path. Driven by
// `deepsketch-lint -escape -update`.
func WriteEscapeGolden(prog *Program) (string, error) {
	targets := escapeTargets(prog)
	if len(targets) == 0 {
		return "", fmt.Errorf("escapebudget: no //deepsketch:zeroalloc functions in the loaded packages")
	}
	path := prog.EscapeGolden
	if path == "" {
		if prog.ModuleDir == "" {
			return "", fmt.Errorf("escapebudget: no module directory to write the golden under")
		}
		path = filepath.Join(prog.ModuleDir, escapeGoldenRel)
	}
	facts, err := collectEscapeFacts(prog, targets)
	if err != nil {
		return "", err
	}
	golden := escapeGolden{Go: runtime.Version(), Functions: facts}
	raw, err := json.MarshalIndent(&golden, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
