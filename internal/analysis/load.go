package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// The loader type-checks the module from source with zero third-party
// dependencies: `go list -export -json -deps` names every package's
// compiler export data in the build cache, a lookup-function importer
// (go/importer.ForCompiler) resolves imports from it, and go/types checks
// the module's own packages from their parsed sources. That yields full
// AST + type information for the code under analysis without needing
// golang.org/x/tools.

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Export     string
	GoFiles    []string
	Dir        string
	Standard   bool
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// Load loads and type-checks the packages matched by patterns (relative
// to dir), plus type information for everything they import, and returns
// a Program over the module's own packages.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Export,GoFiles,Dir,Standard,Module,Error",
		"-deps", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %w\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var mods []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && !p.Standard {
			mods = append(mods, p)
		}
	}
	if len(mods) == 0 {
		return nil, fmt.Errorf("analysis: no module packages match %v", patterns)
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	prog := &Program{
		Fset:       fset,
		Directives: newIndex(),
		sourcePkgs: map[string]bool{},
	}
	for _, p := range mods {
		prog.sourcePkgs[p.ImportPath] = true
		if prog.ModuleDir == "" && p.Module != nil && p.Module.Dir != "" {
			prog.ModuleDir = p.Module.Dir
		}
	}
	for _, p := range mods {
		var files []*ast.File
		var names []string
		for _, name := range p.GoFiles {
			names = append(names, filepath.Join(p.Dir, name))
		}
		for _, name := range names {
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			files = append(files, f)
		}
		pkg, err := typeCheck(fset, imp, p.ImportPath, files, prog)
		if err != nil {
			return nil, err
		}
		pkg.Dir = p.Dir
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// LoadFiles type-checks the given source files as a single package with
// import path pkgPath, resolving their (standard-library) imports from
// compiler export data. It backs the analyzer fixture tests.
func LoadFiles(pkgPath string, filenames ...string) (*Program, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			path := spec.Path.Value
			importSet[path[1:len(path)-1]] = true
		}
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		args := []string{"list", "-e", "-export", "-json=ImportPath,Export,Error", "-deps", "--"}
		for path := range importSet {
			args = append(args, path)
		}
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("analysis: go list: %w\n%s", err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listPkg
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, fmt.Errorf("analysis: go list output: %w", err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	prog := &Program{
		Fset:       fset,
		Directives: newIndex(),
		sourcePkgs: map[string]bool{pkgPath: true},
	}
	pkg, err := typeCheck(fset, exportImporter(fset, exports), pkgPath, files, prog)
	if err != nil {
		return nil, err
	}
	prog.Packages = append(prog.Packages, pkg)
	return prog, nil
}

// exportImporter resolves imports from the build cache's export data.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// typeCheck checks one package from source and indexes its directives.
func typeCheck(fset *token.FileSet, imp types.Importer, path string, files []*ast.File, prog *Program) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Files: files, Types: tpkg, Info: info}
	prog.Directives.indexPackage(fset, pkg)
	return pkg, nil
}
