package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// FuncDirectives are the //deepsketch: annotations attached to one
// function's doc comment.
type FuncDirectives struct {
	// ZeroAlloc marks an allocation-free kernel (zeroalloc analyzer).
	ZeroAlloc bool
	// Deterministic marks a root of the determinism call graph.
	Deterministic bool
	// Durable declares that the function fsyncs the file named by its
	// path argument before returning (durability analyzer).
	Durable bool
	// CtxOrigin is the justification for originating a context inside an
	// internal package ("" = not exempt).
	CtxOrigin string
	// Locked lists receiver mutex fields the method assumes held.
	Locked []string
}

type ignoreKey struct {
	file string
	line int
}

// A LockOrderDecl is one //deepsketch:lockorder a<b declaration: the
// intended acquisition order between two mutexes, named as
// <pkgname>.<Type>.<field> (the lockorder analyzer's node names).
type LockOrderDecl struct {
	Before, After string
	Pos           token.Position
}

// Index is the program-wide registry of //deepsketch: directives, keyed
// by funcKey so annotations resolve across packages (an annotation on
// nn.ForwardFused is visible while analyzing mscn, where the callee
// object comes from export data rather than source).
type Index struct {
	funcs   map[string]FuncDirectives
	ignores map[ignoreKey]map[string]bool // analyzer names ignored on a line
	// bg marks lines carrying a //deepsketch:bg <owner> <reason>
	// annotation: the go statement on (or just below) that line is a
	// deliberate fire-and-forget launch with a named owner.
	bg map[ignoreKey]bool
	// LockOrders are the declared //deepsketch:lockorder a<b partial-order
	// edges, program-wide.
	LockOrders []LockOrderDecl
	// Problems are malformed directives, reported by Run.
	Problems []Diagnostic
}

func newIndex() *Index {
	return &Index{
		funcs:   map[string]FuncDirectives{},
		ignores: map[ignoreKey]map[string]bool{},
		bg:      map[ignoreKey]bool{},
	}
}

// Func returns the directives attached to fn's declaration (zero value if
// none).
func (x *Index) Func(key string) FuncDirectives { return x.funcs[key] }

// ignored reports whether the analyzer is suppressed on file:line.
func (x *Index) ignored(analyzer, file string, line int) bool {
	return x.ignores[ignoreKey{file, line}][analyzer]
}

// Background reports whether file:line carries a //deepsketch:bg
// annotation (trailing on the go statement's line or standalone above it).
func (x *Index) Background(file string, line int) bool {
	return x.bg[ignoreKey{file, line}]
}

const directivePrefix = "//deepsketch:"

// knownVerbs validates directive spelling; anything else under the
// deepsketch: prefix is reported as a problem so a typo cannot silently
// disable a check.
var knownVerbs = map[string]bool{
	"zeroalloc":     true,
	"deterministic": true,
	"durable":       true,
	"ctxorigin":     true,
	"locked":        true,
	"ignore":        true,
	"bg":            true,
	"lockorder":     true,
	"errok":         true,
}

// indexPackage scans one package's comments for directives.
func (x *Index) indexPackage(fset *token.FileSet, pkg *Package) {
	for _, file := range pkg.Files {
		// Line-level ignores and spelling validation over every comment.
		for _, group := range file.Comments {
			for _, c := range group.List {
				x.indexComment(fset, c)
			}
		}
		// Function directives from doc comments.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			key := declKey(pkg.Info, fd)
			if key == "" {
				continue
			}
			d := x.funcs[key]
			for _, c := range fd.Doc.List {
				verb, rest, ok := splitDirective(c.Text)
				if !ok {
					continue
				}
				switch verb {
				case "zeroalloc":
					d.ZeroAlloc = true
				case "deterministic":
					d.Deterministic = true
				case "durable":
					d.Durable = true
				case "ctxorigin":
					if rest == "" {
						x.problem(fset, c.Pos(), "ctxorigin directive needs a justification: //deepsketch:ctxorigin <reason>")
						continue
					}
					d.CtxOrigin = rest
				case "locked":
					if rest == "" {
						x.problem(fset, c.Pos(), "locked directive needs a mutex field: //deepsketch:locked <mu>")
						continue
					}
					d.Locked = append(d.Locked, strings.Fields(rest)...)
				}
			}
			x.funcs[key] = d
		}
	}
}

// indexComment handles one comment: line-scoped directives (ignore, bg,
// errok) register their line and the next (so both trailing and
// standalone placements work), lockorder declarations join the
// program-wide list, and unknown deepsketch: verbs become problems.
func (x *Index) indexComment(fset *token.FileSet, c *ast.Comment) {
	verb, rest, ok := splitDirective(c.Text)
	if !ok {
		return
	}
	if !knownVerbs[verb] {
		x.problem(fset, c.Pos(), "unknown directive //deepsketch:%s", verb)
		return
	}
	fields := strings.Fields(rest)
	pos := fset.Position(c.Pos())
	switch verb {
	case "ignore":
		if len(fields) < 2 {
			x.problem(fset, c.Pos(), "ignore directive needs an analyzer and a reason: //deepsketch:ignore <analyzer> <reason>")
			return
		}
		x.markLines(pos, func(key ignoreKey) {
			if x.ignores[key] == nil {
				x.ignores[key] = map[string]bool{}
			}
			x.ignores[key][fields[0]] = true
		})
	case "bg":
		if len(fields) < 2 {
			x.problem(fset, c.Pos(), "bg directive needs an owner and a reason: //deepsketch:bg <owner> <reason>")
			return
		}
		x.markLines(pos, func(key ignoreKey) { x.bg[key] = true })
	case "errok":
		if len(fields) < 1 {
			x.problem(fset, c.Pos(), "errok directive needs a reason: //deepsketch:errok <reason>")
			return
		}
		// errok is sugar for suppressing the errsink analyzer on the
		// discard line; it shares the ignore machinery.
		x.markLines(pos, func(key ignoreKey) {
			if x.ignores[key] == nil {
				x.ignores[key] = map[string]bool{}
			}
			x.ignores[key]["errsink"] = true
		})
	case "lockorder":
		before, after, ok := strings.Cut(rest, "<")
		before, after = strings.TrimSpace(before), strings.TrimSpace(after)
		if !ok || before == "" || after == "" || strings.ContainsAny(after, "< \t") {
			x.problem(fset, c.Pos(), "lockorder directive declares one ordered pair: //deepsketch:lockorder <mu-a><<mu-b>")
			return
		}
		x.LockOrders = append(x.LockOrders, LockOrderDecl{Before: before, After: after, Pos: pos})
	}
}

// markLines applies fn to the directive's own line and the next, so both
// trailing and standalone-above placements cover the annotated statement.
func (x *Index) markLines(pos token.Position, fn func(ignoreKey)) {
	for _, line := range []int{pos.Line, pos.Line + 1} {
		fn(ignoreKey{pos.Filename, line})
	}
}

func (x *Index) problem(fset *token.FileSet, pos token.Pos, format string, args ...any) {
	x.Problems = append(x.Problems, Diagnostic{
		Analyzer: "directives",
		Pos:      fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// splitDirective parses "//deepsketch:verb rest..." comments.
func splitDirective(text string) (verb, rest string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	body := text[len(directivePrefix):]
	if i := strings.IndexAny(body, " \t"); i >= 0 {
		return body[:i], strings.TrimSpace(body[i+1:]), true
	}
	return body, "", true
}
