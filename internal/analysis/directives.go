package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// FuncDirectives are the //deepsketch: annotations attached to one
// function's doc comment.
type FuncDirectives struct {
	// ZeroAlloc marks an allocation-free kernel (zeroalloc analyzer).
	ZeroAlloc bool
	// Deterministic marks a root of the determinism call graph.
	Deterministic bool
	// Durable declares that the function fsyncs the file named by its
	// path argument before returning (durability analyzer).
	Durable bool
	// CtxOrigin is the justification for originating a context inside an
	// internal package ("" = not exempt).
	CtxOrigin string
	// Locked lists receiver mutex fields the method assumes held.
	Locked []string
}

type ignoreKey struct {
	file string
	line int
}

// Index is the program-wide registry of //deepsketch: directives, keyed
// by funcKey so annotations resolve across packages (an annotation on
// nn.ForwardFused is visible while analyzing mscn, where the callee
// object comes from export data rather than source).
type Index struct {
	funcs   map[string]FuncDirectives
	ignores map[ignoreKey]map[string]bool // analyzer names ignored on a line
	// Problems are malformed directives, reported by Run.
	Problems []Diagnostic
}

func newIndex() *Index {
	return &Index{
		funcs:   map[string]FuncDirectives{},
		ignores: map[ignoreKey]map[string]bool{},
	}
}

// Func returns the directives attached to fn's declaration (zero value if
// none).
func (x *Index) Func(key string) FuncDirectives { return x.funcs[key] }

// ignored reports whether the analyzer is suppressed on file:line.
func (x *Index) ignored(analyzer, file string, line int) bool {
	return x.ignores[ignoreKey{file, line}][analyzer]
}

const directivePrefix = "//deepsketch:"

// knownVerbs validates directive spelling; anything else under the
// deepsketch: prefix is reported as a problem so a typo cannot silently
// disable a check.
var knownVerbs = map[string]bool{
	"zeroalloc":     true,
	"deterministic": true,
	"durable":       true,
	"ctxorigin":     true,
	"locked":        true,
	"ignore":        true,
}

// indexPackage scans one package's comments for directives.
func (x *Index) indexPackage(fset *token.FileSet, pkg *Package) {
	for _, file := range pkg.Files {
		// Line-level ignores and spelling validation over every comment.
		for _, group := range file.Comments {
			for _, c := range group.List {
				x.indexComment(fset, c)
			}
		}
		// Function directives from doc comments.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			key := declKey(pkg.Info, fd)
			if key == "" {
				continue
			}
			d := x.funcs[key]
			for _, c := range fd.Doc.List {
				verb, rest, ok := splitDirective(c.Text)
				if !ok {
					continue
				}
				switch verb {
				case "zeroalloc":
					d.ZeroAlloc = true
				case "deterministic":
					d.Deterministic = true
				case "durable":
					d.Durable = true
				case "ctxorigin":
					if rest == "" {
						x.problem(fset, c.Pos(), "ctxorigin directive needs a justification: //deepsketch:ctxorigin <reason>")
						continue
					}
					d.CtxOrigin = rest
				case "locked":
					if rest == "" {
						x.problem(fset, c.Pos(), "locked directive needs a mutex field: //deepsketch:locked <mu>")
						continue
					}
					d.Locked = append(d.Locked, strings.Fields(rest)...)
				}
			}
			x.funcs[key] = d
		}
	}
}

// indexComment handles one comment: ignore directives register their line
// and the next (so both trailing and standalone placements work), and
// unknown deepsketch: verbs become problems.
func (x *Index) indexComment(fset *token.FileSet, c *ast.Comment) {
	verb, rest, ok := splitDirective(c.Text)
	if !ok {
		return
	}
	if !knownVerbs[verb] {
		x.problem(fset, c.Pos(), "unknown directive //deepsketch:%s", verb)
		return
	}
	if verb != "ignore" {
		return
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		x.problem(fset, c.Pos(), "ignore directive needs an analyzer and a reason: //deepsketch:ignore <analyzer> <reason>")
		return
	}
	pos := fset.Position(c.Pos())
	for _, line := range []int{pos.Line, pos.Line + 1} {
		key := ignoreKey{pos.Filename, line}
		if x.ignores[key] == nil {
			x.ignores[key] = map[string]bool{}
		}
		x.ignores[key][fields[0]] = true
	}
}

func (x *Index) problem(fset *token.FileSet, pos token.Pos, format string, args ...any) {
	x.Problems = append(x.Problems, Diagnostic{
		Analyzer: "directives",
		Pos:      fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// splitDirective parses "//deepsketch:verb rest..." comments.
func splitDirective(text string) (verb, rest string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	body := text[len(directivePrefix):]
	if i := strings.IndexAny(body, " \t"); i >= 0 {
		return body[:i], strings.TrimSpace(body[i+1:]), true
	}
	return body, "", true
}
