package analysis

import (
	"go/ast"
	"go/types"
)

// GoroLeak checks that every go statement in non-test code has a provable
// join or shutdown path. The serving system is a long-lived daemon: a
// goroutine nothing ever joins or cancels is either a leak (it
// accumulates across refresh cycles) or a shutdown race (Close returns
// while the goroutine is still writing). A launch is accepted when one of
// these holds:
//
//   - WaitGroup pair: the launched func literal calls <wg>.Done()
//     (usually deferred) and the enclosing function calls <wg>.Add(...)
//     on the same WaitGroup before the go statement — the classic
//     fork/join shard.
//   - Result channel: the launched func literal sends on (or closes) a
//     channel the enclosing function receives from, so the launcher
//     observes completion (the pipelined-validation shape).
//   - Done-channel wait: the launched func literal receives from a
//     channel owned outside it (<-c.stop, <-ctx.Done()), i.e. it blocks
//     on an owner-controlled shutdown signal.
//   - Ctx-bound callee: the launched call's first argument is a
//     context.Context that is not provably uncancellable. Passing a bare
//     context.Background()/TODO() is flagged — nothing can ever stop the
//     goroutine.
//   - Done-channel callee: the launched method's own body receives from a
//     channel rooted at its receiver (the coalescer's loop selecting on
//     c.stop).
//
// A deliberate fire-and-forget launch carries //deepsketch:bg <owner>
// <reason> on (or directly above) the go statement, which names who owns
// the goroutine's lifetime and keeps the decision auditable.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "every goroutine launch needs a provable join/shutdown path or a //deepsketch:bg owner",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					checkGoStmt(pass, fd, g)
				}
				return true
			})
		}
	}
	return nil
}

func checkGoStmt(pass *Pass, enclosing *ast.FuncDecl, g *ast.GoStmt) {
	pos := pass.Fset().Position(g.Pos())
	if pass.Prog.Directives.Background(pos.Filename, pos.Line) {
		return
	}
	info := pass.Pkg.Info

	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		if litHasJoinPath(pass, enclosing, g, lit) {
			return
		}
		pass.Reportf(g.Pos(), "goroutine has no provable join/shutdown path (no paired WaitGroup.Add/Done, no result channel received by the launcher, no done-channel wait); join it or annotate //deepsketch:bg <owner> <reason>")
		return
	}

	// Named function or method launch: ctx-bound or done-channel callee.
	if len(g.Call.Args) > 0 {
		if t := info.Types[g.Call.Args[0]].Type; t != nil && isContextType(t) {
			if bg := uncancellableCtx(info, enclosing, g.Call.Args[0]); bg != "" {
				pass.Reportf(g.Pos(), "goroutine is launched with %s, which nothing can ever cancel; derive a cancellable context (context.WithCancel, signal.NotifyContext) or annotate //deepsketch:bg <owner> <reason>", bg)
			}
			return
		}
	}
	if fn := calleeFunc(info, g.Call); fn != nil {
		if site := pass.Prog.funcDecl(funcKey(fn)); site != nil && calleeWaitsOnOwnerChannel(site) {
			return
		}
	}
	pass.Reportf(g.Pos(), "goroutine has no provable join/shutdown path (callee takes no context and does not wait on an owner-controlled channel); join it with a WaitGroup or annotate //deepsketch:bg <owner> <reason>")
}

// litHasJoinPath checks the three func-literal patterns: WaitGroup pair,
// result channel, done-channel wait.
func litHasJoinPath(pass *Pass, enclosing *ast.FuncDecl, g *ast.GoStmt, lit *ast.FuncLit) bool {
	info := pass.Pkg.Info

	var (
		doneRefs  []chainRef // WaitGroups the literal calls Done() on
		sendChans []types.Object
		waits     bool // literal blocks on an externally-owned channel
	)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if ref, name := waitGroupMethod(info, n); name == "Done" {
				doneRefs = append(doneRefs, ref)
			}
			if b := calleeBuiltin(info, n); b == "close" && len(n.Args) == 1 {
				if obj := rootObject(info, n.Args[0]); obj != nil {
					sendChans = append(sendChans, obj)
				}
			}
		case *ast.SendStmt:
			if obj := rootObject(info, n.Chan); obj != nil {
				sendChans = append(sendChans, obj)
			}
		case *ast.UnaryExpr:
			// <-e where e has channel type: the goroutine blocks on a
			// signal someone outside it controls (c.stop, ctx.Done()).
			if n.Op.String() == "<-" {
				if t := info.Types[n.X].Type; t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						waits = true
					}
				}
			}
		case *ast.RangeStmt:
			if t := info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					waits = true
				}
			}
		}
		return true
	})
	if waits {
		return true
	}

	// WaitGroup pair: a matching Add before the go statement, outside the
	// literal.
	for _, done := range doneRefs {
		found := false
		ast.Inspect(enclosing.Body, func(n ast.Node) bool {
			if found || n == lit {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && call.Pos() < g.Pos() {
				if ref, name := waitGroupMethod(info, call); name == "Add" && ref.equal(done) {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}

	// Result channel: the enclosing function receives from (or ranges
	// over) a channel the literal sends on.
	for _, ch := range sendChans {
		received := false
		ast.Inspect(enclosing.Body, func(n ast.Node) bool {
			if received || n == lit {
				return false
			}
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" && rootObject(info, n.X) == ch {
					received = true
				}
			case *ast.RangeStmt:
				if rootObject(info, n.X) == ch {
					received = true
				}
			case *ast.CallExpr:
				// The channel handed to a helper (wg-style collector) also
				// counts as the launcher keeping a handle on completion.
				for _, arg := range n.Args {
					if rootObject(info, arg) == ch {
						received = true
					}
				}
			}
			return true
		})
		if received {
			return true
		}
	}
	return false
}

// calleeWaitsOnOwnerChannel reports whether the launched method's body
// receives from a channel rooted at its receiver or a package-level
// variable — the loop-until-closed actor shape.
func calleeWaitsOnOwnerChannel(site *declSite) bool {
	if site.fd.Body == nil {
		return false
	}
	info := site.pkg.Info
	waits := false
	ast.Inspect(site.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				if t := info.Types[n.X].Type; t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						waits = true
					}
				}
			}
		case *ast.RangeStmt:
			if t := info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					waits = true
				}
			}
		}
		return true
	})
	return waits
}

// uncancellableCtx reports a non-empty description when the context
// argument is provably uncancellable: a direct context.Background()/TODO()
// call, or an identifier whose defining assignment in the enclosing
// function is one. Anything else (a parameter, a field, a WithCancel
// result) gets the benefit of the doubt — ctxpolicy keeps internal
// packages honest about threading.
func uncancellableCtx(info *types.Info, enclosing *ast.FuncDecl, arg ast.Expr) string {
	if name := backgroundCall(info, arg); name != "" {
		return name
	}
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return ""
	}
	obj := info.Uses[id]
	if obj == nil {
		return ""
	}
	result := ""
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			lid, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			if info.Defs[lid] == obj || info.Uses[lid] == obj {
				if name := backgroundCall(info, assign.Rhs[i]); name != "" {
					result = name
				} else {
					result = "" // reassigned from something cancellable
				}
			}
		}
		return true
	})
	return result
}

// backgroundCall matches a direct context.Background()/context.TODO()
// call and returns its rendered name, or "".
func backgroundCall(info *types.Info, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return "context." + fn.Name() + "()"
	}
	return ""
}

// rootObject identifies a channel-valued expression for equality between
// a send site and a receive site: a plain identifier resolves to its
// object, a selector (c.done) to the final field's object. Calls and
// other expressions return nil.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		if obj := info.Uses[e.Sel]; obj != nil {
			return obj
		}
		return info.Defs[e.Sel]
	}
	return nil
}

// chainRef is a canonicalized reference like wg, s.bg, or c.state.wg: the
// root object plus the printed selector path, comparable across the
// launch site and the literal body (closures capture the same root
// object).
type chainRef struct {
	root types.Object
	path string
}

func (a chainRef) equal(b chainRef) bool {
	return a.root != nil && a.root == b.root && a.path == b.path
}

// resolveChain canonicalizes an ident or selector chain; ok is false for
// anything else (calls, index expressions).
func resolveChain(info *types.Info, e ast.Expr) (chainRef, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return chainRef{}, false
		}
		return chainRef{root: obj}, true
	case *ast.SelectorExpr:
		base, ok := resolveChain(info, e.X)
		if !ok {
			return chainRef{}, false
		}
		base.path += "." + e.Sel.Name
		return base, true
	}
	return chainRef{}, false
}

// waitGroupMethod matches <chain>.Add(...) / <chain>.Done() /
// <chain>.Wait() calls on sync.WaitGroup values and returns the
// canonicalized WaitGroup reference plus the method name ("" otherwise).
func waitGroupMethod(info *types.Info, call *ast.CallExpr) (chainRef, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return chainRef{}, ""
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return chainRef{}, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return chainRef{}, ""
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "WaitGroup" {
		return chainRef{}, ""
	}
	ref, ok := resolveChain(info, sel.X)
	if !ok {
		return chainRef{}, ""
	}
	return ref, fn.Name()
}
