package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEscapeBudget exercises the full golden lifecycle against a real
// on-disk module (the probe shells out to go build, so an in-memory
// fixture cannot drive it): missing golden reports, -update records the
// compiler's facts, a matching golden is quiet, and a tampered golden
// reports drift.
func TestEscapeBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build")
	}
	dir := t.TempDir()
	write := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module escfix\n\ngo 1.24\n")
	write("esc.go", `package escfix

// Sum is a clean kernel: nothing escapes, the compiler can inline it.
//
//deepsketch:zeroalloc
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Leak seeds an escape: the make's backing array outlives the frame.
//
//deepsketch:zeroalloc
func Leak(n int) []float64 {
	buf := make([]float64, n)
	return buf
}
`)
	golden := filepath.Join(dir, "escape_budget.json")

	load := func() *Program {
		t.Helper()
		prog, err := Load(dir, "./...")
		if err != nil {
			t.Fatalf("loading temp module: %v", err)
		}
		prog.EscapeGolden = golden
		return prog
	}
	run := func(prog *Program) []Diagnostic {
		t.Helper()
		diags, err := Run(prog, []*Analyzer{EscapeBudget})
		if err != nil {
			t.Fatalf("running escapebudget: %v", err)
		}
		return diags
	}

	// 1. No golden yet: one finding pointing at the update command.
	diags := run(load())
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "no escape-budget golden") {
		t.Fatalf("missing-golden run: got %v, want one no-golden finding", diags)
	}

	// 2. Record the golden and check the probe saw the seeded escape.
	path, err := WriteEscapeGolden(load())
	if err != nil {
		t.Fatalf("writing golden: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var g escapeGolden
	if err := json.Unmarshal(raw, &g); err != nil {
		t.Fatalf("golden is not valid JSON: %v", err)
	}
	if g.Go == "" {
		t.Error("golden does not record the go version")
	}
	if !hasFactContaining(g.Functions["escfix.Leak"], "escapes to heap") {
		t.Errorf("golden for escfix.Leak misses the seeded escape: %v", g.Functions["escfix.Leak"])
	}
	if !hasFactContaining(g.Functions["escfix.Sum"], "can inline Sum") {
		t.Errorf("golden for escfix.Sum misses the inline fact: %v", g.Functions["escfix.Sum"])
	}

	// 3. Matching golden: quiet.
	if diags := run(load()); len(diags) != 0 {
		t.Fatalf("matching golden still reports: %v", diags)
	}

	// 4. Tampered golden (a fact the compiler no longer emits): drift.
	g.Functions["escfix.Sum"] = append(g.Functions["escfix.Sum"], "moved to heap: ghost")
	raw, err = json.Marshal(&g)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(golden, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	diags = run(load())
	if len(diags) != 1 ||
		!strings.Contains(diags[0].Message, "escape budget drift for escfix.Sum") ||
		!strings.Contains(diags[0].Message, "moved to heap: ghost") {
		t.Fatalf("tampered golden: got %v, want one drift finding for escfix.Sum", diags)
	}
}

func hasFactContaining(facts []string, substr string) bool {
	for _, f := range facts {
		if strings.Contains(f, substr) {
			return true
		}
	}
	return false
}
