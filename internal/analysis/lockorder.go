package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// LockOrder builds the module-wide lock-acquisition graph and reports
// cycles — the static signature of a potential deadlock. A node is one
// mutex identity (a sync.Mutex/RWMutex struct field or package-level
// variable, named <pkg>.<Type>.<field>); an edge a→b is recorded when
// some function acquires b while holding a, either directly or through a
// static call chain (f holds a and calls g, which — transitively —
// acquires b). Held-ness uses the same linear source-order replay as
// lockguard: Lock/RLock acquires, a non-deferred Unlock releases, a
// deferred unlock holds to function end.
//
// The intended partial order is declared with //deepsketch:lockorder a<b
// (names may drop the package path down to <pkgname>.<Type>.<field>).
// Declared edges join the graph, so a pair of contradictory declarations
// is itself a cycle, and an observed acquisition b→a that contradicts a
// declared a<b is reported directly at its witness site. A mutex
// re-acquired while already held (possibly through calls) is reported as
// a self-deadlock candidate.
//
// The graph is instance-insensitive: two locks of the same field on
// different instances collapse into one node, which over-approximates.
// A false cycle from that collapse is suppressed at its witness line with
// //deepsketch:ignore lockorder <reason>.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "the module-wide lock-acquisition graph must match the declared partial order and stay acyclic",
	Run:  runLockOrder,
}

// lockEdge is one observed (or declared) acquisition ordering.
type lockEdge struct {
	from, to string
	pos      token.Pos // witness: the inner acquisition or call site
	via      string    // callee funcKey for call-propagated edges, "" for direct
	declared bool
}

func runLockOrder(pass *Pass) error {
	pass.Prog.lockOnce.Do(func() { pass.Prog.lockDiags = computeLockOrder(pass.Prog) })
	// Diagnostics are computed once program-wide; each is emitted through
	// the pass whose package owns its file, so ignores and per-package
	// attribution keep working.
	for _, d := range pass.Prog.lockDiags {
		if pass.Pkg.ContainsFile(pass.Prog.Fset, d.Pos.Filename) {
			if pass.Prog.Directives.ignored(pass.Analyzer.Name, d.Pos.Filename, d.Pos.Line) {
				continue
			}
			*pass.diags = append(*pass.diags, d)
		}
	}
	return nil
}

func computeLockOrder(prog *Program) []Diagnostic {
	var (
		edges    []lockEdge
		acquires = map[string]map[string]bool{} // funcKey -> mutex nodes acquired directly
		callees  = map[string][]string{}        // funcKey -> static callees (source packages)
		// callsUnderLock: calls made while holding at least one mutex.
		callsUnder []struct {
			held   []string
			callee string
			pos    token.Pos
		}
		nodes = map[string]bool{}
	)

	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller := declKey(pkg.Info, fd)
				if caller == "" {
					continue
				}
				type event struct {
					pos      token.Pos
					node     string // mutex node for kind 1/2
					kind     int    // 1 acquire, 2 release, 3 call
					callee   string
					deferred bool
				}
				var events []event
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.FuncLit:
						// A closure's body runs when the closure is called,
						// not where it is written: replaying it as part of
						// the enclosing function's lock sequence would
						// fabricate held-sets (a retry helper that locks
						// adminMu is not "adminMu held" at its definition).
						// Closures are opaque to the analysis.
						return false
					case *ast.GoStmt:
						// A goroutine starts on a fresh stack with an empty
						// lock set; the launcher's held locks do not
						// transfer, so the launched call is not a
						// synchronous call edge. (Whether the goroutine is
						// ever joined is goroleak's question.)
						return false
					case *ast.DeferStmt:
						if node, m := mutexMethodCall(pkg.Info, n.Call); m == "Unlock" || m == "RUnlock" {
							events = append(events, event{pos: n.Pos(), node: node, kind: 2, deferred: true})
							return false
						}
					case *ast.CallExpr:
						if node, m := mutexMethodCall(pkg.Info, n); node != "" {
							switch m {
							case "Lock", "RLock":
								nodes[node] = true
								events = append(events, event{pos: n.Pos(), node: node, kind: 1})
							case "Unlock", "RUnlock":
								events = append(events, event{pos: n.Pos(), node: node, kind: 2})
							}
							return true
						}
						if fn := calleeFunc(pkg.Info, n); fn != nil && fn.Pkg() != nil && prog.sourcePkgs[fn.Pkg().Path()] {
							events = append(events, event{pos: n.Pos(), kind: 3, callee: funcKey(fn)})
						}
					}
					return true
				})
				sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

				held := map[string]bool{}
				for _, e := range events {
					switch e.kind {
					case 1:
						for h := range held {
							edges = append(edges, lockEdge{from: h, to: e.node, pos: e.pos})
						}
						held[e.node] = true
						if acquires[caller] == nil {
							acquires[caller] = map[string]bool{}
						}
						acquires[caller][e.node] = true
					case 2:
						if !e.deferred {
							delete(held, e.node)
						}
					case 3:
						callees[caller] = append(callees[caller], e.callee)
						if len(held) > 0 {
							snapshot := make([]string, 0, len(held))
							for h := range held {
								snapshot = append(snapshot, h)
							}
							sort.Strings(snapshot)
							callsUnder = append(callsUnder, struct {
								held   []string
								callee string
								pos    token.Pos
							}{snapshot, e.callee, e.pos})
						}
					}
				}
			}
		}
	}

	// Transitive lock sets: every mutex a function may acquire through
	// static calls within the module.
	lockSets := transitiveLockSets(acquires, callees)

	for _, cu := range callsUnder {
		for b := range lockSets[cu.callee] {
			for _, h := range cu.held {
				edges = append(edges, lockEdge{from: h, to: b, pos: cu.pos, via: cu.callee})
			}
		}
	}

	// Declared order joins the graph; contradictions are checked below.
	decls := prog.Directives.LockOrders
	declEdge := map[[2]string]LockOrderDecl{}
	for _, d := range decls {
		from, okF := resolveLockName(nodes, d.Before)
		to, okT := resolveLockName(nodes, d.After)
		if !okF || !okT {
			// The named mutex is not in the loaded packages (partial lint
			// run) — nothing to check against.
			continue
		}
		declEdge[[2]string{from, to}] = d
		edges = append(edges, lockEdge{from: from, to: to, pos: token.NoPos, declared: true})
	}

	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Analyzer: "lockorder",
			Pos:      prog.Fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}

	// Self-edges: a mutex (re-)acquired while already held.
	seenSelf := map[string]bool{}
	for _, e := range edges {
		if e.from != e.to || e.declared || seenSelf[e.from+e.via] {
			continue
		}
		seenSelf[e.from+e.via] = true
		if e.via != "" {
			report(e.pos, "%s is already held at this call to %s, which acquires it again (self-deadlock for Mutex, writer-starvation deadlock for RWMutex)", displayLock(e.from), e.via)
		} else {
			report(e.pos, "%s is acquired while already held (self-deadlock)", displayLock(e.from))
		}
	}

	// Observed edges contradicting a declaration.
	seenContra := map[[2]string]bool{}
	for _, e := range edges {
		if e.declared || e.from == e.to {
			continue
		}
		if d, ok := declEdge[[2]string{e.to, e.from}]; ok && !seenContra[[2]string{e.from, e.to}] {
			seenContra[[2]string{e.from, e.to}] = true
			suffix := ""
			if e.via != "" {
				suffix = " (via call to " + e.via + ")"
			}
			report(e.pos, "%s is acquired while holding %s%s, contradicting the declared order %s<%s at %s",
				displayLock(e.to), displayLock(e.from), suffix, d.Before, d.After, d.Pos)
		}
	}

	// Cycles: strongly connected components of size > 1 (self-edges were
	// reported above).
	diags = append(diags, lockCycles(prog, edges)...)

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return diags
}

// transitiveLockSets closes the direct-acquire sets over the call graph.
func transitiveLockSets(acquires map[string]map[string]bool, callees map[string][]string) map[string]map[string]bool {
	sets := map[string]map[string]bool{}
	for fn, direct := range acquires {
		sets[fn] = map[string]bool{}
		for n := range direct {
			sets[fn][n] = true
		}
	}
	changed := true
	for changed {
		changed = false
		for fn, cs := range callees {
			for _, c := range cs {
				for n := range sets[c] {
					if sets[fn] == nil {
						sets[fn] = map[string]bool{}
					}
					if !sets[fn][n] {
						sets[fn][n] = true
						changed = true
					}
				}
			}
		}
	}
	return sets
}

// lockCycles reports one diagnostic per strongly connected component of
// the acquisition graph, anchored at the lexicographically first observed
// witness edge inside the component.
func lockCycles(prog *Program, edges []lockEdge) []Diagnostic {
	adj := map[string]map[string]bool{}
	nodes := map[string]bool{}
	for _, e := range edges {
		if e.from == e.to {
			continue
		}
		if adj[e.from] == nil {
			adj[e.from] = map[string]bool{}
		}
		adj[e.from][e.to] = true
		nodes[e.from], nodes[e.to] = true, true
	}

	// Tarjan's SCC.
	var (
		index    = map[string]int{}
		lowlink  = map[string]int{}
		onStack  = map[string]bool{}
		stack    []string
		counter  int
		sccs     [][]string
		strongly func(v string)
	)
	strongly = func(v string) {
		index[v] = counter
		lowlink[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		var succs []string
		for w := range adj[v] {
			succs = append(succs, w)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if _, seen := index[w]; !seen {
				strongly(w)
				lowlink[v] = min(lowlink[v], lowlink[w])
			} else if onStack[w] {
				lowlink[v] = min(lowlink[v], index[w])
			}
		}
		if lowlink[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sccs = append(sccs, scc)
			}
		}
	}
	var sorted []string
	for n := range nodes {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		if _, seen := index[n]; !seen {
			strongly(n)
		}
	}

	var diags []Diagnostic
	for _, scc := range sccs {
		sort.Strings(scc)
		inSCC := map[string]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		// Witness: the first positioned edge inside the component.
		var witness *lockEdge
		for i := range edges {
			e := &edges[i]
			if e.from == e.to || !inSCC[e.from] || !inSCC[e.to] || e.pos == token.NoPos {
				continue
			}
			if witness == nil || e.pos < witness.pos {
				witness = e
			}
		}
		names := make([]string, len(scc))
		for i, n := range scc {
			names[i] = displayLock(n)
		}
		msg := fmt.Sprintf("potential deadlock: lock-acquisition cycle between %s", strings.Join(names, ", "))
		pos := token.NoPos
		if witness != nil {
			pos = witness.pos
			suffix := ""
			if witness.via != "" {
				suffix = " via call to " + witness.via
			}
			msg += fmt.Sprintf(" (witness: %s acquired while holding %s%s)", displayLock(witness.to), displayLock(witness.from), suffix)
		}
		diags = append(diags, Diagnostic{
			Analyzer: "lockorder",
			Pos:      prog.Fset.Position(pos),
			Message:  msg,
		})
	}
	return diags
}

// mutexMethodCall matches <expr>.<mu>.Lock()/RLock()/Unlock()/RUnlock()
// where <mu> is a sync.Mutex/RWMutex struct field or package-level
// variable, and returns the mutex node id plus the method name.
func mutexMethodCall(info *types.Info, call *ast.CallExpr) (node, method string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	id := lockNodeID(info, sel.X)
	if id == "" {
		return "", ""
	}
	return id, sel.Sel.Name
}

// lockNodeID names the mutex expression: pkgpath.Type.field for struct
// fields, pkgpath.var for package-level mutexes, "" when the owner cannot
// be named (locals, map/slice elements).
func lockNodeID(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		// Struct field: name it by the owning named type.
		if selInfo, ok := info.Selections[e]; ok {
			owner := selInfo.Recv()
			if ptr, ok := owner.(*types.Pointer); ok {
				owner = ptr.Elem()
			}
			if named, ok := owner.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name
			}
			return ""
		}
		// Package-qualified variable: pkg.Mu.
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.Ident:
		// Package-level mutex referenced unqualified from its own package.
		if v, ok := info.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return ""
}

// resolveLockName matches a declared name against the known mutex nodes:
// exact id, or a suffix starting at a path boundary (so
// "wal.Log.mu" matches "deepsketch/internal/wal.Log.mu").
func resolveLockName(nodes map[string]bool, name string) (string, bool) {
	if nodes[name] {
		return name, true
	}
	for id := range nodes {
		if strings.HasSuffix(id, "/"+name) {
			return id, true
		}
	}
	return "", false
}

// displayLock shortens a node id to its last path segment:
// deepsketch/internal/wal.Log.mu → wal.Log.mu.
func displayLock(id string) string { return path.Base(id) }
