// Package analysis is the project's static-analysis suite: nine analyzers
// that machine-check the invariants the codebase is built on but no
// compiler enforces. Phase 1 (intraprocedural): allocation-free packed
// forward kernels (zeroalloc), fsync-before-rename persistence
// (durability), bitwise-reproducible training (determinism), caller-owned
// context plumbing (ctxpolicy), and mutex-guarded field access
// (lockguard). Phase 2 (whole-program): every goroutine launch needs a
// provable join or shutdown path (goroleak), the module-wide
// lock-acquisition graph must be acyclic (lockorder), errors on
// durability/WAL/lifecycle call paths may not be discarded (errsink), and
// the compiler's escape/inline decisions for the zeroalloc kernels must
// match a checked-in golden (escapebudget). cmd/deepsketch-lint drives
// the whole module through them; CI fails on any finding.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Report) but is self-contained on the
// standard library: packages are loaded with `go list -export` and
// type-checked from source against compiler export data (load.go), so the
// suite builds with zero third-party dependencies.
//
// # Annotation grammar
//
// Analyzers are steered by machine-readable comments (see
// docs/static-analysis.md for the full grammar):
//
//	//deepsketch:zeroalloc            function may not allocate; callees
//	                                  must be annotated or allowlisted
//	//deepsketch:deterministic        root of the determinism call graph
//	//deepsketch:durable              function fsyncs the file named by its
//	                                  path argument before returning
//	//deepsketch:ctxorigin <reason>   function may call context.Background
//	//deepsketch:locked <mu>          method is called with <mu> held
//	//deepsketch:bg <owner> <reason>  the go statement on this line is a
//	                                  deliberate fire-and-forget launch
//	//deepsketch:lockorder a<b        declared lock-acquisition order
//	//deepsketch:errok <reason>       the error discard on this line is
//	                                  deliberate (errsink suppression)
//	//deepsketch:ignore <analyzer> <reason>
//	                                  suppress one analyzer on this line
//	// guarded by <mu>                struct field access requires <mu>
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// An Analyzer is one named static check over a package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant it enforces.
	Doc string
	// Run analyzes one package, reporting findings via Pass.Reportf.
	Run func(*Pass) error
}

// All returns the full suite in a stable order. The first five are the
// intraprocedural phase-1 analyzers; goroleak, lockorder and errsink are
// the whole-program phase-2 analyzers, and escapebudget is the
// compiler-fact probe (it shells out to go build -gcflags=-m=2).
func All() []*Analyzer {
	return []*Analyzer{
		ZeroAlloc,
		Durability,
		Determinism,
		CtxPolicy,
		LockGuard,
		GoroLeak,
		LockOrder,
		ErrSink,
		EscapeBudget,
	}
}

// A Diagnostic is one finding, positioned in the source.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Package is one source-loaded, type-checked package.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the package's source directory on disk.
	Dir string
	// Files are the parsed source files (tests excluded).
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type information for Files.
	Info *types.Info
}

// ContainsFile reports whether filename (absolute) is one of the
// package's source files. Program-level analyzers use it to attribute
// each diagnostic to exactly one package pass.
func (p *Package) ContainsFile(fset *token.FileSet, filename string) bool {
	for _, f := range p.Files {
		if fset.Position(f.Pos()).Filename == filename {
			return true
		}
	}
	return false
}

// A Program is the full set of packages under analysis plus the shared
// directive index. Analyzers that need cross-package context (determinism
// reachability, annotations on callees in sibling packages) read it
// through Pass.Prog.
type Program struct {
	Fset *token.FileSet
	// Packages are the module's source-loaded packages, in load order.
	Packages []*Package
	// Directives indexes every //deepsketch: annotation in the program.
	Directives *Index

	// ModuleDir is the root directory of the module under analysis ("" for
	// fixture loads); escapebudget resolves the checked-in golden under it.
	ModuleDir string

	// EscapeGolden overrides the escape-budget golden path (used by the
	// fixture tests); "" means the default under ModuleDir.
	EscapeGolden string

	// sourcePkgs is the set of import paths loaded from source — the
	// boundary of cross-package analyses like determinism reachability.
	sourcePkgs map[string]bool

	detOnce  sync.Once
	detReach map[string]bool

	declOnce sync.Once
	decls    map[string]*declSite

	lockOnce  sync.Once
	lockDiags []Diagnostic

	escOnce  sync.Once
	escDiags []Diagnostic
	escErr   error
}

// declSite locates one top-level function declaration in the program.
type declSite struct {
	fd  *ast.FuncDecl
	pkg *Package
}

// funcDecl resolves a funcKey to its source declaration, or nil when the
// function lives outside the source-loaded packages (export data only).
func (p *Program) funcDecl(key string) *declSite {
	p.declOnce.Do(func() {
		p.decls = map[string]*declSite{}
		for _, pkg := range p.Packages {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok {
						continue
					}
					if k := declKey(pkg.Info, fd); k != "" {
						p.decls[k] = &declSite{fd: fd, pkg: pkg}
					}
				}
			}
		}
	})
	return p.decls[key]
}

// SourcePackage reports whether path was loaded from source (i.e. is part
// of the module under analysis rather than a dependency).
func (p *Program) SourcePackage(path string) bool { return p.sourcePkgs[path] }

// A Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// Fset returns the program's file set.
func (p *Pass) Fset() *token.FileSet { return p.Prog.Fset }

// Reportf records a finding at pos unless an ignore directive for this
// analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Prog.Fset.Position(pos)
	if p.Prog.Directives.ignored(p.Analyzer.Name, position.Filename, position.Line) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over every package of the program and
// returns the findings sorted by position. Malformed //deepsketch:
// directives are reported first, under the pseudo-analyzer "directives".
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	diags = append(diags, prog.Directives.Problems...)
	for _, pkg := range prog.Packages {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// funcKey returns a stable cross-package identity for a function or
// method: "pkgpath.Name" or "pkgpath.Recv.Name". Type-checking loads each
// dependency twice (once from source, once from export data), so object
// pointers are not comparable across packages — string keys are.
func funcKey(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok {
		if recv := sig.Recv(); recv != nil {
			t := recv.Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
			}
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// calleeFunc resolves the static callee of a call expression, or nil for
// dynamic calls (func values, interface methods are still returned — the
// caller distinguishes them via the receiver type).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Fn().
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// calleeBuiltin resolves a call to a builtin (make, append, len, ...) or
// returns "".
func calleeBuiltin(info *types.Info, call *ast.CallExpr) string {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return b.Name()
		}
	}
	return ""
}

// isConversion reports whether the call expression is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	return ok && tv.IsType()
}

// enclosingFuncDecl maps positions to their enclosing top-level FuncDecl.
func enclosingFuncDecl(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// declKey returns the funcKey of a FuncDecl via the package's Defs map,
// or "" for malformed declarations.
func declKey(info *types.Info, fd *ast.FuncDecl) string {
	if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
		return funcKey(fn)
	}
	return ""
}
