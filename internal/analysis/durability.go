package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Durability checks the tmp+fsync+rename persistence discipline: every
// os.Rename that finalizes a persist must be preceded, in the same
// function, by evidence that the renamed temp file's bytes reached stable
// storage — either a .Sync() call on a file handle, or a call to a
// function annotated //deepsketch:durable (one that fsyncs the file named
// by its path argument before returning, e.g. fsx.WriteFileSync) that
// received the rename's source path. Without the fsync, a journaling
// filesystem may replay the rename after a crash without the temp file's
// data blocks, publishing a torn or zero-filled file at the final path —
// exactly the failure the WAL's own framing discipline exists to prevent.
var Durability = &Analyzer{
	Name: "durability",
	Doc:  "os.Rename that finalizes a persist must follow an fsync of the temp file",
	Run:  runDurability,
}

func runDurability(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDurabilityFunc(pass, fd)
		}
	}
	return nil
}

func checkDurabilityFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	var renames []*ast.CallExpr
	type syncEvent struct {
		pos token.Pos
		// obj is the source-path object a durable call received, or nil
		// for a bare .Sync() (which vouches for any pending rename).
		obj types.Object
	}
	var syncs []syncEvent

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		switch {
		case fn.Pkg() != nil && fn.Pkg().Path() == "os" && fn.Name() == "Rename":
			renames = append(renames, call)
		case fn.Name() == "Sync" && len(call.Args) == 0 && fn.Type().(*types.Signature).Recv() != nil:
			syncs = append(syncs, syncEvent{pos: call.Pos()})
		case pass.Prog.Directives.Func(funcKey(fn)).Durable:
			found := false
			for _, arg := range call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						syncs = append(syncs, syncEvent{pos: call.Pos(), obj: obj})
						found = true
					}
				}
			}
			if !found {
				// Durable call with no traceable path argument still
				// counts as generic evidence (e.g. a method receiver
				// owns the path).
				syncs = append(syncs, syncEvent{pos: call.Pos()})
			}
		}
		return true
	})

	for _, rename := range renames {
		if len(rename.Args) != 2 {
			continue
		}
		var srcObj types.Object
		if id, ok := ast.Unparen(rename.Args[0]).(*ast.Ident); ok {
			srcObj = info.Uses[id]
		}
		satisfied := false
		for _, s := range syncs {
			if s.pos >= rename.Pos() {
				continue
			}
			if s.obj == nil || srcObj == nil || s.obj == srcObj {
				satisfied = true
				break
			}
		}
		if !satisfied {
			pass.Reportf(rename.Pos(), "os.Rename finalizes a persist without a preceding Sync of the temp file (crash can publish a torn file); sync the handle, use fsx.AtomicWriteFile, or write via a //deepsketch:durable function")
		}
	}
}
