package metrics

import "testing"

func TestWindowRolling(t *testing.T) {
	w := NewWindow(4)
	if w.Len() != 0 || w.Cap() != 4 {
		t.Fatalf("empty window: len=%d cap=%d", w.Len(), w.Cap())
	}
	if s := w.Summary(); s.Count != 0 {
		t.Errorf("empty summary count = %d", s.Count)
	}
	for _, v := range []float64{1, 2, 3} {
		w.Add(v)
	}
	if s := w.Summary(); s.Count != 3 || s.Median != 2 {
		t.Errorf("partial window summary = %+v", s)
	}
	// Fill past capacity: 1 and 2 are evicted, window holds {3,4,5,6}.
	w.Add(4)
	w.Add(5)
	w.Add(6)
	if w.Len() != 4 {
		t.Fatalf("full window len = %d", w.Len())
	}
	if w.Total() != 6 {
		t.Errorf("total = %d, want 6", w.Total())
	}
	s := w.Summary()
	if s.Count != 4 || s.Median != 4.5 || s.Max != 6 {
		t.Errorf("rolled summary = %+v, want median 4.5 max 6 over {3,4,5,6}", s)
	}
	vals := w.Values()
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	if len(vals) != 4 || sum != 3+4+5+6 {
		t.Errorf("values = %v", vals)
	}
}

func TestWindowDefaultCapacity(t *testing.T) {
	if w := NewWindow(0); w.Cap() != 256 {
		t.Errorf("default capacity = %d", w.Cap())
	}
}
