package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestQErrorBasics(t *testing.T) {
	cases := []struct {
		est, truth, want float64
	}{
		{10, 10, 1},
		{20, 10, 2},
		{10, 20, 2},
		{1, 1000, 1000},
		{1000, 1, 1000},
		{0, 10, 10},   // estimate clamped to 1
		{10, 0, 10},   // truth clamped to 1
		{0, 0, 1},     // both clamped
		{0.5, 0.1, 1}, // sub-tuple values clamp to 1
	}
	for _, c := range cases {
		if got := QError(c.est, c.truth); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("QError(%v,%v) = %v, want %v", c.est, c.truth, got, c.want)
		}
	}
}

func TestQErrorPropertyAtLeastOneAndSymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Abs(a)
		b = math.Abs(b)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		q := QError(a, b)
		return q >= 1 && q == QError(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQErrorMultiplicativeIdentity(t *testing.T) {
	// Scaling estimate by factor k away from truth yields q-error k.
	f := func(truth float64, k float64) bool {
		truth = 1 + math.Mod(math.Abs(truth), 1e6)
		k = 1 + math.Mod(math.Abs(k), 1e3)
		if math.IsNaN(truth) || math.IsNaN(k) {
			return true
		}
		q := QError(truth*k, truth)
		return math.Abs(q-k) < 1e-9*k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {0.9, 4.6},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{7}, 0.5); got != 7 {
		t.Errorf("Quantile single = %v, want 7", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Errorf("Quantile(nil) should be NaN")
	}
}

func TestSummarize(t *testing.T) {
	qs := make([]float64, 100)
	for i := range qs {
		qs[i] = float64(i + 1) // 1..100
	}
	s := Summarize(qs)
	if s.Count != 100 {
		t.Fatalf("Count = %d", s.Count)
	}
	if math.Abs(s.Median-50.5) > 1e-9 {
		t.Errorf("Median = %v, want 50.5", s.Median)
	}
	if math.Abs(s.Mean-50.5) > 1e-9 {
		t.Errorf("Mean = %v, want 50.5", s.Mean)
	}
	if s.Max != 100 {
		t.Errorf("Max = %v, want 100", s.Max)
	}
	if math.Abs(s.P90-90.1) > 1e-9 {
		t.Errorf("P90 = %v, want 90.1", s.P90)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	qs := []float64{5, 1, 3}
	Summarize(qs)
	if qs[0] != 5 || qs[1] != 1 || qs[2] != 3 {
		t.Errorf("input mutated: %v", qs)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty summary should be zero, got %+v", s)
	}
}

func TestSummaryPropertyOrdering(t *testing.T) {
	// median <= p90 <= p95 <= p99 <= max and mean <= max for any input.
	f := func(raw []float64) bool {
		qs := make([]float64, 0, len(raw))
		for _, v := range raw {
			v = math.Abs(v)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			qs = append(qs, 1+math.Mod(v, 1e9))
		}
		if len(qs) == 0 {
			return true
		}
		s := Summarize(qs)
		return s.Median <= s.P90+1e-9 && s.P90 <= s.P95+1e-9 &&
			s.P95 <= s.P99+1e-9 && s.P99 <= s.Max+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnderFrac(t *testing.T) {
	ests := []float64{5, 20, 10, 0.5}
	truths := []float64{10, 10, 10, 0.2} // under, over, equal, both clamp to 1 (equal)
	got := UnderFrac(ests, truths)
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("UnderFrac = %v, want 0.25", got)
	}
	if !math.IsNaN(UnderFrac(nil, nil)) {
		t.Error("empty input should be NaN")
	}
	if !math.IsNaN(UnderFrac([]float64{1}, []float64{1, 2})) {
		t.Error("length mismatch should be NaN")
	}
}

func TestSig3(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{3.8231, "3.82"},
		{78.44, "78.4"},
		{362.2, "362"},
		{1110.4, "1110"},
		{0.0123, "0.0123"},
		{0, "0"},
	}
	for _, c := range cases {
		if got := Sig3(c.v); got != c.want {
			t.Errorf("Sig3(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestFormatTable(t *testing.T) {
	rows := []Row{
		{Name: "Deep Sketch", Summary: Summary{Median: 3.82, P90: 78.4, P95: 362, P99: 927, Max: 1110, Mean: 57.9}},
		{Name: "PostgreSQL", Summary: Summary{Median: 7.93, P90: 164, P95: 1104, P99: 2912, Max: 3477, Mean: 174}},
	}
	out := FormatTable(rows)
	if !strings.Contains(out, "Deep Sketch") || !strings.Contains(out, "3.82") {
		t.Errorf("table missing expected cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Errorf("want header + 2 rows, got %d lines", len(lines))
	}
}
