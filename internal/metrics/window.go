package metrics

// Window is a fixed-capacity ring buffer of observations supporting rolling
// summary statistics — the windowed q-error distribution the drift monitor
// keeps per serving sketch version. Once full, each Add evicts the oldest
// observation, so Summary always describes the most recent cap samples.
// Window is not safe for concurrent use; callers wrap it in their own lock.
type Window struct {
	buf   []float64
	n     int // observations currently held (≤ cap(buf))
	next  int // ring write position
	total uint64
}

// NewWindow returns an empty window holding at most capacity observations.
// Capacity <= 0 defaults to 256.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		capacity = 256
	}
	return &Window{buf: make([]float64, capacity)}
}

// Add records one observation, evicting the oldest when full.
func (w *Window) Add(v float64) {
	w.buf[w.next] = v
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.total++
}

// Len returns the number of observations currently in the window.
func (w *Window) Len() int { return w.n }

// Cap returns the window capacity.
func (w *Window) Cap() int { return len(w.buf) }

// Total returns the lifetime observation count, including evicted ones —
// the denominator a monitor needs to tell "window full and churning" from
// "window full and frozen".
func (w *Window) Total() uint64 { return w.total }

// Values returns a copy of the current observations. Order is not
// meaningful; the window models a distribution, not a sequence.
func (w *Window) Values() []float64 {
	out := make([]float64, w.n)
	copy(out, w.buf[:w.n])
	return out
}

// Summary computes the Table-1-style statistics over the window's current
// contents (zero Summary when empty).
func (w *Window) Summary() Summary {
	return Summarize(w.buf[:w.n])
}
