// Package metrics provides q-error computation and summary statistics used
// throughout the Deep Sketches evaluation (Moerkotte et al., "Preventing Bad
// Plans by Bounding the Impact of Cardinality Estimation Errors", PVLDB 2009).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// QError returns the q-error between an estimate and the true cardinality:
// the factor by which the estimate deviates, q = max(est/truth, truth/est),
// with both sides clamped to at least one tuple so that empty results do not
// produce infinities. QError is always >= 1 and symmetric in its arguments.
func QError(estimate, truth float64) float64 {
	e := math.Max(estimate, 1)
	t := math.Max(truth, 1)
	if e > t {
		return e / t
	}
	return t / e
}

// Summary holds the distribution statistics the paper reports in Table 1.
type Summary struct {
	Median float64
	P90    float64
	P95    float64
	P99    float64
	Max    float64
	Mean   float64
	Count  int
}

// Summarize computes the Table 1 statistics over a slice of q-errors.
// The input slice is not modified. Summarize of an empty slice returns a
// zero Summary.
func Summarize(qerrors []float64) Summary {
	if len(qerrors) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(qerrors))
	copy(sorted, qerrors)
	sort.Float64s(sorted)
	var sum float64
	for _, q := range sorted {
		sum += q
	}
	return Summary{
		Median: Quantile(sorted, 0.50),
		P90:    Quantile(sorted, 0.90),
		P95:    Quantile(sorted, 0.95),
		P99:    Quantile(sorted, 0.99),
		Max:    sorted[len(sorted)-1],
		Mean:   sum / float64(len(sorted)),
		Count:  len(sorted),
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) of an ascending-sorted
// slice using linear interpolation between closest ranks, matching the
// behaviour of numpy.percentile(.., interpolation="linear") that the original
// MSCN evaluation scripts used.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Row is one line of a comparison table: a system name plus its Summary.
type Row struct {
	Name    string
	Summary Summary
}

// FormatTable renders rows in the layout of the paper's Table 1:
//
//	            median   90th   95th   99th    max   mean
//	Deep Sketch   3.82   78.4    362    927   1110   57.9
//
// Values are formatted with three significant digits like the paper.
func FormatTable(rows []Row) string {
	var b strings.Builder
	nameW := len("system")
	for _, r := range rows {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s %8s %8s %8s %8s %8s %8s\n", nameW, "system",
		"median", "90th", "95th", "99th", "max", "mean")
	for _, r := range rows {
		s := r.Summary
		fmt.Fprintf(&b, "%-*s %8s %8s %8s %8s %8s %8s\n", nameW, r.Name,
			Sig3(s.Median), Sig3(s.P90), Sig3(s.P95), Sig3(s.P99), Sig3(s.Max), Sig3(s.Mean))
	}
	return b.String()
}

// UnderFrac returns the fraction of estimates that undershoot the truth
// (estimate < truth after clamping both to ≥ 1). The MSCN evaluation
// reports the under/over direction alongside q-errors: sampling-based
// estimators characteristically underestimate joins, independence-based
// ones can err either way.
func UnderFrac(estimates, truths []float64) float64 {
	if len(estimates) == 0 || len(estimates) != len(truths) {
		return math.NaN()
	}
	var under int
	for i, e := range estimates {
		if math.Max(e, 1) < math.Max(truths[i], 1) {
			under++
		}
	}
	return float64(under) / float64(len(estimates))
}

// Sig3 formats a value with three significant digits, the precision used in
// the paper's Table 1 (e.g. 3.82, 78.4, 362, 1110).
func Sig3(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	if math.IsInf(v, 0) {
		return "Inf"
	}
	if v == 0 {
		return "0"
	}
	abs := math.Abs(v)
	digits := int(math.Floor(math.Log10(abs)))
	prec := 2 - digits
	if prec < 0 {
		prec = 0
	}
	return fmt.Sprintf("%.*f", prec, v)
}
