package wal

import (
	"fmt"
	"testing"
)

// BenchmarkAppend measures WAL append throughput at the default fsync
// batching — the serving path's journaling cost, and one of the metrics
// the BENCH_deepsketch.json perf-trajectory artifact tracks across PRs.
func BenchmarkAppend(b *testing.B) {
	l, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	r := Record{
		Kind: KindActual, Name: "imdb", Version: 3,
		Signature: "title t|t.id=mk.movie_id|t.production_year>1990",
		SQL:       "SELECT COUNT(*) FROM title t, movie_keyword mk WHERE t.id=mk.movie_id AND t.production_year>1990",
		Estimate:  1234, Actual: 1500, Client: "host-db", Unix: 1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Signature = r.Signature[:40] + fmt.Sprintf("%08d", i)
		if err := l.Append(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendSyncEvery measures the fsync-batching sweep: every
// append synced vs the default batch.
func BenchmarkAppendSyncEvery(b *testing.B) {
	for _, every := range []int{1, 64} {
		b.Run(fmt.Sprintf("sync%d", every), func(b *testing.B) {
			l, err := Open(b.TempDir(), Options{SyncEvery: every})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			r := rec(KindActual, "imdb", "sig", 1, 10, 12, "c")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReplay measures startup replay over a populated log.
func BenchmarkReplay(b *testing.B) {
	l, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5000; i++ {
		if err := l.Append(rec(KindActual, "imdb", fmt.Sprintf("s-%05d", i), 1, 10, 12, "c")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := l.Replay(func(Record) { n++ }); err != nil {
			b.Fatal(err)
		}
		if n != 5000 {
			b.Fatalf("replayed %d", n)
		}
	}
}
