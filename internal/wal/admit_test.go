package wal

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// Table-driven edge tests for the Admitter: exact token-bucket boundary
// behavior, idle-refill clamping, sampling/cap interaction, clock skew, and
// client-table eviction. The basic decision sequences live in wal_test.go;
// these pin the corners an adversary would probe.

func TestAdmitterEdgeTable(t *testing.T) {
	type step struct {
		client string
		at     time.Duration // offset from base
		want   Decision
	}
	base := time.Unix(1_000, 0)
	cases := []struct {
		name  string
		cfg   AdmitConfig
		steps []step
	}{
		{
			// Cap 2 refills at one token per 30s. Draining the bucket and
			// probing at +15s (half a token) must stay capped; the refill is
			// fractional and accumulates, so +30s buys exactly one admit.
			name: "boundary exhaustion and fractional refill",
			cfg:  AdmitConfig{PerClientPerMin: 2},
			steps: []step{
				{"c", 0, Admitted},
				{"c", 0, Admitted},
				{"c", 0, Capped},
				{"c", 15 * time.Second, Capped}, // 0.5 tokens
				{"c", 30 * time.Second, Admitted},
				{"c", 30 * time.Second, Capped},
			},
		},
		{
			// An idle client's bucket clamps at the cap: hours of refill
			// never bank more than one minute's budget.
			name: "idle refill clamps at the cap",
			cfg:  AdmitConfig{PerClientPerMin: 2},
			steps: []step{
				{"c", 0, Admitted},
				{"c", 0, Admitted},
				{"c", 0, Capped},
				{"c", 2 * time.Hour, Admitted},
				{"c", 2 * time.Hour, Admitted},
				{"c", 2 * time.Hour, Capped},
			},
		},
		{
			// Sampling applies before the cap: sampled-out attempts consume
			// no tokens, so cap budget stretches over 3× the attempts.
			name: "sampling does not consume cap budget",
			cfg:  AdmitConfig{PerClientPerMin: 2, SampleEvery: 3},
			steps: []step{
				{"c", 0, Sampled}, {"c", 0, Sampled}, {"c", 0, Admitted},
				{"c", 0, Sampled}, {"c", 0, Sampled}, {"c", 0, Admitted},
				{"c", 0, Sampled}, {"c", 0, Sampled}, {"c", 0, Capped},
				{"c", 0, Sampled}, {"c", 0, Sampled}, {"c", 0, Capped},
			},
		},
		{
			// A clock that goes backwards (or stands still) must not refill:
			// dt <= 0 is ignored, never banked as negative tokens.
			name: "backwards clock does not refill",
			cfg:  AdmitConfig{PerClientPerMin: 1},
			steps: []step{
				{"c", 10 * time.Second, Admitted},
				{"c", 10 * time.Second, Capped},
				{"c", 5 * time.Second, Capped}, // backwards
				{"c", 10 * time.Second, Capped},
				{"c", 70 * time.Second, Admitted},
			},
		},
		{
			// PerClientPerMin 0 disables the cap entirely; SampleEvery <= 1
			// disables sampling.
			name: "zero config admits everything",
			cfg:  AdmitConfig{SampleEvery: 1},
			steps: []step{
				{"c", 0, Admitted}, {"c", 0, Admitted}, {"c", 0, Admitted},
				{"c", 0, Admitted}, {"c", 0, Admitted},
			},
		},
		{
			// The empty client ID is one budget, not a cap bypass for
			// unattributed feedback.
			name: "empty client shares one budget",
			cfg:  AdmitConfig{PerClientPerMin: 1},
			steps: []step{
				{"", 0, Admitted},
				{"", 0, Capped},
				{"named", 0, Admitted}, // a real ID still has its own budget
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewAdmitter(tc.cfg)
			for i, s := range tc.steps {
				if got := a.Admit(s.client, base.Add(s.at)); got != s.want {
					t.Fatalf("step %d (client %q at +%v) = %v, want %v", i, s.client, s.at, got, s.want)
				}
			}
		})
	}
}

// TestAdmitterSamplingDistribution interleaves attempts from several
// clients in a seeded-random order and checks the per-client sampling is
// exact: each client admits precisely every SampleEvery-th of ITS attempts
// no matter how the streams interleave (the counter is per client, so one
// client's traffic cannot shift another's sampling phase).
func TestAdmitterSamplingDistribution(t *testing.T) {
	const sampleEvery = 4
	rng := rand.New(rand.NewSource(99))
	a := NewAdmitter(AdmitConfig{SampleEvery: sampleEvery})
	now := time.Unix(1_000, 0)
	clients := []string{"a", "b", "c", "d"}
	seen := map[string]uint64{}
	admitted := map[string]uint64{}
	for i := 0; i < 4000; i++ {
		c := clients[rng.Intn(len(clients))]
		seen[c]++
		if a.Admit(c, now) == Admitted {
			admitted[c]++
		}
	}
	for _, cs := range a.Stats() {
		if cs.Seen != seen[cs.Client] {
			t.Errorf("client %s seen = %d, want %d", cs.Client, cs.Seen, seen[cs.Client])
		}
		if want := seen[cs.Client] / sampleEvery; cs.Admitted != want || admitted[cs.Client] != want {
			t.Errorf("client %s admitted = %d (stats %d), want exactly seen/%d = %d",
				cs.Client, admitted[cs.Client], cs.Admitted, sampleEvery, want)
		}
		if cs.Capped != 0 {
			t.Errorf("client %s capped = %d with no rate cap configured", cs.Client, cs.Capped)
		}
	}
}

// TestAdmitterEvictionPastMaxClients pushes far more distinct clients than
// the table holds: the table must stay bounded, keep the most recently seen
// clients, and — per the documented churn caveat — hand a returning evicted
// client a fresh full bucket rather than carrying stale counters.
func TestAdmitterEvictionPastMaxClients(t *testing.T) {
	const maxClients = 8
	a := NewAdmitter(AdmitConfig{PerClientPerMin: 1, MaxClients: maxClients})
	base := time.Unix(1_000, 0)
	// client-0 drains its budget first, then 19 more clients churn it out.
	if d := a.Admit("client-0", base); d != Admitted {
		t.Fatalf("client-0 first attempt = %v", d)
	}
	if d := a.Admit("client-0", base); d != Capped {
		t.Fatalf("client-0 second attempt = %v, want capped", d)
	}
	for i := 1; i < 20; i++ {
		a.Admit(fmt.Sprintf("client-%d", i), base.Add(time.Duration(i)*time.Second))
		if n := len(a.Stats()); n > maxClients {
			t.Fatalf("after client-%d the table holds %d clients, cap is %d", i, n, maxClients)
		}
	}
	tracked := map[string]bool{}
	for _, cs := range a.Stats() {
		tracked[cs.Client] = true
	}
	if len(tracked) != maxClients {
		t.Fatalf("table holds %d clients, want exactly %d", len(tracked), maxClients)
	}
	for i := 12; i < 20; i++ {
		if name := fmt.Sprintf("client-%d", i); !tracked[name] {
			t.Errorf("most recently seen %s was evicted; table = %v", name, tracked)
		}
	}
	// client-0 was evicted with a drained bucket; returning under the same
	// ID starts a fresh budget (the documented cost of LRU churn without
	// authenticated identities).
	if d := a.Admit("client-0", base.Add(30*time.Second)); d != Admitted {
		t.Fatalf("returning evicted client = %v, want admitted with a fresh bucket", d)
	}
}
