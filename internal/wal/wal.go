// Package wal is the observation write-ahead log: the durable record of
// what the serving path estimated and what the host database actually
// observed. It is the storage layer of the logged-actuals feedback loop —
// the paper trains Deep Sketches from query feedback, and the WAL is where
// that feedback lives between a query's execution and the next warm
// refresh.
//
// Three consumers read it:
//
//   - the drift monitor, whose q-error windows and pending ground-truth
//     queue are rebuilt from Replay at startup, so a restart mid-episode
//     resumes with history intact;
//   - the refresh path, which draws its delta workload from RecentActuals —
//     the most recently observed distinct query signatures with actuals —
//     so real traffic becomes training data with no synthetic workload
//     generation in the loop;
//   - operators, via Stats.
//
// # Format
//
// The log is a directory of segment files (wal-00000001.log, ...), the
// influxdb segment+snapshot idiom: appends go to the active segment, a
// segment rolls when it crosses Options.SegmentBytes, and fsyncs are
// batched (every Options.SyncEvery appends). Each segment starts with an
// 8-byte magic header and holds length-prefixed, CRC-checked records:
//
//	u32 payload length | u32 CRC-32C of payload | payload
//
// Replay reads segments oldest-first and stops a segment at the first
// torn or corrupt record — a crash mid-append loses at most the unsynced
// tail, never the log. Open always starts a fresh active segment, so an
// inherited torn tail is never appended after.
//
// # Checkpoints and retention
//
// Checkpoint marks everything appended so far as consumed (folded into a
// refreshed model version): it rolls the active segment and records the
// boundary durably. Checkpointed segments are the only ones Prune may
// delete, oldest-first, until the log fits the retention budget — which is
// what keeps Replay bounded.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"deepsketch/internal/fsx"
)

// Kind distinguishes the two record types of the feedback loop.
type Kind uint8

const (
	// KindObservation is a served estimate whose actual is not yet known —
	// the pending half of a ground-truth pair.
	KindObservation Kind = 1
	// KindActual is an observed actual row count, with the estimate and
	// answering version when the observation was matched (Version 0 and
	// Estimate 0 record an unmatched actual — still training data).
	KindActual Kind = 2
)

// Record is one observation log entry.
type Record struct {
	// Kind is KindObservation or KindActual.
	Kind Kind
	// Name is the sketch the record concerns.
	Name string
	// Version is the sketch version that served the estimate (0 unknown).
	Version int
	// Signature is the query's canonical signature (db.Query.Signature).
	Signature string
	// SQL is the canonical SQL text, re-parseable against the dataset at
	// replay time.
	SQL string
	// Estimate is the served cardinality estimate (0 when unmatched).
	Estimate float64
	// Actual is the observed actual row count (KindActual only).
	Actual float64
	// Client identifies the ingest client that supplied the actual ("" for
	// internal sources, e.g. the exact executor).
	Client string
	// Unix is the record time in Unix nanoseconds.
	Unix int64
}

// Options parameterizes Open.
type Options struct {
	// SegmentBytes is the size threshold at which the active segment rolls
	// (default 1 MiB).
	SegmentBytes int64
	// SyncEvery batches fsyncs: the active segment is synced after every
	// N appends (default 64; 1 syncs every append). Close, Checkpoint and
	// segment rolls always sync.
	SyncEvery int
	// RecentPerName bounds the in-memory recent-actuals index per sketch
	// name (default 4096 distinct signatures).
	RecentPerName int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 64
	}
	if o.RecentPerName <= 0 {
		o.RecentPerName = 4096
	}
	return o
}

// Stats is a point-in-time snapshot of the log.
type Stats struct {
	// Segments is the number of segment files on disk (including active).
	Segments int `json:"segments"`
	// Bytes is the total on-disk size of all segments.
	Bytes int64 `json:"bytes"`
	// Appends is the lifetime append count of this Log handle.
	Appends uint64 `json:"appends"`
	// Syncs is the lifetime fsync count of this Log handle.
	Syncs uint64 `json:"syncs"`
	// CheckpointSeq is the highest segment sequence marked consumed
	// (segments at or below it are prunable; 0 = no checkpoint yet).
	CheckpointSeq int `json:"checkpoint_seq"`
	// Replayed is the number of valid records the last Replay returned.
	Replayed uint64 `json:"replayed"`
	// Truncated counts segments whose replay stopped early at a torn or
	// corrupt record (across all Replay calls on this handle).
	Truncated uint64 `json:"truncated"`
}

const (
	segPrefix = "wal-"
	segSuffix = ".log"
	// segMagic identifies a segment file; version bumps rename it.
	segMagic = "DSWAL001"
	// maxRecordBytes caps one record's payload — a length prefix beyond it
	// is corruption, not a record (canonical SQL is bounded far below this).
	maxRecordBytes = 1 << 20
	// checkpointFile persists the checkpoint boundary (atomic tmp+rename).
	checkpointFile = "checkpoint"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Log is a segmented observation WAL rooted at one directory. All methods
// are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu            sync.Mutex
	active        *os.File                // guarded by mu
	activeSeq     int                     // guarded by mu
	activeSize    int64                   // guarded by mu
	unsynced      int                     // guarded by mu
	checkpointSeq int                     // guarded by mu
	recent        map[string]*recentIndex // per sketch name; guarded by mu
	appends       uint64                  // guarded by mu
	syncs         uint64                  // guarded by mu
	replayed      uint64                  // guarded by mu
	truncated     uint64                  // guarded by mu
}

// Open opens (creating if needed) the log rooted at dir, scans the existing
// segments to rebuild the recent-actuals index, and starts a fresh active
// segment — an inherited torn tail is tolerated at replay, never appended
// after.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts, recent: make(map[string]*recentIndex)}
	if blob, err := os.ReadFile(filepath.Join(dir, checkpointFile)); err == nil {
		if seq, err := strconv.Atoi(strings.TrimSpace(string(blob))); err == nil && seq > 0 {
			l.checkpointSeq = seq
		}
	}
	seqs, err := l.segmentSeqs()
	if err != nil {
		return nil, err
	}
	// Rebuild the recent-actuals index from what survives on disk.
	last := 0
	for _, seq := range seqs {
		l.readSegment(seq, func(r Record) {
			if r.Kind == KindActual {
				l.noteActualLocked(r)
			}
		})
		last = seq
	}
	if err := l.rollLocked(last + 1); err != nil {
		return nil, err
	}
	return l, nil
}

// segmentSeqs lists the on-disk segment sequence numbers, ascending.
func (l *Log) segmentSeqs() ([]int, error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var seqs []int
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		seq, err := strconv.Atoi(strings.TrimPrefix(strings.TrimSuffix(name, segSuffix), segPrefix))
		if err != nil || seq <= 0 {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	return seqs, nil
}

func (l *Log) segPath(seq int) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix))
}

// rollLocked syncs and closes the active segment (if any) and opens a new
// one with the given sequence number. l.mu held (or exclusive at Open).
func (l *Log) rollLocked(seq int) error {
	if l.active != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.active.Close(); err != nil {
			return fmt.Errorf("wal: close segment %d: %w", l.activeSeq, err)
		}
	}
	f, err := os.OpenFile(l.segPath(seq), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment %d: %w", seq, err)
	}
	if _, err := f.WriteString(segMagic); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment %d header: %w", seq, err)
	}
	l.active, l.activeSeq, l.activeSize, l.unsynced = f, seq, int64(len(segMagic)), 0
	return nil
}

func (l *Log) syncLocked() error {
	if l.unsynced == 0 {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: sync segment %d: %w", l.activeSeq, err)
	}
	l.unsynced = 0
	l.syncs++
	return nil
}

// Append writes one record to the active segment, rolling it at the size
// threshold and fsyncing every Options.SyncEvery appends. Records whose
// fields overflow their framing (Name/Client beyond 64 KiB, or a payload
// beyond maxRecordBytes) are rejected up front: an oversized field would
// otherwise be silently truncated by the length prefix, producing a frame
// whose CRC passes but whose payload no longer decodes — which replay must
// treat as corruption, discarding every later record in the segment.
func (l *Log) Append(r Record) error {
	if r.Kind != KindObservation && r.Kind != KindActual {
		return fmt.Errorf("wal: bad record kind %d", r.Kind)
	}
	if r.Name == "" || r.Signature == "" {
		return errors.New("wal: record needs a sketch name and a query signature")
	}
	if len(r.Name) > math.MaxUint16 {
		return fmt.Errorf("wal: sketch name is %d bytes, over the 64 KiB field limit", len(r.Name))
	}
	if len(r.Client) > math.MaxUint16 {
		return fmt.Errorf("wal: client ID is %d bytes, over the 64 KiB field limit", len(r.Client))
	}
	if r.Unix == 0 {
		r.Unix = time.Now().UnixNano()
	}
	buf := encodeRecord(r)
	if payload := len(buf) - 8; payload > maxRecordBytes {
		return fmt.Errorf("wal: record payload is %d bytes, over the %d-byte limit", payload, maxRecordBytes)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return errors.New("wal: log is closed")
	}
	if l.activeSize+int64(len(buf)) > l.opts.SegmentBytes && l.activeSize > int64(len(segMagic)) {
		if err := l.rollLocked(l.activeSeq + 1); err != nil {
			return err
		}
	}
	if _, err := l.active.Write(buf); err != nil {
		return fmt.Errorf("wal: append to segment %d: %w", l.activeSeq, err)
	}
	l.activeSize += int64(len(buf))
	l.appends++
	l.unsynced++
	if l.unsynced >= l.opts.SyncEvery {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	if r.Kind == KindActual {
		l.noteActualLocked(r)
	}
	return nil
}

// Sync forces an fsync of the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return nil
	}
	return l.syncLocked()
}

// Close syncs and closes the active segment; the log rejects appends after.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	l.active = nil
	return err
}

// Replay streams every valid on-disk record, oldest segment first, to fn.
// A torn or corrupt record ends that segment's replay (counted in
// Stats.Truncated) and replay moves on to the next segment — corruption
// never surfaces as an error; the log yields what it can prove intact.
func (l *Log) Replay(fn func(Record)) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	// The active segment's buffered bytes must be visible to the reader.
	if l.active != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	seqs, err := l.segmentSeqs()
	if err != nil {
		return err
	}
	l.replayed = 0
	for _, seq := range seqs {
		l.readSegment(seq, fn)
	}
	return nil
}

// readSegment reads one segment, calling fn per valid record, stopping at
// the first torn or corrupt one. l.mu held.
//
//deepsketch:locked mu
func (l *Log) readSegment(seq int, fn func(Record)) {
	f, err := os.Open(l.segPath(seq))
	if err != nil {
		l.truncated++
		return
	}
	defer f.Close()
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != segMagic {
		l.truncated++
		return
	}
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err != io.EOF {
				l.truncated++ // torn length/CRC header
			}
			return
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxRecordBytes {
			l.truncated++
			return
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			l.truncated++ // torn payload
			return
		}
		if crc32.Checksum(payload, crcTable) != sum {
			l.truncated++ // bit rot or a torn overwrite
			return
		}
		r, err := decodePayload(payload)
		if err != nil {
			l.truncated++
			return
		}
		l.replayed++
		fn(r)
	}
}

// Checkpoint marks everything appended so far as consumed: the active
// segment rolls, and all segments up to it become prunable. The boundary
// persists (atomically) so it survives restarts. Call it after a refresh
// has folded the logged feedback into a new model version.
func (l *Log) Checkpoint() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return errors.New("wal: log is closed")
	}
	consumed := l.activeSeq
	if err := l.rollLocked(l.activeSeq + 1); err != nil {
		return err
	}
	// Persist the boundary before advancing the in-memory one: Prune only
	// honors checkpointSeq, and deleting segments against a boundary that
	// never became durable would leave the restored checkpoint pointing at
	// already-deleted history after a crash.
	if err := fsx.AtomicWriteFile(filepath.Join(l.dir, checkpointFile), []byte(strconv.Itoa(consumed)+"\n"), 0o644); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	l.checkpointSeq = consumed
	return nil
}

// Prune deletes checkpointed segments, oldest first, until the log's total
// on-disk size fits retainBytes (<= 0 prunes nothing). The active segment
// and segments past the checkpoint are never deleted. Returns how many
// segments were removed.
func (l *Log) Prune(retainBytes int64) (int, error) {
	if retainBytes <= 0 {
		return 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	seqs, err := l.segmentSeqs()
	if err != nil {
		return 0, err
	}
	type segInfo struct {
		seq  int
		size int64
	}
	var total int64
	infos := make([]segInfo, 0, len(seqs))
	for _, seq := range seqs {
		fi, err := os.Stat(l.segPath(seq))
		if err != nil {
			continue
		}
		infos = append(infos, segInfo{seq, fi.Size()})
		total += fi.Size()
	}
	removed := 0
	for _, si := range infos {
		if total <= retainBytes {
			break
		}
		if si.seq > l.checkpointSeq || si.seq == l.activeSeq {
			break // only consumed history is disposable, oldest-first
		}
		if err := os.Remove(l.segPath(si.seq)); err != nil {
			return removed, fmt.Errorf("wal: prune segment %d: %w", si.seq, err)
		}
		total -= si.size
		removed++
	}
	return removed, nil
}

// Stats snapshots the log's counters and on-disk shape.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Appends: l.appends, Syncs: l.syncs,
		CheckpointSeq: l.checkpointSeq, Replayed: l.replayed, Truncated: l.truncated,
	}
	seqs, err := l.segmentSeqs()
	if err != nil {
		return st
	}
	st.Segments = len(seqs)
	for _, seq := range seqs {
		if fi, err := os.Stat(l.segPath(seq)); err == nil {
			st.Bytes += fi.Size()
		}
	}
	return st
}

// encodeRecord frames one record: u32 payload length, u32 CRC-32C, payload.
func encodeRecord(r Record) []byte {
	n := 1 + 4 + 8 + 8 + 8 +
		2 + len(r.Name) + 2 + len(r.Client) +
		4 + len(r.Signature) + 4 + len(r.SQL)
	buf := make([]byte, 8, 8+n)
	buf = append(buf, byte(r.Kind))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Version))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Estimate))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Actual))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Unix))
	buf = appendString16(buf, r.Name)
	buf = appendString16(buf, r.Client)
	buf = appendString32(buf, r.Signature)
	buf = appendString32(buf, r.SQL)
	payload := buf[8:]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	return buf
}

func decodePayload(p []byte) (Record, error) {
	d := payloadReader{buf: p}
	var r Record
	r.Kind = Kind(d.u8())
	r.Version = int(int32(d.u32()))
	r.Estimate = math.Float64frombits(d.u64())
	r.Actual = math.Float64frombits(d.u64())
	r.Unix = int64(d.u64())
	r.Name = d.str16()
	r.Client = d.str16()
	r.Signature = d.str32()
	r.SQL = d.str32()
	if d.err != nil {
		return Record{}, d.err
	}
	if len(d.buf) != d.off {
		return Record{}, fmt.Errorf("wal: %d trailing payload bytes", len(d.buf)-d.off)
	}
	if r.Kind != KindObservation && r.Kind != KindActual {
		return Record{}, fmt.Errorf("wal: bad record kind %d", r.Kind)
	}
	return r, nil
}

func appendString16(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func appendString32(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// payloadReader decodes a record payload with sticky error handling.
type payloadReader struct {
	buf []byte
	off int
	err error
}

func (d *payloadReader) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = errors.New("wal: short record payload")
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *payloadReader) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *payloadReader) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *payloadReader) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *payloadReader) str16() string { return string(d.take(int(d.u16()))) }
func (d *payloadReader) str32() string { return string(d.take(int(d.u32()))) }

func (d *payloadReader) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}
