package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Crash-recovery fixtures: every corruption mode a kill -9 (or bit rot)
// can leave behind must replay cleanly up to the last valid record and
// never error out the daemon at boot.

func writeFile(path string, blob []byte) error {
	return os.WriteFile(path, blob, 0o644)
}

// buildSegments writes n actual records with SyncEvery 1 and returns the
// log directory plus the ordered segment paths.
func buildSegments(t *testing.T, n int, segmentBytes int64) (string, []string) {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: segmentBytes, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := l.Append(rec(KindActual, "imdb", fmt.Sprintf("s-%03d", i), 1, 10, float64(i), "c")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, ent := range ents {
		if strings.HasPrefix(ent.Name(), segPrefix) && strings.HasSuffix(ent.Name(), segSuffix) {
			segs = append(segs, filepath.Join(dir, ent.Name()))
		}
	}
	if len(segs) == 0 {
		t.Fatal("no segments written")
	}
	return dir, segs
}

func replayAll(t *testing.T, dir string) (sigs []string, truncated uint64) {
	t.Helper()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open over corrupt log must not fail: %v", err)
	}
	defer l.Close()
	if err := l.Replay(func(r Record) { sigs = append(sigs, r.Signature) }); err != nil {
		t.Fatalf("replay over corrupt log must not fail: %v", err)
	}
	return sigs, l.Stats().Truncated
}

func TestRecoverTruncatedTail(t *testing.T) {
	dir, segs := buildSegments(t, 10, 1<<20)
	seg := segs[0]
	blob, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-way through the last record's payload: a torn write.
	if err := writeFile(seg, blob[:len(blob)-7]); err != nil {
		t.Fatal(err)
	}
	sigs, truncated := replayAll(t, dir)
	if len(sigs) != 9 {
		t.Fatalf("replayed %d records after torn tail, want 9", len(sigs))
	}
	if sigs[len(sigs)-1] != "s-008" {
		t.Fatalf("last surviving record %q, want s-008", sigs[len(sigs)-1])
	}
	if truncated == 0 {
		t.Error("torn tail not counted in Stats.Truncated")
	}
}

func TestRecoverTornLengthHeader(t *testing.T) {
	dir, segs := buildSegments(t, 5, 1<<20)
	blob, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Leave 3 bytes of the next record's 8-byte frame header — the crash
	// happened between writing the length and the CRC.
	recLen := (len(blob) - len(segMagic)) / 5
	cut := len(segMagic) + 4*recLen + 3
	if err := writeFile(segs[0], blob[:cut]); err != nil {
		t.Fatal(err)
	}
	sigs, _ := replayAll(t, dir)
	if len(sigs) != 4 {
		t.Fatalf("replayed %d records after torn header, want 4", len(sigs))
	}
}

func TestRecoverBadCRC(t *testing.T) {
	dir, segs := buildSegments(t, 8, 1<<20)
	blob, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the 4th record: CRC catches it, replay stops
	// there — the earlier records still load.
	recLen := (len(blob) - len(segMagic)) / 8
	blob[len(segMagic)+3*recLen+12] ^= 0xFF
	if err := writeFile(segs[0], blob); err != nil {
		t.Fatal(err)
	}
	sigs, truncated := replayAll(t, dir)
	if len(sigs) != 3 {
		t.Fatalf("replayed %d records after mid-segment CRC error, want 3", len(sigs))
	}
	if truncated == 0 {
		t.Error("CRC failure not counted in Stats.Truncated")
	}
}

func TestRecoverCorruptionIsolatedPerSegment(t *testing.T) {
	// Corruption in one rolled segment must not block later segments.
	dir, segs := buildSegments(t, 30, 256)
	if len(segs) < 3 {
		t.Fatalf("fixture produced %d segments, want >= 3", len(segs))
	}
	blob, err := os.ReadFile(segs[1])
	if err != nil {
		t.Fatal(err)
	}
	blob[len(segMagic)+9] ^= 0xFF // corrupt early in the middle segment
	if err := writeFile(segs[1], blob); err != nil {
		t.Fatal(err)
	}
	sigs, _ := replayAll(t, dir)
	if len(sigs) == 0 || len(sigs) >= 30 {
		t.Fatalf("replayed %d records, want partial loss only", len(sigs))
	}
	// The last appended record lives in the last segment — it must survive.
	last := sigs[len(sigs)-1]
	if last != "s-029" {
		t.Fatalf("latest record %q lost to an unrelated segment's corruption, want s-029", last)
	}
}

func TestRecoverInsaneLengthPrefix(t *testing.T) {
	dir, segs := buildSegments(t, 3, 1<<20)
	blob, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Stamp an absurd length over the 2nd record's frame: replay must not
	// attempt a gigabyte allocation, just stop the segment.
	recLen := (len(blob) - len(segMagic)) / 3
	binary.LittleEndian.PutUint32(blob[len(segMagic)+recLen:], 0xFFFF_FFF0)
	if err := writeFile(segs[0], blob); err != nil {
		t.Fatal(err)
	}
	sigs, _ := replayAll(t, dir)
	if len(sigs) != 1 {
		t.Fatalf("replayed %d records after insane length prefix, want 1", len(sigs))
	}
}

func TestRecoverBadMagic(t *testing.T) {
	dir, segs := buildSegments(t, 3, 1<<20)
	if err := writeFile(segs[0], []byte("NOTAWAL!")); err != nil {
		t.Fatal(err)
	}
	sigs, truncated := replayAll(t, dir)
	if len(sigs) != 0 {
		t.Fatalf("replayed %d records from a bad-magic segment, want 0", len(sigs))
	}
	if truncated == 0 {
		t.Error("bad magic not counted in Stats.Truncated")
	}
}

func TestRecoveredLogAcceptsAppends(t *testing.T) {
	// After recovering past a torn tail, the reopened log must keep
	// accepting appends — and replay both the survivors and the new
	// records (the fresh active segment never inherits the torn tail).
	dir, segs := buildSegments(t, 6, 1<<20)
	blob, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFile(segs[0], blob[:len(blob)-3]); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(rec(KindActual, "imdb", "post-crash", 2, 5, 6, "c")); err != nil {
		t.Fatal(err)
	}
	var sigs []string
	if err := l.Replay(func(r Record) { sigs = append(sigs, r.Signature) }); err != nil {
		t.Fatal(err)
	}
	if len(sigs) != 6 || sigs[len(sigs)-1] != "post-crash" {
		t.Fatalf("replay after recovery+append = %v, want 5 survivors then post-crash", sigs)
	}
}
