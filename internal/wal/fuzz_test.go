package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// FuzzFrameDecode throws arbitrary bytes at both layers of the segment
// framing: decodePayload (the record decoder) must never panic and must
// round-trip every payload it accepts, and the segment reader must treat
// any mutation of a record stream — torn tails, bad CRCs, oversized
// length prefixes, truncated magic — as an ordinary stop-at-corruption
// replay, never a panic.
func FuzzFrameDecode(f *testing.F) {
	valid := encodeRecord(Record{
		Kind: KindActual, Name: "fleet", Version: 3,
		Signature: "sig|a|b", SQL: "SELECT COUNT(*) FROM title t",
		Estimate: 123.5, Actual: 99, Unix: 1700000000,
	})
	f.Add(valid)                // intact frame
	f.Add(valid[8:])            // bare payload without its header
	f.Add(valid[:len(valid)-3]) // torn tail

	badCRC := bytes.Clone(valid)
	badCRC[len(badCRC)-1] ^= 0xff
	f.Add(badCRC)

	oversized := make([]byte, 8)
	binary.LittleEndian.PutUint32(oversized[0:4], maxRecordBytes+1)
	f.Add(oversized)

	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Layer 1: the payload decoder. Anything it accepts must encode
		// back to a payload that decodes to the same record.
		if r, err := decodePayload(data); err == nil {
			enc := encodeRecord(r)
			payload := enc[8:]
			if got := binary.LittleEndian.Uint32(enc[4:8]); got != crc32.Checksum(payload, crcTable) {
				t.Fatalf("re-encoded frame carries a wrong CRC")
			}
			r2, err := decodePayload(payload)
			if err != nil {
				t.Fatalf("re-encoded payload fails to decode: %v", err)
			}
			if r2.Kind != r.Kind || r2.Name != r.Name || r2.Version != r.Version ||
				r2.Signature != r.Signature || r2.SQL != r.SQL || r2.Unix != r.Unix ||
				math.Float64bits(r2.Estimate) != math.Float64bits(r.Estimate) ||
				math.Float64bits(r2.Actual) != math.Float64bits(r.Actual) {
				t.Fatalf("round-trip mismatch:\n%+v\n%+v", r, r2)
			}
		}

		// Layer 2: the segment reader over a file whose body is the fuzz
		// input appended to a valid header — plus the same bytes with no
		// header at all. Replay must stop cleanly at corruption.
		dir := t.TempDir()
		seg := filepath.Join(dir, "wal-00000001.log")
		if err := os.WriteFile(seg, append([]byte(segMagic), data...), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "wal-00000002.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open on arbitrary segment bytes: %v", err)
		}
		defer l.Close()
		n := 0
		if err := l.Replay(func(Record) { n++ }); err != nil {
			t.Fatalf("Replay: %v", err)
		}
	})
}
