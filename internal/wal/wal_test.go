package wal

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func rec(kind Kind, name, sig string, version int, est, actual float64, client string) Record {
	return Record{
		Kind: kind, Name: name, Version: version, Signature: sig,
		SQL:      "SELECT COUNT(*) FROM title t WHERE t.id>" + sig,
		Estimate: est, Actual: actual, Client: client,
	}
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		rec(KindObservation, "imdb", "sig-1", 3, 120, 0, ""),
		rec(KindActual, "imdb", "sig-1", 3, 120, 95, "host-db"),
		rec(KindActual, "tpch", "sig-2", 1, 7, 9, "etl"),
	}
	for i := range want {
		want[i].Unix = int64(1000 + i)
		if err := l.Append(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	var got []Record
	if err := l.Replay(func(r Record) { got = append(got, r) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh handle over the same directory replays the same records.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got = nil
	if err := l2.Replay(func(r Record) { got = append(got, r) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || got[0] != want[0] || got[2] != want[2] {
		t.Fatalf("reopen replayed %+v, want %+v", got, want)
	}
}

func TestAppendValidation(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Record{Kind: 9, Name: "x", Signature: "s"}); err == nil {
		t.Error("bad kind accepted")
	}
	if err := l.Append(Record{Kind: KindActual, Signature: "s"}); err == nil {
		t.Error("empty name accepted")
	}
	if err := l.Append(Record{Kind: KindActual, Name: "x"}); err == nil {
		t.Error("empty signature accepted")
	}
	// Oversized fields must be rejected, not silently truncated by the
	// length prefix into a frame whose payload no longer decodes.
	big := strings.Repeat("x", 1<<16)
	if err := l.Append(Record{Kind: KindActual, Name: big, Signature: "s"}); err == nil {
		t.Error("64 KiB name accepted")
	}
	if err := l.Append(Record{Kind: KindActual, Name: "x", Signature: "s", Client: big}); err == nil {
		t.Error("64 KiB client ID accepted")
	}
	if err := l.Append(Record{Kind: KindActual, Name: "x", Signature: "s", SQL: strings.Repeat("q", maxRecordBytes)}); err == nil {
		t.Error("payload over maxRecordBytes accepted")
	}
	// Rejected records must leave the log intact: a good record appended
	// after them still replays, with nothing flagged as torn.
	if err := l.Append(rec(KindActual, "x", "s", 1, 10, 12, "c")); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := l.Replay(func(Record) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 1 || l.Stats().Truncated != 0 {
		t.Fatalf("after rejected appends: replayed %d records (want 1), truncated %d (want 0)", n, l.Stats().Truncated)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(KindActual, "x", "s", 1, 1, 1, "")); err == nil {
		t.Error("append after Close accepted")
	}
}

func TestSegmentRollAndStats(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentBytes: 256, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 40; i++ {
		if err := l.Append(rec(KindActual, "imdb", fmt.Sprintf("sig-%03d", i), 1, 10, 12, "c")); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("only %d segments after 40 appends at a 256-byte threshold", st.Segments)
	}
	if st.Appends != 40 {
		t.Fatalf("appends = %d, want 40", st.Appends)
	}
	n := 0
	if err := l.Replay(func(Record) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("replayed %d records across rolled segments, want 40", n)
	}
}

func TestCheckpointAndPrune(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := l.Append(rec(KindActual, "imdb", fmt.Sprintf("a-%03d", i), 1, 10, 12, "c")); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing checkpointed: even an aggressive budget prunes nothing.
	if n, err := l.Prune(1); err != nil || n != 0 {
		t.Fatalf("prune before checkpoint removed %d segments (err %v), want 0", n, err)
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	cpSeq := l.Stats().CheckpointSeq
	if cpSeq == 0 {
		t.Fatal("checkpoint recorded no boundary")
	}
	for i := 30; i < 40; i++ {
		if err := l.Append(rec(KindActual, "imdb", fmt.Sprintf("b-%03d", i), 1, 10, 12, "c")); err != nil {
			t.Fatal(err)
		}
	}
	pre := l.Stats()
	n, err := l.Prune(600)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatalf("prune removed nothing (pre: %+v)", pre)
	}
	post := l.Stats()
	if post.Bytes >= pre.Bytes {
		t.Fatalf("prune did not shrink the log: %d -> %d bytes", pre.Bytes, post.Bytes)
	}
	// Post-checkpoint records all survive pruning.
	kept := map[string]bool{}
	if err := l.Replay(func(r Record) { kept[r.Signature] = true }); err != nil {
		t.Fatal(err)
	}
	for i := 30; i < 40; i++ {
		if sig := fmt.Sprintf("b-%03d", i); !kept[sig] {
			t.Errorf("post-checkpoint record %s pruned", sig)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The checkpoint boundary survives a reopen.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Stats().CheckpointSeq; got != cpSeq {
		t.Fatalf("reopened checkpoint seq = %d, want %d", got, cpSeq)
	}
}

func TestRecentActualsIndex(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{RecentPerName: 8, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Observations never enter the index; actuals do, newest-first,
	// deduplicated by signature with the latest record winning.
	if err := l.Append(rec(KindObservation, "imdb", "obs-only", 1, 5, 0, "")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := l.Append(rec(KindActual, "imdb", fmt.Sprintf("s-%02d", i), 1, 10, float64(i), "c")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Append(rec(KindActual, "imdb", "s-07", 2, 11, 700, "c")); err != nil {
		t.Fatal(err)
	}
	if got := l.ActualCount("imdb"); got != 8 {
		t.Fatalf("ActualCount = %d, want 8 (limit)", got)
	}
	recent := l.RecentActuals("imdb", 3)
	if len(recent) != 3 {
		t.Fatalf("RecentActuals(3) returned %d", len(recent))
	}
	if recent[0].Signature != "s-07" || recent[0].Actual != 700 || recent[0].Version != 2 {
		t.Fatalf("newest = %+v, want the re-observed s-07 with actual 700", recent[0])
	}
	if recent[1].Signature != "s-11" {
		t.Fatalf("second newest = %q, want s-11", recent[1].Signature)
	}
	if l.RecentActuals("unknown", 10) != nil {
		t.Error("unknown name returned records")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen rebuilds the index from the segments.
	l2, err := Open(dir, Options{RecentPerName: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recent2 := l2.RecentActuals("imdb", 1)
	if len(recent2) != 1 || recent2[0].Signature != "s-07" || recent2[0].Actual != 700 {
		t.Fatalf("rebuilt index newest = %+v, want s-07/700", recent2)
	}
}

// TestConcurrentAppendReplayCheckpoint is the race-detector workout the CI
// race step runs: appends from many goroutines interleaved with replays,
// checkpoints, prunes and stats reads must be linearizable and lose no
// admitted record.
func TestConcurrentAppendReplayCheckpoint(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentBytes: 2048, SyncEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const writers, perWriter = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r := rec(KindActual, "imdb", fmt.Sprintf("w%d-%03d", w, i), 1, 10, 12, fmt.Sprintf("client-%d", w))
				if err := l.Append(r); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := l.Replay(func(Record) {}); err != nil {
				t.Error(err)
				return
			}
			_ = l.Stats()
			_ = l.RecentActuals("imdb", 16)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := l.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
			if _, err := l.Prune(1 << 30); err != nil {
				t.Error(err)
			}
		}
	}()
	wg.Wait()
	n := 0
	if err := l.Replay(func(Record) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != writers*perWriter {
		t.Fatalf("replayed %d records, want %d — concurrent appends lost", n, writers*perWriter)
	}
}

func TestAdmitter(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	a := NewAdmitter(AdmitConfig{PerClientPerMin: 3, SampleEvery: 2})
	// Sampling admits every 2nd attempt; the cap then allows 3 per minute.
	var got []Decision
	for i := 0; i < 10; i++ {
		got = append(got, a.Admit("c1", now))
	}
	want := []Decision{Sampled, Admitted, Sampled, Admitted, Sampled, Admitted, Sampled, Capped, Sampled, Capped}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("attempt %d = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
	// Another client has its own budget.
	if d := a.Admit("c2", now); d != Sampled {
		t.Fatalf("c2 first attempt = %v, want sampled", d)
	}
	if d := a.Admit("c2", now); d != Admitted {
		t.Fatalf("c2 second attempt = %v, want admitted", d)
	}
	// The cap window resets the next minute.
	if d := a.Admit("c1", now.Add(time.Minute)); d != Sampled {
		t.Fatalf("c1 next-minute (sampled phase) = %v", d)
	}
	if d := a.Admit("c1", now.Add(time.Minute)); d != Admitted {
		t.Fatalf("c1 next-minute = %v, want admitted after window reset", d)
	}
	st := a.Stats()
	if len(st) != 2 {
		t.Fatalf("stats tracks %d clients, want 2", len(st))
	}
	for _, cs := range st {
		if cs.Client == "c1" && cs.Capped != 2 {
			t.Errorf("c1 capped = %d, want 2", cs.Capped)
		}
	}
}

func TestAdmitterNoBoundaryBurst(t *testing.T) {
	// A fixed minute bucket lets a client land 2x the cap by bursting just
	// before and just after a boundary; the token bucket must not. Cap 3:
	// 3 admitted at t=59s drain the bucket, and 2s of refill (0.1 tokens)
	// buys nothing at t=61s.
	a := NewAdmitter(AdmitConfig{PerClientPerMin: 3})
	before := time.Unix(59, 0)
	for i := 0; i < 3; i++ {
		if d := a.Admit("c", before); d != Admitted {
			t.Fatalf("attempt %d before the boundary = %v, want admitted", i, d)
		}
	}
	if d := a.Admit("c", before); d != Capped {
		t.Fatalf("4th attempt = %v, want capped", d)
	}
	after := time.Unix(61, 0)
	if d := a.Admit("c", after); d != Capped {
		t.Fatalf("burst across the minute boundary = %v, want capped", d)
	}
	// A full minute of refill restores the full budget — and no more.
	later := time.Unix(121, 0)
	for i := 0; i < 3; i++ {
		if d := a.Admit("c", later); d != Admitted {
			t.Fatalf("attempt %d after refill = %v, want admitted", i, d)
		}
	}
	if d := a.Admit("c", later); d != Capped {
		t.Fatalf("attempt past the refilled budget = %v, want capped", d)
	}
}

func TestAdmitterUnlimitedAndEviction(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	a := NewAdmitter(AdmitConfig{MaxClients: 2})
	for i := 0; i < 5; i++ {
		if d := a.Admit("c", now); d != Admitted {
			t.Fatalf("unlimited config rejected attempt %d: %v", i, d)
		}
	}
	a.Admit("d", now.Add(time.Second))
	a.Admit("e", now.Add(2*time.Second)) // evicts c (least recently seen)
	names := map[string]bool{}
	for _, cs := range a.Stats() {
		names[cs.Client] = true
	}
	if len(names) != 2 || names["c"] || !names["d"] || !names["e"] {
		t.Fatalf("tracked clients = %v, want d and e after evicting c", names)
	}
}

func TestOpenRejectsUnrelatedFiles(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(KindActual, "imdb", "s", 1, 1, 2, "")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Files that merely look segment-ish must not break open or replay.
	for _, name := range []string{"wal-abc.log", "notes.txt", "wal-00000099.bak"} {
		if err := writeFile(filepath.Join(dir, name), []byte("junk")); err != nil {
			t.Fatal(err)
		}
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	n := 0
	if err := l2.Replay(func(Record) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records with junk files present, want 1", n)
	}
}
