package wal

import (
	"math"
	"sync"
	"time"
)

// Admission control for the logged-actuals ingest path. Retrain-on-observed-
// traffic is exactly the adaptive channel studied in "Cardinality Sketches
// under Adaptive Inputs" (Ahmadian & Cohen, 2024): a client that controls
// which (query, actual) pairs enter the log controls the refresh workload,
// and with it the next model. The Admitter caps what any one client may
// contribute — per-client sampling thins every client's stream, and a
// per-client token-bucket rate cap bounds the worst case — so no single
// feedback source can steer the training distribution.
//
// Scope: client IDs are self-reported, so per-client control here is a
// volume bound on well-behaved feedback sources, not an authentication
// boundary. A client free to mint fresh IDs gets a fresh budget per ID
// (and, past MaxClients, churns other clients' counters out of the
// table); holding a hostile client to its cap requires authenticated
// client identities enforced upstream of Admit.

// Decision is an Admitter verdict for one ingest attempt.
type Decision int

const (
	// Admitted lets the record into the log.
	Admitted Decision = iota
	// Sampled drops the record by per-client sampling (not an error; the
	// client is within its cap).
	Sampled
	// Capped rejects the record because the client exceeded its per-minute
	// admission cap.
	Capped
)

func (d Decision) String() string {
	switch d {
	case Admitted:
		return "admitted"
	case Sampled:
		return "sampled"
	case Capped:
		return "capped"
	default:
		return "unknown"
	}
}

// AdmitConfig parameterizes an Admitter.
type AdmitConfig struct {
	// PerClientPerMin caps one client's admitted-records rate (0 =
	// unlimited): a token bucket holding at most PerClientPerMin tokens,
	// refilled at PerClientPerMin per minute. Unlike fixed minute buckets,
	// a burst straddling a bucket boundary cannot double the cap.
	PerClientPerMin int
	// SampleEvery admits every Nth record per client (<= 1 admits all).
	// Sampling applies before the cap, so a sampled-out record does not
	// consume cap budget.
	SampleEvery int
	// MaxClients bounds the tracked-client table (default 4096); beyond
	// it, the least recently seen client's counters are evicted.
	MaxClients int
}

func (c AdmitConfig) withDefaults() AdmitConfig {
	if c.MaxClients <= 0 {
		c.MaxClients = 4096
	}
	return c
}

// clientState is one client's admission counters.
type clientState struct {
	seen     uint64  // lifetime attempts (sampling numerator)
	admitted uint64  // lifetime admitted
	capped   uint64  // lifetime cap rejections
	tokens   float64 // rate-cap token bucket level
	refillAt int64   // unix nanos of the last bucket refill
	lastSeen int64   // unix nanos, for eviction
}

// ClientStats is one client's admission record.
type ClientStats struct {
	Client   string `json:"client"`
	Seen     uint64 `json:"seen"`
	Admitted uint64 `json:"admitted"`
	Capped   uint64 `json:"capped,omitempty"`
}

// Admitter applies per-client sampling and rate caps to the actuals ingest
// path. Safe for concurrent use.
type Admitter struct {
	cfg AdmitConfig

	mu      sync.Mutex
	clients map[string]*clientState
}

// NewAdmitter returns an Admitter with the given config.
func NewAdmitter(cfg AdmitConfig) *Admitter {
	return &Admitter{cfg: cfg.withDefaults(), clients: make(map[string]*clientState)}
}

// Admit decides one ingest attempt by client at the given time. An empty
// client ID is a client like any other ("" — unattributed feedback shares
// one budget rather than dodging the cap).
func (a *Admitter) Admit(client string, now time.Time) Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	cs, ok := a.clients[client]
	if !ok {
		if len(a.clients) >= a.cfg.MaxClients {
			a.evictOldestLocked()
		}
		// A new client starts with a full bucket (burst = one minute's cap).
		cs = &clientState{tokens: float64(a.cfg.PerClientPerMin), refillAt: now.UnixNano()}
		a.clients[client] = cs
	}
	cs.lastSeen = now.UnixNano()
	cs.seen++
	if a.cfg.SampleEvery > 1 && cs.seen%uint64(a.cfg.SampleEvery) != 0 {
		return Sampled
	}
	if a.cfg.PerClientPerMin > 0 {
		limit := float64(a.cfg.PerClientPerMin)
		if dt := now.UnixNano() - cs.refillAt; dt > 0 {
			cs.tokens = math.Min(limit, cs.tokens+float64(dt)*limit/float64(time.Minute))
			cs.refillAt = now.UnixNano()
		}
		if cs.tokens < 1 {
			cs.capped++
			return Capped
		}
		cs.tokens--
	}
	cs.admitted++
	return Admitted
}

// evictOldestLocked drops the least recently seen client; a.mu held.
func (a *Admitter) evictOldestLocked() {
	var oldest string
	var oldestAt int64
	first := true
	for c, cs := range a.clients {
		if first || cs.lastSeen < oldestAt {
			oldest, oldestAt, first = c, cs.lastSeen, false
		}
	}
	delete(a.clients, oldest)
}

// Stats snapshots every tracked client's counters (map ordered by caller).
func (a *Admitter) Stats() []ClientStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]ClientStats, 0, len(a.clients))
	for c, cs := range a.clients {
		out = append(out, ClientStats{Client: c, Seen: cs.seen, Admitted: cs.admitted, Capped: cs.capped})
	}
	return out
}
