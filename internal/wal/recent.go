package wal

import "container/list"

// recentIndex is one sketch name's in-memory view of its most recently
// observed actuals: at most Options.RecentPerName distinct query
// signatures, each holding the latest KindActual record seen for it,
// ordered by recency. It is rebuilt from the surviving segments at Open
// and updated on every Append — the refresh path's delta workload
// (RecentActuals) reads it instead of scanning segments.
type recentIndex struct {
	order *list.List               // front = most recent; values are Record
	bySig map[string]*list.Element // signature → element in order
	limit int
}

func newRecentIndex(limit int) *recentIndex {
	return &recentIndex{order: list.New(), bySig: make(map[string]*list.Element), limit: limit}
}

// note records the latest actual for a signature, evicting the least
// recently observed signature beyond the limit.
func (ri *recentIndex) note(r Record) {
	if el, ok := ri.bySig[r.Signature]; ok {
		el.Value = r
		ri.order.MoveToFront(el)
		return
	}
	ri.bySig[r.Signature] = ri.order.PushFront(r)
	for ri.order.Len() > ri.limit {
		back := ri.order.Back()
		ri.order.Remove(back)
		delete(ri.bySig, back.Value.(Record).Signature)
	}
}

// noteActualLocked indexes one actual record under its sketch name; l.mu
// held (or exclusive at Open).
func (l *Log) noteActualLocked(r Record) {
	ri, ok := l.recent[r.Name]
	if !ok {
		ri = newRecentIndex(l.opts.RecentPerName)
		l.recent[r.Name] = ri
	}
	ri.note(r)
}

// RecentActuals returns up to n of name's most recently observed distinct
// query signatures with actuals, newest first — the WAL-derived delta
// workload for a warm refresh. n <= 0 returns all indexed signatures.
func (l *Log) RecentActuals(name string, n int) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	ri, ok := l.recent[name]
	if !ok {
		return nil
	}
	if n <= 0 || n > ri.order.Len() {
		n = ri.order.Len()
	}
	out := make([]Record, 0, n)
	for el := ri.order.Front(); el != nil && len(out) < n; el = el.Next() {
		out = append(out, el.Value.(Record))
	}
	return out
}

// ActualCount reports how many distinct signatures with actuals the index
// holds for name — the cheap "is there enough logged traffic to refresh
// from" check.
func (l *Log) ActualCount(name string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	ri, ok := l.recent[name]
	if !ok {
		return 0
	}
	return ri.order.Len()
}
