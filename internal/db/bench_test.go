package db

import (
	"math/rand"
	"testing"
)

// benchDB builds a mid-sized star schema once for executor benchmarks.
func benchDB(b *testing.B) *DB {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	const dimRows, factRows = 20000, 120000
	mkIDs := func(n int) []int64 {
		ids := make([]int64, n)
		for i := range ids {
			ids[i] = int64(i + 1)
		}
		return ids
	}
	randCol := func(n int, lo, hi int64) []int64 {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = lo + rng.Int63n(hi-lo+1)
		}
		return vals
	}
	d := NewDB("bench")
	d.MustAddTable(MustNewTable("dim_a",
		NewIntColumn("id", mkIDs(dimRows)),
		NewIntColumn("attr", randCol(dimRows, 0, 99)),
	))
	d.MustAddTable(MustNewTable("dim_b",
		NewIntColumn("id", mkIDs(dimRows/10)),
		NewIntColumn("attr", randCol(dimRows/10, 0, 9)),
	))
	d.MustAddTable(MustNewTable("fact",
		NewIntColumn("id", mkIDs(factRows)),
		NewIntColumn("a_id", randCol(factRows, 1, dimRows)),
		NewIntColumn("b_id", randCol(factRows, 1, dimRows/10)),
		NewIntColumn("val", randCol(factRows, 0, 999)),
	))
	d.SetPK("dim_a", "id")
	d.SetPK("dim_b", "id")
	d.SetPK("fact", "id")
	d.AddFK("fact", "a_id", "dim_a", "id")
	d.AddFK("fact", "b_id", "dim_b", "id")
	return d
}

func BenchmarkFilterTableFullScan(b *testing.B) {
	d := benchDB(b)
	fact := d.Table("fact")
	preds := []Predicate{{Col: "val", Op: OpLt, Val: 500}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := FilterTable(fact, preds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCountSingleTable(b *testing.B) {
	d := benchDB(b)
	q := Query{
		Tables: []TableRef{{Table: "fact", Alias: "f"}},
		Preds:  []Predicate{{Alias: "f", Col: "val", Op: OpGt, Val: 200}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Count(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCountOneJoin(b *testing.B) {
	d := benchDB(b)
	q := Query{
		Tables: []TableRef{{Table: "fact", Alias: "f"}, {Table: "dim_a", Alias: "da"}},
		Joins:  []JoinPred{{LeftAlias: "f", LeftCol: "a_id", RightAlias: "da", RightCol: "id"}},
		Preds:  []Predicate{{Alias: "da", Col: "attr", Op: OpLt, Val: 50}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Count(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCountStarJoin(b *testing.B) {
	d := benchDB(b)
	q := Query{
		Tables: []TableRef{
			{Table: "fact", Alias: "f"},
			{Table: "dim_a", Alias: "da"},
			{Table: "dim_b", Alias: "db"},
		},
		Joins: []JoinPred{
			{LeftAlias: "f", LeftCol: "a_id", RightAlias: "da", RightCol: "id"},
			{LeftAlias: "f", LeftCol: "b_id", RightAlias: "db", RightCol: "id"},
		},
		Preds: []Predicate{
			{Alias: "da", Col: "attr", Op: OpGt, Val: 20},
			{Alias: "f", Col: "val", Op: OpLt, Val: 800},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Count(q); err != nil {
			b.Fatal(err)
		}
	}
}
