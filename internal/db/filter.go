package db

import "fmt"

// FilterTable evaluates a conjunction of predicates against a table and
// returns the matching row indices in ascending order. A nil result with
// ok=true means "all rows match" (no predicates); callers use this to avoid
// materializing full-table row lists on unfiltered tables.
func FilterTable(t *Table, preds []Predicate) (rows []int32, all bool, err error) {
	if len(preds) == 0 {
		return nil, true, nil
	}
	var sel []int32
	for i, p := range preds {
		col := t.Column(p.Col)
		if col == nil {
			return nil, false, fmt.Errorf("db: table %s has no column %s", t.Name, p.Col)
		}
		if i == 0 {
			sel = filterFull(col, p.Op, p.Val)
		} else {
			sel = filterSubset(col, p.Op, p.Val, sel)
		}
		if len(sel) == 0 {
			return sel, false, nil
		}
	}
	return sel, false, nil
}

func filterFull(c *Column, op Op, lit int64) []int32 {
	out := make([]int32, 0, len(c.Vals)/4+1)
	vals := c.Vals
	switch op {
	case OpEq:
		for i, v := range vals {
			if v == lit {
				out = append(out, int32(i))
			}
		}
	case OpLt:
		for i, v := range vals {
			if v < lit {
				out = append(out, int32(i))
			}
		}
	case OpGt:
		for i, v := range vals {
			if v > lit {
				out = append(out, int32(i))
			}
		}
	}
	return out
}

func filterSubset(c *Column, op Op, lit int64, sel []int32) []int32 {
	out := sel[:0]
	vals := c.Vals
	switch op {
	case OpEq:
		for _, r := range sel {
			if vals[r] == lit {
				out = append(out, r)
			}
		}
	case OpLt:
		for _, r := range sel {
			if vals[r] < lit {
				out = append(out, r)
			}
		}
	case OpGt:
		for _, r := range sel {
			if vals[r] > lit {
				out = append(out, r)
			}
		}
	}
	return out
}

// CountRows is a convenience wrapper returning the number of rows of t
// matching preds.
func CountRows(t *Table, preds []Predicate) (int64, error) {
	rows, all, err := FilterTable(t, preds)
	if err != nil {
		return 0, err
	}
	if all {
		return int64(t.NumRows()), nil
	}
	return int64(len(rows)), nil
}
