package db

import (
	"math/rand"
	"testing"
)

func count(t *testing.T, d *DB, q Query) int64 {
	t.Helper()
	got, err := d.Count(q)
	if err != nil {
		t.Fatalf("Count(%s): %v", q.SQL(nil), err)
	}
	return got
}

func TestCountSingleTable(t *testing.T) {
	d := testDB(t)
	q := Query{Tables: []TableRef{{Table: "fact", Alias: "f"}}}
	if got := count(t, d, q); got != 6 {
		t.Errorf("count = %d, want 6", got)
	}
	q.Preds = []Predicate{{Alias: "f", Col: "val", Op: OpEq, Val: 100}}
	if got := count(t, d, q); got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
	q.Preds = append(q.Preds, Predicate{Alias: "f", Col: "dim_id", Op: OpGt, Val: 1})
	if got := count(t, d, q); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
}

func TestCountPKFKJoin(t *testing.T) {
	d := testDB(t)
	q := Query{
		Tables: []TableRef{{Table: "dim", Alias: "d"}, {Table: "fact", Alias: "f"}},
		Joins:  []JoinPred{{LeftAlias: "f", LeftCol: "dim_id", RightAlias: "d", RightCol: "id"}},
	}
	// Every fact row matches exactly one dim row: join size = |fact| = 6.
	if got := count(t, d, q); got != 6 {
		t.Errorf("join count = %d, want 6", got)
	}
	// dim.attr = 10 matches dim ids {1,3}; facts with dim_id in {1,3}: rows 1,2,4,5,6 -> 5.
	q.Preds = []Predicate{{Alias: "d", Col: "attr", Op: OpEq, Val: 10}}
	if got := count(t, d, q); got != 5 {
		t.Errorf("filtered join count = %d, want 5", got)
	}
	// Add fact filter val=100 (rows with dim_id 1,2,3): intersect -> dim_id in {1,3} & val=100 -> rows 1,5 -> 2.
	q.Preds = append(q.Preds, Predicate{Alias: "f", Col: "val", Op: OpEq, Val: 100})
	if got := count(t, d, q); got != 2 {
		t.Errorf("double filtered join count = %d, want 2", got)
	}
}

func TestCountEmptyResult(t *testing.T) {
	d := testDB(t)
	q := Query{
		Tables: []TableRef{{Table: "dim", Alias: "d"}, {Table: "fact", Alias: "f"}},
		Joins:  []JoinPred{{LeftAlias: "f", LeftCol: "dim_id", RightAlias: "d", RightCol: "id"}},
		Preds:  []Predicate{{Alias: "d", Col: "attr", Op: OpGt, Val: 1000}},
	}
	if got := count(t, d, q); got != 0 {
		t.Errorf("count = %d, want 0", got)
	}
}

func TestCountRejectsNonTree(t *testing.T) {
	d := testDB(t)
	q := Query{
		Tables: []TableRef{{Table: "dim", Alias: "d"}, {Table: "fact", Alias: "f"}},
		Joins: []JoinPred{
			{LeftAlias: "f", LeftCol: "dim_id", RightAlias: "d", RightCol: "id"},
			{LeftAlias: "f", LeftCol: "id", RightAlias: "d", RightCol: "id"},
		},
	}
	if _, err := d.Count(q); err == nil {
		t.Error("cyclic join graph should be rejected")
	}
}

// randomStarDB builds a randomized star schema: one fact table and two
// dimension tables, with random values, for cross-checking the Yannakakis
// executor against the brute-force reference.
func randomStarDB(rng *rand.Rand, dimRows, factRows int) *DB {
	d := NewDB("rand")
	mkIDs := func(n int) []int64 {
		ids := make([]int64, n)
		for i := range ids {
			ids[i] = int64(i + 1)
		}
		return ids
	}
	randCol := func(n int, lo, hi int64) []int64 {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = lo + rng.Int63n(hi-lo+1)
		}
		return vals
	}
	d.MustAddTable(MustNewTable("dim_a",
		NewIntColumn("id", mkIDs(dimRows)),
		NewIntColumn("attr", randCol(dimRows, 0, 9)),
	))
	d.MustAddTable(MustNewTable("dim_b",
		NewIntColumn("id", mkIDs(dimRows)),
		NewIntColumn("attr", randCol(dimRows, 0, 4)),
	))
	d.MustAddTable(MustNewTable("fact",
		NewIntColumn("id", mkIDs(factRows)),
		NewIntColumn("a_id", randCol(factRows, 1, int64(dimRows)+2)), // some dangling FKs
		NewIntColumn("b_id", randCol(factRows, 1, int64(dimRows))),
		NewIntColumn("val", randCol(factRows, 0, 19)),
	))
	d.SetPK("dim_a", "id")
	d.SetPK("dim_b", "id")
	d.SetPK("fact", "id")
	d.AddFK("fact", "a_id", "dim_a", "id")
	d.AddFK("fact", "b_id", "dim_b", "id")
	return d
}

func randomQuery(rng *rand.Rand) Query {
	q := Query{Tables: []TableRef{{Table: "fact", Alias: "f"}}}
	if rng.Intn(2) == 0 {
		q.Tables = append(q.Tables, TableRef{Table: "dim_a", Alias: "da"})
		q.Joins = append(q.Joins, JoinPred{LeftAlias: "f", LeftCol: "a_id", RightAlias: "da", RightCol: "id"})
		if rng.Intn(2) == 0 {
			q.Preds = append(q.Preds, Predicate{Alias: "da", Col: "attr", Op: Op(rng.Intn(3)), Val: rng.Int63n(10)})
		}
	}
	if rng.Intn(2) == 0 {
		q.Tables = append(q.Tables, TableRef{Table: "dim_b", Alias: "db"})
		q.Joins = append(q.Joins, JoinPred{LeftAlias: "f", LeftCol: "b_id", RightAlias: "db", RightCol: "id"})
		if rng.Intn(2) == 0 {
			q.Preds = append(q.Preds, Predicate{Alias: "db", Col: "attr", Op: Op(rng.Intn(3)), Val: rng.Int63n(5)})
		}
	}
	if rng.Intn(2) == 0 {
		q.Preds = append(q.Preds, Predicate{Alias: "f", Col: "val", Op: Op(rng.Intn(3)), Val: rng.Int63n(20)})
	}
	return q
}

// TestCountMatchesBruteForce is the core correctness property of the ground
// truth oracle: on 200 random star queries over random data, the Yannakakis
// executor agrees exactly with nested-loop enumeration.
func TestCountMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		d := randomStarDB(rng, 8+rng.Intn(8), 20+rng.Intn(20))
		for i := 0; i < 20; i++ {
			q := randomQuery(rng)
			want, err := d.CountBruteForce(q)
			if err != nil {
				t.Fatalf("brute force: %v", err)
			}
			got, err := d.Count(q)
			if err != nil {
				t.Fatalf("count: %v", err)
			}
			if got != want {
				t.Fatalf("trial %d query %d: Count=%d bruteforce=%d for %s",
					trial, i, got, want, q.SQL(nil))
			}
		}
	}
}

// TestCountMonotonicity: adding a predicate never increases the count.
func TestCountMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := randomStarDB(rng, 12, 60)
	for i := 0; i < 50; i++ {
		q := randomQuery(rng)
		base := count(t, d, q)
		q2 := q.Clone()
		q2.Preds = append(q2.Preds, Predicate{Alias: "f", Col: "val", Op: OpLt, Val: rng.Int63n(20)})
		narrowed := count(t, d, q2)
		if narrowed > base {
			t.Fatalf("adding predicate increased count %d -> %d for %s", base, narrowed, q2.SQL(nil))
		}
	}
}

// TestCountJoinRootIndependence: the result must not depend on which table
// comes first in the FROM list (Count roots the join tree at the first).
func TestCountJoinRootIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := randomStarDB(rng, 10, 50)
	q := Query{
		Tables: []TableRef{{Table: "fact", Alias: "f"}, {Table: "dim_a", Alias: "da"}, {Table: "dim_b", Alias: "db"}},
		Joins: []JoinPred{
			{LeftAlias: "f", LeftCol: "a_id", RightAlias: "da", RightCol: "id"},
			{LeftAlias: "f", LeftCol: "b_id", RightAlias: "db", RightCol: "id"},
		},
		Preds: []Predicate{{Alias: "da", Col: "attr", Op: OpGt, Val: 3}},
	}
	want := count(t, d, q)
	perm := Query{
		Tables: []TableRef{q.Tables[2], q.Tables[0], q.Tables[1]},
		Joins:  q.Joins,
		Preds:  q.Preds,
	}
	if got := count(t, d, perm); got != want {
		t.Errorf("root choice changed count: %d vs %d", got, want)
	}
}

func TestFilterTable(t *testing.T) {
	d := testDB(t)
	fact := d.Table("fact")
	rows, all, err := FilterTable(fact, nil)
	if err != nil || !all || rows != nil {
		t.Errorf("no-predicate filter: rows=%v all=%v err=%v", rows, all, err)
	}
	rows, all, err = FilterTable(fact, []Predicate{{Col: "val", Op: OpEq, Val: 100}})
	if err != nil || all || len(rows) != 3 {
		t.Errorf("eq filter: rows=%v all=%v err=%v", rows, all, err)
	}
	if _, err := CountRows(fact, []Predicate{{Col: "nope", Op: OpEq, Val: 1}}); err == nil {
		t.Error("unknown column should error")
	}
	n, err := CountRows(fact, nil)
	if err != nil || n != 6 {
		t.Errorf("CountRows all = %d, %v", n, err)
	}
}

func TestWeightAggDenseAndSparse(t *testing.T) {
	// Dense path.
	a := newWeightAgg(10, 20, 5)
	if a.dense == nil {
		t.Fatal("expected dense agg for small range")
	}
	a.add(10, 1.5)
	a.add(20, 2)
	a.add(10, 0.5)
	if got := a.get(10); got != 2 {
		t.Errorf("dense get = %v", got)
	}
	if got := a.get(999); got != 0 {
		t.Errorf("dense out-of-range get = %v", got)
	}
	// Sparse path: enormous key range.
	s := newWeightAgg(0, 1<<40, 3)
	if s.m == nil {
		t.Fatal("expected map agg for huge range")
	}
	s.add(1<<39, 3)
	if got := s.get(1 << 39); got != 3 {
		t.Errorf("sparse get = %v", got)
	}
	if got := s.get(5); got != 0 {
		t.Errorf("sparse missing get = %v", got)
	}
}
