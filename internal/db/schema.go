// Package db implements the in-memory column-store database engine that Deep
// Sketches are built over. It plays the role HyPer plays in the paper: it
// stores the (synthetic) IMDb and TPC-H datasets, evaluates base-table
// selections, and computes exact COUNT(*) results for select-project-join
// queries, which become the labels for training and the ground truth for
// evaluation.
//
// The engine stores every column as a dense []int64. String columns are
// dictionary-encoded: values index into a per-column dictionary. The
// supported query class matches the demo's: conjunctive equality/range
// predicates on base tables plus acyclic PK/FK equi-joins.
package db

import (
	"fmt"
	"sort"
)

// ColType distinguishes plain integer columns from dictionary-encoded string
// columns. Both are stored as int64; the distinction matters for display,
// literal drawing, and which predicate operators make sense (< and > are
// meaningless on dictionary codes and the workload generator avoids them).
type ColType int

const (
	// ColInt is a 64-bit integer column.
	ColInt ColType = iota
	// ColString is a dictionary-encoded string column; values are indices
	// into the column dictionary.
	ColString
)

func (t ColType) String() string {
	switch t {
	case ColInt:
		return "int"
	case ColString:
		return "string"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// Column is a single dense column of a table.
type Column struct {
	Name string
	Type ColType
	// Vals holds one value per row. For ColString columns the value is an
	// index into Dict.
	Vals []int64
	// Dict maps dictionary codes to strings for ColString columns; nil for
	// ColInt columns.
	Dict []string
	// Min and Max are the value bounds, computed by Freeze. Min > Max means
	// the column is empty.
	Min, Max int64

	dictIdx map[string]int64
}

// NewIntColumn constructs an integer column over vals. The slice is adopted,
// not copied.
func NewIntColumn(name string, vals []int64) *Column {
	c := &Column{Name: name, Type: ColInt, Vals: vals}
	c.freeze()
	return c
}

// NewStringColumn constructs a dictionary-encoded string column. codes index
// into dict. Both slices are adopted, not copied.
func NewStringColumn(name string, codes []int64, dict []string) *Column {
	c := &Column{Name: name, Type: ColString, Vals: codes, Dict: dict}
	c.dictIdx = make(map[string]int64, len(dict))
	for i, s := range dict {
		c.dictIdx[s] = int64(i)
	}
	c.freeze()
	return c
}

func (c *Column) freeze() {
	c.Min, c.Max = 1, 0 // empty marker: Min > Max
	for i, v := range c.Vals {
		if i == 0 {
			c.Min, c.Max = v, v
			continue
		}
		if v < c.Min {
			c.Min = v
		}
		if v > c.Max {
			c.Max = v
		}
	}
}

// Lookup returns the dictionary code of s for a string column.
func (c *Column) Lookup(s string) (int64, bool) {
	if c.dictIdx == nil {
		return 0, false
	}
	v, ok := c.dictIdx[s]
	return v, ok
}

// StringOf renders a value of this column for display: the dictionary entry
// for string columns, the decimal value otherwise.
func (c *Column) StringOf(v int64) string {
	if c.Type == ColString && v >= 0 && int(v) < len(c.Dict) {
		return c.Dict[v]
	}
	return fmt.Sprintf("%d", v)
}

// Table is a named collection of equal-length columns.
type Table struct {
	Name string
	Cols []*Column

	colIdx map[string]int
	rows   int
}

// NewTable constructs a table from its columns. All columns must have the
// same length.
func NewTable(name string, cols ...*Column) (*Table, error) {
	t := &Table{Name: name, Cols: cols, colIdx: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := t.colIdx[c.Name]; dup {
			return nil, fmt.Errorf("db: table %s: duplicate column %s", name, c.Name)
		}
		t.colIdx[c.Name] = i
		if i == 0 {
			t.rows = len(c.Vals)
		} else if len(c.Vals) != t.rows {
			return nil, fmt.Errorf("db: table %s: column %s has %d rows, want %d",
				name, c.Name, len(c.Vals), t.rows)
		}
	}
	return t, nil
}

// MustNewTable is NewTable that panics on error; intended for generators
// whose column lengths are correct by construction.
func MustNewTable(name string, cols ...*Column) *Table {
	t, err := NewTable(name, cols...)
	if err != nil {
		panic(err)
	}
	return t
}

// NumRows returns the table's row count.
func (t *Table) NumRows() int { return t.rows }

// Column returns the named column, or nil if absent.
func (t *Table) Column(name string) *Column {
	if i, ok := t.colIdx[name]; ok {
		return t.Cols[i]
	}
	return nil
}

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		names[i] = c.Name
	}
	return names
}

// ForeignKey declares that Table.Column references RefTable.RefColumn.
// The demo UI uses these single PK/FK relationships to auto-generate join
// predicates when multiple tables are selected; our workload generators do
// the same.
type ForeignKey struct {
	Table     string
	Column    string
	RefTable  string
	RefColumn string
}

// PredColumn marks a column as predicate-eligible: the workload generator
// draws selections only on these columns, with the listed operators. String
// columns admit only equality; numeric columns admit =, < and >.
type PredColumn struct {
	Table  string
	Column string
	Ops    []Op
}

// DB is a schema plus its data: a set of tables, primary keys, foreign key
// relationships, and predicate-column metadata.
type DB struct {
	Name   string
	tables map[string]*Table
	order  []string
	// PKs maps table name to its primary key column.
	PKs map[string]string
	FKs []ForeignKey
	// PredCols lists the predicate-eligible columns, in registration order.
	PredCols []PredColumn
}

// NewDB creates an empty database with the given name.
func NewDB(name string) *DB {
	return &DB{Name: name, tables: make(map[string]*Table), PKs: make(map[string]string)}
}

// AddTable registers a table. It returns an error on duplicate names.
func (d *DB) AddTable(t *Table) error {
	if _, dup := d.tables[t.Name]; dup {
		return fmt.Errorf("db: duplicate table %s", t.Name)
	}
	d.tables[t.Name] = t
	d.order = append(d.order, t.Name)
	return nil
}

// MustAddTable is AddTable that panics on error.
func (d *DB) MustAddTable(t *Table) {
	if err := d.AddTable(t); err != nil {
		panic(err)
	}
}

// SetPK declares the primary key column of a table.
func (d *DB) SetPK(table, column string) { d.PKs[table] = column }

// AddFK declares a foreign key relationship.
func (d *DB) AddFK(table, column, refTable, refColumn string) {
	d.FKs = append(d.FKs, ForeignKey{Table: table, Column: column, RefTable: refTable, RefColumn: refColumn})
}

// AddPredColumn marks table.column as predicate-eligible with the given
// operators. With no operators, numeric columns default to {=, <, >} and
// string columns to {=}.
func (d *DB) AddPredColumn(table, column string, ops ...Op) {
	if len(ops) == 0 {
		ops = []Op{OpEq, OpLt, OpGt}
		if t := d.Table(table); t != nil {
			if c := t.Column(column); c != nil && c.Type == ColString {
				ops = []Op{OpEq}
			}
		}
	}
	d.PredCols = append(d.PredCols, PredColumn{Table: table, Column: column, Ops: ops})
}

// PredColumnsFor returns the predicate-eligible columns of one table.
func (d *DB) PredColumnsFor(table string) []PredColumn {
	var out []PredColumn
	for _, pc := range d.PredCols {
		if pc.Table == table {
			out = append(out, pc)
		}
	}
	return out
}

// Table returns the named table, or nil if absent.
func (d *DB) Table(name string) *Table { return d.tables[name] }

// TableNames returns all table names in registration order.
func (d *DB) TableNames() []string {
	names := make([]string, len(d.order))
	copy(names, d.order)
	return names
}

// TotalRows returns the summed row count over all tables.
func (d *DB) TotalRows() int {
	var n int
	for _, name := range d.order {
		n += d.tables[name].NumRows()
	}
	return n
}

// FKsBetween returns the foreign keys connecting two tables, in either
// direction.
func (d *DB) FKsBetween(a, b string) []ForeignKey {
	var out []ForeignKey
	for _, fk := range d.FKs {
		if (fk.Table == a && fk.RefTable == b) || (fk.Table == b && fk.RefTable == a) {
			out = append(out, fk)
		}
	}
	return out
}

// JoinableNeighbors returns the set of tables directly connected to table by
// a foreign key, sorted by name.
func (d *DB) JoinableNeighbors(table string) []string {
	seen := map[string]bool{}
	for _, fk := range d.FKs {
		if fk.Table == table {
			seen[fk.RefTable] = true
		}
		if fk.RefTable == table {
			seen[fk.Table] = true
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Validate checks referential consistency of the schema metadata: PK columns
// exist, FK endpoints exist, and FK target is the declared PK of the
// referenced table.
func (d *DB) Validate() error {
	for table, pk := range d.PKs {
		t := d.Table(table)
		if t == nil {
			return fmt.Errorf("db: PK declared on missing table %s", table)
		}
		if t.Column(pk) == nil {
			return fmt.Errorf("db: PK column %s.%s missing", table, pk)
		}
	}
	for _, fk := range d.FKs {
		t := d.Table(fk.Table)
		if t == nil || t.Column(fk.Column) == nil {
			return fmt.Errorf("db: FK source %s.%s missing", fk.Table, fk.Column)
		}
		rt := d.Table(fk.RefTable)
		if rt == nil || rt.Column(fk.RefColumn) == nil {
			return fmt.Errorf("db: FK target %s.%s missing", fk.RefTable, fk.RefColumn)
		}
		if pk, ok := d.PKs[fk.RefTable]; !ok || pk != fk.RefColumn {
			return fmt.Errorf("db: FK %s.%s references %s.%s which is not the declared PK",
				fk.Table, fk.Column, fk.RefTable, fk.RefColumn)
		}
	}
	return nil
}
