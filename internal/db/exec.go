package db

import (
	"fmt"
	"math"
)

// Count computes the exact COUNT(*) of a select-project-join query. It is
// the ground-truth oracle the paper obtains from HyPer: training labels and
// "true cardinality" overlays both come from here.
//
// The algorithm is counting Yannakakis over the join tree: every base table
// is reduced to its qualifying rows, the join graph (which must be a tree —
// the demo auto-generates joins from single PK/FK relationships, so cyclic
// graphs never arise) is rooted at the first table, and weights are
// propagated bottom-up. A child contributes, per join key, the sum of its
// row weights; each parent row multiplies in the sum matching its key. The
// final count is the weight sum at the root. This is exact for acyclic
// equi-join queries and runs in time linear in the qualifying rows.
//
// Counts are accumulated in float64, which is exact up to 2^53; the result
// saturates at MaxInt64 beyond that (unreachable at supported scales).
func (d *DB) Count(q Query) (int64, error) {
	if err := d.ValidateQuery(q); err != nil {
		return 0, err
	}
	if len(q.Joins) != len(q.Tables)-1 {
		return 0, fmt.Errorf("db: join graph must be a tree: %d tables need %d joins, got %d",
			len(q.Tables), len(q.Tables)-1, len(q.Joins))
	}

	nodes := make([]*execNode, len(q.Tables))
	byAlias := make(map[string]*execNode, len(q.Tables))
	for i, tr := range q.Tables {
		t := d.Table(tr.Table)
		rows, all, err := FilterTable(t, q.PredsFor(tr.Alias))
		if err != nil {
			return 0, err
		}
		n := &execNode{ref: tr, table: t, rows: rows, all: all}
		nodes[i] = n
		byAlias[tr.Alias] = n
	}
	if len(nodes) == 1 {
		n := nodes[0]
		if n.all {
			return int64(n.table.NumRows()), nil
		}
		return int64(len(n.rows)), nil
	}

	// Build the join tree rooted at the first table.
	type edge struct {
		to       *execNode
		toCol    string // join column on the child (to) side
		fromCol  string // join column on the parent (from) side
		consumed bool
	}
	adj := make(map[string][]*edge)
	for _, j := range q.Joins {
		l, r := byAlias[j.LeftAlias], byAlias[j.RightAlias]
		adj[l.ref.Alias] = append(adj[l.ref.Alias], &edge{to: r, toCol: j.RightCol, fromCol: j.LeftCol})
		adj[r.ref.Alias] = append(adj[r.ref.Alias], &edge{to: l, toCol: j.LeftCol, fromCol: j.RightCol})
	}

	root := nodes[0]
	visited := map[string]bool{root.ref.Alias: true}
	// reduce folds the subtree under n into n's row weights; query trees
	// are at most a handful of tables deep, so recursion is fine.
	var reduce func(n *execNode) error
	reduce = func(n *execNode) error {
		for _, e := range adj[n.ref.Alias] {
			if visited[e.to.ref.Alias] {
				continue
			}
			visited[e.to.ref.Alias] = true
			if err := reduce(e.to); err != nil {
				return err
			}
			if err := n.absorb(e.to, e.fromCol, e.toCol); err != nil {
				return err
			}
		}
		return nil
	}
	if err := reduce(root); err != nil {
		return 0, err
	}
	total := root.totalWeight()
	if total >= math.MaxInt64 {
		return math.MaxInt64, nil
	}
	return int64(total), nil
}

// execNode is one table occurrence during execution: its qualifying rows and
// their accumulated weights. weights == nil means every qualifying row has
// weight 1 (the common leaf case), avoiding an allocation per node.
type execNode struct {
	ref     TableRef
	table   *Table
	rows    []int32 // qualifying row ids; nil+all means every row
	all     bool
	weights []float64 // parallel to rows (or to all rows when all)
}

func (n *execNode) totalWeight() float64 {
	if n.weights == nil {
		if n.all {
			return float64(n.table.NumRows())
		}
		return float64(len(n.rows))
	}
	var s float64
	for _, w := range n.weights {
		s += w
	}
	return s
}

// absorb folds a fully-reduced child into the parent: parent row weights are
// multiplied by the child's per-key weight sums, and parent rows without a
// matching child key are dropped.
func (n *execNode) absorb(child *execNode, parentCol, childCol string) error {
	ccol := child.table.Column(childCol)
	if ccol == nil {
		return fmt.Errorf("db: column %s.%s missing", child.ref.Table, childCol)
	}
	pcol := n.table.Column(parentCol)
	if pcol == nil {
		return fmt.Errorf("db: column %s.%s missing", n.ref.Table, parentCol)
	}

	agg := newWeightAgg(ccol.Min, ccol.Max, child.size())
	if child.all {
		if child.weights == nil {
			for _, v := range ccol.Vals {
				agg.add(v, 1)
			}
		} else {
			for i, v := range ccol.Vals {
				agg.add(v, child.weights[i])
			}
		}
	} else {
		if child.weights == nil {
			for _, r := range child.rows {
				agg.add(ccol.Vals[r], 1)
			}
		} else {
			for i, r := range child.rows {
				agg.add(ccol.Vals[r], child.weights[i])
			}
		}
	}

	// Multiply into parent, materializing its row list if still implicit.
	if n.all {
		n.rows = make([]int32, n.table.NumRows())
		for i := range n.rows {
			n.rows[i] = int32(i)
		}
		n.all = false
	}
	oldWeights := n.weights
	newRows := n.rows[:0]
	newWeights := make([]float64, 0, len(n.rows))
	for i, r := range n.rows {
		w := agg.get(pcol.Vals[r])
		if w == 0 {
			continue
		}
		if oldWeights != nil {
			w *= oldWeights[i]
		}
		newRows = append(newRows, r)
		newWeights = append(newWeights, w)
	}
	n.rows = newRows
	n.weights = newWeights
	return nil
}

func (n *execNode) size() int {
	if n.all {
		return n.table.NumRows()
	}
	return len(n.rows)
}

// weightAgg sums weights per join key. Join keys in the supported schemas
// are dense integer ids, so a dense array is used whenever the key range is
// reasonable relative to the input size; otherwise it falls back to a map.
type weightAgg struct {
	dense  []float64
	offset int64
	m      map[int64]float64
}

const denseSlack = 4

func newWeightAgg(min, max int64, n int) *weightAgg {
	if min <= max {
		span := max - min + 1
		if span <= int64(denseSlack*n)+1024 || span <= 1<<16 {
			return &weightAgg{dense: make([]float64, span), offset: min}
		}
	}
	return &weightAgg{m: make(map[int64]float64, n)}
}

func (a *weightAgg) add(key int64, w float64) {
	if a.dense != nil {
		a.dense[key-a.offset] += w
		return
	}
	a.m[key] += w
}

func (a *weightAgg) get(key int64) float64 {
	if a.dense != nil {
		idx := key - a.offset
		if idx < 0 || idx >= int64(len(a.dense)) {
			return 0
		}
		return a.dense[idx]
	}
	return a.m[key]
}

// CountBruteForce computes COUNT(*) by exhaustive nested-loop enumeration.
// It is exponential in the number of tables and exists as a reference
// implementation for validating Count in tests; do not use it on full-size
// datasets.
func (d *DB) CountBruteForce(q Query) (int64, error) {
	if err := d.ValidateQuery(q); err != nil {
		return 0, err
	}
	type tbl struct {
		ref  TableRef
		t    *Table
		rows []int32
	}
	tbls := make([]tbl, len(q.Tables))
	for i, tr := range q.Tables {
		t := d.Table(tr.Table)
		rows, all, err := FilterTable(t, q.PredsFor(tr.Alias))
		if err != nil {
			return 0, err
		}
		if all {
			rows = make([]int32, t.NumRows())
			for r := range rows {
				rows[r] = int32(r)
			}
		}
		tbls[i] = tbl{ref: tr, t: t, rows: rows}
	}
	aliasIdx := map[string]int{}
	for i, tb := range tbls {
		aliasIdx[tb.ref.Alias] = i
	}
	assignment := make([]int32, len(tbls))
	var count int64
	var rec func(depth int)
	rec = func(depth int) {
		if depth == len(tbls) {
			count++
			return
		}
	next:
		for _, r := range tbls[depth].rows {
			assignment[depth] = r
			for _, j := range q.Joins {
				li, ri := aliasIdx[j.LeftAlias], aliasIdx[j.RightAlias]
				if li > depth || ri > depth {
					continue
				}
				lv := tbls[li].t.Column(j.LeftCol).Vals[assignment[li]]
				rv := tbls[ri].t.Column(j.RightCol).Vals[assignment[ri]]
				if lv != rv {
					continue next
				}
			}
			rec(depth + 1)
		}
	}
	rec(0)
	return count, nil
}
