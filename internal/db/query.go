package db

import (
	"fmt"
	"sort"
	"strings"
)

// Op is a predicate comparison operator. The paper's query class (and the
// MSCN featurization) supports exactly =, <, and >.
type Op int

const (
	// OpEq is equality (=).
	OpEq Op = iota
	// OpLt is strictly-less-than (<).
	OpLt
	// OpGt is strictly-greater-than (>).
	OpGt
)

// NumOps is the number of predicate operators, used for one-hot widths.
const NumOps = 3

func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpGt:
		return ">"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// ParseOp parses "=", "<" or ">".
func ParseOp(s string) (Op, error) {
	switch s {
	case "=":
		return OpEq, nil
	case "<":
		return OpLt, nil
	case ">":
		return OpGt, nil
	default:
		return 0, fmt.Errorf("db: unknown operator %q", s)
	}
}

// Eval applies the operator to a column value and a literal.
func (o Op) Eval(v, lit int64) bool {
	switch o {
	case OpEq:
		return v == lit
	case OpLt:
		return v < lit
	case OpGt:
		return v > lit
	default:
		return false
	}
}

// TableRef is a table occurrence in a query with its alias (e.g. "title t").
type TableRef struct {
	Table string
	Alias string
}

// JoinPred is an equi-join predicate between two aliased columns
// (a.x = b.y).
type JoinPred struct {
	LeftAlias  string
	LeftCol    string
	RightAlias string
	RightCol   string
}

// Canonical returns the join with sides ordered lexicographically so that
// a.x=b.y and b.y=a.x compare and featurize identically — a requirement of
// the set semantics the MSCN model relies on.
func (j JoinPred) Canonical() JoinPred {
	l := j.LeftAlias + "." + j.LeftCol
	r := j.RightAlias + "." + j.RightCol
	if l <= r {
		return j
	}
	return JoinPred{LeftAlias: j.RightAlias, LeftCol: j.RightCol, RightAlias: j.LeftAlias, RightCol: j.LeftCol}
}

// Predicate is a base-table selection: alias.col <op> literal.
type Predicate struct {
	Alias string
	Col   string
	Op    Op
	Val   int64
}

// Query is a COUNT(*) select-project-join query: a set of tables, a set of
// equi-joins, and a set of conjunctive base-table predicates. Per the MSCN
// set semantics, the order of elements in each slice carries no meaning.
type Query struct {
	Tables []TableRef
	Joins  []JoinPred
	Preds  []Predicate
}

// Clone returns a deep copy of the query.
func (q Query) Clone() Query {
	c := Query{
		Tables: make([]TableRef, len(q.Tables)),
		Joins:  make([]JoinPred, len(q.Joins)),
		Preds:  make([]Predicate, len(q.Preds)),
	}
	copy(c.Tables, q.Tables)
	copy(c.Joins, q.Joins)
	copy(c.Preds, q.Preds)
	return c
}

// RefByAlias returns the table reference with the given alias.
func (q Query) RefByAlias(alias string) (TableRef, bool) {
	for _, r := range q.Tables {
		if r.Alias == alias {
			return r, true
		}
	}
	return TableRef{}, false
}

// PredsFor returns the predicates applying to one alias, preserving order.
func (q Query) PredsFor(alias string) []Predicate {
	var out []Predicate
	for _, p := range q.Preds {
		if p.Alias == alias {
			out = append(out, p)
		}
	}
	return out
}

// SQL renders the query in the demo's SQL dialect:
//
//	SELECT COUNT(*) FROM title t, movie_keyword mk
//	WHERE mk.movie_id=t.id AND t.production_year>2000
//
// String literals are rendered via the database dictionary when db is
// non-nil; otherwise raw codes are printed.
func (q Query) SQL(d *DB) string {
	var b strings.Builder
	b.WriteString("SELECT COUNT(*) FROM ")
	for i, tr := range q.Tables {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(tr.Table)
		if tr.Alias != "" && tr.Alias != tr.Table {
			b.WriteByte(' ')
			b.WriteString(tr.Alias)
		}
	}
	conds := make([]string, 0, len(q.Joins)+len(q.Preds))
	for _, j := range q.Joins {
		j = j.Canonical()
		conds = append(conds, fmt.Sprintf("%s.%s=%s.%s", j.LeftAlias, j.LeftCol, j.RightAlias, j.RightCol))
	}
	for _, p := range q.Preds {
		lit := fmt.Sprintf("%d", p.Val)
		if d != nil {
			if tr, ok := q.RefByAlias(p.Alias); ok {
				if t := d.Table(tr.Table); t != nil {
					if c := t.Column(p.Col); c != nil && c.Type == ColString {
						lit = fmt.Sprintf("'%s'", c.StringOf(p.Val))
					}
				}
			}
		}
		conds = append(conds, fmt.Sprintf("%s.%s%s%s", p.Alias, p.Col, p.Op, lit))
	}
	if len(conds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}
	return b.String()
}

// Signature returns a canonical, order-independent key for the query, used
// for de-duplicating generated workloads. Two queries that are equal as sets
// share a signature.
func (q Query) Signature() string {
	tables := make([]string, len(q.Tables))
	for i, t := range q.Tables {
		tables[i] = t.Table + " " + t.Alias
	}
	sort.Strings(tables)
	joins := make([]string, len(q.Joins))
	for i, j := range q.Joins {
		c := j.Canonical()
		joins[i] = c.LeftAlias + "." + c.LeftCol + "=" + c.RightAlias + "." + c.RightCol
	}
	sort.Strings(joins)
	preds := make([]string, len(q.Preds))
	for i, p := range q.Preds {
		preds[i] = fmt.Sprintf("%s.%s%s%d", p.Alias, p.Col, p.Op, p.Val)
	}
	sort.Strings(preds)
	return strings.Join(tables, ",") + "|" + strings.Join(joins, ",") + "|" + strings.Join(preds, ",")
}

// ValidateQuery checks the query against the database schema: aliases are
// unique, tables and columns exist, joins reference in-query aliases, and
// the join graph is connected when more than one table is present.
func (d *DB) ValidateQuery(q Query) error {
	if len(q.Tables) == 0 {
		return fmt.Errorf("db: query has no tables")
	}
	seen := map[string]string{}
	for _, tr := range q.Tables {
		if tr.Alias == "" {
			return fmt.Errorf("db: table %s has empty alias", tr.Table)
		}
		if _, dup := seen[tr.Alias]; dup {
			return fmt.Errorf("db: duplicate alias %s", tr.Alias)
		}
		t := d.Table(tr.Table)
		if t == nil {
			return fmt.Errorf("db: unknown table %s", tr.Table)
		}
		seen[tr.Alias] = tr.Table
	}
	checkCol := func(alias, col string) error {
		tbl, ok := seen[alias]
		if !ok {
			return fmt.Errorf("db: unknown alias %s", alias)
		}
		if d.Table(tbl).Column(col) == nil {
			return fmt.Errorf("db: unknown column %s.%s (table %s)", alias, col, tbl)
		}
		return nil
	}
	for _, j := range q.Joins {
		if err := checkCol(j.LeftAlias, j.LeftCol); err != nil {
			return err
		}
		if err := checkCol(j.RightAlias, j.RightCol); err != nil {
			return err
		}
		if j.LeftAlias == j.RightAlias {
			return fmt.Errorf("db: self-join predicate on alias %s unsupported", j.LeftAlias)
		}
	}
	for _, p := range q.Preds {
		if err := checkCol(p.Alias, p.Col); err != nil {
			return err
		}
	}
	if len(q.Tables) > 1 {
		if !q.connected() {
			return fmt.Errorf("db: join graph is not connected (cross products unsupported)")
		}
	}
	return nil
}

func (q Query) connected() bool {
	if len(q.Tables) == 0 {
		return false
	}
	adj := map[string][]string{}
	for _, j := range q.Joins {
		adj[j.LeftAlias] = append(adj[j.LeftAlias], j.RightAlias)
		adj[j.RightAlias] = append(adj[j.RightAlias], j.LeftAlias)
	}
	visited := map[string]bool{q.Tables[0].Alias: true}
	stack := []string{q.Tables[0].Alias}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range adj[a] {
			if !visited[n] {
				visited[n] = true
				stack = append(stack, n)
			}
		}
	}
	return len(visited) == len(q.Tables)
}
