package db

import (
	"testing"
)

func TestColumnFreezeBounds(t *testing.T) {
	c := NewIntColumn("x", []int64{5, -3, 7, 0})
	if c.Min != -3 || c.Max != 7 {
		t.Errorf("bounds = [%d,%d], want [-3,7]", c.Min, c.Max)
	}
	empty := NewIntColumn("y", nil)
	if empty.Min <= empty.Max {
		t.Errorf("empty column should have Min > Max, got [%d,%d]", empty.Min, empty.Max)
	}
}

func TestStringColumnDict(t *testing.T) {
	c := NewStringColumn("kw", []int64{0, 1, 0, 2}, []string{"ai", "robot", "space"})
	if v, ok := c.Lookup("robot"); !ok || v != 1 {
		t.Errorf("Lookup(robot) = %d,%v", v, ok)
	}
	if _, ok := c.Lookup("missing"); ok {
		t.Error("Lookup(missing) should fail")
	}
	if s := c.StringOf(2); s != "space" {
		t.Errorf("StringOf(2) = %q", s)
	}
	if s := c.StringOf(99); s != "99" {
		t.Errorf("StringOf(out of range) = %q, want fallback decimal", s)
	}
}

func TestNewTableValidation(t *testing.T) {
	a := NewIntColumn("a", []int64{1, 2})
	b := NewIntColumn("b", []int64{1})
	if _, err := NewTable("t", a, b); err == nil {
		t.Error("mismatched column lengths should error")
	}
	dup := NewIntColumn("a", []int64{3, 4})
	if _, err := NewTable("t", a, dup); err == nil {
		t.Error("duplicate column names should error")
	}
	tbl, err := NewTable("t", a)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("NumRows = %d", tbl.NumRows())
	}
	if tbl.Column("missing") != nil {
		t.Error("missing column should be nil")
	}
	if got := tbl.ColumnNames(); len(got) != 1 || got[0] != "a" {
		t.Errorf("ColumnNames = %v", got)
	}
}

func testDB(t *testing.T) *DB {
	t.Helper()
	d := NewDB("test")
	// Dimension table dim(id, attr), fact table fact(id, dim_id, val).
	d.MustAddTable(MustNewTable("dim",
		NewIntColumn("id", []int64{1, 2, 3, 4}),
		NewIntColumn("attr", []int64{10, 20, 10, 30}),
	))
	d.MustAddTable(MustNewTable("fact",
		NewIntColumn("id", []int64{1, 2, 3, 4, 5, 6}),
		NewIntColumn("dim_id", []int64{1, 1, 2, 3, 3, 3}),
		NewIntColumn("val", []int64{100, 200, 100, 300, 100, 200}),
	))
	d.SetPK("dim", "id")
	d.SetPK("fact", "id")
	d.AddFK("fact", "dim_id", "dim", "id")
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDBValidate(t *testing.T) {
	d := testDB(t)
	d.AddFK("fact", "nope", "dim", "id")
	if err := d.Validate(); err == nil {
		t.Error("missing FK source column should fail validation")
	}

	d2 := NewDB("x")
	d2.MustAddTable(MustNewTable("a", NewIntColumn("id", []int64{1})))
	d2.MustAddTable(MustNewTable("b", NewIntColumn("id", []int64{1}), NewIntColumn("a_id", []int64{1})))
	d2.AddFK("b", "a_id", "a", "id")
	if err := d2.Validate(); err == nil {
		t.Error("FK to non-PK column should fail validation")
	}
}

func TestJoinableNeighbors(t *testing.T) {
	d := testDB(t)
	n := d.JoinableNeighbors("dim")
	if len(n) != 1 || n[0] != "fact" {
		t.Errorf("JoinableNeighbors(dim) = %v", n)
	}
	if got := d.FKsBetween("dim", "fact"); len(got) != 1 {
		t.Errorf("FKsBetween = %v", got)
	}
	if got := d.FKsBetween("dim", "dim"); len(got) != 0 {
		t.Errorf("FKsBetween same table = %v", got)
	}
}

func TestTotalRowsAndNames(t *testing.T) {
	d := testDB(t)
	if d.TotalRows() != 10 {
		t.Errorf("TotalRows = %d, want 10", d.TotalRows())
	}
	names := d.TableNames()
	if len(names) != 2 || names[0] != "dim" || names[1] != "fact" {
		t.Errorf("TableNames = %v", names)
	}
	if d.AddTable(MustNewTable("dim", NewIntColumn("id", nil))) == nil {
		t.Error("duplicate table should error")
	}
}
