package db

import (
	"strings"
	"testing"
)

func TestOpEvalAndString(t *testing.T) {
	cases := []struct {
		op   Op
		v, l int64
		want bool
	}{
		{OpEq, 5, 5, true}, {OpEq, 5, 6, false},
		{OpLt, 4, 5, true}, {OpLt, 5, 5, false},
		{OpGt, 6, 5, true}, {OpGt, 5, 5, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.v, c.l); got != c.want {
			t.Errorf("%d %s %d = %v, want %v", c.v, c.op, c.l, got, c.want)
		}
	}
	for _, s := range []string{"=", "<", ">"} {
		op, err := ParseOp(s)
		if err != nil {
			t.Fatal(err)
		}
		if op.String() != s {
			t.Errorf("round trip %q -> %q", s, op.String())
		}
	}
	if _, err := ParseOp(">="); err == nil {
		t.Error("ParseOp(>=) should fail")
	}
}

func TestJoinCanonical(t *testing.T) {
	j := JoinPred{LeftAlias: "t", LeftCol: "id", RightAlias: "mk", RightCol: "movie_id"}
	c1 := j.Canonical()
	j2 := JoinPred{LeftAlias: "mk", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"}
	c2 := j2.Canonical()
	if c1 != c2 {
		t.Errorf("canonical forms differ: %+v vs %+v", c1, c2)
	}
}

func TestQuerySQL(t *testing.T) {
	q := Query{
		Tables: []TableRef{{Table: "dim", Alias: "d"}, {Table: "fact", Alias: "f"}},
		Joins:  []JoinPred{{LeftAlias: "f", LeftCol: "dim_id", RightAlias: "d", RightCol: "id"}},
		Preds:  []Predicate{{Alias: "d", Col: "attr", Op: OpGt, Val: 15}},
	}
	sql := q.SQL(nil)
	for _, want := range []string{"SELECT COUNT(*) FROM dim d, fact f", "d.id=f.dim_id", "d.attr>15"} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q: %s", want, sql)
		}
	}
}

func TestQuerySQLStringLiteral(t *testing.T) {
	d := NewDB("x")
	d.MustAddTable(MustNewTable("kw",
		NewIntColumn("id", []int64{1, 2}),
		NewStringColumn("keyword", []int64{0, 1}, []string{"ai", "robot"}),
	))
	q := Query{
		Tables: []TableRef{{Table: "kw", Alias: "k"}},
		Preds:  []Predicate{{Alias: "k", Col: "keyword", Op: OpEq, Val: 1}},
	}
	sql := q.SQL(d)
	if !strings.Contains(sql, "k.keyword='robot'") {
		t.Errorf("string literal not rendered: %s", sql)
	}
}

func TestQuerySignatureOrderIndependent(t *testing.T) {
	a := Query{
		Tables: []TableRef{{Table: "dim", Alias: "d"}, {Table: "fact", Alias: "f"}},
		Joins:  []JoinPred{{LeftAlias: "f", LeftCol: "dim_id", RightAlias: "d", RightCol: "id"}},
		Preds: []Predicate{
			{Alias: "d", Col: "attr", Op: OpGt, Val: 15},
			{Alias: "f", Col: "val", Op: OpEq, Val: 100},
		},
	}
	b := Query{
		Tables: []TableRef{{Table: "fact", Alias: "f"}, {Table: "dim", Alias: "d"}},
		Joins:  []JoinPred{{LeftAlias: "d", LeftCol: "id", RightAlias: "f", RightCol: "dim_id"}},
		Preds: []Predicate{
			{Alias: "f", Col: "val", Op: OpEq, Val: 100},
			{Alias: "d", Col: "attr", Op: OpGt, Val: 15},
		},
	}
	if a.Signature() != b.Signature() {
		t.Errorf("signatures differ:\n%s\n%s", a.Signature(), b.Signature())
	}
}

func TestQueryClone(t *testing.T) {
	q := Query{
		Tables: []TableRef{{Table: "dim", Alias: "d"}},
		Preds:  []Predicate{{Alias: "d", Col: "attr", Op: OpEq, Val: 10}},
	}
	c := q.Clone()
	c.Preds[0].Val = 99
	c.Tables[0].Alias = "x"
	if q.Preds[0].Val != 10 || q.Tables[0].Alias != "d" {
		t.Error("Clone aliases underlying storage")
	}
}

func TestValidateQuery(t *testing.T) {
	d := testDB(t)
	good := Query{
		Tables: []TableRef{{Table: "dim", Alias: "d"}, {Table: "fact", Alias: "f"}},
		Joins:  []JoinPred{{LeftAlias: "f", LeftCol: "dim_id", RightAlias: "d", RightCol: "id"}},
	}
	if err := d.ValidateQuery(good); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}

	bad := []Query{
		{}, // no tables
		{Tables: []TableRef{{Table: "nope", Alias: "n"}}},
		{Tables: []TableRef{{Table: "dim", Alias: ""}}},
		{Tables: []TableRef{{Table: "dim", Alias: "d"}, {Table: "fact", Alias: "d"}}},
		{Tables: []TableRef{{Table: "dim", Alias: "d"}},
			Preds: []Predicate{{Alias: "d", Col: "nope", Op: OpEq, Val: 1}}},
		{Tables: []TableRef{{Table: "dim", Alias: "d"}},
			Preds: []Predicate{{Alias: "x", Col: "attr", Op: OpEq, Val: 1}}},
		// disconnected: two tables, no join
		{Tables: []TableRef{{Table: "dim", Alias: "d"}, {Table: "fact", Alias: "f"}}},
		// self join
		{Tables: []TableRef{{Table: "dim", Alias: "d"}, {Table: "fact", Alias: "f"}},
			Joins: []JoinPred{{LeftAlias: "d", LeftCol: "id", RightAlias: "d", RightCol: "id"}}},
	}
	for i, q := range bad {
		if err := d.ValidateQuery(q); err == nil {
			t.Errorf("bad query %d accepted: %s", i, q.SQL(nil))
		}
	}
}
