package db

import (
	"math/rand"
	"testing"
)

// TestCountTableOrderInvariance: COUNT(*) must not depend on the FROM-list
// order for any random query (the executor roots the join tree at the first
// table, so this exercises every rooting).
func TestCountTableOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	d := randomStarDB(rng, 15, 80)
	for i := 0; i < 40; i++ {
		q := randomQuery(rng)
		if len(q.Tables) < 2 {
			continue
		}
		want := count(t, d, q)
		for trial := 0; trial < 3; trial++ {
			perm := q.Clone()
			rng.Shuffle(len(perm.Tables), func(a, b int) {
				perm.Tables[a], perm.Tables[b] = perm.Tables[b], perm.Tables[a]
			})
			if got := count(t, d, perm); got != want {
				t.Fatalf("table order changed count %d -> %d for %s", want, got, q.SQL(nil))
			}
		}
	}
}

// TestCountPredicateOrderInvariance: predicate evaluation order must not
// matter (conjunction is commutative).
func TestCountPredicateOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	d := randomStarDB(rng, 12, 70)
	for i := 0; i < 40; i++ {
		q := randomQuery(rng)
		if len(q.Preds) < 2 {
			continue
		}
		want := count(t, d, q)
		perm := q.Clone()
		rng.Shuffle(len(perm.Preds), func(a, b int) {
			perm.Preds[a], perm.Preds[b] = perm.Preds[b], perm.Preds[a]
		})
		if got := count(t, d, perm); got != want {
			t.Fatalf("predicate order changed count %d -> %d for %s", want, got, q.SQL(nil))
		}
	}
}

// TestCountJoinDirectionInvariance: a.x=b.y and b.y=a.x are the same join.
func TestCountJoinDirectionInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	d := randomStarDB(rng, 10, 60)
	for i := 0; i < 30; i++ {
		q := randomQuery(rng)
		if len(q.Joins) == 0 {
			continue
		}
		want := count(t, d, q)
		flipped := q.Clone()
		for j := range flipped.Joins {
			jp := flipped.Joins[j]
			flipped.Joins[j] = JoinPred{
				LeftAlias: jp.RightAlias, LeftCol: jp.RightCol,
				RightAlias: jp.LeftAlias, RightCol: jp.LeftCol,
			}
		}
		if got := count(t, d, flipped); got != want {
			t.Fatalf("join direction changed count %d -> %d for %s", want, got, q.SQL(nil))
		}
	}
}

// TestCountComplementarity: for any column c and literal v,
// count(c < v) + count(c = v) + count(c > v) = count(*) on a single table.
func TestCountComplementarity(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	d := randomStarDB(rng, 10, 200)
	fact := d.Table("fact")
	total := int64(fact.NumRows())
	for i := 0; i < 30; i++ {
		v := rng.Int63n(25) - 2
		var sum int64
		for _, op := range []Op{OpLt, OpEq, OpGt} {
			q := Query{
				Tables: []TableRef{{Table: "fact", Alias: "f"}},
				Preds:  []Predicate{{Alias: "f", Col: "val", Op: op, Val: v}},
			}
			sum += count(t, d, q)
		}
		if sum != total {
			t.Fatalf("complementarity violated for v=%d: %d != %d", v, sum, total)
		}
	}
}

// TestCountDisjointEqPartition: the counts of c = v over all distinct v sum
// to the table size.
func TestCountDisjointEqPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	d := randomStarDB(rng, 8, 120)
	fact := d.Table("fact")
	col := fact.Column("val")
	seen := map[int64]bool{}
	var sum int64
	for _, v := range col.Vals {
		if seen[v] {
			continue
		}
		seen[v] = true
		q := Query{
			Tables: []TableRef{{Table: "fact", Alias: "f"}},
			Preds:  []Predicate{{Alias: "f", Col: "val", Op: OpEq, Val: v}},
		}
		sum += count(t, d, q)
	}
	if sum != int64(fact.NumRows()) {
		t.Fatalf("eq partition sums to %d, want %d", sum, fact.NumRows())
	}
}

// TestStringColumnFilter: dictionary-encoded columns filter by code like any
// int column.
func TestStringColumnFilter(t *testing.T) {
	d := NewDB("s")
	codes := []int64{0, 1, 0, 2, 1, 0}
	d.MustAddTable(MustNewTable("items",
		NewIntColumn("id", []int64{1, 2, 3, 4, 5, 6}),
		NewStringColumn("color", codes, []string{"red", "green", "blue"}),
	))
	col := d.Table("items").Column("color")
	code, ok := col.Lookup("red")
	if !ok {
		t.Fatal("lookup failed")
	}
	q := Query{
		Tables: []TableRef{{Table: "items", Alias: "i"}},
		Preds:  []Predicate{{Alias: "i", Col: "color", Op: OpEq, Val: code}},
	}
	if got := count(t, d, q); got != 3 {
		t.Errorf("count(color=red) = %d, want 3", got)
	}
}

// TestCountDanglingFKRows: fact rows whose FK has no matching dimension row
// must vanish from the join.
func TestCountDanglingFKRows(t *testing.T) {
	d := NewDB("dangling")
	d.MustAddTable(MustNewTable("dim",
		NewIntColumn("id", []int64{1, 2}),
	))
	d.MustAddTable(MustNewTable("fact",
		NewIntColumn("id", []int64{1, 2, 3}),
		NewIntColumn("dim_id", []int64{1, 2, 99}), // 99 dangles
	))
	q := Query{
		Tables: []TableRef{{Table: "fact", Alias: "f"}, {Table: "dim", Alias: "d"}},
		Joins:  []JoinPred{{LeftAlias: "f", LeftCol: "dim_id", RightAlias: "d", RightCol: "id"}},
	}
	if got := count(t, d, q); got != 2 {
		t.Errorf("dangling join count = %d, want 2", got)
	}
}

// TestCountChainJoin exercises a non-star (chain) join tree: d1 <- f -> d2
// is a star; build a real chain a <- b <- c.
func TestCountChainJoin(t *testing.T) {
	d := NewDB("chain")
	d.MustAddTable(MustNewTable("a",
		NewIntColumn("id", []int64{1, 2}),
	))
	d.MustAddTable(MustNewTable("b",
		NewIntColumn("id", []int64{10, 11, 12}),
		NewIntColumn("a_id", []int64{1, 1, 2}),
	))
	d.MustAddTable(MustNewTable("c",
		NewIntColumn("id", []int64{100, 101, 102, 103}),
		NewIntColumn("b_id", []int64{10, 10, 11, 12}),
	))
	q := Query{
		Tables: []TableRef{{Table: "a", Alias: "a"}, {Table: "b", Alias: "b"}, {Table: "c", Alias: "c"}},
		Joins: []JoinPred{
			{LeftAlias: "b", LeftCol: "a_id", RightAlias: "a", RightCol: "id"},
			{LeftAlias: "c", LeftCol: "b_id", RightAlias: "b", RightCol: "id"},
		},
	}
	// Rows: c100-b10-a1, c101-b10-a1, c102-b11-a1, c103-b12-a2 -> 4.
	if got := count(t, d, q); got != 4 {
		t.Errorf("chain count = %d, want 4", got)
	}
	// Filter a to id=1: drops c103 -> 3.
	q.Preds = []Predicate{{Alias: "a", Col: "id", Op: OpEq, Val: 1}}
	if got := count(t, d, q); got != 3 {
		t.Errorf("filtered chain count = %d, want 3", got)
	}
}
