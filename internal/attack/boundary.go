package attack

import (
	"context"
	"fmt"
	"math/rand"

	"deepsketch/internal/db"
	"deepsketch/internal/metrics"
)

// BoundaryHunterConfig parameterizes a BoundaryHunter.
type BoundaryHunterConfig struct {
	// Seed makes the hunt deterministic (it breaks score ties).
	Seed int64
	// Base is the query template; the hunter owns the value of its
	// predicate PredIndex (which must compare an integer column) and
	// binary-searches it over [Lo, Hi].
	Base      db.Query
	PredIndex int
	Lo, Hi    int64
	// Budget caps the number of probes (estimate + truth pairs); <= 0
	// defaults to 24 — enough to bisect any 64-bit range.
	Budget int
}

// BoundaryHunter is the estimate-guided "mass finding" strategy of the
// adaptive-input attack papers: it binary-searches a predicate range
// toward the threshold value where the model's q-error is maximal. Each
// probe estimates a query, executes it for real (Target.Truth — any
// client can), and recurses into the half of the range whose endpoint
// shows the larger error. Against a model trained on a narrow value
// distribution this walks straight to the decision boundary the training
// data never covered.
type BoundaryHunter struct {
	cfg BoundaryHunterConfig
}

// NewBoundaryHunter returns the strategy; Run may be called repeatedly
// and produces an identical transcript each time.
func NewBoundaryHunter(cfg BoundaryHunterConfig) *BoundaryHunter {
	if cfg.Budget <= 0 {
		cfg.Budget = 24
	}
	return &BoundaryHunter{cfg: cfg}
}

// Name implements Strategy.
func (h *BoundaryHunter) Name() string { return "boundary-hunter" }

// Run implements Strategy.
func (h *BoundaryHunter) Run(ctx context.Context, tgt Target) (*Transcript, error) {
	if err := requireEstimate(tgt, h.Name()); err != nil {
		return nil, err
	}
	if tgt.Truth == nil {
		return nil, fmt.Errorf("attack: boundary-hunter target has no Truth surface")
	}
	if h.cfg.PredIndex < 0 || h.cfg.PredIndex >= len(h.cfg.Base.Preds) {
		return nil, fmt.Errorf("attack: boundary-hunter PredIndex %d outside base predicates 0..%d",
			h.cfg.PredIndex, len(h.cfg.Base.Preds)-1)
	}
	if h.cfg.Lo > h.cfg.Hi {
		return nil, fmt.Errorf("attack: boundary-hunter range [%d, %d] is empty", h.cfg.Lo, h.cfg.Hi)
	}
	tr := &Transcript{Strategy: h.Name(), Seed: h.cfg.Seed}
	rng := rand.New(rand.NewSource(h.cfg.Seed))
	budget := h.cfg.Budget

	probe := func(v int64) (float64, error) {
		q := h.cfg.Base.Clone()
		q.Preds[h.cfg.PredIndex].Val = v
		est, err := tgt.Estimate(ctx, q)
		if err != nil {
			return 0, err
		}
		truth, err := tgt.Truth(q)
		if err != nil {
			return 0, err
		}
		qerr := metrics.QError(est.Cardinality, truth)
		tr.add(Step{
			SQL: sqlOf(q), Signature: q.Signature(),
			Estimate: est.Cardinality, Version: est.Version,
			Actual: truth, QError: qerr,
		})
		budget--
		return qerr, nil
	}

	lo, hi := h.cfg.Lo, h.cfg.Hi
	qlo, err := probe(lo)
	if err != nil {
		return tr, err
	}
	if hi == lo {
		return tr, nil
	}
	qhi, err := probe(hi)
	if err != nil {
		return tr, err
	}
	// Bisect toward the endpoint with the larger observed q-error: the
	// midpoint replaces the weaker endpoint, shrinking the range around
	// the region of maximal model error.
	for budget > 0 && hi-lo > 1 {
		if err := ctx.Err(); err != nil {
			return tr, err
		}
		mid := lo + (hi-lo)/2
		qm, err := probe(mid)
		if err != nil {
			return tr, err
		}
		keepHigh := qhi > qlo
		if qhi == qlo {
			keepHigh = rng.Intn(2) == 1 // deterministic tie-break from the seed
		}
		if keepHigh {
			lo, qlo = mid, qm
		} else {
			hi, qhi = mid, qm
		}
	}
	return tr, nil
}
