// Package attack implements adaptive adversaries against the serving
// stack: strategies that drive an estimator interactively, choosing each
// next action as a function of the estimates that came back.
//
// The threat model follows the adaptive-input analyses of cardinality
// sketches — "Cardinality Sketches under Adaptive Inputs" (Ahmadian &
// Cohen, 2024) and "One Attack to Rule Them All: Finding Many Sparse
// Solutions to Sparse Linear Systems" (Cohen et al.) — transposed to this
// repository's closed drift loop. Every channel the loop exposes is an
// attack surface:
//
//   - Estimates themselves leak the model (boundary-hunting: binary-search
//     a predicate range toward the query region where the model is most
//     wrong — the papers' "mass finding").
//   - The logged-actuals ingest path steers the drift windows AND the
//     WAL-derived refresh workload (poisoning: report inflated actuals so
//     the loop retrains on garbage and promotes a degraded model).
//   - Estimate.Version tags leak the canary hash split (probing: find the
//     canary arm, then concentrate load on it to skew the comparative
//     gate's sample).
//
// Strategies are deterministic from a seed and report a Transcript —
// every query, the estimate that came back, and the achieved q-error
// trajectory — so tests can make exact assertions about what an adversary
// achieved. The package exists for the repository's own stress suite: the
// headline E2E drives a poisoner against the full serving stack and
// asserts the pinned-benchmark rail (internal/drift) stops the promotion
// the adversary engineered.
package attack

import (
	"context"
	"fmt"
	"math"

	"deepsketch/internal/db"
	"deepsketch/internal/estimator"
	"deepsketch/internal/wal"
)

// Target is the adversary's view of a deployment: exactly the surfaces a
// real client sees, nothing more. Strategies never touch registries,
// monitors or WALs directly — everything flows through these three
// functions, so the same strategy runs against a library-level stack or a
// live daemon.
type Target struct {
	// Estimate serves one query, exactly like GET /estimate: the returned
	// Estimate carries the Version tag the router answered with. Required.
	Estimate func(ctx context.Context, q db.Query) (estimator.Estimate, error)
	// PostActual reports an observed actual for a query, mirroring
	// POST /api/sketches/{id}/actuals: the deployment applies admission
	// control and returns the decision. Nil for targets without an ingest
	// path (only the poisoner needs it).
	PostActual func(ctx context.Context, q db.Query, actual float64, client string) (wal.Decision, error)
	// Truth executes a query exactly — the adversary running its own
	// queries for real, which any database client can. Nil when a strategy
	// does not grade its own probes (only the boundary-hunter needs it).
	Truth func(q db.Query) (float64, error)
}

// Step is one probe in a strategy transcript.
type Step struct {
	// SQL and Signature identify the query probed.
	SQL       string `json:"sql"`
	Signature string `json:"signature"`
	// Estimate and Version are what the target answered.
	Estimate float64 `json:"estimate"`
	Version  int     `json:"version"`
	// Actual is the true cardinality when the strategy obtained one
	// (boundary-hunter), or the value it reported (poisoner).
	Actual float64 `json:"actual,omitempty"`
	// Decision is the admission verdict for posted actuals ("" otherwise).
	Decision string `json:"decision,omitempty"`
	// QError is the q-error this step achieved (or, for the poisoner, the
	// apparent q-error it injected into the target's windows).
	QError float64 `json:"q_error,omitempty"`
}

// Transcript is a strategy's full interaction record: deterministic from
// the strategy's seed, it is both the test assertion surface and the
// artifact a CI stress job uploads on failure.
type Transcript struct {
	Strategy string `json:"strategy"`
	Seed     int64  `json:"seed"`
	Steps    []Step `json:"steps"`
	// MaxQ is the worst (largest) q-error achieved across steps.
	MaxQ float64 `json:"max_q"`
	// Admitted/Sampled/Capped count the poisoner's admission outcomes.
	Admitted int `json:"admitted,omitempty"`
	Sampled  int `json:"sampled,omitempty"`
	Capped   int `json:"capped,omitempty"`
	// Detected and TargetArm report the canary-prober's split discovery:
	// whether two serving versions were observed, and the arm (version) it
	// concentrated on.
	Detected  bool `json:"detected,omitempty"`
	TargetArm int  `json:"target_arm,omitempty"`
}

// add appends a step and folds its q-error into the trajectory maximum.
func (t *Transcript) add(s Step) {
	t.Steps = append(t.Steps, s)
	if !math.IsNaN(s.QError) && !math.IsInf(s.QError, 0) && s.QError > t.MaxQ {
		t.MaxQ = s.QError
	}
}

// Strategy is one adaptive adversary: Run drives the target until its
// budget is spent and returns the transcript. Implementations are
// deterministic from their configured seed.
type Strategy interface {
	Name() string
	Run(ctx context.Context, tgt Target) (*Transcript, error)
}

// sqlOf renders a query for the transcript; strategies probe queries they
// constructed themselves, so rendering cannot fail.
func sqlOf(q db.Query) string { return q.SQL(nil) }

// requireEstimate validates the one surface every strategy needs.
func requireEstimate(tgt Target, strategy string) error {
	if tgt.Estimate == nil {
		return fmt.Errorf("attack: %s target has no Estimate surface", strategy)
	}
	return nil
}
