package attack

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deepsketch/internal/core"
	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
	"deepsketch/internal/drift"
	"deepsketch/internal/estimator"
	"deepsketch/internal/lifecycle"
	"deepsketch/internal/mscn"
	"deepsketch/internal/serve"
	"deepsketch/internal/sqlparse"
	"deepsketch/internal/wal"
	"deepsketch/internal/workload"
)

// The headline stress test: an adaptive poisoner drives the full truthless
// serving stack — the daemon's -drift -drift-truth=false wiring, where
// logged actuals are the ONLY ground truth and the refresh workload comes
// from the WAL — and the pinned-benchmark rail is what stands between the
// adversary and a promoted garbage model. The rail-on run must abort the
// poisoned refresh with the serving version untouched; the rail-off
// control run with the same seed must let the same attack promote, proving
// the rail has teeth rather than the attack being toothless.

// e2eFixture is the expensive shared state: dataset, trained base sketch,
// clean pinned workload, attack pool. Built once; both runs and the
// transcript artifact reuse it.
type e2eFixture struct {
	d       *db.DB
	base    *core.Sketch
	pinned  []workload.LabeledQuery
	pool    []db.Query
	legit   []db.Query
	maxCard float64
	err     error
}

var (
	e2eOnce sync.Once
	e2eFix  e2eFixture
)

func fixture(t *testing.T) *e2eFixture {
	t.Helper()
	e2eOnce.Do(func() {
		f := &e2eFix
		f.d = datagen.IMDb(datagen.IMDbConfig{Seed: 93, Titles: 900, Keywords: 50, Companies: 25, Persons: 150})
		f.maxCard = serve.MaxCardinality(f.d)

		// The base model trains on the SAME broad distribution it will
		// serve: no organic drift anywhere. Whatever the drift loop does
		// during the attack, the adversary caused it.
		gen, err := workload.NewGenerator(f.d, workload.GenConfig{
			Seed: 11, Count: 400, MaxJoins: 2, MaxPreds: 2, Dedup: true,
		})
		if err != nil {
			f.err = err
			return
		}
		broad, err := workload.Label(f.d, gen.Generate(), 2, nil)
		if err != nil {
			f.err = err
			return
		}
		f.base, f.err = core.BuildWithWorkload(f.d, core.Config{
			Name: "movies", SampleSize: 48, MaxJoins: 2, MaxPreds: 2, Seed: 5, Workers: 2,
			Model: mscn.Config{HiddenUnits: 16, Epochs: 8, BatchSize: 32, Seed: 5},
		}, broad, nil)
		if f.err != nil {
			return
		}

		// The pinned benchmark: a held-out clean labeled set from the same
		// distribution, frozen before any attack traffic exists.
		pinGen, err := workload.NewGenerator(f.d, workload.GenConfig{
			Seed: 21, Count: 120, MaxJoins: 2, MaxPreds: 2, Dedup: true,
		})
		if err != nil {
			f.err = err
			return
		}
		f.pinned, f.err = workload.Label(f.d, pinGen.Generate(), 2, nil)
		if f.err != nil {
			return
		}

		// The adversary's probe pool and the honest clients' query set.
		atkGen, err := workload.NewGenerator(f.d, workload.GenConfig{
			Seed: 31, Count: 80, MaxJoins: 2, MaxPreds: 2, Dedup: true,
		})
		if err != nil {
			f.err = err
			return
		}
		f.pool = atkGen.Generate()
		legitGen, err := workload.NewGenerator(f.d, workload.GenConfig{
			Seed: 41, Count: 60, MaxJoins: 2, MaxPreds: 2, Dedup: true,
		})
		if err != nil {
			f.err = err
			return
		}
		f.legit = legitGen.Generate()
	})
	if e2eFix.err != nil {
		t.Fatal(e2eFix.err)
	}
	return &e2eFix
}

// e2eStack is one full truthless serving deployment, mirroring the daemon:
// versioned registry under a version-keyed cache, drift observation, an
// observation WAL as the monitor's journal, admission-controlled actuals
// ingest, and a synchronous controller whose refresh workload is derived
// from the WAL's recent actuals.
type e2eStack struct {
	fix   *e2eFixture
	reg   *lifecycle.Registry
	mon   *drift.Monitor
	ctrl  *drift.Controller
	walog *wal.Log
	adm   *wal.Admitter
	cache *serve.Cache

	evMu   sync.Mutex
	events []drift.Event
}

// testJournal mirrors the daemon's walJournal adapter.
type testJournal struct {
	d   *db.DB
	log *wal.Log
}

func (j *testJournal) Pending(name string, version int, q db.Query, estimate float64) {
	_ = j.log.Append(wal.Record{
		Kind: wal.KindObservation, Name: name, Version: version,
		Signature: q.Signature(), SQL: q.SQL(j.d), Estimate: estimate,
	})
}

func (j *testJournal) Resolved(name string, version int, q db.Query, estimate, actual float64) {
	_ = j.log.Append(wal.Record{
		Kind: wal.KindActual, Name: name, Version: version,
		Signature: q.Signature(), SQL: q.SQL(j.d), Estimate: estimate, Actual: actual,
	})
}

func newStack(t *testing.T, fix *e2eFixture, pinned *drift.PinnedBenchmark) *e2eStack {
	t.Helper()
	s := &e2eStack{fix: fix, reg: lifecycle.New()}
	if _, err := s.reg.Publish("movies", fix.base); err != nil {
		t.Fatal(err)
	}
	var err error
	s.walog, err = wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.walog.Close() })
	// Truthless monitor: nil source parks every sampled estimate pending
	// until a client reports the actual — the daemon's -drift-truth=false.
	s.mon = drift.NewMonitor(drift.Config{
		SampleEvery: 1, Window: 256, MinSamples: 40, MaxMedianQ: 3,
		Cooldown: time.Hour, QueueSize: 8192,
		Journal: &testJournal{d: fix.d, log: s.walog},
	}, nil)
	s.adm = wal.NewAdmitter(wal.AdmitConfig{PerClientPerMin: 1000})
	s.ctrl = drift.NewController(s.reg, s.mon, drift.ControllerConfig{
		CanaryFraction: 0.5, PromoteAfter: 8, MaxQRatio: 1.5,
		Epochs: 30, Workers: 2, Synchronous: true,
		Pinned: pinned, PinnedMaxRegress: 1.25,
		Workload: func(ctx context.Context, name string) ([]workload.LabeledQuery, error) {
			recs := s.walog.RecentActuals(name, 256)
			out := make([]workload.LabeledQuery, 0, len(recs))
			for _, r := range recs {
				res, err := sqlparse.Parse(fix.d, r.SQL)
				if err != nil {
					continue
				}
				out = append(out, workload.LabeledQuery{Query: res.Query, Card: int64(r.Actual)})
			}
			if len(out) == 0 {
				return nil, fmt.Errorf("no WAL-derived delta workload for %s", name)
			}
			return out, nil
		},
		OnEvent: func(ev drift.Event) {
			s.evMu.Lock()
			s.events = append(s.events, ev)
			s.evMu.Unlock()
			if ev.Kind == "error" {
				t.Errorf("controller error event: %v", ev.Err)
			}
		},
	})
	s.cache = serve.NewCache(
		drift.Observe(serve.Clamp(s.reg.Router(), fix.maxCard), s.mon), 4096).
		KeyFunc(s.reg.Router().CacheKey)
	return s
}

// target exposes the stack through the adversary's three surfaces,
// mirroring the daemon's GET /estimate and POST .../actuals handlers.
func (s *e2eStack) target() Target {
	return Target{
		Estimate: func(ctx context.Context, q db.Query) (estimator.Estimate, error) {
			return s.cache.Estimate(ctx, q)
		},
		PostActual: func(ctx context.Context, q db.Query, actual float64, client string) (wal.Decision, error) {
			dec := s.adm.Admit(client, time.Now())
			if dec != wal.Admitted {
				return dec, nil
			}
			s.mon.Drain(ctx)
			sig := q.Signature()
			ver, est, _, _ := s.mon.ResolveActual("movies", sig, actual)
			err := s.walog.Append(wal.Record{
				Kind: wal.KindActual, Name: "movies", Version: ver,
				Signature: sig, SQL: q.SQL(s.fix.d),
				Estimate: est, Actual: actual, Client: client,
			})
			return dec, err
		},
	}
}

func (s *e2eStack) eventKinds() []string {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	kinds := make([]string, len(s.events))
	for i, ev := range s.events {
		kinds[i] = ev.Kind
	}
	return kinds
}

// saveTranscript writes the attack transcript as a CI artifact when
// DEEPSKETCH_ATTACK_TRANSCRIPT names a directory — the stress job uploads
// it on failure so a regression ships with the exact adversary trace.
func saveTranscript(t *testing.T, tr *Transcript, name string) {
	t.Helper()
	dir := os.Getenv("DEEPSKETCH_ATTACK_TRANSCRIPT")
	if dir == "" {
		return
	}
	blob, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name+".json"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

// runPoisoning drives the seeded poisoner against a stack under concurrent
// honest load and returns the transcript plus the honest failure count.
func runPoisoning(t *testing.T, s *e2eStack) (*Transcript, int64) {
	t.Helper()
	ctx := context.Background()
	tgt := s.target()

	var failures atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.cache.Estimate(ctx, s.fix.legit[i%len(s.fix.legit)]); err != nil {
					failures.Add(1)
					t.Error(err)
					return
				}
			}
		}(g)
	}

	p := NewPoisoner(PoisonerConfig{
		Seed: 17, Queries: s.fix.pool, Inflate: 64, Budget: 3 * len(s.fix.pool), Client: "mallory",
	})
	tr, err := p.Run(ctx, tgt)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	s.mon.Drain(ctx)
	s.ctrl.Tick()
	return tr, failures.Load()
}

// TestAdaptivePoisoningBlockedEndToEnd is the acceptance test for the
// pinned-benchmark rail: with the rail on, an adaptive poisoner that fully
// controls the feedback channel trips the drift trigger and corrupts the
// WAL-derived refresh workload, but the poisoned candidate regresses on
// the frozen clean benchmark and is rejected before any canary starts —
// the serving version never changes and honest traffic never fails.
func TestAdaptivePoisoningBlockedEndToEnd(t *testing.T) {
	fix := fixture(t)
	pbDir := t.TempDir()
	pbPath := filepath.Join(pbDir, "movies.workload")
	if err := drift.WritePinnedBenchmarkFile(pbPath, fix.pinned); err != nil {
		t.Fatal(err)
	}
	pb, err := drift.LoadPinnedBenchmarkFile(fix.d, pbPath)
	if err != nil {
		t.Fatal(err)
	}
	s := newStack(t, fix, pb)

	tr, failures := runPoisoning(t, s)
	saveTranscript(t, tr, "poisoning-rail-on")

	if failures != 0 {
		t.Fatalf("%d honest estimates failed during the attack", failures)
	}
	if tr.Admitted < 40 {
		t.Fatalf("poisoner landed only %d admitted posts — the attack never materialized (capped %d)", tr.Admitted, tr.Capped)
	}

	// The attack DID trip the loop: a refresh started. The rail stopped it.
	kinds := s.eventKinds()
	wantPrefix := []string{"refresh_started", "pinned_rejected"}
	if len(kinds) != 2 || kinds[0] != wantPrefix[0] || kinds[1] != wantPrefix[1] {
		t.Fatalf("controller events = %v, want exactly %v", kinds, wantPrefix)
	}
	s.evMu.Lock()
	rejected := s.events[1]
	s.evMu.Unlock()
	if rejected.Version != 1 {
		t.Errorf("pinned_rejected names version %d as staying live, want 1", rejected.Version)
	}
	if rejected.Pinned == nil || rejected.Pinned.Pass {
		t.Fatalf("pinned_rejected event carries verdict %+v, want a failing judgment", rejected.Pinned)
	}
	if rejected.Reason.Kind != "pinned_regress" {
		t.Errorf("rejection reason %q, want pinned_regress", rejected.Reason.Kind)
	}
	t.Logf("rail verdict: candidate pinned median %.2f vs live %.2f (tolerance %.2fx), p95 %.2f vs %.2f",
		rejected.Pinned.Candidate.Median, rejected.Pinned.Live.Median, rejected.Pinned.MaxRegress,
		rejected.Pinned.Candidate.P95, rejected.Pinned.Live.P95)

	// No canary ever started; the base version serves untouched.
	if _, active := s.reg.Canary("movies"); active {
		t.Fatal("a canary is active after the rail rejected the candidate")
	}
	live, ver, err := s.reg.Live("movies")
	if err != nil || ver != 1 || live != fix.base {
		t.Fatalf("live = v%d (%v), want the untouched base v1", ver, err)
	}
	if cy := s.ctrl.Cycle("movies"); cy.State != drift.StateIdle || cy.Pinned == nil || cy.Pinned.Pass {
		t.Fatalf("cycle status %+v, want idle with the failing rail verdict exposed", cy)
	}

	// Honest clients still get the base model's answers, version-tagged 1.
	ctx := context.Background()
	for _, q := range fix.legit[:20] {
		est, err := s.cache.Estimate(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if est.Version != 1 {
			t.Fatalf("post-attack estimate served by v%d, want the untouched v1", est.Version)
		}
	}
}

// TestAdaptivePoisoningPromotesWithoutRail is the control run: the
// identical seeded attack against the identical stack minus the rail ends
// in a promotion — the live-window comparative gate grades the candidate
// against windows the adversary populated, so it waves the garbage model
// through. The promoted model measurably regresses on the clean pinned
// set, which is exactly the judgment the rail-on run made in time.
func TestAdaptivePoisoningPromotesWithoutRail(t *testing.T) {
	fix := fixture(t)
	s := newStack(t, fix, nil) // rail off

	tr, failures := runPoisoning(t, s)
	saveTranscript(t, tr, "poisoning-rail-off")

	if failures != 0 {
		t.Fatalf("%d honest estimates failed during the attack", failures)
	}
	kinds := s.eventKinds()
	if len(kinds) < 3 || kinds[0] != "refresh_started" || kinds[1] != "canary_started" || kinds[len(kinds)-1] != "promoted" {
		t.Fatalf("controller events = %v, want refresh_started, canary_started, …, promoted — without the rail the attack must succeed", kinds)
	}
	promoted, ver, err := s.reg.Live("movies")
	if err != nil || ver != 2 {
		t.Fatalf("live = v%d (%v), want the poison-trained v2 promoted", ver, err)
	}

	// Teeth: judged on the clean held-out benchmark the promotion was a
	// regression — the rail-on run rejected precisely this candidate.
	pb := drift.NewPinnedBenchmark(fix.pinned)
	res, err := pb.Judge(context.Background(), fix.base, promoted, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Fatalf("promoted model does not regress on the pinned set (candidate median %.2f vs live %.2f) — the control attack is toothless",
			res.Candidate.Median, res.Live.Median)
	}
	t.Logf("rail-off promotion regressed pinned median %.2f → %.2f (p95 %.2f → %.2f) over %d held-out queries",
		res.Live.Median, res.Candidate.Median, res.Live.P95, res.Candidate.P95, res.Size)
}
