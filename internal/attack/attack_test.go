package attack

import (
	"context"
	"encoding/json"
	"math"
	"testing"
	"time"

	"deepsketch/internal/db"
	"deepsketch/internal/estimator"
	"deepsketch/internal/router"
	"deepsketch/internal/wal"
)

// probeQuery is the canonical single-table probe with a tunable predicate.
func probeQuery(i int64) db.Query {
	return db.Query{
		Tables: []db.TableRef{{Table: "title", Alias: "t"}},
		Preds:  []db.Predicate{{Alias: "t", Col: "production_year", Op: db.OpGt, Val: i}},
	}
}

// pool returns n distinct probe queries. The predicate values stride by a
// prime: FNV-1a is not avalanche-complete, so signatures differing only in
// a trailing digit fall into long same-arm runs under the canary split —
// sequential values would put the whole pool in one arm.
func pool(n int) []db.Query {
	qs := make([]db.Query, n)
	for i := range qs {
		qs[i] = probeQuery(int64(1900 + i*1237))
	}
	return qs
}

// transcriptJSON canonicalizes a transcript for equality assertions.
func transcriptJSON(t *testing.T, tr *Transcript) string {
	t.Helper()
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// runTwice runs a freshly built strategy against freshly built targets and
// asserts byte-identical transcripts — the determinism contract.
func runTwice(t *testing.T, build func() (Strategy, Target)) *Transcript {
	t.Helper()
	var first *Transcript
	var firstJSON string
	for run := 0; run < 2; run++ {
		s, tgt := build()
		tr, err := s.Run(context.Background(), tgt)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if run == 0 {
			first, firstJSON = tr, transcriptJSON(t, tr)
			continue
		}
		if got := transcriptJSON(t, tr); got != firstJSON {
			t.Fatalf("transcripts differ between identical runs:\n  run 0: %s\n  run 1: %s", firstJSON, got)
		}
	}
	return first
}

// TestBoundaryHunterFindsErrorCliff sets up a model that is exact below a
// hidden threshold and 1000× off above it; the hunter must bisect to the
// cliff without exhausting its budget on a linear scan.
func TestBoundaryHunterFindsErrorCliff(t *testing.T) {
	const cliff = 1973
	truth := func(q db.Query) (float64, error) {
		return float64(2100 - q.Preds[0].Val), nil // shrinking range count
	}
	model := func(ctx context.Context, q db.Query) (estimator.Estimate, error) {
		c, _ := truth(q)
		if q.Preds[0].Val > cliff {
			c *= 1000 // the region the training data never covered
		}
		return estimator.Estimate{Cardinality: c, Version: 1}, nil
	}

	tr := runTwice(t, func() (Strategy, Target) {
		h := NewBoundaryHunter(BoundaryHunterConfig{
			Seed: 7, Base: probeQuery(0), Lo: 1900, Hi: 2050, Budget: 16,
		})
		return h, Target{Estimate: model, Truth: truth}
	})

	if len(tr.Steps) > 16 {
		t.Fatalf("hunter spent %d probes, budget 16", len(tr.Steps))
	}
	if tr.MaxQ < 1000 {
		t.Fatalf("hunter peaked at q-error %.1f, want ≥ 1000 (the cliff region)", tr.MaxQ)
	}
	if len(tr.Steps) < 6 {
		t.Fatalf("hunter stopped after %d probes, want a real bisection trail", len(tr.Steps))
	}
	// Bisection concentrates in the high-error region: after probing both
	// endpoints, every remaining probe must land past the cliff (the first
	// midpoint of [1900, 2050] is already above it and the bracket never
	// leaves).
	inCliff := 0
	for _, s := range tr.Steps {
		if s.QError >= 1000 {
			inCliff++
		}
	}
	if inCliff < len(tr.Steps)-1 {
		t.Fatalf("only %d/%d probes hit the cliff region — a bisecting hunter wastes at most the low endpoint", inCliff, len(tr.Steps))
	}
	if tr.Strategy != "boundary-hunter" || tr.Seed != 7 {
		t.Fatalf("transcript header = %q seed %d", tr.Strategy, tr.Seed)
	}
}

func TestBoundaryHunterValidation(t *testing.T) {
	ctx := context.Background()
	est := func(context.Context, db.Query) (estimator.Estimate, error) { return estimator.Estimate{}, nil }
	truth := func(db.Query) (float64, error) { return 1, nil }
	cases := []struct {
		name string
		cfg  BoundaryHunterConfig
		tgt  Target
	}{
		{"no estimate surface", BoundaryHunterConfig{Base: probeQuery(0), Hi: 1}, Target{Truth: truth}},
		{"no truth surface", BoundaryHunterConfig{Base: probeQuery(0), Hi: 1}, Target{Estimate: est}},
		{"bad pred index", BoundaryHunterConfig{Base: probeQuery(0), PredIndex: 3, Hi: 1}, Target{Estimate: est, Truth: truth}},
		{"empty range", BoundaryHunterConfig{Base: probeQuery(0), Lo: 10, Hi: 5}, Target{Estimate: est, Truth: truth}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewBoundaryHunter(tc.cfg).Run(ctx, tc.tgt); err == nil {
				t.Error("Run succeeded, want error")
			}
		})
	}
}

// TestPoisonerTracksEstimatesWithinBudget drives the poisoner against a
// fake deployment with a real Admitter and asserts the adaptive property:
// every posted actual is exactly the current estimate × Inflate, and the
// admission counters in the transcript match the admitter's own.
func TestPoisonerTracksEstimatesWithinBudget(t *testing.T) {
	qs := pool(10)
	build := func() (Strategy, Target) {
		adm := wal.NewAdmitter(wal.AdmitConfig{PerClientPerMin: 12, SampleEvery: 2})
		now := time.Unix(0, 0) // deterministic admission clock
		var served float64 = 100
		tgt := Target{
			Estimate: func(ctx context.Context, q db.Query) (estimator.Estimate, error) {
				served += 1 // drifting model answer: poison must track it
				return estimator.Estimate{Cardinality: served, Version: 1}, nil
			},
			PostActual: func(ctx context.Context, q db.Query, actual float64, client string) (wal.Decision, error) {
				return adm.Admit(client, now), nil
			},
		}
		p := NewPoisoner(PoisonerConfig{Seed: 3, Queries: qs, Inflate: 64, Budget: 40, Client: "mallory"})
		return p, tgt
	}
	tr := runTwice(t, build)

	if len(tr.Steps) != 40 {
		t.Fatalf("poisoner took %d steps, budget 40", len(tr.Steps))
	}
	for i, s := range tr.Steps {
		if want := math.Max(1, s.Estimate*64); s.Actual != want {
			t.Fatalf("step %d posted %.1f for estimate %.1f, want estimate × 64 = %.1f", i, s.Actual, s.Estimate, want)
		}
		if s.QError < 63.9 || s.QError > 64.1 {
			t.Fatalf("step %d injected apparent q-error %.2f, want ≈ Inflate", i, s.QError)
		}
	}
	// SampleEvery 2 admits every 2nd attempt until the 12-token bucket
	// drains, then caps: 40 attempts → 20 pass sampling → 12 admitted,
	// 8 capped, 20 sampled.
	if tr.Admitted != 12 || tr.Sampled != 20 || tr.Capped != 8 {
		t.Fatalf("admission counts admitted=%d sampled=%d capped=%d, want 12/20/8", tr.Admitted, tr.Sampled, tr.Capped)
	}
	if tr.MaxQ < 63.9 {
		t.Fatalf("MaxQ = %.2f, want the injected Inflate", tr.MaxQ)
	}
}

func TestPoisonerStopOnCap(t *testing.T) {
	qs := pool(4)
	adm := wal.NewAdmitter(wal.AdmitConfig{PerClientPerMin: 3})
	now := time.Unix(0, 0)
	tgt := Target{
		Estimate: func(context.Context, db.Query) (estimator.Estimate, error) {
			return estimator.Estimate{Cardinality: 10, Version: 1}, nil
		},
		PostActual: func(_ context.Context, _ db.Query, _ float64, client string) (wal.Decision, error) {
			return adm.Admit(client, now), nil
		},
	}
	p := NewPoisoner(PoisonerConfig{Seed: 1, Queries: qs, Budget: 100, StopOnCap: true})
	tr, err := p.Run(context.Background(), tgt)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Capped != 1 || len(tr.Steps) != 4 {
		t.Fatalf("StopOnCap run: %d steps, %d capped — want to stop at the first cap (4 steps)", len(tr.Steps), tr.Capped)
	}
}

// TestCanaryProberFindsSplitArm serves version 2 for exactly the queries
// the real router's hash split sends to a 30% canary; the prober must
// detect the split, pick arm 2, and spend its remaining budget there.
func TestCanaryProberFindsSplitArm(t *testing.T) {
	qs := pool(40)
	const fraction = 0.3
	versionOf := func(q db.Query) int {
		if router.CanarySplit(q.Signature(), fraction) {
			return 2
		}
		return 1
	}
	build := func() (Strategy, Target) {
		tgt := Target{
			Estimate: func(_ context.Context, q db.Query) (estimator.Estimate, error) {
				return estimator.Estimate{Cardinality: 50, Version: versionOf(q)}, nil
			},
		}
		return NewCanaryProber(CanaryProberConfig{Seed: 9, Queries: qs, Budget: 100}), tgt
	}
	tr := runTwice(t, build)

	if !tr.Detected || tr.TargetArm != 2 {
		t.Fatalf("prober detected=%v arm=%d, want the v2 canary arm", tr.Detected, tr.TargetArm)
	}
	if len(tr.Steps) != 100 {
		t.Fatalf("prober took %d steps, budget 100", len(tr.Steps))
	}
	// Phase 1 is one probe per pool query; every phase-2 step must land on
	// the canary arm.
	for i, s := range tr.Steps[len(qs):] {
		if s.Version != 2 {
			t.Fatalf("phase-2 step %d hit version %d — concentration failed", i, s.Version)
		}
	}
}

// Without a canary there is no split to find: the prober reports
// undetected and does not burn phase-2 budget.
func TestCanaryProberNoSplit(t *testing.T) {
	qs := pool(12)
	tgt := Target{
		Estimate: func(context.Context, db.Query) (estimator.Estimate, error) {
			return estimator.Estimate{Cardinality: 50, Version: 1}, nil
		},
	}
	tr, err := NewCanaryProber(CanaryProberConfig{Seed: 2, Queries: qs, Budget: 60}).Run(context.Background(), tgt)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Detected || tr.TargetArm != 1 {
		t.Fatalf("detected=%v arm=%d on a split-free target, want undetected arm 1", tr.Detected, tr.TargetArm)
	}
	if len(tr.Steps) != len(qs) {
		t.Fatalf("prober took %d steps with no split, want phase 1 only (%d)", len(tr.Steps), len(qs))
	}
}
