package attack

import (
	"context"
	"fmt"
	"math/rand"

	"deepsketch/internal/db"
)

// CanaryProberConfig parameterizes a CanaryProber.
type CanaryProberConfig struct {
	// Seed orders the probe pool deterministically.
	Seed int64
	// Queries is the probe pool. The canary hash split is a pure function
	// of the query signature, so a fixed pool partitions stably into arms.
	Queries []db.Query
	// Probe is the number of phase-1 probes used to map the split; <= 0
	// defaults to len(Queries).
	Probe int
	// Budget caps total estimates across both phases; <= 0 defaults to
	// 3 × len(Queries).
	Budget int
}

// CanaryProber exploits the Version tag on every estimate: during a canary
// the hash split deterministically routes a fraction of signatures to the
// candidate, and the tag says which arm answered. Phase 1 probes the pool
// once and partitions it by observed version; phase 2 concentrates the
// remaining budget on the highest-version arm (the candidate), skewing
// which queries populate the canary's comparative-gate window. A stable
// split means the prober's phase-1 map keeps paying off for the whole
// canary — which is exactly what the router's stability tests pin down.
type CanaryProber struct {
	cfg CanaryProberConfig
}

// NewCanaryProber returns the strategy; Run produces an identical
// transcript for identical target behavior.
func NewCanaryProber(cfg CanaryProberConfig) *CanaryProber {
	if cfg.Probe <= 0 || cfg.Probe > len(cfg.Queries) {
		cfg.Probe = len(cfg.Queries)
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 3 * len(cfg.Queries)
	}
	return &CanaryProber{cfg: cfg}
}

// Name implements Strategy.
func (c *CanaryProber) Name() string { return "canary-prober" }

// Run implements Strategy.
func (c *CanaryProber) Run(ctx context.Context, tgt Target) (*Transcript, error) {
	if err := requireEstimate(tgt, c.Name()); err != nil {
		return nil, err
	}
	if len(c.cfg.Queries) == 0 {
		return nil, fmt.Errorf("attack: canary-prober has an empty query pool")
	}
	tr := &Transcript{Strategy: c.Name(), Seed: c.cfg.Seed}
	rng := rand.New(rand.NewSource(c.cfg.Seed))
	order := rng.Perm(len(c.cfg.Queries))
	budget := c.cfg.Budget

	probe := func(q db.Query) (int, error) {
		est, err := tgt.Estimate(ctx, q)
		if err != nil {
			return 0, err
		}
		tr.add(Step{
			SQL: sqlOf(q), Signature: q.Signature(),
			Estimate: est.Cardinality, Version: est.Version,
		})
		budget--
		return est.Version, nil
	}

	// Phase 1: map the split — one probe per pool query, recording the
	// version each signature routes to.
	arms := map[int][]db.Query{}
	for i := 0; i < c.cfg.Probe && budget > 0; i++ {
		if err := ctx.Err(); err != nil {
			return tr, err
		}
		q := c.cfg.Queries[order[i]]
		v, err := probe(q)
		if err != nil {
			return tr, err
		}
		arms[v] = append(arms[v], q)
	}
	for v := range arms {
		if v > tr.TargetArm {
			tr.TargetArm = v
		}
	}
	tr.Detected = len(arms) > 1

	// Phase 2: concentrate the remaining budget on the candidate arm. If
	// no split was observed there is nothing to concentrate on.
	target := arms[tr.TargetArm]
	if !tr.Detected || len(target) == 0 {
		return tr, nil
	}
	for i := 0; budget > 0; i++ {
		if err := ctx.Err(); err != nil {
			return tr, err
		}
		if _, err := probe(target[i%len(target)]); err != nil {
			return tr, err
		}
	}
	return tr, nil
}
