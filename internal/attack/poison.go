package attack

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"deepsketch/internal/db"
	"deepsketch/internal/metrics"
	"deepsketch/internal/wal"
)

// PoisonerConfig parameterizes a Poisoner.
type PoisonerConfig struct {
	// Seed orders the query pool deterministically.
	Seed int64
	// Queries is the pool the poisoner reports fabricated actuals for. It
	// cycles through a seeded shuffle of the pool until Budget is spent.
	Queries []db.Query
	// Inflate scales the target's own estimate into the fabricated actual
	// (estimate × Inflate, clamped to ≥ 1); <= 0 defaults to 64. Values in
	// (0, 1) deflate instead — both directions drag the drift windows.
	Inflate float64
	// Budget caps the number of posted actuals; <= 0 defaults to
	// 4 × len(Queries).
	Budget int
	// Client is the identity presented to admission control ("" defaults
	// to "adversary").
	Client string
	// StopOnCap ends the run at the first Capped decision instead of
	// burning the rest of the budget against a closed gate.
	StopOnCap bool
}

// Poisoner is the feedback-channel attack: it estimates a query, then
// reports estimate × Inflate as the "observed" actual through the same
// ingest path an honest client uses. The fabricated actual is adaptive —
// it tracks whatever the model currently answers, so every admitted post
// lands in the drift window with an apparent q-error of exactly Inflate,
// dragging the median toward the refresh trigger. Because the WAL journals
// admitted actuals and the refresh workload is derived from them, the same
// posts also corrupt the labels the next model trains on: the loop is the
// attack surface.
type Poisoner struct {
	cfg PoisonerConfig
}

// NewPoisoner returns the strategy; Run produces an identical transcript
// for identical target behavior.
func NewPoisoner(cfg PoisonerConfig) *Poisoner {
	if cfg.Inflate <= 0 {
		cfg.Inflate = 64
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 4 * len(cfg.Queries)
	}
	if cfg.Client == "" {
		cfg.Client = "adversary"
	}
	return &Poisoner{cfg: cfg}
}

// Name implements Strategy.
func (p *Poisoner) Name() string { return "actuals-poisoner" }

// Run implements Strategy.
func (p *Poisoner) Run(ctx context.Context, tgt Target) (*Transcript, error) {
	if err := requireEstimate(tgt, p.Name()); err != nil {
		return nil, err
	}
	if tgt.PostActual == nil {
		return nil, fmt.Errorf("attack: actuals-poisoner target has no PostActual surface")
	}
	if len(p.cfg.Queries) == 0 {
		return nil, fmt.Errorf("attack: actuals-poisoner has an empty query pool")
	}
	tr := &Transcript{Strategy: p.Name(), Seed: p.cfg.Seed}
	rng := rand.New(rand.NewSource(p.cfg.Seed))
	order := rng.Perm(len(p.cfg.Queries))

	for i := 0; i < p.cfg.Budget; i++ {
		if err := ctx.Err(); err != nil {
			return tr, err
		}
		q := p.cfg.Queries[order[i%len(order)]]
		est, err := tgt.Estimate(ctx, q)
		if err != nil {
			return tr, err
		}
		poisoned := est.Cardinality * p.cfg.Inflate
		if !(poisoned >= 1) || math.IsInf(poisoned, 0) { // catches NaN too
			poisoned = 1
		}
		dec, err := tgt.PostActual(ctx, q, poisoned, p.cfg.Client)
		if err != nil {
			return tr, err
		}
		step := Step{
			SQL: sqlOf(q), Signature: q.Signature(),
			Estimate: est.Cardinality, Version: est.Version,
			Actual: poisoned, Decision: dec.String(),
			QError: metrics.QError(est.Cardinality, poisoned),
		}
		tr.add(step)
		switch dec {
		case wal.Admitted:
			tr.Admitted++
		case wal.Sampled:
			tr.Sampled++
		case wal.Capped:
			tr.Capped++
			if p.cfg.StopOnCap {
				return tr, nil
			}
		}
	}
	return tr, nil
}
