package estimator

import (
	"context"
	"math"
	"testing"

	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
	"deepsketch/internal/metrics"
	"deepsketch/internal/workload"
)

func estDB(t *testing.T) *db.DB {
	t.Helper()
	return datagen.IMDb(datagen.IMDbConfig{Seed: 61, Titles: 2000, Keywords: 80, Companies: 40, Persons: 300})
}

func TestBuildColStatsUniform(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i % 10) // uniform over 0..9
	}
	c := db.NewIntColumn("u", vals)
	st := BuildColStats(c, 4, 10)
	if st.NDistinct != 10 {
		t.Errorf("NDistinct = %v", st.NDistinct)
	}
	if len(st.MCVs) != 4 {
		t.Errorf("MCVs = %d", len(st.MCVs))
	}
	// Every value has frequency 0.1; MCV and non-MCV estimates should agree.
	if got := st.EqSelectivity(0); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("MCV eq sel = %v", got)
	}
	if got := st.EqSelectivity(9); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("non-MCV eq sel = %v", got)
	}
	// Unseen value: small.
	if got := st.EqSelectivity(99); got > 0.1 {
		t.Errorf("unseen eq sel = %v", got)
	}
}

func TestColStatsRangeSelectivity(t *testing.T) {
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = int64(i % 100) // uniform 0..99
	}
	st := BuildColStats(db.NewIntColumn("u", vals), 0, 100)
	cases := []struct {
		v    int64
		want float64
	}{
		{50, 0.50}, {10, 0.10}, {90, 0.90}, {0, 0}, {1000, 1},
	}
	for _, c := range cases {
		if got := st.LtSelectivity(c.v); math.Abs(got-c.want) > 0.03 {
			t.Errorf("P(<%d) = %v, want ~%v", c.v, got, c.want)
		}
	}
	if got := st.GtSelectivity(50); math.Abs(got-0.49) > 0.03 {
		t.Errorf("P(>50) = %v, want ~0.49", got)
	}
	// Complementarity: P(<v) + P(>v) <= 1 + eps.
	for v := int64(0); v < 100; v += 7 {
		if s := st.LtSelectivity(v) + st.GtSelectivity(v); s > 1.01 {
			t.Errorf("P(<%d)+P(>%d) = %v > 1", v, v, s)
		}
	}
}

func TestColStatsSkewedMCV(t *testing.T) {
	// 90% value 1, the rest uniform 2..11.
	vals := make([]int64, 1000)
	for i := range vals {
		if i < 900 {
			vals[i] = 1
		} else {
			vals[i] = int64(2 + i%10)
		}
	}
	st := BuildColStats(db.NewIntColumn("s", vals), 1, 10)
	if got := st.EqSelectivity(1); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("MCV sel = %v, want 0.9", got)
	}
	if got := st.EqSelectivity(5); math.Abs(got-0.01) > 1e-9 {
		t.Errorf("tail sel = %v, want 0.01", got)
	}
}

func TestBuildColStatsEmpty(t *testing.T) {
	st := BuildColStats(db.NewIntColumn("e", nil), 10, 10)
	if st.EqSelectivity(1) != 0 || st.LtSelectivity(1) != 0 || st.GtSelectivity(1) != 0 {
		t.Error("empty column should have zero selectivities")
	}
}

func TestTruthMatchesCount(t *testing.T) {
	d := estDB(t)
	tr := &Truth{DB: d}
	if tr.Name() == "" {
		t.Error("name empty")
	}
	q := db.Query{
		Tables: []db.TableRef{{Table: "title", Alias: "t"}},
		Preds:  []db.Predicate{{Alias: "t", Col: "production_year", Op: db.OpGt, Val: 2000}},
	}
	want, _ := d.Count(q)
	got, err := tr.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != float64(want) {
		t.Errorf("truth = %v, want %d", got, want)
	}
}

func TestPostgresSingleTableAccuracy(t *testing.T) {
	// On a single-column predicate the histogram/MCV machinery should be
	// quite accurate — errors come from correlations, not marginals.
	d := estDB(t)
	p := NewPostgres(d, PostgresOptions{})
	queries := []db.Query{
		{Tables: []db.TableRef{{Table: "title", Alias: "t"}},
			Preds: []db.Predicate{{Alias: "t", Col: "production_year", Op: db.OpGt, Val: 1990}}},
		{Tables: []db.TableRef{{Table: "title", Alias: "t"}},
			Preds: []db.Predicate{{Alias: "t", Col: "kind_id", Op: db.OpEq, Val: 1}}},
		{Tables: []db.TableRef{{Table: "movie_info", Alias: "mi"}},
			Preds: []db.Predicate{{Alias: "mi", Col: "info_type_id", Op: db.OpEq, Val: 2}}},
	}
	for _, q := range queries {
		truth, _ := d.Count(q)
		est, err := p.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		if qe := metrics.QError(est, float64(truth)); qe > 1.5 {
			t.Errorf("single-column estimate off by %v: %s (est %v true %d)", qe, q.SQL(nil), est, truth)
		}
	}
}

func TestPostgresPKFKJoinExact(t *testing.T) {
	// A bare PK/FK join has cardinality = |fact|; System-R with exact
	// distinct counts gets this right.
	d := estDB(t)
	p := NewPostgres(d, PostgresOptions{})
	q := db.Query{
		Tables: []db.TableRef{{Table: "title", Alias: "t"}, {Table: "movie_keyword", Alias: "mk"}},
		Joins:  []db.JoinPred{{LeftAlias: "mk", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"}},
	}
	truth, _ := d.Count(q)
	est, err := p.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if qe := metrics.QError(est, float64(truth)); qe > 1.3 {
		t.Errorf("bare FK join estimate off by %v (est %v true %d)", qe, est, truth)
	}
}

func TestPostgresAtLeastOne(t *testing.T) {
	d := estDB(t)
	p := NewPostgres(d, PostgresOptions{})
	q := db.Query{
		Tables: []db.TableRef{{Table: "title", Alias: "t"}},
		Preds: []db.Predicate{
			{Alias: "t", Col: "production_year", Op: db.OpLt, Val: -5},
			{Alias: "t", Col: "kind_id", Op: db.OpEq, Val: 99},
		},
	}
	est, err := p.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if est < 1 {
		t.Errorf("estimates must be clamped to >= 1, got %v", est)
	}
}

func TestPostgresInvalidQuery(t *testing.T) {
	d := estDB(t)
	p := NewPostgres(d, PostgresOptions{})
	if _, err := p.Cardinality(db.Query{}); err == nil {
		t.Error("invalid query should error")
	}
}

func TestHyperSingleTableAccuracy(t *testing.T) {
	d := estDB(t)
	h, err := NewHyper(d, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := db.Query{
		Tables: []db.TableRef{{Table: "title", Alias: "t"}},
		Preds: []db.Predicate{
			{Alias: "t", Col: "production_year", Op: db.OpGt, Val: 1980},
			{Alias: "t", Col: "kind_id", Op: db.OpEq, Val: 1},
		},
	}
	truth, _ := d.Count(q)
	est, err := h.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	// Sampling captures the year↔kind correlation, unlike independence.
	if qe := metrics.QError(est, float64(truth)); qe > 2.0 {
		t.Errorf("sampled estimate off by %v (est %v true %d)", qe, est, truth)
	}
}

func TestHyperZeroTupleFallback(t *testing.T) {
	d := estDB(t)
	h, err := NewHyper(d, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	// A very selective predicate: person_id equality on cast_info. With 100
	// sampled tuples and hundreds of persons, specific unpopular ids are
	// likely absent from the sample.
	ci := d.Table("cast_info").Column("person_id")
	var rare int64 = -1
	freq := map[int64]int{}
	for _, v := range ci.Vals {
		freq[v]++
	}
	for v, n := range freq {
		if n == 1 {
			rare = v
			break
		}
	}
	if rare == -1 {
		t.Skip("no rare person in tiny dataset")
	}
	q := db.Query{
		Tables: []db.TableRef{{Table: "cast_info", Alias: "ci"}},
		Preds:  []db.Predicate{{Alias: "ci", Col: "person_id", Op: db.OpEq, Val: rare}},
	}
	zt, err := h.ZeroTuple(q)
	if err != nil {
		t.Fatal(err)
	}
	if !zt {
		t.Skip("rare person happened to be sampled")
	}
	est, err := h.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	wantSel := 1.0 / 100.0 // "assume that one sample tuple qualifies"
	want := wantSel * float64(d.Table("cast_info").NumRows())
	if math.Abs(est-want)/want > 1e-9 {
		t.Errorf("0-tuple estimate = %v, want educated guess %v", est, want)
	}
}

func TestHyperJoinEstimate(t *testing.T) {
	d := estDB(t)
	h, _ := NewHyper(d, 500, 11)
	q := db.Query{
		Tables: []db.TableRef{{Table: "title", Alias: "t"}, {Table: "cast_info", Alias: "ci"}},
		Joins:  []db.JoinPred{{LeftAlias: "ci", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"}},
	}
	truth, _ := d.Count(q)
	est, err := h.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if qe := metrics.QError(est, float64(truth)); qe > 1.5 {
		t.Errorf("join estimate off by %v (est %v true %d)", qe, est, truth)
	}
}

func TestEstimatorsOnWorkloadProduceFiniteEstimates(t *testing.T) {
	d := estDB(t)
	p := NewPostgres(d, PostgresOptions{})
	h, _ := NewHyper(d, 200, 1)
	g, _ := workload.NewGenerator(d, workload.GenConfig{Seed: 77, Count: 100, MaxJoins: 3, MaxPreds: 3})
	for _, q := range g.Generate() {
		for _, est := range []Estimator{p, h} {
			res, err := est.Estimate(context.Background(), q)
			if err != nil {
				t.Fatalf("%s failed on %s: %v", est.Name(), q.SQL(nil), err)
			}
			v := res.Cardinality
			if v < 1 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s produced %v on %s", est.Name(), v, q.SQL(nil))
			}
			if res.Source != est.Name() {
				t.Fatalf("%s reported source %q", est.Name(), res.Source)
			}
		}
	}
}

// TestCorrelationBlindness documents the failure mode Table 1 exposes: on a
// correlated pair of predicates (era-affine keyword + matching year range),
// the independence assumption underestimates badly, while sampling-based
// estimation holds up — exactly the gap Deep Sketches close further.
func TestCorrelationBlindness(t *testing.T) {
	d := estDB(t)
	p := NewPostgres(d, PostgresOptions{})

	kw := d.Table("keyword").Column("keyword")
	code, ok := kw.Lookup("artificial-intelligence")
	if !ok {
		t.Fatal("named keyword missing")
	}
	q := db.Query{
		Tables: []db.TableRef{
			{Table: "title", Alias: "t"},
			{Table: "movie_keyword", Alias: "mk"},
			{Table: "keyword", Alias: "k"},
		},
		Joins: []db.JoinPred{
			{LeftAlias: "mk", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"},
			{LeftAlias: "mk", LeftCol: "keyword_id", RightAlias: "k", RightCol: "id"},
		},
		Preds: []db.Predicate{
			{Alias: "k", Col: "keyword", Op: db.OpEq, Val: code},
			{Alias: "t", Col: "production_year", Op: db.OpGt, Val: 1995},
		},
	}
	truth, _ := d.Count(q)
	if truth == 0 {
		t.Skip("keyword unused at this scale")
	}
	pgEst, err := p.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	pgQ := metrics.QError(pgEst, float64(truth))
	if pgQ < 1.5 {
		t.Logf("note: postgres q-error only %v on correlated query (est %v true %d)", pgQ, pgEst, truth)
	}
}
