// Package estimator defines the estimation contract of the system — the
// paper's "consumes a SQL query and returns a cardinality estimate" — and
// provides the traditional cardinality estimators the demo compares Deep
// Sketches against: a PostgreSQL-style estimator built on per-column
// statistics (MCVs, equi-depth histograms, n_distinct) with the
// attribute-independence assumption, and a HyPer-style estimator that
// evaluates base-table predicates on materialized samples and falls back to
// an educated guess in 0-tuple situations. Both combine base-table
// selectivities across PK/FK joins with the classic System-R formula.
//
// Every estimation backend — sketches, the sketch router, the traditional
// estimators, and the serving middleware stacked on top of them — implements
// the one Estimator interface, so harnesses, servers and callers never care
// which backend answers.
package estimator

import (
	"context"
	"fmt"
	"time"

	"deepsketch/internal/db"
)

// Estimate is one cardinality estimation result.
type Estimate struct {
	// Cardinality is the estimated COUNT(*) result size (≥ 1 by
	// convention, so q-errors stay finite).
	Cardinality float64 `json:"cardinality"`
	// Source names the backend that produced the estimate ("Deep Sketch",
	// "PostgreSQL", a sketch name behind a router, ...).
	Source string `json:"source"`
	// Latency is the wall time the estimation took. Serving middleware
	// (cache, coalescer) reports the caller-observed latency, which for a
	// cache hit is the lookup time, not the original computation time.
	Latency time.Duration `json:"latency_ns"`
	// CacheHit is true when the estimate was served from an estimate cache
	// rather than computed.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Version is the registry version of the sketch that answered, when the
	// answering backend is versioned (a sketch behind a lifecycle registry's
	// router, including a canary split). 0 means unversioned: a bare sketch,
	// a traditional estimator, or a fallback backend.
	Version int `json:"version,omitempty"`
	// Engine tags the inference precision that computed the estimate
	// ("f64", "f32", "int8") when the backend is an MSCN sketch; estimate
	// caches preserve it, so a hit reports the precision of the original
	// computation. Empty for non-model backends.
	Engine string `json:"engine,omitempty"`
}

// Estimator is the single estimation entry point: anything that can
// estimate the result size of a COUNT(*) query. Implementations must be
// safe for concurrent use after construction.
type Estimator interface {
	// Name identifies the estimator in reports ("PostgreSQL", ...).
	Name() string
	// Estimate answers one query, honoring ctx cancellation.
	Estimate(ctx context.Context, q db.Query) (Estimate, error)
	// EstimateBatch answers many queries in one call — backends with a
	// batched inference path (the MSCN) amortize per-call overhead here.
	// Results are positional and match Estimate query-by-query.
	EstimateBatch(ctx context.Context, qs []db.Query) ([]Estimate, error)
}

// Run times one estimation function and wraps its result, checking ctx
// first. It is the shared implementation behind the leaf estimators.
func Run(ctx context.Context, source string, q db.Query, fn func(db.Query) (float64, error)) (Estimate, error) {
	if err := ctx.Err(); err != nil {
		return Estimate{}, err
	}
	start := time.Now()
	card, err := fn(q)
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Cardinality: card, Source: source, Latency: time.Since(start)}, nil
}

// SequentialBatch implements EstimateBatch by calling e.Estimate per query,
// checking ctx between queries so a cancellation mid-batch stops promptly.
// It is the default batch path for backends without batched inference.
func SequentialBatch(ctx context.Context, e Estimator, qs []db.Query) ([]Estimate, error) {
	out := make([]Estimate, len(qs))
	for i, q := range qs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		est, err := e.Estimate(ctx, q)
		if err != nil {
			return nil, fmt.Errorf("estimator: %s failed on query %d: %w", e.Name(), i, err)
		}
		out[i] = est
	}
	return out, nil
}

// Func adapts a plain estimation function to the Estimator interface — the
// escape hatch for ad-hoc backends in comparison harnesses (the role the
// removed System struct used to play).
type Func struct {
	// EstimatorName is reported by Name.
	EstimatorName string
	// Fn computes the cardinality of one query.
	Fn func(q db.Query) (float64, error)
}

// Name implements Estimator.
func (f Func) Name() string { return f.EstimatorName }

// Estimate implements Estimator.
func (f Func) Estimate(ctx context.Context, q db.Query) (Estimate, error) {
	return Run(ctx, f.EstimatorName, q, f.Fn)
}

// EstimateBatch implements Estimator sequentially.
func (f Func) EstimateBatch(ctx context.Context, qs []db.Query) ([]Estimate, error) {
	return SequentialBatch(ctx, f, qs)
}

// Truth is the ground-truth oracle: it executes the query exactly. It plays
// HyPer's "true cardinality" role from the demo ("we issue the query against
// HyPer to compute its true cardinality").
type Truth struct {
	DB *db.DB
}

// Name implements Estimator.
func (t *Truth) Name() string { return "True cardinality" }

// Estimate implements Estimator by exact execution.
func (t *Truth) Estimate(ctx context.Context, q db.Query) (Estimate, error) {
	return Run(ctx, t.Name(), q, t.Cardinality)
}

// EstimateBatch implements Estimator by sequential exact execution.
func (t *Truth) EstimateBatch(ctx context.Context, qs []db.Query) ([]Estimate, error) {
	return SequentialBatch(ctx, t, qs)
}

// Cardinality executes the query exactly and returns the true count.
func (t *Truth) Cardinality(q db.Query) (float64, error) {
	c, err := t.DB.Count(q)
	if err != nil {
		return 0, err
	}
	return float64(c), nil
}

// joinSelectivity computes the System-R selectivity of one equi-join using
// distinct counts: 1/max(nd(left), nd(right)). For the PK/FK joins of the
// supported schemas this equals 1/|PK table| and is exact under referential
// integrity and independence.
func joinSelectivity(d *db.DB, q db.Query, j db.JoinPred, nd func(table, col string) float64) (float64, error) {
	lt, ok := q.RefByAlias(j.LeftAlias)
	if !ok {
		return 0, fmt.Errorf("estimator: join alias %s not in query", j.LeftAlias)
	}
	rt, ok := q.RefByAlias(j.RightAlias)
	if !ok {
		return 0, fmt.Errorf("estimator: join alias %s not in query", j.RightAlias)
	}
	ndl := nd(lt.Table, j.LeftCol)
	ndr := nd(rt.Table, j.RightCol)
	m := ndl
	if ndr > m {
		m = ndr
	}
	if m < 1 {
		m = 1
	}
	return 1 / m, nil
}

func clampCard(c float64) float64 {
	if c < 1 {
		return 1
	}
	return c
}
