// Package estimator provides the traditional cardinality estimators the
// demo compares Deep Sketches against: a PostgreSQL-style estimator built on
// per-column statistics (MCVs, equi-depth histograms, n_distinct) with the
// attribute-independence assumption, and a HyPer-style estimator that
// evaluates base-table predicates on materialized samples and falls back to
// an educated guess in 0-tuple situations. Both combine base-table
// selectivities across PK/FK joins with the classic System-R formula.
package estimator

import (
	"fmt"

	"deepsketch/internal/db"
)

// Estimator is anything that can estimate the result size of a COUNT(*)
// query. Implementations must be safe for concurrent use after construction.
type Estimator interface {
	// Name identifies the estimator in reports ("PostgreSQL", ...).
	Name() string
	// Estimate returns the estimated cardinality (≥ 1 by convention, so
	// q-errors stay finite).
	Estimate(q db.Query) (float64, error)
}

// Truth is the ground-truth oracle: it executes the query exactly. It plays
// HyPer's "true cardinality" role from the demo ("we issue the query against
// HyPer to compute its true cardinality").
type Truth struct {
	DB *db.DB
}

// Name implements Estimator.
func (t *Truth) Name() string { return "True cardinality" }

// Estimate implements Estimator by exact execution.
func (t *Truth) Estimate(q db.Query) (float64, error) {
	c, err := t.DB.Count(q)
	if err != nil {
		return 0, err
	}
	return float64(c), nil
}

// joinSelectivity computes the System-R selectivity of one equi-join using
// distinct counts: 1/max(nd(left), nd(right)). For the PK/FK joins of the
// supported schemas this equals 1/|PK table| and is exact under referential
// integrity and independence.
func joinSelectivity(d *db.DB, q db.Query, j db.JoinPred, nd func(table, col string) float64) (float64, error) {
	lt, ok := q.RefByAlias(j.LeftAlias)
	if !ok {
		return 0, fmt.Errorf("estimator: join alias %s not in query", j.LeftAlias)
	}
	rt, ok := q.RefByAlias(j.RightAlias)
	if !ok {
		return 0, fmt.Errorf("estimator: join alias %s not in query", j.RightAlias)
	}
	ndl := nd(lt.Table, j.LeftCol)
	ndr := nd(rt.Table, j.RightCol)
	m := ndl
	if ndr > m {
		m = ndr
	}
	if m < 1 {
		m = 1
	}
	return 1 / m, nil
}

func clampCard(c float64) float64 {
	if c < 1 {
		return 1
	}
	return c
}
