package estimator

import (
	"context"
	"fmt"

	"deepsketch/internal/db"
	"deepsketch/internal/sample"
)

// Hyper is a HyPer-style sampling-based estimator: base-table selectivities
// come from evaluating the predicate conjunction on materialized samples,
// which makes it robust to intra-table correlations — until no sampled
// tuple qualifies. In such 0-tuple situations it falls back to the
// "educated" guess the MSCN paper documents for its sampling baseline: it
// assumes that one sample tuple qualifies (selectivity 1/n). The guess
// cannot distinguish a barely-missed predicate from an almost-impossible
// one, which is exactly what the paper identifies as the cause of
// sampling's large estimation errors. Join selectivities use distinct
// counts like System-R, which is exact for PK/FK joins under referential
// integrity but assumes fanout is independent of the predicates — the
// cross-table correlation Deep Sketches learn.
type Hyper struct {
	d       *db.DB
	samples *sample.Set
	nd      map[string]map[string]float64 // exact distinct counts for join columns
}

// NewHyper draws its own samples of sampleSize tuples per table.
func NewHyper(d *db.DB, sampleSize int, seed int64) (*Hyper, error) {
	set, err := sample.New(d, nil, sampleSize, seed)
	if err != nil {
		return nil, err
	}
	return NewHyperWithSamples(d, set)
}

// NewHyperWithSamples uses an existing sample set (e.g. the sketch's own
// samples, for an apples-to-apples 0-tuple comparison).
func NewHyperWithSamples(d *db.DB, set *sample.Set) (*Hyper, error) {
	h := &Hyper{d: d, samples: set, nd: make(map[string]map[string]float64)}
	// Precompute distinct counts of join (PK/FK) columns only.
	addCol := func(table, col string) {
		if h.nd[table] == nil {
			h.nd[table] = map[string]float64{}
		}
		if _, done := h.nd[table][col]; done {
			return
		}
		c := d.Table(table).Column(col)
		seen := make(map[int64]struct{}, 1024)
		for _, v := range c.Vals {
			seen[v] = struct{}{}
		}
		h.nd[table][col] = float64(len(seen))
	}
	for _, fk := range d.FKs {
		addCol(fk.Table, fk.Column)
		addCol(fk.RefTable, fk.RefColumn)
	}
	return h, nil
}

// Name implements Estimator.
func (h *Hyper) Name() string { return "HyPer" }

// Estimate implements Estimator.
func (h *Hyper) Estimate(ctx context.Context, q db.Query) (Estimate, error) {
	return Run(ctx, h.Name(), q, h.Cardinality)
}

// EstimateBatch implements Estimator sequentially.
func (h *Hyper) EstimateBatch(ctx context.Context, qs []db.Query) ([]Estimate, error) {
	return SequentialBatch(ctx, h, qs)
}

// ZeroTuple reports whether the query hits a 0-tuple situation: some table
// with predicates has no qualifying sample tuples. These are the queries the
// paper's §2 robustness claim is about.
func (h *Hyper) ZeroTuple(q db.Query) (bool, error) {
	for _, tr := range q.Tables {
		preds := q.PredsFor(tr.Alias)
		if len(preds) == 0 {
			continue
		}
		ts := h.samples.For(tr.Table)
		if ts == nil {
			return false, fmt.Errorf("estimator: no sample for table %s", tr.Table)
		}
		bm, err := ts.QualifyingBitmap(preds)
		if err != nil {
			return false, err
		}
		if bm.Count() == 0 {
			return true, nil
		}
	}
	return false, nil
}

// Cardinality estimates one query from the samples.
func (h *Hyper) Cardinality(q db.Query) (float64, error) {
	if err := h.d.ValidateQuery(q); err != nil {
		return 0, err
	}
	card := 1.0
	for _, tr := range q.Tables {
		rows := float64(h.d.Table(tr.Table).NumRows())
		sel, err := h.tableSelectivity(tr, q.PredsFor(tr.Alias))
		if err != nil {
			return 0, err
		}
		card *= rows * sel
	}
	for _, j := range q.Joins {
		sel, err := joinSelectivity(h.d, q, j, func(table, col string) float64 {
			if m, ok := h.nd[table]; ok {
				if v, ok := m[col]; ok {
					return v
				}
			}
			// Join on a non-FK column: fall back to the table size.
			return float64(h.d.Table(table).NumRows())
		})
		if err != nil {
			return 0, err
		}
		card *= sel
	}
	return clampCard(card), nil
}

// tableSelectivity evaluates the predicate conjunction on the table's
// sample, falling back to per-predicate independence in 0-tuple situations.
func (h *Hyper) tableSelectivity(tr db.TableRef, preds []db.Predicate) (float64, error) {
	if len(preds) == 0 {
		return 1, nil
	}
	ts := h.samples.For(tr.Table)
	if ts == nil {
		return 0, fmt.Errorf("estimator: no sample for table %s", tr.Table)
	}
	bm, err := ts.QualifyingBitmap(preds)
	if err != nil {
		return 0, err
	}
	if n := bm.Count(); n > 0 {
		return float64(n) / float64(ts.Rows), nil
	}
	// 0-tuple situation: educated guess — assume one sample tuple
	// qualifies.
	return 1.0 / float64(ts.Rows), nil
}
