package estimator

import (
	"testing"

	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
)

func benchSetup(b *testing.B) (*db.DB, db.Query) {
	b.Helper()
	d := datagen.IMDb(datagen.IMDbConfig{Seed: 7, Titles: 8000})
	q := db.Query{
		Tables: []db.TableRef{
			{Table: "title", Alias: "t"},
			{Table: "movie_info", Alias: "mi"},
			{Table: "movie_keyword", Alias: "mk"},
		},
		Joins: []db.JoinPred{
			{LeftAlias: "mi", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"},
			{LeftAlias: "mk", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"},
		},
		Preds: []db.Predicate{
			{Alias: "t", Col: "production_year", Op: db.OpGt, Val: 1995},
			{Alias: "mi", Col: "info_type_id", Op: db.OpEq, Val: 5},
		},
	}
	return d, q
}

func BenchmarkPostgresBuild(b *testing.B) {
	d, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewPostgres(d, PostgresOptions{})
	}
}

func BenchmarkPostgresEstimate(b *testing.B) {
	d, q := benchSetup(b)
	p := NewPostgres(d, PostgresOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Cardinality(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHyperEstimate(b *testing.B) {
	d, q := benchSetup(b)
	h, err := NewHyper(d, 1000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Cardinality(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTruthExact(b *testing.B) {
	d, q := benchSetup(b)
	tr := &Truth{DB: d}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Cardinality(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildColStats(b *testing.B) {
	d, _ := benchSetup(b)
	col := d.Table("movie_keyword").Column("keyword_id")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildColStats(col, 100, 100)
	}
}
