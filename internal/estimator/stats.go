package estimator

import (
	"sort"

	"deepsketch/internal/db"
)

// ColStats are PostgreSQL-style per-column statistics: row count, number of
// distinct values, the most common values with their frequencies, and an
// equi-depth histogram over the remaining values.
type ColStats struct {
	Rows      int
	NDistinct float64
	// MCVs maps the most common values to their frequency (fraction of
	// rows); MCVFrac is their combined fraction.
	MCVs    map[int64]float64
	MCVFrac float64
	// Bounds are equi-depth histogram bucket boundaries over non-MCV values
	// (len = buckets+1); nil when every value is an MCV.
	Bounds []int64
}

// BuildColStats computes statistics for one column with the given MCV list
// size and histogram bucket count (PostgreSQL defaults are 100/100).
func BuildColStats(c *db.Column, mcvK, buckets int) ColStats {
	st := ColStats{Rows: len(c.Vals), MCVs: map[int64]float64{}}
	if st.Rows == 0 {
		return st
	}
	freq := make(map[int64]int)
	for _, v := range c.Vals {
		freq[v]++
	}
	st.NDistinct = float64(len(freq))

	// MCVs: top-k by frequency (ties broken by value for determinism).
	type vf struct {
		v int64
		n int
	}
	all := make([]vf, 0, len(freq))
	for v, n := range freq {
		all = append(all, vf{v, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].v < all[j].v
	})
	k := mcvK
	if k > len(all) {
		k = len(all)
	}
	isMCV := make(map[int64]bool, k)
	for _, e := range all[:k] {
		f := float64(e.n) / float64(st.Rows)
		st.MCVs[e.v] = f
		st.MCVFrac += f
		isMCV[e.v] = true
	}

	// Equi-depth histogram over the non-MCV values.
	rest := make([]int64, 0, st.Rows)
	for _, v := range c.Vals {
		if !isMCV[v] {
			rest = append(rest, v)
		}
	}
	if len(rest) > 0 && buckets > 0 {
		sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
		if buckets > len(rest) {
			buckets = len(rest)
		}
		st.Bounds = make([]int64, buckets+1)
		for b := 0; b <= buckets; b++ {
			idx := b * (len(rest) - 1) / buckets
			st.Bounds[b] = rest[idx]
		}
	}
	return st
}

// EqSelectivity estimates P(col = v): the MCV frequency if v is an MCV,
// otherwise the non-MCV mass spread uniformly over the remaining distinct
// values (PostgreSQL's var_eq_const logic).
func (st ColStats) EqSelectivity(v int64) float64 {
	if st.Rows == 0 {
		return 0
	}
	if f, ok := st.MCVs[v]; ok {
		return f
	}
	others := st.NDistinct - float64(len(st.MCVs))
	if others < 1 {
		// Statistics claim every value is an MCV; an unseen literal gets the
		// half-tuple floor.
		return 0.5 / float64(st.Rows)
	}
	return (1 - st.MCVFrac) / others
}

// LtSelectivity estimates P(col < v) from MCVs plus histogram
// interpolation (PostgreSQL's scalarltsel).
func (st ColStats) LtSelectivity(v int64) float64 {
	if st.Rows == 0 {
		return 0
	}
	var sel float64
	for mv, f := range st.MCVs {
		if mv < v {
			sel += f
		}
	}
	sel += (1 - st.MCVFrac) * st.histFracBelow(v)
	return clampSel(sel)
}

// GtSelectivity estimates P(col > v).
func (st ColStats) GtSelectivity(v int64) float64 {
	if st.Rows == 0 {
		return 0
	}
	var sel float64
	for mv, f := range st.MCVs {
		if mv > v {
			sel += f
		}
	}
	// P(hist > v) = 1 − P(hist < v) − P(hist = v); the point mass inside the
	// histogram is negligible at PostgreSQL's resolution and is ignored,
	// like scalargtsel does.
	sel += (1 - st.MCVFrac) * (1 - st.histFracBelow(v))
	return clampSel(sel)
}

// histFracBelow returns the estimated fraction of histogram-covered rows
// with value < v, with linear interpolation inside the containing bucket.
func (st ColStats) histFracBelow(v int64) float64 {
	if len(st.Bounds) < 2 {
		return 0
	}
	b := st.Bounds
	if v <= b[0] {
		return 0
	}
	if v > b[len(b)-1] {
		return 1
	}
	nb := len(b) - 1
	// Find bucket i with b[i] <= v <= b[i+1] (first match).
	i := sort.Search(nb, func(i int) bool { return b[i+1] >= v })
	lo, hi := b[i], b[i+1]
	var within float64
	if hi > lo {
		within = float64(v-lo) / float64(hi-lo)
	}
	return (float64(i) + within) / float64(nb)
}

func clampSel(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}
