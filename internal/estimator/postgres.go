package estimator

import (
	"context"
	"fmt"

	"deepsketch/internal/db"
)

// Postgres is a PostgreSQL-10-style cardinality estimator: per-column MCV
// lists and equi-depth histograms, selectivities multiplied under the
// attribute-independence assumption, and System-R join selectivities from
// distinct counts. It reproduces the estimation formulas PostgreSQL applies
// to this query class — and therefore also their blindness to correlations,
// which is what Table 1 exposes.
type Postgres struct {
	d     *db.DB
	stats map[string]map[string]ColStats // table -> column -> stats
}

// PostgresOptions tune the statistics target.
type PostgresOptions struct {
	// MCVs and Buckets default to 100/100, PostgreSQL's
	// default_statistics_target.
	MCVs    int
	Buckets int
}

// NewPostgres builds statistics for every column of every table (ANALYZE).
func NewPostgres(d *db.DB, opts PostgresOptions) *Postgres {
	if opts.MCVs <= 0 {
		opts.MCVs = 100
	}
	if opts.Buckets <= 0 {
		opts.Buckets = 100
	}
	p := &Postgres{d: d, stats: make(map[string]map[string]ColStats)}
	for _, name := range d.TableNames() {
		t := d.Table(name)
		cols := make(map[string]ColStats, len(t.Cols))
		for _, c := range t.Cols {
			cols[c.Name] = BuildColStats(c, opts.MCVs, opts.Buckets)
		}
		p.stats[name] = cols
	}
	return p
}

// Name implements Estimator.
func (p *Postgres) Name() string { return "PostgreSQL" }

// Estimate implements Estimator.
func (p *Postgres) Estimate(ctx context.Context, q db.Query) (Estimate, error) {
	return Run(ctx, p.Name(), q, p.Cardinality)
}

// EstimateBatch implements Estimator sequentially — the formula-based
// estimator has no batched inference path to amortize.
func (p *Postgres) EstimateBatch(ctx context.Context, qs []db.Query) ([]Estimate, error) {
	return SequentialBatch(ctx, p, qs)
}

// Cardinality estimates one query: rows = Π|T| · Πsel(pred) · Πsel(join).
func (p *Postgres) Cardinality(q db.Query) (float64, error) {
	if err := p.d.ValidateQuery(q); err != nil {
		return 0, err
	}
	card := 1.0
	for _, tr := range q.Tables {
		card *= float64(p.d.Table(tr.Table).NumRows())
	}
	for _, pred := range q.Preds {
		sel, err := p.predSelectivity(q, pred)
		if err != nil {
			return 0, err
		}
		card *= sel
	}
	for _, j := range q.Joins {
		sel, err := joinSelectivity(p.d, q, j, func(table, col string) float64 {
			return p.stats[table][col].NDistinct
		})
		if err != nil {
			return 0, err
		}
		card *= sel
	}
	return clampCard(card), nil
}

// predSelectivity estimates one predicate from column statistics.
func (p *Postgres) predSelectivity(q db.Query, pred db.Predicate) (float64, error) {
	tr, ok := q.RefByAlias(pred.Alias)
	if !ok {
		return 0, fmt.Errorf("estimator: alias %s not in query", pred.Alias)
	}
	st, ok := p.stats[tr.Table][pred.Col]
	if !ok {
		return 0, fmt.Errorf("estimator: no statistics for %s.%s", tr.Table, pred.Col)
	}
	var sel float64
	switch pred.Op {
	case db.OpEq:
		sel = st.EqSelectivity(pred.Val)
	case db.OpLt:
		sel = st.LtSelectivity(pred.Val)
	case db.OpGt:
		sel = st.GtSelectivity(pred.Val)
	default:
		return 0, fmt.Errorf("estimator: unsupported operator %v", pred.Op)
	}
	// PostgreSQL floors selectivities so plans never see zero rows.
	if st.Rows > 0 {
		floor := 0.5 / float64(st.Rows)
		if sel < floor {
			sel = floor
		}
	}
	return sel, nil
}
