package estimator

import (
	"context"
	"testing"

	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
	"deepsketch/internal/metrics"
)

// TestEstimatorsOnTPCH: both baselines must run on the second schema and be
// reasonably accurate on simple queries (TPC-H is far more uniform than
// IMDb).
func TestEstimatorsOnTPCH(t *testing.T) {
	d := datagen.TPCH(datagen.TPCHConfig{Seed: 11, Orders: 1500})
	p := NewPostgres(d, PostgresOptions{})
	h, err := NewHyper(d, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	queries := []db.Query{
		{
			Tables: []db.TableRef{{Table: "lineitem", Alias: "l"}},
			Preds:  []db.Predicate{{Alias: "l", Col: "quantity", Op: db.OpLt, Val: 25}},
		},
		{
			Tables: []db.TableRef{{Table: "orders", Alias: "o"}, {Table: "lineitem", Alias: "l"}},
			Joins:  []db.JoinPred{{LeftAlias: "l", LeftCol: "order_id", RightAlias: "o", RightCol: "id"}},
			Preds:  []db.Predicate{{Alias: "o", Col: "totalprice_bucket", Op: db.OpGt, Val: 20}},
		},
	}
	for _, q := range queries {
		truth, err := d.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, est := range []Estimator{p, h} {
			res, err := est.Estimate(context.Background(), q)
			if err != nil {
				t.Fatalf("%s: %v", est.Name(), err)
			}
			v := res.Cardinality
			if qe := metrics.QError(v, float64(truth)); qe > 2.5 {
				t.Errorf("%s q-error %v on uniform TPC-H query %s (est %v true %d)",
					est.Name(), qe, q.SQL(nil), v, truth)
			}
		}
	}
}

// TestCorrelatedDatePredicatesBreakIndependence: shipdate follows orderdate
// by construction; conjoining a tight orderdate range with a contradicting
// shipdate range has a tiny true result that independence overestimates.
func TestCorrelatedDatePredicatesBreakIndependence(t *testing.T) {
	d := datagen.TPCH(datagen.TPCHConfig{Seed: 11, Orders: 1500})
	p := NewPostgres(d, PostgresOptions{})
	q := db.Query{
		Tables: []db.TableRef{{Table: "orders", Alias: "o"}, {Table: "lineitem", Alias: "l"}},
		Joins:  []db.JoinPred{{LeftAlias: "l", LeftCol: "order_id", RightAlias: "o", RightCol: "id"}},
		Preds: []db.Predicate{
			{Alias: "o", Col: "orderdate", Op: db.OpGt, Val: 2000}, // late orders
			{Alias: "l", Col: "shipdate", Op: db.OpLt, Val: 1000},  // early shipments: impossible
		},
	}
	truth, err := d.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if truth != 0 {
		t.Fatalf("contradictory ranges should be empty, got %d", truth)
	}
	est, err := p.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	// Independence multiplies two individually-plausible selectivities and
	// predicts far more than one row — the failure mode learned models fix.
	if est < 100 {
		t.Errorf("expected a large independence overestimate, got %v", est)
	}
}

func TestHyperName(t *testing.T) {
	d := datagen.TPCH(datagen.TPCHConfig{Seed: 1, Orders: 200})
	h, err := NewHyper(d, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "HyPer" {
		t.Errorf("name = %q", h.Name())
	}
	p := NewPostgres(d, PostgresOptions{})
	if p.Name() != "PostgreSQL" {
		t.Errorf("name = %q", p.Name())
	}
}

func TestHyperZeroTupleDetectionOnJoinQuery(t *testing.T) {
	d := datagen.TPCH(datagen.TPCHConfig{Seed: 13, Orders: 800})
	h, err := NewHyper(d, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	// No predicates: never a 0-tuple situation.
	q := db.Query{
		Tables: []db.TableRef{{Table: "orders", Alias: "o"}, {Table: "lineitem", Alias: "l"}},
		Joins:  []db.JoinPred{{LeftAlias: "l", LeftCol: "order_id", RightAlias: "o", RightCol: "id"}},
	}
	zt, err := h.ZeroTuple(q)
	if err != nil {
		t.Fatal(err)
	}
	if zt {
		t.Error("predicate-free query flagged as 0-tuple")
	}
	// Impossible predicate: always a 0-tuple situation.
	q.Preds = []db.Predicate{{Alias: "l", Col: "quantity", Op: db.OpGt, Val: 10000}}
	zt, err = h.ZeroTuple(q)
	if err != nil {
		t.Fatal(err)
	}
	if !zt {
		t.Error("impossible predicate not flagged as 0-tuple")
	}
}
