package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	d := wlDB(t)
	g, _ := NewGenerator(d, GenConfig{Seed: 41, Count: 80, MaxJoins: 3, MaxPreds: 3, Dedup: true})
	labeled, err := Label(d, g.Generate(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, labeled); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(d, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(labeled) {
		t.Fatalf("round trip %d -> %d queries", len(labeled), len(back))
	}
	for i := range back {
		if back[i].Card != labeled[i].Card {
			t.Fatalf("line %d card %d != %d", i, back[i].Card, labeled[i].Card)
		}
		if back[i].Query.Signature() != labeled[i].Query.Signature() {
			t.Fatalf("line %d query changed:\n%s\n%s", i,
				labeled[i].Query.Signature(), back[i].Query.Signature())
		}
	}
}

func TestCSVFormatExample(t *testing.T) {
	// The format matches the original artifact's example layout.
	d := wlDB(t)
	qs, _ := JOBLight(d, 1)
	labeled, err := Label(d, qs[:1], 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, labeled); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	if strings.Count(line, "#") != 3 {
		t.Errorf("line should have 3 '#': %s", line)
	}
	if !strings.Contains(line, "title t") {
		t.Errorf("tables field malformed: %s", line)
	}
}

func TestReadCSVSkipsCommentsAndBlanks(t *testing.T) {
	d := wlDB(t)
	in := "-- comment\n\ntitle t##t.kind_id,=,1#42\n"
	out, err := ReadCSV(d, strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Card != 42 {
		t.Fatalf("parsed %+v", out)
	}
	if out[0].Query.Tables[0].Alias != "t" {
		t.Error("alias lost")
	}
}

func TestReadCSVBareTableName(t *testing.T) {
	d := wlDB(t)
	out, err := ReadCSV(d, strings.NewReader("title## #7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Query.Tables[0].Alias != "title" {
		t.Error("bare table should alias to itself")
	}
}

func TestReadCSVErrors(t *testing.T) {
	d := wlDB(t)
	bad := []string{
		"only#three#fields",
		"#j#p#1",                    // empty tables
		"title t##x,=,1#5",          // bad column ref (no dot)
		"title t##t.kind_id,>=,1#5", // bad op
		"title t##t.kind_id,=,xx#5", // bad literal
		"title t##t.kind_id,=#5",    // triple truncated
		"title t#badjoin#t.kind_id,=,1#5",
		"title t##t.kind_id,=,1#notanumber",
		"nope n##n.x,=,1#5",             // schema validation
		"title t,movie_keyword mk## #5", // disconnected
	}
	for _, line := range bad {
		if _, err := ReadCSV(d, strings.NewReader(line+"\n")); err == nil {
			t.Errorf("expected error for %q", line)
		}
	}
}
