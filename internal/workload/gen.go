// Package workload generates and manages query workloads: the uniformly
// distributed training queries of the paper's step 2, the JOB-light
// evaluation workload of Table 1, and the demo's template queries with
// placeholder columns.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
)

// GenConfig controls uniform training-query generation.
type GenConfig struct {
	Seed  int64
	Count int
	// Tables restricts generation to a subset of tables (the sketch's table
	// set); nil means all tables.
	Tables []string
	// MaxJoins caps the number of join predicates per query (tables-1).
	// Default 2 (up to three-way joins), matching "for a small number of
	// tables" interactive sketches; JOB-light needs 4.
	MaxJoins int
	// MaxPreds caps the number of selection predicates per query. Default 3.
	MaxPreds int
	// Dedup drops duplicate queries (same signature). Default true via
	// NewGenConfig; zero value means no dedup.
	Dedup bool
}

// Generator produces uniformly distributed queries over a database schema,
// mirroring the paper's training-data generation: "uniformly choose tables,
// columns, and predicate types; draw literals from database".
type Generator struct {
	d        *db.DB
	cfg      GenConfig
	rng      *rand.Rand
	tables   []string
	inSet    map[string]bool
	aliasOf  map[string]string
	predCols map[string][]db.PredColumn
}

// NewGenerator validates the config and builds a generator. Tables outside
// the schema are rejected; the chosen table set must allow joins (i.e. be
// FK-connected) for multi-table queries to be generated.
func NewGenerator(d *db.DB, cfg GenConfig) (*Generator, error) {
	if cfg.MaxJoins == 0 {
		cfg.MaxJoins = 2
	}
	if cfg.MaxPreds == 0 {
		cfg.MaxPreds = 3
	}
	tables := cfg.Tables
	if tables == nil {
		tables = d.TableNames()
	}
	inSet := make(map[string]bool, len(tables))
	for _, t := range tables {
		if d.Table(t) == nil {
			return nil, fmt.Errorf("workload: unknown table %s", t)
		}
		inSet[t] = true
	}
	g := &Generator{
		d:        d,
		cfg:      cfg,
		rng:      datagen.NewRand(cfg.Seed ^ 0x9e1d),
		tables:   tables,
		inSet:    inSet,
		aliasOf:  make(map[string]string, len(tables)),
		predCols: make(map[string][]db.PredColumn, len(tables)),
	}
	used := map[string]bool{}
	for _, t := range tables {
		a := AliasFor(t)
		for used[a] {
			a += "x"
		}
		used[a] = true
		g.aliasOf[t] = a
		g.predCols[t] = d.PredColumnsFor(t)
	}
	return g, nil
}

// AliasFor derives the conventional short alias for a table name: initials
// of underscore-separated words ("movie_keyword" -> "mk"), or the first
// letter for single words ("title" -> "t").
func AliasFor(table string) string {
	parts := strings.Split(table, "_")
	var b strings.Builder
	for _, p := range parts {
		if len(p) > 0 {
			b.WriteByte(p[0])
		}
	}
	if b.Len() == 0 {
		return table
	}
	return b.String()
}

// Alias returns the generator's alias for a table.
func (g *Generator) Alias(table string) string { return g.aliasOf[table] }

// Generate produces cfg.Count uniformly distributed queries.
func (g *Generator) Generate() []db.Query {
	out := make([]db.Query, 0, g.cfg.Count)
	seen := map[string]bool{}
	attempts := 0
	maxAttempts := g.cfg.Count*20 + 100
	for len(out) < g.cfg.Count && attempts < maxAttempts {
		attempts++
		q := g.One()
		if g.cfg.Dedup {
			sig := q.Signature()
			if seen[sig] {
				continue
			}
			seen[sig] = true
		}
		out = append(out, q)
	}
	return out
}

// One produces a single uniformly distributed query.
func (g *Generator) One() db.Query {
	nTables := 1 + g.rng.Intn(g.cfg.MaxJoins+1)
	refs, joins := g.randomConnectedSubgraph(nTables)
	q := db.Query{Tables: refs, Joins: joins}
	q.Preds = g.randomPredicates(refs)
	return q
}

// randomConnectedSubgraph grows a uniformly random FK-connected table set of
// up to n tables, starting at a uniform table and expanding across uniform
// FK edges (the demo auto-adds join predicates from PK/FK relationships the
// same way).
func (g *Generator) randomConnectedSubgraph(n int) ([]db.TableRef, []db.JoinPred) {
	start := g.tables[g.rng.Intn(len(g.tables))]
	member := map[string]bool{start: true}
	refs := []db.TableRef{{Table: start, Alias: g.aliasOf[start]}}
	var joins []db.JoinPred
	for len(refs) < n {
		// Collect FK edges from the current set to new tables inside the
		// allowed table set.
		type candidate struct {
			fk     db.ForeignKey
			newTbl string
		}
		var cands []candidate
		for _, fk := range g.d.FKs {
			if member[fk.Table] && !member[fk.RefTable] && g.inSet[fk.RefTable] {
				cands = append(cands, candidate{fk: fk, newTbl: fk.RefTable})
			}
			if member[fk.RefTable] && !member[fk.Table] && g.inSet[fk.Table] {
				cands = append(cands, candidate{fk: fk, newTbl: fk.Table})
			}
		}
		if len(cands) == 0 {
			break // no way to grow further
		}
		c := cands[g.rng.Intn(len(cands))]
		member[c.newTbl] = true
		refs = append(refs, db.TableRef{Table: c.newTbl, Alias: g.aliasOf[c.newTbl]})
		joins = append(joins, db.JoinPred{
			LeftAlias: g.aliasOf[c.fk.Table], LeftCol: c.fk.Column,
			RightAlias: g.aliasOf[c.fk.RefTable], RightCol: c.fk.RefColumn,
		})
	}
	return refs, joins
}

// randomPredicates draws a uniform number of selections on distinct
// predicate-eligible columns of the chosen tables, with uniform operator
// choice and literals drawn from the actual column data.
func (g *Generator) randomPredicates(refs []db.TableRef) []db.Predicate {
	type slot struct {
		alias string
		table string
		pc    db.PredColumn
	}
	var slots []slot
	for _, r := range refs {
		for _, pc := range g.predCols[r.Table] {
			slots = append(slots, slot{alias: r.Alias, table: r.Table, pc: pc})
		}
	}
	if len(slots) == 0 {
		return nil
	}
	maxP := g.cfg.MaxPreds
	if maxP > len(slots) {
		maxP = len(slots)
	}
	nPreds := g.rng.Intn(maxP + 1)
	// Partial shuffle to pick nPreds distinct columns.
	for i := 0; i < nPreds; i++ {
		j := i + g.rng.Intn(len(slots)-i)
		slots[i], slots[j] = slots[j], slots[i]
	}
	preds := make([]db.Predicate, 0, nPreds)
	for _, s := range slots[:nPreds] {
		op := s.pc.Ops[g.rng.Intn(len(s.pc.Ops))]
		col := g.d.Table(s.table).Column(s.pc.Column)
		if len(col.Vals) == 0 {
			continue
		}
		lit := col.Vals[g.rng.Intn(len(col.Vals))]
		preds = append(preds, db.Predicate{Alias: s.alias, Col: s.pc.Column, Op: op, Val: lit})
	}
	return preds
}
