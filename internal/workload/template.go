package workload

import (
	"fmt"
	"sort"

	"deepsketch/internal/db"
	"deepsketch/internal/sample"
)

// Template is a query template: a base query plus a placeholder column, as
// in the demo's
//
//	... AND k.keyword='artificial-intelligence' AND t.production_year=?
//
// A placeholder behaves like a group-by over the values present in the
// column sample: the template is instantiated once per drawn value (or
// value range) and each instance is estimated separately.
type Template struct {
	// Base is the query without the placeholder predicate.
	Base db.Query
	// Alias and Col identify the placeholder column.
	Alias string
	Col   string
}

// Grouping selects how placeholder values are drawn from the column sample.
type Grouping int

const (
	// GroupDistinct instantiates one equality query per distinct sample
	// value, ascending.
	GroupDistinct Grouping = iota
	// GroupBuckets instantiates one range query per equal-width bucket
	// between the sample min and max (the demo's "equally sized buckets").
	GroupBuckets
)

// Instance is one instantiation of a template.
type Instance struct {
	Query db.Query
	// Lo and Hi describe the instantiated value (Lo == Hi for equality
	// instances; [Lo, Hi] inclusive for bucket instances).
	Lo, Hi int64
	// Label is the display value for the X axis of the demo's chart.
	Label string
}

// Instantiate expands the template against the sketch's samples. For
// GroupDistinct every distinct sampled value yields an equality instance;
// for GroupBuckets the sampled min/max range is divided into buckets many
// equal-width range instances. buckets is ignored for GroupDistinct.
//
// Values come from the sample, not the full database — this is exactly the
// demo's semantics ("it does not operate on all distinct values of the
// group-by column but instead only on the values present in the column
// sample that comes with the sketch").
func (t Template) Instantiate(s *sample.Set, g Grouping, buckets int) ([]Instance, error) {
	ref, ok := t.Base.RefByAlias(t.Alias)
	if !ok {
		return nil, fmt.Errorf("workload: template alias %s not in query", t.Alias)
	}
	ts := s.For(ref.Table)
	if ts == nil {
		return nil, fmt.Errorf("workload: no sample for table %s", ref.Table)
	}
	switch g {
	case GroupDistinct:
		vals, err := ts.DistinctValues(t.Col)
		if err != nil {
			return nil, err
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		out := make([]Instance, 0, len(vals))
		for _, v := range vals {
			q := t.Base.Clone()
			q.Preds = append(q.Preds, db.Predicate{Alias: t.Alias, Col: t.Col, Op: db.OpEq, Val: v})
			out = append(out, Instance{Query: q, Lo: v, Hi: v, Label: fmt.Sprintf("%d", v)})
		}
		return out, nil
	case GroupBuckets:
		if buckets <= 0 {
			return nil, fmt.Errorf("workload: bucket count must be positive, got %d", buckets)
		}
		lo, hi, ok := ts.MinMax(t.Col)
		if !ok {
			return nil, fmt.Errorf("workload: empty sample for %s.%s", ref.Table, t.Col)
		}
		span := hi - lo + 1
		if int64(buckets) > span {
			buckets = int(span)
		}
		out := make([]Instance, 0, buckets)
		for b := 0; b < buckets; b++ {
			bLo := lo + span*int64(b)/int64(buckets)
			bHi := lo + span*int64(b+1)/int64(buckets) - 1
			q := t.Base.Clone()
			// [bLo, bHi] as strict comparisons: > bLo-1 AND < bHi+1.
			q.Preds = append(q.Preds,
				db.Predicate{Alias: t.Alias, Col: t.Col, Op: db.OpGt, Val: bLo - 1},
				db.Predicate{Alias: t.Alias, Col: t.Col, Op: db.OpLt, Val: bHi + 1})
			out = append(out, Instance{Query: q, Lo: bLo, Hi: bHi, Label: fmt.Sprintf("%d-%d", bLo, bHi)})
		}
		return out, nil
	default:
		return nil, fmt.Errorf("workload: unknown grouping %d", g)
	}
}

// YearTemplate builds the paper's flagship template on the IMDb schema:
//
//	SELECT COUNT(*) FROM title t, movie_keyword mk, keyword k
//	WHERE mk.movie_id=t.id AND mk.keyword_id=k.id
//	AND k.keyword='<keyword>' AND t.production_year=?
func YearTemplate(d *db.DB, keyword string) (Template, error) {
	kwTable := d.Table("keyword")
	if kwTable == nil {
		return Template{}, fmt.Errorf("workload: schema has no keyword table")
	}
	code, ok := kwTable.Column("keyword").Lookup(keyword)
	if !ok {
		return Template{}, fmt.Errorf("workload: unknown keyword %q", keyword)
	}
	base := db.Query{
		Tables: []db.TableRef{
			{Table: "title", Alias: "t"},
			{Table: "movie_keyword", Alias: "mk"},
			{Table: "keyword", Alias: "k"},
		},
		Joins: []db.JoinPred{
			{LeftAlias: "mk", LeftCol: "movie_id", RightAlias: "t", RightCol: "id"},
			{LeftAlias: "mk", LeftCol: "keyword_id", RightAlias: "k", RightCol: "id"},
		},
		Preds: []db.Predicate{{Alias: "k", Col: "keyword", Op: db.OpEq, Val: code}},
	}
	return Template{Base: base, Alias: "t", Col: "production_year"}, nil
}
