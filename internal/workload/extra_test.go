package workload

import (
	"testing"

	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
	"deepsketch/internal/sample"
)

func TestTemplateInstantiateDeterministic(t *testing.T) {
	d := wlDB(t)
	tpl, err := YearTemplate(d, "superhero")
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := sample.New(d, nil, 200, 4)
	s2, _ := sample.New(d, nil, 200, 4)
	a, err := tpl.Instantiate(s1, GroupDistinct, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tpl.Instantiate(s2, GroupDistinct, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("instance counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Query.Signature() != b[i].Query.Signature() {
			t.Fatalf("instance %d differs", i)
		}
	}
}

func TestTemplateBucketsClampedToSpan(t *testing.T) {
	// Requesting more buckets than distinct values must clamp, not produce
	// empty ranges.
	d := wlDB(t)
	s, _ := sample.New(d, nil, 200, 4)
	tpl := Template{
		Base:  db.Query{Tables: []db.TableRef{{Table: "title", Alias: "t"}}},
		Alias: "t", Col: "kind_id",
	}
	insts, err := tpl.Instantiate(s, GroupBuckets, 1000)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, _ := s.For("title").MinMax("kind_id")
	if int64(len(insts)) > hi-lo+1 {
		t.Errorf("buckets %d exceed value span %d", len(insts), hi-lo+1)
	}
}

func TestGeneratorSingleTableOnly(t *testing.T) {
	d := wlDB(t)
	g, err := NewGenerator(d, GenConfig{Seed: 1, Count: 50, Tables: []string{"title"}, MaxJoins: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range g.Generate() {
		if len(q.Tables) != 1 || len(q.Joins) != 0 {
			t.Fatalf("single-table config produced join query: %s", q.SQL(nil))
		}
	}
}

func TestGeneratorOnTPCH(t *testing.T) {
	d := datagen.TPCH(datagen.TPCHConfig{Seed: 3, Orders: 500})
	g, err := NewGenerator(d, GenConfig{Seed: 2, Count: 120, MaxJoins: 4, MaxPreds: 3, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	qs := g.Generate()
	if len(qs) < 80 {
		t.Fatalf("generated only %d TPC-H queries", len(qs))
	}
	joins := 0
	for _, q := range qs {
		if err := d.ValidateQuery(q); err != nil {
			t.Fatalf("invalid: %v (%s)", err, q.SQL(nil))
		}
		if _, err := d.Count(q); err != nil {
			t.Fatal(err)
		}
		joins += len(q.Joins)
	}
	if joins == 0 {
		t.Error("no joins generated on TPC-H")
	}
}

func TestJOBLightDifferentSeedsDiffer(t *testing.T) {
	d := wlDB(t)
	a, _ := JOBLight(d, 1)
	b, _ := JOBLight(d, 2)
	same := 0
	for i := range a {
		if a[i].Signature() == b[i].Signature() {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical JOB-light workloads")
	}
}

func TestLabelEmptyAndErrors(t *testing.T) {
	d := wlDB(t)
	out, err := Label(d, nil, 2, nil)
	if err != nil || len(out) != 0 {
		t.Errorf("empty labeling: %v %v", out, err)
	}
	// A query that fails validation must surface an error.
	bad := []db.Query{{Tables: []db.TableRef{{Table: "nope", Alias: "n"}}}}
	if _, err := Label(d, bad, 2, nil); err == nil {
		t.Error("invalid query should fail labeling")
	}
}
