package workload

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"deepsketch/internal/db"
)

// LabeledQuery pairs a query with its true cardinality (its ML label).
type LabeledQuery struct {
	Query db.Query
	Card  int64
}

// Label executes queries against the database with a bounded worker pool to
// obtain true cardinalities — the paper's step 3, which it accelerates by
// running "the training queries (in parallel) on multiple HyPer instances".
// workers <= 0 uses GOMAXPROCS. progress, when non-nil, is called after each
// completed query with the number done so far (from multiple goroutines,
// monotonically non-decreasing values are not guaranteed per call site).
func Label(d *db.DB, queries []db.Query, workers int, progress func(done int)) ([]LabeledQuery, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	out := make([]LabeledQuery, len(queries))
	var done atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				card, err := d.Count(queries[i])
				if err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("workload: labeling query %d (%s): %w",
						i, queries[i].SQL(nil), err))
					continue
				}
				out[i] = LabeledQuery{Query: queries[i], Card: card}
				n := done.Add(1)
				if progress != nil {
					progress(int(n))
				}
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return nil, err
	}
	return out, nil
}

// Split partitions labeled queries into train and validation sets with the
// given validation fraction, preserving order (callers shuffle beforehand if
// needed). frac is clamped to [0, 0.9].
func Split(all []LabeledQuery, valFrac float64) (train, val []LabeledQuery) {
	if valFrac < 0 {
		valFrac = 0
	}
	if valFrac > 0.9 {
		valFrac = 0.9
	}
	nVal := int(float64(len(all)) * valFrac)
	return all[:len(all)-nVal], all[len(all)-nVal:]
}
