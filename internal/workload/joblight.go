package workload

import (
	"fmt"

	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
)

// JOBLight builds the 70-query evaluation workload analogous to JOB-light,
// the benchmark behind the paper's Table 1. Structural profile reproduced
// from the paper's description of JOB-light:
//
//   - 70 queries with one to four joins, star-shaped around title;
//   - no predicates on strings, no disjunctions;
//   - mostly equality predicates on dimension-table-style attributes
//     (kind_id, company_type_id, role_id, info_type_id, keyword_id, ...);
//   - the only range predicate is on title.production_year.
//
// Literals are drawn deterministically (seeded) from the actual data, and
// each query is re-rolled a bounded number of times until its true
// cardinality is positive, like the hand-written JOB-light queries, which
// all have non-empty results on IMDb.
func JOBLight(d *db.DB, seed int64) ([]db.Query, error) {
	for _, tbl := range []string{"title", "movie_companies", "cast_info",
		"movie_info", "movie_info_idx", "movie_keyword"} {
		if d.Table(tbl) == nil {
			return nil, fmt.Errorf("workload: JOB-light needs IMDb-style schema, missing %s", tbl)
		}
	}
	rng := datagen.NewRand(seed ^ 0x10b)

	// Join templates: table sets star-joined through title, with the
	// 1/2/3/4-join mix of the real workload (20/28/16/6 = 70).
	type tpl struct {
		tables []string
		count  int
	}
	templates := []tpl{
		// 1 join (20)
		{[]string{"title", "movie_keyword"}, 4},
		{[]string{"title", "movie_companies"}, 4},
		{[]string{"title", "cast_info"}, 4},
		{[]string{"title", "movie_info"}, 4},
		{[]string{"title", "movie_info_idx"}, 4},
		// 2 joins (28)
		{[]string{"title", "movie_keyword", "movie_companies"}, 5},
		{[]string{"title", "movie_keyword", "cast_info"}, 5},
		{[]string{"title", "movie_info", "movie_info_idx"}, 5},
		{[]string{"title", "movie_companies", "movie_info"}, 5},
		{[]string{"title", "movie_companies", "movie_info_idx"}, 4},
		{[]string{"title", "cast_info", "movie_info"}, 4},
		// 3 joins (16)
		{[]string{"title", "cast_info", "movie_companies", "movie_info"}, 4},
		{[]string{"title", "movie_keyword", "movie_companies", "movie_info_idx"}, 4},
		{[]string{"title", "cast_info", "movie_info", "movie_info_idx"}, 4},
		{[]string{"title", "movie_companies", "movie_info", "movie_info_idx"}, 4},
		// 4 joins (6)
		{[]string{"title", "movie_companies", "movie_info", "movie_info_idx", "cast_info"}, 3},
		{[]string{"title", "movie_keyword", "movie_companies", "movie_info", "cast_info"}, 3},
	}

	// Equality predicate pools per table: dimension-attribute style columns.
	eqCols := map[string][]string{
		"title":           {"kind_id"},
		"movie_companies": {"company_type_id", "company_id"},
		"cast_info":       {"role_id"},
		"movie_info":      {"info_type_id"},
		"movie_info_idx":  {"info_type_id"},
		"movie_keyword":   {"keyword_id"},
	}

	var out []db.Query
	for _, tp := range templates {
		for c := 0; c < tp.count; c++ {
			q, err := jobLightQuery(d, rng, tp.tables, eqCols)
			if err != nil {
				return nil, err
			}
			out = append(out, q)
		}
	}
	if len(out) != 70 {
		return nil, fmt.Errorf("workload: JOB-light template mix produced %d queries, want 70", len(out))
	}
	return out, nil
}

func jobLightQuery(d *db.DB, rng interface {
	Intn(int) int
	Int63n(int64) int64
	Float64() float64
}, tables []string, eqCols map[string][]string) (db.Query, error) {
	var base db.Query
	aliases := map[string]string{}
	for _, t := range tables {
		a := AliasFor(t)
		aliases[t] = a
		base.Tables = append(base.Tables, db.TableRef{Table: t, Alias: a})
		if t != "title" {
			base.Joins = append(base.Joins, db.JoinPred{
				LeftAlias: a, LeftCol: "movie_id", RightAlias: aliases["title"], RightCol: "id",
			})
		}
	}

	const maxRolls = 60
	for roll := 0; roll < maxRolls; roll++ {
		q := base.Clone()
		// 0-2 equality predicates on non-title tables, at most one per table.
		nEq := rng.Intn(3)
		perm := rng.Intn(len(tables))
		placed := 0
		for i := 0; i < len(tables) && placed < nEq; i++ {
			t := tables[(perm+i)%len(tables)]
			if t == "title" {
				continue
			}
			cols := eqCols[t]
			col := cols[rng.Intn(len(cols))]
			c := d.Table(t).Column(col)
			lit := c.Vals[rng.Intn(len(c.Vals))]
			q.Preds = append(q.Preds, db.Predicate{Alias: aliases[t], Col: col, Op: db.OpEq, Val: lit})
			placed++
		}
		// Optional kind_id equality on title.
		if rng.Float64() < 0.35 {
			c := d.Table("title").Column("kind_id")
			lit := c.Vals[rng.Intn(len(c.Vals))]
			q.Preds = append(q.Preds, db.Predicate{Alias: aliases["title"], Col: "kind_id", Op: db.OpEq, Val: lit})
		}
		// The range predicate on production_year (the only range in
		// JOB-light): >, <, or a between-style pair.
		if rng.Float64() < 0.8 {
			yc := d.Table("title").Column("production_year")
			y1 := yc.Vals[rng.Intn(len(yc.Vals))]
			switch rng.Intn(3) {
			case 0:
				q.Preds = append(q.Preds, db.Predicate{Alias: aliases["title"], Col: "production_year", Op: db.OpGt, Val: y1})
			case 1:
				q.Preds = append(q.Preds, db.Predicate{Alias: aliases["title"], Col: "production_year", Op: db.OpLt, Val: y1})
			default:
				span := 2 + rng.Int63n(15)
				q.Preds = append(q.Preds,
					db.Predicate{Alias: aliases["title"], Col: "production_year", Op: db.OpGt, Val: y1 - 1},
					db.Predicate{Alias: aliases["title"], Col: "production_year", Op: db.OpLt, Val: y1 + span})
			}
		}
		card, err := d.Count(q)
		if err != nil {
			return db.Query{}, err
		}
		if card > 0 {
			return q, nil
		}
	}
	// Give up on predicates: the bare join always has rows.
	return base, nil
}
