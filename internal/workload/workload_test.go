package workload

import (
	"sync/atomic"
	"testing"

	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
	"deepsketch/internal/sample"
)

func wlDB(t *testing.T) *db.DB {
	t.Helper()
	return datagen.IMDb(datagen.IMDbConfig{Seed: 21, Titles: 1200, Keywords: 60, Companies: 30, Persons: 200})
}

func TestAliasFor(t *testing.T) {
	cases := map[string]string{
		"title":           "t",
		"movie_keyword":   "mk",
		"movie_info_idx":  "mii",
		"cast_info":       "ci",
		"lineitem":        "l",
		"movie_companies": "mc",
	}
	for in, want := range cases {
		if got := AliasFor(in); got != want {
			t.Errorf("AliasFor(%s) = %s, want %s", in, got, want)
		}
	}
}

func TestGeneratorProducesValidQueries(t *testing.T) {
	d := wlDB(t)
	g, err := NewGenerator(d, GenConfig{Seed: 1, Count: 300, MaxJoins: 3, MaxPreds: 3, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	qs := g.Generate()
	if len(qs) < 250 {
		t.Fatalf("generated only %d queries", len(qs))
	}
	var multi, withPreds int
	for i, q := range qs {
		if err := d.ValidateQuery(q); err != nil {
			t.Fatalf("query %d invalid: %v (%s)", i, err, q.SQL(nil))
		}
		if len(q.Joins) != len(q.Tables)-1 {
			t.Fatalf("query %d join graph not a tree", i)
		}
		if len(q.Tables) > 4 {
			t.Fatalf("query %d exceeds MaxJoins: %d tables", i, len(q.Tables))
		}
		if len(q.Tables) > 1 {
			multi++
		}
		if len(q.Preds) > 0 {
			withPreds++
		}
		if _, err := d.Count(q); err != nil {
			t.Fatalf("query %d not executable: %v", i, err)
		}
	}
	if multi == 0 {
		t.Error("no multi-table queries generated")
	}
	if withPreds == 0 {
		t.Error("no predicates generated")
	}
}

func TestGeneratorUniformOps(t *testing.T) {
	d := wlDB(t)
	g, _ := NewGenerator(d, GenConfig{Seed: 5, Count: 500, MaxPreds: 3})
	counts := map[db.Op]int{}
	for _, q := range g.Generate() {
		for _, p := range q.Preds {
			counts[p.Op]++
		}
	}
	// = appears on all columns; < and > only on numeric, so = dominates a
	// little, but all three must be well represented ("uniform distribution
	// between =, <, and > predicates").
	for _, op := range []db.Op{db.OpEq, db.OpLt, db.OpGt} {
		if counts[op] < 50 {
			t.Errorf("operator %s underrepresented: %d", op, counts[op])
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	d := wlDB(t)
	g1, _ := NewGenerator(d, GenConfig{Seed: 9, Count: 50})
	g2, _ := NewGenerator(d, GenConfig{Seed: 9, Count: 50})
	a, b := g1.Generate(), g2.Generate()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Signature() != b[i].Signature() {
			t.Fatalf("query %d differs", i)
		}
	}
}

func TestGeneratorTableSubset(t *testing.T) {
	d := wlDB(t)
	g, err := NewGenerator(d, GenConfig{Seed: 2, Count: 100, Tables: []string{"title", "movie_keyword"}, MaxJoins: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range g.Generate() {
		for _, tr := range q.Tables {
			if tr.Table != "title" && tr.Table != "movie_keyword" {
				t.Fatalf("query escaped table subset: %s", q.SQL(nil))
			}
		}
	}
	if _, err := NewGenerator(d, GenConfig{Tables: []string{"nope"}}); err == nil {
		t.Error("unknown table should error")
	}
}

func TestLabel(t *testing.T) {
	d := wlDB(t)
	g, _ := NewGenerator(d, GenConfig{Seed: 3, Count: 40})
	qs := g.Generate()
	// Label documents that progress is invoked from multiple goroutines.
	var progressed atomic.Int64
	labeled, err := Label(d, qs, 2, func(done int) { progressed.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if len(labeled) != len(qs) {
		t.Fatalf("labeled %d of %d", len(labeled), len(qs))
	}
	if got := progressed.Load(); got != int64(len(qs)) {
		t.Errorf("progress called %d times, want %d", got, len(qs))
	}
	// Spot-check a few labels against direct execution.
	for i := 0; i < 5; i++ {
		want, err := d.Count(labeled[i].Query)
		if err != nil {
			t.Fatal(err)
		}
		if labeled[i].Card != want {
			t.Errorf("label %d = %d, want %d", i, labeled[i].Card, want)
		}
	}
}

func TestSplit(t *testing.T) {
	all := make([]LabeledQuery, 100)
	train, val := Split(all, 0.1)
	if len(train) != 90 || len(val) != 10 {
		t.Errorf("split = %d/%d", len(train), len(val))
	}
	train, val = Split(all, -1)
	if len(train) != 100 || len(val) != 0 {
		t.Errorf("negative frac split = %d/%d", len(train), len(val))
	}
	train, val = Split(all, 5)
	if len(val) != 90 {
		t.Errorf("clamped frac split = %d/%d", len(train), len(val))
	}
}

func TestJOBLight(t *testing.T) {
	d := wlDB(t)
	qs, err := JOBLight(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 70 {
		t.Fatalf("JOB-light has %d queries, want 70", len(qs))
	}
	joinHist := map[int]int{}
	zeroCards := 0
	for i, q := range qs {
		if err := d.ValidateQuery(q); err != nil {
			t.Fatalf("query %d invalid: %v", i, err)
		}
		nj := len(q.Joins)
		if nj < 1 || nj > 4 {
			t.Fatalf("query %d has %d joins, want 1..4", i, nj)
		}
		joinHist[nj]++
		// Only range predicates allowed: production_year.
		for _, p := range q.Preds {
			if p.Op != db.OpEq && p.Col != "production_year" {
				t.Errorf("query %d has range predicate on %s", i, p.Col)
			}
		}
		card, err := d.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if card == 0 {
			zeroCards++
		}
	}
	if joinHist[1] != 20 || joinHist[2] != 28 || joinHist[3] != 16 || joinHist[4] != 6 {
		t.Errorf("join mix = %v, want 20/28/16/6", joinHist)
	}
	if zeroCards > 7 {
		t.Errorf("%d/70 queries have empty results; literals should mostly be re-rolled", zeroCards)
	}
}

func TestJOBLightDeterminism(t *testing.T) {
	d := wlDB(t)
	a, _ := JOBLight(d, 4)
	b, _ := JOBLight(d, 4)
	for i := range a {
		if a[i].Signature() != b[i].Signature() {
			t.Fatalf("query %d differs between runs", i)
		}
	}
}

func TestJOBLightNeedsIMDb(t *testing.T) {
	d := datagen.TPCH(datagen.TPCHConfig{Seed: 1, Orders: 200})
	if _, err := JOBLight(d, 0); err == nil {
		t.Error("JOB-light on TPC-H schema should error")
	}
}

func TestYearTemplateInstantiateDistinct(t *testing.T) {
	d := wlDB(t)
	tpl, err := YearTemplate(d, "love")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sample.New(d, nil, 300, 8)
	if err != nil {
		t.Fatal(err)
	}
	insts, err := tpl.Instantiate(s, GroupDistinct, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) < 10 {
		t.Fatalf("expected many distinct years in sample, got %d", len(insts))
	}
	for i := 1; i < len(insts); i++ {
		if insts[i].Lo <= insts[i-1].Lo {
			t.Fatal("instances not ascending")
		}
	}
	// Each instance must be executable and carry the placeholder predicate.
	for _, inst := range insts[:5] {
		found := false
		for _, p := range inst.Query.Preds {
			if p.Alias == "t" && p.Col == "production_year" && p.Op == db.OpEq {
				found = true
			}
		}
		if !found {
			t.Fatalf("instance lacks placeholder predicate: %s", inst.Query.SQL(d))
		}
		if _, err := d.Count(inst.Query); err != nil {
			t.Fatal(err)
		}
	}
}

func TestYearTemplateInstantiateBuckets(t *testing.T) {
	d := wlDB(t)
	tpl, _ := YearTemplate(d, "love")
	s, _ := sample.New(d, nil, 200, 8)
	insts, err := tpl.Instantiate(s, GroupBuckets, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 10 {
		t.Fatalf("want 10 buckets, got %d", len(insts))
	}
	// Buckets must tile the sampled range without gaps.
	for i := 1; i < len(insts); i++ {
		if insts[i].Lo != insts[i-1].Hi+1 {
			t.Fatalf("bucket %d not contiguous: prev hi %d, lo %d", i, insts[i-1].Hi, insts[i].Lo)
		}
	}
	// Sum of bucket counts equals count over the whole sampled range.
	var sum int64
	for _, inst := range insts {
		c, err := d.Count(inst.Query)
		if err != nil {
			t.Fatal(err)
		}
		sum += c
	}
	whole := tpl.Base.Clone()
	whole.Preds = append(whole.Preds,
		db.Predicate{Alias: "t", Col: "production_year", Op: db.OpGt, Val: insts[0].Lo - 1},
		db.Predicate{Alias: "t", Col: "production_year", Op: db.OpLt, Val: insts[len(insts)-1].Hi + 1})
	want, err := d.Count(whole)
	if err != nil {
		t.Fatal(err)
	}
	if sum != want {
		t.Errorf("bucket counts sum to %d, whole range %d", sum, want)
	}
}

func TestTemplateErrors(t *testing.T) {
	d := wlDB(t)
	if _, err := YearTemplate(d, "no-such-keyword"); err == nil {
		t.Error("unknown keyword should error")
	}
	tpl, _ := YearTemplate(d, "love")
	s, _ := sample.New(d, []string{"movie_keyword"}, 10, 0)
	if _, err := tpl.Instantiate(s, GroupDistinct, 0); err == nil {
		t.Error("missing sample should error")
	}
	s2, _ := sample.New(d, nil, 10, 0)
	if _, err := tpl.Instantiate(s2, GroupBuckets, 0); err == nil {
		t.Error("zero buckets should error")
	}
	bad := Template{Base: tpl.Base, Alias: "zz", Col: "production_year"}
	if _, err := bad.Instantiate(s2, GroupDistinct, 0); err == nil {
		t.Error("unknown alias should error")
	}
}
