package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"deepsketch/internal/db"
)

// The functions below read and write labeled workloads in the file format
// of the original learnedcardinalities artifact (github.com/andreaskipf/
// learnedcardinalities, referenced as [1] in the paper): one query per
// line, four '#'-separated fields —
//
//	tables#joins#predicates#cardinality
//
// where tables is "name alias" pairs joined by commas, joins are
// "a.x=b.y" terms joined by commas, predicates are flattened
// "column,op,literal" triples joined by commas, and the label is the true
// cardinality. Example:
//
//	title t,movie_keyword mk#t.id=mk.movie_id#t.production_year,>,2010#555
//
// Empty joins/predicates fields are allowed. Literals are written as raw
// int64 values (dictionary codes for string columns), like the original's
// encoded workloads.

// WriteCSV writes labeled queries in the artifact format.
func WriteCSV(w io.Writer, labeled []LabeledQuery) error {
	bw := bufio.NewWriter(w)
	for i, lq := range labeled {
		if err := writeLine(bw, lq); err != nil {
			return fmt.Errorf("workload: line %d: %w", i+1, err)
		}
	}
	return bw.Flush()
}

func writeLine(w *bufio.Writer, lq LabeledQuery) error {
	q := lq.Query
	tables := make([]string, len(q.Tables))
	for i, tr := range q.Tables {
		tables[i] = tr.Table + " " + tr.Alias
	}
	joins := make([]string, len(q.Joins))
	for i, j := range q.Joins {
		c := j.Canonical()
		joins[i] = fmt.Sprintf("%s.%s=%s.%s", c.LeftAlias, c.LeftCol, c.RightAlias, c.RightCol)
	}
	preds := make([]string, 0, 3*len(q.Preds))
	for _, p := range q.Preds {
		preds = append(preds, p.Alias+"."+p.Col, p.Op.String(), strconv.FormatInt(p.Val, 10))
	}
	_, err := fmt.Fprintf(w, "%s#%s#%s#%d\n",
		strings.Join(tables, ","), strings.Join(joins, ","), strings.Join(preds, ","), lq.Card)
	return err
}

// ReadCSV parses a workload in the artifact format and validates every
// query against the database schema.
func ReadCSV(d *db.DB, r io.Reader) ([]LabeledQuery, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var out []LabeledQuery
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		lq, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", lineNo, err)
		}
		if err := d.ValidateQuery(lq.Query); err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", lineNo, err)
		}
		out = append(out, lq)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseLine(line string) (LabeledQuery, error) {
	var lq LabeledQuery
	fields := strings.Split(line, "#")
	if len(fields) != 4 {
		return lq, fmt.Errorf("want 4 '#'-separated fields, got %d", len(fields))
	}
	for i := range fields {
		fields[i] = strings.TrimSpace(fields[i])
	}

	if fields[0] == "" {
		return lq, fmt.Errorf("empty table list")
	}
	for _, tf := range strings.Split(fields[0], ",") {
		parts := strings.Fields(tf)
		switch len(parts) {
		case 1:
			lq.Query.Tables = append(lq.Query.Tables, db.TableRef{Table: parts[0], Alias: parts[0]})
		case 2:
			lq.Query.Tables = append(lq.Query.Tables, db.TableRef{Table: parts[0], Alias: parts[1]})
		default:
			return lq, fmt.Errorf("bad table %q", tf)
		}
	}

	if fields[1] != "" {
		for _, jf := range strings.Split(fields[1], ",") {
			sides := strings.Split(jf, "=")
			if len(sides) != 2 {
				return lq, fmt.Errorf("bad join %q", jf)
			}
			la, lc, err := splitColRef(sides[0])
			if err != nil {
				return lq, err
			}
			ra, rc, err := splitColRef(sides[1])
			if err != nil {
				return lq, err
			}
			lq.Query.Joins = append(lq.Query.Joins, db.JoinPred{
				LeftAlias: la, LeftCol: lc, RightAlias: ra, RightCol: rc,
			})
		}
	}

	if fields[2] != "" {
		parts := strings.Split(fields[2], ",")
		if len(parts)%3 != 0 {
			return lq, fmt.Errorf("predicate field has %d comma-separated parts, want a multiple of 3", len(parts))
		}
		for i := 0; i < len(parts); i += 3 {
			alias, col, err := splitColRef(parts[i])
			if err != nil {
				return lq, err
			}
			op, err := db.ParseOp(parts[i+1])
			if err != nil {
				return lq, err
			}
			val, err := strconv.ParseInt(parts[i+2], 10, 64)
			if err != nil {
				return lq, fmt.Errorf("bad literal %q: %v", parts[i+2], err)
			}
			lq.Query.Preds = append(lq.Query.Preds, db.Predicate{Alias: alias, Col: col, Op: op, Val: val})
		}
	}

	card, err := strconv.ParseInt(strings.TrimSpace(fields[3]), 10, 64)
	if err != nil {
		return lq, fmt.Errorf("bad cardinality %q: %v", fields[3], err)
	}
	lq.Card = card
	return lq, nil
}

func splitColRef(s string) (alias, col string, err error) {
	parts := strings.Split(strings.TrimSpace(s), ".")
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return "", "", fmt.Errorf("bad column reference %q", s)
	}
	return parts[0], parts[1], nil
}
