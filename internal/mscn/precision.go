package mscn

import "fmt"

// Precision selects the numeric format of the inference engine's forward
// pass. Training is always float64 — Adam moments and gradient reduction
// stay f64 so a fixed (seed, parallelism) pair reproduces bitwise-identical
// weights regardless of the serving precision.
type Precision uint32

const (
	// F64 is the full-precision reference path (default).
	F64 Precision = iota
	// F32 runs the packed forward in float32 from a converted weight
	// snapshot: half the weight memory traffic, gated on <1% per-query
	// q-error deviation by the equivalence tests.
	F32
	// Int8 is the experimental per-layer-scaled quantized path: int8
	// weights (symmetric per-layer scale), dynamically quantized
	// activations, int32 accumulation. A stretch probe, not a production
	// default.
	Int8
)

// String returns the engine-tag spelling used by flags and API responses.
func (p Precision) String() string {
	switch p {
	case F32:
		return "f32"
	case Int8:
		return "int8"
	default:
		return "f64"
	}
}

// ParsePrecision parses the -engine flag spelling.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "f64", "":
		return F64, nil
	case "f32":
		return F32, nil
	case "int8":
		return Int8, nil
	default:
		return F64, fmt.Errorf("mscn: unknown engine precision %q (want f64, f32 or int8)", s)
	}
}
