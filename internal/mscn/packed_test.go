package mscn

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"deepsketch/internal/featurize"
	"deepsketch/internal/nn"
)

// randEnc builds one featurized query with the given set sizes and random
// element values. Zero-sized sets are emitted as genuinely empty (no
// elements), exercising the empty-segment path directly.
func randEnc(rng *rand.Rand, nt, nj, np, tdim, jdim, pdim int) featurize.Encoded {
	vecs := func(n, dim int) [][]float64 {
		out := make([][]float64, n)
		for i := range out {
			v := make([]float64, dim)
			for j := range v {
				if rng.Float64() < 0.3 {
					v[j] = rng.Float64()*2 - 1
				}
			}
			out[i] = v
		}
		return out
	}
	return featurize.Encoded{
		TableVecs: vecs(nt, tdim),
		JoinVecs:  vecs(nj, jdim),
		PredVecs:  vecs(np, pdim),
	}
}

// TestPackedEquivalence: the packed engine forward must match the reference
// padded forward within 1e-12 across randomized ragged shapes, including
// empty sets, singleton batches, and JOB-light-like shapes.
func TestPackedEquivalence(t *testing.T) {
	const tdim, jdim, pdim = 37, 5, 11
	rng := rand.New(rand.NewSource(42))
	m := New(Config{HiddenUnits: 32, Seed: 7}, tdim, jdim, pdim)
	e := m.Engine()

	cases := [][][3]int{
		// Singleton batches of varied shapes.
		{{1, 1, 1}},
		{{4, 3, 3}},
		// Empty joins and predicates (sets with no elements at all).
		{{2, 0, 0}},
		{{1, 0, 2}, {3, 2, 0}},
		// JOB-light shapes: chains of 1..5 tables, joins = tables-1, 0..3 preds.
		{{1, 0, 1}, {2, 1, 2}, {3, 2, 1}, {4, 3, 3}, {5, 4, 2}},
	}
	// Randomized ragged batches.
	for c := 0; c < 20; c++ {
		b := 1 + rng.Intn(65)
		shapes := make([][3]int, b)
		for i := range shapes {
			shapes[i] = [3]int{1 + rng.Intn(5), rng.Intn(5), rng.Intn(5)}
		}
		cases = append(cases, shapes)
	}

	var ws nn.Workspace
	for ci, shapes := range cases {
		encs := make([]featurize.Encoded, len(shapes))
		for i, sh := range shapes {
			encs[i] = randEnc(rng, sh[0], sh[1], sh[2], tdim, jdim, pdim)
		}
		padded, err := BuildBatch(encs, nil, tdim, jdim, pdim)
		if err != nil {
			t.Fatalf("case %d: BuildBatch: %v", ci, err)
		}
		want := m.Forward(padded)

		pb, err := BuildPackedBatch(encs, tdim, jdim, pdim)
		if err != nil {
			t.Fatalf("case %d: BuildPackedBatch: %v", ci, err)
		}
		got := make([]float64, len(encs))
		e.Forward(pb, &ws, got)
		for i := range got {
			if d := math.Abs(got[i] - want[i]); d > 1e-12 || math.IsNaN(got[i]) {
				t.Errorf("case %d query %d (shape %v): packed %v vs padded %v (|Δ|=%g)",
					ci, i, shapes[i], got[i], want[i], d)
			}
		}

		// The pooled Predict path must agree with both.
		for i, enc := range encs {
			y, err := e.Predict(enc)
			if err != nil {
				t.Fatalf("case %d: Predict: %v", ci, err)
			}
			if d := math.Abs(y - want[i]); d > 1e-12 {
				t.Errorf("case %d query %d: Predict %v vs padded %v (|Δ|=%g)", ci, i, y, want[i], d)
			}
		}
	}
}

// TestPackedBatchReuse: rebuilding a PackedBatch in place (smaller, then
// larger batches) must not leak state between builds.
func TestPackedBatchReuse(t *testing.T) {
	const tdim, jdim, pdim = 9, 4, 6
	rng := rand.New(rand.NewSource(3))
	m := New(Config{HiddenUnits: 8, Seed: 3}, tdim, jdim, pdim)
	e := m.Engine()

	var pb PackedBatch
	var ws nn.Workspace
	for round := 0; round < 10; round++ {
		b := 1 + rng.Intn(8)
		encs := make([]featurize.Encoded, b)
		for i := range encs {
			encs[i] = randEnc(rng, 1+rng.Intn(3), rng.Intn(3), rng.Intn(3), tdim, jdim, pdim)
		}
		if err := pb.Build(encs, tdim, jdim, pdim); err != nil {
			t.Fatal(err)
		}
		got := make([]float64, b)
		e.Forward(&pb, &ws, got)
		padded, err := BuildBatch(encs, nil, tdim, jdim, pdim)
		if err != nil {
			t.Fatal(err)
		}
		want := m.Forward(padded)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("round %d query %d: reused packed %v vs padded %v", round, i, got[i], want[i])
			}
		}
	}
}

// TestPackedBatchErrors mirrors the BuildBatch error contract.
func TestPackedBatchErrors(t *testing.T) {
	if _, err := BuildPackedBatch(nil, 1, 1, 1); err == nil {
		t.Error("empty batch should error")
	}
	e := featurize.Encoded{TableVecs: [][]float64{{1, 2}}}
	if _, err := BuildPackedBatch([]featurize.Encoded{e}, 5, 1, 1); err == nil {
		t.Error("width mismatch should error")
	}
}

// TestEngineConcurrent drives the engine's pooled-workspace paths from many
// goroutines at once; `go test -race ./internal/mscn` (run in CI) turns any
// workspace sharing into a failure. Every goroutine checks its results
// against the sequentially computed reference.
func TestEngineConcurrent(t *testing.T) {
	const tdim, jdim, pdim = 21, 4, 8
	rng := rand.New(rand.NewSource(11))
	m := New(Config{HiddenUnits: 16, BatchSize: 8, Seed: 5}, tdim, jdim, pdim)
	e := m.Engine()

	encs := make([]featurize.Encoded, 48)
	for i := range encs {
		encs[i] = randEnc(rng, 1+rng.Intn(4), rng.Intn(4), rng.Intn(4), tdim, jdim, pdim)
	}
	padded, err := BuildBatch(encs, nil, tdim, jdim, pdim)
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]float64, len(encs))
	copy(ref, m.Forward(padded))

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 30; iter++ {
				if (g+iter)%2 == 0 {
					i := (g*31 + iter) % len(encs)
					y, err := e.Predict(encs[i])
					if err != nil {
						errs <- err
						return
					}
					if math.Abs(y-ref[i]) > 1e-12 {
						errs <- errMismatch(i, y, ref[i])
						return
					}
				} else {
					out := make([]float64, len(encs))
					if err := e.PredictAllInto(context.Background(), encs, out); err != nil {
						errs <- err
						return
					}
					for i := range out {
						if math.Abs(out[i]-ref[i]) > 1e-12 {
							errs <- errMismatch(i, out[i], ref[i])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type mismatchError struct {
	i         int
	got, want float64
}

func (e mismatchError) Error() string {
	return "concurrent result mismatch"
}

func errMismatch(i int, got, want float64) error {
	return mismatchError{i: i, got: got, want: want}
}

// encodedSource adapts pre-featurized queries to the QuerySource interface,
// for testing the direct-pack path against the Encoded path.
type encodedSource []featurize.Encoded

func (s encodedSource) RowCounts(i int) (t, j, p int) {
	return len(s[i].TableVecs), len(s[i].JoinVecs), len(s[i].PredVecs)
}

func (s encodedSource) EncodeTo(i int, nextT, nextJ, nextP func() []float64) error {
	for _, v := range s[i].TableVecs {
		copy(nextT(), v)
	}
	for _, v := range s[i].JoinVecs {
		copy(nextJ(), v)
	}
	for _, v := range s[i].PredVecs {
		copy(nextP(), v)
	}
	return nil
}

// TestPredictSourceMatchesEncoded: the direct-featurization batch path must
// agree with the Encoded batch path, both on this machine's GOMAXPROCS and
// with the multicore chunk fan-out forced on (this exercises the parallel
// worker pool even on a 1-core box).
func TestPredictSourceMatchesEncoded(t *testing.T) {
	const tdim, jdim, pdim = 19, 3, 7
	rng := rand.New(rand.NewSource(21))
	m := New(Config{HiddenUnits: 12, BatchSize: 16, Seed: 2}, tdim, jdim, pdim)
	e := m.Engine()

	encs := make([]featurize.Encoded, 100)
	for i := range encs {
		encs[i] = randEnc(rng, 1+rng.Intn(4), rng.Intn(4), rng.Intn(4), tdim, jdim, pdim)
	}
	want, err := e.PredictAll(encs)
	if err != nil {
		t.Fatal(err)
	}
	check := func() {
		t.Helper()
		got := make([]float64, len(encs))
		if err := e.PredictSourceInto(context.Background(), encodedSource(encs), len(encs), got); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("query %d: source path %v vs encoded path %v", i, got[i], want[i])
			}
		}
	}
	check()
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	check()
}

// TestForwardPackedZeroAlloc: the steady-state packed forward pass must not
// touch the heap.
func TestForwardPackedZeroAlloc(t *testing.T) {
	const tdim, jdim, pdim = 30, 6, 10
	rng := rand.New(rand.NewSource(9))
	m := New(Config{HiddenUnits: 32, Seed: 1}, tdim, jdim, pdim)
	e := m.Engine()
	encs := make([]featurize.Encoded, 32)
	for i := range encs {
		encs[i] = randEnc(rng, 1+rng.Intn(4), rng.Intn(4), 1+rng.Intn(3), tdim, jdim, pdim)
	}
	pb, err := BuildPackedBatch(encs, tdim, jdim, pdim)
	if err != nil {
		t.Fatal(err)
	}
	var ws nn.Workspace
	out := make([]float64, len(encs))
	e.Forward(pb, &ws, out) // warm the workspace to steady state
	allocs := testing.AllocsPerRun(50, func() {
		e.Forward(pb, &ws, out)
	})
	if allocs != 0 {
		t.Fatalf("steady-state packed Forward allocates %.1f times per op, want 0", allocs)
	}
}
