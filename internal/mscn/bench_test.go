package mscn

import (
	"testing"

	"deepsketch/internal/featurize"
	"deepsketch/internal/nn"
)

// benchExamples builds synthetic featurized examples with paper-ish
// dimensions (bitmap width 1000) without touching a database.
func benchExamples(b *testing.B, n int) ([]Example, int, int, int, nn.LabelNorm) {
	b.Helper()
	const tdim, jdim, pdim = 1008, 7, 17
	examples := make([]Example, n)
	for i := range examples {
		tv := make([][]float64, 1+i%3)
		for j := range tv {
			v := make([]float64, tdim)
			v[j%8] = 1
			for k := 8; k < tdim; k += 7 {
				v[k] = float64((i + k) % 2)
			}
			tv[j] = v
		}
		jv := [][]float64{make([]float64, jdim)}
		jv[0][i%jdim] = 1
		pv := [][]float64{make([]float64, pdim)}
		pv[0][i%13] = 1
		pv[0][pdim-1] = float64(i%100) / 100
		examples[i] = Example{
			Enc:  featurize.Encoded{TableVecs: tv, JoinVecs: jv, PredVecs: pv},
			Card: int64(1 + i*37%100000),
		}
	}
	cards := make([]int64, n)
	for i, ex := range examples {
		cards[i] = ex.Card
	}
	return examples, tdim, jdim, pdim, nn.NewLabelNorm(cards)
}

func BenchmarkForwardBatch(b *testing.B) {
	examples, tdim, jdim, pdim, _ := benchExamples(b, 128)
	m := New(Config{HiddenUnits: 64, Seed: 1}, tdim, jdim, pdim)
	encs := make([]featurize.Encoded, len(examples))
	ys := make([]float64, len(examples))
	for i, ex := range examples {
		encs[i] = ex.Enc
	}
	batch, err := BuildBatch(encs, ys, tdim, jdim, pdim)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(batch)
	}
}

func BenchmarkPredictSingle(b *testing.B) {
	examples, tdim, jdim, pdim, _ := benchExamples(b, 8)
	m := New(Config{HiddenUnits: 64, Seed: 1}, tdim, jdim, pdim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(examples[i%len(examples)].Enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainEpoch(b *testing.B) {
	examples, tdim, jdim, pdim, norm := benchExamples(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(Config{HiddenUnits: 64, Epochs: 1, BatchSize: 128, Seed: 1}, tdim, jdim, pdim)
		if _, err := m.Train(examples, norm, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildBatch(b *testing.B) {
	examples, tdim, jdim, pdim, _ := benchExamples(b, 128)
	encs := make([]featurize.Encoded, len(examples))
	ys := make([]float64, len(examples))
	for i, ex := range examples {
		encs[i] = ex.Enc
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildBatch(encs, ys, tdim, jdim, pdim); err != nil {
			b.Fatal(err)
		}
	}
}
