package mscn

import (
	"context"
	"strconv"
	"testing"

	"deepsketch/internal/featurize"
	"deepsketch/internal/nn"
)

// benchExamples builds synthetic featurized examples with paper-ish
// dimensions (bitmap width 1000) without touching a database.
func benchExamples(b testing.TB, n int) ([]Example, int, int, int, nn.LabelNorm) {
	b.Helper()
	const tdim, jdim, pdim = 1008, 7, 17
	examples := make([]Example, n)
	for i := range examples {
		tv := make([][]float64, 1+i%3)
		for j := range tv {
			v := make([]float64, tdim)
			v[j%8] = 1
			for k := 8; k < tdim; k += 7 {
				v[k] = float64((i + k) % 2)
			}
			tv[j] = v
		}
		jv := [][]float64{make([]float64, jdim)}
		jv[0][i%jdim] = 1
		pv := [][]float64{make([]float64, pdim)}
		pv[0][i%13] = 1
		pv[0][pdim-1] = float64(i%100) / 100
		examples[i] = Example{
			Enc:  featurize.Encoded{TableVecs: tv, JoinVecs: jv, PredVecs: pv},
			Card: int64(1 + i*37%100000),
		}
	}
	cards := make([]int64, n)
	for i, ex := range examples {
		cards[i] = ex.Card
	}
	return examples, tdim, jdim, pdim, nn.NewLabelNorm(cards)
}

func BenchmarkForwardBatch(b *testing.B) {
	examples, tdim, jdim, pdim, _ := benchExamples(b, 128)
	m := New(Config{HiddenUnits: 64, Seed: 1}, tdim, jdim, pdim)
	encs := make([]featurize.Encoded, len(examples))
	ys := make([]float64, len(examples))
	for i, ex := range examples {
		encs[i] = ex.Enc
	}
	batch, err := BuildBatch(encs, ys, tdim, jdim, pdim)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(batch)
	}
}

func BenchmarkPredictSingle(b *testing.B) {
	examples, tdim, jdim, pdim, _ := benchExamples(b, 8)
	m := New(Config{HiddenUnits: 64, Seed: 1}, tdim, jdim, pdim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(examples[i%len(examples)].Enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForwardPacked measures the packed engine's steady-state forward
// pass on a prebuilt batch and scratch — the number that must stay at
// 0 allocs/op. "single" is one query; "mixed64" is a 64-query ragged batch
// of mixed shapes (the coalescer's flush shape under load). Each shape runs
// once per inference precision (f64 reference, f32, experimental int8).
func BenchmarkForwardPacked(b *testing.B) {
	run := func(n int, p Precision) func(b *testing.B) {
		return func(b *testing.B) {
			examples, tdim, jdim, pdim, _ := benchExamples(b, n)
			m := New(Config{HiddenUnits: 64, Seed: 1}, tdim, jdim, pdim)
			m.SetPrecision(p)
			e := m.Engine()
			encs := make([]featurize.Encoded, len(examples))
			for i, ex := range examples {
				encs[i] = ex.Enc
			}
			pb, err := BuildPackedBatch(encs, tdim, jdim, pdim)
			if err != nil {
				b.Fatal(err)
			}
			s := e.scratch()
			out := make([]float64, len(encs))
			e.forward(pb, s, out) // warm the scratch + converted snapshot
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.forward(pb, s, out)
			}
		}
	}
	for _, shape := range []struct {
		name string
		n    int
	}{{"single", 1}, {"mixed64", 64}} {
		for _, p := range []Precision{F64, F32, Int8} {
			b.Run(shape.name+"/engine="+p.String(), run(shape.n, p))
		}
	}
}

// BenchmarkPredictAllPacked is the end-to-end batched inference path as the
// serve coalescer drives it: pack (pooled buffers) + forward per call.
func BenchmarkPredictAllPacked(b *testing.B) {
	examples, tdim, jdim, pdim, _ := benchExamples(b, 64)
	m := New(Config{HiddenUnits: 64, BatchSize: 64, Seed: 1}, tdim, jdim, pdim)
	e := m.Engine()
	encs := make([]featurize.Encoded, len(examples))
	for i, ex := range examples {
		encs[i] = ex.Enc
	}
	out := make([]float64, len(encs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.PredictAllInto(context.Background(), encs, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainEpoch measures one epoch of packed data-parallel training:
// serial (P=1) vs sharded across 2 and 4 workers. On a single-core box the
// parallel variants measure sharding overhead only; the speedup needs
// GOMAXPROCS ≥ P.
func BenchmarkTrainEpoch(b *testing.B) {
	examples, tdim, jdim, pdim, norm := benchExamples(b, 1024)
	for _, p := range []int{1, 2, 4} {
		b.Run("p="+strconv.Itoa(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := New(Config{HiddenUnits: 64, Epochs: 1, BatchSize: 128, Seed: 1}, tdim, jdim, pdim)
				if _, err := m.TrainWithOptions(examples, norm, nil, TrainOptions{Parallelism: p}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBuildBatch(b *testing.B) {
	examples, tdim, jdim, pdim, _ := benchExamples(b, 128)
	encs := make([]featurize.Encoded, len(examples))
	ys := make([]float64, len(examples))
	for i, ex := range examples {
		encs[i] = ex.Enc
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildBatch(encs, ys, tdim, jdim, pdim); err != nil {
			b.Fatal(err)
		}
	}
}
