package mscn

import (
	"encoding/json"
	"testing"

	"deepsketch/internal/nn"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := Config{
		HiddenUnits: 96, Epochs: 42, BatchSize: 256, LearningRate: 5e-4,
		Loss: nn.LossL1Log, ClipNorm: 7, GradCap: 500, ValFrac: 0.2, Seed: 99,
	}
	blob, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back != cfg {
		t.Errorf("round trip changed config:\n%+v\n%+v", cfg, back)
	}
}

func TestTrainWithL1LogLoss(t *testing.T) {
	_, enc, examples, norm := testSetup(t, 200)
	cfg := Config{HiddenUnits: 16, Epochs: 8, BatchSize: 32, Seed: 3, Loss: nn.LossL1Log}
	m := New(cfg, enc.TableDim(), enc.JoinDim(), enc.PredDim())
	stats, err := m.Train(examples, norm, nil)
	if err != nil {
		t.Fatal(err)
	}
	first, last := stats[0], stats[len(stats)-1]
	if !(last.ValMeanQ < first.ValMeanQ) {
		t.Errorf("L1-log training did not improve: %v -> %v", first.ValMeanQ, last.ValMeanQ)
	}
}

func TestDifferentSeedsDifferentWeights(t *testing.T) {
	a := New(Config{HiddenUnits: 8, Seed: 1}, 5, 2, 3)
	b := New(Config{HiddenUnits: 8, Seed: 2}, 5, 2, 3)
	same := true
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].Data {
			if pa[i].Data[j] != pb[i].Data[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical initial weights")
	}
}

// TestKeepBestRestoresBestEpoch: with KeepBest the final weights must give
// validation error no worse than the best epoch observed (equal by
// construction), and differ from a run without KeepBest when the last epoch
// was not the best.
func TestKeepBestRestoresBestEpoch(t *testing.T) {
	_, enc, examples, norm := testSetup(t, 200)
	cfg := Config{HiddenUnits: 16, Epochs: 10, BatchSize: 32, Seed: 11, ValFrac: 0.2, KeepBest: true}
	m := New(cfg, enc.TableDim(), enc.JoinDim(), enc.PredDim())
	stats, err := m.Train(examples, norm, nil)
	if err != nil {
		t.Fatal(err)
	}
	best := stats[0].ValMeanQ
	for _, st := range stats {
		if st.ValMeanQ < best {
			best = st.ValMeanQ
		}
	}
	// Recompute validation error with the restored weights: it must match
	// the best epoch (same deterministic split).
	val := validationSlice(examples, cfg, m)
	qs, err := m.evalQErrors(val, norm)
	if err != nil {
		t.Fatal(err)
	}
	got := mean(qs)
	if got > best*1.0000001 {
		t.Errorf("restored weights give val mean-q %v, best epoch was %v", got, best)
	}
}

// validationSlice reproduces Train's deterministic shuffle/split so tests
// can evaluate the exact validation set.
func validationSlice(examples []Example, cfg Config, m *Model) []Example {
	rng := trainRand(m.Cfg.Seed)
	perm := shuffle(rng, len(examples))
	shuffled := make([]Example, len(examples))
	for i, p := range perm {
		shuffled[i] = examples[p]
	}
	nVal := int(float64(len(shuffled)) * m.Cfg.ValFrac)
	if nVal >= len(shuffled) {
		nVal = len(shuffled) - 1
	}
	return shuffled[len(shuffled)-nVal:]
}

func TestPredictAllEmpty(t *testing.T) {
	m := New(Config{HiddenUnits: 8, Seed: 1}, 5, 2, 3)
	out, err := m.PredictAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("PredictAll(nil) = %v", out)
	}
}
