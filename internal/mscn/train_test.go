package mscn

import (
	"math"
	"math/rand"
	"testing"

	"deepsketch/internal/featurize"
	"deepsketch/internal/nn"
)

// trainExamples builds randomized ragged training examples (mixed set
// shapes, including empty joins/predicates) with matching label norm.
func trainExamples(rng *rand.Rand, n, tdim, jdim, pdim int) ([]Example, nn.LabelNorm) {
	examples := make([]Example, n)
	cards := make([]int64, n)
	for i := range examples {
		enc := randEnc(rng, 1+rng.Intn(4), rng.Intn(4), rng.Intn(4), tdim, jdim, pdim)
		card := int64(1 + rng.Intn(1_000_000))
		examples[i] = Example{Enc: enc, Card: card}
		cards[i] = card
	}
	return examples, nn.NewLabelNorm(cards)
}

// paddedReferenceTrain replicates the training schedule of TrainWithOptions
// on the padded, masked tape path — the deleted production loop, preserved
// here as the numerical reference the packed path is validated against.
// It must consume the model RNG exactly like TrainWithOptions does.
func paddedReferenceTrain(m *Model, examples []Example, norm nn.LabelNorm) error {
	rng := trainRand(m.Cfg.Seed)
	perm := shuffle(rng, len(examples))
	shuffled := make([]Example, len(examples))
	for i, p := range perm {
		shuffled[i] = examples[p]
	}
	nVal := int(float64(len(shuffled)) * m.Cfg.ValFrac)
	if nVal >= len(shuffled) {
		nVal = len(shuffled) - 1
	}
	train := shuffled[:len(shuffled)-nVal]
	ys := make([]float64, len(train))
	for i, ex := range train {
		ys[i] = norm.Normalize(ex.Card)
	}
	opt := nn.NewAdam(m.Cfg.LearningRate, m.Cfg.ClipNorm)
	params := m.Params()
	var (
		batch   Batch
		tp      tape
		encs    []featurize.Encoded
		targets []float64
	)
	for epoch := 1; epoch <= m.Cfg.Epochs; epoch++ {
		order := shuffle(rng, len(train))
		for lo := 0; lo < len(order); lo += m.Cfg.BatchSize {
			hi := lo + m.Cfg.BatchSize
			if hi > len(order) {
				hi = len(order)
			}
			encs = encs[:0]
			targets = targets[:0]
			for _, idx := range order[lo:hi] {
				encs = append(encs, train[idx].Enc)
				targets = append(targets, ys[idx])
			}
			if err := batch.build(encs, targets, m.TDim, m.JDim, m.PDim); err != nil {
				return err
			}
			preds := m.forward(&batch, &tp)
			_, grad := nn.Loss(m.Cfg.Loss, norm, preds, batch.Y, m.Cfg.GradCap)
			m.backward(&tp, grad)
			opt.Step(params)
		}
	}
	return nil
}

func weightsOf(m *Model) [][]float64 {
	params := m.Params()
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.Data...)
	}
	return out
}

func maxWeightDiff(a, b [][]float64) float64 {
	var worst float64
	for i := range a {
		for j := range a[i] {
			if d := math.Abs(a[i][j] - b[i][j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// TestPackedTrainingMatchesPaddedReference: serial (P=1) packed training
// must match the padded tape reference to 1e-10 on randomized ragged
// batches — same schedule, same loss, same optimizer, different kernels.
func TestPackedTrainingMatchesPaddedReference(t *testing.T) {
	const tdim, jdim, pdim = 29, 5, 9
	rng := rand.New(rand.NewSource(71))
	examples, norm := trainExamples(rng, 90, tdim, jdim, pdim)
	cfg := Config{HiddenUnits: 16, Epochs: 3, BatchSize: 32, Seed: 5}

	packed := New(cfg, tdim, jdim, pdim)
	if _, err := packed.TrainWithOptions(examples, norm, nil, TrainOptions{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	padded := New(cfg, tdim, jdim, pdim)
	if err := paddedReferenceTrain(padded, examples, norm); err != nil {
		t.Fatal(err)
	}

	if d := maxWeightDiff(weightsOf(packed), weightsOf(padded)); d > 1e-10 {
		t.Fatalf("packed P=1 vs padded reference: max weight diff %g > 1e-10", d)
	}
}

// TestTrainParallelReproducible: a fixed (seed, parallelism) pair must
// reproduce bitwise-identical weights — the worker-ordered gradient
// reduction leaves nothing to scheduling.
func TestTrainParallelReproducible(t *testing.T) {
	const tdim, jdim, pdim = 23, 4, 7
	rng := rand.New(rand.NewSource(72))
	examples, norm := trainExamples(rng, 70, tdim, jdim, pdim)
	cfg := Config{HiddenUnits: 12, Epochs: 2, BatchSize: 16, Seed: 9}

	train := func(p int) [][]float64 {
		m := New(cfg, tdim, jdim, pdim)
		if _, err := m.TrainWithOptions(examples, norm, nil, TrainOptions{Parallelism: p}); err != nil {
			t.Fatal(err)
		}
		return weightsOf(m)
	}
	a, b := train(3), train(3)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("param %d[%d]: %v vs %v — same seed+parallelism must be bitwise identical",
					i, j, a[i][j], b[i][j])
			}
		}
	}

	// Parallel shards only change float summation order, so any
	// parallelism stays numerically close to serial.
	if d := maxWeightDiff(a, train(1)); d > 1e-8 {
		t.Errorf("P=3 vs P=1: max weight diff %g > 1e-8", d)
	}
}

// TestTrainParallelismExceedsBatch: more workers than examples (and a batch
// smaller than the worker count) must still train correctly.
func TestTrainParallelismExceedsBatch(t *testing.T) {
	const tdim, jdim, pdim = 11, 3, 5
	rng := rand.New(rand.NewSource(73))
	examples, norm := trainExamples(rng, 9, tdim, jdim, pdim)
	cfg := Config{HiddenUnits: 8, Epochs: 2, BatchSize: 4, Seed: 2}
	m := New(cfg, tdim, jdim, pdim)
	if _, err := m.TrainWithOptions(examples, norm, nil, TrainOptions{Parallelism: 8}); err != nil {
		t.Fatal(err)
	}
	ref := New(cfg, tdim, jdim, pdim)
	if _, err := ref.TrainWithOptions(examples, norm, nil, TrainOptions{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	if d := maxWeightDiff(weightsOf(m), weightsOf(ref)); d > 1e-8 {
		t.Errorf("P=8 on 4-query batches vs serial: max weight diff %g", d)
	}
}

// TestQBetterNaN: a NaN validation mean q-error is strictly worse than any
// real value — KeepBest must never snapshot a NaN epoch (the epoch-1
// silent-NaN-snapshot regression) and a real epoch must beat a NaN best.
func TestQBetterNaN(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		cur, best float64
		want      bool
	}{
		{1.5, nan, true},  // first real epoch beats the no-best sentinel
		{nan, nan, false}, // NaN epoch 1 must not become the snapshot
		{nan, 2.0, false}, // NaN never beats a real best
		{1.0, 2.0, true},
		{2.0, 1.0, false},
		{1.0, 1.0, false}, // strictly better only
	}
	for _, c := range cases {
		if got := qBetter(c.cur, c.best); got != c.want {
			t.Errorf("qBetter(%v, %v) = %v, want %v", c.cur, c.best, got, c.want)
		}
	}
}
