package mscn

import (
	"bytes"
	"math"
	"testing"

	"deepsketch/internal/datagen"
	"deepsketch/internal/db"
	"deepsketch/internal/featurize"
	"deepsketch/internal/nn"
	"deepsketch/internal/sample"
	"deepsketch/internal/trainmon"
	"deepsketch/internal/workload"
)

// testSetup builds a tiny IMDb, samples, encoder, and a labeled uniform
// workload for fast training tests.
func testSetup(t *testing.T, nQueries int) (*db.DB, *featurize.Encoder, []Example, nn.LabelNorm) {
	t.Helper()
	d := datagen.IMDb(datagen.IMDbConfig{Seed: 51, Titles: 900, Keywords: 50, Companies: 25, Persons: 150})
	s, err := sample.New(d, nil, 48, 5)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := featurize.NewEncoder(d, nil, 48)
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewGenerator(d, workload.GenConfig{Seed: 8, Count: nQueries, MaxJoins: 2, MaxPreds: 2})
	if err != nil {
		t.Fatal(err)
	}
	labeled, err := workload.Label(d, g.Generate(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	cards := make([]int64, len(labeled))
	examples := make([]Example, len(labeled))
	for i, lq := range labeled {
		bms, err := s.Bitmaps(lq.Query)
		if err != nil {
			t.Fatal(err)
		}
		e, err := enc.EncodeQuery(lq.Query, bms)
		if err != nil {
			t.Fatal(err)
		}
		examples[i] = Example{Enc: e, Card: lq.Card}
		cards[i] = lq.Card
	}
	enc.FitLabels(cards)
	return d, enc, examples, enc.Norm
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.HiddenUnits != 64 || c.Epochs != 25 || c.BatchSize != 64 {
		t.Errorf("defaults wrong: %+v", c)
	}
	c2 := Config{HiddenUnits: 16, Epochs: 3}.withDefaults()
	if c2.HiddenUnits != 16 || c2.Epochs != 3 {
		t.Error("explicit values overridden")
	}
}

func TestModelShapes(t *testing.T) {
	m := New(Config{HiddenUnits: 8, Seed: 1}, 10, 3, 7)
	if got := len(m.Params()); got != 16 { // 8 layers × (W, b)
		t.Errorf("param tensors = %d, want 16", got)
	}
	// 10*8+8 + 8*8+8 + 3*8+8 + 8*8+8 + 7*8+8 + 8*8+8 + 24*8+8 + 8*1+1
	want := (10*8 + 8) + (8*8 + 8) + (3*8 + 8) + (8*8 + 8) + (7*8 + 8) + (8*8 + 8) + (24*8 + 8) + (8 + 1)
	if m.NumParams() != want {
		t.Errorf("NumParams = %d, want %d", m.NumParams(), want)
	}
}

func TestBuildBatchPaddingAndMasks(t *testing.T) {
	e1 := featurize.Encoded{
		TableVecs: [][]float64{{1, 0}, {0, 1}},
		JoinVecs:  [][]float64{{1}},
		PredVecs:  [][]float64{{1, 0, 0}},
	}
	e2 := featurize.Encoded{
		TableVecs: [][]float64{{1, 0}},
		JoinVecs:  [][]float64{{0}},
		PredVecs:  [][]float64{{0, 1, 0}, {0, 0, 1}, {1, 1, 1}},
	}
	b, err := BuildBatch([]featurize.Encoded{e1, e2}, []float64{0.5, 0.7}, 2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b.B != 2 || b.MaxT != 2 || b.MaxJ != 1 || b.MaxP != 3 {
		t.Fatalf("batch dims: %+v", b)
	}
	// e2 has 1 table: mask for its second slot must be 0.
	if b.TMask[2] != 1 || b.TMask[3] != 0 {
		t.Errorf("table mask = %v", b.TMask)
	}
	if b.PMask[0] != 1 || b.PMask[1] != 0 || b.PMask[2] != 0 {
		t.Errorf("pred mask = %v", b.PMask)
	}
	if b.Y[1] != 0.7 {
		t.Error("labels not copied")
	}
	// Padded rows must stay zero.
	if b.TX.At(3, 0) != 0 || b.TX.At(3, 1) != 0 {
		t.Error("padding row not zero")
	}
}

func TestBuildBatchErrors(t *testing.T) {
	if _, err := BuildBatch(nil, nil, 1, 1, 1); err == nil {
		t.Error("empty batch should error")
	}
	e := featurize.Encoded{TableVecs: [][]float64{{1}}, JoinVecs: [][]float64{{0}}, PredVecs: [][]float64{{0}}}
	if _, err := BuildBatch([]featurize.Encoded{e}, []float64{1, 2}, 1, 1, 1); err == nil {
		t.Error("label count mismatch should error")
	}
	if _, err := BuildBatch([]featurize.Encoded{e}, nil, 5, 1, 1); err == nil {
		t.Error("width mismatch should error")
	}
}

func TestForwardOutputsInUnitInterval(t *testing.T) {
	_, enc, examples, _ := testSetup(t, 30)
	m := New(Config{HiddenUnits: 16, Seed: 3}, enc.TableDim(), enc.JoinDim(), enc.PredDim())
	encs := make([]featurize.Encoded, len(examples))
	for i, ex := range examples {
		encs[i] = ex.Enc
	}
	preds, err := m.PredictAll(encs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range preds {
		if p <= 0 || p >= 1 || math.IsNaN(p) {
			t.Fatalf("pred %d = %v not in (0,1)", i, p)
		}
	}
}

func TestForwardPermutationInvariance(t *testing.T) {
	// MSCN treats queries as sets: permuting set elements must not change
	// the prediction (the core Deep Sets property).
	_, enc, examples, _ := testSetup(t, 40)
	m := New(Config{HiddenUnits: 16, Seed: 3}, enc.TableDim(), enc.JoinDim(), enc.PredDim())
	var tested int
	for _, ex := range examples {
		if len(ex.Enc.PredVecs) < 2 && len(ex.Enc.TableVecs) < 2 {
			continue
		}
		tested++
		p1, err := m.Predict(ex.Enc)
		if err != nil {
			t.Fatal(err)
		}
		rev := featurize.Encoded{
			TableVecs: reverse(ex.Enc.TableVecs),
			JoinVecs:  reverse(ex.Enc.JoinVecs),
			PredVecs:  reverse(ex.Enc.PredVecs),
		}
		p2, err := m.Predict(rev)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p1-p2) > 1e-12 {
			t.Fatalf("permutation changed prediction: %v vs %v", p1, p2)
		}
	}
	if tested == 0 {
		t.Skip("no multi-element queries in tiny workload")
	}
}

func reverse(v [][]float64) [][]float64 {
	out := make([][]float64, len(v))
	for i := range v {
		out[i] = v[len(v)-1-i]
	}
	return out
}

func TestBatchSizeIndependence(t *testing.T) {
	// Predictions must not depend on batch packing (padding + masks).
	_, enc, examples, _ := testSetup(t, 25)
	m := New(Config{HiddenUnits: 16, Seed: 9}, enc.TableDim(), enc.JoinDim(), enc.PredDim())
	encs := make([]featurize.Encoded, len(examples))
	for i, ex := range examples {
		encs[i] = ex.Enc
	}
	batched, err := m.PredictAll(encs)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range encs {
		single, err := m.Predict(e)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(single-batched[i]) > 1e-9 {
			t.Fatalf("query %d: single %v vs batched %v", i, single, batched[i])
		}
	}
}

func TestTrainingReducesValidationQError(t *testing.T) {
	_, enc, examples, norm := testSetup(t, 300)
	cfg := Config{HiddenUnits: 24, Epochs: 12, BatchSize: 32, Seed: 7, ValFrac: 0.15}
	m := New(cfg, enc.TableDim(), enc.JoinDim(), enc.PredDim())
	mon := trainmon.New()
	stats, err := m.Train(examples, norm, mon)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 12 {
		t.Fatalf("epochs run = %d", len(stats))
	}
	first, last := stats[0], stats[len(stats)-1]
	if !(last.ValMeanQ < first.ValMeanQ) {
		t.Errorf("validation q-error did not improve: %v -> %v", first.ValMeanQ, last.ValMeanQ)
	}
	if last.ValMedQ > 20 {
		t.Errorf("median validation q-error suspiciously high: %v", last.ValMedQ)
	}
	// Monitor saw every epoch.
	var epochEvents int
	for _, e := range mon.Events() {
		if e.Kind == trainmon.KindEpoch {
			epochEvents++
		}
	}
	if epochEvents != 12 {
		t.Errorf("monitor epoch events = %d", epochEvents)
	}
}

func TestTrainDeterminism(t *testing.T) {
	_, enc, examples, norm := testSetup(t, 80)
	cfg := Config{HiddenUnits: 8, Epochs: 3, BatchSize: 16, Seed: 5}
	m1 := New(cfg, enc.TableDim(), enc.JoinDim(), enc.PredDim())
	m2 := New(cfg, enc.TableDim(), enc.JoinDim(), enc.PredDim())
	if _, err := m1.Train(examples, norm, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Train(examples, norm, nil); err != nil {
		t.Fatal(err)
	}
	p1 := m1.Params()
	p2 := m2.Params()
	for i := range p1 {
		for j := range p1[i].Data {
			if p1[i].Data[j] != p2[i].Data[j] {
				t.Fatalf("weights diverged at param %d[%d]", i, j)
			}
		}
	}
}

func TestTrainEmptyErrors(t *testing.T) {
	m := New(Config{HiddenUnits: 4}, 3, 1, 2)
	if _, err := m.Train(nil, nn.LabelNorm{MinLog: 0, MaxLog: 1}, nil); err == nil {
		t.Error("empty training set should error")
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	_, enc, examples, norm := testSetup(t, 60)
	cfg := Config{HiddenUnits: 12, Epochs: 2, BatchSize: 16, Seed: 2}
	m := New(cfg, enc.TableDim(), enc.JoinDim(), enc.PredDim())
	if _, err := m.Train(examples, norm, nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteWeights(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := New(cfg, enc.TableDim(), enc.JoinDim(), enc.PredDim())
	if err := m2.ReadWeights(&buf); err != nil {
		t.Fatal(err)
	}
	for i, ex := range examples[:10] {
		a, err := m.Predict(ex.Enc)
		if err != nil {
			t.Fatal(err)
		}
		b, err := m2.Predict(ex.Enc)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("example %d: predictions differ after round trip: %v vs %v", i, a, b)
		}
	}
	// Mismatched architecture must fail.
	var buf2 bytes.Buffer
	if err := m.WriteWeights(&buf2); err != nil {
		t.Fatal(err)
	}
	wrong := New(Config{HiddenUnits: 13}, enc.TableDim(), enc.JoinDim(), enc.PredDim())
	if err := wrong.ReadWeights(&buf2); err == nil {
		t.Error("architecture mismatch should error")
	}
}

// TestMSCNGradCheck: end-to-end numeric gradient check through the full
// MSCN forward/backward (set modules, pooling, concat, output net, sigmoid,
// q-error loss).
func TestMSCNGradCheck(t *testing.T) {
	_, enc, examples, norm := testSetup(t, 6)
	m := New(Config{HiddenUnits: 6, Seed: 13}, enc.TableDim(), enc.JoinDim(), enc.PredDim())
	encs := make([]featurize.Encoded, 4)
	targets := make([]float64, 4)
	for i := 0; i < 4; i++ {
		encs[i] = examples[i].Enc
		targets[i] = norm.Normalize(examples[i].Card)
	}
	batch, err := BuildBatch(encs, targets, m.TDim, m.JDim, m.PDim)
	if err != nil {
		t.Fatal(err)
	}
	lossOf := func() float64 {
		preds := m.Forward(batch)
		l, _ := nn.Loss(nn.LossQError, norm, preds, batch.Y, 0)
		return l
	}
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	var tp tape
	preds := m.forward(batch, &tp)
	_, grad := nn.Loss(nn.LossQError, norm, preds, batch.Y, 0)
	m.backward(&tp, grad)

	const eps = 1e-6
	for _, p := range m.Params() {
		step := len(p.Data)/4 + 1
		for i := 0; i < len(p.Data); i += step {
			orig := p.Data[i]
			p.Data[i] = orig + eps
			up := lossOf()
			p.Data[i] = orig - eps
			down := lossOf()
			p.Data[i] = orig
			numeric := (up - down) / (2 * eps)
			analytic := p.Grad[i]
			denom := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
			if math.Abs(numeric-analytic)/denom > 5e-4 {
				t.Errorf("%s[%d]: analytic %v vs numeric %v", p.Name, i, analytic, numeric)
			}
		}
	}
}
