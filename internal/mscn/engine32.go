package mscn

import "deepsketch/internal/nn"

// Reduced-precision forwards for the packed Engine. The f64 weights stay
// the single source of truth; these paths read converted snapshots that are
// built once per weight generation (Model.WeightGen) — never per forward —
// and rebuilt automatically when a Refresh/Swap/ReadWeights replaces the
// weights. The pipeline mirrors Engine.Forward layer for layer; only the
// element type (and, for int8, per-layer dynamic activation quantization)
// differs. Output q-error deviation vs the f64 path is bounded by the
// equivalence tests in engine32_test.go and the JOB-light fixture gate.

// weights32 is a float32 snapshot of all eight layers, tagged with the
// weight generation it was converted from.
type weights32 struct {
	gen            uint64
	table1, table2 *nn.Linear32
	join1, join2   *nn.Linear32
	pred1, pred2   *nn.Linear32
	out1, out2     *nn.Linear32
}

// weights8 is the experimental int8 snapshot (per-layer symmetric weight
// scales), tagged like weights32.
type weights8 struct {
	gen            uint64
	table1, table2 *nn.Linear8
	join1, join2   *nn.Linear8
	pred1, pred2   *nn.Linear8
	out1, out2     *nn.Linear8
}

// snapshot32 returns the cached f32 snapshot for the current weight
// generation, converting the weights once under convMu on a miss. The
// double-checked load keeps the hot path to one atomic read.
func (e *Engine) snapshot32() *weights32 {
	gen := e.m.WeightGen()
	if s := e.w32.Load(); s != nil && s.gen == gen {
		return s
	}
	e.convMu.Lock()
	defer e.convMu.Unlock()
	if s := e.w32.Load(); s != nil && s.gen == gen {
		return s
	}
	m := e.m
	s := &weights32{
		gen:    gen,
		table1: nn.NewLinear32(m.table1), table2: nn.NewLinear32(m.table2),
		join1: nn.NewLinear32(m.join1), join2: nn.NewLinear32(m.join2),
		pred1: nn.NewLinear32(m.pred1), pred2: nn.NewLinear32(m.pred2),
		out1: nn.NewLinear32(m.out1), out2: nn.NewLinear32(m.out2),
	}
	e.w32.Store(s)
	return s
}

// snapshot8 mirrors snapshot32 for the int8 probe.
func (e *Engine) snapshot8() *weights8 {
	gen := e.m.WeightGen()
	if s := e.w8.Load(); s != nil && s.gen == gen {
		return s
	}
	e.convMu.Lock()
	defer e.convMu.Unlock()
	if s := e.w8.Load(); s != nil && s.gen == gen {
		return s
	}
	m := e.m
	s := &weights8{
		gen:    gen,
		table1: nn.NewLinear8(m.table1), table2: nn.NewLinear8(m.table2),
		join1: nn.NewLinear8(m.join1), join2: nn.NewLinear8(m.join2),
		pred1: nn.NewLinear8(m.pred1), pred2: nn.NewLinear8(m.pred2),
		out1: nn.NewLinear8(m.out1), out2: nn.NewLinear8(m.out2),
	}
	e.w8.Store(s)
	return s
}

// forward32 runs one packed forward pass in float32, writing normalized
// predictions into out[:pb.B]. Packed feature rows convert f64→f32 once on
// entry (each element touched once — negligible next to the GEMMs); the
// final b×1 activations convert back on exit. Same zero-steady-state-
// allocation property as Forward, on the scratch's Workspace32.
//
//deepsketch:zeroalloc
func (e *Engine) forward32(pb *PackedBatch, s *engineScratch, out []float64) {
	//deepsketch:ignore zeroalloc snapshot converts once per weight generation, then caches
	w := e.snapshot32()
	m := e.m
	h := m.Cfg.HiddenUnits
	b := pb.B
	nt, nj, np := pb.Rows()
	ws := &s.ws32
	ws.Reserve(nt*m.TDim + nj*m.JDim + np*m.PDim + (2*(nt+nj+np)+7*b)*h + b)

	tx := ws.Alloc(nt, m.TDim)
	nn.ConvertRows32(tx, pb.TX)
	th1 := ws.Alloc(nt, h)
	w.table1.ForwardFused(tx, th1, true)
	th2 := ws.Alloc(nt, h)
	w.table2.ForwardFused(th1, th2, true)
	tPool := ws.Alloc(b, h)
	nn.SegmentAvgPool32(th2, pb.TOff, tPool)

	jx := ws.Alloc(nj, m.JDim)
	nn.ConvertRows32(jx, pb.JX)
	jh1 := ws.Alloc(nj, h)
	w.join1.ForwardFused(jx, jh1, true)
	jh2 := ws.Alloc(nj, h)
	w.join2.ForwardFused(jh1, jh2, true)
	jPool := ws.Alloc(b, h)
	nn.SegmentAvgPool32(jh2, pb.JOff, jPool)

	px := ws.Alloc(np, m.PDim)
	nn.ConvertRows32(px, pb.PX)
	ph1 := ws.Alloc(np, h)
	w.pred1.ForwardFused(px, ph1, true)
	ph2 := ws.Alloc(np, h)
	w.pred2.ForwardFused(ph1, ph2, true)
	pPool := ws.Alloc(b, h)
	nn.SegmentAvgPool32(ph2, pb.POff, pPool)

	concat := ws.Alloc(b, 3*h)
	for bi := 0; bi < b; bi++ {
		dst := concat.Row(bi)
		copy(dst[:h], tPool.Row(bi))
		copy(dst[h:2*h], jPool.Row(bi))
		copy(dst[2*h:], pPool.Row(bi))
	}

	o1 := ws.Alloc(b, h)
	w.out1.ForwardFused(concat, o1, true)
	outM := ws.Alloc(b, 1)
	w.out2.ForwardFused(o1, outM, false)
	nn.SigmoidInPlace32(outM)
	for i := 0; i < b; i++ {
		out[i] = float64(outM.Data[i])
	}
}

// quant8 quantizes x into the scratch's reusable int8 buffer, returning the
// dequantization scale. The buffer is valid until the next quant8 call —
// the serial layer-by-layer forward consumes it immediately.
//
//deepsketch:zeroalloc
func (s *engineScratch) quant8(x nn.Matrix32) float32 {
	n := x.Rows * x.Cols
	if cap(s.xq) < n {
		//deepsketch:ignore zeroalloc amortized buffer growth; steady state never reallocates
		s.xq = make([]int8, n)
	}
	s.xq = s.xq[:n]
	return nn.QuantizeRows8(x, s.xq)
}

// forward8 runs the experimental int8 forward: activations re-quantize
// dynamically before every linear layer (one symmetric scale per matrix),
// weights come from the per-generation int8 snapshot, pooling and the final
// sigmoid stay float32.
//
//deepsketch:zeroalloc
func (e *Engine) forward8(pb *PackedBatch, s *engineScratch, out []float64) {
	//deepsketch:ignore zeroalloc snapshot converts once per weight generation, then caches
	w := e.snapshot8()
	m := e.m
	h := m.Cfg.HiddenUnits
	b := pb.B
	nt, nj, np := pb.Rows()
	ws := &s.ws32
	ws.Reserve(nt*m.TDim + nj*m.JDim + np*m.PDim + (2*(nt+nj+np)+7*b)*h + b)

	// quant8 may grow s.xq, so the scale must be computed before s.xq is
	// read for the call (Go evaluates arguments left to right).
	tx := ws.Alloc(nt, m.TDim)
	nn.ConvertRows32(tx, pb.TX)
	th1 := ws.Alloc(nt, h)
	sc := s.quant8(tx)
	w.table1.ForwardFused(s.xq, nt, sc, th1, true)
	th2 := ws.Alloc(nt, h)
	sc = s.quant8(th1)
	w.table2.ForwardFused(s.xq, nt, sc, th2, true)
	tPool := ws.Alloc(b, h)
	nn.SegmentAvgPool32(th2, pb.TOff, tPool)

	jx := ws.Alloc(nj, m.JDim)
	nn.ConvertRows32(jx, pb.JX)
	jh1 := ws.Alloc(nj, h)
	sc = s.quant8(jx)
	w.join1.ForwardFused(s.xq, nj, sc, jh1, true)
	jh2 := ws.Alloc(nj, h)
	sc = s.quant8(jh1)
	w.join2.ForwardFused(s.xq, nj, sc, jh2, true)
	jPool := ws.Alloc(b, h)
	nn.SegmentAvgPool32(jh2, pb.JOff, jPool)

	px := ws.Alloc(np, m.PDim)
	nn.ConvertRows32(px, pb.PX)
	ph1 := ws.Alloc(np, h)
	sc = s.quant8(px)
	w.pred1.ForwardFused(s.xq, np, sc, ph1, true)
	ph2 := ws.Alloc(np, h)
	sc = s.quant8(ph1)
	w.pred2.ForwardFused(s.xq, np, sc, ph2, true)
	pPool := ws.Alloc(b, h)
	nn.SegmentAvgPool32(ph2, pb.POff, pPool)

	concat := ws.Alloc(b, 3*h)
	for bi := 0; bi < b; bi++ {
		dst := concat.Row(bi)
		copy(dst[:h], tPool.Row(bi))
		copy(dst[h:2*h], jPool.Row(bi))
		copy(dst[2*h:], pPool.Row(bi))
	}

	o1 := ws.Alloc(b, h)
	sc = s.quant8(concat)
	w.out1.ForwardFused(s.xq, b, sc, o1, true)
	outM := ws.Alloc(b, 1)
	sc = s.quant8(o1)
	w.out2.ForwardFused(s.xq, b, sc, outM, false)
	nn.SigmoidInPlace32(outM)
	for i := 0; i < b; i++ {
		out[i] = float64(outM.Data[i])
	}
}
