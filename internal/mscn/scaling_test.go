package mscn

import (
	"os"
	"runtime"
	"sort"
	"testing"
	"time"
)

// TestTrainEpochScalingGate is the multi-core CI gate for data-parallel
// training: on a ≥4-core runner, one epoch at P=4 must be at least 1.5×
// faster than serial. The 1-core benchmark numbers in CHANGES.md cannot
// catch cross-shard scaling regressions, so CI runs this explicitly (see
// the train-scaling job). It only runs when DEEPSKETCH_SCALING_GATE is set:
// on developer laptops and the ordinary test job it is skipped, because the
// measurement needs idle cores to be meaningful.
func TestTrainEpochScalingGate(t *testing.T) {
	if os.Getenv("DEEPSKETCH_SCALING_GATE") == "" {
		t.Skip("set DEEPSKETCH_SCALING_GATE=1 to run the multi-core scaling gate")
	}
	if n := runtime.GOMAXPROCS(0); n < 4 {
		t.Fatalf("scaling gate needs a ≥4-core runner, have GOMAXPROCS=%d — fix the CI runner size", n)
	}

	examples, tdim, jdim, pdim, norm := benchExamples(t, 1024)
	epoch := func(p int) time.Duration {
		m := New(Config{HiddenUnits: 64, Epochs: 1, BatchSize: 128, Seed: 1}, tdim, jdim, pdim)
		start := time.Now()
		if _, err := m.TrainWithOptions(examples, norm, nil, TrainOptions{Parallelism: p}); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	// Warm up once per parallelism (page in, JIT-warm the scheduler), then
	// take the median of 3 runs to shrug off CI noise.
	median := func(p int) time.Duration {
		epoch(p)
		times := []time.Duration{epoch(p), epoch(p), epoch(p)}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[1]
	}
	serial := median(1)
	par := median(4)
	speedup := float64(serial) / float64(par)
	t.Logf("epoch serial %v, p=4 %v → %.2fx", serial, par, speedup)
	if speedup < 1.5 {
		t.Errorf("P=4 speedup %.2fx < 1.5x — cross-shard training scaling regressed", speedup)
	}
}
