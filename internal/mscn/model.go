// Package mscn implements the multi-set convolutional network of Kipf et
// al. ("Learned Cardinalities", CIDR 2019) that powers Deep Sketches. The
// model represents a query as three sets — tables, joins, and predicates —
// and, per the paper, "for each set, it has a separate module, comprised of
// one fully-connected multi-layer perceptron (MLP) per set element with
// shared parameters. We average module outputs, concatenate them, and feed
// them into a final output MLP, which captures correlations between sets
// and outputs a cardinality estimate."
//
// Both training and serving run on the packed ragged-batch representation:
// PackedBatch stores only valid set elements with CSR-style offsets, so a
// mixed-shape batch costs exactly its valid rows. Serving uses the Engine
// (fused Linear+ReLU kernels, segment pooling, pooled workspace arenas,
// zero steady-state allocations; concurrency-safe — workspaces are per-pass
// and never shared). Training is data-parallel over the same kernels: each
// minibatch is sharded contiguously across TrainOptions.Parallelism
// workers, every worker packs and backpropagates its shard with a private
// workspace arena and private gradient buffers (nn.BackwardFused,
// nn.SegmentAvgPoolBackward), per-step gradients reduce in fixed worker
// order, and one Adam step applies per minibatch — a fixed (seed,
// parallelism) pair therefore reproduces bitwise-identical weights. The
// padded, masked Batch with its tape-based forward/backward survives only
// as the reference implementation the packed-equivalence tests compare
// against.
package mscn

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"

	"deepsketch/internal/datagen"
	"deepsketch/internal/featurize"
	"deepsketch/internal/nn"
)

// Config holds the model and training hyperparameters users choose when
// defining a sketch (number of epochs is step 1 of Figure 1a).
type Config struct {
	// HiddenUnits is the width of every MLP layer. The original PyTorch
	// implementation uses 256; the default here is 64, which preserves the
	// result shape at a fraction of the CPU cost. Fully configurable.
	HiddenUnits int `json:"hidden_units"`
	// Epochs is the number of training epochs; the paper observes that "25
	// epochs are usually enough to achieve a reasonable mean q-error".
	Epochs int `json:"epochs"`
	// BatchSize is the mini-batch size.
	BatchSize int `json:"batch_size"`
	// LearningRate for Adam.
	LearningRate float64 `json:"learning_rate"`
	// Loss selects the training objective (default: mean q-error, as in the
	// paper).
	Loss nn.LossKind `json:"loss"`
	// ClipNorm bounds the global gradient norm (q-error gradients explode
	// early in training otherwise).
	ClipNorm float64 `json:"clip_norm"`
	// GradCap bounds the per-sample q-error loss gradient.
	GradCap float64 `json:"grad_cap"`
	// ValFrac is the fraction of training data held out for validation.
	ValFrac float64 `json:"val_frac"`
	// KeepBest, when set, restores the weights of the epoch with the best
	// validation mean q-error after training instead of keeping the final
	// epoch's weights. The paper trains for a fixed number of epochs; this
	// is an opt-in refinement.
	KeepBest bool `json:"keep_best,omitempty"`
	// Seed drives weight init and epoch shuffling.
	Seed int64 `json:"seed"`
}

// DefaultConfig returns the defaults described above.
func DefaultConfig() Config {
	return Config{
		HiddenUnits:  64,
		Epochs:       25,
		BatchSize:    64,
		LearningRate: 1e-3,
		Loss:         nn.LossQError,
		ClipNorm:     5,
		GradCap:      1e4,
		ValFrac:      0.1,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.HiddenUnits <= 0 {
		c.HiddenUnits = d.HiddenUnits
	}
	if c.Epochs <= 0 {
		c.Epochs = d.Epochs
	}
	if c.BatchSize <= 0 {
		c.BatchSize = d.BatchSize
	}
	if c.LearningRate <= 0 {
		c.LearningRate = d.LearningRate
	}
	if c.ClipNorm <= 0 {
		c.ClipNorm = d.ClipNorm
	}
	if c.GradCap <= 0 {
		c.GradCap = d.GradCap
	}
	if c.ValFrac <= 0 || c.ValFrac >= 1 {
		c.ValFrac = d.ValFrac
	}
	return c
}

// Model is the MSCN network: three two-layer set modules with shared
// per-element parameters, average pooling over each set, and a two-layer
// output network ending in a sigmoid. Training runs data-parallel on the
// packed representation (TrainWithOptions); inference runs on the packed
// ragged-batch Engine. The padded tape path (Batch, forward/backward) is
// kept as the test reference only.
type Model struct {
	Cfg  Config
	TDim int
	JDim int
	PDim int

	table1, table2 *nn.Linear
	join1, join2   *nn.Linear
	pred1, pred2   *nn.Linear
	out1, out2     *nn.Linear

	// optState is the Adam state exported after the last training run (nil
	// before any training, and for models loaded from v1 sketch files). It
	// is what TrainOptions.Resume consumes for warm-start fine-tuning.
	optState *nn.OptState

	// precision selects the engine's forward-pass numeric format
	// (Precision). The f64 weights remain the source of truth; reduced
	// precisions read converted snapshots keyed to weightGen.
	precision atomic.Uint32
	// weightGen counts wholesale weight replacements (ReadWeights, end of a
	// training run). The engine tags its reduced-precision snapshots with
	// the generation they were built at and rebuilds on mismatch, so a
	// Refresh/Swap can never serve a stale f32/int8 snapshot.
	weightGen atomic.Uint64

	engOnce sync.Once
	eng     *Engine
}

// Precision returns the engine forward-pass precision (default F64).
//
//deepsketch:zeroalloc
func (m *Model) Precision() Precision { return Precision(m.precision.Load()) }

// SetPrecision selects the engine forward-pass precision. Safe to call
// concurrently with serving; in-flight forwards finish on the precision
// they started with.
func (m *Model) SetPrecision(p Precision) { m.precision.Store(uint32(p)) }

// WeightGen returns the current weight generation. It increments on every
// wholesale weight replacement; reduced-precision snapshots are valid only
// for the generation they were converted from.
func (m *Model) WeightGen() uint64 { return m.weightGen.Load() }

// noteWeightsChanged invalidates reduced-precision weight snapshots. Every
// path that replaces the f64 weights wholesale must call it.
func (m *Model) noteWeightsChanged() { m.weightGen.Add(1) }

// OptState returns the optimizer state captured at the end of the last
// training run, or nil if the model has never been trained in this process
// and none was restored (e.g. a v1 sketch file). The returned value is the
// model's own copy; callers that mutate it must Clone first.
func (m *Model) OptState() *nn.OptState { return m.optState }

// SetOptState installs a previously captured optimizer state (used when
// deserializing a sketch). The model takes ownership of st.
func (m *Model) SetOptState(st *nn.OptState) { m.optState = st }

// Engine returns the model's shared packed inference engine, building it on
// first use. The engine reads the current weights, so it stays valid across
// ReadWeights; it must not run concurrently with training steps.
func (m *Model) Engine() *Engine {
	m.engOnce.Do(func() { m.eng = NewEngine(m) })
	return m.eng
}

// New builds an MSCN with freshly initialized weights for the given feature
// dimensions (from featurize.Encoder: TableDim, JoinDim, PredDim).
func New(cfg Config, tdim, jdim, pdim int) *Model {
	cfg = cfg.withDefaults()
	rng := datagen.NewRand(cfg.Seed ^ 0x35c9)
	h := cfg.HiddenUnits
	return &Model{
		Cfg: cfg, TDim: tdim, JDim: jdim, PDim: pdim,
		table1: nn.NewLinear("table1", tdim, h, rng),
		table2: nn.NewLinear("table2", h, h, rng),
		join1:  nn.NewLinear("join1", jdim, h, rng),
		join2:  nn.NewLinear("join2", h, h, rng),
		pred1:  nn.NewLinear("pred1", pdim, h, rng),
		pred2:  nn.NewLinear("pred2", h, h, rng),
		out1:   nn.NewLinear("out1", 3*h, h, rng),
		out2:   nn.NewLinear("out2", h, 1, rng),
	}
}

// Clone returns a deep copy of the model: same architecture and config,
// copied weights and optimizer state, its own (lazily built) inference
// engine. Refreshes fine-tune a clone so the live model keeps serving
// untouched until the lifecycle swap.
func (m *Model) Clone() *Model {
	nm := New(m.Cfg, m.TDim, m.JDim, m.PDim)
	src := m.Params()
	dst := nm.Params()
	for i, p := range src {
		copy(dst[i].Data, p.Data)
	}
	nm.optState = m.optState.Clone()
	nm.SetPrecision(m.Precision())
	return nm
}

// Params returns all learnable parameters in a fixed order (the
// serialization contract).
func (m *Model) Params() []*nn.Param {
	var ps []*nn.Param
	for _, l := range []*nn.Linear{m.table1, m.table2, m.join1, m.join2, m.pred1, m.pred2, m.out1, m.out2} {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// NumParams returns the total number of learnable scalars.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.Data)
	}
	return n
}

// WriteWeights serializes the weights (architecture metadata is the caller's
// responsibility — sketches store Config and dims in their JSON header).
func (m *Model) WriteWeights(w io.Writer) error { return nn.WriteParams(w, m.Params()) }

// ReadWeights restores weights written by WriteWeights into this
// architecture; dimensions must match. It bumps the weight generation so
// any cached reduced-precision snapshot is rebuilt before the next use.
func (m *Model) ReadWeights(r io.Reader) error {
	err := nn.ReadParams(r, m.Params())
	m.noteWeightsChanged()
	return err
}

// Batch is a padded, masked mini-batch of featurized queries — the
// reference representation for the packed-equivalence tests; production
// training and serving both run on PackedBatch.
type Batch struct {
	B                int
	MaxT, MaxJ, MaxP int
	TX, JX, PX       nn.Matrix
	TMask            []float64
	JMask            []float64
	PMask            []float64
	// Y holds normalized labels; nil for inference batches.
	Y []float64
}

// BuildBatch packs featurized queries into padded set tensors. ys may be
// nil. All Encoded values must come from the same encoder (equal widths).
func BuildBatch(encs []featurize.Encoded, ys []float64, tdim, jdim, pdim int) (*Batch, error) {
	b := &Batch{}
	if err := b.build(encs, ys, tdim, jdim, pdim); err != nil {
		return nil, err
	}
	return b, nil
}

// build (re)fills b from encs, reusing buffers from a previous build when
// their capacity suffices — the training loop's allocation saver.
func (b *Batch) build(encs []featurize.Encoded, ys []float64, tdim, jdim, pdim int) error {
	if len(encs) == 0 {
		return fmt.Errorf("mscn: empty batch")
	}
	if ys != nil && len(ys) != len(encs) {
		return fmt.Errorf("mscn: %d labels for %d queries", len(ys), len(encs))
	}
	b.B, b.MaxT, b.MaxJ, b.MaxP = len(encs), 1, 1, 1
	for _, e := range encs {
		if len(e.TableVecs) > b.MaxT {
			b.MaxT = len(e.TableVecs)
		}
		if len(e.JoinVecs) > b.MaxJ {
			b.MaxJ = len(e.JoinVecs)
		}
		if len(e.PredVecs) > b.MaxP {
			b.MaxP = len(e.PredVecs)
		}
	}
	b.TX.Reshape(b.B*b.MaxT, tdim)
	b.TX.Zero()
	b.JX.Reshape(b.B*b.MaxJ, jdim)
	b.JX.Zero()
	b.PX.Reshape(b.B*b.MaxP, pdim)
	b.PX.Zero()
	b.TMask = ensureZeroed(b.TMask, b.B*b.MaxT)
	b.JMask = ensureZeroed(b.JMask, b.B*b.MaxJ)
	b.PMask = ensureZeroed(b.PMask, b.B*b.MaxP)
	fill := func(x nn.Matrix, mask []float64, vecs [][]float64, bi, s, dim int) error {
		for i, v := range vecs {
			if len(v) != dim {
				return fmt.Errorf("mscn: element width %d, model expects %d", len(v), dim)
			}
			copy(x.Row(bi*s+i), v)
			mask[bi*s+i] = 1
		}
		return nil
	}
	for i, e := range encs {
		if err := fill(b.TX, b.TMask, e.TableVecs, i, b.MaxT, tdim); err != nil {
			return err
		}
		if err := fill(b.JX, b.JMask, e.JoinVecs, i, b.MaxJ, jdim); err != nil {
			return err
		}
		if err := fill(b.PX, b.PMask, e.PredVecs, i, b.MaxP, pdim); err != nil {
			return err
		}
	}
	if ys != nil {
		b.Y = append(b.Y[:0], ys...)
	} else {
		b.Y = nil
	}
	return nil
}

// ensureZeroed returns a zeroed length-n slice, reusing s's backing array
// when possible.
func ensureZeroed(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// tape stores forward intermediates for backprop, plus the backward scratch.
// A tape is reusable across mini-batches: forward/backward Reshape every
// matrix to the batch at hand, so steady-state training allocates nothing
// per step beyond what shape growth demands.
type tape struct {
	b *Batch
	// per set module: hidden activations a1, a2 (post-ReLU) and pooled
	tA1, tA2, tPool nn.Matrix
	jA1, jA2, jPool nn.Matrix
	pA1, pA2, pPool nn.Matrix
	concat          nn.Matrix
	oA1             nn.Matrix
	out             nn.Matrix // sigmoid output, B×1
	preds           []float64
	// backward scratch, reused across set modules
	dOut, dOA1, dConcat nn.Matrix
	dPool, dA2, dA1     nn.Matrix
}

// setForwardInto runs one set module — two shared-parameter linear+ReLU
// layers per element followed by masked average pooling — into reusable
// tape matrices.
func setForwardInto(l1, l2 *nn.Linear, x nn.Matrix, mask []float64, b, s, h int, a1, a2, pool *nn.Matrix) {
	a1.Reshape(x.Rows, h)
	l1.ForwardInto(x, *a1, true)
	a2.Reshape(x.Rows, h)
	l2.ForwardInto(*a1, *a2, true)
	pool.Reshape(b, h)
	nn.MaskedAvgPoolInto(*a2, mask, b, s, *pool)
}

// setBackward backpropagates through one set module, accumulating parameter
// gradients in-place on the tape's shared scratch. The input gradient of the
// first layer is never computed — features need no gradients.
func setBackward(l1, l2 *nn.Linear, x, a1, a2 nn.Matrix, mask []float64, dPool nn.Matrix, b, s int, tp *tape) {
	tp.dA2.Reshape(b*s, dPool.Cols)
	nn.MaskedAvgPoolBackwardInto(dPool, mask, b, s, tp.dA2)
	nn.ReLUBackwardInPlace(a2, tp.dA2)
	tp.dA1.Reshape(b*s, a1.Cols)
	l2.BackwardInto(a1, tp.dA2, &tp.dA1)
	nn.ReLUBackwardInPlace(a1, tp.dA1)
	l1.BackwardInto(x, tp.dA1, nil)
}

// Forward computes normalized predictions in (0,1) for a padded batch —
// the reference padded implementation, used by the packed-equivalence tests
// and anyone needing predictions without the engine. The serving path is
// Engine.Forward (packed, tape-free, allocation-free); this path runs the
// training kernels on a throwaway tape, so the returned slice is freshly
// owned by the caller.
func (m *Model) Forward(b *Batch) []float64 {
	var tp tape
	return m.forward(b, &tp)
}

// forward runs the training forward pass, recording intermediates on tp
// (whose buffers it reuses across calls). The returned predictions alias
// tp and are valid until the next forward on the same tape.
func (m *Model) forward(b *Batch, tp *tape) []float64 {
	h := m.Cfg.HiddenUnits
	tp.b = b
	setForwardInto(m.table1, m.table2, b.TX, b.TMask, b.B, b.MaxT, h, &tp.tA1, &tp.tA2, &tp.tPool)
	setForwardInto(m.join1, m.join2, b.JX, b.JMask, b.B, b.MaxJ, h, &tp.jA1, &tp.jA2, &tp.jPool)
	setForwardInto(m.pred1, m.pred2, b.PX, b.PMask, b.B, b.MaxP, h, &tp.pA1, &tp.pA2, &tp.pPool)
	tp.concat.Reshape(b.B, 3*h)
	for bi := 0; bi < b.B; bi++ {
		dst := tp.concat.Row(bi)
		copy(dst[:h], tp.tPool.Row(bi))
		copy(dst[h:2*h], tp.jPool.Row(bi))
		copy(dst[2*h:], tp.pPool.Row(bi))
	}
	tp.oA1.Reshape(b.B, h)
	m.out1.ForwardInto(tp.concat, tp.oA1, true)
	tp.out.Reshape(b.B, 1)
	m.out2.ForwardInto(tp.oA1, tp.out, false)
	nn.SigmoidInPlace(tp.out)
	if cap(tp.preds) < b.B {
		tp.preds = make([]float64, b.B)
	}
	tp.preds = tp.preds[:b.B]
	copy(tp.preds, tp.out.Data)
	return tp.preds
}

func (m *Model) backward(tp *tape, dPreds []float64) {
	b := tp.b
	h := m.Cfg.HiddenUnits
	tp.dOut.Reshape(b.B, 1)
	copy(tp.dOut.Data, dPreds)
	nn.SigmoidBackwardInPlace(tp.out, tp.dOut)
	tp.dOA1.Reshape(b.B, h)
	m.out2.BackwardInto(tp.oA1, tp.dOut, &tp.dOA1)
	nn.ReLUBackwardInPlace(tp.oA1, tp.dOA1)
	tp.dConcat.Reshape(b.B, 3*h)
	m.out1.BackwardInto(tp.concat, tp.dOA1, &tp.dConcat)
	for mod := 0; mod < 3; mod++ {
		tp.dPool.Reshape(b.B, h)
		off := mod * h
		for bi := 0; bi < b.B; bi++ {
			copy(tp.dPool.Row(bi), tp.dConcat.Row(bi)[off:off+h])
		}
		switch mod {
		case 0:
			setBackward(m.table1, m.table2, b.TX, tp.tA1, tp.tA2, b.TMask, tp.dPool, b.B, b.MaxT, tp)
		case 1:
			setBackward(m.join1, m.join2, b.JX, tp.jA1, tp.jA2, b.JMask, tp.dPool, b.B, b.MaxJ, tp)
		case 2:
			setBackward(m.pred1, m.pred2, b.PX, tp.pA1, tp.pA2, b.PMask, tp.dPool, b.B, b.MaxP, tp)
		}
	}
}

// shuffle produces a deterministic permutation for one epoch.
func shuffle(rng *rand.Rand, n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm
}
