// Package mscn implements the multi-set convolutional network of Kipf et
// al. ("Learned Cardinalities", CIDR 2019) that powers Deep Sketches. The
// model represents a query as three sets — tables, joins, and predicates —
// and, per the paper, "for each set, it has a separate module, comprised of
// one fully-connected multi-layer perceptron (MLP) per set element with
// shared parameters. We average module outputs, concatenate them, and feed
// them into a final output MLP, which captures correlations between sets
// and outputs a cardinality estimate."
package mscn

import (
	"fmt"
	"io"
	"math/rand"

	"deepsketch/internal/datagen"
	"deepsketch/internal/featurize"
	"deepsketch/internal/nn"
)

// Config holds the model and training hyperparameters users choose when
// defining a sketch (number of epochs is step 1 of Figure 1a).
type Config struct {
	// HiddenUnits is the width of every MLP layer. The original PyTorch
	// implementation uses 256; the default here is 64, which preserves the
	// result shape at a fraction of the CPU cost. Fully configurable.
	HiddenUnits int `json:"hidden_units"`
	// Epochs is the number of training epochs; the paper observes that "25
	// epochs are usually enough to achieve a reasonable mean q-error".
	Epochs int `json:"epochs"`
	// BatchSize is the mini-batch size.
	BatchSize int `json:"batch_size"`
	// LearningRate for Adam.
	LearningRate float64 `json:"learning_rate"`
	// Loss selects the training objective (default: mean q-error, as in the
	// paper).
	Loss nn.LossKind `json:"loss"`
	// ClipNorm bounds the global gradient norm (q-error gradients explode
	// early in training otherwise).
	ClipNorm float64 `json:"clip_norm"`
	// GradCap bounds the per-sample q-error loss gradient.
	GradCap float64 `json:"grad_cap"`
	// ValFrac is the fraction of training data held out for validation.
	ValFrac float64 `json:"val_frac"`
	// KeepBest, when set, restores the weights of the epoch with the best
	// validation mean q-error after training instead of keeping the final
	// epoch's weights. The paper trains for a fixed number of epochs; this
	// is an opt-in refinement.
	KeepBest bool `json:"keep_best,omitempty"`
	// Seed drives weight init and epoch shuffling.
	Seed int64 `json:"seed"`
}

// DefaultConfig returns the defaults described above.
func DefaultConfig() Config {
	return Config{
		HiddenUnits:  64,
		Epochs:       25,
		BatchSize:    64,
		LearningRate: 1e-3,
		Loss:         nn.LossQError,
		ClipNorm:     5,
		GradCap:      1e4,
		ValFrac:      0.1,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.HiddenUnits <= 0 {
		c.HiddenUnits = d.HiddenUnits
	}
	if c.Epochs <= 0 {
		c.Epochs = d.Epochs
	}
	if c.BatchSize <= 0 {
		c.BatchSize = d.BatchSize
	}
	if c.LearningRate <= 0 {
		c.LearningRate = d.LearningRate
	}
	if c.ClipNorm <= 0 {
		c.ClipNorm = d.ClipNorm
	}
	if c.GradCap <= 0 {
		c.GradCap = d.GradCap
	}
	if c.ValFrac <= 0 || c.ValFrac >= 1 {
		c.ValFrac = d.ValFrac
	}
	return c
}

// Model is the MSCN network: three two-layer set modules with shared
// per-element parameters, masked average pooling, and a two-layer output
// network ending in a sigmoid.
type Model struct {
	Cfg  Config
	TDim int
	JDim int
	PDim int

	table1, table2 *nn.Linear
	join1, join2   *nn.Linear
	pred1, pred2   *nn.Linear
	out1, out2     *nn.Linear
}

// New builds an MSCN with freshly initialized weights for the given feature
// dimensions (from featurize.Encoder: TableDim, JoinDim, PredDim).
func New(cfg Config, tdim, jdim, pdim int) *Model {
	cfg = cfg.withDefaults()
	rng := datagen.NewRand(cfg.Seed ^ 0x35c9)
	h := cfg.HiddenUnits
	return &Model{
		Cfg: cfg, TDim: tdim, JDim: jdim, PDim: pdim,
		table1: nn.NewLinear("table1", tdim, h, rng),
		table2: nn.NewLinear("table2", h, h, rng),
		join1:  nn.NewLinear("join1", jdim, h, rng),
		join2:  nn.NewLinear("join2", h, h, rng),
		pred1:  nn.NewLinear("pred1", pdim, h, rng),
		pred2:  nn.NewLinear("pred2", h, h, rng),
		out1:   nn.NewLinear("out1", 3*h, h, rng),
		out2:   nn.NewLinear("out2", h, 1, rng),
	}
}

// Params returns all learnable parameters in a fixed order (the
// serialization contract).
func (m *Model) Params() []*nn.Param {
	var ps []*nn.Param
	for _, l := range []*nn.Linear{m.table1, m.table2, m.join1, m.join2, m.pred1, m.pred2, m.out1, m.out2} {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// NumParams returns the total number of learnable scalars.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.Data)
	}
	return n
}

// WriteWeights serializes the weights (architecture metadata is the caller's
// responsibility — sketches store Config and dims in their JSON header).
func (m *Model) WriteWeights(w io.Writer) error { return nn.WriteParams(w, m.Params()) }

// ReadWeights restores weights written by WriteWeights into this
// architecture; dimensions must match.
func (m *Model) ReadWeights(r io.Reader) error { return nn.ReadParams(r, m.Params()) }

// Batch is a padded, masked mini-batch of featurized queries.
type Batch struct {
	B                int
	MaxT, MaxJ, MaxP int
	TX, JX, PX       nn.Matrix
	TMask            []float64
	JMask            []float64
	PMask            []float64
	// Y holds normalized labels; nil for inference batches.
	Y []float64
}

// BuildBatch packs featurized queries into padded set tensors. ys may be
// nil. All Encoded values must come from the same encoder (equal widths).
func BuildBatch(encs []featurize.Encoded, ys []float64, tdim, jdim, pdim int) (*Batch, error) {
	if len(encs) == 0 {
		return nil, fmt.Errorf("mscn: empty batch")
	}
	if ys != nil && len(ys) != len(encs) {
		return nil, fmt.Errorf("mscn: %d labels for %d queries", len(ys), len(encs))
	}
	b := &Batch{B: len(encs), MaxT: 1, MaxJ: 1, MaxP: 1}
	for _, e := range encs {
		if len(e.TableVecs) > b.MaxT {
			b.MaxT = len(e.TableVecs)
		}
		if len(e.JoinVecs) > b.MaxJ {
			b.MaxJ = len(e.JoinVecs)
		}
		if len(e.PredVecs) > b.MaxP {
			b.MaxP = len(e.PredVecs)
		}
	}
	b.TX = nn.NewMatrix(b.B*b.MaxT, tdim)
	b.JX = nn.NewMatrix(b.B*b.MaxJ, jdim)
	b.PX = nn.NewMatrix(b.B*b.MaxP, pdim)
	b.TMask = make([]float64, b.B*b.MaxT)
	b.JMask = make([]float64, b.B*b.MaxJ)
	b.PMask = make([]float64, b.B*b.MaxP)
	fill := func(x nn.Matrix, mask []float64, vecs [][]float64, bi, s, dim int) error {
		for i, v := range vecs {
			if len(v) != dim {
				return fmt.Errorf("mscn: element width %d, model expects %d", len(v), dim)
			}
			copy(x.Row(bi*s+i), v)
			mask[bi*s+i] = 1
		}
		return nil
	}
	for i, e := range encs {
		if err := fill(b.TX, b.TMask, e.TableVecs, i, b.MaxT, tdim); err != nil {
			return nil, err
		}
		if err := fill(b.JX, b.JMask, e.JoinVecs, i, b.MaxJ, jdim); err != nil {
			return nil, err
		}
		if err := fill(b.PX, b.PMask, e.PredVecs, i, b.MaxP, pdim); err != nil {
			return nil, err
		}
	}
	if ys != nil {
		b.Y = make([]float64, len(ys))
		copy(b.Y, ys)
	}
	return b, nil
}

// tape stores forward intermediates for backprop.
type tape struct {
	b *Batch
	// per set module: input x, hidden activations a1, a2, pooled
	tA1, tA2, tPool nn.Matrix
	jA1, jA2, jPool nn.Matrix
	pA1, pA2, pPool nn.Matrix
	concat          nn.Matrix
	oA1             nn.Matrix
	out             nn.Matrix // sigmoid output, B×1
}

// setForward runs one set module: two shared-parameter linear+ReLU layers
// per element followed by masked average pooling.
func setForward(l1, l2 *nn.Linear, x nn.Matrix, mask []float64, b, s int) (a1, a2, pool nn.Matrix) {
	a1 = nn.ReLU(l1.Forward(x))
	a2 = nn.ReLU(l2.Forward(a1))
	pool = nn.MaskedAvgPool(a2, mask, b, s)
	return a1, a2, pool
}

// setBackward backpropagates through one set module, accumulating parameter
// gradients.
func setBackward(l1, l2 *nn.Linear, x, a1, a2 nn.Matrix, mask []float64, dPool nn.Matrix, b, s int) {
	dA2 := nn.MaskedAvgPoolBackward(dPool, mask, b, s)
	dH2 := nn.ReLUBackward(a2, dA2)
	dA1 := l2.Backward(a1, dH2)
	dH1 := nn.ReLUBackward(a1, dA1)
	l1.Backward(x, dH1)
}

// Forward computes normalized predictions in (0,1) for a batch.
func (m *Model) Forward(b *Batch) []float64 {
	preds, _ := m.forward(b)
	return preds
}

func (m *Model) forward(b *Batch) ([]float64, *tape) {
	tp := &tape{b: b}
	tp.tA1, tp.tA2, tp.tPool = setForward(m.table1, m.table2, b.TX, b.TMask, b.B, b.MaxT)
	tp.jA1, tp.jA2, tp.jPool = setForward(m.join1, m.join2, b.JX, b.JMask, b.B, b.MaxJ)
	tp.pA1, tp.pA2, tp.pPool = setForward(m.pred1, m.pred2, b.PX, b.PMask, b.B, b.MaxP)
	tp.concat = nn.Concat(tp.tPool, tp.jPool, tp.pPool)
	tp.oA1 = nn.ReLU(m.out1.Forward(tp.concat))
	tp.out = nn.Sigmoid(m.out2.Forward(tp.oA1))
	preds := make([]float64, b.B)
	copy(preds, tp.out.Data)
	return preds, tp
}

func (m *Model) backward(tp *tape, dPreds []float64) {
	b := tp.b
	dOut := nn.NewMatrix(b.B, 1)
	copy(dOut.Data, dPreds)
	dO2 := nn.SigmoidBackward(tp.out, dOut)
	dOA1 := m.out2.Backward(tp.oA1, dO2)
	dOH1 := nn.ReLUBackward(tp.oA1, dOA1)
	dConcat := m.out1.Backward(tp.concat, dOH1)
	h := m.Cfg.HiddenUnits
	parts := nn.SplitCols(dConcat, h, h, h)
	setBackward(m.table1, m.table2, b.TX, tp.tA1, tp.tA2, b.TMask, parts[0], b.B, b.MaxT)
	setBackward(m.join1, m.join2, b.JX, tp.jA1, tp.jA2, b.JMask, parts[1], b.B, b.MaxJ)
	setBackward(m.pred1, m.pred2, b.PX, tp.pA1, tp.pA2, b.PMask, parts[2], b.B, b.MaxP)
}

// shuffle produces a deterministic permutation for one epoch.
func shuffle(rng *rand.Rand, n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm
}
