package mscn

import (
	"math"
	"math/rand"
	"testing"
)

// requireBitwiseEqual compares two trained models' weights and optimizer
// states bitwise — the pipelined-validation contract.
func requireBitwiseEqual(t *testing.T, a, b *Model) {
	t.Helper()
	aw, bw := weightsOf(a), weightsOf(b)
	for i := range aw {
		for j := range aw[i] {
			if aw[i][j] != bw[i][j] {
				t.Fatalf("param %d[%d]: %v vs %v — pipelined validation must be bitwise identical",
					i, j, aw[i][j], bw[i][j])
			}
		}
	}
	ao, bo := a.OptState(), b.OptState()
	if (ao == nil) != (bo == nil) {
		t.Fatalf("opt state presence differs: %v vs %v", ao != nil, bo != nil)
	}
	if ao == nil {
		return
	}
	if ao.Step != bo.Step {
		t.Fatalf("opt step %d vs %d", ao.Step, bo.Step)
	}
	for i := range ao.M {
		for j := range ao.M[i] {
			if ao.M[i][j] != bo.M[i][j] || ao.V[i][j] != bo.V[i][j] {
				t.Fatalf("opt moment %d[%d] differs", i, j)
			}
		}
	}
}

// requireSameValStats checks the per-epoch validation metrics agree — the
// pipelined schedule reads boundary snapshots, so it must see the exact
// values the serial schedule computes.
func requireSameValStats(t *testing.T, serial, pipelined []EpochStats) {
	t.Helper()
	if len(serial) != len(pipelined) {
		t.Fatalf("epoch count %d vs %d", len(serial), len(pipelined))
	}
	for i := range serial {
		if serial[i].ValMeanQ != pipelined[i].ValMeanQ || serial[i].ValMedQ != pipelined[i].ValMedQ {
			t.Fatalf("epoch %d val metrics: serial (%v, %v) vs pipelined (%v, %v)", i+1,
				serial[i].ValMeanQ, serial[i].ValMedQ, pipelined[i].ValMeanQ, pipelined[i].ValMedQ)
		}
		if serial[i].TrainLoss != pipelined[i].TrainLoss {
			t.Fatalf("epoch %d train loss: %v vs %v", i+1, serial[i].TrainLoss, pipelined[i].TrainLoss)
		}
	}
}

// TestPipelineValKeepBestBitwise: with KeepBest over a fixed epoch budget,
// overlapping validation with the next epoch must restore exactly the
// weights the serial schedule restores.
func TestPipelineValKeepBestBitwise(t *testing.T) {
	const tdim, jdim, pdim = 19, 4, 7
	rng := rand.New(rand.NewSource(81))
	examples, norm := trainExamples(rng, 80, tdim, jdim, pdim)
	cfg := Config{HiddenUnits: 12, Epochs: 4, BatchSize: 16, Seed: 13, KeepBest: true, ValFrac: 0.2}

	serial := New(cfg, tdim, jdim, pdim)
	serialStats, err := serial.TrainWithOptions(examples, norm, nil, TrainOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	piped := New(cfg, tdim, jdim, pdim)
	pipedStats, err := piped.TrainWithOptions(examples, norm, nil, TrainOptions{Parallelism: 2, PipelineVal: true})
	if err != nil {
		t.Fatal(err)
	}
	requireSameValStats(t, serialStats, pipedStats)
	requireBitwiseEqual(t, serial, piped)
}

// TestPipelineValEarlyStopBitwise: a StopAtValQ trigger must leave the
// pipelined run exactly where the serial run stops — same epoch count, same
// weights, same optimizer state — even though the pipelined schedule has
// already trained one speculative epoch past the boundary.
func TestPipelineValEarlyStopBitwise(t *testing.T) {
	const tdim, jdim, pdim = 17, 4, 6
	rng := rand.New(rand.NewSource(82))
	examples, norm := trainExamples(rng, 80, tdim, jdim, pdim)
	cfg := Config{HiddenUnits: 12, Epochs: 6, BatchSize: 16, Seed: 17, ValFrac: 0.2}

	// Probe run: find a threshold that triggers strictly before the last
	// epoch, so the pipelined run must roll back a speculative epoch.
	probe := New(cfg, tdim, jdim, pdim)
	probeStats, err := probe.TrainWithOptions(examples, norm, nil, TrainOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(probeStats) < 3 {
		t.Fatalf("probe ran %d epochs, need ≥3", len(probeStats))
	}
	thr := probeStats[1].ValMeanQ // triggers at epoch ≤ 2 of 6
	if math.IsNaN(thr) || thr <= 0 {
		t.Fatalf("probe epoch-2 val mean q %v unusable as threshold", thr)
	}

	opts := TrainOptions{Parallelism: 1, StopAtValQ: thr}
	serial := New(cfg, tdim, jdim, pdim)
	serialStats, err := serial.TrainWithOptions(examples, norm, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(serialStats) >= len(probeStats) {
		t.Fatalf("early stop did not trigger before the epoch budget (%d epochs)", len(serialStats))
	}
	opts.PipelineVal = true
	piped := New(cfg, tdim, jdim, pdim)
	pipedStats, err := piped.TrainWithOptions(examples, norm, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSameValStats(t, serialStats, pipedStats)
	requireBitwiseEqual(t, serial, piped)

	// The restored boundary state must be a valid warm start: resuming from
	// both models must keep producing identical weights.
	resume := func(m *Model) *Model {
		if _, err := m.TrainWithOptions(examples, norm, nil, TrainOptions{Parallelism: 1, Epochs: 1, Resume: m.OptState()}); err != nil {
			t.Fatal(err)
		}
		return m
	}
	requireBitwiseEqual(t, resume(serial), resume(piped))
}

// TestPipelineValNoVal: PipelineVal with no validation split must degrade
// to the plain schedule instead of deadlocking or skipping epochs.
func TestPipelineValNoVal(t *testing.T) {
	const tdim, jdim, pdim = 11, 3, 5
	rng := rand.New(rand.NewSource(83))
	examples, norm := trainExamples(rng, 12, tdim, jdim, pdim)
	// 12 examples at ValFrac 0.01 → nVal = 0: no split.
	cfg := Config{HiddenUnits: 8, Epochs: 2, BatchSize: 8, Seed: 3, ValFrac: 0.01}
	a := New(cfg, tdim, jdim, pdim)
	if _, err := a.TrainWithOptions(examples, norm, nil, TrainOptions{Parallelism: 1, PipelineVal: true}); err != nil {
		t.Fatal(err)
	}
	b := New(cfg, tdim, jdim, pdim)
	if _, err := b.TrainWithOptions(examples, norm, nil, TrainOptions{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	requireBitwiseEqual(t, a, b)
}
