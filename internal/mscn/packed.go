package mscn

import (
	"fmt"

	"deepsketch/internal/featurize"
	"deepsketch/internal/nn"
)

// PackedBatch is the padding-free inference representation of a featurized
// query batch. Where Batch pads every set to the batch maximum and masks the
// holes, PackedBatch stores only the valid set elements, contiguously, with
// CSR-style per-query offsets: query i's table vectors occupy rows
// TOff[i]..TOff[i+1] of TX (likewise joins in JX and predicates in PX). A
// mixed-shape batch therefore costs exactly its valid rows — queries of any
// shapes can share one forward pass with no padding waste.
//
// A PackedBatch is reusable: Build grows the backing buffers once and then
// rebuilds in place without allocating. It may be read concurrently after
// building but must not be rebuilt while a forward pass reads it.
type PackedBatch struct {
	B                int
	TX, JX, PX       nn.Matrix
	TOff, JOff, POff []int
}

// BuildPackedBatch packs featurized queries for inference. All Encoded
// values must come from the same encoder (equal widths).
func BuildPackedBatch(encs []featurize.Encoded, tdim, jdim, pdim int) (*PackedBatch, error) {
	pb := &PackedBatch{}
	if err := pb.Build(encs, tdim, jdim, pdim); err != nil {
		return nil, err
	}
	return pb, nil
}

// Build (re)packs encs into pb, reusing the backing buffers from previous
// builds when their capacity suffices.
func (pb *PackedBatch) Build(encs []featurize.Encoded, tdim, jdim, pdim int) error {
	if len(encs) == 0 {
		return fmt.Errorf("mscn: empty batch")
	}
	b := len(encs)
	var nt, nj, np int
	for _, e := range encs {
		nt += len(e.TableVecs)
		nj += len(e.JoinVecs)
		np += len(e.PredVecs)
	}
	pb.B = b
	pb.TX.Reshape(nt, tdim)
	pb.JX.Reshape(nj, jdim)
	pb.PX.Reshape(np, pdim)
	pb.TOff = ensureInts(pb.TOff, b+1)
	pb.JOff = ensureInts(pb.JOff, b+1)
	pb.POff = ensureInts(pb.POff, b+1)
	var tr, jr, pr int
	for i, e := range encs {
		pb.TOff[i], pb.JOff[i], pb.POff[i] = tr, jr, pr
		var err error
		if tr, err = packVecs(pb.TX, tr, e.TableVecs, tdim); err != nil {
			return err
		}
		if jr, err = packVecs(pb.JX, jr, e.JoinVecs, jdim); err != nil {
			return err
		}
		if pr, err = packVecs(pb.PX, pr, e.PredVecs, pdim); err != nil {
			return err
		}
	}
	pb.TOff[b], pb.JOff[b], pb.POff[b] = tr, jr, pr
	return nil
}

// Rows returns the packed row counts (tables, joins, predicates) — the
// actual work a forward pass over this batch performs.
//
//deepsketch:zeroalloc
func (pb *PackedBatch) Rows() (nt, nj, np int) {
	return pb.TX.Rows, pb.JX.Rows, pb.PX.Rows
}

// BuildFrom (re)packs queries lo..hi of a QuerySource into pb, letting the
// source featurize directly into the packed rows — no intermediate
// per-query vectors. Buffers are reused as in Build. The source's RowCounts
// contract is enforced: consuming a different number of rows than promised
// is an error.
func (pb *PackedBatch) BuildFrom(src QuerySource, lo, hi, tdim, jdim, pdim int) error {
	b := hi - lo
	if b <= 0 {
		return fmt.Errorf("mscn: empty batch")
	}
	var nt, nj, np int
	for i := lo; i < hi; i++ {
		t, j, p := src.RowCounts(i)
		nt += t
		nj += j
		np += p
	}
	pb.B = b
	pb.TX.Reshape(nt, tdim)
	pb.TX.Zero()
	pb.JX.Reshape(nj, jdim)
	pb.JX.Zero()
	pb.PX.Reshape(np, pdim)
	pb.PX.Zero()
	pb.TOff = ensureInts(pb.TOff, b+1)
	pb.JOff = ensureInts(pb.JOff, b+1)
	pb.POff = ensureInts(pb.POff, b+1)
	// A source that consumes more rows than RowCounts promised gets a
	// throwaway spill row rather than a slice-bounds panic; the cursor
	// still advances so the mismatch check below reports it as an error.
	var tr, jr, pr int
	var spill []float64
	overdraw := func(dim int) []float64 {
		if cap(spill) < dim {
			spill = make([]float64, dim)
		}
		return spill[:dim]
	}
	nextT := func() []float64 {
		if tr >= nt {
			tr++
			return overdraw(tdim)
		}
		r := pb.TX.Row(tr)
		tr++
		return r
	}
	nextJ := func() []float64 {
		if jr >= nj {
			jr++
			return overdraw(jdim)
		}
		r := pb.JX.Row(jr)
		jr++
		return r
	}
	nextP := func() []float64 {
		if pr >= np {
			pr++
			return overdraw(pdim)
		}
		r := pb.PX.Row(pr)
		pr++
		return r
	}
	for i := lo; i < hi; i++ {
		pb.TOff[i-lo], pb.JOff[i-lo], pb.POff[i-lo] = tr, jr, pr
		if err := src.EncodeTo(i, nextT, nextJ, nextP); err != nil {
			return err
		}
	}
	pb.TOff[b], pb.JOff[b], pb.POff[b] = tr, jr, pr
	if tr != nt || jr != nj || pr != np {
		return fmt.Errorf("mscn: source consumed %d/%d/%d rows, RowCounts promised %d/%d/%d", tr, jr, pr, nt, nj, np)
	}
	return nil
}

func packVecs(x nn.Matrix, row int, vecs [][]float64, dim int) (int, error) {
	for _, v := range vecs {
		if len(v) != dim {
			return 0, fmt.Errorf("mscn: element width %d, model expects %d", len(v), dim)
		}
		copy(x.Row(row), v)
		row++
	}
	return row, nil
}

func ensureInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
