package mscn

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"deepsketch/internal/featurize"
	"deepsketch/internal/nn"
)

// Engine is the packed ragged-batch inference path of the model: fused
// Linear+ReLU kernels over PackedBatch rows, segment average pooling instead
// of masked pooling, and sync.Pool-backed workspaces so a steady-state
// forward pass performs zero heap allocations. It shares the model's weights
// (read-only) with the tape-based training path and is safe for concurrent
// use — every concurrent caller gets its own scratch from the pool. Obtain
// one with Model.Engine (shared, cached) or NewEngine.
//
// The forward pass runs at the model's Precision: f64 directly on the
// weights, f32/int8 on per-weight-generation converted snapshots
// (engine32.go) so reduced precision never pays conversion per forward and
// never serves stale weights after a Refresh/Swap.
type Engine struct {
	m    *Model
	pool sync.Pool // *engineScratch

	// Reduced-precision weight snapshots, built lazily under convMu and
	// tagged with the Model.WeightGen they were converted from.
	convMu sync.Mutex
	w32    atomic.Pointer[weights32]
	w8     atomic.Pointer[weights8]
}

// engineScratch bundles the per-goroutine reusable state: a packed batch,
// the forward workspaces (f64 and f32 — only the active precision's arena
// grows), and small staging slices.
type engineScratch struct {
	pb   PackedBatch
	ws   nn.Workspace
	ws32 nn.Workspace32
	xq   []int8 // int8 path: per-layer quantized activations
	out  []float64
	one  [1]featurize.Encoded
}

// NewEngine builds an inference engine over the model's weights.
func NewEngine(m *Model) *Engine { return &Engine{m: m} }

func (e *Engine) scratch() *engineScratch {
	if s, ok := e.pool.Get().(*engineScratch); ok {
		return s
	}
	return &engineScratch{}
}

// Forward runs one packed forward pass, writing the normalized prediction
// for query i into out[i]. out must have length ≥ pb.B; ws provides the
// scratch and must not be shared with a concurrent pass. Steady-state (after
// the workspace has grown to the batch shape) the call performs zero heap
// allocations.
//
//deepsketch:zeroalloc
func (e *Engine) Forward(pb *PackedBatch, ws *nn.Workspace, out []float64) {
	m := e.m
	h := m.Cfg.HiddenUnits
	b := pb.B
	nt, nj, np := pb.Rows()
	ws.Reserve((2*(nt+nj+np) + 7*b) * h)

	th1 := ws.Alloc(nt, h)
	m.table1.ForwardFused(pb.TX, th1, true)
	th2 := ws.Alloc(nt, h)
	m.table2.ForwardFused(th1, th2, true)
	tPool := ws.Alloc(b, h)
	nn.SegmentAvgPool(th2, pb.TOff, tPool)

	jh1 := ws.Alloc(nj, h)
	m.join1.ForwardFused(pb.JX, jh1, true)
	jh2 := ws.Alloc(nj, h)
	m.join2.ForwardFused(jh1, jh2, true)
	jPool := ws.Alloc(b, h)
	nn.SegmentAvgPool(jh2, pb.JOff, jPool)

	ph1 := ws.Alloc(np, h)
	m.pred1.ForwardFused(pb.PX, ph1, true)
	ph2 := ws.Alloc(np, h)
	m.pred2.ForwardFused(ph1, ph2, true)
	pPool := ws.Alloc(b, h)
	nn.SegmentAvgPool(ph2, pb.POff, pPool)

	concat := ws.Alloc(b, 3*h)
	for bi := 0; bi < b; bi++ {
		dst := concat.Row(bi)
		copy(dst[:h], tPool.Row(bi))
		copy(dst[h:2*h], jPool.Row(bi))
		copy(dst[2*h:], pPool.Row(bi))
	}

	o1 := ws.Alloc(b, h)
	m.out1.ForwardFused(concat, o1, true)
	outM := nn.Matrix{Rows: b, Cols: 1, Data: out[:b]}
	m.out2.ForwardFused(o1, outM, false)
	nn.SigmoidInPlace(outM)
}

// forward dispatches one packed forward pass to the model's current
// precision. out must have length ≥ pb.B; s must not be shared with a
// concurrent pass.
//
//deepsketch:zeroalloc
func (e *Engine) forward(pb *PackedBatch, s *engineScratch, out []float64) {
	switch e.m.Precision() {
	case F32:
		e.forward32(pb, s, out)
	case Int8:
		e.forward8(pb, s, out)
	default:
		e.Forward(pb, &s.ws, out)
	}
}

// Predict returns the normalized prediction for one featurized query using
// pooled scratch — the serving hot path for single ad-hoc estimates.
func (e *Engine) Predict(enc featurize.Encoded) (float64, error) {
	s := e.scratch()
	defer e.pool.Put(s)
	s.one[0] = enc
	err := s.pb.Build(s.one[:], e.m.TDim, e.m.JDim, e.m.PDim)
	// Don't let the pooled scratch pin the caller's feature slices.
	s.one[0] = featurize.Encoded{}
	if err != nil {
		return 0, err
	}
	if cap(s.out) < 1 {
		s.out = make([]float64, 1)
	}
	e.forward(&s.pb, s, s.out[:1])
	return s.out[0], nil
}

// PredictAllInto writes normalized predictions for encs into out (equal
// lengths required). Shapes may be arbitrarily mixed — packing makes a
// ragged batch cost exactly its valid rows, so no shape grouping happens.
// Work proceeds in model-batch-size chunks; with GOMAXPROCS > 1 and several
// chunks, chunks fan out across cores, each on its own pooled scratch. ctx
// is checked between chunks.
func (e *Engine) PredictAllInto(ctx context.Context, encs []featurize.Encoded, out []float64) error {
	if len(out) != len(encs) {
		return fmt.Errorf("mscn: %d outputs for %d queries", len(out), len(encs))
	}
	if len(encs) == 0 {
		return nil
	}
	return e.forEachChunk(ctx, len(encs), func(lo, hi int) error {
		s := e.scratch()
		defer e.pool.Put(s)
		if err := s.pb.Build(encs[lo:hi], e.m.TDim, e.m.JDim, e.m.PDim); err != nil {
			return err
		}
		e.forward(&s.pb, s, out[lo:hi])
		return nil
	})
}

// predictAllF64 is PredictAllInto pinned to the f64 reference path,
// regardless of the model's serving precision. Training-time validation
// uses it so epoch decisions are precision-independent and never read a
// reduced-precision snapshot that mid-training weight mutation has made
// stale.
func (e *Engine) predictAllF64(ctx context.Context, encs []featurize.Encoded, out []float64) error {
	if len(out) != len(encs) {
		return fmt.Errorf("mscn: %d outputs for %d queries", len(out), len(encs))
	}
	if len(encs) == 0 {
		return nil
	}
	return e.forEachChunk(ctx, len(encs), func(lo, hi int) error {
		s := e.scratch()
		defer e.pool.Put(s)
		if err := s.pb.Build(encs[lo:hi], e.m.TDim, e.m.JDim, e.m.PDim); err != nil {
			return err
		}
		e.Forward(&s.pb, &s.ws, out[lo:hi])
		return nil
	})
}

// forEachChunk runs fn over [0,n) in chunks that fan out across cores. The
// chunk size is the model batch size, shrunk on multicore machines so even
// a single coalesced flush splits across every core instead of serializing
// on one (on GOMAXPROCS=1 the single full-size chunk keeps the zero-
// goroutine fast path). ctx is checked before each chunk; the first error
// wins and aborts the rest.
func (e *Engine) forEachChunk(ctx context.Context, n int, fn func(lo, hi int) error) error {
	bs := e.m.Cfg.BatchSize
	if bs <= 0 {
		bs = 64
	}
	if procs := runtime.GOMAXPROCS(0); procs > 1 {
		if per := (n + procs - 1) / procs; per < bs {
			bs = per
		}
	}
	chunks := (n + bs - 1) / bs
	runChunk := func(ci int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		lo := ci * bs
		hi := lo + bs
		if hi > n {
			hi = n
		}
		return fn(lo, hi)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for ci := 0; ci < chunks; ci++ {
			if err := runChunk(ci); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		wg     sync.WaitGroup
		mu     sync.Mutex
		runErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ci := int(next.Add(1)) - 1
				if ci >= chunks {
					return
				}
				if err := runChunk(ci); err != nil {
					mu.Lock()
					if runErr == nil {
						runErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return runErr
}

// PredictAll returns normalized predictions for many featurized queries.
//
//deepsketch:ctxorigin compatibility wrapper for ctx-less callers; cancellable path is PredictAllInto
func (e *Engine) PredictAll(encs []featurize.Encoded) ([]float64, error) {
	out := make([]float64, len(encs))
	if err := e.PredictAllInto(context.Background(), encs, out); err != nil {
		return nil, err
	}
	return out, nil
}

// QuerySource feeds queries straight into packed feature rows, bypassing
// any intermediate per-query materialization — the serving batch path.
// RowCounts must report exactly the rows EncodeTo will consume.
// Implementations must be safe for concurrent calls on distinct indices:
// on multicore machines PredictSourceInto fans chunks out across
// goroutines, each driving its own index range — per-call mutable state
// shared between calls would race.
type QuerySource interface {
	// RowCounts returns the table/join/predicate row counts of query i.
	RowCounts(i int) (t, j, p int)
	// EncodeTo writes query i's feature rows via the next functions, each
	// of which returns the next zeroed destination row for its set.
	EncodeTo(i int, nextT, nextJ, nextP func() []float64) error
}

// PredictSourceInto writes normalized predictions for the source's n
// queries into out (len n). Feature rows are encoded directly into the
// pooled PackedBatch (PackedBatch.BuildFrom) — no per-query vectors, no
// copies — then predicted exactly like PredictAllInto (same chunking, same
// cross-core fan-out, same ctx checks between chunks).
func (e *Engine) PredictSourceInto(ctx context.Context, src QuerySource, n int, out []float64) error {
	if len(out) != n {
		return fmt.Errorf("mscn: %d outputs for %d queries", len(out), n)
	}
	if n == 0 {
		return nil
	}
	return e.forEachChunk(ctx, n, func(lo, hi int) error {
		s := e.scratch()
		defer e.pool.Put(s)
		if err := s.pb.BuildFrom(src, lo, hi, e.m.TDim, e.m.JDim, e.m.PDim); err != nil {
			return err
		}
		e.forward(&s.pb, s, out[lo:hi])
		return nil
	})
}
