package mscn

import (
	"runtime"
	"sync"

	"deepsketch/internal/featurize"
	"deepsketch/internal/nn"
)

// TrainOptions tunes how Model.Train executes; Config decides *what* is
// computed, TrainOptions only how it is scheduled, so any option combination
// converges to the same model family.
type TrainOptions struct {
	// Parallelism is the number of data-parallel workers each minibatch is
	// sharded across. Every worker packs and backpropagates its own
	// contiguous shard with a private workspace arena and private gradient
	// buffers; per-step gradients reduce in fixed worker order into the
	// shared parameters before one Adam step, so a fixed (seed, parallelism)
	// pair reproduces bitwise-identical weights on any machine. 0 uses
	// GOMAXPROCS; 1 is fully serial (and the reference the padded-path
	// equivalence tests compare against).
	Parallelism int
	// Resume warm-starts the optimizer from a previous run's exported state
	// (Adam moments + step count, see Model.OptState). The moments carry
	// the per-parameter learning-rate adaptation, so fine-tuning on a
	// drift-delta workload converges in a fraction of full-build epochs.
	// The state is copied on restore; the caller's value is not mutated.
	// Nil trains from a cold optimizer as before.
	Resume *nn.OptState
	// Epochs overrides Config.Epochs when > 0 — refresh fine-tunes run a
	// short budget without rewriting the model's build-time config.
	Epochs int
	// StopAtValQ stops training early once the epoch's validation mean
	// q-error reaches this value or better (requires a validation split;
	// 0 disables). Refreshes use it to train "until as good as the old
	// sketch" instead of a fixed epoch count.
	StopAtValQ float64
	// PipelineVal overlaps each epoch's validation pass with the next
	// epoch's training instead of stalling between epochs. Validation reads
	// a weight snapshot taken at the epoch boundary, so it sees exactly the
	// values the serial schedule would; KeepBest snapshots come from that
	// boundary copy, and a StopAtValQ trigger rolls the speculative extra
	// epoch back to the boundary weights and optimizer state — final
	// weights are bitwise-identical to the serial schedule for any fixed
	// (seed, parallelism). Per-epoch validation metrics surface one epoch
	// late. No effect without a validation split.
	PipelineVal bool
}

func (o TrainOptions) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (o TrainOptions) epochs(cfg Config) int {
	if o.Epochs > 0 {
		return o.Epochs
	}
	return cfg.Epochs
}

// Indices into Model.Params() / trainWorker.grads, fixed by the Params()
// serialization contract: layer li contributes W at 2·li and b at 2·li+1 in
// the order table1, table2, join1, join2, pred1, pred2, out1, out2.
const (
	gradOut1W = 12
	gradOut1B = 13
	gradOut2W = 14
	gradOut2B = 15
)

// setLayers returns the set-module layer pairs in fixed module order
// (tables, joins, predicates) — the order of Params() and of every packed
// training loop. Module k's layers sit at Params indices 4k..4k+3.
func (m *Model) setLayers() [3][2]*nn.Linear {
	return [3][2]*nn.Linear{{m.table1, m.table2}, {m.join1, m.join2}, {m.pred1, m.pred2}}
}

// packedTape records the forward intermediates of one worker's packed shard
// so the backward pass can consume them. All matrices alias the worker's
// workspace arena and live exactly one step.
type packedTape struct {
	h1, h2, pool [3]nn.Matrix // per set module, post-ReLU / pooled
	concat       nn.Matrix
	oA1          nn.Matrix
	out          nn.Matrix // sigmoid output, shard×1
}

// trainWorker is the private state of one data-parallel worker: a packed
// sub-batch, a workspace arena for the step's intermediates, and gradient
// buffers mirroring Model.Params(). Nothing here is ever shared between
// workers, which is what keeps the parallel path race-free and the
// reduction deterministic.
type trainWorker struct {
	pb      PackedBatch
	ws      nn.Workspace
	tp      packedTape
	grads   [][]float64 // parallel to Model.Params()
	lossSum float64     // per-shard loss sum of the current step
}

func newTrainWorker(params []*nn.Param) *trainWorker {
	w := &trainWorker{grads: make([][]float64, len(params))}
	for i, p := range params {
		w.grads[i] = make([]float64, len(p.Data))
	}
	return w
}

// zeroGrads clears the private gradient accumulators for the next step.
func (wk *trainWorker) zeroGrads() {
	for _, g := range wk.grads {
		for i := range g {
			g[i] = 0
		}
	}
}

// forward packs encs and runs the fused forward pass, recording
// intermediates on the tape and writing normalized predictions into preds
// (len(encs)). The workspace is reserved for the whole step — forward and
// backward — so the backward Allocs continue the same arena.
func (wk *trainWorker) forward(m *Model, encs []featurize.Encoded, preds []float64) error {
	if err := wk.pb.Build(encs, m.TDim, m.JDim, m.PDim); err != nil {
		return err
	}
	b := wk.pb.B
	h := m.Cfg.HiddenUnits
	nt, nj, np := wk.pb.Rows()
	// Forward: 2 hidden activations per set row, 3 pools + concat (3bh) +
	// oA1 + out. Backward: dOut + dOA1 + dConcat (3bh) + dPool + 2 hidden
	// gradients per set row. One Reserve covers both phases.
	wk.ws.Reserve(4*(nt+nj+np)*h + 12*b*h + 2*b)

	tp := &wk.tp
	xs := [3]nn.Matrix{wk.pb.TX, wk.pb.JX, wk.pb.PX}
	offs := [3][]int{wk.pb.TOff, wk.pb.JOff, wk.pb.POff}
	layers := m.setLayers()
	for k := 0; k < 3; k++ {
		rows := xs[k].Rows
		tp.h1[k] = wk.ws.Alloc(rows, h)
		layers[k][0].ForwardFused(xs[k], tp.h1[k], true)
		tp.h2[k] = wk.ws.Alloc(rows, h)
		layers[k][1].ForwardFused(tp.h1[k], tp.h2[k], true)
		tp.pool[k] = wk.ws.Alloc(b, h)
		nn.SegmentAvgPool(tp.h2[k], offs[k], tp.pool[k])
	}
	tp.concat = wk.ws.Alloc(b, 3*h)
	for bi := 0; bi < b; bi++ {
		dst := tp.concat.Row(bi)
		copy(dst[:h], tp.pool[0].Row(bi))
		copy(dst[h:2*h], tp.pool[1].Row(bi))
		copy(dst[2*h:], tp.pool[2].Row(bi))
	}
	tp.oA1 = wk.ws.Alloc(b, h)
	m.out1.ForwardFused(tp.concat, tp.oA1, true)
	tp.out = wk.ws.Alloc(b, 1)
	m.out2.ForwardFused(tp.oA1, tp.out, false)
	nn.SigmoidInPlace(tp.out)
	copy(preds, tp.out.Data)
	return nil
}

// backward backpropagates the shard's loss gradient dPreds through the tape
// into the worker's private gradient buffers (which it first zeroes).
func (wk *trainWorker) backward(m *Model, dPreds []float64) {
	wk.zeroGrads()
	b := wk.pb.B
	h := m.Cfg.HiddenUnits
	tp := &wk.tp

	dOut := wk.ws.Alloc(b, 1)
	copy(dOut.Data, dPreds)
	nn.SigmoidBackwardInPlace(tp.out, dOut)
	dOA1 := wk.ws.Alloc(b, h)
	m.out2.BackwardFused(tp.oA1, dOut, &dOA1, wk.grads[gradOut2W], wk.grads[gradOut2B])
	nn.ReLUBackwardInPlace(tp.oA1, dOA1)
	dConcat := wk.ws.Alloc(b, 3*h)
	m.out1.BackwardFused(tp.concat, dOA1, &dConcat, wk.grads[gradOut1W], wk.grads[gradOut1B])

	dPool := wk.ws.Alloc(b, h)
	xs := [3]nn.Matrix{wk.pb.TX, wk.pb.JX, wk.pb.PX}
	offs := [3][]int{wk.pb.TOff, wk.pb.JOff, wk.pb.POff}
	layers := m.setLayers()
	for k := 0; k < 3; k++ {
		off := k * h
		for bi := 0; bi < b; bi++ {
			copy(dPool.Row(bi), dConcat.Row(bi)[off:off+h])
		}
		rows := xs[k].Rows
		if rows == 0 {
			// Every query's set is empty: the pool emitted zeros, no
			// elements exist to receive gradient, and the module's layers
			// saw no input this step.
			continue
		}
		dH2 := wk.ws.Alloc(rows, h)
		nn.SegmentAvgPoolBackward(dPool, offs[k], dH2)
		nn.ReLUBackwardInPlace(tp.h2[k], dH2)
		dH1 := wk.ws.Alloc(rows, h)
		layers[k][1].BackwardFused(tp.h1[k], dH2, &dH1, wk.grads[4*k+2], wk.grads[4*k+3])
		nn.ReLUBackwardInPlace(tp.h1[k], dH1)
		layers[k][0].BackwardFused(xs[k], dH1, nil, wk.grads[4*k], wk.grads[4*k+1])
	}
}

// packedTrainer drives the data-parallel packed training steps: shard the
// minibatch contiguously across workers, run forward+loss+backward per
// shard (one fork/join per step — per-sample loss gradients depend only on
// their own prediction, so no barrier is needed between phases), then
// reduce the private gradients into the shared parameters in fixed worker
// order and let the caller take one Adam step.
type packedTrainer struct {
	m       *Model
	params  []*nn.Param
	workers []*trainWorker
	errs    []error // per-worker step errors, reused across steps
	preds   []float64
	grad    []float64
	// reduceOff[i] is the flat offset of params[i] in the concatenated
	// parameter space; reduceTotal its total element count. The gradient
	// reduction shards by contiguous flat ranges over this space.
	reduceOff   []int
	reduceTotal int
}

// minShardedReduce is the flat parameter count below which the reduction
// stays serial: goroutine fork/join costs more than summing a few thousand
// elements.
const minShardedReduce = 1 << 14

func newPackedTrainer(m *Model, params []*nn.Param, parallelism int) *packedTrainer {
	t := &packedTrainer{m: m, params: params}
	t.workers = make([]*trainWorker, parallelism)
	for i := range t.workers {
		t.workers[i] = newTrainWorker(params)
	}
	t.errs = make([]error, parallelism)
	t.reduceOff = make([]int, len(params))
	for i, p := range params {
		t.reduceOff[i] = t.reduceTotal
		t.reduceTotal += len(p.Data)
	}
	return t
}

// reduceRange accumulates the first p workers' private gradients for flat
// parameter elements [lo, hi) into the shared parameter gradients. Per
// element the workers combine in fixed order w=0..p-1 — exactly the serial
// reduction's summation tree — so sharding the flat space across goroutines
// changes nothing bitwise.
func (t *packedTrainer) reduceRange(p, lo, hi int) {
	for i, param := range t.params {
		off := t.reduceOff[i]
		end := off + len(param.Grad)
		if end <= lo || off >= hi {
			continue
		}
		s := max(lo, off) - off
		e := min(hi, end) - off
		dst := param.Grad[s:e]
		for w := 0; w < p; w++ {
			src := t.workers[w].grads[i][s:e]
			for j, g := range src {
				dst[j] += g
			}
		}
	}
}

// reduce combines the per-worker gradients into the shared parameters. With
// one worker (or a small model) it is the plain serial loop; otherwise the
// flat parameter space is split into one contiguous shard per worker and
// the shards reduce concurrently — at high parallelism on wide models the
// serial reduction is the Amdahl term of the step, and sharding it keeps
// the sequential fraction flat as P grows.
func (t *packedTrainer) reduce(p int) {
	shards := len(t.workers)
	if p == 1 || shards == 1 || t.reduceTotal < minShardedReduce {
		t.reduceRange(p, 0, t.reduceTotal)
		return
	}
	chunk := (t.reduceTotal + shards - 1) / shards
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo := s * chunk
		hi := min(lo+chunk, t.reduceTotal)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			t.reduceRange(p, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// parallelism reports the configured worker count.
func (t *packedTrainer) parallelism() int { return len(t.workers) }

// step runs one minibatch: returns the mean loss with parameter gradients
// accumulated (the caller applies the optimizer step). encs and targets are
// staged by the caller in shuffled order.
func (t *packedTrainer) step(encs []featurize.Encoded, targets []float64, norm nn.LabelNorm) (float64, error) {
	n := len(encs)
	p := len(t.workers)
	if p > n {
		p = n
	}
	if cap(t.preds) < n {
		t.preds = make([]float64, n)
		t.grad = make([]float64, n)
	}
	preds := t.preds[:n]
	grad := t.grad[:n]
	invN := 1.0 / float64(n)

	// Contiguous shard bounds: worker w takes [lo(w), lo(w+1)).
	base, rem := n/p, n%p
	bounds := func(w int) (int, int) {
		lo := w*base + min(w, rem)
		size := base
		if w < rem {
			size++
		}
		return lo, lo + size
	}
	run := func(w int) error {
		wk := t.workers[w]
		lo, hi := bounds(w)
		if err := wk.forward(t.m, encs[lo:hi], preds[lo:hi]); err != nil {
			return err
		}
		wk.lossSum = nn.LossSumInto(t.m.Cfg.Loss, norm, preds[lo:hi], targets[lo:hi],
			grad[lo:hi], t.m.Cfg.GradCap, invN)
		wk.backward(t.m, grad[lo:hi])
		return nil
	}

	var stepErr error
	if p == 1 {
		stepErr = run(0)
	} else {
		errs := t.errs[:p]
		var wg sync.WaitGroup
		for w := 0; w < p; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				errs[w] = run(w)
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				stepErr = err
				break
			}
		}
	}
	if stepErr != nil {
		return 0, stepErr
	}

	// Deterministic reduction: loss sums and every gradient element combine
	// in worker order, so a fixed parallelism fixes the summation tree.
	// The gradient reduction itself is sharded by parameter range.
	var lossSum float64
	for w := 0; w < p; w++ {
		lossSum += t.workers[w].lossSum
	}
	t.reduce(p)
	return lossSum * invN, nil
}
