package mscn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"deepsketch/internal/featurize"
)

// f32EngineTol bounds the per-query relative deviation of the f32 forward
// vs the f64 reference on the normalized (0,1) output. The JOB-light
// fixture gate in the repo root additionally bounds the resulting q-error
// deviation to <1%.
const f32EngineTol = 1e-4

// TestEngineF32Equivalence: the f32 engine must match the f64 engine per
// query across randomized ragged shapes — empty sets, singleton batches,
// JOB-light-like chains — within fp32 tolerance, on both the batch and the
// pooled single-Predict paths.
func TestEngineF32Equivalence(t *testing.T) {
	const tdim, jdim, pdim = 37, 5, 11
	rng := rand.New(rand.NewSource(43))
	m := New(Config{HiddenUnits: 32, Seed: 7}, tdim, jdim, pdim)
	e := m.Engine()

	cases := [][][3]int{
		{{1, 1, 1}},
		{{4, 3, 3}},
		{{2, 0, 0}},
		{{1, 0, 2}, {3, 2, 0}},
		// JOB-light shapes: chains of 1..5 tables, joins = tables-1.
		{{1, 0, 1}, {2, 1, 2}, {3, 2, 1}, {4, 3, 3}, {5, 4, 2}},
	}
	for c := 0; c < 20; c++ {
		b := 1 + rng.Intn(65)
		shapes := make([][3]int, b)
		for i := range shapes {
			shapes[i] = [3]int{1 + rng.Intn(5), rng.Intn(5), rng.Intn(5)}
		}
		cases = append(cases, shapes)
	}

	for ci, shapes := range cases {
		encs := make([]featurize.Encoded, len(shapes))
		for i, sh := range shapes {
			encs[i] = randEnc(rng, sh[0], sh[1], sh[2], tdim, jdim, pdim)
		}
		m.SetPrecision(F64)
		want, err := e.PredictAll(encs)
		if err != nil {
			t.Fatalf("case %d: f64 PredictAll: %v", ci, err)
		}
		m.SetPrecision(F32)
		got, err := e.PredictAll(encs)
		if err != nil {
			t.Fatalf("case %d: f32 PredictAll: %v", ci, err)
		}
		for i := range got {
			if d := math.Abs(got[i]-want[i]) / math.Max(want[i], 1e-9); d > f32EngineTol || math.IsNaN(got[i]) {
				t.Errorf("case %d query %d (shape %v): f32 %v vs f64 %v (relΔ=%g)",
					ci, i, shapes[i], got[i], want[i], d)
			}
		}
		for i, enc := range encs {
			y, err := e.Predict(enc)
			if err != nil {
				t.Fatalf("case %d: f32 Predict: %v", ci, err)
			}
			if d := math.Abs(y-want[i]) / math.Max(want[i], 1e-9); d > f32EngineTol {
				t.Errorf("case %d query %d: f32 Predict %v vs f64 %v (relΔ=%g)", ci, i, y, want[i], d)
			}
		}
		m.SetPrecision(F64)
	}
}

// TestEngineInt8Sanity: the experimental int8 path must stay finite, in
// (0,1), and loosely track the f64 output — per-layer symmetric
// quantization at h=32 keeps the normalized output within a few percent.
func TestEngineInt8Sanity(t *testing.T) {
	const tdim, jdim, pdim = 21, 4, 8
	rng := rand.New(rand.NewSource(44))
	m := New(Config{HiddenUnits: 32, Seed: 11}, tdim, jdim, pdim)
	e := m.Engine()
	encs := make([]featurize.Encoded, 40)
	for i := range encs {
		encs[i] = randEnc(rng, 1+rng.Intn(4), rng.Intn(4), rng.Intn(4), tdim, jdim, pdim)
	}
	want, err := e.PredictAll(encs)
	if err != nil {
		t.Fatal(err)
	}
	m.SetPrecision(Int8)
	defer m.SetPrecision(F64)
	got, err := e.PredictAll(encs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.IsNaN(got[i]) || got[i] <= 0 || got[i] >= 1 {
			t.Fatalf("query %d: int8 output %v outside (0,1)", i, got[i])
		}
		if d := math.Abs(got[i] - want[i]); d > 0.1 {
			t.Errorf("query %d: int8 %v vs f64 %v (|Δ|=%g) — quantization error too large", i, got[i], want[i], d)
		}
	}
}

// TestForwardPacked32ZeroAlloc mirrors TestForwardPackedZeroAlloc for the
// reduced-precision paths: once warmed, neither the f32 nor the int8
// forward may touch the heap.
func TestForwardPacked32ZeroAlloc(t *testing.T) {
	const tdim, jdim, pdim = 30, 6, 10
	rng := rand.New(rand.NewSource(9))
	m := New(Config{HiddenUnits: 32, Seed: 1}, tdim, jdim, pdim)
	e := m.Engine()
	encs := make([]featurize.Encoded, 32)
	for i := range encs {
		encs[i] = randEnc(rng, 1+rng.Intn(4), rng.Intn(4), 1+rng.Intn(3), tdim, jdim, pdim)
	}
	pb, err := BuildPackedBatch(encs, tdim, jdim, pdim)
	if err != nil {
		t.Fatal(err)
	}
	var s engineScratch
	out := make([]float64, len(encs))
	e.forward32(pb, &s, out) // warm the arena and the weight snapshot
	allocs := testing.AllocsPerRun(50, func() {
		e.forward32(pb, &s, out)
	})
	if allocs != 0 {
		t.Fatalf("steady-state forward32 allocates %.1f times per op, want 0", allocs)
	}

	e.forward8(pb, &s, out)
	allocs = testing.AllocsPerRun(50, func() {
		e.forward8(pb, &s, out)
	})
	if allocs != 0 {
		t.Fatalf("steady-state forward8 allocates %.1f times per op, want 0", allocs)
	}
}

// TestEngineSnapshotInvalidation: replacing the model's weights (the
// Refresh/Swap path runs through ReadWeights) must invalidate the cached
// f32/int8 snapshots — a stale snapshot would silently serve the old
// sketch's estimates at reduced precision.
func TestEngineSnapshotInvalidation(t *testing.T) {
	const tdim, jdim, pdim = 13, 3, 5
	oldM := New(Config{HiddenUnits: 16, Seed: 21}, tdim, jdim, pdim)
	newM := New(Config{HiddenUnits: 16, Seed: 22}, tdim, jdim, pdim)
	rng := rand.New(rand.NewSource(45))
	enc := randEnc(rng, 2, 1, 2, tdim, jdim, pdim)

	for _, p := range []Precision{F32, Int8} {
		oldM.SetPrecision(p)
		newM.SetPrecision(p)
		before, err := oldM.Engine().Predict(enc) // caches the snapshot
		if err != nil {
			t.Fatal(err)
		}
		want, err := newM.Engine().Predict(enc)
		if err != nil {
			t.Fatal(err)
		}
		if before == want {
			t.Fatalf("%v: distinct seeds produced equal predictions — test is vacuous", p)
		}

		var buf bytes.Buffer
		if err := newM.WriteWeights(&buf); err != nil {
			t.Fatal(err)
		}
		if err := oldM.ReadWeights(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := oldM.Engine().Predict(enc)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v: after ReadWeights predict = %v, want %v (stale snapshot: before-swap value was %v)",
				p, got, want, before)
		}

		// Restore oldM's original weights for the next precision round.
		restore := New(Config{HiddenUnits: 16, Seed: 21}, tdim, jdim, pdim)
		buf.Reset()
		if err := restore.WriteWeights(&buf); err != nil {
			t.Fatal(err)
		}
		if err := oldM.ReadWeights(&buf); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPrecisionParseAndClone: flag spellings round-trip and Clone carries
// the serving precision to the copy (Refresh clones must not silently fall
// back to f64).
func TestPrecisionParseAndClone(t *testing.T) {
	for _, c := range []struct {
		s    string
		want Precision
	}{{"f64", F64}, {"", F64}, {"f32", F32}, {"int8", Int8}} {
		got, err := ParsePrecision(c.s)
		if err != nil || got != c.want {
			t.Fatalf("ParsePrecision(%q) = %v, %v; want %v", c.s, got, err, c.want)
		}
	}
	if _, err := ParsePrecision("fp16"); err == nil {
		t.Fatal("ParsePrecision(fp16) should error")
	}
	m := New(Config{HiddenUnits: 8, Seed: 1}, 3, 2, 2)
	m.SetPrecision(F32)
	if got := m.Clone().Precision(); got != F32 {
		t.Fatalf("Clone precision = %v, want F32", got)
	}
}
