package mscn

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"deepsketch/internal/datagen"
	"deepsketch/internal/featurize"
	"deepsketch/internal/nn"
	"deepsketch/internal/trainmon"
)

// Example is one training example: a featurized query and its true
// cardinality.
type Example struct {
	Enc  featurize.Encoded
	Card int64
}

// EpochStats captures one epoch of training for monitoring and the epoch-
// convergence experiment (E7).
type EpochStats struct {
	Epoch     int
	TrainLoss float64
	ValMeanQ  float64
	ValMedQ   float64
	Duration  time.Duration
}

// Train fits the model on examples using the encoder's label normalization
// with default TrainOptions (data-parallel across GOMAXPROCS workers).
// A validation split (Cfg.ValFrac, taken deterministically from the shuffled
// tail) is evaluated after every epoch; per-epoch metrics stream to mon and
// are returned. The encoder must already have its label norm fitted
// (Encoder.FitLabels) on the training cardinalities.
func (m *Model) Train(examples []Example, norm nn.LabelNorm, mon *trainmon.Monitor) ([]EpochStats, error) {
	return m.TrainWithOptions(examples, norm, mon, TrainOptions{})
}

// TrainWithOptions is Train with explicit execution options. Training runs
// on the packed representation: each minibatch is sharded contiguously
// across opts.Parallelism workers, every worker packs and backpropagates
// its shard with private scratch and gradient buffers, gradients reduce in
// fixed worker order, and one Adam step applies per minibatch — so a fixed
// (seed, parallelism) pair reproduces bitwise-identical weights, and any
// parallelism matches the serial path up to float summation order.
//
// opts.Resume warm-starts the optimizer from an exported state; opts.Epochs
// overrides the configured epoch budget; opts.StopAtValQ stops early once
// the validation mean q-error is good enough. After training the final
// optimizer state is captured on the model (OptState) for the next resume.
// With KeepBest, the restored weights are the best epoch's but the captured
// optimizer state is the final epoch's — a warm start continues from the
// end of the run, which is the standard fine-tuning compromise.
//
//deepsketch:deterministic
func (m *Model) TrainWithOptions(examples []Example, norm nn.LabelNorm, mon *trainmon.Monitor, opts TrainOptions) ([]EpochStats, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("mscn: no training examples")
	}
	rng := trainRand(m.Cfg.Seed)

	// Deterministic shuffle, then split off validation tail.
	perm := shuffle(rng, len(examples))
	shuffled := make([]Example, len(examples))
	for i, p := range perm {
		shuffled[i] = examples[p]
	}
	nVal := int(float64(len(shuffled)) * m.Cfg.ValFrac)
	if nVal >= len(shuffled) {
		nVal = len(shuffled) - 1
	}
	train := shuffled[:len(shuffled)-nVal]
	val := shuffled[len(shuffled)-nVal:]

	ys := make([]float64, len(train))
	for i, ex := range train {
		ys[i] = norm.Normalize(ex.Card)
	}

	opt := nn.NewAdam(m.Cfg.LearningRate, m.Cfg.ClipNorm)
	params := m.Params()
	if opts.Resume != nil {
		if err := opt.RestoreState(params, opts.Resume); err != nil {
			return nil, err
		}
	}
	epochs := opts.epochs(m.Cfg)
	tr := newPackedTrainer(m, params, opts.workers())
	mon.TrainStart(tr.parallelism(), len(train), len(val))
	stats := make([]EpochStats, 0, epochs)

	bestVal := math.NaN()
	var bestWeights [][]float64
	snapshotFrom := func(src []*nn.Param) {
		if bestWeights == nil {
			bestWeights = make([][]float64, len(params))
			for i, p := range params {
				bestWeights[i] = make([]float64, len(p.Data))
			}
		}
		for i, p := range src {
			copy(bestWeights[i], p.Data)
		}
	}

	// Pipelined validation: val(e) runs in a goroutine against a boundary
	// weight snapshot (valModel) while epoch e+1 trains, and is joined
	// before the next boundary is staged. KeepBest and StopAtValQ consume
	// exactly the boundary values the serial schedule would, and an early
	// stop rolls back the one speculative epoch — weights AND optimizer
	// state — so outcomes are bitwise-identical to PipelineVal=false.
	pipeline := opts.PipelineVal && len(val) > 0
	type valResult struct {
		qs  []float64
		err error
	}
	var (
		valCh        chan valResult
		valModel     *Model       // reused boundary-snapshot model (always f64)
		valIdx       int          // stats index of the epoch being validated
		valOptState  *nn.OptState // Adam state at the validated boundary (StopAtValQ only)
		stoppedEarly bool
	)
	launchVal := func() {
		if valModel == nil {
			valModel = New(m.Cfg, m.TDim, m.JDim, m.PDim)
		}
		for i, p := range valModel.Params() {
			copy(p.Data, params[i].Data)
		}
		if opts.StopAtValQ > 0 {
			valOptState = opt.ExportState(params)
		}
		valIdx = len(stats) - 1
		valCh = make(chan valResult, 1)
		go func() {
			qs, err := valModel.evalQErrors(val, norm)
			valCh <- valResult{qs, err}
		}()
	}
	// joinVal waits for the in-flight validation (if any), fills its
	// epoch's stats, reports to the monitor, applies KeepBest, and reports
	// whether StopAtValQ fired for that epoch.
	joinVal := func() (bool, error) {
		if valCh == nil {
			return false, nil
		}
		r := <-valCh
		valCh = nil
		if r.err != nil {
			return false, r.err
		}
		st := &stats[valIdx]
		st.ValMeanQ = mean(r.qs)
		st.ValMedQ = median(r.qs)
		mon.Epoch(st.Epoch, st.TrainLoss, st.ValMeanQ, st.ValMedQ)
		if m.Cfg.KeepBest && qBetter(st.ValMeanQ, bestVal) {
			bestVal = st.ValMeanQ
			snapshotFrom(valModel.Params())
		}
		return opts.StopAtValQ > 0 && !math.IsNaN(st.ValMeanQ) && st.ValMeanQ <= opts.StopAtValQ, nil
	}

	// The trainer state (packed batches, workspaces, gradient buffers) and
	// the staging slices live across every step of every epoch: steady-state
	// training allocates nothing per step beyond what shape growth and, at
	// P>1, the per-step fork/join demand.
	var (
		encs    []featurize.Encoded
		targets []float64
	)
	for epoch := 1; epoch <= epochs; epoch++ {
		//deepsketch:ignore determinism epoch wall-clock telemetry; never feeds weights
		start := time.Now()
		order := shuffle(rng, len(train))
		var lossSum float64
		var batches int
		for lo := 0; lo < len(order); lo += m.Cfg.BatchSize {
			hi := lo + m.Cfg.BatchSize
			if hi > len(order) {
				hi = len(order)
			}
			encs = encs[:0]
			targets = targets[:0]
			for _, idx := range order[lo:hi] {
				encs = append(encs, train[idx].Enc)
				targets = append(targets, ys[idx])
			}
			loss, err := tr.step(encs, targets, norm)
			if err != nil {
				return stats, err
			}
			opt.Step(params)
			lossSum += loss
			batches++
		}
		//deepsketch:ignore determinism epoch wall-clock telemetry; never feeds weights
		st := EpochStats{Epoch: epoch, TrainLoss: lossSum / float64(batches), Duration: time.Since(start)}
		if pipeline {
			// Duration covers the training loop only; validation overlaps
			// the next epoch. Val metrics land when val(epoch) is joined.
			stats = append(stats, st)
			stop, err := joinVal() // val(epoch-1), overlapped with this epoch
			if err != nil {
				return stats, err
			}
			if stop {
				// The serial schedule ends at the validated epoch: drop the
				// speculative epoch just trained and roll back to the
				// boundary weights validation saw.
				stats = stats[:valIdx+1]
				vp := valModel.Params()
				for i, p := range params {
					copy(p.Data, vp[i].Data)
				}
				stoppedEarly = true
				break
			}
			launchVal()
			continue
		}
		if len(val) > 0 {
			qs, err := m.evalQErrors(val, norm)
			if err != nil {
				return stats, err
			}
			st.ValMeanQ = mean(qs)
			st.ValMedQ = median(qs)
		}
		stats = append(stats, st)
		mon.Epoch(epoch, st.TrainLoss, st.ValMeanQ, st.ValMedQ)
		if m.Cfg.KeepBest && len(val) > 0 && qBetter(st.ValMeanQ, bestVal) {
			bestVal = st.ValMeanQ
			snapshotFrom(params)
		}
		if opts.StopAtValQ > 0 && len(val) > 0 && !math.IsNaN(st.ValMeanQ) && st.ValMeanQ <= opts.StopAtValQ {
			break
		}
	}
	if pipeline && !stoppedEarly {
		// Join the final epoch's validation. A StopAtValQ hit here needs no
		// rollback — the serial schedule would end after this epoch too.
		if _, err := joinVal(); err != nil {
			return stats, err
		}
	}
	if m.Cfg.KeepBest && bestWeights != nil {
		for i, p := range params {
			copy(p.Data, bestWeights[i])
		}
	}
	if stoppedEarly && valOptState != nil {
		// The optimizer ran one epoch past the stop point; the exported
		// state must be the boundary's, as the serial schedule would leave.
		m.optState = valOptState
	} else {
		m.optState = opt.ExportState(params)
	}
	m.noteWeightsChanged()
	return stats, nil
}

// qBetter reports whether cur is a strictly better validation mean q-error
// than best. NaN is strictly worse than any real value: a NaN cur never
// wins (so KeepBest cannot snapshot diverged weights), and a NaN best —
// the before-first-snapshot sentinel — loses to any real cur.
func qBetter(cur, best float64) bool {
	if math.IsNaN(cur) {
		return false
	}
	return math.IsNaN(best) || cur < best
}

// evalQErrors predicts the validation examples and returns their q-errors.
// It always runs the f64 reference path: training mutates weights without
// bumping the weight generation, so reduced-precision snapshots would be
// stale mid-run — and KeepBest/StopAtValQ decisions must not depend on the
// serving precision anyway.
//
//deepsketch:ctxorigin synchronous validation pass inside the training loop; cancellation arrives via the trainer
func (m *Model) evalQErrors(val []Example, norm nn.LabelNorm) ([]float64, error) {
	encs := make([]featurize.Encoded, len(val))
	for i, ex := range val {
		encs[i] = ex.Enc
	}
	preds := make([]float64, len(encs))
	if err := m.Engine().predictAllF64(context.Background(), encs, preds); err != nil {
		return nil, err
	}
	qs := make([]float64, len(val))
	for i, ex := range val {
		qs[i] = norm.QErrorOf(preds[i], norm.Normalize(ex.Card))
	}
	return qs, nil
}

// Predict returns the normalized prediction for one featurized query via
// the packed inference engine.
func (m *Model) Predict(enc featurize.Encoded) (float64, error) {
	return m.Engine().Predict(enc)
}

// PredictAll returns normalized predictions for many featurized queries via
// the packed inference engine (chunked into inference batches; mixed shapes
// carry no padding).
func (m *Model) PredictAll(encs []featurize.Encoded) ([]float64, error) {
	return m.Engine().PredictAll(encs)
}

// trainRand derives the training RNG (shuffles, validation split) from the
// model seed; exposed within the package so tests can reproduce the split.
func trainRand(seed int64) *rand.Rand { return datagen.NewRand(seed ^ 0x7ea1) }

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := make([]float64, len(xs))
	copy(c, xs)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}
