package mscn

import (
	"math/rand"
	"testing"
)

// TestTrainCapturesOptState: training must leave the final Adam state on the
// model — step count equal to the number of optimizer steps taken, moments
// shaped like the parameters.
func TestTrainCapturesOptState(t *testing.T) {
	const tdim, jdim, pdim = 13, 3, 5
	rng := rand.New(rand.NewSource(81))
	examples, norm := trainExamples(rng, 50, tdim, jdim, pdim)
	cfg := Config{HiddenUnits: 8, Epochs: 3, BatchSize: 16, Seed: 2}
	m := New(cfg, tdim, jdim, pdim)
	if m.OptState() != nil {
		t.Fatal("untrained model has optimizer state")
	}
	if _, err := m.TrainWithOptions(examples, norm, nil, TrainOptions{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	st := m.OptState()
	if st == nil {
		t.Fatal("no optimizer state captured")
	}
	// 50 examples, 10% validation → 45 train rows → 3 batches of ≤16, over
	// 3 epochs.
	if want := 3 * 3; st.Step != want {
		t.Errorf("opt state step = %d, want %d", st.Step, want)
	}
	params := m.Params()
	if len(st.M) != len(params) {
		t.Fatalf("opt state has %d moment vectors, want %d", len(st.M), len(params))
	}
	for i, p := range params {
		if len(st.M[i]) != len(p.Data) || len(st.V[i]) != len(p.Data) {
			t.Fatalf("opt state %d shaped %d/%d, want %d", i, len(st.M[i]), len(st.V[i]), len(p.Data))
		}
	}
}

// TestTrainResumeDeterministic: a warm-start resume is part of the
// deterministic training contract — two identical resumes from the same
// clone produce bitwise-identical weights, the step count accumulates
// across runs, and the donor model is untouched.
func TestTrainResumeDeterministic(t *testing.T) {
	const tdim, jdim, pdim = 17, 4, 6
	rng := rand.New(rand.NewSource(82))
	examples, norm := trainExamples(rng, 60, tdim, jdim, pdim)
	delta, _ := trainExamples(rng, 40, tdim, jdim, pdim)
	cfg := Config{HiddenUnits: 8, Epochs: 2, BatchSize: 16, Seed: 3}

	base := New(cfg, tdim, jdim, pdim)
	if _, err := base.TrainWithOptions(examples, norm, nil, TrainOptions{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	baseStep := base.OptState().Step
	baseWeights := weightsOf(base)

	resume := func() *Model {
		c := base.Clone()
		if _, err := c.TrainWithOptions(delta, norm, nil, TrainOptions{
			Parallelism: 1, Resume: c.OptState(), Epochs: 2,
		}); err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := resume(), resume()
	wa, wb := weightsOf(a), weightsOf(b)
	for i := range wa {
		for j := range wa[i] {
			if wa[i][j] != wb[i][j] {
				t.Fatalf("param %d[%d]: resumed runs differ (%v vs %v)", i, j, wa[i][j], wb[i][j])
			}
		}
	}
	if a.OptState().Step <= baseStep {
		t.Errorf("resumed step = %d, want > base %d", a.OptState().Step, baseStep)
	}
	// The donor stays untouched: weights and state unchanged.
	if d := maxWeightDiff(baseWeights, weightsOf(base)); d != 0 {
		t.Errorf("resume mutated the donor's weights (max diff %g)", d)
	}
	if base.OptState().Step != baseStep {
		t.Errorf("resume mutated the donor's optimizer state")
	}
	// And resuming must actually matter: a cold-optimizer fine-tune from the
	// same weights diverges from the warm one.
	cold := base.Clone()
	if _, err := cold.TrainWithOptions(delta, norm, nil, TrainOptions{Parallelism: 1, Epochs: 2}); err != nil {
		t.Fatal(err)
	}
	if d := maxWeightDiff(wa, weightsOf(cold)); d == 0 {
		t.Error("warm and cold fine-tunes are identical — Resume had no effect")
	}
}

// TestTrainEpochsOverrideAndEarlyStop: opts.Epochs caps the run without
// touching Config, and StopAtValQ ends it as soon as the validation mean
// q-error is good enough.
func TestTrainEpochsOverrideAndEarlyStop(t *testing.T) {
	const tdim, jdim, pdim = 13, 3, 5
	rng := rand.New(rand.NewSource(83))
	examples, norm := trainExamples(rng, 50, tdim, jdim, pdim)
	cfg := Config{HiddenUnits: 8, Epochs: 6, BatchSize: 16, Seed: 4}

	m := New(cfg, tdim, jdim, pdim)
	stats, err := m.TrainWithOptions(examples, norm, nil, TrainOptions{Parallelism: 1, Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Errorf("epochs override: ran %d epochs, want 2", len(stats))
	}

	m2 := New(cfg, tdim, jdim, pdim)
	stats, err = m2.TrainWithOptions(examples, norm, nil, TrainOptions{Parallelism: 1, StopAtValQ: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 {
		t.Errorf("trivial StopAtValQ: ran %d epochs, want 1", len(stats))
	}
}

// TestModelClone: independent weights, equal predictions, copied optimizer
// state.
func TestModelClone(t *testing.T) {
	const tdim, jdim, pdim = 13, 3, 5
	rng := rand.New(rand.NewSource(84))
	examples, norm := trainExamples(rng, 40, tdim, jdim, pdim)
	m := New(Config{HiddenUnits: 8, Epochs: 2, BatchSize: 16, Seed: 5}, tdim, jdim, pdim)
	if _, err := m.TrainWithOptions(examples, norm, nil, TrainOptions{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	if d := maxWeightDiff(weightsOf(m), weightsOf(c)); d != 0 {
		t.Fatalf("clone weights differ (max diff %g)", d)
	}
	if c.OptState() == nil || c.OptState().Step != m.OptState().Step {
		t.Fatal("clone did not copy optimizer state")
	}
	// Mutating the clone leaves the original alone.
	c.Params()[0].Data[0] += 1
	c.OptState().M[0][0] += 1
	if m.Params()[0].Data[0] == c.Params()[0].Data[0] {
		t.Error("clone shares weight storage with the original")
	}
	if m.OptState().M[0][0] == c.OptState().M[0][0] {
		t.Error("clone shares optimizer state with the original")
	}
}

// TestShardedReductionMatchesSerial: the range-sharded gradient reduction
// must be bitwise identical to the serial worker-ordered loop — sharding
// splits the element space, never the per-element summation order. The
// model is wide enough that reduce() actually takes the sharded path.
func TestShardedReductionMatchesSerial(t *testing.T) {
	const tdim, jdim, pdim = 600, 7, 17
	m := New(Config{HiddenUnits: 32, Seed: 6}, tdim, jdim, pdim)
	params := m.Params()
	const p = 4
	tr := newPackedTrainer(m, params, p)
	if tr.reduceTotal < minShardedReduce {
		t.Fatalf("test model too small to exercise sharded reduction (%d < %d)", tr.reduceTotal, minShardedReduce)
	}
	rng := rand.New(rand.NewSource(85))
	for _, wk := range tr.workers {
		for _, g := range wk.grads {
			for i := range g {
				g[i] = rng.NormFloat64()
			}
		}
	}
	// Serial reference, accumulated into separate buffers.
	want := make([][]float64, len(params))
	for i, param := range params {
		want[i] = make([]float64, len(param.Grad))
		for w := 0; w < p; w++ {
			for j, g := range tr.workers[w].grads[i] {
				want[i][j] += g
			}
		}
	}
	tr.reduce(p)
	for i, param := range params {
		for j := range param.Grad {
			if param.Grad[j] != want[i][j] {
				t.Fatalf("param %d[%d]: sharded %v != serial %v", i, j, param.Grad[j], want[i][j])
			}
		}
	}
}
