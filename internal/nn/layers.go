package nn

import (
	"math"
	"math/rand"
)

// Param is a learnable parameter tensor with its gradient accumulator.
type Param struct {
	Name string
	Data []float64
	Grad []float64
}

// NewParam allocates a named parameter of n elements.
func NewParam(name string, n int) *Param {
	return &Param{Name: name, Data: make([]float64, n), Grad: make([]float64, n)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// Linear is a fully-connected layer: y = x·Wᵀ + b with W stored row-major
// as [out][in].
type Linear struct {
	In, Out int
	W       *Param
	B       *Param
}

// NewLinear constructs a layer with He-uniform initialized weights and
// PyTorch-style uniform bias init (±1/√in), drawn from the given
// deterministic rng. Non-zero biases also keep zero-vector padding elements
// off the ReLU kink, which matters for gradient checking.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	l := &Linear{In: in, Out: out, W: NewParam(name+".W", in*out), B: NewParam(name+".b", out)}
	bound := math.Sqrt(6.0 / float64(in))
	for i := range l.W.Data {
		l.W.Data[i] = (rng.Float64()*2 - 1) * bound
	}
	bBound := 1.0 / math.Sqrt(float64(in))
	for i := range l.B.Data {
		l.B.Data[i] = (rng.Float64()*2 - 1) * bBound
	}
	return l
}

// Params returns the layer's learnable parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// dot computes Σ a[i]*b[i] with four accumulators to break the FP add
// dependency chain; a and b must have equal length.
func dot(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(a)
	b = b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// axpy computes y[i] += alpha * x[i]; x and y must have equal length.
func axpy(alpha float64, x, y []float64) {
	n := len(x)
	y = y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// Forward computes y = x·Wᵀ + b for a batch of rows.
func (l *Linear) Forward(x Matrix) Matrix {
	y := NewMatrix(x.Rows, l.Out)
	l.ForwardInto(x, y, false)
	return y
}

// ForwardInto computes y = x·Wᵀ + b into the preallocated y, optionally
// fusing ReLU, parallelized over row blocks. It is the reusable-buffer
// variant of Forward for the training loop; the serial allocation-free
// inference kernel is ForwardFused.
func (l *Linear) ForwardInto(x, y Matrix, relu bool) {
	if x.Cols != l.In || y.Rows != x.Rows || y.Cols != l.Out {
		panic("nn: Linear.ForwardInto dimension mismatch")
	}
	w, b := l.W.Data, l.B.Data
	parallelRows(x.Rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			xr := x.Row(r)
			yr := y.Row(r)
			for o := 0; o < l.Out; o++ {
				v := dot(xr, w[o*l.In:(o+1)*l.In]) + b[o]
				if relu && v < 0 {
					v = 0
				}
				yr[o] = v
			}
		}
	})
}

// Backward computes dx from dy and accumulates parameter gradients, given
// the forward input x.
func (l *Linear) Backward(x, dy Matrix) Matrix {
	dx := NewMatrix(x.Rows, l.In)
	l.BackwardInto(x, dy, &dx)
	return dx
}

// BackwardInto accumulates parameter gradients and, when dx is non-nil,
// writes the input gradient into *dx (preallocated x.Rows×l.In, fully
// overwritten). Passing nil dx skips the input-gradient GEMM entirely —
// the first layer of each set module never needs gradients with respect to
// its features, and at bitmap-sized input widths that pass dominates.
func (l *Linear) BackwardInto(x, dy Matrix, dx *Matrix) {
	if dy.Cols != l.Out || x.Rows != dy.Rows || x.Cols != l.In {
		panic("nn: Linear.Backward dimension mismatch")
	}
	w := l.W.Data

	// dx[r] = Σ_o dy[r,o] * W[o,:] — parallel over batch rows.
	if dx != nil {
		if dx.Rows != x.Rows || dx.Cols != l.In {
			panic("nn: Linear.BackwardInto dx dimension mismatch")
		}
		d := *dx
		parallelRows(x.Rows, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				dyr := dy.Row(r)
				dxr := d.Row(r)
				for i := range dxr {
					dxr[i] = 0
				}
				for o := 0; o < l.Out; o++ {
					if g := dyr[o]; g != 0 {
						axpy(g, w[o*l.In:(o+1)*l.In], dxr)
					}
				}
			}
		})
	}

	// dW[o,:] += Σ_r dy[r,o] * x[r,:]; db[o] += Σ_r dy[r,o] — parallel over
	// output units so accumulators never race.
	dW, dB := l.W.Grad, l.B.Grad
	parallelRows(l.Out, func(olo, ohi int) {
		for r := 0; r < x.Rows; r++ {
			dyr := dy.Row(r)
			xr := x.Row(r)
			for o := olo; o < ohi; o++ {
				g := dyr[o]
				if g == 0 {
					continue
				}
				dB[o] += g
				axpy(g, xr, dW[o*l.In:(o+1)*l.In])
			}
		}
	})
}

// ReLU applies max(0, x) element-wise, returning a new matrix.
func ReLU(x Matrix) Matrix {
	y := NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
		}
	}
	return y
}

// ReLUBackward computes dx given the forward *output* y and dy: gradient
// passes where the output was positive.
func ReLUBackward(y, dy Matrix) Matrix {
	dx := NewMatrix(dy.Rows, dy.Cols)
	for i, v := range y.Data {
		if v > 0 {
			dx.Data[i] = dy.Data[i]
		}
	}
	return dx
}

// Sigmoid applies 1/(1+e^-x) element-wise.
func Sigmoid(x Matrix) Matrix {
	y := NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		y.Data[i] = 1.0 / (1.0 + math.Exp(-v))
	}
	return y
}

// SigmoidBackward computes dx given the forward output y and dy:
// σ'(x) = y·(1−y).
func SigmoidBackward(y, dy Matrix) Matrix {
	dx := NewMatrix(dy.Rows, dy.Cols)
	for i, v := range y.Data {
		dx.Data[i] = dy.Data[i] * v * (1 - v)
	}
	return dx
}

// SigmoidInPlace applies 1/(1+e^-x) element-wise, overwriting x.
//
//deepsketch:zeroalloc
func SigmoidInPlace(x Matrix) {
	for i, v := range x.Data {
		x.Data[i] = 1.0 / (1.0 + math.Exp(-v))
	}
}

// ReLUBackwardInPlace masks dy in place given the forward output y: the
// gradient survives only where the output was positive. Legal whenever the
// tape no longer needs the unmasked dy (always true in this model).
func ReLUBackwardInPlace(y, dy Matrix) {
	for i, v := range y.Data {
		if v <= 0 {
			dy.Data[i] = 0
		}
	}
}

// SigmoidBackwardInPlace scales dy in place by σ'(x) = y·(1−y). Evaluation
// order matches SigmoidBackward bit-for-bit.
func SigmoidBackwardInPlace(y, dy Matrix) {
	for i, v := range y.Data {
		dy.Data[i] = dy.Data[i] * v * (1 - v)
	}
}

// MaskedAvgPool averages set-element representations into one vector per
// set. x is (B·S)×H (B sets of S padded elements); mask is length B·S with
// 1 for valid elements. Sets whose mask is all zero yield a zero vector
// (division guarded), though callers are expected to pad empty sets with a
// single zero element instead.
func MaskedAvgPool(x Matrix, mask []float64, b, s int) Matrix {
	out := NewMatrix(b, x.Cols)
	MaskedAvgPoolInto(x, mask, b, s, out)
	return out
}

// MaskedAvgPoolInto is MaskedAvgPool writing into a preallocated b×x.Cols
// matrix (fully overwritten).
func MaskedAvgPoolInto(x Matrix, mask []float64, b, s int, out Matrix) {
	if x.Rows != b*s || len(mask) != b*s || out.Rows != b || out.Cols != x.Cols {
		panic("nn: MaskedAvgPool shape mismatch")
	}
	for bi := 0; bi < b; bi++ {
		dst := out.Row(bi)
		for c := range dst {
			dst[c] = 0
		}
		var n float64
		for si := 0; si < s; si++ {
			r := bi*s + si
			if mask[r] == 0 {
				continue
			}
			n++
			src := x.Row(r)
			for c, v := range src {
				dst[c] += v
			}
		}
		if n > 0 {
			inv := 1.0 / n
			for c := range dst {
				dst[c] *= inv
			}
		}
	}
}

// MaskedAvgPoolBackward distributes dOut (B×H) back to the set elements.
func MaskedAvgPoolBackward(dOut Matrix, mask []float64, b, s int) Matrix {
	dx := NewMatrix(b*s, dOut.Cols)
	MaskedAvgPoolBackwardInto(dOut, mask, b, s, dx)
	return dx
}

// MaskedAvgPoolBackwardInto is MaskedAvgPoolBackward writing into a
// preallocated (b·s)×dOut.Cols matrix (fully overwritten).
func MaskedAvgPoolBackwardInto(dOut Matrix, mask []float64, b, s int, dx Matrix) {
	if dx.Rows != b*s || dx.Cols != dOut.Cols {
		panic("nn: MaskedAvgPoolBackward shape mismatch")
	}
	for bi := 0; bi < b; bi++ {
		var n float64
		for si := 0; si < s; si++ {
			if mask[bi*s+si] != 0 {
				n++
			}
		}
		inv := 0.0
		if n > 0 {
			inv = 1.0 / n
		}
		src := dOut.Row(bi)
		for si := 0; si < s; si++ {
			r := bi*s + si
			dst := dx.Row(r)
			if mask[r] == 0 || n == 0 {
				for c := range dst {
					dst[c] = 0
				}
				continue
			}
			for c, v := range src {
				dst[c] = v * inv
			}
		}
	}
}
