package nn

import (
	"bytes"
	"math/rand"
	"testing"
)

// optTestParams builds a small deterministic parameter set with gradients.
func optTestParams(seed int64) []*Param {
	rng := rand.New(rand.NewSource(seed))
	ps := []*Param{NewParam("a", 7), NewParam("b", 3)}
	for _, p := range ps {
		for i := range p.Data {
			p.Data[i] = rng.NormFloat64()
		}
	}
	return ps
}

func fillGrads(params []*Param, rng *rand.Rand) {
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] = rng.NormFloat64()
		}
	}
}

// TestAdamResumeMatchesUninterrupted: stepping K times, exporting, restoring
// into a fresh optimizer over a copied parameter set, and stepping K more
// times must reproduce the uninterrupted 2K-step run bitwise — the property
// the warm-start refresh path relies on.
func TestAdamResumeMatchesUninterrupted(t *testing.T) {
	const k = 5
	full := optTestParams(1)
	split := optTestParams(1)

	fullOpt := NewAdam(1e-2, 0)
	splitOpt := NewAdam(1e-2, 0)
	rngA := rand.New(rand.NewSource(9))
	rngB := rand.New(rand.NewSource(9))
	for i := 0; i < k; i++ {
		fillGrads(full, rngA)
		fullOpt.Step(full)
		fillGrads(split, rngB)
		splitOpt.Step(split)
	}

	// Serialize the split run's state and restore it into a fresh optimizer.
	st := splitOpt.ExportState(split)
	var buf bytes.Buffer
	if err := WriteOptState(&buf, st); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadOptState(&buf, split)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Step != k {
		t.Fatalf("restored step = %d, want %d", loaded.Step, k)
	}
	resumed := NewAdam(1e-2, 0)
	if err := resumed.RestoreState(split, loaded); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < k; i++ {
		fillGrads(full, rngA)
		fullOpt.Step(full)
		fillGrads(split, rngB)
		resumed.Step(split)
	}
	for pi := range full {
		for i := range full[pi].Data {
			if full[pi].Data[i] != split[pi].Data[i] {
				t.Fatalf("param %d[%d]: resumed %v != uninterrupted %v",
					pi, i, split[pi].Data[i], full[pi].Data[i])
			}
		}
	}
}

// TestRestoreStateCopies: mutating the caller's OptState after RestoreState
// must not affect the optimizer, and vice versa.
func TestRestoreStateCopies(t *testing.T) {
	params := optTestParams(2)
	opt := NewAdam(1e-2, 0)
	fillGrads(params, rand.New(rand.NewSource(3)))
	opt.Step(params)
	st := opt.ExportState(params)
	orig := st.Clone()

	fresh := NewAdam(1e-2, 0)
	if err := fresh.RestoreState(params, st); err != nil {
		t.Fatal(err)
	}
	fillGrads(params, rand.New(rand.NewSource(4)))
	fresh.Step(params)
	for i := range st.M {
		for j := range st.M[i] {
			if st.M[i][j] != orig.M[i][j] || st.V[i][j] != orig.V[i][j] {
				t.Fatal("optimizer step mutated the caller's OptState")
			}
		}
	}
}

func TestRestoreStateShapeMismatch(t *testing.T) {
	params := optTestParams(5)
	opt := NewAdam(1e-2, 0)
	st := opt.ExportState(params)

	if err := NewAdam(1e-2, 0).RestoreState(params[:1], st); err == nil {
		t.Error("param-count mismatch not rejected")
	}
	st.M[0] = st.M[0][:2]
	if err := NewAdam(1e-2, 0).RestoreState(params, st); err == nil {
		t.Error("element-count mismatch not rejected")
	}
}

// TestReadOptStateRejectsMismatchedShapes: block lengths are validated
// against the architecture before any allocation, so a forged stream
// claiming a huge block fails fast instead of demanding gigabytes (sketch
// files are accepted over the network by the daemon's upload endpoint).
func TestReadOptStateRejectsMismatchedShapes(t *testing.T) {
	params := optTestParams(6)
	st := NewAdam(1e-2, 0).ExportState(params)
	var buf bytes.Buffer
	if err := WriteOptState(&buf, st); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadOptState(bytes.NewReader(buf.Bytes()), params[:1]); err == nil {
		t.Error("param-count mismatch not rejected")
	}
	// Forge a stream: step, 1 param, block length 2^28 — must be rejected
	// before allocating, i.e. with a length-mismatch error, not OOM or EOF.
	forged := make([]byte, 0, 16)
	forged = append(forged, make([]byte, 8)...) // step = 0
	forged = append(forged, 1, 0, 0, 0)         // nParams = 1
	forged = append(forged, 0, 0, 0, 16)        // block len = 1<<28
	if _, err := ReadOptState(bytes.NewReader(forged), params[:1]); err == nil {
		t.Error("oversized forged block not rejected")
	}
}

func TestOptStateCloneNil(t *testing.T) {
	var st *OptState
	if st.Clone() != nil {
		t.Error("nil clone should be nil")
	}
}
