package nn

import "math"

// LossKind selects the training objective.
type LossKind int

const (
	// LossQError is the paper's objective: the mean q-error between the
	// unnormalized estimated and true cardinalities ("we train our model
	// with the objective of minimizing the mean q-error").
	LossQError LossKind = iota
	// LossL1Log is mean absolute error in log-cardinality space, i.e. the
	// mean of log(q-error) — a smoother alternative used for ablations.
	LossL1Log
)

func (k LossKind) String() string {
	switch k {
	case LossQError:
		return "qerror"
	case LossL1Log:
		return "l1log"
	default:
		return "unknown"
	}
}

// LabelNorm maps cardinalities to the network's (0,1) output range and back.
// Following the paper, labels are logarithmized and normalized with the
// extrema present in the training data: y = (ln(card) − MinLog) /
// (MaxLog − MinLog).
type LabelNorm struct {
	MinLog float64
	MaxLog float64
}

// NewLabelNorm derives normalization bounds from training cardinalities.
// Cardinalities are clamped to ≥ 1 before the log. A degenerate range (all
// labels equal) widens by 1 so the inverse stays defined.
func NewLabelNorm(cards []int64) LabelNorm {
	ln := LabelNorm{MinLog: math.Inf(1), MaxLog: math.Inf(-1)}
	for _, c := range cards {
		l := logCard(c)
		if l < ln.MinLog {
			ln.MinLog = l
		}
		if l > ln.MaxLog {
			ln.MaxLog = l
		}
	}
	if len(cards) == 0 {
		ln.MinLog, ln.MaxLog = 0, 1
	}
	if ln.MaxLog <= ln.MinLog {
		ln.MaxLog = ln.MinLog + 1
	}
	return ln
}

func logCard(c int64) float64 {
	if c < 1 {
		c = 1
	}
	return math.Log(float64(c))
}

// Scale is MaxLog − MinLog.
func (n LabelNorm) Scale() float64 { return n.MaxLog - n.MinLog }

// Normalize maps a cardinality to (0,1).
func (n LabelNorm) Normalize(card int64) float64 {
	return (logCard(card) - n.MinLog) / n.Scale()
}

// Denormalize maps a network output back to a cardinality (≥ 1).
func (n LabelNorm) Denormalize(y float64) float64 {
	card := math.Exp(n.MinLog + y*n.Scale())
	if card < 1 {
		return 1
	}
	return card
}

// QErrorOf computes the q-error implied by normalized prediction and target:
// exp(scale·|y−t|). Exact because q = max(p/t, t/p) = e^{|ln p − ln t|}.
func (n LabelNorm) QErrorOf(y, t float64) float64 {
	return math.Exp(n.Scale() * math.Abs(y-t))
}

// Loss computes the mean loss over normalized predictions/targets and the
// gradient d(loss)/d(pred). The q-error gradient grows with the q-error
// itself and is capped per-sample at gradCap (the optimizer additionally
// clips the global norm); gradCap <= 0 means no cap.
func Loss(kind LossKind, norm LabelNorm, preds, targets []float64, gradCap float64) (loss float64, grad []float64) {
	grad = make([]float64, len(preds))
	if len(preds) == 0 {
		if len(targets) != 0 {
			panic("nn: Loss length mismatch")
		}
		return 0, grad
	}
	invN := 1.0 / float64(len(preds))
	return LossSumInto(kind, norm, preds, targets, grad, gradCap, invN) * invN, grad
}

// LossSumInto computes per-sample loss gradients into grad (scaled by invN,
// the reciprocal of the full batch size) and returns the *sum* of per-sample
// losses, unscaled. It is the shard-friendly core of Loss: per-sample
// gradients depend only on their own prediction, so data-parallel workers
// each run LossSumInto on their contiguous shard with the full-batch invN
// and the caller combines the returned sums in worker order — reproducing
// Loss over the whole batch exactly. No allocations.
//
//deepsketch:deterministic
func LossSumInto(kind LossKind, norm LabelNorm, preds, targets, grad []float64, gradCap, invN float64) float64 {
	if len(preds) != len(targets) || len(grad) != len(preds) {
		panic("nn: Loss length mismatch")
	}
	scale := norm.Scale()
	var loss float64
	for i, y := range preds {
		t := targets[i]
		diff := y - t
		sign := 1.0
		if diff < 0 {
			sign = -1
		}
		switch kind {
		case LossQError:
			q := math.Exp(scale * math.Abs(diff))
			loss += q
			g := sign * scale * q
			if gradCap > 0 {
				if g > gradCap {
					g = gradCap
				} else if g < -gradCap {
					g = -gradCap
				}
			}
			grad[i] = g * invN
		case LossL1Log:
			loss += scale * math.Abs(diff)
			grad[i] = sign * scale * invN
		}
	}
	return loss
}
