package nn

// Inference-only kernels: a bump-allocated scratch arena (Workspace), fused
// Linear+ReLU with a register-tiled GEMM, and CSR-style segment pooling.
// These power the packed ragged-batch engine in internal/mscn. They are
// deliberately serial and allocation-free: concurrency comes from running
// independent forward passes on separate Workspaces (one per goroutine),
// not from fanning a single pass across cores. The training path keeps the
// tape-friendly allocating functions in layers.go.

// Workspace is a reusable scratch arena for inference forward passes. Alloc
// hands out matrices backed by one contiguous buffer via bump allocation;
// Reset recycles the whole arena without freeing. After the buffer has grown
// to a steady-state batch shape, a Reserve/Alloc cycle performs zero heap
// allocations.
//
// Ownership rules: a Workspace may serve at most one forward pass at a time —
// it is NOT safe for concurrent use. Matrices returned by Alloc alias the
// arena and die at the next Reset/Reserve; callers must copy anything they
// keep. Pool Workspaces (e.g. sync.Pool) to serve concurrent traffic.
type Workspace struct {
	buf []float64
	off int
}

// Reserve resets the arena and ensures capacity for n floats, so that
// subsequent Allocs totalling at most n cannot grow the buffer mid-pass.
//
//deepsketch:zeroalloc
func (w *Workspace) Reserve(n int) {
	if cap(w.buf) < n {
		//deepsketch:ignore zeroalloc amortized arena growth; steady state never reallocates
		w.buf = make([]float64, n)
	} else {
		w.buf = w.buf[:cap(w.buf)]
	}
	w.off = 0
}

// Reset recycles the arena, invalidating previously allocated matrices.
func (w *Workspace) Reset() { w.off = 0 }

// Alloc returns a rows×cols matrix carved from the arena. Contents are
// uninitialized — every kernel writing into it must overwrite or zero it.
// Growth (when Reserve underestimated) leaves earlier matrices valid on the
// old backing array.
//
//deepsketch:zeroalloc
func (w *Workspace) Alloc(rows, cols int) Matrix {
	n := rows * cols
	if w.off+n > len(w.buf) {
		grow := 2 * len(w.buf)
		if grow < n {
			grow = n
		}
		//deepsketch:ignore zeroalloc amortized arena growth; steady state never reallocates
		w.buf = make([]float64, grow)
		w.off = 0
	}
	m := Matrix{Rows: rows, Cols: cols, Data: w.buf[w.off : w.off+n : w.off+n]}
	w.off += n
	return m
}

// ForwardFused computes y = x·Wᵀ + b into the preallocated y, optionally
// fusing ReLU, using a 2×4 register-tiled GEMM over the rows. It runs on the
// calling goroutine only and performs no allocations — the packed inference
// path. y must be x.Rows×l.Out and may not alias x.
//
//deepsketch:zeroalloc
func (l *Linear) ForwardFused(x, y Matrix, relu bool) {
	if x.Cols != l.In || y.Rows != x.Rows || y.Cols != l.Out {
		panic("nn: ForwardFused dimension mismatch")
	}
	gemmBias(x, l.W.Data, l.B.Data, y, relu)
}

// gemmBias is the serial blocked kernel behind ForwardFused: 2 rows × 4
// output units per tile, 8 independent accumulators, one pass over the
// shared inner dimension. The tile size is chosen for scalar Go on x86-64:
// 8 accumulators + 6 streamed values stay within the 16 vector registers
// (a 4×4 tile's 24 live floats spill and run slower), while each k-step
// still amortizes 6 loads over 8 multiply-adds — ~2.7× the arithmetic
// intensity of a per-element dot loop.
//
//deepsketch:zeroalloc
func gemmBias(x Matrix, w, bias []float64, y Matrix, relu bool) {
	in, out, n := x.Cols, y.Cols, x.Rows
	r := 0
	for ; r+2 <= n; r += 2 {
		x0 := x.Row(r)
		x1 := x.Row(r + 1)
		y0 := y.Row(r)
		y1 := y.Row(r + 1)
		o := 0
		for ; o+4 <= out; o += 4 {
			w0 := w[o*in : o*in+in]
			w1 := w[(o+1)*in : (o+1)*in+in]
			w2 := w[(o+2)*in : (o+2)*in+in]
			w3 := w[(o+3)*in : (o+3)*in+in]
			var a00, a01, a02, a03 float64
			var a10, a11, a12, a13 float64
			for k := 0; k < in; k++ {
				xv0, xv1 := x0[k], x1[k]
				wv0, wv1, wv2, wv3 := w0[k], w1[k], w2[k], w3[k]
				a00 += xv0 * wv0
				a01 += xv0 * wv1
				a02 += xv0 * wv2
				a03 += xv0 * wv3
				a10 += xv1 * wv0
				a11 += xv1 * wv1
				a12 += xv1 * wv2
				a13 += xv1 * wv3
			}
			b0, b1, b2, b3 := bias[o], bias[o+1], bias[o+2], bias[o+3]
			a00 += b0
			a01 += b1
			a02 += b2
			a03 += b3
			a10 += b0
			a11 += b1
			a12 += b2
			a13 += b3
			if relu {
				a00 = relu1(a00)
				a01 = relu1(a01)
				a02 = relu1(a02)
				a03 = relu1(a03)
				a10 = relu1(a10)
				a11 = relu1(a11)
				a12 = relu1(a12)
				a13 = relu1(a13)
			}
			y0[o], y0[o+1], y0[o+2], y0[o+3] = a00, a01, a02, a03
			y1[o], y1[o+1], y1[o+2], y1[o+3] = a10, a11, a12, a13
		}
		for ; o < out; o++ {
			wo := w[o*in : o*in+in]
			var a0, a1 float64
			for k := 0; k < in; k++ {
				wv := wo[k]
				a0 += x0[k] * wv
				a1 += x1[k] * wv
			}
			bo := bias[o]
			a0, a1 = a0+bo, a1+bo
			if relu {
				a0, a1 = relu1(a0), relu1(a1)
			}
			y0[o], y1[o] = a0, a1
		}
	}
	for ; r < n; r++ {
		xr := x.Row(r)
		yr := y.Row(r)
		o := 0
		for ; o+2 <= out; o += 2 {
			w0 := w[o*in : o*in+in]
			w1 := w[(o+1)*in : (o+1)*in+in]
			var a0, a1 float64
			for k := 0; k < in; k++ {
				xv := xr[k]
				a0 += xv * w0[k]
				a1 += xv * w1[k]
			}
			a0, a1 = a0+bias[o], a1+bias[o+1]
			if relu {
				a0, a1 = relu1(a0), relu1(a1)
			}
			yr[o], yr[o+1] = a0, a1
		}
		for ; o < out; o++ {
			wo := w[o*in : o*in+in]
			var a float64
			for k := 0; k < in; k++ {
				a += xr[k] * wo[k]
			}
			a += bias[o]
			if relu {
				a = relu1(a)
			}
			yr[o] = a
		}
	}
}

//deepsketch:zeroalloc
func relu1(v float64) float64 {
	if v > 0 {
		return v
	}
	return 0
}

// SegmentAvgPool averages contiguous row segments of x into rows of out —
// the padding-free replacement for MaskedAvgPool on the packed inference
// path. offsets is CSR-style with len = out.Rows+1: segment i spans rows
// offsets[i] to offsets[i+1] of x. Empty segments yield a zero row. out must
// be preallocated (B×x.Cols) and is fully overwritten; no allocations.
//
//deepsketch:zeroalloc
func SegmentAvgPool(x Matrix, offsets []int, out Matrix) {
	b := out.Rows
	if len(offsets) != b+1 || offsets[b] != x.Rows || out.Cols != x.Cols {
		panic("nn: SegmentAvgPool shape mismatch")
	}
	for i := 0; i < b; i++ {
		dst := out.Row(i)
		lo, hi := offsets[i], offsets[i+1]
		if hi == lo {
			for c := range dst {
				dst[c] = 0
			}
			continue
		}
		copy(dst, x.Row(lo))
		for r := lo + 1; r < hi; r++ {
			src := x.Row(r)
			for c, v := range src {
				dst[c] += v
			}
		}
		if n := hi - lo; n > 1 {
			inv := 1.0 / float64(n)
			for c := range dst {
				dst[c] *= inv
			}
		}
	}
}
