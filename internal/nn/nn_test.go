package nn

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"deepsketch/internal/datagen"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Error("Set/At mismatch")
	}
	r := m.Row(1)
	r[0] = 7
	if m.At(1, 0) != 7 {
		t.Error("Row should alias storage")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Clone should not alias")
	}
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Error("Zero failed")
	}
	if m.String() != "Matrix(2x3)" {
		t.Errorf("String = %s", m.String())
	}
}

func TestLinearForwardKnown(t *testing.T) {
	rng := datagen.NewRand(1)
	l := NewLinear("l", 2, 2, rng)
	copy(l.W.Data, []float64{1, 2, 3, 4}) // W = [[1,2],[3,4]]
	copy(l.B.Data, []float64{10, 20})
	x := NewMatrix(1, 2)
	copy(x.Data, []float64{5, 6})
	y := l.Forward(x)
	// y0 = 1*5+2*6+10 = 27; y1 = 3*5+4*6+20 = 59
	if y.At(0, 0) != 27 || y.At(0, 1) != 59 {
		t.Errorf("forward = %v", y.Data)
	}
}

func TestLinearShapePanics(t *testing.T) {
	rng := datagen.NewRand(1)
	l := NewLinear("l", 3, 2, rng)
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch should panic")
		}
	}()
	l.Forward(NewMatrix(1, 4))
}

func TestReLUAndSigmoid(t *testing.T) {
	x := NewMatrix(1, 4)
	copy(x.Data, []float64{-1, 0, 2, -3})
	y := ReLU(x)
	want := []float64{0, 0, 2, 0}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Errorf("relu[%d] = %v", i, y.Data[i])
		}
	}
	s := Sigmoid(x)
	if math.Abs(s.Data[1]-0.5) > 1e-12 {
		t.Errorf("sigmoid(0) = %v", s.Data[1])
	}
	if s.Data[0] >= 0.5 || s.Data[2] <= 0.5 {
		t.Error("sigmoid monotonicity broken")
	}
}

func TestMaskedAvgPool(t *testing.T) {
	// B=2 sets, S=3 elements, H=2.
	x := NewMatrix(6, 2)
	copy(x.Data, []float64{
		1, 2,
		3, 4,
		100, 100, // masked out
		10, 10,
		0, 0, // masked out
		0, 0, // masked out
	})
	mask := []float64{1, 1, 0, 1, 0, 0}
	out := MaskedAvgPool(x, mask, 2, 3)
	if out.At(0, 0) != 2 || out.At(0, 1) != 3 {
		t.Errorf("set 0 avg = %v", out.Row(0))
	}
	if out.At(1, 0) != 10 || out.At(1, 1) != 10 {
		t.Errorf("set 1 avg = %v", out.Row(1))
	}
	// Backward: gradient flows only to masked-in rows, scaled by 1/n.
	dOut := NewMatrix(2, 2)
	copy(dOut.Data, []float64{4, 4, 6, 6})
	dx := MaskedAvgPoolBackward(dOut, mask, 2, 3)
	if dx.At(0, 0) != 2 || dx.At(1, 0) != 2 || dx.At(2, 0) != 0 {
		t.Errorf("pool backward set 0: %v", dx.Data[:6])
	}
	if dx.At(3, 0) != 6 || dx.At(4, 0) != 0 {
		t.Errorf("pool backward set 1: %v", dx.Data[6:])
	}
}

func TestMaskedAvgPoolEmptySet(t *testing.T) {
	x := NewMatrix(2, 2)
	copy(x.Data, []float64{5, 5, 7, 7})
	mask := []float64{0, 0}
	out := MaskedAvgPool(x, mask, 1, 2)
	if out.At(0, 0) != 0 || out.At(0, 1) != 0 {
		t.Error("empty set should pool to zero")
	}
	dx := MaskedAvgPoolBackward(out, mask, 1, 2)
	for _, v := range dx.Data {
		if v != 0 {
			t.Error("empty set backward should be zero")
		}
	}
}

func TestLabelNorm(t *testing.T) {
	cards := []int64{1, 10, 100, 1000}
	n := NewLabelNorm(cards)
	if n.MinLog != 0 {
		t.Errorf("MinLog = %v", n.MinLog)
	}
	for _, c := range cards {
		y := n.Normalize(c)
		if y < 0 || y > 1 {
			t.Errorf("normalized %d = %v out of range", c, y)
		}
		back := n.Denormalize(y)
		if math.Abs(back-float64(c))/float64(c) > 1e-9 {
			t.Errorf("roundtrip %d -> %v", c, back)
		}
	}
	if n.Denormalize(-1) != 1 {
		t.Error("denormalize should clamp to >= 1")
	}
	deg := NewLabelNorm([]int64{50, 50})
	if deg.Scale() <= 0 {
		t.Error("degenerate norm must keep positive scale")
	}
	empty := NewLabelNorm(nil)
	if empty.Scale() <= 0 {
		t.Error("empty norm must keep positive scale")
	}
	if NewLabelNorm([]int64{0, 5}).MinLog != 0 {
		t.Error("zero card should clamp to log(1)=0")
	}
}

func TestLabelNormQErrorOf(t *testing.T) {
	n := NewLabelNorm([]int64{1, 100000})
	y := n.Normalize(1000)
	tgt := n.Normalize(100)
	q := n.QErrorOf(y, tgt)
	if math.Abs(q-10) > 1e-9 {
		t.Errorf("QErrorOf = %v, want 10", q)
	}
}

func TestLossQError(t *testing.T) {
	n := LabelNorm{MinLog: 0, MaxLog: math.Log(1000)}
	preds := []float64{n.Normalize(100)}
	targets := []float64{n.Normalize(10)}
	loss, grad := Loss(LossQError, n, preds, targets, 0)
	if math.Abs(loss-10) > 1e-9 {
		t.Errorf("qerror loss = %v, want 10", loss)
	}
	if grad[0] <= 0 {
		t.Error("overestimate should have positive gradient")
	}
	// Perfect prediction: loss 1 (q-error floor), zero-ish gradient magnitude
	// scale*1.
	loss2, _ := Loss(LossQError, n, targets, targets, 0)
	if math.Abs(loss2-1) > 1e-9 {
		t.Errorf("perfect loss = %v, want 1", loss2)
	}
	// Grad cap applies.
	_, g3 := Loss(LossQError, n, []float64{1}, []float64{0}, 5)
	if math.Abs(g3[0]) > 5 {
		t.Errorf("gradient cap violated: %v", g3[0])
	}
}

func TestLossL1Log(t *testing.T) {
	n := LabelNorm{MinLog: 0, MaxLog: 1}
	loss, grad := Loss(LossL1Log, n, []float64{0.7, 0.2}, []float64{0.5, 0.5}, 0)
	if math.Abs(loss-0.25) > 1e-9 { // (0.2 + 0.3)/2
		t.Errorf("l1log loss = %v", loss)
	}
	if grad[0] <= 0 || grad[1] >= 0 {
		t.Errorf("grad signs wrong: %v", grad)
	}
}

func TestLossKindString(t *testing.T) {
	if LossQError.String() != "qerror" || LossL1Log.String() != "l1log" || LossKind(9).String() != "unknown" {
		t.Error("LossKind.String broken")
	}
}

// TestLinearGradCheck verifies analytic gradients against central finite
// differences through a 2-layer ReLU network with sigmoid output and both
// loss kinds — the core correctness property of the backprop implementation.
func TestLinearGradCheck(t *testing.T) {
	rng := datagen.NewRand(77)
	const in, hid, bsz = 5, 4, 3
	l1 := NewLinear("l1", in, hid, rng)
	l2 := NewLinear("l2", hid, 1, rng)
	x := NewMatrix(bsz, in)
	for i := range x.Data {
		x.Data[i] = rng.Float64()*2 - 1
	}
	targets := []float64{0.3, 0.6, 0.9}
	norm := LabelNorm{MinLog: 0, MaxLog: 3}

	for _, kind := range []LossKind{LossQError, LossL1Log} {
		forward := func() float64 {
			h := ReLU(l1.Forward(x))
			o := Sigmoid(l2.Forward(h))
			loss, _ := Loss(kind, norm, o.Data, targets, 0)
			return loss
		}
		// Analytic gradients.
		for _, p := range append(l1.Params(), l2.Params()...) {
			p.ZeroGrad()
		}
		h1 := l1.Forward(x)
		a1 := ReLU(h1)
		h2 := l2.Forward(a1)
		o := Sigmoid(h2)
		_, dOut := Loss(kind, norm, o.Data, targets, 0)
		dO := NewMatrix(bsz, 1)
		copy(dO.Data, dOut)
		dH2 := SigmoidBackward(o, dO)
		dA1 := l2.Backward(a1, dH2)
		dH1 := ReLUBackward(a1, dA1)
		l1.Backward(x, dH1)

		// Finite differences on a sample of coordinates from every param.
		const eps = 1e-6
		for _, p := range []*Param{l1.W, l1.B, l2.W, l2.B} {
			step := len(p.Data)/5 + 1
			for i := 0; i < len(p.Data); i += step {
				orig := p.Data[i]
				p.Data[i] = orig + eps
				up := forward()
				p.Data[i] = orig - eps
				down := forward()
				p.Data[i] = orig
				numeric := (up - down) / (2 * eps)
				analytic := p.Grad[i]
				denom := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
				if math.Abs(numeric-analytic)/denom > 1e-4 {
					t.Errorf("%s kind=%s [%d]: analytic %v vs numeric %v",
						p.Name, kind, i, analytic, numeric)
				}
			}
		}
	}
}

// TestPoolGradCheck verifies MaskedAvgPool gradients numerically.
func TestPoolGradCheck(t *testing.T) {
	rng := datagen.NewRand(5)
	const b, s, h = 2, 3, 2
	x := NewMatrix(b*s, h)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	mask := []float64{1, 0, 1, 1, 1, 1}
	// Loss = sum of squares of pooled output.
	forward := func() float64 {
		out := MaskedAvgPool(x, mask, b, s)
		var l float64
		for _, v := range out.Data {
			l += v * v
		}
		return l
	}
	out := MaskedAvgPool(x, mask, b, s)
	dOut := NewMatrix(b, h)
	for i, v := range out.Data {
		dOut.Data[i] = 2 * v
	}
	dx := MaskedAvgPoolBackward(dOut, mask, b, s)
	const eps = 1e-6
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		up := forward()
		x.Data[i] = orig - eps
		down := forward()
		x.Data[i] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-dx.Data[i]) > 1e-6 {
			t.Errorf("pool grad [%d]: analytic %v vs numeric %v", i, dx.Data[i], numeric)
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w-3)^2: Adam should reach w≈3.
	p := NewParam("w", 1)
	p.Data[0] = -5
	opt := NewAdam(0.1, 0)
	for i := 0; i < 2000; i++ {
		p.Grad[0] = 2 * (p.Data[0] - 3)
		opt.Step([]*Param{p})
	}
	if math.Abs(p.Data[0]-3) > 0.01 {
		t.Errorf("Adam did not converge: w = %v", p.Data[0])
	}
}

func TestAdamClipNorm(t *testing.T) {
	p := NewParam("w", 2)
	p.Grad[0], p.Grad[1] = 300, 400 // norm 500
	opt := NewAdam(0.001, 5)
	before := []float64{p.Data[0], p.Data[1]}
	opt.Step([]*Param{p})
	// After clipping to norm 5, the bias-corrected Adam step magnitude is
	// bounded by lr per coordinate; just verify it moved and grads cleared.
	if p.Data[0] == before[0] || p.Grad[0] != 0 {
		t.Error("step did not apply or grads not cleared")
	}
	if GlobalGradNorm([]*Param{p}) != 0 {
		t.Error("grad norm should be zero after step")
	}
}

func TestTrainTinyRegression(t *testing.T) {
	// A 2-layer net should fit a tiny nonlinear mapping; this exercises the
	// full training loop machinery end to end at the nn level.
	rng := datagen.NewRand(9)
	l1 := NewLinear("l1", 2, 16, rng)
	l2 := NewLinear("l2", 16, 1, rng)
	params := append(l1.Params(), l2.Params()...)
	opt := NewAdam(0.01, 5)
	norm := LabelNorm{MinLog: 0, MaxLog: 1}

	const n = 64
	x := NewMatrix(n, 2)
	targets := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		targets[i] = 0.2 + 0.5*a*b // in (0,1)
	}
	var last float64
	for epoch := 0; epoch < 300; epoch++ {
		h1 := l1.Forward(x)
		a1 := ReLU(h1)
		h2 := l2.Forward(a1)
		o := Sigmoid(h2)
		loss, dOut := Loss(LossL1Log, norm, o.Data, targets, 0)
		last = loss
		dO := NewMatrix(n, 1)
		copy(dO.Data, dOut)
		dH2 := SigmoidBackward(o, dO)
		dA1 := l2.Backward(a1, dH2)
		dH1 := ReLUBackward(a1, dA1)
		l1.Backward(x, dH1)
		opt.Step(params)
	}
	if last > 0.02 {
		t.Errorf("training did not converge, final loss %v", last)
	}
}

func TestParamSerializationRoundTrip(t *testing.T) {
	rng := datagen.NewRand(33)
	l := NewLinear("l", 4, 3, rng)
	var buf bytes.Buffer
	if err := WriteParams(&buf, l.Params()); err != nil {
		t.Fatal(err)
	}
	l2 := NewLinear("l2", 4, 3, datagen.NewRand(99))
	if err := ReadParams(&buf, l2.Params()); err != nil {
		t.Fatal(err)
	}
	for i := range l.W.Data {
		if l.W.Data[i] != l2.W.Data[i] {
			t.Fatal("weights differ after round trip")
		}
	}
	for i := range l.B.Data {
		if l.B.Data[i] != l2.B.Data[i] {
			t.Fatal("biases differ after round trip")
		}
	}
}

func TestParamSerializationMismatch(t *testing.T) {
	rng := datagen.NewRand(1)
	l := NewLinear("l", 4, 3, rng)
	var buf bytes.Buffer
	if err := WriteParams(&buf, l.Params()); err != nil {
		t.Fatal(err)
	}
	wrongShape := NewLinear("x", 5, 3, rng)
	if err := ReadParams(bytes.NewReader(buf.Bytes()), wrongShape.Params()); err == nil {
		t.Error("shape mismatch should error")
	}
	wrongCount := NewLinear("y", 4, 3, rng)
	if err := ReadParams(bytes.NewReader(buf.Bytes()), append(wrongCount.Params(), NewParam("z", 1))); err == nil {
		t.Error("param count mismatch should error")
	}
	if err := ReadParams(bytes.NewReader(nil), l.Params()); err == nil {
		t.Error("truncated stream should error")
	}
}

func TestSerializationPropertyRoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) {
				vals[i] = 0
			}
		}
		p := NewParam("p", len(vals))
		copy(p.Data, vals)
		var buf bytes.Buffer
		if err := WriteParams(&buf, []*Param{p}); err != nil {
			return false
		}
		q := NewParam("q", len(vals))
		if err := ReadParams(&buf, []*Param{q}); err != nil {
			return false
		}
		for i := range vals {
			if q.Data[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
