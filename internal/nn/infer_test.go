package nn

import (
	"math"
	"testing"

	"deepsketch/internal/datagen"
)

// TestForwardFusedMatchesForward: the tiled fused kernel must match the
// reference dot-product forward across shapes that hit every tile-remainder
// path (rows and outputs not divisible by 4).
func TestForwardFusedMatchesForward(t *testing.T) {
	rng := datagen.NewRand(7)
	for _, shape := range [][3]int{
		{1, 3, 1}, {2, 5, 4}, {3, 8, 5}, {4, 16, 4}, {5, 7, 9},
		{8, 33, 12}, {17, 10, 6}, {64, 21, 13},
	} {
		rows, in, out := shape[0], shape[1], shape[2]
		l := NewLinear("t", in, out, rng)
		x := NewMatrix(rows, in)
		for i := range x.Data {
			x.Data[i] = rng.Float64()*2 - 1
		}
		for _, relu := range []bool{false, true} {
			want := l.Forward(x)
			if relu {
				want = ReLU(want)
			}
			got := NewMatrix(rows, out)
			// Dirty the output to prove full overwrite.
			for i := range got.Data {
				got.Data[i] = 999
			}
			l.ForwardFused(x, got, relu)
			for i := range want.Data {
				if d := math.Abs(got.Data[i] - want.Data[i]); d > 1e-12 {
					t.Fatalf("shape %v relu=%v: fused[%d]=%v want %v (|Δ|=%g)",
						shape, relu, i, got.Data[i], want.Data[i], d)
				}
			}
		}
	}
}

// TestSegmentAvgPoolMatchesMasked: CSR segment pooling must agree with the
// padded masked pooling on equivalent inputs, including empty segments.
func TestSegmentAvgPoolMatchesMasked(t *testing.T) {
	rng := datagen.NewRand(8)
	const b, maxS, h = 5, 4, 3
	lens := []int{2, 0, 4, 1, 3}

	// Packed layout.
	total := 0
	for _, n := range lens {
		total += n
	}
	packed := NewMatrix(total, h)
	for i := range packed.Data {
		packed.Data[i] = rng.Float64()
	}
	offsets := make([]int, b+1)
	for i, n := range lens {
		offsets[i+1] = offsets[i] + n
	}

	// Equivalent padded layout.
	padded := NewMatrix(b*maxS, h)
	mask := make([]float64, b*maxS)
	for bi, n := range lens {
		for si := 0; si < n; si++ {
			copy(padded.Row(bi*maxS+si), packed.Row(offsets[bi]+si))
			mask[bi*maxS+si] = 1
		}
	}

	want := MaskedAvgPool(padded, mask, b, maxS)
	got := NewMatrix(b, h)
	for i := range got.Data {
		got.Data[i] = 999 // prove full overwrite, incl. empty segments
	}
	SegmentAvgPool(packed, offsets, got)
	for i := range want.Data {
		if d := math.Abs(got.Data[i] - want.Data[i]); d > 1e-12 {
			t.Fatalf("pool[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestWorkspaceReuse: Reserve/Alloc must reuse the arena (zero allocations
// at steady state) and growth must leave earlier matrices intact.
func TestWorkspaceReuse(t *testing.T) {
	var ws Workspace
	ws.Reserve(12)
	a := ws.Alloc(2, 3)
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	// Force growth: earlier matrix keeps its (old) backing storage.
	b := ws.Alloc(10, 10)
	b.Data[0] = 7
	for i := range a.Data {
		if a.Data[i] != float64(i) {
			t.Fatalf("growth corrupted earlier matrix at %d", i)
		}
	}

	ws2 := &Workspace{}
	ws2.Reserve(64)
	ws2.Alloc(4, 8) // warm
	allocs := testing.AllocsPerRun(20, func() {
		ws2.Reserve(64)
		m := ws2.Alloc(4, 8)
		m.Data[0] = 1
	})
	if allocs != 0 {
		t.Fatalf("steady-state Reserve/Alloc allocates %.1f times, want 0", allocs)
	}
}

// TestBackwardIntoMatchesBackward: the reusable-buffer backward (including
// the nil-dx params-only mode) must accumulate identical gradients.
func TestBackwardIntoMatchesBackward(t *testing.T) {
	rng := datagen.NewRand(9)
	const rows, in, out = 6, 7, 5
	mk := func() (*Linear, Matrix, Matrix) {
		l := NewLinear("t", in, out, datagen.NewRand(9))
		x := NewMatrix(rows, in)
		dy := NewMatrix(rows, out)
		r2 := datagen.NewRand(10)
		for i := range x.Data {
			x.Data[i] = r2.Float64()
		}
		for i := range dy.Data {
			dy.Data[i] = r2.Float64() - 0.5
		}
		return l, x, dy
	}
	_ = rng

	lRef, x, dy := mk()
	dxRef := lRef.Backward(x, dy)

	lInto, _, _ := mk()
	dx := NewMatrix(rows, in)
	for i := range dx.Data {
		dx.Data[i] = 999 // dirty: BackwardInto must fully overwrite
	}
	lInto.BackwardInto(x, dy, &dx)
	for i := range dxRef.Data {
		if math.Abs(dx.Data[i]-dxRef.Data[i]) > 1e-12 {
			t.Fatalf("dx[%d] = %v, want %v", i, dx.Data[i], dxRef.Data[i])
		}
	}
	lNil, _, _ := mk()
	lNil.BackwardInto(x, dy, nil)
	for p := 0; p < 2; p++ {
		ref, got := lRef.Params()[p], lNil.Params()[p]
		for i := range ref.Grad {
			if math.Abs(got.Grad[i]-ref.Grad[i]) > 1e-12 {
				t.Fatalf("params-only %s grad[%d] = %v, want %v", ref.Name, i, got.Grad[i], ref.Grad[i])
			}
		}
		got2 := lInto.Params()[p]
		for i := range ref.Grad {
			if math.Abs(got2.Grad[i]-ref.Grad[i]) > 1e-12 {
				t.Fatalf("into %s grad[%d] = %v, want %v", ref.Name, i, got2.Grad[i], ref.Grad[i])
			}
		}
	}
}

// TestInPlaceActivations: the in-place variants must match their allocating
// counterparts.
func TestInPlaceActivations(t *testing.T) {
	rng := datagen.NewRand(11)
	x := NewMatrix(3, 4)
	for i := range x.Data {
		x.Data[i] = rng.Float64()*4 - 2
	}
	s := Sigmoid(x)
	sip := x.Clone()
	SigmoidInPlace(sip)
	for i := range s.Data {
		if s.Data[i] != sip.Data[i] {
			t.Fatalf("SigmoidInPlace[%d] = %v, want %v", i, sip.Data[i], s.Data[i])
		}
	}

	y := ReLU(x)
	dy := NewMatrix(3, 4)
	for i := range dy.Data {
		dy.Data[i] = rng.Float64() - 0.5
	}
	want := ReLUBackward(y, dy)
	dyIP := dy.Clone()
	ReLUBackwardInPlace(y, dyIP)
	for i := range want.Data {
		if want.Data[i] != dyIP.Data[i] {
			t.Fatalf("ReLUBackwardInPlace[%d] = %v, want %v", i, dyIP.Data[i], want.Data[i])
		}
	}

	sw := Sigmoid(x)
	wantS := SigmoidBackward(sw, dy)
	dyS := dy.Clone()
	SigmoidBackwardInPlace(sw, dyS)
	for i := range wantS.Data {
		if wantS.Data[i] != dyS.Data[i] {
			t.Fatalf("SigmoidBackwardInPlace[%d] = %v, want %v", i, dyS.Data[i], wantS.Data[i])
		}
	}
}

// TestMaskedAvgPoolIntoDirtyBuffers: the Into pooling variants must fully
// overwrite dirty reused buffers, including masked-out and empty rows.
func TestMaskedAvgPoolIntoDirtyBuffers(t *testing.T) {
	rng := datagen.NewRand(12)
	const b, s, h = 3, 2, 4
	x := NewMatrix(b*s, h)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	mask := []float64{1, 0, 0, 0, 1, 1} // set 1 is empty
	want := MaskedAvgPool(x, mask, b, s)
	got := NewMatrix(b, h)
	for i := range got.Data {
		got.Data[i] = 999
	}
	MaskedAvgPoolInto(x, mask, b, s, got)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("pool into[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}

	dOut := NewMatrix(b, h)
	for i := range dOut.Data {
		dOut.Data[i] = rng.Float64()
	}
	wantB := MaskedAvgPoolBackward(dOut, mask, b, s)
	gotB := NewMatrix(b*s, h)
	for i := range gotB.Data {
		gotB.Data[i] = 999
	}
	MaskedAvgPoolBackwardInto(dOut, mask, b, s, gotB)
	for i := range wantB.Data {
		if wantB.Data[i] != gotB.Data[i] {
			t.Fatalf("pool backward into[%d] = %v, want %v", i, gotB.Data[i], wantB.Data[i])
		}
	}
}
